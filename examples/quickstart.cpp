// Quickstart: the piom task scheduler in a dozen lines.
//
// Shows the core API surface:
//   1. describe the machine (here: the paper's 'kwak' topology),
//   2. create a TaskManager (hierarchical queues mapped onto the topology),
//   3. start a Runtime (one worker per core, with idle/timer hooks),
//   4. submit tasks with CPU sets and let idle cores execute them.
//
// Build & run:  ./build/examples/quickstart
#include <atomic>
#include <cstdio>

#include "core/task_manager.hpp"
#include "sched/runtime.hpp"
#include "sched/timer.hpp"
#include "topo/machine.hpp"

using namespace piom;

int main() {
  // 1. The machine topology. Machine::detect() would probe the host;
  //    the synthetic 'kwak' (4 NUMA nodes x 4 cores, Fig 3 of the paper)
  //    makes the output deterministic.
  const topo::Machine machine = topo::Machine::kwak();
  std::printf("Machine:\n%s\n", machine.to_string().c_str());

  // 2. The task manager: one queue per topology node (per-core, per-cache,
  //    per-chip, per-NUMA, global).
  TaskManager tm(machine);

  // 3. The runtime: workers occupy the simulated cores and run tasks from
  //    their queue hierarchy whenever they are idle. The timer hook
  //    guarantees progress even when all cores are busy.
  sched::Runtime runtime(machine, tm);
  sched::TimerHook timer(tm, std::chrono::microseconds(100));

  // 4a. A one-shot task pinned to core 5: only core 5 may run it.
  std::atomic<int> where{-1};
  FunctionTask pinned(
      [&] {
        where.store(sched::Runtime::current_cpu());
        return TaskResult::kDone;
      },
      topo::CpuSet::single(5), kTaskNotify);
  tm.submit(&pinned.task());
  pinned.wait_done();
  std::printf("pinned task executed on core %d (asked for core 5)\n",
              where.load());

  // 4b. A repeatable "polling" task, allowed on any core of NUMA node #1
  //     (cores 0-3): re-enqueued until it reports success, like a network
  //     poll that completes when data arrives.
  std::atomic<int> polls{0};
  FunctionTask poller(
      [&] {
        // Pretend the 10th poll finds the event we are waiting for.
        return (polls.fetch_add(1) + 1 >= 10) ? TaskResult::kDone
                                              : TaskResult::kAgain;
      },
      topo::CpuSet::range(0, 4), kTaskRepeat | kTaskNotify);
  tm.submit(&poller.task());
  poller.wait_done();
  std::printf("polling task completed after %d polls on core %d\n",
              polls.load(), poller.task().last_cpu.load());

  // 4c. A task in the Global queue (empty CPU set): any idle core takes it.
  FunctionTask global([&] { return TaskResult::kDone; }, {}, kTaskNotify);
  tm.submit(&global.task());
  global.wait_done();
  std::printf("global-queue task executed on core %d\n",
              global.task().last_cpu.load());

  std::printf("\nscheduler state:\n%s", tm.dump().c_str());
  return 0;
}
