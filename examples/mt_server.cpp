// Multithreaded request/reply server — the Fig 4 scenario as an
// application. Rank 1 runs a pool of service threads, each blocked in
// recv() on its own tag; rank 0 fires requests at them. With the PIOMan
// engine the blocked threads cost nothing: idle cores poll the fabric and
// wake exactly the thread whose message arrived.
//
// Build & run:  ./build/examples/mt_server
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "util/timing.hpp"

using namespace piom;

int main() {
  constexpr int kServiceThreads = 16;
  constexpr int kRequestsPerThread = 50;

  mpi::WorldConfig cfg;
  cfg.engine = mpi::EngineKind::kPioman;
  cfg.pioman.workers = 4;
  mpi::World world(cfg);

  std::atomic<uint64_t> served{0};
  std::vector<std::thread> service;
  for (int t = 0; t < kServiceThreads; ++t) {
    service.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        int64_t request = 0;
        // Blocked here most of the time — no polling, no CPU burned.
        world.comm(1).recv(0, static_cast<mpi::Tag>(t), &request,
                           sizeof(request));
        const int64_t reply = request * request;  // the "service"
        world.comm(1).send(0, static_cast<mpi::Tag>(100 + t), &reply,
                           sizeof(reply));
        served.fetch_add(1);
      }
    });
  }

  const int64_t t0 = util::now_ns();
  int64_t checksum = 0;
  for (int i = 0; i < kServiceThreads * kRequestsPerThread; ++i) {
    const int t = i % kServiceThreads;
    const int64_t request = i;
    int64_t reply = 0;
    world.comm(0).send(1, static_cast<mpi::Tag>(t), &request, sizeof(request));
    world.comm(0).recv(1, static_cast<mpi::Tag>(100 + t), &reply,
                       sizeof(reply));
    if (reply != request * request) {
      std::printf("BAD REPLY for request %d\n", i);
      return 1;
    }
    checksum += reply;
  }
  const double total_us = static_cast<double>(util::now_ns() - t0) * 1e-3;
  for (auto& th : service) th.join();

  std::printf("%d service threads handled %llu requests in %.1f ms "
              "(%.1f us per round trip), checksum %lld\n",
              kServiceThreads, static_cast<unsigned long long>(served.load()),
              total_us / 1e3,
              total_us / (kServiceThreads * kRequestsPerThread),
              static_cast<long long>(checksum));
  std::printf("blocked service threads consumed no CPU while idle — the "
              "runtime's idle cores did the polling.\n");
  return 0;
}
