// Fault injection + reliability: running the communication library over a
// lossy fabric (grid/WAN scenario from the paper's §IV-B extension
// discussion). The link drops 20% of all packets; the reliable session
// layer acknowledges, retransmits and deduplicates until everything lands.
//
// Build & run:  ./build/examples/lossy_link
#include <cstdio>
#include <deque>
#include <numeric>
#include <vector>

#include "piom.hpp"

using namespace piom;

int main() {
  transport::Cluster cluster(transport::ClusterConfig{0.2});  // 5x compressed
  simnet::LinkModel lossy;
  lossy.drop_rate = 0.20;
  lossy.latency_us = 50;  // a long, bad link
  auto [na, nb] = cluster.create_sim_link("wan", lossy);

  nmad::SessionConfig cfg;
  cfg.reliable = true;
  cfg.rto_us = 500;
  nmad::Session sa("siteA", cfg), sb("siteB", cfg);
  nmad::Gate& ga = sa.create_gate({na});
  nmad::Gate& gb = sb.create_gate({nb});

  constexpr int kMsgs = 200;
  std::printf("sending %d messages over a link dropping %.0f%% of packets "
              "(reliable mode, rto=%.0fus)...\n",
              kMsgs, lossy.drop_rate * 100, cfg.rto_us);

  std::deque<nmad::SendRequest> sreqs(kMsgs);
  std::deque<nmad::RecvRequest> rreqs(kMsgs);
  std::vector<int64_t> out(kMsgs, -1);
  for (int i = 0; i < kMsgs; ++i) {
    gb.irecv(rreqs[static_cast<std::size_t>(i)], static_cast<nmad::Tag>(i),
             &out[static_cast<std::size_t>(i)], sizeof(int64_t));
  }
  std::vector<int64_t> values(kMsgs);
  std::iota(values.begin(), values.end(), 1000);
  for (int i = 0; i < kMsgs; ++i) {
    ga.isend(sreqs[static_cast<std::size_t>(i)], static_cast<nmad::Tag>(i),
             &values[static_cast<std::size_t>(i)], sizeof(int64_t));
  }
  const int64_t t0 = util::now_ns();
  for (;;) {
    sa.progress();
    sb.progress();
    bool all = true;
    for (int i = 0; i < kMsgs; ++i) {
      if (!rreqs[static_cast<std::size_t>(i)].completed() ||
          !sreqs[static_cast<std::size_t>(i)].completed()) {
        all = false;
        break;
      }
    }
    if (all) break;
  }
  const double ms = static_cast<double>(util::now_ns() - t0) * 1e-6;

  int intact = 0;
  for (int i = 0; i < kMsgs; ++i) {
    if (out[static_cast<std::size_t>(i)] == values[static_cast<std::size_t>(i)]) {
      ++intact;
    }
  }
  const auto gsa = ga.stats();
  const auto gsb = gb.stats();
  const auto nsa = na->stats();
  std::printf("delivered %d/%d intact in %.1f ms\n", intact, kMsgs, ms);
  std::printf("  wire drops: %llu   retransmits: %llu   duplicates "
              "filtered: %llu   acks: %llu\n",
              static_cast<unsigned long long>(nsa.packets_dropped),
              static_cast<unsigned long long>(gsa.retransmits),
              static_cast<unsigned long long>(gsb.duplicates_dropped),
              static_cast<unsigned long long>(gsb.acks_sent));
  return intact == kMsgs ? 0 : 1;
}
