// Transport backends: the intra-node shmem fast path beside the NIC model.
//
// A 4-rank cluster is placed on a 2-chip machine (ranks 0,1 on chip 0;
// ranks 2,3 on chip 1): same-chip pairs get a hybrid gate (shmem fast rail
// + NIC rail), cross-chip pairs the plain NIC. The example shows
//   1. small messages ride the shmem rail (no NIC packets),
//   2. bulk transfers stripe across both rails by measured bandwidth,
//   3. the same collectives run unchanged over the mixed mesh.
//
// Build & run:  ./build/examples/shmem_fastpath
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "topo/machine.hpp"
#include "util/timing.hpp"

using namespace piom;

int main() {
  const topo::Machine machine = topo::Machine::symmetric(1, 2, 2, false);
  mpi::WorldConfig cfg;
  cfg.engine = mpi::EngineKind::kPioman;
  cfg.nranks = 4;
  cfg.pioman.workers = 1;
  cfg.policy.node_of = mpi::rank_nodes_from_machine(machine, cfg.nranks);
  cfg.policy.intra = transport::PairWiring::kHybrid;
  cfg.session.strategy.stripe_min_chunk = 32 * 1024;
  mpi::World world(cfg);

  std::printf("rank placement (2 chips):");
  for (int r = 0; r < cfg.nranks; ++r) {
    std::printf(" rank%d->chip%d", r,
                cfg.policy.node_of[static_cast<std::size_t>(r)]);
  }
  std::printf("\n\npair wiring as seen from rank 0:\n");
  for (int peer = 1; peer < cfg.nranks; ++peer) {
    nmad::Gate& gate = world.comm(0).gate_to(peer);
    std::printf("  0 <-> %d: %d rail(s):", peer, gate.nrails());
    for (int r = 0; r < gate.nrails(); ++r) {
      transport::IChannel& ch = gate.rail_channel(r);
      std::printf(" [%s %.2fus %.1fGB/s]",
                  transport::backend_name(ch.backend()), ch.latency_us(),
                  ch.bandwidth_GBps());
    }
    std::printf("\n");
  }

  // 1. Small messages between rank 0 and its chip-mate rank 1: the
  // latency-aware strategy keeps them off the NIC rail entirely.
  {
    nmad::Gate& gate = world.comm(0).gate_to(1);
    const auto nic_before = gate.rail_channel(1).stats();
    std::thread echo([&] {
      int32_t v = 0;
      world.comm(1).recv(0, 1, &v, sizeof(v));
      world.comm(1).send(0, 2, &v, sizeof(v));
    });
    const int32_t ping = 77;
    int32_t back = 0;
    world.comm(0).send(1, 1, &ping, sizeof(ping));
    world.comm(0).recv(1, 2, &back, sizeof(back));
    echo.join();
    const auto shm_after = gate.rail_channel(0).stats();
    const auto nic_after = gate.rail_channel(1).stats();
    std::printf(
        "\nsmall-message ping-pong 0<->1: shmem rail sent %llu pkts, "
        "NIC rail sent %llu (echo=%d)\n",
        static_cast<unsigned long long>(shm_after.packets_tx),
        static_cast<unsigned long long>(nic_after.packets_tx -
                                        nic_before.packets_tx),
        back);
  }

  // 2. Bulk transfer 0 -> 1: rendezvous pull striped across both rails,
  // proportionally to their measured bandwidth.
  {
    constexpr std::size_t kSize = 4 << 20;
    std::vector<uint8_t> data(kSize, 0xCD), out(kSize);
    std::thread rx([&] { world.comm(1).recv(0, 3, out.data(), out.size()); });
    world.comm(0).send(1, 3, data.data(), data.size());
    rx.join();
    // The receiver's rails initiate the RDMA reads; bytes_rx counts what
    // each rail pulled.
    nmad::Gate& gate = world.comm(1).gate_to(0);
    const auto shm = gate.rail_channel(0).stats();
    const auto nic = gate.rail_channel(1).stats();
    std::printf(
        "bulk 4 MB 0->1: shmem rail served %.2f MB, NIC rail %.2f MB "
        "(bandwidth-proportional stripe)\n",
        static_cast<double>(shm.bytes_rx) / 1e6,
        static_cast<double>(nic.bytes_rx) / 1e6);
  }

  // 3. Collectives are transport-agnostic: an allreduce over the mixed
  // mesh, every rank participating.
  {
    std::vector<std::thread> ranks;
    std::vector<int64_t> sums(4, -1);
    for (int r = 0; r < 4; ++r) {
      ranks.emplace_back([&world, &sums, r] {
        int64_t v = r + 1;
        world.comm(r).allreduce(&v, 1, mpi::ReduceOp::kSum);
        sums[static_cast<std::size_t>(r)] = v;
      });
    }
    for (auto& t : ranks) t.join();
    std::printf("allreduce over the mixed mesh: every rank got %lld "
                "(expected 10)\n",
                static_cast<long long>(sums[0]));
  }
  return 0;
}
