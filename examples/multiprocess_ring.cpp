// multiprocess_ring: the first example that runs as true OS processes.
//
// Launched under tools/piom_launch, each rank is its own process: it reads
// the bootstrap environment ($PIOM_RANK / $PIOM_NRANKS / $PIOM_ROOT_ADDR),
// rendezvouses with the root over a control socket, wires a full socket
// mesh to its peers (TCP or Unix-domain, per the root address scheme) and
// runs a token ring plus an allreduce over it:
//
//     ./build/tools/piom_launch -n 4 -- ./build/examples/multiprocess_ring
//
// Without the environment it falls back to the in-process World (4 ranks,
// one thread each) so the plain examples-smoke matrix still covers it.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "transport/bootstrap.hpp"

using namespace piom;

namespace {

constexpr mpi::Tag kToken = 7;

/// Pass an accumulating token around the ring, then cross-check with an
/// allreduce. Returns 0 on success.
int run_rank(mpi::Comm& comm) {
  const int n = comm.size();
  const int r = comm.rank();
  const int left = (r - 1 + n) % n;
  const int right = (r + 1) % n;

  // Rank 0 injects the token; every hop adds the local rank. After one
  // lap the token holds sum(0..n-1).
  int64_t token = 0;
  if (r == 0) {
    token = 0;
    comm.send(right, kToken, &token, sizeof(token));
    const mpi::Status st =
        comm.recv_status(left, kToken, &token, sizeof(token));
    if (st.bytes != sizeof(token) || st.source != left) {
      std::fprintf(stderr, "rank 0: bad ring status\n");
      return 1;
    }
  } else {
    comm.recv(left, kToken, &token, sizeof(token));
    token += r;
    comm.send(right, kToken, &token, sizeof(token));
  }

  // Everyone contributes its rank; the reduction must agree with the lap.
  int64_t sum = r;
  comm.allreduce(&sum, 1, mpi::ReduceOp::kSum);
  const int64_t expect = static_cast<int64_t>(n) * (n - 1) / 2;
  if (sum != expect || (r == 0 && token != expect)) {
    std::fprintf(stderr, "rank %d: sum %lld (expect %lld)\n", r,
                 static_cast<long long>(sum),
                 static_cast<long long>(expect));
    return 1;
  }
  comm.barrier();
  if (r == 0) {
    std::printf("ring of %d ranks: token %lld, allreduce %lld — ok\n", n,
                static_cast<long long>(token), static_cast<long long>(sum));
  }
  return 0;
}

}  // namespace

int main() {
  if (std::getenv("PIOM_RANK") != nullptr) {
    // Multi-process mode: this process is ONE rank. Bootstrap wires the
    // socket mesh; LocalRank owns the session/engine on top of it.
    std::unique_ptr<mpi::LocalRank> rank =
        mpi::World::local(transport::Bootstrap::from_env());
    return run_rank(rank->comm());
  }

  // Fallback: the whole ring in this process, one thread per rank.
  mpi::WorldConfig cfg;
  cfg.nranks = 4;
  mpi::World world(cfg);
  std::vector<int> rc(4, 0);
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&world, &rc, r] {
      rc[static_cast<std::size_t>(r)] = run_rank(world.comm(r));
    });
  }
  for (auto& t : threads) t.join();
  for (const int code : rc) {
    if (code != 0) return code;
  }
  return 0;
}
