// Data filters on idle cores — the paper's §IV-B extension idea:
//   "Idle cores could also be used to exploit efficiently slow networks or
//    grid configurations: tasks could be created to apply data filters such
//    as data compression, encryption or encoding/decoding."
//
// This example compresses message chunks (a toy run-length encoder) as
// piom tasks spread over the cores of one NUMA node, while the main thread
// keeps computing: the filter work fills scheduling holes instead of
// stealing dedicated threads.
//
// Build & run:  ./build/examples/task_filters
#include <atomic>
#include <cstdio>
#include <deque>
#include <vector>

#include "core/task_manager.hpp"
#include "sched/runtime.hpp"
#include "topo/machine.hpp"
#include "util/timing.hpp"

using namespace piom;

namespace {

/// Toy run-length encoder: the "data filter" applied before hitting a slow
/// network link.
std::vector<uint8_t> rle_compress(const std::vector<uint8_t>& in) {
  std::vector<uint8_t> out;
  out.reserve(in.size() / 4);
  std::size_t i = 0;
  while (i < in.size()) {
    const uint8_t byte = in[i];
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == byte && run < 255) ++run;
    out.push_back(static_cast<uint8_t>(run));
    out.push_back(byte);
    i += run;
  }
  return out;
}

struct FilterJob {
  Task task;
  const std::vector<uint8_t>* input = nullptr;
  std::vector<uint8_t> output;
  std::atomic<int>* remaining = nullptr;
};

TaskResult filter_fn(void* arg) {
  auto* job = static_cast<FilterJob*>(arg);
  job->output = rle_compress(*job->input);
  job->remaining->fetch_sub(1, std::memory_order_release);
  return TaskResult::kDone;
}

}  // namespace

int main() {
  const topo::Machine machine = topo::Machine::kwak();
  TaskManager tm(machine);
  sched::Runtime runtime(machine, tm);

  // A message split into chunks, each compressed by a task allowed on the
  // cores sharing NUMA node #2 (cores 4-7) — locality for the buffers.
  constexpr int kChunks = 32;
  constexpr std::size_t kChunkSize = 256 * 1024;
  std::vector<std::vector<uint8_t>> chunks(kChunks);
  for (int i = 0; i < kChunks; ++i) {
    chunks[static_cast<std::size_t>(i)].assign(kChunkSize,
                                               static_cast<uint8_t>(i % 7));
  }

  std::atomic<int> remaining{kChunks};
  std::deque<FilterJob> jobs(kChunks);
  const int64_t t0 = util::now_ns();
  for (int i = 0; i < kChunks; ++i) {
    FilterJob& job = jobs[static_cast<std::size_t>(i)];
    job.input = &chunks[static_cast<std::size_t>(i)];
    job.remaining = &remaining;
    job.task.init(&filter_fn, &job, topo::CpuSet::range(4, 8), kTaskNotify);
    tm.submit(&job.task);
  }

  // Main thread computes while idle cores 4-7 chew through the filters.
  double main_work_us = 0;
  while (remaining.load(std::memory_order_acquire) > 0) {
    util::burn_cpu_us(100);
    main_work_us += 100;
  }
  const double total_us = static_cast<double>(util::now_ns() - t0) * 1e-3;

  // `remaining` hitting zero says every *filter* ran; wait_done additionally
  // synchronizes with the scheduler's final touch of each task, which must
  // happen before the jobs (and their embedded tasks) are destroyed.
  for (FilterJob& job : jobs) job.task.wait_done();

  std::size_t in_bytes = 0, out_bytes = 0;
  for (const FilterJob& job : jobs) {
    in_bytes += job.input->size();
    out_bytes += job.output.size();
  }
  std::printf("compressed %zu KB to %zu KB (%.1fx) in %.0f us, on cores: ",
              in_bytes / 1024, out_bytes / 1024,
              static_cast<double>(in_bytes) / static_cast<double>(out_bytes),
              total_us);
  // Which cores did the filtering?
  for (int c = 0; c < machine.ncpus(); ++c) {
    const uint64_t n = tm.core_stats(c).tasks_run;
    if (n > 0) std::printf("#%d(%llu) ", c, static_cast<unsigned long long>(n));
  }
  std::printf("\nmain thread kept computing: %.0f us of its own work done "
              "meanwhile\n",
              main_work_us);
  return 0;
}
