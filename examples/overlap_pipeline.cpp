// Overlap pipeline: the paper's headline use case as an application.
//
// A two-rank "cluster" exchanges large blocks while both ranks crunch
// numbers — the pattern of any halo-exchange / pipelined stencil code. With
// the PIOMan engine the rendezvous handshake progresses on idle cores, so
// the transfers hide behind the computation; with the global-lock baseline
// engine they cannot. The example prints the measured iteration times for
// both engines so you can see the difference live.
//
// Build & run:  ./build/examples/overlap_pipeline
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "util/timing.hpp"

using namespace piom;

namespace {

/// One rank's work for a pipeline step: start the exchange, compute, wait.
double run_pipeline(mpi::World& world, int steps, std::size_t block_size,
                    double compute_us) {
  std::vector<uint8_t> tx0(block_size, 1), rx0(block_size);
  std::vector<uint8_t> tx1(block_size, 2), rx1(block_size);
  const int64_t t0 = util::now_ns();
  std::thread rank1([&] {
    for (int s = 0; s < steps; ++s) {
      mpi::Request sr, rr;
      world.comm(1).irecv(rr, 0, 1, rx1.data(), rx1.size());
      world.comm(1).isend(sr, 0, 2, tx1.data(), tx1.size());
      util::burn_cpu_us(compute_us);  // the "stencil update"
      world.comm(1).wait(rr);
      world.comm(1).wait(sr);
    }
  });
  for (int s = 0; s < steps; ++s) {
    mpi::Request sr, rr;
    world.comm(0).irecv(rr, 1, 2, rx0.data(), rx0.size());
    world.comm(0).isend(sr, 1, 1, tx0.data(), tx0.size());
    util::burn_cpu_us(compute_us);
    world.comm(0).wait(rr);
    world.comm(0).wait(sr);
  }
  rank1.join();
  return static_cast<double>(util::now_ns() - t0) * 1e-3 / steps;
}

}  // namespace

int main() {
  constexpr std::size_t kBlock = 1 << 20;  // 1 MB halo per direction
  constexpr double kComputeUs = 1500;      // computation per step
  constexpr int kSteps = 10;

  std::printf("pipeline: %d steps, %zu KB exchanged per direction, %.0f us "
              "computation per step\n\n",
              kSteps, kBlock / 1024, kComputeUs);
  // Lower bound: computation alone (perfect overlap would reach this).
  std::printf("%-16s %14s %18s\n", "engine", "us/step",
              "(ideal = compute)");
  for (const auto kind :
       {mpi::EngineKind::kMvapichLike, mpi::EngineKind::kPioman}) {
    mpi::WorldConfig cfg;
    cfg.engine = kind;
    cfg.pioman.workers = 4;
    mpi::World world(cfg);
    run_pipeline(world, 2, kBlock, kComputeUs);  // warm-up
    const double us = run_pipeline(world, kSteps, kBlock, kComputeUs);
    std::printf("%-16s %14.0f %18.0f\n", engine_kind_name(kind), us,
                kComputeUs);
  }
  std::printf(
      "\nThe PIOMan engine's us/step should sit close to the computation "
      "time (communication hidden);\nthe global-lock engine pays "
      "computation + transfer because the rendezvous stalls while both "
      "ranks compute.\n");
  return 0;
}
