// halo_ring: N-rank ring halo exchange — the classic 1-D stencil pattern
// the two-rank world could never express.
//
// Each rank owns a segment of a periodic 1-D field and iterates a 3-point
// moving average. Every step exchanges one boundary cell with each ring
// neighbour (two sendrecvs with *different* send/recv peers — the ring
// shift), then applies the stencil; an allreduce checks that the field's
// total mass is conserved, and the spread diagnostic (field decaying
// towards the all-equal fixed point) runs as an *iallreduce* pipelined
// with the following stencil steps — the reduction's rounds progress in
// the background while the ranks keep computing, and the result is
// collected when the next diagnostic is due.
//
// Build & run:  ./build/examples/halo_ring [--ranks N] [--cells C]
//               [--steps S] [--engine pioman|mvapich|openmpi]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "util/options.hpp"

using namespace piom;

namespace {
constexpr mpi::Tag kLeftward = 1;   // travels towards rank-1
constexpr mpi::Tag kRightward = 2;  // travels towards rank+1

int run_rank(mpi::Comm& comm, int cells, int steps) {
  const int n = comm.size();
  const int r = comm.rank();
  const int left = (r - 1 + n) % n;
  const int right = (r + 1) % n;

  // Field segment with one ghost cell per side: [ghostL | cells | ghostR].
  std::vector<double> field(static_cast<std::size_t>(cells) + 2, 0.0);
  for (int i = 1; i <= cells; ++i) field[static_cast<std::size_t>(i)] = r;

  double mass0 = 0;
  for (int i = 1; i <= cells; ++i) mass0 += field[static_cast<std::size_t>(i)];
  comm.allreduce(&mass0, 1, mpi::ReduceOp::kSum);

  std::vector<double> next(field.size(), 0.0);
  // Spread diagnostic, pipelined: `spread` and `minmax` stay live across
  // stencil steps while the engine progresses the reduction.
  mpi::CollRequest spread;
  double minmax[2] = {0.0, 0.0};
  int spread_step = -1;  // stencil step the in-flight reduction snapshots
  for (int step = 0; step < steps; ++step) {
    // Halo exchange: my first cell travels leftward (arriving as the left
    // neighbour's right ghost), my last cell travels rightward.
    comm.sendrecv(left, kLeftward, &field[1], sizeof(double), right,
                  kLeftward, &field[static_cast<std::size_t>(cells) + 1],
                  sizeof(double));
    comm.sendrecv(right, kRightward, &field[static_cast<std::size_t>(cells)],
                  sizeof(double), left, kRightward, &field[0], sizeof(double));
    for (int i = 1; i <= cells; ++i) {
      next[static_cast<std::size_t>(i)] =
          (field[static_cast<std::size_t>(i) - 1] +
           field[static_cast<std::size_t>(i)] +
           field[static_cast<std::size_t>(i) + 1]) /
          3.0;
    }
    field.swap(next);

    if (step % 5 == 4 || step == steps - 1) {
      // Collect the previous diagnostic (its rounds overlapped the last
      // few stencil steps), then launch the next one and keep computing.
      if (spread_step >= 0) {
        comm.wait(spread);
        if (r == 0) {
          std::printf("step %3d  field spread [%8.4f, %8.4f]\n",
                      spread_step + 1, minmax[0], -minmax[1]);
        }
      }
      // Entry 0 tracks the minimum, entry 1 the *negated* maximum, so a
      // single kMin reduction covers both (min of -x == -max(x)).
      minmax[0] = field[1];
      minmax[1] = -field[1];
      for (int i = 1; i <= cells; ++i) {
        minmax[0] = std::min(minmax[0], field[static_cast<std::size_t>(i)]);
        minmax[1] = std::min(minmax[1], -field[static_cast<std::size_t>(i)]);
      }
      comm.iallreduce(spread, minmax, 2, mpi::ReduceOp::kMin);
      spread_step = step;
    }
  }
  if (spread_step >= 0) {
    comm.wait(spread);
    if (r == 0) {
      std::printf("step %3d  field spread [%8.4f, %8.4f]\n", spread_step + 1,
                  minmax[0], -minmax[1]);
    }
  }

  // Conservation check: the periodic 3-point average preserves total mass.
  double mass = 0;
  for (int i = 1; i <= cells; ++i) mass += field[static_cast<std::size_t>(i)];
  comm.allreduce(&mass, 1, mpi::ReduceOp::kSum);
  const bool ok = std::abs(mass - mass0) < 1e-6 * std::abs(mass0);
  if (r == 0) {
    std::printf("mass %.6f (initial %.6f) -> %s\n", mass, mass0,
                ok ? "conserved" : "LOST");
  }
  return ok ? 0 : 1;
}
int arg_int(int argc, char** argv, const std::string& key, int fallback) {
  const std::string v = util::arg_value(argc, argv, key);
  const int n = v.empty() ? 0 : std::atoi(v.c_str());
  return n > 0 ? n : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  const std::string engine = util::arg_value(argc, argv, "engine");

  mpi::WorldConfig cfg;
  cfg.nranks = arg_int(argc, argv, "ranks", 6);
  cfg.time_scale = 0.05;  // quick demo: 20x faster than "real" wire time
  cfg.session.pool_bufs_per_rail = 8;
  cfg.pioman.workers = 2;
  if (engine == "mvapich") cfg.engine = mpi::EngineKind::kMvapichLike;
  else if (engine == "openmpi") cfg.engine = mpi::EngineKind::kOpenMpiLike;
  else cfg.engine = mpi::EngineKind::kPioman;

  const int ncells = arg_int(argc, argv, "cells", 64);
  const int nsteps = arg_int(argc, argv, "steps", 20);
  std::printf("halo_ring: %d ranks x %d cells, %d steps, engine=%s\n",
              cfg.nranks, ncells, nsteps, mpi::engine_kind_name(cfg.engine));

  mpi::World world(cfg);
  std::vector<std::thread> ranks;
  std::vector<int> rc(static_cast<std::size_t>(cfg.nranks), 1);
  for (int r = 0; r < cfg.nranks; ++r) {
    ranks.emplace_back([&world, &rc, r, ncells, nsteps] {
      rc[static_cast<std::size_t>(r)] =
          run_rank(world.comm(r), ncells, nsteps);
    });
  }
  for (auto& t : ranks) t.join();
  for (const int c : rc) {
    if (c != 0) return 1;
  }
  return 0;
}
