// The paper's §VI long-term vision end to end: "a generic framework able
// to optimize both communication and I/O in a scalable way".
//
// A data-staging pipeline: rank 0 reads blocks from its (simulated) disk,
// processes them, and ships them to rank 1, which checksums and stores
// them on its own disk. Disk I/O, network transfer and computation all
// progress through the same task scheduler, so the three stages overlap.
//
// Build & run:  ./build/examples/io_pipeline
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "aio/aio.hpp"
#include "mpi/world.hpp"
#include "util/timing.hpp"

using namespace piom;

namespace {

constexpr std::size_t kBlock = 512 * 1024;
constexpr int kBlocks = 12;

uint64_t checksum(const std::vector<uint8_t>& data) {
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int main() {
  // The communication world (pioman engine) and two per-rank disks.
  mpi::WorldConfig cfg;
  cfg.engine = mpi::EngineKind::kPioman;
  cfg.pioman.workers = 4;
  mpi::World world(cfg);

  aio::DiskModel dm;
  dm.time_scale = 1.0;
  aio::SimDisk disk0("src-disk", kBlocks * kBlock, dm);
  aio::SimDisk disk1("dst-disk", kBlocks * kBlock, dm);

  // Hook both disks into the two ranks' task managers (the engines expose
  // them); each rank's idle workers poll its own disk.
  auto& engine0 = dynamic_cast<mpi::PiomanEngine&>(world.engine(0));
  auto& engine1 = dynamic_cast<mpi::PiomanEngine&>(world.engine(1));
  aio::AioManager aio0(engine0.task_manager(), {&disk0});
  aio::AioManager aio1(engine1.task_manager(), {&disk1});

  // Seed the source disk with known content.
  std::vector<uint64_t> source_sums;
  {
    std::vector<uint8_t> block(kBlock);
    for (int b = 0; b < kBlocks; ++b) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        block[i] = static_cast<uint8_t>((i * 31 + static_cast<std::size_t>(b)) & 0xFF);
      }
      disk0.poke(static_cast<std::size_t>(b) * kBlock, block.data(), kBlock);
      source_sums.push_back(checksum(block));
    }
  }

  const int64_t t0 = util::now_ns();

  // Rank 1: receive each block, store it to the destination disk.
  std::thread consumer([&] {
    std::vector<uint8_t> block(kBlock);
    aio::IoRequest io;
    for (int b = 0; b < kBlocks; ++b) {
      world.comm(1).recv(0, static_cast<mpi::Tag>(b), block.data(), kBlock);
      aio1.write(disk1, static_cast<std::size_t>(b) * kBlock, block.data(),
                 kBlock, io);
      io.wait();
    }
  });

  // Rank 0: double-buffered read → process → send pipeline.
  {
    std::vector<uint8_t> bufs[2] = {std::vector<uint8_t>(kBlock),
                                    std::vector<uint8_t>(kBlock)};
    aio::IoRequest io[2];
    aio0.read(disk0, 0, bufs[0].data(), kBlock, io[0]);
    for (int b = 0; b < kBlocks; ++b) {
      const int cur = b % 2;
      const int nxt = 1 - cur;
      if (b + 1 < kBlocks) {
        // Prefetch the next block while we process/send the current one.
        aio0.read(disk0, static_cast<std::size_t>(b + 1) * kBlock,
                  bufs[nxt].data(), kBlock, io[nxt]);
      }
      io[cur].wait();
      util::burn_cpu_us(200);  // the "processing" stage
      world.comm(0).send(1, static_cast<mpi::Tag>(b), bufs[cur].data(),
                         kBlock);
    }
  }
  consumer.join();
  const double total_ms = static_cast<double>(util::now_ns() - t0) * 1e-6;

  // Verify every block landed intact on the destination disk.
  int intact = 0;
  std::vector<uint8_t> check(kBlock);
  for (int b = 0; b < kBlocks; ++b) {
    disk1.peek(static_cast<std::size_t>(b) * kBlock, check.data(), kBlock);
    if (checksum(check) == source_sums[static_cast<std::size_t>(b)]) ++intact;
  }

  const double data_mb = static_cast<double>(kBlocks) * kBlock / 1e6;
  std::printf("staged %.1f MB disk->compute->network->disk in %.1f ms "
              "(%.0f MB/s), %d/%d blocks intact\n",
              data_mb, total_ms, data_mb / (total_ms * 1e-3), intact,
              kBlocks);
  std::printf("disk, network and computation progressed through the same "
              "task scheduler (paper SVI vision)\n");
  return intact == kBlocks ? 0 : 1;
}
