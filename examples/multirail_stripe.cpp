// Multirail: stripe bulk transfers across several NICs (paper §II-A:
// "Multirail clusters permit to reduce the pressure on NICs by extending
// the cumulated bandwidth").
//
// Two nodes are wired with 1, 2 and 4 rails; a large message is sent with
// striping enabled and the effective bandwidth is reported — it should
// scale with the rail count. A heterogeneous case (one fast + one slow
// rail) shows the bandwidth-proportional split.
//
// Build & run:  ./build/examples/multirail_stripe
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "util/timing.hpp"

using namespace piom;

namespace {

double transfer_bandwidth(mpi::World& world, std::size_t size, int reps) {
  std::vector<uint8_t> data(size, 0xEE), out(size);
  // Warm-up.
  std::thread w([&] { world.comm(1).recv(0, 1, out.data(), out.size()); });
  world.comm(0).send(1, 1, data.data(), data.size());
  w.join();
  const int64_t t0 = util::now_ns();
  for (int r = 0; r < reps; ++r) {
    std::thread rx([&] { world.comm(1).recv(0, 1, out.data(), out.size()); });
    world.comm(0).send(1, 1, data.data(), data.size());
    rx.join();
  }
  const double secs = static_cast<double>(util::now_ns() - t0) * 1e-9 / reps;
  return static_cast<double>(size) / secs / 1e9;  // GB/s
}

}  // namespace

int main() {
  constexpr std::size_t kSize = 8 << 20;  // 8 MB
  constexpr int kReps = 4;

  std::printf("message size: %zu MB, link model: 1.25 GB/s per rail\n\n",
              kSize >> 20);
  std::printf("%8s %18s %20s\n", "rails", "bandwidth (GB/s)", "scaling vs 1 rail");
  double base = 0;
  for (const int rails : {1, 2, 4}) {
    mpi::WorldConfig cfg;
    cfg.engine = mpi::EngineKind::kPioman;
    cfg.rails = rails;
    cfg.session.strategy.multirail_stripe = true;
    cfg.session.strategy.stripe_min_chunk = 64 * 1024;
    mpi::World world(cfg);
    const double bw = transfer_bandwidth(world, kSize, kReps);
    if (rails == 1) base = bw;
    std::printf("%8d %18.2f %19.2fx\n", rails, bw, bw / base);
  }

  // Heterogeneous rails: the strategy splits proportionally to bandwidth.
  std::printf("\nheterogeneous rails (manual setup): 1.25 GB/s + 2.5 GB/s\n");
  {
    transport::Cluster cluster;
    simnet::LinkModel slow;  // defaults: 1.25 GB/s
    simnet::LinkModel fast = slow;
    fast.bandwidth_GBps = 2.5;
    auto [a0, b0] = cluster.create_sim_link("slow", slow);
    auto [a1, b1] = cluster.create_sim_link("fast", fast);
    nmad::SessionConfig scfg;
    scfg.strategy.multirail_stripe = true;
    scfg.strategy.stripe_min_chunk = 64 * 1024;
    nmad::Session sa("A", scfg), sb("B", scfg);
    nmad::Gate& ga = sa.create_gate({a0, a1});
    nmad::Gate& gb = sb.create_gate({b0, b1});
    std::vector<uint8_t> data(kSize, 0xAB), out(kSize);
    nmad::SendRequest sreq;
    nmad::RecvRequest rreq;
    gb.irecv(rreq, 1, out.data(), out.size());
    ga.isend(sreq, 1, data.data(), data.size());
    while (!rreq.completed()) {
      sa.progress();
      sb.progress();
    }
    // The receiver's NICs initiate the RDMA reads; bytes_rx counts what
    // each rail pulled.
    const auto s0 = b0->stats();
    const auto s1 = b1->stats();
    std::printf("  slow rail pulled %8.2f MB\n",
                static_cast<double>(s0.bytes_rx) / 1e6);
    std::printf("  fast rail pulled %8.2f MB (expect ~2x the slow rail)\n",
                static_cast<double>(s1.bytes_rx) / 1e6);
  }
  return 0;
}
