#!/usr/bin/env python3
"""Self-test for piom_lint: every rule must fire exactly where the
fixtures plant a violation, stay silent on the fixtures' known-good
patterns, and stay silent on the real tree.

Run directly (registered as the `lint_self_test` ctest). Exit 0 on pass.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures")

sys.path.insert(0, HERE)
import piom_lint  # noqa: E402


# Every violation the fixtures contain — nothing more, nothing less.
EXPECTED = {
    (os.path.join(".github", "workflows", "ci.yml"), 4,
     "ctest-parallel-flag"),
    (os.path.join("src", "callback_under_lock.cpp"), 10,
     "callback-under-lock"),
    (os.path.join("src", "callback_under_lock.cpp"), 15,
     "callback-under-lock"),
    (os.path.join("src", "callback_under_lock.cpp"), 20,
     "callback-under-lock"),
    (os.path.join("src", "relaxed_done.cpp"), 4, "relaxed-done-store"),
    (os.path.join("src", "reserved_tag.cpp"), 2, "reserved-tag-literal"),
    (os.path.join("src", "use_after_complete.cpp"), 6,
     "use-after-complete"),
}


def fail(msg):
    print("test_lint: FAIL: %s" % msg)
    sys.exit(1)


def main():
    # 1. Fixtures: exact findings, each rule exercised.
    got = {(rel, line, rule)
           for rel, line, rule, _ in piom_lint.run(FIXTURES)}
    if got != EXPECTED:
        missing = EXPECTED - got
        surplus = got - EXPECTED
        fail("fixture findings mismatch\n  missing: %s\n  surplus: %s" %
             (sorted(missing), sorted(surplus)))
    rules_fired = {rule for _, _, rule in got}
    all_rules = {"use-after-complete", "callback-under-lock",
                 "reserved-tag-literal", "relaxed-done-store",
                 "ctest-parallel-flag"}
    if rules_fired != all_rules:
        fail("rules without fixture coverage: %s" %
             sorted(all_rules - rules_fired))

    # 2. The real tree must be clean (the repo invariant itself).
    repo_findings = piom_lint.run(REPO)
    if repo_findings:
        fail("real tree is not clean:\n  " + "\n  ".join(
            "%s:%d: [%s] %s" % f for f in repo_findings))

    # 3. CLI contract: exit 1 + one line per finding on fixtures, 0 on repo.
    lint = os.path.join(HERE, "piom_lint.py")
    proc = subprocess.run([sys.executable, lint, "--root", FIXTURES],
                          capture_output=True, text=True)
    if proc.returncode != 1:
        fail("CLI on fixtures: expected exit 1, got %d" % proc.returncode)
    if len(proc.stdout.strip().splitlines()) != len(EXPECTED):
        fail("CLI on fixtures: expected %d lines, got:\n%s" %
             (len(EXPECTED), proc.stdout))
    proc = subprocess.run([sys.executable, lint, "--root", REPO],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        fail("CLI on repo: expected exit 0, got %d\n%s" %
             (proc.returncode, proc.stdout))

    print("test_lint: PASS (%d fixture findings, repo clean)" %
          len(EXPECTED))
    return 0


if __name__ == "__main__":
    sys.exit(main())
