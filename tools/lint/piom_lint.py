#!/usr/bin/env python3
"""piom_lint: repo-invariant linter for the piom tree.

Dependency-free (stdlib only) and line-based: each rule encodes an
invariant that once shipped a real bug and that the type system (and the
clang thread-safety analysis) cannot express. See docs/static-analysis.md
for the catalogue and the history behind each rule.

Rules
-----
  use-after-complete   A completion store (`x->done.store(1, release)` or
                       `x.core.complete()`) must be the last touch of `x`
                       in its scope: the owner may recycle the object the
                       instant the store lands.
  callback-under-lock  No std::function-typed callback may be invoked
                       textually inside a sync::SpinLock critical section
                       (the repo's spinlocks are not reentrant; callbacks
                       are user code that may re-enter).
  reserved-tag-literal Reserved-tag-space literals (0xffff...-shaped) may
                       only be spelled in src/nmad/types.hpp.
  relaxed-done-store   Completion stores to `done`-named atomics must not
                       be memory_order_relaxed (resets to 0/false are
                       fine; the 1/true store publishes every prior
                       write).
  ctest-parallel-flag  CI must spell `ctest --parallel N`, never bare
                       `ctest ... -j` (a bare -j swallows the next
                       argument).

Usage: piom_lint.py [--root DIR]
Scans DIR/src (C++ rules) and DIR/.github (CI rule). Prints one
`path:line: [rule-id] message` per finding; exit 1 when anything fired.
"""

import argparse
import os
import re
import sys

CPP_EXTS = (".hpp", ".cpp")

# ---------------------------------------------------------------------------
# Source preprocessing: blank out comments and string/char literals so the
# rules match code only. Line count (and therefore line numbers) is
# preserved; blanked spans become spaces.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # char
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Global passes: names of sync::SpinLock variables and std::function-typed
# callables, collected across the whole tree (a .cpp uses locks its header
# declares).
# ---------------------------------------------------------------------------

SPINLOCK_DECL = re.compile(r"\bsync::SpinLock\s+(\w+)\s*;")
FUNCTION_DECL = re.compile(r"\bstd::function\s*<[^;=]*>\s+(\w+)\s*[;={(]")
FUNCTION_VEC_DECL = re.compile(
    r"\bstd::vector\s*<\s*std::function\b[^;=]*>\s*>\s+(\w+)\s*[;={(]")
FUNCTION_ALIAS = re.compile(r"\busing\s+(\w+)\s*=\s*std::function\b")


def collect_global_names(cpp_files):
    spinlocks = set()
    callbacks = set()
    cb_containers = set()
    aliases = set()
    stripped = {}
    for path in cpp_files:
        with open(path, encoding="utf-8", errors="replace") as f:
            stripped[path] = strip_comments_and_strings(f.read())
    for text in stripped.values():
        for m in SPINLOCK_DECL.finditer(text):
            spinlocks.add(m.group(1))
        for m in FUNCTION_DECL.finditer(text):
            callbacks.add(m.group(1))
        for m in FUNCTION_VEC_DECL.finditer(text):
            cb_containers.add(m.group(1))
        for m in FUNCTION_ALIAS.finditer(text):
            aliases.add(m.group(1))
    # Second pass: variables declared with a std::function alias type
    # (e.g. `ForwardHandler forward_;`, `GateConnector connector_;`).
    if aliases:
        alias_decl = re.compile(
            r"\b(?:" + "|".join(sorted(aliases)) + r")\s+(\w+)\s*[;={(]")
        for text in stripped.values():
            for m in alias_decl.finditer(text):
                callbacks.add(m.group(1))
    return spinlocks, callbacks, cb_containers, stripped


# ---------------------------------------------------------------------------
# C++ rules (line-based scan with brace-depth tracking)
# ---------------------------------------------------------------------------

COMPLETE_STORE = re.compile(
    r"\b(\w+)\s*(?:->|\.)\s*(?:done\.store\s*\(\s*(?:1|true)\b"
    r"|core\.complete\s*\(\s*\)"
    r"|complete\s*\(\s*\))")
RELAXED_DONE = re.compile(
    r"\b\w*done\w*\.store\s*\(\s*(?:1|true)\b[^;]*memory_order_relaxed")
RESERVED_TAG = re.compile(r"0[xX][fF]{4,}")
FOR_RANGE = re.compile(r"\bfor\s*\(.*?[&\s](\w+)\s*:\s*(\w+)\s*\)")


def scan_cpp(rel, text, spinlocks, callbacks, cb_containers, findings):
    lines = text.split("\n")
    depth = 0
    # (name, depth, store_line): objects whose completion store has landed.
    completed = []
    # (lock_name, kind, depth): kind 'manual' (until .unlock()) or
    # 'guard' (until the declaring scope closes).
    held = []
    # Range-for loop variables that iterate a std::function container.
    local_cbs = {}

    call_res = {}

    def cb_call_re(name):
        if name not in call_res:
            call_res[name] = re.compile(r"\b" + re.escape(name) + r"\s*\(")
        return call_res[name]

    guard_re = re.compile(
        r"\bsync::LockGuard\s*<[^>]*>\s+\w+\s*\(\s*(?:\w+(?:->|\.))?(\w+)")
    lock_re = re.compile(r"\b(\w+)\s*\.\s*(?:try_)?lock\s*\(\s*\)")
    unlock_re = re.compile(r"\b(\w+)\s*\.\s*unlock\s*\(\s*\)")

    for lineno, line in enumerate(lines, start=1):
        # --- rule: reserved-tag-literal (path-exempt file checked by caller)
        for m in RESERVED_TAG.finditer(line):
            # A literal right of '&' is a bit-field extraction mask, not a
            # tag-space constant (e.g. `(raddr >> 48) & 0xFFFFu`).
            before = line[:m.start()].rstrip()
            if before.endswith("&") and not before.endswith("&&"):
                continue
            findings.append((rel, lineno, "reserved-tag-literal",
                             "reserved-tag-space literal outside "
                             "src/nmad/types.hpp (move it there)"))
        # --- rule: relaxed-done-store
        if RELAXED_DONE.search(line):
            findings.append((rel, lineno, "relaxed-done-store",
                             "completion store to a done-flag uses "
                             "memory_order_relaxed (must be release)"))

        opens = line.count("{")
        closes = line.count("}")

        # --- rule: use-after-complete (check before recording new stores)
        store_matches = list(COMPLETE_STORE.finditer(line))
        stored_names = {m.group(1) for m in store_matches}
        for name, d, store_line in completed:
            if name in stored_names:
                continue  # idempotent double-complete patterns
            if re.search(r"\b" + re.escape(name) + r"\s*(?:->|\.)", line):
                findings.append(
                    (rel, lineno, "use-after-complete",
                     "'%s' touched after its completion store on line %d "
                     "(the store must be the last touch)" %
                     (name, store_line)))
        # Reassignment/redeclaration ends tracking.
        completed = [
            (n, d, sl) for (n, d, sl) in completed
            if not re.search(r"\b" + re.escape(n) + r"\s*=[^=]", line)
        ]
        for m in store_matches:
            completed.append((m.group(1), depth, lineno))

        # --- rule: callback-under-lock
        fr = FOR_RANGE.search(line)
        if fr and fr.group(2) in cb_containers:
            local_cbs[fr.group(1)] = depth
        if held:
            for name in list(callbacks) + list(local_cbs):
                m = cb_call_re(name).search(line)
                if not m:
                    continue
                # Declarations/assignments of the same name are not calls.
                if re.search(r"(?:std::function|=)\s*$",
                             line[:m.start()].rstrip()):
                    continue
                findings.append(
                    (rel, lineno, "callback-under-lock",
                     "callback '%s' invoked while spinlock '%s' is held "
                     "(complete outside the lock)" % (name, held[-1][0])))

        # Lock tracking (spinlocks only; annotated guards + manual pairs).
        gm = guard_re.search(line)
        if gm and gm.group(1) in spinlocks:
            held.append((gm.group(1), "guard", depth))
        else:
            lm = lock_re.search(line)
            if lm and lm.group(1) in spinlocks:
                held.append((lm.group(1), "manual", depth))
        um = unlock_re.search(line)
        if um and um.group(1) in spinlocks:
            # Drop the most recent manual hold of that name.
            for i in range(len(held) - 1, -1, -1):
                if held[i][0] == um.group(1) and held[i][1] == "manual":
                    del held[i]
                    break

        depth += opens - closes
        if closes > 0:
            completed = [c for c in completed if c[1] <= depth]
            held = [h for h in held if h[1] == "manual" or h[2] <= depth]
            local_cbs = {k: v for k, v in local_cbs.items() if v <= depth}


# ---------------------------------------------------------------------------
# CI rule
# ---------------------------------------------------------------------------

CTEST_BARE_J = re.compile(r"\bctest\b[^#\n]*\s-j(?!\d)")


def scan_ci(rel, text, findings):
    for lineno, line in enumerate(text.split("\n"), start=1):
        if CTEST_BARE_J.search(line):
            findings.append((rel, lineno, "ctest-parallel-flag",
                             "bare 'ctest -j' swallows the next argument; "
                             "spell it 'ctest --parallel N'"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def find_files(root):
    cpp = []
    ci = []
    src = os.path.join(root, "src")
    gh = os.path.join(root, ".github")
    if os.path.isdir(src):
        for dirpath, _, names in os.walk(src):
            for name in sorted(names):
                if name.endswith(CPP_EXTS):
                    cpp.append(os.path.join(dirpath, name))
    if os.path.isdir(gh):
        for dirpath, _, names in os.walk(gh):
            for name in sorted(names):
                if name.endswith((".yml", ".yaml")):
                    ci.append(os.path.join(dirpath, name))
    return sorted(cpp), sorted(ci)


def run(root):
    cpp_files, ci_files = find_files(root)
    spinlocks, callbacks, cb_containers, stripped = \
        collect_global_names(cpp_files)
    findings = []
    for path in cpp_files:
        rel = os.path.relpath(path, root)
        text = stripped[path]
        if rel.replace(os.sep, "/") == "src/nmad/types.hpp":
            # The one file allowed to spell reserved-tag literals: run the
            # other rules by temporarily blanking the literals.
            text = RESERVED_TAG.sub(lambda m: " " * len(m.group(0)), text)
        scan_cpp(rel, text, spinlocks, callbacks, cb_containers, findings)
    for path in ci_files:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            scan_ci(rel, f.read(), findings)
    findings.sort()
    return findings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repo root (holds src/ and .github/)")
    args = parser.parse_args(argv)
    if not os.path.isdir(args.root):
        print("piom_lint: no such directory: %s" % args.root,
              file=sys.stderr)
        return 2
    findings = run(args.root)
    for rel, lineno, rule, msg in findings:
        print("%s:%d: [%s] %s" % (rel, lineno, rule, msg))
    if findings:
        print("piom_lint: %d violation(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
