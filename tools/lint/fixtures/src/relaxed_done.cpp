#include <atomic>
struct Desc { std::atomic<unsigned> done; };
void bad_complete(Desc* d) {
  d->done.store(1, std::memory_order_relaxed);  // VIOLATION: must be release
}
void ok_reset(Desc* d) {
  d->done.store(0, std::memory_order_relaxed);  // reset: fine
  d->done.store(1, std::memory_order_release);
}
