#include <functional>
#include <vector>
#include "sync/locks.hpp"
struct Engine {
  sync::SpinLock lock_;
  std::function<void(int)> cb_;
  std::vector<std::function<void(int)>> callbacks_;
  void bad_manual() {
    lock_.lock();
    cb_(1);  // VIOLATION: callback invoked under a held spinlock
    lock_.unlock();
  }
  void bad_guard() {
    sync::LockGuard<sync::SpinLock> g(lock_);
    cb_(2);  // VIOLATION: callback invoked inside a LockGuard scope
  }
  void bad_loop() {
    lock_.lock();
    for (const auto& cb : callbacks_) {
      cb(3);  // VIOLATION: element of a std::function container
    }
    lock_.unlock();
  }
  void good_snapshot() {
    lock_.lock();
    std::vector<std::function<void(int)>> cbs = callbacks_;
    lock_.unlock();
    for (const auto& cb : cbs) {
      cb(4);  // fine: invoked after the unlock
    }
    cb_(5);  // fine: no lock held
  }
};
