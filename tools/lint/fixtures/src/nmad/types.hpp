// Fixture: the one file allowed to spell reserved-tag-space literals.
#pragma once
using Tag = unsigned;
inline constexpr Tag kAnyTag = 0xffffffffu;
inline constexpr Tag kDeathNoticeTag = 0xfffffffeu;
