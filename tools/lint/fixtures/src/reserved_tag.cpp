using Tag = unsigned;
inline constexpr Tag kBadTag = 0xffff0001u;  // VIOLATION: not in types.hpp
inline constexpr unsigned kPlainMask = 0xABCDu;
unsigned ok_extract(unsigned long long raddr) {
  return static_cast<unsigned>((raddr >> 32) & 0xFFFFFFFFu);
}
