#include <atomic>
struct Msg { std::atomic<unsigned> done; unsigned len; };
void bad_consume(Msg* m) {
  unsigned n = m->len;
  m->done.store(1, std::memory_order_release);
  n += m->len;  // VIOLATION: m touched after its completion store
  (void)n;
}
void ok_consume(Msg* m) {
  unsigned n = m->len;
  (void)n;
  m->done.store(1, std::memory_order_release);
}
void ok_reassigned(Msg* m, Msg* other) {
  m->done.store(1, std::memory_order_release);
  m = other;
  m->done.store(1, std::memory_order_release);
}
