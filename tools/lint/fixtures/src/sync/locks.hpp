// Fixture: minimal lock surface so the global name-collection passes see
// sync::SpinLock declarations and the LockGuard spelling.
#pragma once
namespace sync {
class SpinLock {
 public:
  void lock();
  bool try_lock();
  void unlock();
};
template <class Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& lock);
  ~LockGuard();
};
}  // namespace sync
