// piom_launch: run a piom program as N true OS processes.
//
//     piom_launch -n 4 [--root <uri>] -- ./example_multiprocess_ring [args]
//
// fork/execs the command once per rank with the bootstrap environment
// exported into each child:
//
//     PIOM_RANK      = 0 .. n-1
//     PIOM_NRANKS    = n
//     PIOM_ROOT_ADDR = the rendezvous address (default: a Unix socket
//                      under /tmp keyed by this launcher's pid)
//
// The children call transport::Bootstrap::from_env() (usually through
// mpi::World::local) to wire themselves into a socket mesh. The launcher
// waits for all ranks and exits nonzero if any rank does — killing the
// remaining ranks so a wedged cluster cannot outlive a failed one.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -n <nranks> [--root <tcp://host:port|uds:///path>] "
               "-- <command> [args...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int nranks = 0;
  std::string root_addr;
  int cmd_start = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      nranks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root_addr = argv[++i];
    } else if (std::strcmp(argv[i], "--") == 0) {
      cmd_start = i + 1;
      break;
    } else {
      return usage(argv[0]);
    }
  }
  if (nranks < 2 || cmd_start < 0 || cmd_start >= argc) return usage(argv[0]);
  if (root_addr.empty()) {
    root_addr = "uds:///tmp/piom-launch-" + std::to_string(::getpid()) +
                ".sock";
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int rank = 0; rank < nranks; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("piom_launch: fork");
      for (const pid_t p : pids) {
        if (p > 0) ::kill(p, SIGKILL);
      }
      return 1;
    }
    if (pid == 0) {
      ::setenv("PIOM_RANK", std::to_string(rank).c_str(), 1);
      ::setenv("PIOM_NRANKS", std::to_string(nranks).c_str(), 1);
      ::setenv("PIOM_ROOT_ADDR", root_addr.c_str(), 1);
      ::execvp(argv[cmd_start], argv + cmd_start);
      std::perror("piom_launch: execvp");
      _exit(127);
    }
    pids[static_cast<std::size_t>(rank)] = pid;
  }

  int exit_code = 0;
  for (int remaining = nranks; remaining > 0; --remaining) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) {
        ++remaining;
        continue;
      }
      std::perror("piom_launch: waitpid");
      exit_code = 1;
      break;
    }
    int rank = -1;
    for (int r = 0; r < nranks; ++r) {
      if (pids[static_cast<std::size_t>(r)] == pid) rank = r;
    }
    const bool failed =
        !WIFEXITED(status) || WEXITSTATUS(status) != 0;
    if (failed) {
      std::fprintf(stderr, "piom_launch: rank %d (pid %d) %s %d\n", rank,
                   static_cast<int>(pid),
                   WIFSIGNALED(status) ? "killed by signal" : "exited with",
                   WIFSIGNALED(status) ? WTERMSIG(status)
                                       : WEXITSTATUS(status));
      if (exit_code == 0) {
        exit_code = 1;
        // One rank down means the cluster cannot complete: reap the rest
        // instead of letting them spin against a dead peer.
        for (const pid_t p : pids) {
          if (p > 0 && p != pid) ::kill(p, SIGTERM);
        }
      }
    }
  }
  return exit_code;
}
