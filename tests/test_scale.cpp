// Scale tests for the overlay/membership layer (mpi/membership.hpp):
//   * ScaleMatrix — the same SPMD script (p2p inside and outside the view,
//     wildcard receives, every tree-capable collective) runs under forced
//     dense AND forced sparse overlays, all three engines, simnet and shmem
//     meshes, and asserts the same analytic results — sparse must be an
//     invisible drop-in for dense.
//   * Lazy gates — a dense world only pays for the pairs that talk; a
//     sparse world's per-rank gate count stays bounded by the view size
//     (fanout + ring + parent) no matter how many ranks the collective
//     spans (asserted at N=64 and N=256).
//   * Forwarding — off-view point-to-point traffic is relayed along the
//     tree (Membership::stats proves frames were originated, relayed by an
//     interior rank, and delivered), including payloads larger than the
//     kForward fragment size.
//   * Races — first-message gate creation racing a wildcard receive, and
//     two ranks first-messaging each other simultaneously (the connector's
//     idempotent-pair protocol).
//   * Death flood — in sparse mode a rank with no gate to the victim still
//     learns of the failure via the epidemic death notice.
//
// Every world forces overlay.mode explicitly, so the suite asserts the
// same things whether or not CI forces $PIOM_OVERLAY=sparse globally.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "mpi/world.hpp"
#include "util/timing.hpp"

namespace piom::mpi {
namespace {

#ifdef PIOM_TEST_SANITIZED
constexpr double kTimeDilation = 5.0;
#else
constexpr double kTimeDilation = 1.0;
#endif

enum class MeshKind { kSimnet, kShmem };

WorldConfig scale_config(EngineKind kind, int nranks, OverlayMode overlay,
                         MeshKind mesh, int fanout = 4) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.nranks = nranks;
  cfg.time_scale = 0.05;
  cfg.session.pool_bufs_per_rail = 8;
  cfg.session.pool_bufs_initial = 1;  // big-N worlds: pay per active gate
  cfg.pioman.workers = 1;
  cfg.overlay.mode = overlay;
  cfg.overlay.fanout = fanout;
  if (mesh == MeshKind::kShmem) {
    cfg.policy.node_of.assign(static_cast<std::size_t>(nranks), 0);
    cfg.policy.intra = transport::PairWiring::kShmem;
  }
  return cfg;
}

std::string engine_tag(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich";
    case EngineKind::kOpenMpiLike: return "openmpi";
  }
  return "unknown";
}

// ---- dense == sparse equivalence matrix ------------------------------------

using Param = std::tuple<EngineKind, OverlayMode, MeshKind>;
class ScaleMatrix : public ::testing::TestWithParam<Param> {};

// One SPMD script, identical assertions under both overlays. N=16 with
// fanout 2 gives the sparse tree real depth (4 levels) while keeping the
// pair count one CPU can progress; the p2p phase talks to the ring
// neighbour (in view) and the diametral rank (outside the sparse view, so
// it exercises forwarding), not all N-1 peers — the dense world stays lazy
// and the simnet instance doesn't spawn a quadratic NIC-thread mesh.
TEST_P(ScaleMatrix, SparseIsADropInForDense) {
  const auto [kind, overlay, mesh] = GetParam();
  constexpr int n = 16;
  World world(scale_config(kind, n, overlay, mesh, /*fanout=*/2));
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      const int n = comm.size();

      // ---- p2p: ring neighbour (view edge) + diametral rank (forwarded
      // ---- in sparse mode) ----
      for (const int d : {1, n / 2}) {
        const int to = (r + d) % n;
        const int from = (r - d + n) % n;
        const int32_t mine = r * 100 + d;
        int32_t got = -1;
        comm.sendrecv(to, static_cast<Tag>(20 + d), &mine, sizeof(mine),
                      from, static_cast<Tag>(20 + d), &got, sizeof(got));
        EXPECT_EQ(got, from * 100 + d);
      }

      // ---- wildcard receive fed by an off-view sender ----
      comm.barrier();
      if (r == 0) {
        std::vector<bool> seen(static_cast<std::size_t>(n), false);
        for (int i = 0; i < n - 1; ++i) {
          int32_t v = -1;
          const Status st =
              comm.recv_status(Comm::kAnySource, 7, &v, sizeof(v));
          ASSERT_GE(st.source, 1);
          ASSERT_LT(st.source, n);
          EXPECT_FALSE(seen[static_cast<std::size_t>(st.source)]);
          seen[static_cast<std::size_t>(st.source)] = true;
          EXPECT_EQ(v, st.source * 10);
        }
      } else {
        const int32_t v = r * 10;
        comm.send(0, 7, &v, sizeof(v));
      }

      // ---- bcast from rank 0 and from a non-zero root (the tree variant
      // ---- hands off to rank 0 first) ----
      for (const int root : {0, n - 1}) {
        std::vector<int64_t> data(48);
        if (r == root) std::iota(data.begin(), data.end(), root * 100);
        comm.bcast(data.data(), data.size() * sizeof(int64_t), root);
        std::vector<int64_t> expect(48);
        std::iota(expect.begin(), expect.end(), root * 100);
        EXPECT_EQ(data, expect);
      }

      // ---- allreduce: sum and max ----
      {
        std::vector<int64_t> v{r + 1, -r, r % 3};
        comm.allreduce(v.data(), v.size(), ReduceOp::kSum);
        int64_t s0 = 0, s1 = 0, s2 = 0;
        for (int i = 0; i < n; ++i) {
          s0 += i + 1;
          s1 -= i;
          s2 += i % 3;
        }
        EXPECT_EQ(v[0], s0);
        EXPECT_EQ(v[1], s1);
        EXPECT_EQ(v[2], s2);
        double mx[2] = {static_cast<double>(r), static_cast<double>(-r)};
        comm.allreduce(mx, 2, ReduceOp::kMax);
        EXPECT_DOUBLE_EQ(mx[0], n - 1);
        EXPECT_DOUBLE_EQ(mx[1], 0.0);
      }

      // ---- gather + scatter stay dense algorithms in both modes ----
      {
        const int root = 1;
        const int32_t mine = 100 + r;
        std::vector<int32_t> all(r == root ? static_cast<std::size_t>(n) : 0);
        comm.gather(&mine, sizeof(mine), r == root ? all.data() : nullptr,
                    root);
        if (r == root) {
          for (int i = 0; i < n; ++i) {
            EXPECT_EQ(all[static_cast<std::size_t>(i)], 100 + i);
          }
          for (auto& x : all) x += 1000;
        }
        int32_t back = -1;
        comm.scatter(r == root ? all.data() : nullptr, sizeof(int32_t),
                     &back, root);
        EXPECT_EQ(back, 1100 + r);
      }

      comm.barrier();
    });
  }
  for (auto& t : ranks) t.join();
}

INSTANTIATE_TEST_SUITE_P(
    EnginesOverlaysMeshes, ScaleMatrix,
    ::testing::Combine(::testing::Values(EngineKind::kPioman,
                                         EngineKind::kMvapichLike,
                                         EngineKind::kOpenMpiLike),
                       ::testing::Values(OverlayMode::kDense,
                                         OverlayMode::kSparse),
                       ::testing::Values(MeshKind::kSimnet,
                                         MeshKind::kShmem)),
    [](const auto& info) {
      return engine_tag(std::get<0>(info.param)) + "_" +
             overlay_mode_name(std::get<1>(info.param)) +
             (std::get<2>(info.param) == MeshKind::kShmem ? "_shmem"
                                                          : "_simnet");
    });

// ---- lazy gates ------------------------------------------------------------

TEST(LazyGates, DenseWorldOnlyWiresPairsThatTalk) {
  constexpr int n = 16;
  World world(scale_config(EngineKind::kMvapichLike, n, OverlayMode::kDense,
                           MeshKind::kShmem));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(world.comm(r).membership().installed_gates(), 0)
        << "rank " << r << " paid for gates before any traffic";
  }
  std::thread rx([&] {
    int32_t v = -1;
    world.comm(1).recv(0, 5, &v, sizeof(v));
    EXPECT_EQ(v, 41);
  });
  const int32_t v = 41;
  world.comm(0).send(1, 5, &v, sizeof(v));
  rx.join();
  EXPECT_EQ(world.comm(0).membership().installed_gates(), 1);
  EXPECT_EQ(world.comm(1).membership().installed_gates(), 1);
  for (int r = 2; r < n; ++r) {
    EXPECT_EQ(world.comm(r).membership().installed_gates(), 0)
        << "rank " << r << " was wired by a conversation it is not part of";
  }
}

TEST(LazyGates, DenseCollectiveWiresItsPatternNotTheMesh) {
  // The dissemination barrier at N=16 touches ranks ±2^k — 8 distinct
  // peers per rank, not 15. The lazy mesh must only pay for those.
  constexpr int n = 16;
  World world(scale_config(EngineKind::kOpenMpiLike, n, OverlayMode::kDense,
                           MeshKind::kShmem));
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&, r] { world.comm(r).barrier(); });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < n; ++r) {
    const int gates = world.comm(r).membership().installed_gates();
    EXPECT_GE(gates, 1) << "rank " << r;
    EXPECT_LE(gates, 8) << "rank " << r
                        << " wired more than the barrier's pattern";
  }
}

TEST(LazyGates, SparseGateCountBoundedByViewAtN64) {
  // The headline scaling claim: at N=64 a full collective + off-view p2p
  // workload keeps every rank at <= fanout + 3 gates (children + parent +
  // ring), two orders below the dense mesh's 63.
  constexpr int n = 64;
  constexpr int fanout = 4;
  World world(scale_config(EngineKind::kOpenMpiLike, n, OverlayMode::kSparse,
                           MeshKind::kShmem, fanout));
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      comm.barrier();
      int64_t v = r;
      comm.allreduce(&v, 1, ReduceOp::kSum);
      EXPECT_EQ(v, n * (n - 1) / 2);
      std::vector<uint8_t> blob(512);
      if (r == 0) std::fill(blob.begin(), blob.end(), 0x5a);
      comm.bcast(blob.data(), blob.size(), 0);
      EXPECT_EQ(blob[511], 0x5a);
      // Off-view p2p: the diametral pairing is forwarded, not wired.
      const int to = (r + n / 2) % n;
      const int from = to;  // diametral pairing is an involution at even N
      const int32_t mine = 7000 + r;
      int32_t got = -1;
      comm.sendrecv(to, 9, &mine, sizeof(mine), from, 9, &got, sizeof(got));
      EXPECT_EQ(got, 7000 + from);
      comm.barrier();
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < n; ++r) {
    const Membership& m = world.comm(r).membership();
    EXPECT_LE(m.view().size(), static_cast<std::size_t>(fanout + 3));
    EXPECT_LE(m.installed_gates(), fanout + 3)
        << "rank " << r << " wired gates outside its view";
    // Routing sanity: every first hop is a view edge, and the view is
    // symmetric (both endpoints agree they are neighbours).
    for (int dst = 0; dst < n; ++dst) {
      if (dst == r) continue;
      EXPECT_TRUE(m.in_view(m.next_hop(dst)))
          << "rank " << r << " routes to " << dst << " via a non-view hop";
    }
    for (const int p : m.view()) {
      EXPECT_TRUE(world.comm(p).membership().in_view(r))
          << "view edge " << r << "<->" << p << " is not symmetric";
    }
  }
}

TEST(LazyGates, SparseSpotCheckAtN256) {
  // The ISSUE's headline size on a one-CPU container: caller-driven
  // engine, shmem mesh, minimal per-gate pools. Barrier + allreduce +
  // bcast over 256 ranks, then the same per-rank gate bound as N=64.
  constexpr int n = 256;
  constexpr int fanout = 4;
  World world(scale_config(EngineKind::kOpenMpiLike, n, OverlayMode::kSparse,
                           MeshKind::kShmem, fanout));
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      comm.barrier();
      int64_t v = 1;
      comm.allreduce(&v, 1, ReduceOp::kSum);
      EXPECT_EQ(v, n);
      int32_t word = r == 0 ? 424242 : -1;
      comm.bcast(&word, sizeof(word), 0);
      EXPECT_EQ(word, 424242);
    });
  }
  for (auto& t : ranks) t.join();
  int max_gates = 0;
  for (int r = 0; r < n; ++r) {
    max_gates = std::max(max_gates, world.comm(r).membership().installed_gates());
  }
  EXPECT_LE(max_gates, fanout + 3)
      << "a 256-rank collective should cost each rank a handful of gates";
}

// ---- forwarding ------------------------------------------------------------

TEST(Forwarding, OffViewTrafficRidesTheTree) {
  // fanout 2, N=16: ranks 0 and 13 are several tree hops apart. Small and
  // multi-fragment (> 32 KiB kForwardChunk) payloads must arrive intact,
  // and the membership counters must show origination, interior relaying
  // and delivery.
  constexpr int n = 16;
  World world(scale_config(EngineKind::kPioman, n, OverlayMode::kSparse,
                           MeshKind::kShmem, /*fanout=*/2));
  const int src = 13, dst = 0;
  ASSERT_FALSE(world.comm(src).membership().in_view(dst))
      << "pick a pair outside the view or the test asserts nothing";

  std::thread rx([&] {
    int32_t v = -1;
    world.comm(dst).recv(src, 11, &v, sizeof(v));
    EXPECT_EQ(v, 1311);
    // Wildcard receives must also see forwarded traffic.
    int32_t w = -1;
    const Status st =
        world.comm(dst).recv_status(Comm::kAnySource, 12, &w, sizeof(w));
    EXPECT_EQ(st.source, src);
    EXPECT_EQ(w, 1312);
    std::vector<uint8_t> big(100 * 1000);
    world.comm(dst).recv(src, 13, big.data(), big.size());
    bool ok = true;
    for (std::size_t i = 0; i < big.size(); ++i) {
      ok = ok && big[i] == static_cast<uint8_t>(i * 13);
    }
    EXPECT_TRUE(ok) << "fragmented forward corrupted the payload";
  });
  const int32_t v = 1311, w = 1312;
  world.comm(src).send(dst, 11, &v, sizeof(v));
  world.comm(src).send(dst, 12, &w, sizeof(w));
  std::vector<uint8_t> big(100 * 1000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 13);
  }
  world.comm(src).send(dst, 13, big.data(), big.size());
  rx.join();

  EXPECT_GE(world.comm(src).membership().stats().forwards_originated, 3u);
  EXPECT_GE(world.comm(dst).membership().stats().forwards_delivered, 3u);
  uint64_t relayed = 0;
  for (int r = 0; r < n; ++r) {
    relayed += world.comm(r).membership().stats().forwards_relayed;
  }
  EXPECT_GE(relayed, 1u) << "a 13->0 route at fanout 2 has interior hops";
}

// ---- first-contact races ---------------------------------------------------

TEST(LazyGates, FirstMessageRacesWildcardReceive) {
  // The coverage-invariant race: rank 0's any-source receive is being
  // registered while senders trigger gate creation with their first-ever
  // message. A gate installed mid-registration must still be covered (the
  // WildSet add_gate/post protocol), or the wildcard hangs. Fresh world
  // every iteration so the gates really are created under fire.
  for (int iter = 0; iter < 8; ++iter) {
    constexpr int n = 4;
    World world(scale_config(EngineKind::kPioman, n, OverlayMode::kDense,
                             MeshKind::kShmem));
    std::vector<std::thread> senders;
    for (int s = 1; s < n; ++s) {
      senders.emplace_back([&world, s] {
        for (int i = 0; i < 8; ++i) {
          const int32_t v = s * 1000 + i;
          world.comm(s).send(0, 6, &v, sizeof(v));
        }
      });
    }
    std::vector<int> next(n, 0);
    for (int i = 0; i < (n - 1) * 8; ++i) {
      int32_t v = -1;
      const Status st =
          world.comm(0).recv_status(Comm::kAnySource, 6, &v, sizeof(v));
      ASSERT_GE(st.source, 1);
      ASSERT_LT(st.source, n);
      EXPECT_EQ(v,
                st.source * 1000 + next[static_cast<std::size_t>(st.source)]);
      ++next[static_cast<std::size_t>(st.source)];
    }
    for (auto& t : senders) t.join();
  }
}

TEST(LazyGates, SimultaneousFirstContactWiresOnePair) {
  // Both endpoints first-message each other at once: the connector runs
  // concurrently for the same pair from both sides and must converge on
  // exactly one gate pair (idempotent install), with neither send lost.
  for (const EngineKind kind :
       {EngineKind::kPioman, EngineKind::kMvapichLike}) {
    for (int iter = 0; iter < 8; ++iter) {
      World world(scale_config(kind, 4, OverlayMode::kDense,
                               MeshKind::kShmem));
      std::atomic<int> go{0};
      auto slam = [&world, &go](int me, int peer) {
        go.fetch_add(1);
        while (go.load() < 2) {}  // line both first-sends up
        const int32_t v = 100 + me;
        world.comm(me).send(peer, 3, &v, sizeof(v));
        int32_t got = -1;
        world.comm(me).recv(peer, 3, &got, sizeof(got));
        EXPECT_EQ(got, 100 + peer);
      };
      std::thread a(slam, 1, 2);
      std::thread b(slam, 2, 1);
      a.join();
      b.join();
      EXPECT_EQ(world.comm(1).membership().installed_gates(), 1);
      EXPECT_EQ(world.comm(2).membership().installed_gates(), 1);
    }
  }
}

// ---- sparse failure dissemination ------------------------------------------

TEST(DeathFlood, OffViewSurvivorLearnsOfTheFailure) {
  // fanout 2, N=8: the victim (7) is a leaf whose view is {parent 3, ring
  // 6, ring 0}. Rank 4 holds no gate to it, so its own detector can never
  // time the victim out — it must adopt the verdict from the death notice
  // flooded along the tree.
  constexpr int n = 8;
  WorldConfig cfg = scale_config(EngineKind::kOpenMpiLike, n,
                                 OverlayMode::kSparse, MeshKind::kShmem,
                                 /*fanout=*/2);
  cfg.failure.enabled = true;
  cfg.failure.heartbeat_period_us = 2000.0 * kTimeDilation;
  cfg.failure.timeout_periods = 40;
  World world(cfg);
  const int victim = 7;
  ASSERT_FALSE(world.comm(4).membership().in_view(victim));

  world.kill_rank(victim);
  const int64_t deadline =
      util::now_ns() +
      10 * static_cast<int64_t>(cfg.failure.heartbeat_period_us * 1e3) *
          (cfg.failure.timeout_periods + 1);
  std::vector<int> waiting;
  for (int r = 0; r < n - 1; ++r) waiting.push_back(r);
  while (!waiting.empty() && util::now_ns() < deadline) {
    std::vector<int> still;
    for (const int r : waiting) {
      world.comm(r).engine().progress();  // caller-driven engines
      if (!world.comm(r).rank_failed(victim)) still.push_back(r);
    }
    waiting.swap(still);
    std::this_thread::yield();
  }
  EXPECT_TRUE(waiting.empty())
      << waiting.size() << " survivors (first: rank "
      << (waiting.empty() ? -1 : waiting.front())
      << ") never learned of the death";
  uint64_t notices = 0;
  for (int r = 0; r < n; ++r) {
    notices += world.comm(r).membership().stats().death_notices;
  }
  EXPECT_GE(notices, 1u) << "nobody flooded a death notice";
}

}  // namespace
}  // namespace piom::mpi
