// Integration tests across the whole stack: mini-MPI over nmad over the
// simulated fabric, for all three progress engines.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <numeric>
#include <thread>
#include <vector>

#include "mpi/engine_globallock.hpp"
#include "mpi/world.hpp"
#include "util/timing.hpp"

namespace piom::mpi {
namespace {

WorldConfig fast_config(EngineKind kind) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.time_scale = 0.05;  // 20x faster network: keep tests snappy
  cfg.pioman.workers = 2;
  return cfg;
}

class MpiAllEngines : public ::testing::TestWithParam<EngineKind> {};

TEST_P(MpiAllEngines, BlockingSendRecvSmall) {
  World world(fast_config(GetParam()));
  const std::string msg = "hello mpi";
  char buf[32] = {};
  std::thread receiver([&] { world.comm(1).recv(0, 7, buf, sizeof(buf)); });
  world.comm(0).send(1, 7, msg.data(), msg.size() + 1);
  receiver.join();
  EXPECT_STREQ(buf, msg.c_str());
}

TEST_P(MpiAllEngines, BlockingSendRecvLarge) {
  World world(fast_config(GetParam()));
  std::vector<uint8_t> data(1 << 20);
  std::iota(data.begin(), data.end(), 3);
  std::vector<uint8_t> out(data.size(), 0);
  std::thread receiver(
      [&] { world.comm(1).recv(0, 9, out.data(), out.size()); });
  world.comm(0).send(1, 9, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(out, data);
}

TEST_P(MpiAllEngines, NonblockingPingPong) {
  World world(fast_config(GetParam()));
  for (int i = 0; i < 20; ++i) {
    char ping = static_cast<char>('a' + i % 26);
    char pong = 0;
    std::thread peer([&] {
      char got = 0;
      Request r;
      world.comm(1).irecv(r, 0, 1, &got, 1);
      world.comm(1).wait(r);
      Request s;
      world.comm(1).isend(s, 0, 2, &got, 1);
      world.comm(1).wait(s);
    });
    Request s, r;
    world.comm(0).isend(s, 1, 1, &ping, 1);
    world.comm(0).irecv(r, 1, 2, &pong, 1);
    world.comm(0).wait(s);
    world.comm(0).wait(r);
    peer.join();
    EXPECT_EQ(pong, ping);
  }
}

TEST_P(MpiAllEngines, TestEventuallyCompletes) {
  World world(fast_config(GetParam()));
  char buf[8] = {};
  Request r;
  world.comm(1).irecv(r, 0, 4, buf, sizeof(buf));
  EXPECT_FALSE(r.done());
  std::thread sender([&] { world.comm(0).send(1, 4, "ok", 3); });
  const int64_t deadline = util::now_ns() + 5'000'000'000;
  while (!world.comm(1).test(r) && util::now_ns() < deadline) {
  }
  sender.join();
  EXPECT_TRUE(r.done());
  EXPECT_STREQ(buf, "ok");
}

TEST_P(MpiAllEngines, ManyTagsInterleaved) {
  World world(fast_config(GetParam()));
  constexpr int kMsgs = 40;
  std::vector<std::array<char, 8>> bufs(kMsgs);
  std::deque<Request> rreqs(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    world.comm(1).irecv(rreqs[static_cast<std::size_t>(i)], 0,
                        static_cast<Tag>(i), bufs[static_cast<std::size_t>(i)].data(), 8);
  }
  std::deque<Request> sreqs(kMsgs);
  std::vector<std::string> payloads;
  for (int i = 0; i < kMsgs; ++i) payloads.push_back(std::to_string(i));
  // Send in reverse tag order to stress matching.
  for (int i = kMsgs - 1; i >= 0; --i) {
    world.comm(0).isend(sreqs[static_cast<std::size_t>(i)], 1,
                        static_cast<Tag>(i),
                        payloads[static_cast<std::size_t>(i)].data(),
                        payloads[static_cast<std::size_t>(i)].size() + 1);
  }
  for (int i = 0; i < kMsgs; ++i) {
    world.comm(0).wait(sreqs[static_cast<std::size_t>(i)]);
    world.comm(1).wait(rreqs[static_cast<std::size_t>(i)]);
    EXPECT_STREQ(bufs[static_cast<std::size_t>(i)].data(),
                 payloads[static_cast<std::size_t>(i)].c_str());
  }
}

TEST_P(MpiAllEngines, ConcurrentReceiverThreads) {
  // Miniature Fig-4 workload: several receiver threads blocked in recv.
  World world(fast_config(GetParam()));
  constexpr int kThreads = 8;
  std::vector<std::thread> receivers;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    receivers.emplace_back([&, t] {
      int32_t v = -1;
      world.comm(1).recv(0, static_cast<Tag>(t), &v, sizeof(v));
      if (v == t * 11) ok.fetch_add(1);
      int32_t reply = v * 2;
      world.comm(1).send(0, static_cast<Tag>(1000 + t), &reply, sizeof(reply));
    });
  }
  for (int t = 0; t < kThreads; ++t) {
    const int32_t v = t * 11;
    world.comm(0).send(1, static_cast<Tag>(t), &v, sizeof(v));
    int32_t reply = -1;
    world.comm(0).recv(1, static_cast<Tag>(1000 + t), &reply, sizeof(reply));
    EXPECT_EQ(reply, v * 2);
  }
  for (auto& th : receivers) th.join();
  EXPECT_EQ(ok.load(), kThreads);
}

TEST_P(MpiAllEngines, BadRankArguments) {
  World world(fast_config(GetParam()));
  Request r;
  char b = 0;
  EXPECT_THROW(world.comm(0).isend(r, 0, 1, &b, 1), std::invalid_argument);
  EXPECT_THROW(world.comm(0).irecv(r, 0, 1, &b, 1), std::invalid_argument);
  EXPECT_THROW((void)world.comm(2), std::out_of_range);
  EXPECT_THROW((void)world.comm(-1), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(Engines, MpiAllEngines,
                         ::testing::Values(EngineKind::kPioman,
                                           EngineKind::kMvapichLike,
                                           EngineKind::kOpenMpiLike),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kPioman: return "pioman";
                             case EngineKind::kMvapichLike: return "mvapich";
                             case EngineKind::kOpenMpiLike: return "openmpi";
                           }
                           return "unknown";
                         });

TEST(MpiPioman, ReceiverSideOverlapBeatsBaseline) {
  // The paper's headline property, as a test: with computation on the
  // RECEIVER side, the pioman engine's background progression must overlap
  // the rendezvous, the global-lock baseline must not.
  //
  // Overlap needs the progression workers to actually run in parallel with
  // the compute burn; on fewer than 4 hardware threads (sender + receiver +
  // 2 pioman workers) the measured ratio is pure scheduler noise.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads to measure overlap";
  }
  auto measure = [](EngineKind kind) {
    WorldConfig cfg;
    cfg.engine = kind;
    cfg.time_scale = 1.0;
    cfg.pioman.workers = 2;
    World world(cfg);
    const std::size_t size = 1 << 20;  // 1 MB: rendezvous, ~0.8ms transfer
    std::vector<uint8_t> data(size, 0x42), out(size, 0);
    const double compute_us = 3000;  // computation > transfer time
    double total_us = 0;
    std::thread sender([&] {
      world.comm(0).send(1, 5, data.data(), data.size());
    });
    {
      Request r;
      const int64_t t0 = util::now_ns();
      world.comm(1).irecv(r, 0, 5, out.data(), out.size());
      util::burn_cpu_us(compute_us);
      world.comm(1).wait(r);
      total_us = static_cast<double>(util::now_ns() - t0) * 1e-3;
    }
    sender.join();
    return compute_us / total_us;  // overlap ratio
  };
  const double pioman_ratio = measure(EngineKind::kPioman);
  const double baseline_ratio = measure(EngineKind::kMvapichLike);
  EXPECT_GT(pioman_ratio, 0.75) << "pioman must overlap on the receiver side";
  EXPECT_LT(baseline_ratio, pioman_ratio);
}

TEST(MpiPioman, SubmissionOffloadTaskRuns) {
  WorldConfig cfg = fast_config(EngineKind::kPioman);
  World world(cfg);
  auto& engine = dynamic_cast<PiomanEngine&>(world.engine(0));
  const uint64_t submissions_before = engine.task_manager().submissions();
  char buf[8] = {};
  std::thread receiver([&] { world.comm(1).recv(0, 3, buf, sizeof(buf)); });
  world.comm(0).send(1, 3, "off", 4);
  receiver.join();
  // At least the offloaded flush task was submitted (plus polling tasks).
  EXPECT_GT(engine.task_manager().submissions(), submissions_before);
  EXPECT_STREQ(buf, "off");
}

TEST(MpiPioman, InlineSubmissionAblationWorks) {
  WorldConfig cfg = fast_config(EngineKind::kPioman);
  cfg.pioman.offload_submission = false;
  World world(cfg);
  char buf[8] = {};
  std::thread receiver([&] { world.comm(1).recv(0, 3, buf, sizeof(buf)); });
  world.comm(0).send(1, 3, "inl", 4);
  receiver.join();
  EXPECT_STREQ(buf, "inl");
}

TEST(MpiWorld, MultirailWorldTransfersCorrectly) {
  WorldConfig cfg = fast_config(EngineKind::kPioman);
  cfg.rails = 2;
  cfg.session.strategy.multirail_stripe = true;
  cfg.session.strategy.stripe_min_chunk = 16 * 1024;
  World world(cfg);
  std::vector<uint8_t> data(1 << 20);
  std::iota(data.begin(), data.end(), 0);
  std::vector<uint8_t> out(data.size(), 0);
  std::thread receiver(
      [&] { world.comm(1).recv(0, 2, out.data(), out.size()); });
  world.comm(0).send(1, 2, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(out, data);
}

TEST(MpiWorld, ShutdownIsIdempotent) {
  World world(fast_config(EngineKind::kPioman));
  world.shutdown();
  world.shutdown();
  SUCCEED();
}

TEST(MpiWorld, RejectsBadConfig) {
  WorldConfig cfg;
  cfg.rails = 0;
  EXPECT_THROW(World{cfg}, std::invalid_argument);
}


/// Engine-orthogonal message-size sweep across the eager/rendezvous
/// boundary, verifying payload integrity end to end.
class MpiSizeSweep
    : public ::testing::TestWithParam<std::tuple<EngineKind, std::size_t>> {};

TEST_P(MpiSizeSweep, PayloadIntact) {
  const auto [kind, size] = GetParam();
  World world(fast_config(kind));
  std::vector<uint8_t> data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<uint8_t>(i * 13);
  std::vector<uint8_t> out(size, 0);
  std::thread rx([&] { world.comm(1).recv(0, 2, out.data(), out.size()); });
  world.comm(0).send(1, 2, data.data(), data.size());
  rx.join();
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSizes, MpiSizeSweep,
    ::testing::Combine(::testing::Values(EngineKind::kPioman,
                                         EngineKind::kMvapichLike,
                                         EngineKind::kOpenMpiLike),
                       ::testing::Values(std::size_t{1}, std::size_t{4096},
                                         std::size_t{16384},
                                         std::size_t{16385},
                                         std::size_t{1} << 19)),
    [](const auto& info) {
      const char* e = "";
      switch (std::get<0>(info.param)) {
        case EngineKind::kPioman: e = "pioman"; break;
        case EngineKind::kMvapichLike: e = "mvapich"; break;
        case EngineKind::kOpenMpiLike: e = "openmpi"; break;
      }
      return std::string(e) + "_b" + std::to_string(std::get<1>(info.param));
    });

TEST(MpiIntrospection, EngineNamesAndLockStats) {
  World pioman(fast_config(EngineKind::kPioman));
  EXPECT_EQ(pioman.engine(0).name(), "pioman");
  World mv(fast_config(EngineKind::kMvapichLike));
  EXPECT_EQ(mv.engine(0).name(), "mvapich-like");
  World om(fast_config(EngineKind::kOpenMpiLike));
  EXPECT_EQ(om.engine(1).name(), "openmpi-like");
  EXPECT_STREQ(engine_kind_name(EngineKind::kPioman), "pioman");
  // The global-lock engine counts its lock traffic (Fig 4's contention).
  auto& eng = dynamic_cast<GlobalLockEngine&>(mv.engine(0));
  const uint64_t before = eng.lock_acquisitions();
  char buf[4] = {};
  std::thread rx([&] { mv.comm(1).recv(0, 1, buf, sizeof(buf)); });
  mv.comm(0).send(1, 1, "x", 2);
  rx.join();
  EXPECT_GT(eng.lock_acquisitions(), before);
}

}  // namespace
}  // namespace piom::mpi
