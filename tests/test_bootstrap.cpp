// Bootstrap + LocalRank tests: the multi-process wiring path, exercised
// in-process with one thread per "rank" (each thread owns a full
// Bootstrap → TcpTransport → LocalRank stack, exactly what one OS process
// owns under tools/piom_launch — only the address space is shared).
// Request::status() coverage rides along: it must be valid after
// completion on all three progress engines, in both World shapes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "transport/bootstrap.hpp"
#include "transport/endpoint.hpp"

namespace piom {
namespace {

using transport::Bootstrap;
using transport::Endpoint;

/// Run `fn(rank, bootstrap)` on nranks threads wired by one rendezvous.
template <typename Fn>
void with_bootstrapped_ranks(int nranks, const Endpoint& root_addr, Fn fn) {
  std::vector<std::thread> threads;
  for (int rank = 0; rank < nranks; ++rank) {
    threads.emplace_back([&, rank] {
      Bootstrap bs = rank == 0 ? Bootstrap::root(nranks, root_addr)
                               : Bootstrap::join(rank, root_addr);
      fn(rank, std::move(bs));
    });
  }
  for (auto& t : threads) t.join();
}

TEST(Bootstrap, WiresAFullMeshOverUnixSockets) {
  const Endpoint root_addr = Endpoint::uds("/tmp/piom-test-bs-mesh.sock");
  with_bootstrapped_ranks(3, root_addr, [](int rank, Bootstrap bs) {
    EXPECT_EQ(bs.rank(), rank);
    EXPECT_EQ(bs.nranks(), 3);
    ASSERT_EQ(bs.table().size(), 3u);
    ASSERT_EQ(bs.channels().size(), 3u);
    for (int peer = 0; peer < 3; ++peer) {
      if (peer == rank) {
        EXPECT_EQ(bs.channels()[static_cast<std::size_t>(peer)], nullptr);
      } else {
        ASSERT_NE(bs.channels()[static_cast<std::size_t>(peer)], nullptr);
        EXPECT_TRUE(
            bs.channels()[static_cast<std::size_t>(peer)]->connected());
      }
    }
    // Raw channel traffic ring: send my rank to rank+1, recv from rank-1.
    const int right = (rank + 1) % 3;
    const int left = (rank + 2) % 3;
    int32_t tx = rank, rx = -1;
    transport::IChannel* to = bs.channels()[static_cast<std::size_t>(right)];
    transport::IChannel* from = bs.channels()[static_cast<std::size_t>(left)];
    from->post_recv(&rx, sizeof(rx), 1);
    to->post_send(&tx, sizeof(tx), 2);
    transport::Completion c{};
    while (!from->poll_rx(c)) {
    }
    EXPECT_EQ(rx, left);
    to->quiesce();
  });
}

TEST(Bootstrap, WiresAFullMeshOverTcp) {
  // Fixed port: joiners must know the root's control address up front
  // (ephemeral ports only work for the *data* listeners, whose resolved
  // addresses travel through the rendezvous).
  const Endpoint root_addr = Endpoint::tcp("127.0.0.1", 47613);
  with_bootstrapped_ranks(2, root_addr, [](int rank, Bootstrap bs) {
    const int peer = 1 - rank;
    transport::IChannel* ch = bs.channels()[static_cast<std::size_t>(peer)];
    ASSERT_NE(ch, nullptr);
    char tx[8] = "tcp!", rx[8] = {};
    ch->post_recv(rx, sizeof(rx), 1);
    ch->post_send(tx, sizeof(tx), 2);
    transport::Completion c{};
    while (!ch->poll_rx(c)) {
    }
    EXPECT_STREQ(rx, "tcp!");
    ch->quiesce();
  });
}

TEST(Bootstrap, RejectsBogusEnvironment) {
  EXPECT_THROW((void)Bootstrap::root(1, Endpoint::uds("/tmp/piom-bs-1.sock")),
               std::invalid_argument);
  EXPECT_THROW(
      (void)Bootstrap::join(-1, Endpoint::uds("/tmp/piom-bs-neg.sock")),
      std::invalid_argument);
  // Socket schemes only: the rendezvous needs a real address.
  EXPECT_THROW((void)Bootstrap::root(2, Endpoint::parse("sim://")),
               std::invalid_argument);
}

// ------------------------------------------------- LocalRank over sockets

class LocalRankEngines
    : public ::testing::TestWithParam<mpi::EngineKind> {};

INSTANTIATE_TEST_SUITE_P(AllEngines, LocalRankEngines,
                         ::testing::Values(mpi::EngineKind::kPioman,
                                           mpi::EngineKind::kMvapichLike,
                                           mpi::EngineKind::kOpenMpiLike),
                         [](const auto& info) {
                           std::string n = mpi::engine_kind_name(info.param);
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST_P(LocalRankEngines, RingAndCollectivesOverBootstrappedMesh) {
  const std::string path = std::string("/tmp/piom-test-lr-") +
                           mpi::engine_kind_name(GetParam()) + ".sock";
  constexpr int kRanks = 3;
  mpi::RankConfig rc;
  rc.engine = GetParam();
  with_bootstrapped_ranks(
      kRanks, Endpoint::uds(path), [&](int rank, Bootstrap bs) {
        std::unique_ptr<mpi::LocalRank> lr =
            mpi::World::local(std::move(bs), rc);
        EXPECT_EQ(lr->rank(), rank);
        EXPECT_EQ(lr->nranks(), kRanks);
        EXPECT_NE(lr->bootstrap(), nullptr);
        mpi::Comm& comm = lr->comm();

        // Token ring with status checks on the recv side.
        const int right = (rank + 1) % kRanks;
        const int left = (rank + 2) % kRanks;
        int64_t token = rank * 100;
        comm.send(right, 5, &token, sizeof(token));
        int64_t got = -1;
        const mpi::Status st =
            comm.recv_status(left, 5, &got, sizeof(got));
        EXPECT_EQ(got, static_cast<int64_t>(left) * 100);
        EXPECT_EQ(st.tag, 5u);
        EXPECT_EQ(st.source, left);
        EXPECT_EQ(st.bytes, sizeof(token));
        EXPECT_FALSE(st.peer_failed);

        // Collectives cross the socket mesh too.
        int32_t sum = rank;
        comm.allreduce(&sum, 1, mpi::ReduceOp::kSum);
        EXPECT_EQ(sum, kRanks * (kRanks - 1) / 2);
        comm.barrier();
      });
}

// -------------------------------------------------------- Request::status

class StatusEngines : public ::testing::TestWithParam<mpi::EngineKind> {};

INSTANTIATE_TEST_SUITE_P(AllEngines, StatusEngines,
                         ::testing::Values(mpi::EngineKind::kPioman,
                                           mpi::EngineKind::kMvapichLike,
                                           mpi::EngineKind::kOpenMpiLike),
                         [](const auto& info) {
                           std::string n = mpi::engine_kind_name(info.param);
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST_P(StatusEngines, ValidAfterCompletionOnSendsAndRecvs) {
  mpi::WorldConfig cfg;
  cfg.nranks = 2;
  cfg.engine = GetParam();
  mpi::World world(cfg);
  std::thread peer([&] {
    const char msg[] = "status";
    world.comm(1).send(0, 21, msg, sizeof(msg));
    char rx[16] = {};
    world.comm(1).recv(0, 22, rx, sizeof(rx));
  });

  // Recv status: matched tag, source and byte count of the arrival.
  char rx[16] = {};
  mpi::Request rreq;
  world.comm(0).irecv(rreq, mpi::Comm::kAnySource, mpi::Comm::kAnyTag, rx,
                      sizeof(rx));
  world.comm(0).wait(rreq);
  const mpi::Status rst = rreq.status();
  EXPECT_EQ(rst.tag, 21u);
  EXPECT_EQ(rst.source, 1);
  EXPECT_EQ(rst.bytes, sizeof("status"));
  EXPECT_FALSE(rst.peer_failed);

  // Send status: echoes tag and payload length.
  mpi::Request sreq;
  world.comm(0).isend(sreq, 1, 22, "ok", 3);
  world.comm(0).wait(sreq);
  const mpi::Status sst = sreq.status();
  EXPECT_EQ(sst.tag, 22u);
  EXPECT_EQ(sst.bytes, 3u);
  EXPECT_FALSE(sst.peer_failed);
  peer.join();
}

}  // namespace
}  // namespace piom
