// Tests for the simulated fabric: message delivery, FIFO matching, staging
// of unexpected arrivals, RDMA-Read zero-host-CPU semantics, cost model.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <thread>
#include <numeric>
#include <vector>

#include "simnet/fabric.hpp"
#include "transport/cluster.hpp"
#include "util/timing.hpp"

namespace piom::simnet {
namespace {

/// Spin until a TX/RX completion shows up (bounded).
template <typename PollFn>
bool poll_until(PollFn&& poll, Completion& out, int64_t timeout_ns = 2'000'000'000) {
  const int64_t deadline = util::now_ns() + timeout_ns;
  while (util::now_ns() < deadline) {
    if (poll(out)) return true;
  }
  return false;
}

class SimnetTest : public ::testing::Test {
 protected:
  SimnetTest() : fabric_(0.05) {  // 20x faster than real time: quick tests
    auto [a, b] = fabric_.create_link("test");
    a_ = a;
    b_ = b;
  }
  Fabric fabric_;
  Nic* a_ = nullptr;
  Nic* b_ = nullptr;
};

TEST_F(SimnetTest, SendMatchesPostedRecv) {
  const char msg[] = "hello fabric";
  char rxbuf[64] = {};
  b_->post_recv(rxbuf, sizeof(rxbuf), 42);
  a_->post_send(msg, sizeof(msg), 7);

  Completion tx{}, rx{};
  ASSERT_TRUE(poll_until([&](Completion& c) { return a_->poll_tx(c); }, tx));
  EXPECT_EQ(tx.kind, Completion::Kind::kSend);
  EXPECT_EQ(tx.wrid, 7u);
  EXPECT_EQ(tx.bytes, sizeof(msg));

  ASSERT_TRUE(poll_until([&](Completion& c) { return b_->poll_rx(c); }, rx));
  EXPECT_EQ(rx.kind, Completion::Kind::kRecv);
  EXPECT_EQ(rx.wrid, 42u);
  EXPECT_EQ(rx.bytes, sizeof(msg));
  EXPECT_STREQ(rxbuf, "hello fabric");
}

TEST_F(SimnetTest, UnexpectedArrivalIsStagedUntilRecvPosted) {
  const char msg[] = "early bird";
  a_->post_send(msg, sizeof(msg), 1);
  Completion tx{};
  ASSERT_TRUE(poll_until([&](Completion& c) { return a_->poll_tx(c); }, tx));
  // The message has fully arrived; nobody posted a buffer. Post now:
  char rxbuf[64] = {};
  b_->post_recv(rxbuf, sizeof(rxbuf), 9);
  Completion rx{};
  ASSERT_TRUE(poll_until([&](Completion& c) { return b_->poll_rx(c); }, rx));
  EXPECT_EQ(rx.wrid, 9u);
  EXPECT_STREQ(rxbuf, "early bird");
}

TEST_F(SimnetTest, FifoMatchingAcrossSeveralMessages) {
  std::vector<std::array<char, 16>> rxbufs(4);
  for (int i = 0; i < 4; ++i) {
    b_->post_recv(rxbufs[static_cast<std::size_t>(i)].data(), 16,
                  static_cast<uint64_t>(100 + i));
  }
  const char* msgs[] = {"m0", "m1", "m2", "m3"};
  for (int i = 0; i < 4; ++i) {
    a_->post_send(msgs[i], 3, static_cast<uint64_t>(i));
  }
  for (int i = 0; i < 4; ++i) {
    Completion rx{};
    ASSERT_TRUE(poll_until([&](Completion& c) { return b_->poll_rx(c); }, rx));
    // FIFO: arrival i lands in buffer i.
    EXPECT_EQ(rx.wrid, static_cast<uint64_t>(100 + i));
    EXPECT_STREQ(rxbufs[static_cast<std::size_t>(i)].data(), msgs[i]);
  }
}

TEST_F(SimnetTest, TruncationToRecvCapacity) {
  const char msg[] = "0123456789";
  char small[4] = {};
  b_->post_recv(small, sizeof(small), 5);
  a_->post_send(msg, sizeof(msg), 6);
  Completion rx{};
  ASSERT_TRUE(poll_until([&](Completion& c) { return b_->poll_rx(c); }, rx));
  EXPECT_EQ(rx.bytes, sizeof(small));
  EXPECT_EQ(std::memcmp(small, "0123", 4), 0);
}

TEST_F(SimnetTest, RdmaReadPullsRemoteMemoryWithoutHostCode) {
  // Host code on side A never runs anything after exposing the buffer: the
  // pull is served by the engine threads alone.
  std::vector<uint8_t> remote(256 * 1024);
  std::iota(remote.begin(), remote.end(), 0);
  std::vector<uint8_t> local(remote.size(), 0);
  b_->post_rdma_read(local.data(), remote.data(), remote.size(), 77);
  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& cc) { return b_->poll_tx(cc); }, c));
  EXPECT_EQ(c.kind, Completion::Kind::kRdmaRead);
  EXPECT_EQ(c.wrid, 77u);
  EXPECT_EQ(c.bytes, remote.size());
  EXPECT_EQ(local, remote);
  EXPECT_EQ(a_->stats().rdma_reads_served, 1u);
}

TEST_F(SimnetTest, StatsCountTraffic) {
  char buf[32] = {};
  b_->post_recv(buf, sizeof(buf), 1);
  a_->post_send("abc", 4, 2);
  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& cc) { return a_->poll_tx(cc); }, c));
  ASSERT_TRUE(poll_until([&](Completion& cc) { return b_->poll_rx(cc); }, c));
  EXPECT_EQ(a_->stats().packets_tx, 1u);
  EXPECT_EQ(a_->stats().bytes_tx, 4u);
  EXPECT_EQ(b_->stats().packets_rx, 1u);
  EXPECT_EQ(b_->stats().bytes_rx, 4u);
}

TEST_F(SimnetTest, UnconnectedNicRejectsPosts) {
  Nic& lonely = fabric_.create_nic("lonely");
  EXPECT_THROW(lonely.post_send("x", 1, 0), std::logic_error);
  char b = 0;
  EXPECT_THROW(lonely.post_rdma_read(&b, &b, 1, 0), std::logic_error);
}

TEST_F(SimnetTest, ConnectRejectsReuseAndSelf) {
  Nic& c = fabric_.create_nic("c");
  EXPECT_THROW(Fabric::connect(*a_, c), std::logic_error);
  EXPECT_THROW(Fabric::connect(c, c), std::invalid_argument);
}

TEST_F(SimnetTest, ConnectErrorPathsLeaveNicsUsable) {
  // A fresh NIC self-link must throw without corrupting the NIC: it stays
  // connectable afterwards. Re-connecting either side of an established
  // link throws, and a half-failed connect leaves no dangling peer.
  Nic& c = fabric_.create_nic("c");
  Nic& d = fabric_.create_nic("d");
  EXPECT_THROW(Fabric::connect(c, c), std::invalid_argument);
  EXPECT_EQ(c.peer(), nullptr);  // failed self-link left no wiring behind
  Fabric::connect(c, d);
  EXPECT_EQ(c.peer(), &d);
  EXPECT_EQ(d.peer(), &c);
  EXPECT_THROW(Fabric::connect(c, d), std::logic_error);  // double-connect
  Nic& e = fabric_.create_nic("e");
  EXPECT_THROW(Fabric::connect(e, d), std::logic_error);  // d already taken
  EXPECT_THROW(Fabric::connect(c, e), std::logic_error);  // c already taken
  EXPECT_EQ(e.peer(), nullptr);  // rejected connects left e untouched
}

TEST(SimnetMesh, FullMeshWiresEveryPairWithEveryRail) {
  transport::ClusterConfig cc;
  cc.time_scale = 0.05;
  transport::Cluster cluster(cc);
  constexpr int kNodes = 4, kRails = 2;
  const transport::Cluster::MeshWiring mesh =
      cluster.create_full_mesh(kNodes, kRails);
  // nodes*(nodes-1)/2 pairs, kRails links each, two NICs per link.
  EXPECT_EQ(cluster.fabric().nic_count(),
            static_cast<std::size_t>(kNodes * (kNodes - 1) * kRails));
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_TRUE(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)]
                    .empty());
    for (int j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      const auto& rails =
          mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      ASSERT_EQ(rails.size(), static_cast<std::size_t>(kRails));
      for (int r = 0; r < kRails; ++r) {
        // Rail k of i->j is the back-to-back peer of rail k of j->i.
        EXPECT_EQ(rails[static_cast<std::size_t>(r)]->peer(),
                  mesh[static_cast<std::size_t>(j)]
                      [static_cast<std::size_t>(i)][static_cast<std::size_t>(r)]);
      }
    }
  }
}

TEST(SimnetMesh, MeshLinksCarryTraffic) {
  transport::ClusterConfig cc;
  cc.time_scale = 0.05;
  transport::Cluster cluster(cc);
  const transport::Cluster::MeshWiring mesh = cluster.create_full_mesh(3, 1);
  // Push one message across every directed pair and check delivery.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      const uint8_t msg = static_cast<uint8_t>(0x40 + i * 3 + j);
      uint8_t rx = 0;
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)][0]
          ->post_recv(&rx, 1, 1);
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)][0]
          ->post_send(&msg, 1, 2);
      Completion c{};
      ASSERT_TRUE(poll_until(
          [&](Completion& out) {
            return mesh[static_cast<std::size_t>(j)]
                       [static_cast<std::size_t>(i)][0]
                           ->poll_rx(out);
          },
          c));
      EXPECT_EQ(rx, msg);
    }
  }
}

TEST(SimnetMesh, RejectsDegenerateShapes) {
  transport::ClusterConfig cc;
  cc.time_scale = 0.05;
  transport::Cluster cluster(cc);
  EXPECT_THROW(static_cast<void>(cluster.create_full_mesh(1, 1)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cluster.create_full_mesh(0, 1)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cluster.create_full_mesh(2, 0)),
               std::invalid_argument);
  // failed meshes create nothing
  EXPECT_EQ(cluster.fabric().nic_count(), 0u);
}

TEST(LinkModel, CostsScaleWithSize) {
  LinkModel m;  // 1.5us latency, 1.25 GB/s, 0.3us overhead
  EXPECT_EQ(m.occupancy_ns(0), 0);
  // 1.25 GB/s == 1.25 bytes/ns -> 1 MB takes 800k ns.
  EXPECT_NEAR(static_cast<double>(m.occupancy_ns(1 << 20)), 1048576 / 1.25, 2.0);
  EXPECT_EQ(m.transfer_ns(0), 1800);
  EXPECT_GT(m.transfer_ns(4096), m.transfer_ns(64));
  EXPECT_EQ(m.rtt_ns(), 2 * m.transfer_ns(0));
}

TEST(LinkModel, TransferTimeObservedOnWire) {
  // With time_scale=1 a 1 MB transfer at 1.25 GB/s must take >= ~0.8 ms.
  Fabric fabric(1.0);
  auto [a, b] = fabric.create_link("timed");
  std::vector<uint8_t> payload(1 << 20, 0xAB);
  std::vector<uint8_t> rx(payload.size());
  b->post_recv(rx.data(), rx.size(), 1);
  const int64_t t0 = util::now_ns();
  a->post_send(payload.data(), payload.size(), 2);
  Completion c{};
  const int64_t deadline = util::now_ns() + 3'000'000'000;
  while (!b->poll_rx(c) && util::now_ns() < deadline) {
  }
  const int64_t elapsed = util::now_ns() - t0;
  EXPECT_EQ(c.wrid, 1u);
  EXPECT_GE(elapsed, 800'000);  // >= 0.8 ms serialisation
  EXPECT_LT(elapsed, 100'000'000);
}


/// Parameterized sweep: payload integrity for both transfer mechanisms at
/// sizes spanning 1 B to 4 MB.
class SimnetSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimnetSizeSweep, SendDeliversExactBytes) {
  Fabric fabric(0.02);
  auto [a, b] = fabric.create_link("sweep");
  const std::size_t size = GetParam();
  std::vector<uint8_t> data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<uint8_t>(i * 7);
  std::vector<uint8_t> out(size, 0);
  b->post_recv(out.data(), out.size(), 1);
  a->post_send(data.data(), data.size(), 2);
  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& cc) { return b->poll_rx(cc); }, c));
  EXPECT_EQ(c.bytes, size);
  EXPECT_EQ(out, data);
}

TEST_P(SimnetSizeSweep, RdmaReadDeliversExactBytes) {
  Fabric fabric(0.02);
  auto [a, b] = fabric.create_link("sweep");
  (void)a;
  const std::size_t size = GetParam();
  std::vector<uint8_t> remote(size);
  for (std::size_t i = 0; i < size; ++i) remote[i] = static_cast<uint8_t>(i);
  std::vector<uint8_t> local(size, 0);
  b->post_rdma_read(local.data(), remote.data(), size, 3);
  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& cc) { return b->poll_tx(cc); }, c));
  EXPECT_EQ(c.kind, Completion::Kind::kRdmaRead);
  EXPECT_EQ(c.bytes, size);
  EXPECT_EQ(local, remote);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SimnetSizeSweep,
    ::testing::Values(1u, 32u, 4096u, 65536u, 1u << 20, 4u << 20),
    [](const auto& info) { return "b" + std::to_string(info.param); });

TEST(SimnetConcurrency, ManyPostersOneNic) {
  // post_send/post_recv are documented thread-safe: hammer them.
  Fabric fabric(0.01);
  auto [a, b] = fabric.create_link("mt");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::array<char, 8>> rx(kThreads * kPerThread);
  for (std::size_t i = 0; i < rx.size(); ++i) {
    b->post_recv(rx[i].data(), 8, i);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      char payload[8];
      std::snprintf(payload, sizeof(payload), "t%d", t);
      for (int i = 0; i < kPerThread; ++i) {
        a->post_send(payload, 8, static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  a->quiesce();
  int rx_seen = 0;
  Completion c{};
  while (b->poll_rx(c)) ++rx_seen;
  EXPECT_EQ(rx_seen, kThreads * kPerThread);
  int tx_seen = 0;
  while (a->poll_tx(c)) ++tx_seen;
  EXPECT_EQ(tx_seen, kThreads * kPerThread);
}

TEST(FabricConfig, RejectsBadTimeScale) {
  EXPECT_THROW(Fabric(-1.0), std::invalid_argument);
  EXPECT_THROW(Fabric(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace piom::simnet
