// Tests for the async I/O manager and the simulated disk — the paper's §VI
// long-term goal (task-driven I/O) exercised end to end.
#include <gtest/gtest.h>

#include <deque>
#include <numeric>
#include <thread>
#include <vector>

#include "aio/aio.hpp"
#include "aio/disk.hpp"
#include "sched/runtime.hpp"
#include "topo/machine.hpp"
#include "util/timing.hpp"

namespace piom::aio {
namespace {

DiskModel fast_model() {
  DiskModel m;
  m.time_scale = 0.05;  // compressed time for tests
  return m;
}

TEST(SimDisk, WriteThenReadRoundTrip) {
  SimDisk disk("d0", 1 << 20, fast_model());
  std::vector<uint8_t> data(4096);
  std::iota(data.begin(), data.end(), 1);
  disk.submit_write(512, data.data(), data.size(), 1);
  DiskCompletion c;
  while (!disk.poll(c)) {
  }
  EXPECT_EQ(c.kind, DiskCompletion::Kind::kWrite);
  EXPECT_EQ(c.wrid, 1u);
  EXPECT_EQ(c.bytes, data.size());
  EXPECT_TRUE(c.ok);

  std::vector<uint8_t> out(data.size(), 0);
  disk.submit_read(512, out.data(), out.size(), 2);
  while (!disk.poll(c)) {
  }
  EXPECT_EQ(c.kind, DiskCompletion::Kind::kRead);
  EXPECT_EQ(out, data);
}

TEST(SimDisk, ReadsClampAtEof) {
  SimDisk disk("d0", 1000, fast_model());
  std::vector<uint8_t> buf(100, 0xFF);
  disk.submit_read(950, buf.data(), buf.size(), 1);
  DiskCompletion c;
  while (!disk.poll(c)) {
  }
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(c.bytes, 50u);  // clamped
}

TEST(SimDisk, OutOfRangeFails) {
  SimDisk disk("d0", 1000, fast_model());
  char b = 0;
  disk.submit_read(5000, &b, 1, 7);
  DiskCompletion c;
  while (!disk.poll(c)) {
  }
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.bytes, 0u);
  EXPECT_EQ(disk.stats().errors, 1u);
}

TEST(SimDisk, PokePeekBypassCostModel) {
  SimDisk disk("d0", 256, fast_model());
  const char msg[] = "direct";
  disk.poke(10, msg, sizeof(msg));
  char out[8] = {};
  disk.peek(10, out, sizeof(msg));
  EXPECT_STREQ(out, "direct");
}

TEST(SimDisk, StatsCountTraffic) {
  SimDisk disk("d0", 1 << 16, fast_model());
  std::vector<uint8_t> buf(1024);
  disk.submit_write(0, buf.data(), buf.size(), 1);
  disk.submit_read(0, buf.data(), buf.size(), 2);
  disk.quiesce();
  const DiskStats s = disk.stats();
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.bytes_written, 1024u);
  EXPECT_EQ(s.bytes_read, 1024u);
}

TEST(SimDisk, AccessCostIsModelled) {
  DiskModel slow;
  slow.access_us = 500;
  slow.time_scale = 1.0;
  SimDisk disk("slow", 4096, slow);
  char b = 0;
  const int64_t t0 = util::now_ns();
  disk.submit_read(0, &b, 1, 1);
  DiskCompletion c;
  while (!disk.poll(c)) {
  }
  EXPECT_GE(util::now_ns() - t0, 500'000);
}

class AioEnv : public ::testing::Test {
 protected:
  AioEnv()
      : machine_(topo::Machine::flat(2)),
        tm_(machine_),
        rt_(machine_, tm_),
        disk_("d0", 4 << 20, fast_model()),
        mgr_(tm_, {&disk_}) {}

  topo::Machine machine_;
  TaskManager tm_;
  sched::Runtime rt_;
  SimDisk disk_;
  AioManager mgr_;
};

TEST_F(AioEnv, AsyncReadCompletesInBackground) {
  const char content[] = "hello disk";
  disk_.poke(100, content, sizeof(content));
  char out[16] = {};
  IoRequest req;
  mgr_.read(disk_, 100, out, sizeof(content), req);
  req.wait();  // the runtime's idle workers poll the disk
  EXPECT_TRUE(req.ok);
  EXPECT_EQ(req.bytes, sizeof(content));
  EXPECT_STREQ(out, "hello disk");
}

TEST_F(AioEnv, AsyncWriteLands) {
  const char content[] = "persist me";
  IoRequest req;
  mgr_.write(disk_, 2048, content, sizeof(content), req);
  req.wait();
  EXPECT_TRUE(req.ok);
  char out[16] = {};
  disk_.peek(2048, out, sizeof(content));
  EXPECT_STREQ(out, "persist me");
}

TEST_F(AioEnv, ManyConcurrentRequests) {
  constexpr int kOps = 64;
  constexpr std::size_t kChunk = 4096;
  std::vector<std::vector<uint8_t>> blocks(kOps);
  std::deque<IoRequest> writes(kOps);
  for (int i = 0; i < kOps; ++i) {
    blocks[static_cast<std::size_t>(i)].assign(kChunk,
                                               static_cast<uint8_t>(i + 1));
    mgr_.write(disk_, static_cast<std::size_t>(i) * kChunk,
               blocks[static_cast<std::size_t>(i)].data(), kChunk,
               writes[static_cast<std::size_t>(i)]);
  }
  for (auto& w : writes) w.wait();
  std::vector<std::vector<uint8_t>> out(kOps, std::vector<uint8_t>(kChunk));
  std::deque<IoRequest> reads(kOps);
  for (int i = 0; i < kOps; ++i) {
    mgr_.read(disk_, static_cast<std::size_t>(i) * kChunk,
              out[static_cast<std::size_t>(i)].data(), kChunk,
              reads[static_cast<std::size_t>(i)]);
  }
  for (auto& r : reads) r.wait();
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              blocks[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(mgr_.completions(), static_cast<uint64_t>(2 * kOps));
}

TEST_F(AioEnv, IoOverlapsComputation) {
  // The point of task-driven I/O: the application thread computes while
  // idle cores progress the disk. Total time ≈ max(compute, io), not sum.
  //
  // The wall-clock bound only holds when a second hardware thread can
  // progress the disk while this one burns CPU.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads to measure I/O overlap";
  }
  constexpr std::size_t kSize = 2 << 20;  // 2 MB = ~1ms at 2 GB/s (scaled)
  std::vector<uint8_t> buf(kSize);
  // One overlapped round is scheduling-noise-bound under parallel test
  // load, so poll against a monotonic deadline instead of asserting a
  // single wall-clock sample: the test fails only if NO round overlaps
  // within 10 s.
  const int64_t deadline = util::now_ns() + 10'000'000'000;
  double best_us = 1e18;
  while (best_us >= 5'000.0) {
    IoRequest req;
    const int64_t t0 = util::now_ns();
    mgr_.read(disk_, 0, buf.data(), buf.size(), req);
    util::burn_cpu_us(300);
    req.wait();
    const double total_us = static_cast<double>(util::now_ns() - t0) * 1e-3;
    ASSERT_TRUE(req.ok);
    if (total_us < best_us) best_us = total_us;
    if (util::now_ns() >= deadline) break;
  }
  // Sanity: total well below compute+io serial sum at full time scale.
  EXPECT_LT(best_us, 5'000.0)
      << "no overlapped I/O round beat the serial bound before the deadline";
}

TEST_F(AioEnv, RequestReuseAfterCompletion) {
  char a = 'a', b = 0;
  IoRequest req;
  mgr_.write(disk_, 0, &a, 1, req);
  req.wait();
  mgr_.read(disk_, 0, &b, 1, req);  // reuse the same request object
  req.wait();
  EXPECT_EQ(b, 'a');
}

TEST(AioShutdown, DrainsPendingAndStops) {
  topo::Machine machine = topo::Machine::flat(1);
  TaskManager tm(machine);
  SimDisk disk("d0", 1 << 16, fast_model());
  auto mgr = std::make_unique<AioManager>(tm, std::vector<SimDisk*>{&disk});
  std::vector<uint8_t> buf(4096, 0xAA);
  IoRequest req;
  mgr->write(disk, 0, buf.data(), buf.size(), req);
  // No runtime: shutdown() itself must drive progress and drain.
  mgr->shutdown();
  EXPECT_TRUE(req.completed());
  mgr.reset();
  SUCCEED();
}

TEST(AioCpuSets, PollingRespectsAffinity) {
  topo::Machine machine = topo::Machine::kwak();
  TaskManager tm(machine);
  SimDisk disk("d0", 1 << 16, fast_model());
  AioManagerConfig cfg;
  cfg.poll_cpusets = {topo::CpuSet::range(4, 8)};  // NUMA node #2 only
  AioManager mgr(tm, {&disk}, cfg);
  char b = 'x';
  IoRequest req;
  mgr.write(disk, 0, &b, 1, req);
  // Scheduling on a core outside the set must NOT complete the request.
  const int64_t until = util::now_ns() + 20'000'000;
  while (util::now_ns() < until) tm.schedule(0);
  EXPECT_FALSE(req.completed());
  // A core inside the set does.
  while (!req.completed()) tm.schedule(5);
  EXPECT_TRUE(req.ok);
  mgr.shutdown();
}

}  // namespace
}  // namespace piom::aio
