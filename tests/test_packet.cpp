// Tests for the PacketWrapper serialization and its recycling pool,
// including multi-threaded pool torture.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "nmad/packet.hpp"

namespace piom::nmad {
namespace {

TEST(PacketWrapper, BeginSerializesHeader) {
  PacketWrapper pw;
  PktHeader hdr;
  hdr.kind = static_cast<uint8_t>(PktKind::kEager);
  hdr.tag = 42;
  hdr.seq = 7;
  hdr.len = 3;
  pw.begin(hdr);
  ASSERT_EQ(pw.wire.size(), sizeof(PktHeader));
  PktHeader out;
  std::memcpy(&out, pw.wire.data(), sizeof(out));
  EXPECT_EQ(out.kind, static_cast<uint8_t>(PktKind::kEager));
  EXPECT_EQ(out.tag, 42u);
  EXPECT_EQ(out.seq, 7u);
  EXPECT_EQ(out.len, 3u);
}

TEST(PacketWrapper, AppendAccumulates) {
  PacketWrapper pw;
  pw.begin(PktHeader{});
  pw.append("abc", 3);
  pw.append("defg", 4);
  EXPECT_EQ(pw.wire.size(), sizeof(PktHeader) + 7);
  EXPECT_EQ(std::memcmp(pw.wire.data() + sizeof(PktHeader), "abcdefg", 7), 0);
}

TEST(PacketWrapper, HeaderPatchInPlace) {
  PacketWrapper pw;
  pw.begin(PktHeader{});
  pw.append("xy", 2);
  pw.header().len = pw.wire.size() - sizeof(PktHeader);
  PktHeader out;
  std::memcpy(&out, pw.wire.data(), sizeof(out));
  EXPECT_EQ(out.len, 2u);
}

TEST(PacketWrapper, ResetKeepsCapacityClearsState) {
  PacketWrapper pw;
  pw.begin(PktHeader{});
  pw.append(std::string(1000, 'z').data(), 1000);
  const std::size_t cap = pw.wire.capacity();
  pw.pkt_seq = 5;
  pw.awaiting_ack = true;
  pw.in_flight = true;
  pw.acked = true;
  pw.reset();
  EXPECT_TRUE(pw.wire.empty());
  EXPECT_GE(pw.wire.capacity(), cap);  // allocation retained
  EXPECT_TRUE(pw.reqs.empty());
  EXPECT_EQ(pw.pkt_seq, 0u);
  EXPECT_FALSE(pw.awaiting_ack);
  EXPECT_FALSE(pw.in_flight);
  EXPECT_FALSE(pw.acked);
}

TEST(PwPool, RecyclesWrappers) {
  PwPool pool;
  PacketWrapper* a = pool.acquire();
  EXPECT_EQ(pool.allocated(), 1u);
  pool.release(a);
  PacketWrapper* b = pool.acquire();
  EXPECT_EQ(b, a) << "freed wrapper must be reused";
  EXPECT_EQ(pool.allocated(), 1u);
  pool.release(b);
}

TEST(PwPool, GrowsWhenDrained) {
  PwPool pool;
  PacketWrapper* a = pool.acquire();
  PacketWrapper* b = pool.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.allocated(), 2u);
  pool.release(a);
  pool.release(b);
}

TEST(PwPool, ConcurrentAcquireReleaseNoDuplicates) {
  PwPool pool;
  constexpr int kThreads = 6;
  constexpr int kIters = 20'000;
  std::atomic<bool> duplicate{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        PacketWrapper* x = pool.acquire();
        PacketWrapper* y = pool.acquire();
        if (x == y) duplicate.store(true);
        // Touch them to shake out races with other threads.
        x->pkt_seq = 1;
        y->pkt_seq = 2;
        pool.release(x);
        pool.release(y);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(duplicate.load()) << "pool handed one wrapper to two owners";
  // Everything returned: drain and count uniques.
  std::set<PacketWrapper*> seen;
  for (uint64_t i = 0; i < pool.allocated(); ++i) {
    PacketWrapper* pw = pool.acquire();
    EXPECT_TRUE(seen.insert(pw).second);
  }
  for (PacketWrapper* pw : seen) pool.release(pw);
}

TEST(WireFormat, PackEntryRoundTrip) {
  PacketWrapper pw;
  PktHeader hdr;
  hdr.kind = static_cast<uint8_t>(PktKind::kPack);
  hdr.nmsgs = 2;
  pw.begin(hdr);
  PackEntry e1{10, 0, 100, 3};
  PackEntry e2{20, 0, 101, 4};
  pw.append(&e1, sizeof(e1));
  pw.append("abc", 3);
  pw.append(&e2, sizeof(e2));
  pw.append("defg", 4);
  pw.header().len = pw.wire.size() - sizeof(PktHeader);

  // Parse it back the way Gate::handle_pack does.
  const uint8_t* p = pw.wire.data() + sizeof(PktHeader);
  PackEntry out1, out2;
  std::memcpy(&out1, p, sizeof(out1));
  p += sizeof(out1);
  EXPECT_EQ(out1.tag, 10u);
  EXPECT_EQ(out1.seq, 100u);
  EXPECT_EQ(std::memcmp(p, "abc", 3), 0);
  p += out1.len;
  std::memcpy(&out2, p, sizeof(out2));
  p += sizeof(out2);
  EXPECT_EQ(out2.tag, 20u);
  EXPECT_EQ(out2.len, 4u);
  EXPECT_EQ(std::memcmp(p, "defg", 4), 0);
}

}  // namespace
}  // namespace piom::nmad
