// Work-stealing tests: CpuSet-respecting steals, locality-ordered victim
// selection, migration of stolen repeatable tasks, the no-steal ablation's
// equivalence with the paper's plain Algorithm 1, steal counters, and a
// cross-queue-kind stress test (submitters flooding one chip while every
// core schedules/steals concurrently).
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "core/lf_queue.hpp"
#include "core/task_manager.hpp"
#include "topo/machine.hpp"

namespace piom {
namespace {

struct Counter {
  std::atomic<int> hits{0};
};

TaskResult count_hit(void* arg) {
  static_cast<Counter*>(arg)->hits.fetch_add(1);
  return TaskResult::kDone;
}

const topo::TopoNode& node_at(const topo::Machine& m, topo::Level level,
                              int index) {
  for (const auto& n : m.nodes()) {
    if (n->level == level && n->index_in_level == index) return *n;
  }
  throw std::logic_error("node_at: no such node");
}

class StealKwak : public ::testing::Test {
 protected:
  StealKwak() : machine_(topo::Machine::kwak()), tm_(machine_) {}
  topo::Machine machine_;
  TaskManager tm_;
};

TEST_F(StealKwak, StealOrderCoversOffPathNodesNearestFirst) {
  const auto& order = machine_.steal_order(0);
  // Everything except the 5 nodes on core 0's path (core/cache/chip/numa/
  // machine) is a potential victim.
  EXPECT_EQ(order.size(), machine_.nnodes() - 5);
  // Cache siblings come first...
  EXPECT_EQ(order[0], &node_at(machine_, topo::Level::kCore, 1));
  EXPECT_EQ(order[1], &node_at(machine_, topo::Level::kCore, 2));
  EXPECT_EQ(order[2], &node_at(machine_, topo::Level::kCore, 3));
  // ...then the remote NUMA subtrees, wider queues before their leaves.
  EXPECT_EQ(order[3], &node_at(machine_, topo::Level::kNuma, 1));
  EXPECT_EQ(order[4], &node_at(machine_, topo::Level::kChip, 1));
  // No victim may sit on core 0's own path (i.e. cover core 0).
  for (const topo::TopoNode* v : order) EXPECT_FALSE(v->cpus.test(0));
}

TEST_F(StealKwak, StealsAnywhereTaskFromRemoteBranch) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, {}, kTaskNone);  // any core may run it
  // Locality-hinted submission: the task lands in core 12's queue, a branch
  // core 0 never walks.
  tm_.submit_to(&t, machine_.core_node(12));
  EXPECT_EQ(tm_.queue_of(machine_.core_node(12)).size_approx(), 1u);
  EXPECT_EQ(tm_.schedule(0), 1);  // dry local branch -> steal
  EXPECT_EQ(c.hits.load(), 1);
  EXPECT_TRUE(t.completed());
  EXPECT_EQ(t.last_cpu.load(), 0);
  const CoreStats cs = tm_.core_stats(0);
  EXPECT_GE(cs.steal_attempts, 1u);
  EXPECT_EQ(cs.steal_hits, 1u);
  EXPECT_EQ(cs.tasks_stolen, 1u);
  const QueueStats qs = tm_.queue_of(machine_.core_node(12)).stats();
  EXPECT_EQ(qs.stolen_tasks, 1u);
  EXPECT_EQ(qs.steal_hits, 1u);
}

TEST_F(StealKwak, StealRespectsCpuSet) {
  Counter c;
  Task pinned;
  pinned.init(&count_hit, &c, topo::CpuSet::single(12), kTaskNone);
  tm_.submit(&pinned);  // lands in core 12's queue, as always
  // Core 0 must not steal a task whose cpuset forbids it — even though the
  // victim queue is reachable by the steal scan.
  EXPECT_EQ(tm_.schedule(0), 0);
  EXPECT_EQ(c.hits.load(), 0);
  EXPECT_EQ(tm_.queue_of(machine_.core_node(12)).size_approx(), 1u);
  EXPECT_GT(tm_.core_stats(0).steal_attempts, 0u);
  EXPECT_EQ(tm_.core_stats(0).steal_hits, 0u);
  // An allowed thief may: cpuset {2,12} in core 12's queue, stolen by 2.
  Task shared;
  shared.init(&count_hit, &c, topo::CpuSet::parse("2,12"), kTaskNone);
  tm_.submit_to(&shared, machine_.core_node(12));
  EXPECT_EQ(tm_.schedule(2), 1);
  EXPECT_EQ(shared.last_cpu.load(), 2);
  // The pinned task is still only runnable by core 12.
  EXPECT_EQ(tm_.schedule(12), 1);
  EXPECT_EQ(pinned.last_cpu.load(), 12);
}

TEST_F(StealKwak, LocalityOrderPrefersCacheSibling) {
  Counter c;
  Task near_task, far_task;
  near_task.init(&count_hit, &c, {}, kTaskNone);
  far_task.init(&count_hit, &c, {}, kTaskNone);
  tm_.submit_to(&far_task, machine_.core_node(12));  // remote NUMA node
  tm_.submit_to(&near_task, machine_.core_node(1));  // cache sibling
  // One steal attempt takes from the *first* victim with eligible work:
  // the cache sibling, not the remote branch.
  EXPECT_EQ(tm_.steal(0), 1);
  EXPECT_TRUE(near_task.completed());
  EXPECT_FALSE(far_task.completed());
  EXPECT_EQ(tm_.steal(0), 1);
  EXPECT_TRUE(far_task.completed());
}

TEST_F(StealKwak, StolenRepeatableTaskMigratesToThief) {
  struct Poll {
    int remaining = 3;
  } poll;
  Task t;
  t.init(
      [](void* arg) {
        auto* p = static_cast<Poll*>(arg);
        return (--p->remaining == 0) ? TaskResult::kDone : TaskResult::kAgain;
      },
      &poll, {}, kTaskRepeat);
  tm_.submit_to(&t, machine_.core_node(12));
  // First run steals it; the kAgain re-enqueue goes to the thief's own
  // per-core queue, not back to the victim branch.
  EXPECT_EQ(tm_.schedule(0), 1);
  EXPECT_EQ(tm_.queue_of(machine_.core_node(12)).size_approx(), 0u);
  EXPECT_EQ(tm_.queue_of(machine_.core_node(0)).size_approx(), 1u);
  while (!t.completed()) tm_.schedule(0);
  EXPECT_EQ(poll.remaining, 0);
  EXPECT_EQ(t.run_count.load(), 3u);
  // Only the first run was a steal; the rest were local.
  EXPECT_EQ(tm_.core_stats(0).tasks_stolen, 1u);
}

TEST_F(StealKwak, StealBatchTakesSeveralFromOneVictim) {
  TaskManagerConfig cfg;
  cfg.steal_batch = 8;
  TaskManager tm(machine_, cfg);
  Counter c;
  std::deque<Task> tasks(10);
  for (auto& t : tasks) {
    t.init(&count_hit, &c, {}, kTaskNone);
    tm.submit_to(&t, machine_.core_node(12));
  }
  EXPECT_EQ(tm.steal(0), 8);  // one attempt, one victim, batch tasks
  EXPECT_EQ(c.hits.load(), 8);
  EXPECT_EQ(tm.queue_of(machine_.core_node(12)).size_approx(), 2u);
  EXPECT_EQ(tm.core_stats(0).tasks_stolen, 8u);
}

TEST_F(StealKwak, FlatOrderAblationStillFindsWork) {
  TaskManagerConfig cfg;
  cfg.steal_locality = false;
  TaskManager tm(machine_, cfg);
  Counter c;
  Task t;
  t.init(&count_hit, &c, {}, kTaskNone);
  tm.submit_to(&t, machine_.core_node(12));
  EXPECT_EQ(tm.schedule(0), 1);
  EXPECT_TRUE(t.completed());
}

TEST_F(StealKwak, UrgentTasksIgnoreTheLocalityHint) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, {}, kTaskUrgent);
  tm_.submit_to(&t, machine_.core_node(12));
  EXPECT_EQ(tm_.queue_of(machine_.core_node(12)).size_approx(), 0u);
  EXPECT_EQ(tm_.urgent_pending_approx(), 1u);
  EXPECT_EQ(tm_.run_urgent(5), 1);
}

TEST_F(StealKwak, ResetStatsClearsStealCounters) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, {}, kTaskNone);
  tm_.submit_to(&t, machine_.core_node(12));
  EXPECT_EQ(tm_.schedule(0), 1);
  EXPECT_GT(tm_.core_stats(0).steal_attempts, 0u);
  EXPECT_EQ(tm_.core_stats(0).tasks_stolen, 1u);
  tm_.reset_stats();
  const CoreStats cs = tm_.core_stats(0);
  EXPECT_EQ(cs.steal_attempts, 0u);
  EXPECT_EQ(cs.steal_hits, 0u);
  EXPECT_EQ(cs.tasks_stolen, 0u);
  EXPECT_EQ(cs.tasks_run, 0u);
}

TEST_F(StealKwak, ScheduleOneFallsBackToSingleSteal) {
  Counter c;
  std::deque<Task> tasks(3);
  for (auto& t : tasks) {
    t.init(&count_hit, &c, {}, kTaskNone);
    tm_.submit_to(&t, machine_.core_node(12));
  }
  EXPECT_TRUE(tm_.schedule_one(0));
  EXPECT_EQ(c.hits.load(), 1);  // exactly one, despite three available
}

// With stealing disabled the scheduler must behave exactly like the
// pre-stealing Algorithm 1: locality-hinted tasks outside a core's branch
// are invisible to it, pass bounds are unchanged, and no steal counter
// ever moves.
TEST(StealAblation, NoStealReproducesAlgorithm1) {
  const topo::Machine m = topo::Machine::kwak();
  TaskManagerConfig cfg;
  cfg.steal = false;
  TaskManager tm(m, cfg);
  Counter c;
  Task hinted;
  hinted.init(&count_hit, &c, {}, kTaskNone);
  tm.submit_to(&hinted, m.core_node(12));
  // Invisible to every core outside core 12's branch, forever.
  for (int pass = 0; pass < 3; ++pass) {
    for (const int cpu : {0, 1, 4, 8, 15}) {
      EXPECT_EQ(tm.schedule(cpu), 0);
      EXPECT_FALSE(tm.schedule_one(cpu));
    }
  }
  EXPECT_EQ(tm.queue_of(m.core_node(12)).size_approx(), 1u);
  EXPECT_EQ(c.hits.load(), 0);
  // Core 12's own Algorithm-1 walk runs it, as before this PR.
  EXPECT_EQ(tm.schedule(12), 1);
  EXPECT_EQ(c.hits.load(), 1);
  // No steal machinery was touched anywhere.
  for (int cpu = 0; cpu < m.ncpus(); ++cpu) {
    EXPECT_EQ(tm.core_stats(cpu).steal_attempts, 0u);
    EXPECT_EQ(tm.core_stats(cpu).tasks_stolen, 0u);
  }
  for (const auto& n : m.nodes()) {
    const QueueStats qs = tm.queue_of(*n).stats();
    EXPECT_EQ(qs.steal_hits + qs.steal_misses + qs.stolen_tasks, 0u);
  }
}

TEST(StealAblation, PassBoundsUnchangedWithoutSteal) {
  // Mirror of TaskManagerConfig.MaxTasksPerPassBounds with steal off: the
  // per-pass schedule() return sequence must be bit-for-bit the pre-PR one.
  const topo::Machine m = topo::Machine::flat(2);
  TaskManagerConfig cfg;
  cfg.steal = false;
  cfg.max_tasks_per_pass = 3;
  TaskManager tm(m, cfg);
  Counter c;
  std::deque<Task> tasks(10);
  for (auto& t : tasks) {
    t.init(&count_hit, &c, topo::CpuSet::single(0), kTaskNone);
    tm.submit(&t);
  }
  EXPECT_EQ(tm.schedule(0), 3);
  EXPECT_EQ(tm.schedule(0), 3);
  EXPECT_EQ(tm.schedule(0), 3);
  EXPECT_EQ(tm.schedule(0), 1);
  EXPECT_EQ(tm.schedule(0), 0);
}

TEST(StealAblation, SingleGlobalQueueNeverSteals) {
  const topo::Machine m = topo::Machine::kwak();
  TaskManagerConfig cfg;
  cfg.single_global_queue = true;
  TaskManager tm(m, cfg);
  EXPECT_EQ(tm.steal(0), 0);
}

// Direct queue-level coverage: try_steal takes only eligible tasks, from
// the cold (tail) end of the FIFO backends, leaving the owner's dequeue
// end untouched.
TEST(QueueTrySteal, LockedQueueStealsEligibleFromTail) {
  SpinTaskQueue q;
  Counter c;
  std::deque<Task> tasks(5);
  // 0,2,4 runnable anywhere; 1,3 pinned to cpu 9.
  for (int i = 0; i < 5; ++i) {
    const topo::CpuSet cpus =
        (i % 2 == 1) ? topo::CpuSet::single(9) : topo::CpuSet{};
    tasks[static_cast<std::size_t>(i)].init(&count_hit, &c, cpus, kTaskNone);
    tasks[static_cast<std::size_t>(i)].state.store(TaskState::kQueued);
    q.enqueue(&tasks[static_cast<std::size_t>(i)]);
  }
  Task* out[4] = {};
  // Thief cpu 0: 3 eligible (tasks 0,2,4); want 2 -> the 2 nearest the
  // tail, i.e. tasks 2 and 4, in queue order.
  EXPECT_EQ(q.try_steal(0, 2, out), 2u);
  EXPECT_EQ(out[0], &tasks[2]);
  EXPECT_EQ(out[1], &tasks[4]);
  EXPECT_EQ(q.size_approx(), 3u);
  // The owner's end is untouched: FIFO order of the remainder holds.
  EXPECT_EQ(q.try_dequeue(), &tasks[0]);
  EXPECT_EQ(q.try_dequeue(), &tasks[1]);
  EXPECT_EQ(q.try_dequeue(), &tasks[3]);
  EXPECT_EQ(q.try_dequeue(), nullptr);
  const QueueStats s = q.stats();
  EXPECT_EQ(s.stolen_tasks, 2u);
  EXPECT_EQ(s.steal_hits, 1u);
}

TEST(QueueTrySteal, MissesAreCountedAndEmptyScansAreFree) {
  TicketTaskQueue q;
  Counter c;
  Task pinned;
  pinned.init(&count_hit, &c, topo::CpuSet::single(9), kTaskNone);
  pinned.state.store(TaskState::kQueued);
  q.enqueue(&pinned);
  Task* out[1] = {};
  EXPECT_EQ(q.try_steal(0, 1, out), 0u);  // nothing eligible
  EXPECT_EQ(q.stats().steal_misses, 1u);
  EXPECT_EQ(q.try_dequeue(), &pinned);
  // An empty victim is skipped without locking (Algorithm 2 for thieves):
  const uint64_t locks_before = q.stats().lock_acquisitions;
  EXPECT_EQ(q.try_steal(0, 1, out), 0u);
  EXPECT_EQ(q.stats().lock_acquisitions, locks_before);
}

TEST(QueueTrySteal, LockFreeQueueStealsAroundIneligibleTop) {
  LockFreeTaskQueue q;
  Counter c;
  Task pinned, movable;
  movable.init(&count_hit, &c, {}, kTaskNone);
  pinned.init(&count_hit, &c, topo::CpuSet::single(9), kTaskNone);
  movable.state.store(TaskState::kQueued);
  pinned.state.store(TaskState::kQueued);
  q.enqueue(&movable);
  q.enqueue(&pinned);  // LIFO: the pinned task now sits on top
  Task* out[2] = {};
  EXPECT_EQ(q.try_steal(0, 2, out), 1u);
  EXPECT_EQ(out[0], &movable);
  // The ineligible task went back and is still dequeuable.
  EXPECT_EQ(q.size_approx(), 1u);
  EXPECT_EQ(q.try_dequeue(), &pinned);
  EXPECT_EQ(q.stats().stolen_tasks, 1u);
}

TEST(QueueTrySteal, StatsOffPathCountsNothing) {
  for (const bool stats_on : {true, false}) {
    SpinTaskQueue q(/*double_check=*/true, /*count_stats=*/stats_on);
    LockFreeTaskQueue lf(/*count_stats=*/stats_on);
    Counter c;
    std::deque<Task> tasks(4);
    for (int i = 0; i < 4; ++i) {
      tasks[static_cast<std::size_t>(i)].init(&count_hit, &c, {}, kTaskNone);
      tasks[static_cast<std::size_t>(i)].state.store(TaskState::kQueued);
    }
    ITaskQueue* queues[] = {&q, &lf};
    int ti = 0;
    for (ITaskQueue* queue : queues) {
      queue->enqueue(&tasks[static_cast<std::size_t>(ti++)]);
      queue->enqueue(&tasks[static_cast<std::size_t>(ti++)]);
      Task* out[1] = {};
      EXPECT_EQ(queue->try_steal(0, 1, out), 1u);
      EXPECT_EQ(queue->try_dequeue(), &tasks[static_cast<std::size_t>(ti - 2)]);
      (void)queue->try_dequeue();  // empty check
      const QueueStats s = queue->stats();
      const uint64_t total = s.enqueues + s.dequeues + s.empty_checks +
                             s.lock_acquisitions + s.steal_hits +
                             s.steal_misses + s.stolen_tasks;
      if (stats_on) {
        EXPECT_GT(total, 0u);
      } else {
        EXPECT_EQ(total, 0u);  // truly zero-cost: nothing was counted
      }
      // The functional size counter is unaffected by the stats switch.
      EXPECT_EQ(queue->size_approx(), 0u);
    }
  }
}

// Stress: every queue kind, all cores scheduling/stealing while submitters
// flood a single chip's queues with anywhere-runnable and pinned tasks.
// This is the TSan workload for the steal path.
TEST(StealStress, AllQueueKindsDrainImbalancedLoad) {
  constexpr int kPerSubmitter = 400;
  constexpr int kSubmitters = 2;
  for (const QueueKind kind : {QueueKind::kSpin, QueueKind::kTicket,
                               QueueKind::kMutex, QueueKind::kLockFree}) {
    const topo::Machine m = topo::Machine::borderline();
    TaskManagerConfig cfg;
    cfg.queue_kind = kind;
    cfg.steal_batch = 4;
    TaskManager tm(m, cfg);
    Counter c;
    std::deque<std::deque<Task>> tasks(kSubmitters);
    for (auto& v : tasks) v.resize(kPerSubmitter);
    std::atomic<bool> stop{false};
    std::vector<std::thread> drainers;
    for (int cpu = 0; cpu < m.ncpus(); ++cpu) {
      drainers.emplace_back([&, cpu] {
        while (!stop.load()) tm.schedule(cpu);
        while (tm.schedule(cpu) > 0) {
        }
      });
    }
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          Task& t = tasks[static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(i)];
          // Mix: mostly anywhere-tasks, some pinned inside chip 0 (cores
          // 0/1 on borderline) — all locality-hinted into chip 0's branch.
          const topo::CpuSet cpus =
              (i % 4 == 0) ? topo::CpuSet::single(i % 2) : topo::CpuSet{};
          t.init(&count_hit, &c, cpus, kTaskNone);
          tm.submit_to(&t, m.core_node(s % 2));
        }
      });
    }
    for (auto& th : submitters) th.join();
    while (c.hits.load() < kSubmitters * kPerSubmitter) {
      std::this_thread::yield();
    }
    stop.store(true);
    for (auto& th : drainers) th.join();
    EXPECT_EQ(c.hits.load(), kSubmitters * kPerSubmitter)
        << queue_kind_name(kind);
    EXPECT_EQ(tm.pending_approx(), 0u) << queue_kind_name(kind);
    for (auto& v : tasks) {
      for (auto& t : v) EXPECT_TRUE(t.completed());
    }
    c.hits.store(0);
  }
}

}  // namespace
}  // namespace piom
