// Tests for sync primitives: the three lock flavours and the semaphore.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/backoff.hpp"
#include "sync/cache.hpp"
#include "sync/semaphore.hpp"
#include "sync/spinlock.hpp"

namespace piom::sync {
namespace {

template <typename Lock>
void mutual_exclusion_torture() {
  Lock lock;
  int64_t counter = 0;  // deliberately non-atomic: the lock must protect it
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(SpinLock, MutualExclusion) { mutual_exclusion_torture<SpinLock>(); }
TEST(TicketLock, MutualExclusion) { mutual_exclusion_torture<TicketLock>(); }
TEST(MutexLock, MutualExclusion) { mutual_exclusion_torture<MutexLock>(); }

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLock, TryLock) {
  TicketLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLock, IsFifoFair) {
  // Serialize three threads acquiring in a controlled order: with a ticket
  // lock the grant order must equal the ticket order.
  TicketLock lock;
  std::vector<int> grant_order;
  std::atomic<int> armed{0};
  lock.lock();  // hold so all contenders queue behind us
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      // Ensure queueing order: thread t waits for t predecessors to be armed.
      while (armed.load() != t) cpu_relax();
      armed.fetch_add(1);  // next thread may take its ticket after this one...
      lock.lock();
      grant_order.push_back(t);
      lock.unlock();
    });
    // ...but give it a moment to actually take the ticket before arming the
    // next one (the fetch_add above happens before lock(), so spin briefly).
    while (armed.load() != t + 1) cpu_relax();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  lock.unlock();
  for (auto& th : threads) th.join();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
}

TEST(MutexLock, TryLock) {
  MutexLock lock;
  EXPECT_TRUE(lock.try_lock());
  std::thread other([&] { EXPECT_FALSE(lock.try_lock()); });
  other.join();
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

template <typename Lock>
void lock_guard_excludes() {
  Lock lock;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard<Lock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(LockGuard, ExcludesOnSpinLock) { lock_guard_excludes<SpinLock>(); }
TEST(LockGuard, ExcludesOnMutexLock) { lock_guard_excludes<MutexLock>(); }

TEST(LockGuard, AdoptsHeldLock) {
  // The try_lock + adopt idiom (TcpTransport::pump): the guard must NOT
  // re-acquire, and must release on scope exit.
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  {
    LockGuard<SpinLock> g(lock, kAdoptLock);
    EXPECT_FALSE(lock.try_lock());  // still held — adopt didn't release
  }
  EXPECT_TRUE(lock.try_lock());  // guard released at scope exit
  lock.unlock();
}

TEST(Semaphore, InitialValue) {
  Semaphore sem(2);
  EXPECT_TRUE(sem.try_wait());
  EXPECT_TRUE(sem.try_wait());
  EXPECT_FALSE(sem.try_wait());
}

TEST(Semaphore, PostThenWait) {
  Semaphore sem;
  sem.post();
  sem.wait();  // must not block
  EXPECT_EQ(sem.value(), 0);
}

TEST(Semaphore, WakesParkedWaiter) {
  Semaphore sem;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    sem.wait(/*spin_iterations=*/1);  // park almost immediately
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  sem.post();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(Semaphore, ManyProducersManyConsumers) {
  Semaphore sem;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5'000;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kConsumers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kProducers * kPerProducer / kConsumers; ++i) {
        sem.wait(16);
        consumed.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) sem.post();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(sem.value(), 0);
}

TEST(CacheAligned, SeparatesLines) {
  struct Two {
    CacheAligned<int> a;
    CacheAligned<int> b;
  } two;
  const auto pa = reinterpret_cast<uintptr_t>(&two.a.value);
  const auto pb = reinterpret_cast<uintptr_t>(&two.b.value);
  EXPECT_GE(pb > pa ? pb - pa : pa - pb, kCacheLine);
  EXPECT_EQ(pa % kCacheLine, 0u);
}

TEST(Backoff, SpinsWithoutCrashing) {
  Backoff b;
  for (int i = 0; i < 30; ++i) b.spin();
  b.reset();
  b.spin();
}

}  // namespace
}  // namespace piom::sync
