// Tests for the mini-MPI convenience layer: wildcard receives, sendrecv,
// barrier, bcast, allreduce — across all three progress engines.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "mpi/world.hpp"

namespace piom::mpi {
namespace {

WorldConfig fast_config(EngineKind kind) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.time_scale = 0.05;
  cfg.pioman.workers = 2;
  return cfg;
}

class CollectivesAllEngines : public ::testing::TestWithParam<EngineKind> {};

TEST_P(CollectivesAllEngines, AnyTagReceivesInArrivalOrder) {
  World world(fast_config(GetParam()));
  std::thread sender([&] {
    const int32_t a = 11, b = 22;
    world.comm(0).send(1, 5, &a, sizeof(a));
    world.comm(0).send(1, 9, &b, sizeof(b));
  });
  int32_t v1 = 0, v2 = 0;
  const Status s1 =
      world.comm(1).recv_status(0, Comm::kAnyTag, &v1, sizeof(v1));
  const Status s2 =
      world.comm(1).recv_status(0, Comm::kAnyTag, &v2, sizeof(v2));
  sender.join();
  EXPECT_EQ(v1, 11);
  EXPECT_EQ(s1.tag, 5u);
  EXPECT_EQ(s1.bytes, sizeof(int32_t));
  EXPECT_EQ(v2, 22);
  EXPECT_EQ(s2.tag, 9u);
}

TEST_P(CollectivesAllEngines, RecvStatusReportsExactTagToo) {
  World world(fast_config(GetParam()));
  std::thread sender([&] { world.comm(0).send(1, 7, "hi", 3); });
  char buf[8] = {};
  const Status st = world.comm(1).recv_status(0, 7, buf, sizeof(buf));
  sender.join();
  EXPECT_EQ(st.tag, 7u);
  EXPECT_EQ(st.bytes, 3u);
  EXPECT_STREQ(buf, "hi");
}

TEST_P(CollectivesAllEngines, SendrecvBothDirectionsNoDeadlock) {
  World world(fast_config(GetParam()));
  int32_t got0 = 0, got1 = 0;
  std::thread r1([&] {
    const int32_t mine = 111;
    world.comm(1).sendrecv(0, /*send_tag=*/2, &mine, sizeof(mine),
                           /*recv_tag=*/1, &got1, sizeof(got1));
  });
  const int32_t mine = 222;
  world.comm(0).sendrecv(1, 1, &mine, sizeof(mine), 2, &got0, sizeof(got0));
  r1.join();
  EXPECT_EQ(got0, 111);
  EXPECT_EQ(got1, 222);
}

TEST_P(CollectivesAllEngines, BarrierSynchronizes) {
  World world(fast_config(GetParam()));
  std::atomic<int> phase{0};
  std::thread r1([&] {
    world.comm(1).barrier();
    phase.fetch_add(1);
    world.comm(1).barrier();
  });
  world.comm(0).barrier();
  world.comm(0).barrier();
  EXPECT_GE(phase.load(), 0);  // no deadlock is the main assertion
  r1.join();
  EXPECT_EQ(phase.load(), 1);
}

TEST_P(CollectivesAllEngines, BarrierRepeatedManyTimes) {
  World world(fast_config(GetParam()));
  constexpr int kRounds = 25;
  std::atomic<int> counter{0};
  std::thread r1([&] {
    for (int i = 0; i < kRounds; ++i) {
      world.comm(1).barrier();
      counter.fetch_add(1);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    world.comm(0).barrier();
  }
  r1.join();
  EXPECT_EQ(counter.load(), kRounds);
}

TEST_P(CollectivesAllEngines, BcastFromBothRoots) {
  World world(fast_config(GetParam()));
  for (const int root : {0, 1}) {
    std::vector<int64_t> data(64);
    std::vector<int64_t> expect(64);
    std::iota(expect.begin(), expect.end(), root * 1000);
    std::thread r1([&] {
      std::vector<int64_t> mine(64);
      if (root == 1) std::iota(mine.begin(), mine.end(), 1000);
      world.comm(1).bcast(mine.data(), mine.size() * sizeof(int64_t), root);
      EXPECT_EQ(mine, expect);
    });
    if (root == 0) std::iota(data.begin(), data.end(), 0);
    world.comm(0).bcast(data.data(), data.size() * sizeof(int64_t), root);
    EXPECT_EQ(data, expect);
    r1.join();
  }
}

TEST_P(CollectivesAllEngines, AllreduceSumMaxMin) {
  World world(fast_config(GetParam()));
  std::vector<double> r0{1.0, 10.0, -5.0};
  std::vector<double> r1v{2.0, -3.0, 8.0};
  std::thread r1([&] {
    std::vector<double> mine = r1v;
    world.comm(1).allreduce(mine.data(), mine.size(), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(mine[0], 3.0);
    EXPECT_DOUBLE_EQ(mine[1], 7.0);
    EXPECT_DOUBLE_EQ(mine[2], 3.0);
  });
  std::vector<double> mine = r0;
  world.comm(0).allreduce(mine.data(), mine.size(), ReduceOp::kSum);
  EXPECT_DOUBLE_EQ(mine[0], 3.0);
  EXPECT_DOUBLE_EQ(mine[1], 7.0);
  EXPECT_DOUBLE_EQ(mine[2], 3.0);
  r1.join();

  // Max / min with integers.
  std::thread r1b([&] {
    std::vector<int64_t> mine{5, -2};
    world.comm(1).allreduce(mine.data(), mine.size(), ReduceOp::kMax);
    EXPECT_EQ(mine[0], 7);
    EXPECT_EQ(mine[1], -1);
    std::vector<int64_t> mn{5, -2};
    world.comm(1).allreduce(mn.data(), mn.size(), ReduceOp::kMin);
    EXPECT_EQ(mn[0], 5);
    EXPECT_EQ(mn[1], -2);
  });
  std::vector<int64_t> big{7, -1};
  world.comm(0).allreduce(big.data(), big.size(), ReduceOp::kMax);
  EXPECT_EQ(big[0], 7);
  EXPECT_EQ(big[1], -1);
  std::vector<int64_t> small{7, -1};
  world.comm(0).allreduce(small.data(), small.size(), ReduceOp::kMin);
  EXPECT_EQ(small[0], 5);
  EXPECT_EQ(small[1], -2);
  r1b.join();
}

TEST_P(CollectivesAllEngines, AnySourceRecvReportsSource) {
  World world(fast_config(GetParam()));
  std::thread sender([&] {
    const int32_t v = 77;
    world.comm(0).send(1, 4, &v, sizeof(v));
  });
  int32_t got = 0;
  const Status st =
      world.comm(1).recv_status(Comm::kAnySource, 4, &got, sizeof(got));
  sender.join();
  EXPECT_EQ(got, 77);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 4u);
}

TEST_P(CollectivesAllEngines, GatherScatterRoundTrip) {
  World world(fast_config(GetParam()));
  std::thread r1([&] {
    const int32_t mine = 11;
    world.comm(1).gather(&mine, sizeof(mine), nullptr, 0);
    int32_t got = -1;
    world.comm(1).scatter(nullptr, sizeof(int32_t), &got, 0);
    EXPECT_EQ(got, 1011);
  });
  const int32_t mine = 10;
  std::vector<int32_t> all(2, -1);
  world.comm(0).gather(&mine, sizeof(mine), all.data(), 0);
  EXPECT_EQ(all[0], 10);
  EXPECT_EQ(all[1], 11);
  for (auto& v : all) v += 1000;
  int32_t got = -1;
  world.comm(0).scatter(all.data(), sizeof(int32_t), &got, 0);
  EXPECT_EQ(got, 1010);
  r1.join();
}

TEST_P(CollectivesAllEngines, AlltoallExchangesBlocks) {
  World world(fast_config(GetParam()));
  std::thread r1([&] {
    const std::vector<int32_t> src{21, 22};
    std::vector<int32_t> dst(2, -1);
    world.comm(1).alltoall(src.data(), sizeof(int32_t), dst.data());
    EXPECT_EQ(dst[0], 12);  // rank 0's block for rank 1
    EXPECT_EQ(dst[1], 22);  // own block
  });
  const std::vector<int32_t> src{11, 12};
  std::vector<int32_t> dst(2, -1);
  world.comm(0).alltoall(src.data(), sizeof(int32_t), dst.data());
  EXPECT_EQ(dst[0], 11);  // own block
  EXPECT_EQ(dst[1], 21);  // rank 1's block for rank 0
  r1.join();
}

TEST_P(CollectivesAllEngines, BcastRejectsBadRoot) {
  World world(fast_config(GetParam()));
  char b = 0;
  EXPECT_THROW(world.comm(0).bcast(&b, 1, 2), std::invalid_argument);
}

TEST_P(CollectivesAllEngines, CollectivesComposeWithP2PTraffic) {
  // Collectives use reserved tags: application messages with ordinary tags
  // must not interfere.
  World world(fast_config(GetParam()));
  std::thread r1([&] {
    int32_t v = 0;
    world.comm(1).recv(0, 3, &v, sizeof(v));
    world.comm(1).barrier();
    int64_t sum = static_cast<int64_t>(v);
    world.comm(1).allreduce(&sum, 1, ReduceOp::kSum);
    EXPECT_EQ(sum, 42 + 42);
  });
  const int32_t v = 42;
  world.comm(0).send(1, 3, &v, sizeof(v));
  world.comm(0).barrier();
  int64_t sum = 42;
  world.comm(0).allreduce(&sum, 1, ReduceOp::kSum);
  EXPECT_EQ(sum, 84);
  r1.join();
}

INSTANTIATE_TEST_SUITE_P(Engines, CollectivesAllEngines,
                         ::testing::Values(EngineKind::kPioman,
                                           EngineKind::kMvapichLike,
                                           EngineKind::kOpenMpiLike),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kPioman: return "pioman";
                             case EngineKind::kMvapichLike: return "mvapich";
                             case EngineKind::kOpenMpiLike: return "openmpi";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace piom::mpi
