// Nonblocking collectives (CollOp state machines): the engine × N ×
// transport-backend matrix with several collectives in flight at once and
// test()-polled completion, plus the two safety properties that make
// overlap legal in the first place:
//   * tag-epoch regression — back-to-back same-kind collectives must not
//     cross-match rounds (two ibcasts from different roots, with the first
//     root slow: without the per-Comm epoch in the reserved tags, the
//     second root's fan-out lands in the first ibcast's posted receive);
//   * wildcard guard — a kAnySource/kAnyTag receive posted while
//     collectives run must never claim reserved-tag (collective) packets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

#include "mpi/world.hpp"

namespace piom::mpi {
namespace {

/// Transport flavor the whole mesh is forced onto.
enum class MeshKind {
  kSimnet,  ///< every pair over the NIC model (or $PIOM_TRANSPORT)
  kShmem,   ///< every pair on one node: pure shmem rings
  kHybrid,  ///< every pair on one node: shmem rail 0 + NIC rail
};

WorldConfig icoll_config(EngineKind kind, int nranks,
                         MeshKind mesh = MeshKind::kSimnet) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.nranks = nranks;
  cfg.time_scale = 0.05;               // 20x faster network: keep tests snappy
  cfg.session.pool_bufs_per_rail = 8;  // full mesh: bound the pool memory
  cfg.pioman.workers = 1;              // one simulated core per rank
  if (mesh != MeshKind::kSimnet) {
    cfg.policy.node_of.assign(static_cast<std::size_t>(nranks), 0);
    cfg.policy.intra = mesh == MeshKind::kShmem
                           ? transport::PairWiring::kShmem
                           : transport::PairWiring::kHybrid;
  }
  return cfg;
}

std::string engine_tag(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich";
    case EngineKind::kOpenMpiLike: return "openmpi";
  }
  return "unknown";
}

using Param = std::tuple<EngineKind, int, MeshKind>;
class ICollAllEngines : public ::testing::TestWithParam<Param> {};

// The acceptance surface: every rank starts all six i…() collectives (two
// allreduces — so two of the same kind are in flight together), keeps them
// ALL in flight at once, completes one by test()-polling and the rest by
// wait(), in an order different from the start order.
TEST_P(ICollAllEngines, ConcurrentCollectivesCompleteViaTestAndWait) {
  const auto [kind, n, mesh] = GetParam();
  World world(icoll_config(kind, n, mesh));
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&world, r, n = n] {
      Comm& comm = world.comm(r);

      std::vector<int64_t> red(5);
      for (std::size_t i = 0; i < red.size(); ++i) {
        red[i] = r + static_cast<int64_t>(i);
      }
      std::vector<double> red2{static_cast<double>(r), 1.0};
      std::vector<int32_t> bc(17);
      if (r == 0) std::iota(bc.begin(), bc.end(), 300);
      const int32_t mine = 100 + r;
      std::vector<int32_t> gathered(r == 1 ? static_cast<std::size_t>(n) : 0);
      std::vector<int32_t> scat_src(static_cast<std::size_t>(n));
      if (r == 0) std::iota(scat_src.begin(), scat_src.end(), 1000);
      int32_t scat_got = -1;
      std::vector<int32_t> a2a_src(static_cast<std::size_t>(n));
      std::vector<int32_t> a2a_dst(static_cast<std::size_t>(n), -1);
      for (int d = 0; d < n; ++d) {
        a2a_src[static_cast<std::size_t>(d)] = r * 100 + d;
      }

      // Start everything before completing anything: 7 in flight.
      CollRequest bar, ar1, ar2, bcr, gat, sct, a2a;
      comm.ibarrier(bar);
      comm.iallreduce(ar1, red.data(), red.size(), ReduceOp::kSum);
      comm.iallreduce(ar2, red2.data(), red2.size(), ReduceOp::kMax);
      comm.ibcast(bcr, bc.data(), bc.size() * sizeof(int32_t), 0);
      comm.igather(gat, &mine, sizeof(mine),
                   r == 1 ? gathered.data() : nullptr, 1);
      comm.iscatter(sct, r == 0 ? scat_src.data() : nullptr, sizeof(int32_t),
                    &scat_got, 0);
      comm.ialltoall(a2a, a2a_src.data(), sizeof(int32_t), a2a_dst.data());
      EXPECT_TRUE(bar.active());
      EXPECT_TRUE(a2a.active());

      // Complete out of start order; ar2 by pure test()-polling.
      comm.wait(a2a);
      comm.wait(sct);
      while (!comm.test(ar2)) std::this_thread::yield();
      comm.wait(gat);
      comm.wait(bcr);
      comm.wait(ar1);
      comm.wait(bar);
      EXPECT_TRUE(ar2.done());

      // ---- results ----
      const int64_t rank_sum = n * (n - 1) / 2;
      for (std::size_t i = 0; i < red.size(); ++i) {
        EXPECT_EQ(red[i], rank_sum + n * static_cast<int64_t>(i));
      }
      EXPECT_DOUBLE_EQ(red2[0], n - 1);
      EXPECT_DOUBLE_EQ(red2[1], 1.0);
      for (std::size_t i = 0; i < bc.size(); ++i) {
        EXPECT_EQ(bc[i], 300 + static_cast<int32_t>(i));
      }
      if (r == 1) {
        for (int p = 0; p < n; ++p) {
          EXPECT_EQ(gathered[static_cast<std::size_t>(p)], 100 + p);
        }
      }
      EXPECT_EQ(scat_got, 1000 + r);
      for (int s = 0; s < n; ++s) {
        EXPECT_EQ(a2a_dst[static_cast<std::size_t>(s)], s * 100 + r);
      }
    });
  }
  for (auto& t : ranks) t.join();
}

// A CollRequest may be reused once completed, and a rendezvous-sized
// payload works through the state machine (RTS/RDMA-Read rounds).
TEST_P(ICollAllEngines, RequestReuseAndRendezvousPayload) {
  const auto [kind, n, mesh] = GetParam();
  if (n > 4) GTEST_SKIP() << "payload test capped at N=4 for runtime";
  World world(icoll_config(kind, n, mesh));
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&world, r, n = n] {
      Comm& comm = world.comm(r);
      CollRequest req;  // reused for every collective below
      std::vector<uint8_t> big(1u << 15);  // 32 KB > eager threshold
      for (const int root : {0, n - 1}) {
        if (r == root) {
          for (std::size_t i = 0; i < big.size(); ++i) {
            big[i] = static_cast<uint8_t>(i * 7 + root);
          }
        }
        comm.ibcast(req, big.data(), big.size(), root);
        comm.wait(req);
        bool ok = true;
        for (std::size_t i = 0; i < big.size(); ++i) {
          ok = ok && big[i] == static_cast<uint8_t>(i * 7 + root);
        }
        EXPECT_TRUE(ok) << "rendezvous ibcast corrupted payload";
        comm.ibarrier(req);
        comm.wait(req);
      }
    });
  }
  for (auto& t : ranks) t.join();
}

INSTANTIATE_TEST_SUITE_P(
    EnginesSizesMeshes, ICollAllEngines,
    ::testing::Combine(::testing::Values(EngineKind::kPioman,
                                         EngineKind::kMvapichLike,
                                         EngineKind::kOpenMpiLike),
                       ::testing::Values(2, 3, 4, 8),
                       ::testing::Values(MeshKind::kSimnet, MeshKind::kShmem,
                                         MeshKind::kHybrid)),
    [](const auto& info) {
      const char* mesh = "";
      switch (std::get<2>(info.param)) {
        case MeshKind::kSimnet: mesh = ""; break;
        case MeshKind::kShmem: mesh = "_shmem"; break;
        case MeshKind::kHybrid: mesh = "_hybrid"; break;
      }
      return engine_tag(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + mesh;
    });

// ---- tag-epoch regression --------------------------------------------------
//
// Two back-to-back ibcasts of the same kind but different roots, N=4:
// binomial trees rooted at 0 and at 2 share the edge 2→3. Rank 2 cannot
// forward bcast A (it waits on slow root 0) but, as root of bcast B, fans
// out immediately — so B's payload reaches rank 3 FIRST, while rank 3 has
// both receives posted in order A, B. With epoch-less collective tags both
// transfers carry the same tag and FIFO matching hands B's payload to A's
// receive (verified: masking the epoch out of make_coll_tag makes this
// fail). The per-Comm epoch keeps the tags distinct, so B's early arrival
// waits unexpected until B's own receive claims it.
TEST(ICollTagEpoch, BackToBackSameKindDoNotCrossMatch) {
  constexpr int kN = 4;
  for (const EngineKind kind :
       {EngineKind::kMvapichLike, EngineKind::kPioman}) {
    World world(icoll_config(kind, kN));
    std::vector<std::thread> ranks;
    for (int r = 0; r < kN; ++r) {
      ranks.emplace_back([&world, r] {
        Comm& comm = world.comm(r);
        std::vector<int32_t> a(8), b(8);
        if (r == 0) std::iota(a.begin(), a.end(), 111);  // bcast A payload
        if (r == 2) std::iota(b.begin(), b.end(), 222);  // bcast B payload
        if (r == 0) {
          // The slow rank: hold A's root fan-out back until B (started
          // after A everywhere) has certainly reached rank 3.
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        CollRequest ra, rb;
        comm.ibcast(ra, a.data(), a.size() * sizeof(int32_t), 0);
        comm.ibcast(rb, b.data(), b.size() * sizeof(int32_t), 2);
        comm.wait(ra);
        comm.wait(rb);
        for (std::size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i], 111 + static_cast<int32_t>(i))
              << "rank " << r << ": bcast A delivered foreign payload";
          EXPECT_EQ(b[i], 222 + static_cast<int32_t>(i))
              << "rank " << r << ": bcast B delivered foreign payload";
        }
      });
    }
    for (auto& t : ranks) t.join();
  }
}

// Many same-kind collectives in flight at once (deep epoch pipeline):
// results must match as if they ran one by one.
TEST(ICollTagEpoch, DeepPipelineOfSameKindCollectives) {
  constexpr int kN = 3;  // odd: exercises the ring allreduce
  constexpr int kDepth = 8;
  World world(icoll_config(EngineKind::kPioman, kN));
  std::vector<std::thread> ranks;
  for (int r = 0; r < kN; ++r) {
    ranks.emplace_back([&world, r] {
      Comm& comm = world.comm(r);
      std::vector<std::vector<int64_t>> data(kDepth);
      std::vector<CollRequest> reqs(kDepth);
      for (int d = 0; d < kDepth; ++d) {
        data[static_cast<std::size_t>(d)] = {r + d, r * d, 7 - r + d};
        auto& v = data[static_cast<std::size_t>(d)];
        comm.iallreduce(reqs[static_cast<std::size_t>(d)], v.data(), v.size(),
                        ReduceOp::kSum);
      }
      for (int d = kDepth - 1; d >= 0; --d) {  // complete newest-first
        comm.wait(reqs[static_cast<std::size_t>(d)]);
      }
      for (int d = 0; d < kDepth; ++d) {
        int64_t s0 = 0, s1 = 0, s2 = 0;
        for (int i = 0; i < kN; ++i) {
          s0 += i + d;
          s1 += i * d;
          s2 += 7 - i + d;
        }
        const auto& v = data[static_cast<std::size_t>(d)];
        EXPECT_EQ(v[0], s0) << "depth " << d;
        EXPECT_EQ(v[1], s1) << "depth " << d;
        EXPECT_EQ(v[2], s2) << "depth " << d;
      }
    });
  }
  for (auto& t : ranks) t.join();
}

// ---- wildcard guard --------------------------------------------------------
//
// A kAnySource + kAnyTag receive posted BEFORE collectives run sits first
// in every gate's expected queue; without the reserved-space guard in the
// nmad matcher it would claim the first collective packet to arrive
// (hanging the collective and corrupting the wildcard). With the guard it
// must sit out the collectives and catch only the application message.
TEST(ICollWildcardGuard, AnySourceNeverClaimsCollectivePackets) {
  constexpr int kN = 4;
  for (const EngineKind kind :
       {EngineKind::kMvapichLike, EngineKind::kOpenMpiLike,
        EngineKind::kPioman}) {
    World world(icoll_config(kind, kN));
    std::vector<std::thread> ranks;
    for (int r = 0; r < kN; ++r) {
      ranks.emplace_back([&world, r] {
        Comm& comm = world.comm(r);
        Request wild;
        int32_t wild_val = -1;
        if (r == 0) {
          comm.irecv(wild, Comm::kAnySource, Comm::kAnyTag, &wild_val,
                     sizeof(wild_val));
        }
        // Reserved-tag traffic into rank 0 from every direction.
        comm.barrier();
        int64_t sum = r;
        comm.allreduce(&sum, 1, ReduceOp::kSum);
        EXPECT_EQ(sum, kN * (kN - 1) / 2);
        std::vector<int32_t> bc{9, 8, 7};
        comm.bcast(bc.data(), bc.size() * sizeof(int32_t), 0);
        if (r == 2) {
          const int32_t v = 4321;  // the one application message
          comm.send(0, 6, &v, sizeof(v));
        }
        if (r == 0) {
          comm.wait(wild);
          EXPECT_EQ(wild_val, 4321);
          EXPECT_EQ(wild.recv_req().source, 2);
          EXPECT_EQ(wild.recv_req().matched_tag, 6u);
        }
        comm.barrier();
      });
    }
    for (auto& t : ranks) t.join();
  }
}

// The reserved space is enforced at the API boundary: application sends
// and receives may not name reserved tags (they would collide with the
// epoch-stamped collective traffic); kAnyTag stays legal on receives.
TEST(ICollWildcardGuard, ApplicationTrafficRejectsReservedTags) {
  World world(icoll_config(EngineKind::kMvapichLike, 2));
  Comm& comm = world.comm(0);
  Request req;
  char b = 0;
  EXPECT_THROW(comm.isend(req, 1, Comm::kReservedTagBase, &b, 1),
               std::invalid_argument);
  EXPECT_THROW(comm.isend(req, 1, Comm::kReservedTagBase + 0x12345u, &b, 1),
               std::invalid_argument);
  EXPECT_THROW(comm.isend(req, 1, Comm::kAnyTag, &b, 1),
               std::invalid_argument);  // never valid on the send side
  EXPECT_THROW(comm.irecv(req, 1, Comm::kReservedTagBase + 7, &b, 1),
               std::invalid_argument);
  EXPECT_THROW(comm.irecv(req, Comm::kAnySource, Comm::kReservedTagBase, &b, 1),
               std::invalid_argument);
  EXPECT_NO_THROW(comm.irecv(req, Comm::kAnySource, Comm::kAnyTag, &b, 1));
  // Drain the one legally posted wildcard so teardown is clean.
  std::thread sender([&world] {
    const char v = 'x';
    world.comm(1).send(0, 1, &v, 1);
  });
  comm.wait(req);
  EXPECT_EQ(b, 'x');
  sender.join();
}

// Same property on the directed-receive path: a kAnyTag receive aimed at a
// specific peer must skip that peer's collective packets too.
TEST(ICollWildcardGuard, DirectedAnyTagSkipsCollectivePackets) {
  constexpr int kN = 2;
  World world(icoll_config(EngineKind::kMvapichLike, kN));
  std::thread r1([&world] {
    Comm& comm = world.comm(1);
    comm.barrier();
    const int32_t v = 77;
    comm.send(0, 5, &v, sizeof(v));
    comm.barrier();
  });
  Comm& comm = world.comm(0);
  Request any;
  int32_t got = -1;
  comm.irecv(any, 1, Comm::kAnyTag, &got, sizeof(got));
  comm.barrier();  // rank 1's barrier tokens must not land in `any`
  comm.wait(any);
  EXPECT_EQ(got, 77);
  EXPECT_EQ(any.recv_req().matched_tag, 5u);
  comm.barrier();
  r1.join();
}

}  // namespace
}  // namespace piom::mpi
