// Tests for the Task structure and FunctionTask adaptor.
#include <gtest/gtest.h>

#include "core/task.hpp"

namespace piom {
namespace {

TaskResult bump(void* arg) {
  ++*static_cast<int*>(arg);
  return TaskResult::kDone;
}

TEST(Task, InitSetsFields) {
  Task t;
  int counter = 0;
  t.init(&bump, &counter, topo::CpuSet::single(3), kTaskRepeat | kTaskNotify);
  EXPECT_EQ(t.fn, &bump);
  EXPECT_EQ(t.arg, &counter);
  EXPECT_TRUE(t.cpuset.test(3));
  EXPECT_EQ(t.options, kTaskRepeat | kTaskNotify);
  EXPECT_EQ(t.state.load(), TaskState::kCreated);
  EXPECT_EQ(t.run_count.load(), 0u);
  EXPECT_EQ(t.last_cpu.load(), -1);
  EXPECT_FALSE(t.completed());
}

TEST(Task, ReinitAfterDoneResets) {
  Task t;
  int counter = 0;
  t.init(&bump, &counter, {}, kTaskNone);
  t.state.store(TaskState::kDone);
  t.run_count.store(7);
  t.init(&bump, &counter, {}, kTaskNone);
  EXPECT_EQ(t.run_count.load(), 0u);
  EXPECT_EQ(t.state.load(), TaskState::kCreated);
}

TEST(Task, StateNames) {
  EXPECT_STREQ(task_state_name(TaskState::kCreated), "created");
  EXPECT_STREQ(task_state_name(TaskState::kQueued), "queued");
  EXPECT_STREQ(task_state_name(TaskState::kRunning), "running");
  EXPECT_STREQ(task_state_name(TaskState::kDone), "done");
}

TEST(FunctionTask, RunsLambda) {
  int hits = 0;
  FunctionTask ft([&] { ++hits; return TaskResult::kDone; }, {}, kTaskNotify);
  // Drive the task function directly (scheduler integration is tested in
  // test_task_manager).
  EXPECT_EQ(ft.task().fn(ft.task().arg), TaskResult::kDone);
  EXPECT_EQ(hits, 1);
}

TEST(FunctionTask, CarriesCpuSetAndOptions) {
  FunctionTask ft([] { return TaskResult::kAgain; },
                  topo::CpuSet::range(0, 2), kTaskRepeat);
  EXPECT_EQ(ft.task().cpuset, topo::CpuSet::range(0, 2));
  EXPECT_EQ(ft.task().options, kTaskRepeat);
}

}  // namespace
}  // namespace piom
