// Tests for the utility layer: timing, statistics, options parsing — plus
// the scheduler's queue-kind naming (used verbatim in bench tables and
// BENCH_*.json, so a rename is a format break).
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/task_manager.hpp"
#include "util/env.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace piom::util {
namespace {

TEST(Timing, NowIsMonotonic) {
  const int64_t a = now_ns();
  const int64_t b = now_ns();
  EXPECT_GE(b, a);
}

TEST(Timing, PreciseWaitIsAccurate) {
  // The lower bound is a hard guarantee of precise_wait_ns. The upper
  // bound (precision) is scheduling-noise-bound: one preemption on a
  // loaded 1-CPU host can blow any single sample. So don't assert one
  // wall-clock sample — poll against a monotonic deadline and require
  // that SOME attempt lands inside the envelope; only a host that can't
  // produce a single precise wait in 5 s fails.
  for (const int64_t wait_ns : {10'000, 200'000, 2'000'000}) {
    // Precision envelope: within 30% + 100us slack (container jitter).
    const int64_t bound_ns = wait_ns + wait_ns / 3 + 100'000;
    const int64_t deadline = now_ns() + 5'000'000'000;
    int64_t best = INT64_MAX;
    while (best > bound_ns) {
      const int64_t t0 = now_ns();
      precise_wait_ns(wait_ns);
      const int64_t elapsed = now_ns() - t0;
      ASSERT_GE(elapsed, wait_ns);  // never returns early
      if (elapsed < best) best = elapsed;
      if (now_ns() >= deadline) break;
    }
    EXPECT_LE(best, bound_ns)
        << "no precise_wait_ns(" << wait_ns
        << ") sample within the envelope before the deadline";
  }
}

TEST(Timing, BurnCpuBurnsAtLeastRequested) {
  const int64_t t0 = now_ns();
  burn_cpu_us(500);
  EXPECT_GE(now_ns() - t0, 500'000);
}

TEST(Timing, StopwatchMeasures) {
  Stopwatch sw;
  precise_wait_ns(100'000);
  EXPECT_GE(sw.elapsed_ns(), 100'000);
  EXPECT_GE(sw.elapsed_us(), 100.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_ns(), 100'000'000);
}

TEST(Stats, SummaryOfKnownData) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SummaryOfEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.median, 7);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Stats, QuantilesInterpolate) {
  const std::vector<double> sorted{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 40);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 20);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 10);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.125), 5);  // interpolated
  // Out-of-range q is clamped; degenerate inputs are total.
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, -1.0), 0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 2.0), 40);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0);
  EXPECT_DOUBLE_EQ(quantile_sorted({7}, 0.99), 7);
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);  // 0..100
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.p10, 10);
  EXPECT_DOUBLE_EQ(s.p90, 90);
  EXPECT_DOUBLE_EQ(s.p99, 99);
  EXPECT_DOUBLE_EQ(s.median, 50);
}

TEST(Stats, SampleSetAccumulates) {
  SampleSet set;
  EXPECT_TRUE(set.empty());
  for (int i = 1; i <= 10; ++i) set.add(i);
  EXPECT_EQ(set.size(), 10u);
  EXPECT_DOUBLE_EQ(set.summary().mean, 5.5);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(Stats, FormatSi) {
  EXPECT_EQ(format_si(950), "950");
  EXPECT_EQ(format_si(1500), "1.50k");
  EXPECT_EQ(format_si(2'500'000), "2.50M");
  EXPECT_EQ(format_si(3'200'000'000.0), "3.20G");
  EXPECT_EQ(format_si(42, 8), "      42");
  EXPECT_EQ(format_si(-1500), "-1.50k");  // magnitude picks the suffix
  EXPECT_EQ(format_si(0), "0");
}

TEST(Stats, FormatPct) {
  EXPECT_EQ(format_pct(1, 2), "50.0%");
  EXPECT_EQ(format_pct(875, 1000), "87.5%");
  EXPECT_EQ(format_pct(0, 10), "0.0%");
  EXPECT_EQ(format_pct(10, 10), "100.0%");
  EXPECT_EQ(format_pct(5, 0), "-");  // steal hit rate before any attempt
}

TEST(QueueKindName, NamesAreStableBenchLabels) {
  using piom::QueueKind;
  EXPECT_STREQ(piom::queue_kind_name(QueueKind::kSpin), "spinlock");
  EXPECT_STREQ(piom::queue_kind_name(QueueKind::kTicket), "ticketlock");
  EXPECT_STREQ(piom::queue_kind_name(QueueKind::kMutex), "mutex");
  EXPECT_STREQ(piom::queue_kind_name(QueueKind::kLockFree), "lockfree");
}

TEST(Env, TypedParsing) {
  setenv("PIOM_TEST_INT", "42", 1);
  setenv("PIOM_TEST_HEX", "0x5eed", 1);
  setenv("PIOM_TEST_DBL", "2.5", 1);
  setenv("PIOM_TEST_STR", "hello", 1);
  setenv("PIOM_TEST_BOOL", "yes", 1);
  setenv("PIOM_TEST_JUNK", "xyz", 1);
  EXPECT_EQ(env::integer("PIOM_TEST_INT", 0), 42);
  EXPECT_EQ(env::integer("PIOM_TEST_HEX", 0), 0x5eed);
  EXPECT_EQ(env::integer("PIOM_TEST_MISSING", 7), 7);
  EXPECT_EQ(env::integer("PIOM_TEST_JUNK", 7), 7);  // junk -> fallback + warn
  EXPECT_DOUBLE_EQ(env::number("PIOM_TEST_DBL", 0), 2.5);
  EXPECT_EQ(env::str("PIOM_TEST_STR", "d"), "hello");
  EXPECT_EQ(env::str("PIOM_TEST_MISSING", "d"), "d");
  EXPECT_FALSE(env::raw("PIOM_TEST_MISSING").has_value());
  EXPECT_TRUE(env::boolean("PIOM_TEST_BOOL", false));
  EXPECT_TRUE(env::boolean("PIOM_TEST_JUNK", true));  // junk -> fallback
  EXPECT_EQ(env::choice("PIOM_TEST_STR", {"hello", "bye"}, "bye"), "hello");
  EXPECT_EQ(env::choice("PIOM_TEST_JUNK", {"hello", "bye"}, "bye"), "bye");
  EXPECT_EQ(env::choice("PIOM_TEST_MISSING", {"hello", "bye"}, "bye"), "bye");
  unsetenv("PIOM_TEST_INT");
  unsetenv("PIOM_TEST_HEX");
  unsetenv("PIOM_TEST_DBL");
  unsetenv("PIOM_TEST_STR");
  unsetenv("PIOM_TEST_BOOL");
  unsetenv("PIOM_TEST_JUNK");
}

TEST(Options, ArgScanning) {
  const char* argv_c[] = {"prog", "--alpha", "1", "--beta=two", "--flag"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(arg_value(5, argv, "alpha"), "1");
  EXPECT_EQ(arg_value(5, argv, "beta"), "two");
  EXPECT_EQ(arg_value(5, argv, "gamma"), "");
  EXPECT_TRUE(arg_flag(5, argv, "flag"));
  EXPECT_FALSE(arg_flag(5, argv, "missing"));
}

}  // namespace
}  // namespace piom::util
