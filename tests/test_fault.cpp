// Failure detector + error-completing requests, across the full
// engine × N × transport-backend matrix:
//   * FaultMatrix — one rank killed mid-run; every survivor's outstanding
//     p2p receives (directed and any-source) and in-flight collective
//     error-complete within a bounded number of heartbeat periods, and the
//     survivor's detector reports the victim failed. The victim itself —
//     cut off from everyone — symmetrically error-completes and joins.
//   * HangRegression — pins the bug the detector fixes: with detection
//     off, a killed rank leaves a survivor's ibcast spinning forever
//     (shown by a bounded iteration budget); the identical scenario with
//     detection on completes with failed() set.
//   * LossyLiveness — the retransmit-livelock edge from
//     docs/architecture.md: a lossy link plus a receiver that goes silent
//     used to spin the sender's RTO loop forever; the detector's liveness
//     timeout now breaks it with error completion.
//   * Chaos* — seeded random-kill runs of test_nrank/test_icoll-style
//     mixed p2p + collective iteration bodies (ctest label `chaos`; runs
//     as the separate test_fault_chaos target). Seeding convention (also
//     in bench/README.md): $PIOM_CHAOS_SEED overrides the default seed,
//     every run logs the seed it used, and all per-world randomness (the
//     victim, the kill delay) derives from seed + world parameters — same
//     seed ⇒ same schedule of kills.
//
// Every wait in this file is bounded, and the bounds count heartbeat
// periods (the detector's own currency) rather than fixed seconds, so the
// suite scales with the sanitizer/time-dilation factor instead of flaking.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "mpi/world.hpp"
#include "util/env.hpp"
#include "util/timing.hpp"

namespace piom::mpi {
namespace {

// Sanitizer instrumentation slows every progress path severalfold; stretch
// the heartbeat so "silent for N periods" still means dead-and-not-just-
// instrumented (tests/CMakeLists.txt defines this when PIOM_SANITIZE is
// non-empty).
#ifdef PIOM_TEST_SANITIZED
constexpr double kTimeDilation = 5.0;
#else
constexpr double kTimeDilation = 1.0;
#endif

FailureConfig fault_config() {
  FailureConfig f;
  f.enabled = true;
  f.heartbeat_period_us = 2000.0 * kTimeDilation;
  // Generous: a ping is only as regular as the thread that sends it, and
  // the whole matrix may share one CPU with dozens of NIC threads.
  f.timeout_periods = 40;
  return f;
}

/// Nominal detection latency of `f` in ns.
int64_t detection_bound_ns(const FailureConfig& f) {
  return static_cast<int64_t>(f.heartbeat_period_us * 1e3) *
         (f.timeout_periods + 1);
}

/// Budget for "must complete after the kill": several detection bounds, so
/// scheduling noise can't turn a pass into a flake.
int64_t completion_budget_ns(const FailureConfig& f) {
  return 10 * detection_bound_ns(f);
}

/// Transport flavor the whole mesh is forced onto (same shape as
/// test_icoll's matrix).
enum class MeshKind { kSimnet, kShmem, kHybrid };

WorldConfig fault_world_config(EngineKind kind, int nranks, MeshKind mesh) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.nranks = nranks;
  cfg.time_scale = 0.05;
  cfg.session.pool_bufs_per_rail = 8;
  cfg.pioman.workers = 1;
  cfg.failure = fault_config();
  if (mesh != MeshKind::kSimnet) {
    cfg.policy.node_of.assign(static_cast<std::size_t>(nranks), 0);
    cfg.policy.intra = mesh == MeshKind::kShmem
                           ? transport::PairWiring::kShmem
                           : transport::PairWiring::kHybrid;
  }
  return cfg;
}

std::string engine_tag(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich";
    case EngineKind::kOpenMpiLike: return "openmpi";
  }
  return "unknown";
}

// ---- matrix: one rank killed mid-run ---------------------------------------

using Param = std::tuple<EngineKind, int, MeshKind>;
class FaultMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(FaultMatrix, SurvivorsErrorCompleteWithinBound) {
  const auto [kind, n, mesh] = GetParam();
  WorldConfig cfg = fault_world_config(kind, n, mesh);
  World world(cfg);
  const int victim = n - 1;
  const int64_t budget = completion_budget_ns(cfg.failure);

  std::atomic<int> armed{0};
  std::atomic<bool> killed{false};
  std::vector<std::thread> ranks;

  for (int r = 0; r < n - 1; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      // Outstanding work parked on the victim: a directed receive, an
      // any-source receive (nobody will ever send tag 9), and a collective
      // the victim never joins.
      int64_t directed = -1, wild = -1;
      Request r_dir, r_any;
      comm.irecv(r_dir, victim, /*tag=*/7, &directed, sizeof(directed));
      comm.irecv(r_any, Comm::kAnySource, /*tag=*/9, &wild, sizeof(wild));
      std::vector<int64_t> red{static_cast<int64_t>(r), 1};
      CollRequest cr;
      comm.iallreduce(cr, red.data(), red.size(), ReduceOp::kSum);
      armed.fetch_add(1, std::memory_order_release);

      // Bounded drive-to-completion. test() is the progress source for the
      // caller-driven engines; the budget only starts once the kill landed
      // (before that the ops are legitimately just pending).
      int64_t deadline = 0;
      for (;;) {
        const bool done = comm.test(r_dir) && comm.test(r_any) &&
                          comm.test(cr);
        if (done) break;
        if (killed.load(std::memory_order_acquire)) {
          if (deadline == 0) deadline = util::now_ns() + budget;
          ASSERT_LT(util::now_ns(), deadline)
              << "rank " << r << ": ops still pending "
              << cfg.failure.timeout_periods
              << "+ heartbeat periods after the kill";
        }
        std::this_thread::yield();
      }

      EXPECT_TRUE(r_dir.done() && r_dir.failed())
          << "rank " << r << ": directed recv from the victim";
      EXPECT_TRUE(r_any.done() && r_any.failed())
          << "rank " << r << ": any-source recv";
      EXPECT_TRUE(cr.done() && cr.failed())
          << "rank " << r << ": collective";
      // Detector verdict: contains the victim. Not asserted equal — under
      // extreme scheduling starvation a live-but-stalled peer may also be
      // (correctly, per the detector's local-knowledge contract) declared.
      EXPECT_TRUE(comm.rank_failed(victim));
      const std::vector<int> failed = comm.failed_ranks();
      EXPECT_NE(std::find(failed.begin(), failed.end(), victim),
                failed.end());
    });
  }

  // The victim: alive and progressing (pinging) until the kill, parked in
  // a receive nobody serves. Its own detector — cut off from every peer —
  // must error-complete the wait so this thread can join.
  ranks.emplace_back([&] {
    Comm& comm = world.comm(victim);
    int64_t v = -1;
    Request req;
    comm.irecv(req, 0, /*tag=*/11, &v, sizeof(v));
    armed.fetch_add(1, std::memory_order_release);
    int64_t deadline = 0;
    while (!comm.test(req)) {
      if (killed.load(std::memory_order_acquire)) {
        if (deadline == 0) deadline = util::now_ns() + budget;
        ASSERT_LT(util::now_ns(), deadline)
            << "victim: wait did not error-complete after the kill";
      }
      std::this_thread::yield();
    }
    EXPECT_TRUE(req.failed());
    EXPECT_TRUE(comm.any_rank_failed());
  });

  while (armed.load(std::memory_order_acquire) < n) {
    std::this_thread::yield();
  }
  // Let a little live traffic flow first, then cut the victim's links.
  std::this_thread::sleep_for(std::chrono::microseconds(
      static_cast<int64_t>(2 * cfg.failure.heartbeat_period_us)));
  world.kill_rank(victim);
  killed.store(true, std::memory_order_release);
  for (auto& t : ranks) t.join();
}

INSTANTIATE_TEST_SUITE_P(
    EnginesSizesMeshes, FaultMatrix,
    ::testing::Combine(::testing::Values(EngineKind::kPioman,
                                         EngineKind::kMvapichLike,
                                         EngineKind::kOpenMpiLike),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(MeshKind::kSimnet, MeshKind::kShmem,
                                         MeshKind::kHybrid)),
    [](const auto& info) {
      const char* mesh = "";
      switch (std::get<2>(info.param)) {
        case MeshKind::kSimnet: mesh = ""; break;
        case MeshKind::kShmem: mesh = "_shmem"; break;
        case MeshKind::kHybrid: mesh = "_hybrid"; break;
      }
      return engine_tag(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + mesh;
    });

// ---- regression: the hang the detector exists to fix -----------------------
//
// Global-lock engine on purpose: with detection off the abandoned CollOp
// stays enlisted in the engine registry and its receive stays queued in
// the gate — safe here because nothing progresses either once the caller
// stops test()-polling (pioman's background sweeps would keep touching
// the op through teardown).
TEST(HangRegression, KilledRootHangsWithoutDetectorCompletesWithIt) {
  constexpr int kN = 2;
  constexpr int kVictim = 1;

  {
    // Detector off: sever the victim's links by hand (kill_rank refuses to
    // run detector-less, precisely because of what this block shows).
    WorldConfig cfg = fault_world_config(EngineKind::kMvapichLike, kN,
                                         MeshKind::kSimnet);
    cfg.failure.enabled = false;
    World world(cfg);
    nmad::Session& vs = world.session(kVictim);
    for (std::size_t g = 0; g < vs.gate_count(); ++g) {
      for (int r = 0; r < vs.gate(g).nrails(); ++r) {
        transport::IChannel& ch = vs.gate(g).rail_channel(r);
        ch.sever();
        if (ch.peer() != nullptr) ch.peer()->sever();
      }
    }
    Comm& comm = world.comm(0);
    int32_t buf = -1;
    CollRequest req;
    comm.ibcast(req, &buf, sizeof(buf), kVictim);
    // A bounded iteration budget stands in for "forever": ~100k progress
    // iterations is detection-bound-scale wall time, and without a
    // detector nothing in the system can ever complete this op.
    for (int i = 0; i < 100000 && !comm.test(req); ++i) {
    }
    EXPECT_FALSE(req.done())
        << "ibcast from a dead root completed with detection off — "
           "the regression scenario no longer pins the hang";
  }

  {
    // Same scenario, detector on: completes, with failed() set.
    WorldConfig cfg = fault_world_config(EngineKind::kMvapichLike, kN,
                                         MeshKind::kSimnet);
    World world(cfg);
    world.kill_rank(kVictim);
    Comm& comm = world.comm(0);
    int32_t buf = -1;
    CollRequest req;
    comm.ibcast(req, &buf, sizeof(buf), kVictim);
    const int64_t deadline =
        util::now_ns() + completion_budget_ns(cfg.failure);
    while (!comm.test(req)) {
      ASSERT_LT(util::now_ns(), deadline)
          << "detector-on ibcast still pending past the detection bound";
    }
    EXPECT_TRUE(req.failed());
    EXPECT_TRUE(comm.rank_failed(kVictim));
  }
}

// ---- the lossy-link retransmit livelock ------------------------------------
//
// docs/architecture.md's documented edge: reliable session over a lossy
// link, receiver stops progressing after its last receive. A dropped final
// ack then used to spin the sender's RTO loop forever (retransmit → the
// silent peer never re-acks → retransmit …). The detector's liveness
// timeout is the cut-off: the silent peer is declared failed and the
// parked sends error-complete. Sends acked before the verdict complete
// ok — "sent" vs "delivered" stays exactly as lossy semantics define it.
TEST(LossyLiveness, SilentReceiverBreaksRetransmitLoopViaDetector) {
  WorldConfig cfg = fault_world_config(EngineKind::kMvapichLike, 2,
                                       MeshKind::kSimnet);
  cfg.link.drop_rate = 0.3;  // examples/lossy_link-class loss
  cfg.link.latency_us = 5;
  cfg.session.reliable = true;
  cfg.session.rto_us = 200;
  World world(cfg);

  constexpr int kRecvd = 8;   // receiver serves these, then goes silent
  constexpr int kTotal = 16;  // the rest are on their own
  std::atomic<int> received{0};

  std::thread receiver([&] {
    Comm& comm = world.comm(1);
    for (int i = 0; i < kRecvd; ++i) {
      int64_t v = -1;
      comm.recv(0, static_cast<Tag>(i), &v, sizeof(v));
      EXPECT_EQ(v, 1000 + i);
      received.fetch_add(1, std::memory_order_release);
    }
    // Silence: no more progress from this rank, ever. (The classic
    // livelock needs exactly this — a peer that stops re-acking.)
  });

  Comm& comm = world.comm(0);
  std::vector<int64_t> vals(kTotal);
  std::iota(vals.begin(), vals.end(), 1000);
  std::vector<Request> reqs(kTotal);
  for (int i = 0; i < kTotal; ++i) {
    comm.isend(reqs[static_cast<std::size_t>(i)], 1, static_cast<Tag>(i),
               &vals[static_cast<std::size_t>(i)], sizeof(int64_t));
  }

  // Every send must reach a terminal state — acked (ok) or error-completed
  // after the liveness verdict — within the detection budget, counted from
  // the moment the receiver went silent.
  while (received.load(std::memory_order_acquire) < kRecvd) {
    comm.engine().progress();  // keep acking the receiver's side of things
    std::this_thread::yield();
  }
  const int64_t deadline = util::now_ns() + completion_budget_ns(cfg.failure);
  int pending;
  do {
    pending = 0;
    for (auto& r : reqs) {
      if (!comm.test(r)) ++pending;
    }
    ASSERT_LT(util::now_ns(), deadline)
        << pending << " sends still spinning in the retransmit loop past "
                      "the detection bound — the livelock is back";
  } while (pending > 0);

  // No per-send verdict is asserted: even a delivered send may legally
  // error-complete when its final ack was among the drops and the silence
  // hit before the re-ack (sent ≠ delivered — the sender cannot tell
  // "delivered, ack lost" from "lost"). The property under test is that
  // every verdict ARRIVES — terminal state for all, silent peer declared.
  int ok = 0;
  for (auto& r : reqs) {
    if (!r.failed()) ++ok;
  }
  std::printf("[lossy] %d/%d sends completed ok, rest error-completed\n", ok,
              kTotal);

  // The silent peer must be declared dead. Under the lossy simnet link the
  // drain above cannot finish before the verdict (the unacked sends only
  // error-complete on fail_peer), but under a forced loss-free transport
  // (PIOM_TRANSPORT=shmem) every send completes ok immediately — keep
  // driving progress until the detector's timeout catches the silence.
  const int64_t verdict_deadline =
      util::now_ns() + completion_budget_ns(cfg.failure);
  while (!comm.rank_failed(1)) {
    ASSERT_LT(util::now_ns(), verdict_deadline)
        << "silent peer never declared dead within the detection budget";
    comm.engine().progress();
    std::this_thread::yield();
  }
  EXPECT_TRUE(comm.rank_failed(1));
  receiver.join();
}

// ---- rendezvous rounds under failure ---------------------------------------
//
// Collective payloads above the eager threshold run every round over the
// RTS / RDMA-read / FIN path, where error completion is a protocol rather
// than a local act: a survivor that cancels (or, one round behind, never
// posts) a round receive must NACK the matching RTS — via the failing
// collective's epoch revocation (CollOp::advance_failing) or the
// detector's whole-reserved-space revocation — or the *sending* survivor
// parks in rdv_waiting_fin_ on a live gate forever. The all-eager matrix
// above can never reach that hang; this loop, iterating rendezvous-sized
// allreduces until a mid-run kill is detected, can.
TEST(RdvDrain, RendezvousCollectivesErrorCompleteAfterKill) {
  constexpr int kN = 4;
  constexpr int kVictim = kN - 1;
  for (const EngineKind kind : {EngineKind::kPioman, EngineKind::kMvapichLike,
                                EngineKind::kOpenMpiLike}) {
    WorldConfig cfg = fault_world_config(kind, kN, MeshKind::kSimnet);
    cfg.session.eager_threshold = 1024;  // 8 KiB payloads go rendezvous
    World world(cfg);
    const int64_t budget = completion_budget_ns(cfg.failure);
    std::atomic<bool> killed{false};
    std::vector<std::thread> ranks;
    for (int r = 0; r < kN; ++r) {
      ranks.emplace_back([&, r] {
        Comm& comm = world.comm(r);
        constexpr std::size_t kElems = 1024;  // 8 KiB of int64 per round
        const int64_t give_up = util::now_ns() + 20 * budget;
        const auto run_over = [&] {
          return r == kVictim ? comm.any_rank_failed()
                              : comm.rank_failed(kVictim);
        };
        for (int64_t iter = 0; !run_over(); ++iter) {
          ASSERT_LT(util::now_ns(), give_up)
              << "rank " << r << ": no failure verdict after 20 budgets";
          // N = 4 is a power of two: recursive doubling swaps the whole
          // 8 KiB vector with a different partner every phase, so a kill
          // lands between survivors mid-rendezvous with high probability.
          std::vector<int64_t> red(kElems, iter + r);
          CollRequest cr;
          comm.iallreduce(cr, red.data(), red.size(), ReduceOp::kSum);
          int64_t deadline = 0;
          while (!comm.test(cr)) {
            if (killed.load(std::memory_order_acquire)) {
              if (deadline == 0) deadline = util::now_ns() + budget;
              ASSERT_LT(util::now_ns(), deadline)
                  << "rank " << r << " (" << engine_tag(kind)
                  << "): rendezvous allreduce outlived the budget — a "
                     "round send is parked for a FIN/NACK that never came";
            }
            std::this_thread::yield();
          }
          if (!cr.failed()) {
            int64_t expect = 0;
            for (int q = 0; q < kN; ++q) expect += iter + q;
            EXPECT_EQ(red[0], expect) << "rank " << r << " iter " << iter;
            EXPECT_EQ(red[kElems - 1], expect)
                << "rank " << r << " iter " << iter;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(3 * cfg.failure.heartbeat_period_us)));
    world.kill_rank(kVictim);
    killed.store(true, std::memory_order_release);
    for (auto& t : ranks) t.join();
    for (int r = 0; r < kVictim; ++r) {
      EXPECT_TRUE(world.comm(r).rank_failed(kVictim))
          << "rank " << r << " (" << engine_tag(kind)
          << ") never declared the victim";
    }
  }
}

// Deterministic pin on the parked-rendezvous hang. The loop above relies on
// a racy kill interleaving, and on caller-driven engines it can pass even
// without revocation: a survivor that drains and stops progressing also
// stops pinging, so its peers eventually (falsely) evict it and fail_peer
// completes the parked send anyway. Here the interleaving is forced — the
// root's rendezvous fan-out stages an RTS at a survivor that never posts
// the matching receive — and both survivors keep progressing (pinging)
// throughout, so the false-positive escape hatch is closed: the parked send
// can only complete via the detector's reserved-space revocation NACK.
TEST(RdvDrain, ParkedRendezvousRoundIsNackedWhileSurvivorsStayLive) {
  WorldConfig cfg =
      fault_world_config(EngineKind::kMvapichLike, 3, MeshKind::kSimnet);
  cfg.session.eager_threshold = 1024;  // 8 KiB payload goes rendezvous
  World world(cfg);
  Comm& a = world.comm(0);
  Comm& b = world.comm(1);
  const int64_t budget = completion_budget_ns(cfg.failure);

  world.kill_rank(2);
  // Rank 0 roots an ibcast right away, before its detector can have fired:
  // the binomial fan-out posts rendezvous sends to both rank 1 and the
  // (already dead) rank 2 in its first advance. Rank 1 never starts the
  // bcast — the survivor that observed the failure and stopped calling
  // collectives — so rank 0's RTS towards it stages unmatched.
  std::vector<uint8_t> payload(8192, 0xab);
  CollRequest cr;
  a.ibcast(cr, payload.data(), payload.size(), 0);
  const int64_t staged_by = util::now_ns() + budget;
  while (b.gate_to(0).stats().unexpected_rts == 0) {
    ASSERT_LT(util::now_ns(), staged_by)
        << "root's rendezvous RTS never staged at the idle survivor";
    (void)a.test(cr);  // drives rank 0's engine; can't be done yet
    b.engine().progress();
    std::this_thread::yield();
  }
  ASSERT_GE(a.gate_to(1).stats().rdv_sent, 1u)
      << "fan-out went eager; the test would be vacuous";
  // Drive both survivors until the collective completes. Without the
  // revocation NACK this parks forever: rank 1 stays live (pinging), so no
  // eviction ever error-completes rank 0's send.
  const int64_t deadline = util::now_ns() + budget;
  while (!a.test(cr)) {
    ASSERT_LT(util::now_ns(), deadline)
        << "root's rendezvous send parked past the budget — the staged RTS "
           "was never NACKed";
    b.engine().progress();
    std::this_thread::yield();
  }
  EXPECT_TRUE(cr.failed());
  EXPECT_GE(b.gate_to(0).stats().rts_nacked, 1u);
  EXPECT_GE(a.gate_to(1).stats().sends_nacked, 1u);
  // The completion really came from the NACK, not a false-positive cascade:
  // the survivors never declared each other, only the victim.
  EXPECT_FALSE(a.rank_failed(1));
  EXPECT_FALSE(b.rank_failed(0));
  EXPECT_TRUE(a.rank_failed(2));
  EXPECT_TRUE(b.rank_failed(2));
}

// ---- chaos: seeded random kills under test_nrank-style iteration bodies ----

uint64_t chaos_seed() {
  // Hex accepted (env::integer parses base 0); fixed default keeps CI
  // runs reproducible.
  return static_cast<uint64_t>(
      piom::util::env::integer("PIOM_CHAOS_SEED", 0x5eed5eedLL));
}

uint64_t splitmix(uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One chaos run: every rank iterates { ring sendrecv, blocking allreduce }
/// until its detector reports a failure, then drains and returns. The main
/// thread kills a seeded-random victim after a seeded-random delay. The
/// properties under test are liveness (no wait outlives the budget — the
/// ctest timeout is only the backstop) and integrity (everything that
/// completed unfailed carries exactly the data it would in a fault-free
/// run).
void chaos_run(EngineKind kind, int n, MeshKind mesh, double drop_rate,
               bool reliable, uint64_t rng0) {
  WorldConfig cfg = fault_world_config(kind, n, mesh);
  cfg.link.drop_rate = drop_rate;
  cfg.session.reliable = reliable;
  if (reliable) cfg.session.rto_us = 200;
  uint64_t rng = rng0;
  const int victim = static_cast<int>(splitmix(rng) % static_cast<uint64_t>(n));
  const auto kill_delay_us = static_cast<int64_t>(
      cfg.failure.heartbeat_period_us * (2 + splitmix(rng) % 8));
  std::printf("[chaos] engine=%s n=%d mesh=%d drop=%.2f victim=%d "
              "delay=%lldus\n",
              engine_tag(kind).c_str(), n, static_cast<int>(mesh), drop_rate,
              victim, static_cast<long long>(kill_delay_us));

  World world(cfg);
  const int64_t budget = completion_budget_ns(cfg.failure);
  std::atomic<bool> killed{false};
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      const int succ = (r + 1) % n;
      const int pred = (r - 1 + n) % n;
      const int64_t give_up = util::now_ns() + 20 * budget;  // absolute cap
      // Survivors iterate until their detector fingers THE victim — a
      // starvation false-positive on some live rank (legal: the detector
      // only knows about silence, not its cause) must not end the run
      // before the genuine verdict lands. The victim itself exits on any
      // peer declared: cut off from everyone, it cannot name itself.
      const auto run_over = [&] {
        return r == victim ? comm.any_rank_failed() : comm.rank_failed(victim);
      };
      for (int64_t iter = 0; !run_over(); ++iter) {
        ASSERT_LT(util::now_ns(), give_up)
            << "rank " << r << ": no failure verdict after 20 budgets";
        // Ring shift. The receive needs the cancel guard: a live
        // predecessor may observe the failure one iteration earlier and
        // never send — without MPI_Cancel semantics this recv would trade
        // the detector's bounded hang for an unbounded one.
        const int64_t sval = r * 1000003 + iter;
        int64_t rval = -1;
        Request sreq, rreq;
        comm.irecv(rreq, pred, /*tag=*/13, &rval, sizeof(rval));
        comm.isend(sreq, succ, /*tag=*/13, &sval, sizeof(sval));
        int64_t deadline = 0;
        while (!comm.test(rreq) || !comm.test(sreq)) {
          if (comm.any_rank_failed()) {
            if (rreq.done() || comm.cancel(rreq)) {
              // Send side: terminal by TX completion (unreliable) or by
              // ack/eviction (reliable) — bounded either way.
            }
            if (deadline == 0) deadline = util::now_ns() + budget;
            ASSERT_LT(util::now_ns(), deadline)
                << "rank " << r << ": p2p drain exceeded the budget";
          }
          std::this_thread::yield();
        }
        if (rreq.done() && !rreq.failed() && rval >= 0) {
          EXPECT_EQ(rval % 1000003, iter % 1000003)
              << "rank " << r << ": ring payload from a wrong iteration";
        }
        // Blocking collective. Wait drives progress on every engine, so
        // once any rank dies this completes — failed — within the bound;
        // an unfailed completion must carry the exact fault-free result.
        std::vector<int64_t> red{1, iter};
        CollRequest cr;
        comm.iallreduce(cr, red.data(), red.size(), ReduceOp::kSum);
        deadline = 0;
        while (!comm.test(cr)) {
          if (killed.load(std::memory_order_acquire)) {
            if (deadline == 0) deadline = util::now_ns() + budget;
            ASSERT_LT(util::now_ns(), deadline)
                << "rank " << r << ": allreduce outlived the budget";
          }
          std::this_thread::yield();
        }
        if (!cr.failed()) {
          EXPECT_EQ(red[0], n) << "rank " << r << " iter " << iter;
          EXPECT_EQ(red[1], n * iter) << "rank " << r << " iter " << iter;
        }
      }
      if (r != victim) {
        EXPECT_TRUE(comm.any_rank_failed());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::microseconds(kill_delay_us));
  world.kill_rank(victim);
  killed.store(true, std::memory_order_release);
  for (auto& t : ranks) t.join();
  // Every survivor's detector must have fingered the victim (possibly
  // among others, if the drain starved a live rank past its timeout).
  for (int r = 0; r < n; ++r) {
    if (r == victim) continue;
    EXPECT_TRUE(world.comm(r).rank_failed(victim))
        << "rank " << r << " never declared the victim";
  }
}

TEST(ChaosKill, MixedP2pAndCollectivesAllEngines) {
  uint64_t seed = chaos_seed();
  std::printf("[chaos] PIOM_CHAOS_SEED=0x%llx\n",
              static_cast<unsigned long long>(seed));
  for (const EngineKind kind : {EngineKind::kPioman, EngineKind::kMvapichLike,
                                EngineKind::kOpenMpiLike}) {
    for (const MeshKind mesh : {MeshKind::kSimnet, MeshKind::kShmem}) {
      uint64_t rng = seed ^ (static_cast<uint64_t>(kind) * 1315423911ULL) ^
                     (static_cast<uint64_t>(mesh) << 32);
      chaos_run(kind, 4, mesh, /*drop_rate=*/0.0, /*reliable=*/false,
                splitmix(rng));
    }
  }
}

TEST(ChaosLossy, KillUnderPacketLossWithReliability) {
  uint64_t seed = chaos_seed() ^ 0x1055ULL;
  std::printf("[chaos] PIOM_CHAOS_SEED=0x%llx (lossy variant)\n",
              static_cast<unsigned long long>(chaos_seed()));
  for (const EngineKind kind :
       {EngineKind::kPioman, EngineKind::kMvapichLike}) {
    uint64_t rng = seed ^ (static_cast<uint64_t>(kind) * 2654435761ULL);
    chaos_run(kind, 4, MeshKind::kSimnet, /*drop_rate=*/0.1,
              /*reliable=*/true, splitmix(rng));
  }
}

}  // namespace
}  // namespace piom::mpi
