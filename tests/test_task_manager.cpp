// Tests for the TaskManager: queue selection (cpuset -> topology node),
// Algorithm 1's hierarchy walk, repeatable tasks, affinity enforcement,
// stats, and the ablation config switches.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "core/lf_queue.hpp"
#include "core/task_manager.hpp"

namespace piom {
namespace {

struct Counter {
  std::atomic<int> hits{0};
  std::atomic<int> last_cpu{-1};
};

TaskResult count_hit(void* arg) {
  static_cast<Counter*>(arg)->hits.fetch_add(1);
  return TaskResult::kDone;
}

class TaskManagerKwak : public ::testing::Test {
 protected:
  TaskManagerKwak() : machine_(topo::Machine::kwak()), tm_(machine_) {}
  topo::Machine machine_;
  TaskManager tm_;
};

TEST_F(TaskManagerKwak, SubmitSelectsPerCoreQueue) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::single(5), kTaskNone);
  tm_.submit(&t);
  EXPECT_EQ(tm_.queue_of(machine_.core_node(5)).size_approx(), 1u);
  EXPECT_EQ(tm_.global_queue().size_approx(), 0u);
}

TEST_F(TaskManagerKwak, SubmitSelectsCacheQueue) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::range(4, 8), kTaskNone);
  tm_.submit(&t);
  const topo::TopoNode& cache = machine_.node_covering(topo::CpuSet::range(4, 8));
  EXPECT_EQ(cache.level, topo::Level::kCache);
  EXPECT_EQ(tm_.queue_of(cache).size_approx(), 1u);
}

TEST_F(TaskManagerKwak, EmptyCpusetGoesGlobal) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, {}, kTaskNone);
  tm_.submit(&t);
  EXPECT_EQ(tm_.global_queue().size_approx(), 1u);
}

TEST_F(TaskManagerKwak, ScheduleRunsLocalTask) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::single(3), kTaskNotify);
  tm_.submit(&t);
  EXPECT_EQ(tm_.schedule(3), 1);
  EXPECT_EQ(c.hits.load(), 1);
  EXPECT_TRUE(t.completed());
  EXPECT_EQ(t.last_cpu.load(), 3);
  t.wait_done();  // semaphore was posted
}

TEST_F(TaskManagerKwak, OtherCoreDoesNotSeePerCoreTask) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::single(3), kTaskNone);
  tm_.submit(&t);
  // Core 2 shares the cache with core 3 but must not run a per-core-3 task.
  EXPECT_EQ(tm_.schedule(2), 0);
  EXPECT_EQ(c.hits.load(), 0);
  EXPECT_EQ(tm_.schedule(3), 1);
  EXPECT_EQ(c.hits.load(), 1);
}

TEST_F(TaskManagerKwak, HierarchyWalkReachesGlobalQueue) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, {}, kTaskNone);  // global
  tm_.submit(&t);
  EXPECT_EQ(tm_.schedule(11), 1);  // any core may run it
  EXPECT_EQ(c.hits.load(), 1);
  EXPECT_EQ(t.last_cpu.load(), 11);
}

TEST_F(TaskManagerKwak, AffinityEnforcedInWideQueue) {
  // cpuset {3,4} spans two NUMA nodes on kwak -> lands in the global queue,
  // but only cores 3 and 4 may execute it.
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::parse("3,4"), kTaskNone);
  tm_.submit(&t);
  EXPECT_EQ(&machine_.node_covering(t.cpuset), &machine_.root());
  EXPECT_EQ(tm_.schedule(7), 0);  // not allowed; re-enqueued
  EXPECT_EQ(tm_.global_queue().size_approx(), 1u);
  EXPECT_EQ(tm_.schedule(4), 1);
  EXPECT_EQ(c.hits.load(), 1);
  EXPECT_EQ(t.last_cpu.load(), 4);
}

TEST_F(TaskManagerKwak, RepeatTaskRunsUntilDone) {
  struct Poll {
    int remaining = 5;
    int runs = 0;
  } poll;
  Task t;
  t.init(
      [](void* arg) {
        auto* p = static_cast<Poll*>(arg);
        ++p->runs;
        return (--p->remaining == 0) ? TaskResult::kDone : TaskResult::kAgain;
      },
      &poll, topo::CpuSet::single(0), kTaskRepeat | kTaskNotify);
  tm_.submit(&t);
  // Each schedule() pass runs the task once (snapshot bound) and re-enqueues.
  int passes = 0;
  while (!t.completed() && passes < 100) {
    tm_.schedule(0);
    ++passes;
  }
  EXPECT_TRUE(t.completed());
  EXPECT_EQ(poll.remaining, 0);
  EXPECT_EQ(poll.runs, 5);
  EXPECT_EQ(t.run_count.load(), 5u);
}

TEST_F(TaskManagerKwak, NonRepeatTaskIgnoresAgain) {
  Counter c;
  Task t;
  t.init(
      [](void* arg) {
        static_cast<Counter*>(arg)->hits.fetch_add(1);
        return TaskResult::kAgain;  // one-shot tasks complete regardless
      },
      &c, topo::CpuSet::single(0), kTaskNone);
  tm_.submit(&t);
  EXPECT_EQ(tm_.schedule(0), 1);
  EXPECT_TRUE(t.completed());
  EXPECT_EQ(tm_.pending_approx(), 0u);
}

TEST_F(TaskManagerKwak, ScheduleOneRunsExactlyOne) {
  Counter c;
  Task a, b;
  a.init(&count_hit, &c, topo::CpuSet::single(0), kTaskNone);
  b.init(&count_hit, &c, topo::CpuSet::single(0), kTaskNone);
  tm_.submit(&a);
  tm_.submit(&b);
  EXPECT_TRUE(tm_.schedule_one(0));
  EXPECT_EQ(c.hits.load(), 1);
  EXPECT_TRUE(tm_.schedule_one(0));
  EXPECT_EQ(c.hits.load(), 2);
  EXPECT_FALSE(tm_.schedule_one(0));
}

TEST_F(TaskManagerKwak, ScheduleFromLevelServicesOnlyShallowQueues) {
  Counter c;
  Task local, global;
  local.init(&count_hit, &c, topo::CpuSet::single(0), kTaskNone);
  global.init(&count_hit, &c, {}, kTaskNone);
  tm_.submit(&local);
  tm_.submit(&global);
  // Machine-level pass: runs the global task, leaves the per-core one.
  EXPECT_EQ(tm_.schedule_from_level(0, topo::Level::kMachine), 1);
  EXPECT_FALSE(local.completed());
  EXPECT_TRUE(global.completed());
  EXPECT_EQ(tm_.schedule(0), 1);
  EXPECT_TRUE(local.completed());
}

TEST_F(TaskManagerKwak, WaitDrivesProgress) {
  struct Poll {
    int remaining = 50;
  } poll;
  Task t;
  t.init(
      [](void* arg) {
        auto* p = static_cast<Poll*>(arg);
        return (--p->remaining == 0) ? TaskResult::kDone : TaskResult::kAgain;
      },
      &poll, topo::CpuSet::single(2), kTaskRepeat);
  tm_.submit(&t);
  tm_.wait(t, 2);  // progressive wait executes the polls itself
  EXPECT_TRUE(t.completed());
  EXPECT_EQ(poll.remaining, 0);
}

TEST_F(TaskManagerKwak, CoreStatsTrackExecutions) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::single(1), kTaskNone);
  tm_.submit(&t);
  tm_.schedule(1);
  EXPECT_EQ(tm_.core_stats(1).tasks_run, 1u);
  EXPECT_GE(tm_.core_stats(1).schedule_calls, 1u);
  EXPECT_EQ(tm_.core_stats(2).tasks_run, 0u);
  EXPECT_EQ(tm_.submissions(), 1u);
  tm_.reset_stats();
  EXPECT_EQ(tm_.core_stats(1).tasks_run, 0u);
  EXPECT_EQ(tm_.submissions(), 0u);
}

TEST_F(TaskManagerKwak, DumpMentionsQueues) {
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::single(1), kTaskNone);
  tm_.submit(&t);
  const std::string d = tm_.dump();
  EXPECT_NE(d.find("core #1"), std::string::npos);
  EXPECT_NE(d.find("spinlock"), std::string::npos);
}

TEST(TaskManagerConfig, SingleGlobalQueueMode) {
  const topo::Machine m = topo::Machine::kwak();
  TaskManagerConfig cfg;
  cfg.single_global_queue = true;
  TaskManager tm(m, cfg);
  Counter c;
  Task t;
  t.init(&count_hit, &c, topo::CpuSet::single(5), kTaskNone);
  tm.submit(&t);
  EXPECT_EQ(tm.global_queue().size_approx(), 1u);
  // Affinity still honoured even in the big-lock strawman.
  EXPECT_EQ(tm.schedule(0), 0);
  EXPECT_EQ(tm.schedule(5), 1);
}

TEST(TaskManagerConfig, AllQueueKindsWork) {
  for (const QueueKind kind : {QueueKind::kSpin, QueueKind::kTicket,
                               QueueKind::kMutex, QueueKind::kLockFree}) {
    const topo::Machine m = topo::Machine::borderline();
    TaskManagerConfig cfg;
    cfg.queue_kind = kind;
    TaskManager tm(m, cfg);
    Counter c;
    std::deque<Task> tasks(10);
    for (auto& t : tasks) {
      t.init(&count_hit, &c, topo::CpuSet::single(2), kTaskNone);
      tm.submit(&t);
    }
    while (tm.schedule(2) > 0) {
    }
    EXPECT_EQ(c.hits.load(), 10) << queue_kind_name(kind);
  }
}

TEST(TaskManagerConfig, MaxTasksPerPassBounds) {
  const topo::Machine m = topo::Machine::flat(2);
  TaskManagerConfig cfg;
  cfg.max_tasks_per_pass = 3;
  TaskManager tm(m, cfg);
  Counter c;
  std::deque<Task> tasks(10);
  for (auto& t : tasks) {
    t.init(&count_hit, &c, topo::CpuSet::single(0), kTaskNone);
    tm.submit(&t);
  }
  EXPECT_EQ(tm.schedule(0), 3);
  EXPECT_EQ(tm.schedule(0), 3);
  EXPECT_EQ(tm.schedule(0), 3);
  EXPECT_EQ(tm.schedule(0), 1);
}

TEST(TaskManagerConcurrency, ManyCoresDrainSharedQueue) {
  const topo::Machine m = topo::Machine::kwak();
  TaskManagerConfig cfg;
  cfg.max_tasks_per_pass = 8;  // force sharing: no single pass drains it all
  TaskManager tm(m, cfg);
  constexpr int kTasks = 4'000;
  Counter c;
  std::deque<Task> tasks(kTasks);
  for (auto& t : tasks) {
    t.init(&count_hit, &c, {}, kTaskNone);  // global queue
    tm.submit(&t);
  }
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int cpu = 0; cpu < m.ncpus(); ++cpu) {
    threads.emplace_back([&, cpu] {
      ready.fetch_add(1);
      while (ready.load() < m.ncpus()) std::this_thread::yield();
      while (c.hits.load() < kTasks) {
        tm.schedule(cpu);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.hits.load(), kTasks);
  for (auto& t : tasks) EXPECT_TRUE(t.completed());
  // Work was shared: at least a few cores participated.
  int participating = 0;
  uint64_t total = 0;
  for (int cpu = 0; cpu < m.ncpus(); ++cpu) {
    const uint64_t n = tm.core_stats(cpu).tasks_run;
    total += n;
    if (n > 0) ++participating;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTasks));
  // Work sharing needs real parallelism: on a single hardware thread the
  // first worker scheduled can drain all 4000 tiny tasks before the OS ever
  // preempts it, so only assert participation when cores can actually race.
  if (std::thread::hardware_concurrency() >= 2) {
    EXPECT_GE(participating, 2);
  }
}

TEST(TaskManagerConcurrency, ConcurrentSubmitAndDrain) {
  const topo::Machine m = topo::Machine::borderline();
  TaskManager tm(m);
  constexpr int kPerThread = 2'000;
  constexpr int kSubmitters = 4;
  Counter c;
  std::deque<std::deque<Task>> tasks(kSubmitters);
  for (auto& v : tasks) v.resize(kPerThread);
  std::atomic<bool> stop{false};
  std::vector<std::thread> drainers;
  for (int cpu = 0; cpu < m.ncpus(); ++cpu) {
    drainers.emplace_back([&, cpu] {
      while (!stop.load()) tm.schedule(cpu);
      // Final drain so nothing is left behind.
      while (tm.schedule(cpu) > 0) {
      }
    });
  }
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerThread; ++i) {
        Task& t = tasks[s][i];
        t.init(&count_hit, &c, topo::CpuSet::single((s + i) % m.ncpus()),
               kTaskNone);
        tm.submit(&t);
      }
    });
  }
  for (auto& th : submitters) th.join();
  while (c.hits.load() < kSubmitters * kPerThread) std::this_thread::yield();
  stop.store(true);
  for (auto& th : drainers) th.join();
  EXPECT_EQ(c.hits.load(), kSubmitters * kPerThread);
  EXPECT_EQ(tm.pending_approx(), 0u);
}

}  // namespace
}  // namespace piom
