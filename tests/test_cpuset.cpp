// Unit + property tests for topo::CpuSet.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "topo/cpuset.hpp"

namespace piom::topo {
namespace {

TEST(CpuSet, DefaultIsEmpty) {
  CpuSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.first(), -1);
  EXPECT_EQ(s.to_string(), "");
}

TEST(CpuSet, SingleAndTest) {
  const CpuSet s = CpuSet::single(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.test(5));
  EXPECT_FALSE(s.test(4));
  EXPECT_FALSE(s.test(6));
  EXPECT_EQ(s.first(), 5);
  EXPECT_EQ(s.next(5), -1);
}

TEST(CpuSet, SetClearRoundTrip) {
  CpuSet s;
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(255);
  EXPECT_EQ(s.count(), 4);
  s.clear(63);
  EXPECT_EQ(s.count(), 3);
  EXPECT_FALSE(s.test(63));
  EXPECT_TRUE(s.test(64));
}

TEST(CpuSet, OutOfRangeThrows) {
  CpuSet s;
  EXPECT_THROW(s.set(-1), std::out_of_range);
  EXPECT_THROW(s.set(CpuSet::kMaxCpus), std::out_of_range);
  EXPECT_THROW(s.clear(-1), std::out_of_range);
  // test() is a query; out-of-range is just "not a member".
  EXPECT_FALSE(s.test(-1));
  EXPECT_FALSE(s.test(CpuSet::kMaxCpus + 10));
}

TEST(CpuSet, RangeAndFirstN) {
  const CpuSet r = CpuSet::range(3, 7);
  EXPECT_EQ(r.count(), 4);
  EXPECT_TRUE(r.test(3));
  EXPECT_TRUE(r.test(6));
  EXPECT_FALSE(r.test(7));
  const CpuSet f = CpuSet::first_n(4);
  EXPECT_EQ(f, CpuSet::range(0, 4));
}

TEST(CpuSet, IterationVisitsAllInOrder) {
  CpuSet s;
  s.set(2);
  s.set(63);
  s.set(64);
  s.set(130);
  std::vector<int> seen;
  for (int c = s.first(); c >= 0; c = s.next(c)) seen.push_back(c);
  EXPECT_EQ(seen, (std::vector<int>{2, 63, 64, 130}));
}

TEST(CpuSet, ContainsAndIntersects) {
  const CpuSet big = CpuSet::range(0, 8);
  const CpuSet small = CpuSet::range(2, 5);
  const CpuSet other = CpuSet::range(8, 12);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
  EXPECT_TRUE(big.contains(CpuSet{}));  // empty set is in everything
  EXPECT_TRUE(big.intersects(small));
  EXPECT_FALSE(big.intersects(other));
  EXPECT_FALSE(big.intersects(CpuSet{}));
}

TEST(CpuSet, BitwiseOps) {
  const CpuSet a = CpuSet::range(0, 4);
  const CpuSet b = CpuSet::range(2, 6);
  EXPECT_EQ((a | b), CpuSet::range(0, 6));
  EXPECT_EQ((a & b), CpuSet::range(2, 4));
  const CpuSet nota = ~a;
  EXPECT_FALSE(nota.test(0));
  EXPECT_TRUE(nota.test(4));
  EXPECT_EQ(nota.count(), CpuSet::kMaxCpus - 4);
}

TEST(CpuSet, ToStringRuns) {
  CpuSet s;
  s.set(0);
  s.set(1);
  s.set(2);
  s.set(7);
  s.set(12);
  s.set(13);
  EXPECT_EQ(s.to_string(), "0-2,7,12-13");
}

TEST(CpuSet, ParseBasics) {
  EXPECT_EQ(CpuSet::parse("0-2,7,12-13").to_string(), "0-2,7,12-13");
  EXPECT_EQ(CpuSet::parse("5"), CpuSet::single(5));
  EXPECT_EQ(CpuSet::parse(""), CpuSet{});
}

TEST(CpuSet, ParseRejectsJunk) {
  EXPECT_THROW((void)CpuSet::parse("abc"), std::invalid_argument);
  EXPECT_THROW((void)CpuSet::parse("3-1"), std::invalid_argument);
  EXPECT_THROW((void)CpuSet::parse("1;2"), std::invalid_argument);
}

// Property: to_string/parse round-trips for random sets.
TEST(CpuSetProperty, ParseToStringRoundTrip) {
  std::mt19937 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    CpuSet s;
    const int bits = static_cast<int>(rng() % 40);
    for (int i = 0; i < bits; ++i) {
      s.set(static_cast<int>(rng() % CpuSet::kMaxCpus));
    }
    EXPECT_EQ(CpuSet::parse(s.to_string()), s);
  }
}

// Property: count() equals the number of iterated members; union/intersection
// laws hold.
TEST(CpuSetProperty, AlgebraLaws) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    CpuSet a, b;
    for (int i = 0; i < 24; ++i) {
      a.set(static_cast<int>(rng() % 128));
      b.set(static_cast<int>(rng() % 128));
    }
    int iterated = 0;
    for (int c = a.first(); c >= 0; c = a.next(c)) ++iterated;
    EXPECT_EQ(iterated, a.count());
    EXPECT_EQ(((a | b) & a), a);                    // absorption
    EXPECT_TRUE((a | b).contains(a));
    EXPECT_TRUE(a.contains(a & b));
    EXPECT_EQ((a & b).count() + (a | b).count(), a.count() + b.count());
  }
}

}  // namespace
}  // namespace piom::topo
