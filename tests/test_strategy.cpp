// Unit + property tests for the strategy layer (aggregation decisions,
// multirail striping).
#include <gtest/gtest.h>

#include <random>

#include "nmad/strategy.hpp"
#include "util/env.hpp"

namespace piom::nmad {
namespace {

TEST(Strategy, SingleRailNeverStripes) {
  Strategy s({});
  const auto chunks = s.stripe(10 << 20, {1.25});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].rail, 0);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].len, std::size_t{10 << 20});
}

TEST(Strategy, SmallMessagesStayOnOneRail) {
  StrategyConfig cfg;
  cfg.stripe_min_chunk = 64 * 1024;
  Strategy s(cfg);
  // Below 2x the min chunk: splitting would only add per-packet overhead.
  const auto chunks = s.stripe(100 * 1024, {1.25, 1.25});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].len, std::size_t{100 * 1024});
}

TEST(Strategy, EqualRailsSplitEvenly) {
  StrategyConfig cfg;
  cfg.stripe_min_chunk = 64 * 1024;
  Strategy s(cfg);
  const auto chunks = s.stripe(1 << 20, {1.25, 1.25});
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_NEAR(static_cast<double>(chunks[0].len),
              static_cast<double>(chunks[1].len), 1.0);
}

TEST(Strategy, BandwidthProportionalSplit) {
  StrategyConfig cfg;
  cfg.stripe_min_chunk = 4 * 1024;
  Strategy s(cfg);
  // 1 : 3 bandwidth ratio -> 25% / 75% split.
  const auto chunks = s.stripe(1 << 20, {1.0, 3.0});
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_NEAR(static_cast<double>(chunks[0].len), (1 << 20) * 0.25,
              (1 << 20) * 0.02);
  EXPECT_NEAR(static_cast<double>(chunks[1].len), (1 << 20) * 0.75,
              (1 << 20) * 0.02);
}

TEST(Strategy, ZeroAndOneByteLengthsNeverSplit) {
  StrategyConfig cfg;
  cfg.stripe_min_chunk = 4 * 1024;
  Strategy s(cfg);
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}}) {
    const auto chunks = s.stripe(len, {10.0, 1.25});
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].rail, 0);
    EXPECT_EQ(chunks[0].offset, 0u);
    EXPECT_EQ(chunks[0].len, len);
  }
}

TEST(Strategy, LatencyAwareEagerPicksTheFastRail) {
  Strategy s({});
  // Heterogeneous rails: the strictly fastest one takes all eager traffic,
  // regardless of its position.
  EXPECT_EQ(s.select_eager_rail({0.15, 1.8}), 0);
  EXPECT_EQ(s.select_eager_rail({1.8, 0.15}), 1);
  EXPECT_EQ(s.select_eager_rail({1.8, 1.8, 0.15}), 2);
  // Homogeneous rails fall back to rail 0 (no round robin configured).
  EXPECT_EQ(s.select_eager_rail({1.8, 1.8}), 0);
  // A tie at the minimum is homogeneous too.
  EXPECT_EQ(s.select_eager_rail({0.15, 0.15, 1.8}), 0);
  // Single rail short-circuits.
  EXPECT_EQ(s.select_eager_rail(std::vector<double>{0.15}), 0);
}

TEST(Strategy, LatencyAwareEagerDisabledFallsBackToRoundRobin) {
  StrategyConfig cfg;
  cfg.latency_aware_eager = false;
  cfg.eager_round_robin = true;
  Strategy s(cfg);
  // Even with a strictly faster rail, disabled = legacy round robin.
  std::vector<int> seen;
  for (int i = 0; i < 4; ++i) seen.push_back(s.select_eager_rail({0.15, 1.8}));
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 0, 1}));
}

TEST(Strategy, StripingDisabledUsesRailZero) {
  StrategyConfig cfg;
  cfg.multirail_stripe = false;
  Strategy s(cfg);
  const auto chunks = s.stripe(10 << 20, {1.25, 1.25, 1.25});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].rail, 0);
}

// Property: for random sizes and rail sets, the chunks always partition
// [0, len) exactly, never overlap, are rail-sorted, and each non-final chunk
// respects the minimum chunk size.
TEST(StrategyProperty, StripeAlwaysCoversExactly) {
  std::mt19937 rng(2024);
  StrategyConfig cfg;
  cfg.stripe_min_chunk = 16 * 1024;
  Strategy s(cfg);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t len = rng() % (8u << 20);
    const int nrails = 1 + static_cast<int>(rng() % 4);
    std::vector<double> bw;
    for (int r = 0; r < nrails; ++r) {
      bw.push_back(0.5 + static_cast<double>(rng() % 100) / 10.0);
    }
    const auto chunks = s.stripe(len, bw);
    ASSERT_FALSE(chunks.empty());
    std::size_t expected_offset = 0;
    int last_rail = -1;
    for (const StripeChunk& c : chunks) {
      EXPECT_EQ(c.offset, expected_offset) << "gap or overlap";
      EXPECT_GT(c.rail, last_rail) << "rails must be strictly increasing";
      EXPECT_LT(c.rail, nrails);
      last_rail = c.rail;
      expected_offset += c.len;
    }
    EXPECT_EQ(expected_offset, len) << "chunks must cover the whole message";
    if (chunks.size() > 1) {
      for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
        EXPECT_GE(chunks[i].len, cfg.stripe_min_chunk);
      }
    }
  }
}

TEST(Strategy, ShouldPackRespectsLimits) {
  StrategyConfig cfg;
  cfg.aggregation = true;
  cfg.max_pack_msgs = 4;
  cfg.max_pack_bytes = 1024;
  Strategy s(cfg);
  EXPECT_FALSE(s.should_pack(1, 100));   // a single message is not a pack
  EXPECT_TRUE(s.should_pack(2, 100));
  EXPECT_TRUE(s.should_pack(4, 1024));
  EXPECT_FALSE(s.should_pack(5, 100));   // too many messages
  EXPECT_FALSE(s.should_pack(2, 2048));  // too many bytes
}

TEST(Strategy, ShouldPackOffWithoutAggregation) {
  // Pinned explicitly off (not default): the default defers to
  // $PIOM_AGGREGATION, and this test must hold in the forced-aggregation
  // CI pass too.
  StrategyConfig cfg;
  cfg.aggregation = false;
  Strategy s(cfg);
  EXPECT_FALSE(s.should_pack(8, 100));
}

TEST(Strategy, AggregationUnsetFollowsEnvironment) {
  StrategyConfig cfg;
  ASSERT_FALSE(cfg.aggregation.has_value());
  Strategy s(cfg);
  EXPECT_EQ(s.aggregation(),
            piom::util::env::boolean("PIOM_AGGREGATION", false));
}

TEST(Strategy, EagerRailRoundRobin) {
  StrategyConfig cfg;
  cfg.eager_round_robin = true;
  Strategy s(cfg);
  std::vector<int> seen;
  for (int i = 0; i < 6; ++i) seen.push_back(s.select_eager_rail(3));
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 0, 1, 2}));
  // Single rail: always 0 even with round-robin on.
  EXPECT_EQ(s.select_eager_rail(1), 0);
}

TEST(Strategy, EagerRailDefaultIsZero) {
  Strategy s({});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(s.select_eager_rail(4), 0);
}

}  // namespace
}  // namespace piom::nmad
