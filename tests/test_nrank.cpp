// N-rank cluster tests: the full WorldConfig{.nranks = N} stack for all
// three progress engines at N in {2, 3, 4, 8} — point-to-point between
// every pair, any-source matching, and every collective
// (bcast/allreduce/barrier/gather/scatter/alltoall). One binary-wide
// script test per (engine, N) amortizes the mesh construction cost
// (N*(N-1) NICs per world). The whole matrix runs twice: over the pure
// simnet mesh and over a mixed mesh (a 2-chip machine spec places the
// ranks, so roughly half the pairs ride the shmem backend).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

#include "mpi/world.hpp"
#include "topo/machine.hpp"

namespace piom::mpi {
namespace {

/// Mesh flavor of a test instance.
enum class MeshKind {
  kSimnet,  ///< every pair over the NIC model (or $PIOM_TRANSPORT)
  kMixed,   ///< 2-chip placement: same-chip pairs shmem, others simnet
};

WorldConfig nrank_config(EngineKind kind, int nranks,
                         MeshKind mesh = MeshKind::kSimnet) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.nranks = nranks;
  cfg.time_scale = 0.05;          // 20x faster network: keep tests snappy
  cfg.session.pool_bufs_per_rail = 8;  // full mesh: bound the pool memory
  cfg.pioman.workers = 1;         // one simulated core per rank
  if (mesh == MeshKind::kMixed) {
    // Two chips x two cores: rank r sits on core r % 4, so chips host
    // rank classes {0,1 mod 4} and {2,3 mod 4} — half the pairs of an
    // even-sized world share a chip and get the shmem backend.
    const topo::Machine machine = topo::Machine::symmetric(1, 2, 2, false);
    cfg.policy.node_of = rank_nodes_from_machine(machine, nranks);
  }
  return cfg;
}

std::string engine_tag(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich";
    case EngineKind::kOpenMpiLike: return "openmpi";
  }
  return "unknown";
}

using Param = std::tuple<EngineKind, int, MeshKind>;
class NRankAllEngines : public ::testing::TestWithParam<Param> {};

// The whole acceptance surface in one per-rank script: every rank runs the
// same program on its own thread, SPMD style.
TEST_P(NRankAllEngines, EndToEnd) {
  const auto [kind, n, mesh] = GetParam();
  World world(nrank_config(kind, n, mesh));
  std::vector<std::thread> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.emplace_back([&world, r, n = n] {
      Comm& comm = world.comm(r);
      EXPECT_EQ(comm.rank(), r);
      EXPECT_EQ(comm.size(), n);

      // ---- point-to-point between every ordered pair ----
      for (int p = 0; p < n; ++p) {
        if (p == r) continue;
        const int32_t mine = r * 1000 + p;
        int32_t got = -1;
        comm.sendrecv(p, static_cast<Tag>(100 + r), &mine, sizeof(mine), p,
                      static_cast<Tag>(100 + p), &got, sizeof(got));
        EXPECT_EQ(got, p * 1000 + r);
      }

      // ---- any-source, arrival-before-post (unexpected-queue path) ----
      comm.barrier();
      if (r == 0) {
        std::vector<bool> seen(static_cast<std::size_t>(n), false);
        for (int i = 0; i < n - 1; ++i) {
          int32_t v = -1;
          const Status st =
              comm.recv_status(Comm::kAnySource, 7, &v, sizeof(v));
          ASSERT_GE(st.source, 1);
          ASSERT_LT(st.source, n);
          EXPECT_FALSE(seen[static_cast<std::size_t>(st.source)]);
          seen[static_cast<std::size_t>(st.source)] = true;
          EXPECT_EQ(v, st.source * 10);
          EXPECT_EQ(st.bytes, sizeof(int32_t));
          EXPECT_EQ(st.tag, 7u);
        }
      } else {
        const int32_t v = r * 10;
        comm.send(0, 7, &v, sizeof(v));
      }

      // ---- any-source, post-before-arrival (expected-queue path) ----
      if (r == 0) {
        int32_t v = -1;
        Request rq;
        comm.irecv(rq, Comm::kAnySource, 8, &v, sizeof(v));
        comm.barrier();  // guarantees the wildcard is posted first
        comm.wait(rq);
        EXPECT_EQ(v, 4242);
      } else {
        comm.barrier();
        if (r == n - 1) {
          const int32_t v = 4242;
          comm.send(0, 8, &v, sizeof(v));
        }
      }

      // ---- bcast (binomial tree), two roots ----
      comm.barrier();
      for (const int root : {0, n - 1}) {
        std::vector<int64_t> data(48);
        if (r == root) std::iota(data.begin(), data.end(), root * 100);
        comm.bcast(data.data(), data.size() * sizeof(int64_t), root);
        std::vector<int64_t> expect(48);
        std::iota(expect.begin(), expect.end(), root * 100);
        EXPECT_EQ(data, expect);
      }

      // ---- bcast, rendezvous-sized payload (32 KB > eager threshold) ----
      {
        std::vector<uint8_t> big(1u << 15);
        if (r == 0) {
          for (std::size_t i = 0; i < big.size(); ++i) {
            big[i] = static_cast<uint8_t>(i * 7);
          }
        }
        comm.bcast(big.data(), big.size(), 0);
        bool ok = true;
        for (std::size_t i = 0; i < big.size(); ++i) {
          ok = ok && big[i] == static_cast<uint8_t>(i * 7);
        }
        EXPECT_TRUE(ok) << "rendezvous bcast corrupted payload";
      }

      // ---- allreduce (recursive doubling at 2/4/8, ring at 3) ----
      {
        std::vector<int64_t> v{r + 1, -r, r % 3};
        comm.allreduce(v.data(), v.size(), ReduceOp::kSum);
        int64_t s0 = 0, s1 = 0, s2 = 0;
        for (int i = 0; i < n; ++i) {
          s0 += i + 1;
          s1 -= i;
          s2 += i % 3;
        }
        EXPECT_EQ(v[0], s0);
        EXPECT_EQ(v[1], s1);
        EXPECT_EQ(v[2], s2);

        double mx[2] = {static_cast<double>(r), static_cast<double>(-r)};
        comm.allreduce(mx, 2, ReduceOp::kMax);
        EXPECT_DOUBLE_EQ(mx[0], n - 1);
        EXPECT_DOUBLE_EQ(mx[1], 0.0);

        double mn[2] = {static_cast<double>(r), static_cast<double>(n - r)};
        comm.allreduce(mn, 2, ReduceOp::kMin);
        EXPECT_DOUBLE_EQ(mn[0], 0.0);
        EXPECT_DOUBLE_EQ(mn[1], 1.0);
      }

      // ---- allreduce with a count that doesn't divide N (ring chunking) --
      {
        std::vector<int32_t> v(static_cast<std::size_t>(n) + 1);
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = r + static_cast<int32_t>(i);
        }
        comm.allreduce(v.data(), v.size(), ReduceOp::kSum);
        const int32_t rank_sum = n * (n - 1) / 2;
        for (std::size_t i = 0; i < v.size(); ++i) {
          EXPECT_EQ(v[i], rank_sum + n * static_cast<int32_t>(i));
        }
      }

      // ---- gather + scatter round trip through root 1 ----
      {
        const int root = 1;
        const int32_t mine = 100 + r;
        std::vector<int32_t> all(r == root ? static_cast<std::size_t>(n) : 0);
        comm.gather(&mine, sizeof(mine), r == root ? all.data() : nullptr,
                    root);
        if (r == root) {
          for (int i = 0; i < n; ++i) {
            EXPECT_EQ(all[static_cast<std::size_t>(i)], 100 + i);
          }
          for (auto& x : all) x += 1000;
        }
        int32_t back = -1;
        comm.scatter(r == root ? all.data() : nullptr, sizeof(int32_t), &back,
                     root);
        EXPECT_EQ(back, 1100 + r);
      }

      // ---- alltoall: value encodes (sender, receiver) ----
      {
        std::vector<int32_t> src(static_cast<std::size_t>(n));
        std::vector<int32_t> dst(static_cast<std::size_t>(n), -1);
        for (int d = 0; d < n; ++d) {
          src[static_cast<std::size_t>(d)] = r * 100 + d;
        }
        comm.alltoall(src.data(), sizeof(int32_t), dst.data());
        for (int s = 0; s < n; ++s) {
          EXPECT_EQ(dst[static_cast<std::size_t>(s)], s * 100 + r);
        }
      }

      comm.barrier();
    });
  }
  for (auto& t : ranks) t.join();
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSizes, NRankAllEngines,
    ::testing::Combine(::testing::Values(EngineKind::kPioman,
                                         EngineKind::kMvapichLike,
                                         EngineKind::kOpenMpiLike),
                       ::testing::Values(2, 3, 4, 8),
                       ::testing::Values(MeshKind::kSimnet, MeshKind::kMixed)),
    [](const auto& info) {
      return engine_tag(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == MeshKind::kMixed ? "_mixed" : "");
    });

TEST(NRank, AnySourcePreservesPerSourceOrder) {
  // Three senders blast numbered messages at rank 0's wildcard receives:
  // interleaving across sources is arbitrary, but each source's stream
  // must arrive in order (per-gate FIFO matching).
  constexpr int kPerSender = 12;
  World world(nrank_config(EngineKind::kPioman, 4));
  std::vector<std::thread> senders;
  for (int s = 1; s < 4; ++s) {
    senders.emplace_back([&world, s] {
      for (int i = 0; i < kPerSender; ++i) {
        const int32_t v = s * 1000 + i;
        world.comm(s).send(0, 3, &v, sizeof(v));
      }
    });
  }
  std::vector<int> next(4, 0);
  for (int i = 0; i < 3 * kPerSender; ++i) {
    int32_t v = -1;
    const Status st =
        world.comm(0).recv_status(Comm::kAnySource, 3, &v, sizeof(v));
    ASSERT_GE(st.source, 1);
    ASSERT_LT(st.source, 4);
    EXPECT_EQ(v, st.source * 1000 + next[static_cast<std::size_t>(st.source)]);
    ++next[static_cast<std::size_t>(st.source)];
  }
  for (int s = 1; s < 4; ++s) {
    EXPECT_EQ(next[static_cast<std::size_t>(s)], kPerSender);
  }
  for (auto& t : senders) t.join();
}

TEST(NRank, AnySourceOrderHoldsOverMixedBackends) {
  // Same per-source FIFO property, but rank 0's three senders arrive over
  // different transports: rank 1 shares rank 0's chip (shmem pair), ranks
  // 2 and 3 sit on the other chip (simnet pairs). Wildcard matching must
  // not care which backend delivered the arrival.
  constexpr int kPerSender = 12;
  WorldConfig cfg = nrank_config(EngineKind::kPioman, 4);
  cfg.policy.node_of = {0, 0, 1, 1};
  World world(cfg);
  ASSERT_EQ(world.comm(0).gate_to(1).rail_channel(0).backend(),
            transport::Backend::kShmem);
  ASSERT_EQ(world.comm(0).gate_to(2).rail_channel(0).backend(),
            transport::Backend::kSimnet);
  std::vector<std::thread> senders;
  for (int s = 1; s < 4; ++s) {
    senders.emplace_back([&world, s] {
      for (int i = 0; i < kPerSender; ++i) {
        const int32_t v = s * 1000 + i;
        world.comm(s).send(0, 3, &v, sizeof(v));
      }
    });
  }
  std::vector<int> next(4, 0);
  for (int i = 0; i < 3 * kPerSender; ++i) {
    int32_t v = -1;
    const Status st =
        world.comm(0).recv_status(Comm::kAnySource, 3, &v, sizeof(v));
    ASSERT_GE(st.source, 1);
    ASSERT_LT(st.source, 4);
    EXPECT_EQ(v, st.source * 1000 + next[static_cast<std::size_t>(st.source)]);
    ++next[static_cast<std::size_t>(st.source)];
  }
  for (int s = 1; s < 4; ++s) {
    EXPECT_EQ(next[static_cast<std::size_t>(s)], kPerSender);
  }
  for (auto& t : senders) t.join();
}

TEST(NRank, AnySourceRegistrationVsClaimRace) {
  // Regression stress for the wildcard registration race: while rank 0 is
  // still walking the gate list registering an any-source receive, an
  // arrival at an earlier-registered gate may claim the request and run
  // the sibling purge past a gate that has not inserted yet. The matcher
  // must never leave a stale registration behind (it would dangle once the
  // request completes and its storage is reused next iteration). Seven
  // senders blasting a tight wildcard-recv loop over eight gates keeps the
  // registration window busy; ASan/TSan catch the stale-node dereference.
  constexpr int kPerSender = 64;
  constexpr int kRanks = 8;
  World world(nrank_config(EngineKind::kPioman, kRanks));
  std::vector<std::thread> senders;
  for (int s = 1; s < kRanks; ++s) {
    senders.emplace_back([&world, s] {
      for (int i = 0; i < kPerSender; ++i) {
        const int32_t v = s * 1000 + i;
        world.comm(s).send(0, 6, &v, sizeof(v));
      }
    });
  }
  std::vector<int> next(kRanks, 0);
  for (int i = 0; i < (kRanks - 1) * kPerSender; ++i) {
    int32_t v = -1;
    const Status st =
        world.comm(0).recv_status(Comm::kAnySource, 6, &v, sizeof(v));
    ASSERT_GE(st.source, 1);
    ASSERT_LT(st.source, kRanks);
    EXPECT_EQ(v, st.source * 1000 + next[static_cast<std::size_t>(st.source)]);
    ++next[static_cast<std::size_t>(st.source)];
  }
  for (int s = 1; s < kRanks; ++s) {
    EXPECT_EQ(next[static_cast<std::size_t>(s)], kPerSender);
  }
  for (auto& t : senders) t.join();
}

TEST(NRank, ZeroAndOneByteMessagesCrossBothBackends) {
  // Striping/eager edge sizes end to end: 0-byte and 1-byte payloads over
  // a shmem pair (0-1) and a simnet pair (0-2) of the same mixed world.
  WorldConfig cfg = nrank_config(EngineKind::kMvapichLike, 4);
  cfg.policy.node_of = {0, 0, 1, 1};
  World world(cfg);
  for (const int peer : {1, 2}) {
    std::thread echo([&world, peer] {
      char tiny = 0;
      world.comm(peer).recv(0, 50, nullptr, 0);  // zero-byte receive
      world.comm(peer).recv(0, 51, &tiny, 1);
      world.comm(peer).send(0, 52, &tiny, 1);
    });
    const char one = 'b' + static_cast<char>(peer);
    world.comm(0).send(peer, 50, nullptr, 0);
    world.comm(0).send(peer, 51, &one, 1);
    char back = 0;
    world.comm(0).recv(peer, 52, &back, 1);
    EXPECT_EQ(back, one);
    echo.join();
  }
}

TEST(NRank, MixedWildcardAndDirectedReceives) {
  // A directed recv and an any-source recv coexist: the directed one must
  // only take its own peer's message.
  World world(nrank_config(EngineKind::kMvapichLike, 3));
  std::thread r1([&world] {
    const int32_t v = 111;
    world.comm(1).send(0, 5, &v, sizeof(v));
  });
  std::thread r2([&world] {
    const int32_t v = 222;
    world.comm(2).send(0, 5, &v, sizeof(v));
  });
  int32_t directed = -1;
  world.comm(0).recv(2, 5, &directed, sizeof(directed));
  EXPECT_EQ(directed, 222);
  int32_t wild = -1;
  const Status st =
      world.comm(0).recv_status(Comm::kAnySource, 5, &wild, sizeof(wild));
  EXPECT_EQ(wild, 111);
  EXPECT_EQ(st.source, 1);
  r1.join();
  r2.join();
}

TEST(NRank, MultirailMeshTransfersCorrectly) {
  WorldConfig cfg = nrank_config(EngineKind::kPioman, 3);
  cfg.rails = 2;
  cfg.session.strategy.multirail_stripe = true;
  cfg.session.strategy.stripe_min_chunk = 16 * 1024;
  World world(cfg);
  std::vector<uint8_t> data(1 << 19);
  std::iota(data.begin(), data.end(), 0);
  std::vector<uint8_t> out(data.size(), 0);
  std::thread receiver(
      [&] { world.comm(2).recv(0, 2, out.data(), out.size()); });
  world.comm(0).send(2, 2, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(out, data);
}

TEST(NRank, RejectsBadConfigAndPeers) {
  WorldConfig cfg;
  cfg.nranks = 1;
  EXPECT_THROW(World{cfg}, std::invalid_argument);
  cfg.nranks = 0;
  EXPECT_THROW(World{cfg}, std::invalid_argument);

  World world(nrank_config(EngineKind::kMvapichLike, 3));
  EXPECT_THROW((void)world.comm(3), std::out_of_range);
  EXPECT_THROW((void)world.comm(-1), std::out_of_range);
  Request r;
  char b = 0;
  EXPECT_THROW(world.comm(0).isend(r, 0, 1, &b, 1), std::invalid_argument);
  EXPECT_THROW(world.comm(0).isend(r, 3, 1, &b, 1), std::invalid_argument);
  EXPECT_THROW(world.comm(0).irecv(r, 3, 1, &b, 1), std::invalid_argument);
  EXPECT_THROW(world.comm(2).bcast(&b, 1, 3), std::invalid_argument);
  EXPECT_THROW(world.comm(2).gather(&b, 1, nullptr, -1),
               std::invalid_argument);
  EXPECT_THROW(world.comm(2).scatter(nullptr, 1, &b, 7),
               std::invalid_argument);
  EXPECT_THROW((void)world.comm(0).gate_to(0), std::invalid_argument);
  EXPECT_EQ(world.comm(0).gate_to(2).peer_rank(), 2);
}

}  // namespace
}  // namespace piom::mpi
