// Tests for the sched::Runtime worker pool and its hooks (idle, blocking,
// timer): the integration points the paper relies on for background
// progression.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/task_manager.hpp"
#include "sched/runtime.hpp"
#include "sched/timer.hpp"
#include "sync/semaphore.hpp"
#include "util/timing.hpp"

namespace piom::sched {
namespace {

struct Env {
  topo::Machine machine;
  TaskManager tm;
  Runtime rt;

  explicit Env(topo::Machine m, RuntimeConfig cfg = {})
      : machine(std::move(m)), tm(machine), rt(machine, tm, cfg) {}
};

TEST(Runtime, RunsSubmittedJobs) {
  Env env(topo::Machine::flat(4));
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    env.rt.submit_job(i % 4, [&] { ran.fetch_add(1); });
  }
  env.rt.quiesce();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(env.rt.jobs_run(), 16u);
}

TEST(Runtime, JobsSeeTheirCpu) {
  Env env(topo::Machine::flat(4));
  std::atomic<int> seen_cpu{-1};
  env.rt.submit_job(2, [&] { seen_cpu.store(Runtime::current_cpu()); });
  env.rt.quiesce();
  EXPECT_EQ(seen_cpu.load(), 2);
  EXPECT_EQ(Runtime::current_cpu(), -1);  // the test thread is foreign
}

TEST(Runtime, IdleHookExecutesTasks) {
  // Submit a task with no job pressure: an idle worker must pick it up
  // without anyone calling schedule() explicitly.
  Env env(topo::Machine::flat(4));
  std::atomic<int> hits{0};
  Task t;
  t.init(
      [](void* arg) {
        static_cast<std::atomic<int>*>(arg)->fetch_add(1);
        return TaskResult::kDone;
      },
      &hits, topo::CpuSet::single(1), kTaskNotify);
  env.tm.submit(&t);
  t.wait_done();
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(t.last_cpu.load(), 1);
}

TEST(Runtime, RepeatPollingTaskServicedWhileIdle) {
  Env env(topo::Machine::flat(2));
  struct Poll {
    std::atomic<int> remaining{200};
  } poll;
  Task t;
  t.init(
      [](void* arg) {
        auto* p = static_cast<Poll*>(arg);
        return (p->remaining.fetch_sub(1) <= 1) ? TaskResult::kDone
                                                : TaskResult::kAgain;
      },
      &poll, topo::CpuSet::single(0), kTaskRepeat | kTaskNotify);
  env.tm.submit(&t);
  t.wait_done();
  EXPECT_LE(poll.remaining.load(), 0);
}

TEST(Runtime, FindIdleNearPrefersTopologyNeighbours) {
  Env env(topo::Machine::kwak());
  // Keep cores 0..3 (the whole first NUMA node) busy.
  std::atomic<bool> release{false};
  std::atomic<int> busy{0};
  for (int c = 1; c < 4; ++c) {
    env.rt.submit_job(c, [&] {
      busy.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (busy.load() < 3) std::this_thread::yield();
  // From core 0, the nearest idle core is outside its cache group but the
  // search must return *some* idle core; from core 5, core 4/6/7 (same
  // cache) must win over more distant ones.
  const int near5 = env.rt.find_idle_near(5);
  EXPECT_TRUE(near5 == 4 || near5 == 6 || near5 == 7) << near5;
  const int near0 = env.rt.find_idle_near(0);
  EXPECT_GE(near0, 4);  // cores 1-3 busy -> someone from another node
  release.store(true);
  env.rt.quiesce();
}

TEST(Runtime, FindIdleNearReturnsMinusOneWhenSaturated) {
  Env env(topo::Machine::flat(2));
  std::atomic<bool> release{false};
  std::atomic<int> busy{0};
  for (int c = 0; c < 2; ++c) {
    env.rt.submit_job(c, [&] {
      busy.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (busy.load() < 2) std::this_thread::yield();
  EXPECT_EQ(env.rt.find_idle_near(0), -1);
  release.store(true);
  env.rt.quiesce();
}

TEST(Runtime, BlockingSectionSchedulesBeforeParking) {
  Env env(topo::Machine::flat(2));
  std::atomic<int> hits{0};
  Task t;
  t.init(
      [](void* arg) {
        static_cast<std::atomic<int>*>(arg)->fetch_add(1);
        return TaskResult::kDone;
      },
      &hits, topo::CpuSet::single(0), kTaskNone);
  // Submit from a foreign thread, then enter a blocking section: the hook
  // must give the task manager a pass (foreign threads hash to some core;
  // retry from both cores via schedule_here until the task runs).
  env.tm.submit(&t);
  {
    BlockingSection bs(env.rt);  // one progression pass happens here
  }
  // The idle workers will run it anyway; the point is it completes promptly.
  const int64_t deadline = util::now_ns() + 1'000'000'000;
  while (!t.completed() && util::now_ns() < deadline) std::this_thread::yield();
  EXPECT_TRUE(t.completed());
}

TEST(Runtime, TimerHookGuaranteesProgressWhenAllCoresBusy) {
  // The paper's deadlock scenario: every core runs a CPU-hungry job that
  // never blocks; without the timer hook the polling task would starve.
  topo::Machine machine = topo::Machine::flat(2);
  TaskManager tm(machine);
  RuntimeConfig cfg;
  Runtime rt(machine, tm, cfg);
  TimerHook timer(tm, std::chrono::microseconds(200));

  std::atomic<bool> task_ran{false};
  std::atomic<bool> stop_jobs{false};
  // Occupy both workers with spinning jobs.
  for (int c = 0; c < 2; ++c) {
    rt.submit_job(c, [&] {
      while (!stop_jobs.load(std::memory_order_acquire)) {
        // busy: never yields to the idle hook
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Task t;
  t.init(
      [](void* arg) {
        static_cast<std::atomic<bool>*>(arg)->store(true);
        return TaskResult::kDone;
      },
      &task_ran, topo::CpuSet::single(0), kTaskNone);
  tm.submit(&t);
  const int64_t deadline = util::now_ns() + 2'000'000'000;
  while (!t.completed() && util::now_ns() < deadline) std::this_thread::yield();
  stop_jobs.store(true);
  rt.quiesce();
  EXPECT_TRUE(task_ran.load()) << "timer hook failed to rescue the task";
  EXPECT_GT(timer.ticks(), 0u);
  EXPECT_GE(timer.tasks_run(), 1u);
}

TEST(Runtime, StressJobsAndTasksTogether) {
  Env env(topo::Machine::kwak());
  constexpr int kJobs = 200;
  constexpr int kTasks = 500;
  std::atomic<int> jobs_done{0};
  std::atomic<int> tasks_done{0};
  std::deque<Task> tasks(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks[static_cast<std::size_t>(i)].init(
        [](void* arg) {
          static_cast<std::atomic<int>*>(arg)->fetch_add(1);
          return TaskResult::kDone;
        },
        &tasks_done, topo::CpuSet::single(i % 16), kTaskNone);
  }
  std::thread submitter([&] {
    for (auto& t : tasks) env.tm.submit(&t);
  });
  for (int i = 0; i < kJobs; ++i) {
    env.rt.submit_job(i % 16, [&] {
      util::burn_cpu_us(50);
      jobs_done.fetch_add(1);
    });
  }
  submitter.join();
  env.rt.quiesce();
  const int64_t deadline = util::now_ns() + 5'000'000'000;
  while (tasks_done.load() < kTasks && util::now_ns() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(jobs_done.load(), kJobs);
  EXPECT_EQ(tasks_done.load(), kTasks);
  // Task lifetime contract: storage must stay alive until completed() —
  // the counter bump happens *inside* the task fn, before the scheduler's
  // final state store, so wait for each task before the deque dies.
  for (auto& t : tasks) {
    while (!t.completed() && util::now_ns() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(t.completed());
  }
}

TEST(Runtime, StopIsIdempotentAndDtorSafe) {
  Env env(topo::Machine::flat(2));
  env.rt.stop();
  env.rt.stop();
  SUCCEED();
}

}  // namespace
}  // namespace piom::sched
