// Tests for the nmad communication library: eager and rendezvous protocols,
// tag matching (expected/unexpected), aggregation, multirail striping,
// packet-wrapper recycling.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <numeric>
#include <random>
#include <vector>

#include "nmad/session.hpp"
#include "transport/cluster.hpp"
#include "util/timing.hpp"

namespace piom::nmad {
namespace {

/// Drive both sessions' progress until `pred` or timeout. Returns pred().
template <typename Pred>
bool progress_until(Session& sa, Session& sb, Pred&& pred,
                    int64_t timeout_ns = 5'000'000'000) {
  const int64_t deadline = util::now_ns() + timeout_ns;
  while (util::now_ns() < deadline) {
    sa.progress();
    sb.progress();
    if (pred()) return true;
  }
  return pred();
}

struct NmadPair {
  transport::Cluster cluster;
  Session sa;
  Session sb;
  Gate* ga = nullptr;
  Gate* gb = nullptr;

  explicit NmadPair(SessionConfig cfg = {}, int rails = 1,
                    double time_scale = 0.05)
      : cluster(transport::ClusterConfig{time_scale}),
        sa("A", cfg),
        sb("B", cfg) {
    std::vector<transport::IChannel*> rails_a, rails_b;
    for (int r = 0; r < rails; ++r) {
      auto [na, nb] = cluster.create_sim_link("rail" + std::to_string(r), {});
      rails_a.push_back(na);
      rails_b.push_back(nb);
    }
    ga = &sa.create_gate(rails_a);
    gb = &sb.create_gate(rails_b);
  }
};

TEST(NmadEager, BasicSendRecv) {
  NmadPair p;
  const std::string msg = "bonjour newmadeleine";
  SendRequest sreq;
  RecvRequest rreq;
  char buf[64] = {};
  p.gb->irecv(rreq, /*tag=*/3, buf, sizeof(buf));
  p.ga->isend(sreq, 3, msg.data(), msg.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(rreq.received, msg.size());
  EXPECT_EQ(std::memcmp(buf, msg.data(), msg.size()), 0);
  EXPECT_EQ(p.ga->stats().eager_sent, 1u);
  EXPECT_EQ(p.gb->stats().eager_recv, 1u);
}

TEST(NmadEager, UnexpectedMessageMatchesLateRecv) {
  NmadPair p;
  const std::string msg = "early";
  SendRequest sreq;
  p.ga->isend(sreq, 5, msg.data(), msg.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 1;
  }));
  char buf[16] = {};
  RecvRequest rreq;
  p.gb->irecv(rreq, 5, buf, sizeof(buf));  // matches the stored arrival
  EXPECT_TRUE(rreq.completed());
  EXPECT_EQ(rreq.received, msg.size());
  EXPECT_EQ(std::memcmp(buf, "early", 5), 0);
}

TEST(NmadEager, TagsAreMatchedIndependently) {
  NmadPair p;
  char buf7[8] = {}, buf9[8] = {};
  RecvRequest r7, r9;
  p.gb->irecv(r7, 7, buf7, sizeof(buf7));
  p.gb->irecv(r9, 9, buf9, sizeof(buf9));
  SendRequest s9, s7;
  p.ga->isend(s9, 9, "nine", 5);  // send tag 9 first
  p.ga->isend(s7, 7, "seven", 6);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return r7.completed() && r9.completed();
  }));
  EXPECT_STREQ(buf7, "seven");
  EXPECT_STREQ(buf9, "nine");
}

TEST(NmadEager, SameTagMatchesInSeqOrder) {
  NmadPair p;
  // Two unexpected messages, same tag: the late irecvs must drain them in
  // send order (lowest sequence first).
  SendRequest s1, s2;
  p.ga->isend(s1, 4, "first", 6);
  p.ga->isend(s2, 4, "second", 7);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 2;
  }));
  char b1[8] = {}, b2[8] = {};
  RecvRequest r1, r2;
  p.gb->irecv(r1, 4, b1, sizeof(b1));
  p.gb->irecv(r2, 4, b2, sizeof(b2));
  EXPECT_TRUE(r1.completed());
  EXPECT_TRUE(r2.completed());
  EXPECT_STREQ(b1, "first");
  EXPECT_STREQ(b2, "second");
  EXPECT_LT(r1.matched_seq, r2.matched_seq);
}

TEST(NmadEager, ZeroLengthMessage) {
  NmadPair p;
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 1, nullptr, 0);
  p.ga->isend(sreq, 1, nullptr, 0);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return rreq.completed(); }));
  EXPECT_EQ(rreq.received, 0u);
}

TEST(NmadRdv, LargeMessageUsesRendezvous) {
  NmadPair p;
  std::vector<uint8_t> data(512 * 1024);
  std::iota(data.begin(), data.end(), 1);
  std::vector<uint8_t> out(data.size(), 0);
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 11, out.data(), out.size());
  p.ga->isend(sreq, 11, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
  EXPECT_EQ(p.ga->stats().rdv_sent, 1u);
  EXPECT_EQ(p.gb->stats().rdv_recv, 1u);
  EXPECT_EQ(p.ga->stats().eager_sent, 0u);
  // The data itself moved by RDMA-Read, served by the sender-side NIC.
  EXPECT_GE(p.ga->rail_channel(0).stats().rdma_reads_served, 1u);
}

TEST(NmadRdv, UnexpectedRtsMatchesLateRecv) {
  NmadPair p;
  std::vector<uint8_t> data(128 * 1024, 0x5A);
  SendRequest sreq;
  p.ga->isend(sreq, 2, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_rts == 1;
  }));
  EXPECT_FALSE(sreq.completed());  // no receiver yet: FIN cannot exist
  std::vector<uint8_t> out(data.size(), 0);
  RecvRequest rreq;
  p.gb->irecv(rreq, 2, out.data(), out.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
}

TEST(NmadRdv, EagerAndRdvSameTagRespectSeqOrder) {
  NmadPair p;
  std::vector<uint8_t> big(64 * 1024, 0xCC);
  SendRequest s_small, s_big;
  p.ga->isend(s_small, 6, "tiny", 5);      // seq N   (eager)
  p.ga->isend(s_big, 6, big.data(), big.size());  // seq N+1 (rdv)
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 1 &&
           p.gb->stats().unexpected_rts == 1;
  }));
  // First irecv must take the *eager* one (lower seq), not the rdv.
  char small_buf[8] = {};
  RecvRequest r1;
  p.gb->irecv(r1, 6, small_buf, sizeof(small_buf));
  EXPECT_TRUE(r1.completed());
  EXPECT_STREQ(small_buf, "tiny");
  std::vector<uint8_t> big_out(big.size(), 0);
  RecvRequest r2;
  p.gb->irecv(r2, 6, big_out.data(), big_out.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r2.completed(); }));
  EXPECT_EQ(big_out, big);
}

TEST(NmadAggreg, PendingSmallSendsArePacked) {
  SessionConfig cfg;
  cfg.strategy.aggregation = true;
  NmadPair p(cfg);
  constexpr int kMsgs = 8;
  std::vector<std::string> payloads;
  std::deque<SendRequest> sreqs(kMsgs);
  std::deque<RecvRequest> rreqs(kMsgs);
  std::vector<std::array<char, 32>> bufs(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    payloads.push_back("payload-" + std::to_string(i));
    p.gb->irecv(rreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                bufs[static_cast<std::size_t>(i)].data(), 32);
  }
  // Defer: all sends join the pending queue, then one flush packs them.
  for (int i = 0; i < kMsgs; ++i) {
    p.ga->isend(sreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                payloads[static_cast<std::size_t>(i)].data(),
                payloads[static_cast<std::size_t>(i)].size() + 1,
                /*defer=*/true);
  }
  EXPECT_EQ(p.ga->pending_sends(), static_cast<std::size_t>(kMsgs));
  p.ga->flush();
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    for (const auto& r : rreqs) {
      if (!r.completed()) return false;
    }
    return true;
  }));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_STREQ(bufs[static_cast<std::size_t>(i)].data(),
                 payloads[static_cast<std::size_t>(i)].c_str());
  }
  const GateStats gs = p.ga->stats();
  EXPECT_GE(gs.packs_sent, 1u);
  EXPECT_EQ(gs.msgs_packed, static_cast<uint64_t>(kMsgs));
  // Fig 1's point: fewer wire packets than messages.
  EXPECT_LT(p.ga->rail_channel(0).stats().packets_tx,
            static_cast<uint64_t>(kMsgs));
}

TEST(NmadAggreg, NoAggregationSendsOnePacketPerMessage) {
  SessionConfig cfg;
  cfg.strategy.aggregation = false;  // pinned: holds under $PIOM_AGGREGATION=1
  NmadPair p(cfg);
  constexpr int kMsgs = 6;
  std::deque<SendRequest> sreqs(kMsgs);
  std::deque<RecvRequest> rreqs(kMsgs);
  std::vector<std::array<char, 16>> bufs(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    p.gb->irecv(rreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                bufs[static_cast<std::size_t>(i)].data(), 16);
    p.ga->isend(sreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i), "x",
                2, /*defer=*/true);
  }
  p.ga->flush();
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    for (const auto& r : rreqs) {
      if (!r.completed()) return false;
    }
    return true;
  }));
  EXPECT_EQ(p.ga->stats().packs_sent, 0u);
  EXPECT_EQ(p.ga->rail_channel(0).stats().packets_tx,
            static_cast<uint64_t>(kMsgs));
}

TEST(NmadMultirail, RdvStripesAcrossRails) {
  SessionConfig cfg;
  cfg.strategy.multirail_stripe = true;
  cfg.strategy.stripe_min_chunk = 16 * 1024;
  NmadPair p(cfg, /*rails=*/2);
  std::vector<uint8_t> data(1 << 20);
  std::mt19937 rng(99);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  std::vector<uint8_t> out(data.size(), 0);
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 8, out.data(), out.size());
  p.ga->isend(sreq, 8, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
  // Both sender-side rail NICs served RDMA reads: the stripe really split.
  EXPECT_GE(p.ga->rail_channel(0).stats().rdma_reads_served, 1u);
  EXPECT_GE(p.ga->rail_channel(1).stats().rdma_reads_served, 1u);
}

TEST(NmadPool, PacketWrappersAreRecycled) {
  NmadPair p;
  char buf[32] = {};
  for (int i = 0; i < 50; ++i) {
    SendRequest sreq;
    RecvRequest rreq;
    p.gb->irecv(rreq, 1, buf, sizeof(buf));
    p.ga->isend(sreq, 1, "ping", 5);
    ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
      return sreq.completed() && rreq.completed();
    }));
  }
  // Steady-state: wrapper allocations must be far below the message count.
  EXPECT_LE(p.ga->pw_allocated(), 8u);
}

TEST(NmadStress, ManyMessagesBothDirectionsManyTags) {
  NmadPair p;
  constexpr int kMsgs = 200;
  std::deque<SendRequest> sa(kMsgs), sb(kMsgs);
  std::deque<RecvRequest> ra(kMsgs), rb(kMsgs);
  std::vector<std::array<char, 16>> bufs_a(kMsgs), bufs_b(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    const Tag tag = static_cast<Tag>(i % 17);
    p.gb->irecv(rb[static_cast<std::size_t>(i)], tag,
                bufs_b[static_cast<std::size_t>(i)].data(), 16);
    p.ga->irecv(ra[static_cast<std::size_t>(i)], tag,
                bufs_a[static_cast<std::size_t>(i)].data(), 16);
  }
  for (int i = 0; i < kMsgs; ++i) {
    const Tag tag = static_cast<Tag>(i % 17);
    p.ga->isend(sa[static_cast<std::size_t>(i)], tag, "fromA", 6);
    p.gb->isend(sb[static_cast<std::size_t>(i)], tag, "fromB", 6);
  }
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    for (int i = 0; i < kMsgs; ++i) {
      if (!ra[static_cast<std::size_t>(i)].completed() ||
          !rb[static_cast<std::size_t>(i)].completed()) {
        return false;
      }
    }
    return true;
  }));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_STREQ(bufs_a[static_cast<std::size_t>(i)].data(), "fromB");
    EXPECT_STREQ(bufs_b[static_cast<std::size_t>(i)].data(), "fromA");
  }
}

TEST(NmadConfig, RejectsOversizedThresholds) {
  SessionConfig cfg;
  cfg.eager_threshold = kPoolBufSize;  // + header would overflow the buffer
  EXPECT_THROW(Session("bad", cfg), std::invalid_argument);
  SessionConfig cfg2;
  cfg2.pool_bufs_per_rail = 0;
  EXPECT_THROW(Session("bad2", cfg2), std::invalid_argument);
}

TEST(NmadConfig, GateRequiresConnectedRails) {
  transport::Cluster cluster(transport::ClusterConfig{0.05});
  simnet::Nic& lonely = cluster.fabric().create_nic("lonely");
  Session s("s");
  EXPECT_THROW(s.create_gate({}), std::invalid_argument);
  EXPECT_THROW(s.create_gate({&lonely}), std::invalid_argument);
}


TEST(NmadWildcard, AnyTagMatchesExpected) {
  NmadPair p;
  char buf[16] = {};
  RecvRequest rreq;
  p.gb->irecv(rreq, kAnyTag, buf, sizeof(buf));
  SendRequest sreq;
  p.ga->isend(sreq, /*tag=*/1234, "wild", 5);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return rreq.completed(); }));
  EXPECT_STREQ(buf, "wild");
  EXPECT_EQ(rreq.matched_tag, 1234u);
}

TEST(NmadWildcard, AnyTagDrainsUnexpectedInSeqOrder) {
  NmadPair p;
  SendRequest s1, s2, s3;
  p.ga->isend(s1, 5, "one", 4);
  p.ga->isend(s2, 99, "two", 4);
  p.ga->isend(s3, 5, "tri", 4);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 3;
  }));
  char b1[8] = {}, b2[8] = {}, b3[8] = {};
  RecvRequest r1, r2, r3;
  p.gb->irecv(r1, kAnyTag, b1, sizeof(b1));
  p.gb->irecv(r2, kAnyTag, b2, sizeof(b2));
  p.gb->irecv(r3, kAnyTag, b3, sizeof(b3));
  EXPECT_TRUE(r1.completed());
  EXPECT_TRUE(r2.completed());
  EXPECT_TRUE(r3.completed());
  // Wildcards drain in arrival (sequence) order across tags.
  EXPECT_STREQ(b1, "one");
  EXPECT_STREQ(b2, "two");
  EXPECT_STREQ(b3, "tri");
  EXPECT_EQ(r1.matched_tag, 5u);
  EXPECT_EQ(r2.matched_tag, 99u);
  EXPECT_EQ(r3.matched_tag, 5u);
}

TEST(NmadWildcard, AnyTagMatchesRendezvousToo) {
  NmadPair p;
  std::vector<uint8_t> data(64 * 1024, 0x3A);
  std::vector<uint8_t> out(data.size(), 0);
  RecvRequest rreq;
  p.gb->irecv(rreq, kAnyTag, out.data(), out.size());
  SendRequest sreq;
  p.ga->isend(sreq, 77, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
  EXPECT_EQ(rreq.matched_tag, 77u);
}

TEST(NmadWildcard, ExactTagRecvStillMatchesFirstEligible) {
  NmadPair p;
  // Post an exact-tag recv and a wildcard; an arrival with that tag goes to
  // whichever was posted first (FIFO over eligible recvs).
  char exact_buf[8] = {}, any_buf[8] = {};
  RecvRequest exact, any;
  p.gb->irecv(exact, 4, exact_buf, sizeof(exact_buf));
  p.gb->irecv(any, kAnyTag, any_buf, sizeof(any_buf));
  SendRequest s;
  p.ga->isend(s, 4, "hit", 4);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return exact.completed(); }));
  EXPECT_STREQ(exact_buf, "hit");
  EXPECT_FALSE(any.completed());
  // Satisfy the wildcard so teardown sees no pending recv.
  SendRequest s2;
  p.ga->isend(s2, 123, "bye", 4);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return any.completed(); }));
  EXPECT_STREQ(any_buf, "bye");
}

/// Parameterized sweep across the eager/rendezvous boundary: the protocol
/// must be transparent to the payload size.
class NmadSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NmadSizeSweep, RoundTripsIntact) {
  const std::size_t size = GetParam();
  NmadPair p;
  std::vector<uint8_t> data(size);
  std::mt19937 rng(static_cast<unsigned>(size) + 1);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  std::vector<uint8_t> out(size, 0);
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 1, out.data(), out.size());
  p.ga->isend(sreq, 1, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(rreq.received, size);
  EXPECT_EQ(out, data);
  // Protocol selection: at most the threshold goes eager.
  const GateStats gs = p.ga->stats();
  if (size <= kDefaultEagerThreshold) {
    EXPECT_EQ(gs.eager_sent, 1u);
    EXPECT_EQ(gs.rdv_sent, 0u);
  } else {
    EXPECT_EQ(gs.eager_sent, 0u);
    EXPECT_EQ(gs.rdv_sent, 1u);
  }
}

// ---- rendezvous refusal (revoke_tags / kNack) ------------------------------
//
// The failure-drain protocol behind the collectives: a receiver that will
// never post a matching receive revokes the tag window, which NACKs the
// peer's RTS — staged or still in flight — so the sender error-completes
// instead of parking in rdv_waiting_fin_ forever. Both arrival orders are
// pinned deterministically here (the mpi-level fault tests only reach them
// through racy kill timing).

TEST(NmadRevoke, StagedRtsIsNackedOnRevoke) {
  NmadPair p;
  std::vector<uint8_t> big(64 * 1024, 0xab);  // > eager threshold: rdv path
  SendRequest sreq;
  p.ga->isend(sreq, /*tag=*/21, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_rts == 1;
  }));
  EXPECT_FALSE(sreq.completed());  // parked, waiting for a FIN
  p.gb->revoke_tags(/*mask=*/0xffffffffu, /*value=*/21);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return sreq.completed(); }));
  EXPECT_TRUE(sreq.core.has_failed());
  EXPECT_EQ(p.gb->stats().rts_nacked, 1u);
  EXPECT_EQ(p.ga->stats().sends_nacked, 1u);
}

TEST(NmadRevoke, LateRtsIsNackedOnArrival) {
  // Reliable session: the NACK is sequenced, acked and dedup-tracked like
  // any data packet — this covers that plumbing too.
  SessionConfig cfg;
  cfg.reliable = true;
  NmadPair p(cfg);
  p.gb->revoke_tags(/*mask=*/0xffffffffu, /*value=*/22);
  std::vector<uint8_t> big(64 * 1024, 0xcd);
  SendRequest sreq;
  p.ga->isend(sreq, /*tag=*/22, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return sreq.completed(); }));
  EXPECT_TRUE(sreq.core.has_failed());
  EXPECT_EQ(p.gb->stats().rts_nacked, 1u);
  EXPECT_EQ(p.ga->stats().sends_nacked, 1u);

  // The revocation is a window, not a blanket: other tags still rendezvous
  // normally on the same gate pair.
  SendRequest ok;
  RecvRequest rok;
  std::vector<uint8_t> out(big.size(), 0);
  p.gb->irecv(rok, /*tag=*/23, out.data(), out.size());
  p.ga->isend(ok, /*tag=*/23, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return ok.completed() && rok.completed();
  }));
  EXPECT_FALSE(ok.core.has_failed());
  EXPECT_EQ(out, big);
}

TEST(NmadRevoke, MaskedWindowCoversManyTags) {
  // The collectives revoke a whole epoch at once: every tag with the same
  // high bits falls, other windows stay live.
  NmadPair p;
  p.gb->revoke_tags(/*mask=*/0xffffff00u, /*value=*/0x4200u);
  std::vector<uint8_t> big(64 * 1024, 0x11);
  SendRequest in_window, outside;
  p.ga->isend(in_window, /*tag=*/0x42aa, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return in_window.completed();
  }));
  EXPECT_TRUE(in_window.core.has_failed());
  RecvRequest rok;
  std::vector<uint8_t> out(big.size(), 0);
  p.gb->irecv(rok, /*tag=*/0x43aa, out.data(), out.size());
  p.ga->isend(outside, /*tag=*/0x43aa, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return outside.completed() && rok.completed();
  }));
  EXPECT_FALSE(outside.core.has_failed());
  EXPECT_EQ(out, big);
}

// ---------------------------------------------------- matcher equivalence
//
// The bucket matcher must be observationally identical to the linear scan
// matcher it replaced: run the same randomized post/arrival interleaving
// against both layouts and require identical outcomes per receive.

struct TrialPlan {
  struct Msg {
    Tag tag = 0;
    std::size_t len = 0;  ///< > eager_threshold => rendezvous
  };
  std::vector<Msg> msgs;
  std::vector<Tag> recv_tags;  ///< kAnyTag entries are directed wildcards
  std::size_t pre_post = 0;    ///< receives posted before any send
};

TrialPlan make_trial_plan(uint32_t seed) {
  std::mt19937 rng(seed);
  TrialPlan plan;
  const std::size_t n = 24 + rng() % 16;
  const std::array<Tag, 7> tags = {1, 2, 3, 5, 69, 0x42aa,
                                   kReservedTagBase | 0x45u};
  for (std::size_t i = 0; i < n; ++i) {
    TrialPlan::Msg m;
    m.tag = tags[rng() % tags.size()];
    // Mostly small eager messages; ~20% rendezvous (above the trial's
    // 256-byte threshold) so RTS and eager compete inside one tag.
    m.len = (rng() % 5 == 0) ? 300 + rng() % 200 : 8 + rng() % 56;
    plan.msgs.push_back(m);
  }
  for (std::size_t i = 0; i < n; ++i) {
    // 70% exact receive for the i-th message's tag, 30% wildcard. The
    // multisets need not fully drain (a wildcard can strand an exact
    // receive, and wildcards never cover the reserved tag) — equivalence
    // compares outcomes, not drainage.
    plan.recv_tags.push_back(rng() % 10 < 7 ? plan.msgs[i].tag : kAnyTag);
  }
  std::shuffle(plan.recv_tags.begin(), plan.recv_tags.end(), rng);
  plan.pre_post = rng() % (n + 1);
  return plan;
}

struct RecvOutcome {
  bool completed = false;
  Tag matched_tag = 0;
  uint64_t matched_seq = 0;
  std::size_t received = 0;
  std::vector<uint8_t> payload;

  bool operator==(const RecvOutcome&) const = default;
};

std::vector<RecvOutcome> run_trial(const TrialPlan& plan, MatcherKind kind,
                                   int buckets) {
  SessionConfig cfg;
  cfg.matcher = kind;
  cfg.matcher_buckets = buckets;
  cfg.eager_threshold = 256;
  NmadPair p(cfg);
  const std::size_t n = plan.msgs.size();
  std::deque<SendRequest> sreqs(n);
  std::deque<RecvRequest> rreqs(plan.recv_tags.size());
  std::vector<std::vector<uint8_t>> sbufs(n);
  std::vector<std::vector<uint8_t>> rbufs(plan.recv_tags.size());
  std::size_t n_eager = 0;
  std::size_t n_rdv = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sbufs[i].resize(plan.msgs[i].len);
    for (std::size_t j = 0; j < sbufs[i].size(); ++j) {
      sbufs[i][j] = static_cast<uint8_t>(i * 7 + j);
    }
    (plan.msgs[i].len > cfg.eager_threshold ? n_rdv : n_eager)++;
  }
  for (auto& b : rbufs) b.resize(600);

  // Phase 1: pre-post a prefix of the receives (expected-path matching).
  for (std::size_t i = 0; i < plan.pre_post; ++i) {
    p.gb->irecv(rreqs[i], plan.recv_tags[i], rbufs[i].data(), rbufs[i].size());
  }
  // Phase 2: all sends, in order, on one rail — arrival order is the send
  // order. Wait until the receiver has processed every arrival (matched or
  // staged) so phase 3 sees a deterministic unexpected set.
  for (std::size_t i = 0; i < n; ++i) {
    p.ga->isend(sreqs[i], plan.msgs[i].tag, sbufs[i].data(), sbufs[i].size());
  }
  EXPECT_TRUE(progress_until(p.sa, p.sb, [&] {
    const GateStats s = p.gb->stats();
    return s.eager_recv >= n_eager && s.rdv_recv + s.unexpected_rts >= n_rdv;
  }));
  // Phase 3: the remaining receives hit the unexpected path.
  for (std::size_t i = plan.pre_post; i < plan.recv_tags.size(); ++i) {
    p.gb->irecv(rreqs[i], plan.recv_tags[i], rbufs[i].data(), rbufs[i].size());
  }
  // Phase 4: settle — progress until the completion count stops moving
  // (mismatched leftovers are legitimate and must match across layouts).
  const auto count_done = [&] {
    std::size_t done = 0;
    for (const RecvRequest& r : rreqs) done += r.completed() ? 1u : 0u;
    return done;
  };
  std::size_t last = count_done();
  for (int stable = 0; stable < 2;) {
    if (progress_until(
            p.sa, p.sb, [&] { return count_done() != last; },
            /*timeout_ns=*/60'000'000)) {
      last = count_done();
      stable = 0;
    } else {
      ++stable;
    }
  }

  std::vector<RecvOutcome> out(rreqs.size());
  for (std::size_t i = 0; i < rreqs.size(); ++i) {
    out[i].completed = rreqs[i].completed();
    if (!out[i].completed) continue;
    out[i].matched_tag = rreqs[i].matched_tag;
    out[i].matched_seq = rreqs[i].matched_seq;
    out[i].received = rreqs[i].received;
    out[i].payload.assign(rbufs[i].begin(),
                          rbufs[i].begin() + static_cast<std::ptrdiff_t>(
                                                 rreqs[i].received));
  }
  return out;
}

TEST(NmadMatcherEquiv, BucketMatchesScanOnRandomInterleavings) {
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    const TrialPlan plan = make_trial_plan(seed);
    const auto reference = run_trial(plan, MatcherKind::kScan, 64);
    // Bucket counts 1 (every tag collides) and 64 (the default) must both
    // reproduce the scan matcher bit-for-bit.
    for (const int buckets : {1, 64}) {
      const auto got = run_trial(plan, MatcherKind::kBucket, buckets);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], reference[i])
            << "seed=" << seed << " buckets=" << buckets << " recv#" << i
            << " tag=" << plan.recv_tags[i];
      }
    }
  }
}

// ------------------------------------------------- directed matcher cases

TEST(NmadMatcher, BucketCollisionKeepsTagsIndependent) {
  // One bucket: every tag shares a chain; exact matching must still filter
  // by tag, not take the chain head.
  SessionConfig cfg;
  cfg.matcher = MatcherKind::kBucket;
  cfg.matcher_buckets = 1;
  NmadPair p(cfg);
  SendRequest s5, s69;
  const char m5[] = "tag-five";
  const char m69[] = "tag-sixty-nine";
  p.ga->isend(s5, 5, m5, sizeof(m5));
  p.ga->isend(s69, 69, m69, sizeof(m69));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager >= 2;
  }));
  char buf[64] = {};
  RecvRequest r69;
  p.gb->irecv(r69, 69, buf, sizeof(buf));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r69.completed(); }));
  EXPECT_STREQ(buf, m69);
  RecvRequest r5;
  p.gb->irecv(r5, 5, buf, sizeof(buf));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r5.completed(); }));
  EXPECT_STREQ(buf, m5);
}

TEST(NmadMatcher, WildcardSkipsReservedEvenInSharedBucket) {
  // A posted kAnyTag receive must not claim reserved-space traffic even
  // when the reserved tag hashes into the same (only) bucket, and the
  // epoch-style tag stays matchable by an exact receive afterwards.
  SessionConfig cfg;
  cfg.matcher = MatcherKind::kBucket;
  cfg.matcher_buckets = 1;
  NmadPair p(cfg);
  const Tag epoch_tag = kReservedTagBase | 0x1040u;
  char wbuf[64] = {};
  RecvRequest wild;
  p.gb->irecv(wild, kAnyTag, wbuf, sizeof(wbuf));
  SendRequest sres, sapp;
  const char reserved_msg[] = "collective-round";
  const char app_msg[] = "application";
  p.ga->isend(sres, epoch_tag, reserved_msg, sizeof(reserved_msg));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager >= 1;  // staged, wildcard skipped
  }));
  EXPECT_FALSE(wild.completed());
  p.ga->isend(sapp, 7, app_msg, sizeof(app_msg));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return wild.completed(); }));
  EXPECT_EQ(wild.matched_tag, 7u);
  EXPECT_STREQ(wbuf, app_msg);
  char rbuf[64] = {};
  RecvRequest rres;
  p.gb->irecv(rres, epoch_tag, rbuf, sizeof(rbuf));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return rres.completed(); }));
  EXPECT_STREQ(rbuf, reserved_msg);
}

TEST(NmadMatcher, EpochTagsDifferingAboveBucketBitsStayDistinct) {
  // Two collective epochs whose tags agree in the low (bucket-index) bits
  // must match their own receives — the chain filter compares full tags.
  SessionConfig cfg;
  cfg.matcher = MatcherKind::kBucket;
  cfg.matcher_buckets = 64;
  NmadPair p(cfg);
  const Tag epoch1 = kReservedTagBase | 0x1040u;
  const Tag epoch2 = kReservedTagBase | 0x2040u;  // same tag & 63
  SendRequest s1, s2;
  const char m1[] = "epoch-one";
  const char m2[] = "epoch-two";
  p.ga->isend(s1, epoch1, m1, sizeof(m1));
  p.ga->isend(s2, epoch2, m2, sizeof(m2));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager >= 2;
  }));
  char b2[64] = {};
  RecvRequest r2;
  p.gb->irecv(r2, epoch2, b2, sizeof(b2));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r2.completed(); }));
  EXPECT_STREQ(b2, m2);
  char b1[64] = {};
  RecvRequest r1;
  p.gb->irecv(r1, epoch1, b1, sizeof(b1));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r1.completed(); }));
  EXPECT_STREQ(b1, m1);
}

TEST(NmadMatcher, RevokedWindowInsideSharedBucket) {
  // Revoking a tag window must NACK exactly the in-window staged RTS even
  // when an out-of-window RTS shares the bucket chain.
  SessionConfig cfg;
  cfg.matcher = MatcherKind::kBucket;
  cfg.matcher_buckets = 1;
  NmadPair p(cfg);
  std::vector<uint8_t> big(64 * 1024, 0x5a);
  SendRequest in_window, outside;
  p.ga->isend(in_window, /*tag=*/0x42aa, big.data(), big.size());
  p.ga->isend(outside, /*tag=*/0x43aa, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_rts >= 2;
  }));
  p.gb->revoke_tags(/*mask=*/0xffffff00u, /*value=*/0x4200u);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return in_window.completed();
  }));
  EXPECT_TRUE(in_window.core.has_failed());
  EXPECT_FALSE(outside.completed());
  std::vector<uint8_t> out(big.size(), 0);
  RecvRequest rok;
  p.gb->irecv(rok, /*tag=*/0x43aa, out.data(), out.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return outside.completed() && rok.completed();
  }));
  EXPECT_FALSE(outside.core.has_failed());
  EXPECT_EQ(out, big);
}

// ------------------------------------------------- matcher observability

TEST(NmadMatcherStats, CountersTrackBucketAndWildcardPaths) {
  SessionConfig cfg;
  cfg.matcher = MatcherKind::kBucket;
  NmadPair p(cfg);
  SendRequest s1, s2;
  const char msg[] = "count me";
  p.ga->isend(s1, 7, msg, sizeof(msg));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager >= 1;
  }));
  char buf[32] = {};
  RecvRequest r1;
  p.gb->irecv(r1, 7, buf, sizeof(buf));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r1.completed(); }));
  GateStats gs = p.gb->stats();
  EXPECT_GE(gs.match_bucket_hits, 1u);     // unexpected claim via the bucket
  EXPECT_EQ(gs.match_wildcard_scans, 0u);  // no wildcard posted yet
  EXPECT_GE(gs.unexpected_depth_hw, 1u);

  p.ga->isend(s2, 9, msg, sizeof(msg));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager >= 2;
  }));
  RecvRequest r2;
  p.gb->irecv(r2, kAnyTag, buf, sizeof(buf));
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r2.completed(); }));
  gs = p.gb->stats();
  EXPECT_GE(gs.match_wildcard_scans, 1u);
  // The second staged entry reused the first one's recycled node.
  EXPECT_GE(gs.match_pool_hits, 1u);
}

TEST(NmadPool, RecvBuffersGrowLazilyUnderBurst) {
  SessionConfig cfg;
  cfg.pool_bufs_initial = 2;
  cfg.pool_bufs_per_rail = 8;
  // One wire packet per message, pinned: under $PIOM_AGGREGATION the burst
  // would pack into a single packet and never outrun the posted buffers.
  cfg.strategy.aggregation = false;
  NmadPair p(cfg);
  EXPECT_EQ(p.gb->stats().recv_bufs_posted_hw, 2u);
  constexpr int kMsgs = 12;
  std::deque<SendRequest> sreqs(kMsgs);
  char payload[32] = "burst";
  // Burst all sends while the receiver stays silent: the arrivals pile up
  // (staged driver-side once the 2 posted buffers are consumed), so the
  // receiver's first sweep drains more than its posted count and grows.
  for (int i = 0; i < kMsgs; ++i) {
    p.ga->isend(sreqs[static_cast<std::size_t>(i)], 3, payload,
                sizeof(payload), /*defer=*/true);
  }
  p.ga->flush();
  const int64_t deadline = util::now_ns() + 5'000'000'000;
  while (util::now_ns() < deadline) {
    p.sa.progress();  // sender only: eager sends complete on TX
    bool all = true;
    for (const SendRequest& s : sreqs) all = all && s.completed();
    if (all) break;
  }
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager >= kMsgs;
  }));
  const GateStats gs = p.gb->stats();
  EXPECT_GE(gs.recv_pool_growths, 1u);
  EXPECT_GT(gs.recv_bufs_posted_hw, 2u);
  EXPECT_LE(gs.recv_bufs_posted_hw, 8u);
}

TEST(NmadPool, PwPoolCountsHitsAndMisses) {
  NmadPair p;
  const char msg[] = "recycled";
  for (int i = 0; i < 20; ++i) {
    SendRequest sreq;
    RecvRequest rreq;
    char buf[32] = {};
    p.gb->irecv(rreq, 1, buf, sizeof(buf));
    p.ga->isend(sreq, 1, msg, sizeof(msg));
    ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
      return sreq.completed() && rreq.completed();
    }));
  }
  const GateStats gs = p.ga->stats();
  EXPECT_GE(gs.pw_pool_hits, 10u);  // steady state runs on the freelist
  EXPECT_LE(gs.pw_pool_misses, 8u);
  EXPECT_EQ(gs.pw_pool_misses, p.ga->pw_allocated());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NmadSizeSweep,
    ::testing::Values(1u, 7u, 64u, 1024u, 16 * 1024u - 1, 16 * 1024u,
                      16 * 1024u + 1, 64 * 1024u, 1u << 20),
    [](const auto& info) {
      // Piecewise append: the "lit" + std::string temporary chain trips
      // GCC 12's -Wrestrict false positive under inlining.
      std::string name = "b";
      name += std::to_string(info.param);
      return name;
    });

}  // namespace
}  // namespace piom::nmad
