// Tests for the nmad communication library: eager and rendezvous protocols,
// tag matching (expected/unexpected), aggregation, multirail striping,
// packet-wrapper recycling.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <deque>
#include <numeric>
#include <random>
#include <vector>

#include "nmad/session.hpp"
#include "simnet/fabric.hpp"
#include "util/timing.hpp"

namespace piom::nmad {
namespace {

/// Drive both sessions' progress until `pred` or timeout. Returns pred().
template <typename Pred>
bool progress_until(Session& sa, Session& sb, Pred&& pred,
                    int64_t timeout_ns = 5'000'000'000) {
  const int64_t deadline = util::now_ns() + timeout_ns;
  while (util::now_ns() < deadline) {
    sa.progress();
    sb.progress();
    if (pred()) return true;
  }
  return pred();
}

struct NmadPair {
  simnet::Fabric fabric;
  Session sa;
  Session sb;
  Gate* ga = nullptr;
  Gate* gb = nullptr;

  explicit NmadPair(SessionConfig cfg = {}, int rails = 1,
                    double time_scale = 0.05)
      : fabric(time_scale), sa("A", cfg), sb("B", cfg) {
    std::vector<transport::IChannel*> rails_a, rails_b;
    for (int r = 0; r < rails; ++r) {
      auto [na, nb] = fabric.create_link("rail" + std::to_string(r));
      rails_a.push_back(na);
      rails_b.push_back(nb);
    }
    ga = &sa.create_gate(rails_a);
    gb = &sb.create_gate(rails_b);
  }
};

TEST(NmadEager, BasicSendRecv) {
  NmadPair p;
  const std::string msg = "bonjour newmadeleine";
  SendRequest sreq;
  RecvRequest rreq;
  char buf[64] = {};
  p.gb->irecv(rreq, /*tag=*/3, buf, sizeof(buf));
  p.ga->isend(sreq, 3, msg.data(), msg.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(rreq.received, msg.size());
  EXPECT_EQ(std::memcmp(buf, msg.data(), msg.size()), 0);
  EXPECT_EQ(p.ga->stats().eager_sent, 1u);
  EXPECT_EQ(p.gb->stats().eager_recv, 1u);
}

TEST(NmadEager, UnexpectedMessageMatchesLateRecv) {
  NmadPair p;
  const std::string msg = "early";
  SendRequest sreq;
  p.ga->isend(sreq, 5, msg.data(), msg.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 1;
  }));
  char buf[16] = {};
  RecvRequest rreq;
  p.gb->irecv(rreq, 5, buf, sizeof(buf));  // matches the stored arrival
  EXPECT_TRUE(rreq.completed());
  EXPECT_EQ(rreq.received, msg.size());
  EXPECT_EQ(std::memcmp(buf, "early", 5), 0);
}

TEST(NmadEager, TagsAreMatchedIndependently) {
  NmadPair p;
  char buf7[8] = {}, buf9[8] = {};
  RecvRequest r7, r9;
  p.gb->irecv(r7, 7, buf7, sizeof(buf7));
  p.gb->irecv(r9, 9, buf9, sizeof(buf9));
  SendRequest s9, s7;
  p.ga->isend(s9, 9, "nine", 5);  // send tag 9 first
  p.ga->isend(s7, 7, "seven", 6);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return r7.completed() && r9.completed();
  }));
  EXPECT_STREQ(buf7, "seven");
  EXPECT_STREQ(buf9, "nine");
}

TEST(NmadEager, SameTagMatchesInSeqOrder) {
  NmadPair p;
  // Two unexpected messages, same tag: the late irecvs must drain them in
  // send order (lowest sequence first).
  SendRequest s1, s2;
  p.ga->isend(s1, 4, "first", 6);
  p.ga->isend(s2, 4, "second", 7);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 2;
  }));
  char b1[8] = {}, b2[8] = {};
  RecvRequest r1, r2;
  p.gb->irecv(r1, 4, b1, sizeof(b1));
  p.gb->irecv(r2, 4, b2, sizeof(b2));
  EXPECT_TRUE(r1.completed());
  EXPECT_TRUE(r2.completed());
  EXPECT_STREQ(b1, "first");
  EXPECT_STREQ(b2, "second");
  EXPECT_LT(r1.matched_seq, r2.matched_seq);
}

TEST(NmadEager, ZeroLengthMessage) {
  NmadPair p;
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 1, nullptr, 0);
  p.ga->isend(sreq, 1, nullptr, 0);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return rreq.completed(); }));
  EXPECT_EQ(rreq.received, 0u);
}

TEST(NmadRdv, LargeMessageUsesRendezvous) {
  NmadPair p;
  std::vector<uint8_t> data(512 * 1024);
  std::iota(data.begin(), data.end(), 1);
  std::vector<uint8_t> out(data.size(), 0);
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 11, out.data(), out.size());
  p.ga->isend(sreq, 11, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
  EXPECT_EQ(p.ga->stats().rdv_sent, 1u);
  EXPECT_EQ(p.gb->stats().rdv_recv, 1u);
  EXPECT_EQ(p.ga->stats().eager_sent, 0u);
  // The data itself moved by RDMA-Read, served by the sender-side NIC.
  EXPECT_GE(p.ga->rail_channel(0).stats().rdma_reads_served, 1u);
}

TEST(NmadRdv, UnexpectedRtsMatchesLateRecv) {
  NmadPair p;
  std::vector<uint8_t> data(128 * 1024, 0x5A);
  SendRequest sreq;
  p.ga->isend(sreq, 2, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_rts == 1;
  }));
  EXPECT_FALSE(sreq.completed());  // no receiver yet: FIN cannot exist
  std::vector<uint8_t> out(data.size(), 0);
  RecvRequest rreq;
  p.gb->irecv(rreq, 2, out.data(), out.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
}

TEST(NmadRdv, EagerAndRdvSameTagRespectSeqOrder) {
  NmadPair p;
  std::vector<uint8_t> big(64 * 1024, 0xCC);
  SendRequest s_small, s_big;
  p.ga->isend(s_small, 6, "tiny", 5);      // seq N   (eager)
  p.ga->isend(s_big, 6, big.data(), big.size());  // seq N+1 (rdv)
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 1 &&
           p.gb->stats().unexpected_rts == 1;
  }));
  // First irecv must take the *eager* one (lower seq), not the rdv.
  char small_buf[8] = {};
  RecvRequest r1;
  p.gb->irecv(r1, 6, small_buf, sizeof(small_buf));
  EXPECT_TRUE(r1.completed());
  EXPECT_STREQ(small_buf, "tiny");
  std::vector<uint8_t> big_out(big.size(), 0);
  RecvRequest r2;
  p.gb->irecv(r2, 6, big_out.data(), big_out.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return r2.completed(); }));
  EXPECT_EQ(big_out, big);
}

TEST(NmadAggreg, PendingSmallSendsArePacked) {
  SessionConfig cfg;
  cfg.strategy.aggregation = true;
  NmadPair p(cfg);
  constexpr int kMsgs = 8;
  std::vector<std::string> payloads;
  std::deque<SendRequest> sreqs(kMsgs);
  std::deque<RecvRequest> rreqs(kMsgs);
  std::vector<std::array<char, 32>> bufs(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    payloads.push_back("payload-" + std::to_string(i));
    p.gb->irecv(rreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                bufs[static_cast<std::size_t>(i)].data(), 32);
  }
  // Defer: all sends join the pending queue, then one flush packs them.
  for (int i = 0; i < kMsgs; ++i) {
    p.ga->isend(sreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                payloads[static_cast<std::size_t>(i)].data(),
                payloads[static_cast<std::size_t>(i)].size() + 1,
                /*defer=*/true);
  }
  EXPECT_EQ(p.ga->pending_sends(), static_cast<std::size_t>(kMsgs));
  p.ga->flush();
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    for (const auto& r : rreqs) {
      if (!r.completed()) return false;
    }
    return true;
  }));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_STREQ(bufs[static_cast<std::size_t>(i)].data(),
                 payloads[static_cast<std::size_t>(i)].c_str());
  }
  const GateStats gs = p.ga->stats();
  EXPECT_GE(gs.packs_sent, 1u);
  EXPECT_EQ(gs.msgs_packed, static_cast<uint64_t>(kMsgs));
  // Fig 1's point: fewer wire packets than messages.
  EXPECT_LT(p.ga->rail_channel(0).stats().packets_tx,
            static_cast<uint64_t>(kMsgs));
}

TEST(NmadAggreg, NoAggregationSendsOnePacketPerMessage) {
  NmadPair p;  // aggregation off by default
  constexpr int kMsgs = 6;
  std::deque<SendRequest> sreqs(kMsgs);
  std::deque<RecvRequest> rreqs(kMsgs);
  std::vector<std::array<char, 16>> bufs(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    p.gb->irecv(rreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                bufs[static_cast<std::size_t>(i)].data(), 16);
    p.ga->isend(sreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i), "x",
                2, /*defer=*/true);
  }
  p.ga->flush();
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    for (const auto& r : rreqs) {
      if (!r.completed()) return false;
    }
    return true;
  }));
  EXPECT_EQ(p.ga->stats().packs_sent, 0u);
  EXPECT_EQ(p.ga->rail_channel(0).stats().packets_tx,
            static_cast<uint64_t>(kMsgs));
}

TEST(NmadMultirail, RdvStripesAcrossRails) {
  SessionConfig cfg;
  cfg.strategy.multirail_stripe = true;
  cfg.strategy.stripe_min_chunk = 16 * 1024;
  NmadPair p(cfg, /*rails=*/2);
  std::vector<uint8_t> data(1 << 20);
  std::mt19937 rng(99);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  std::vector<uint8_t> out(data.size(), 0);
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 8, out.data(), out.size());
  p.ga->isend(sreq, 8, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
  // Both sender-side rail NICs served RDMA reads: the stripe really split.
  EXPECT_GE(p.ga->rail_channel(0).stats().rdma_reads_served, 1u);
  EXPECT_GE(p.ga->rail_channel(1).stats().rdma_reads_served, 1u);
}

TEST(NmadPool, PacketWrappersAreRecycled) {
  NmadPair p;
  char buf[32] = {};
  for (int i = 0; i < 50; ++i) {
    SendRequest sreq;
    RecvRequest rreq;
    p.gb->irecv(rreq, 1, buf, sizeof(buf));
    p.ga->isend(sreq, 1, "ping", 5);
    ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
      return sreq.completed() && rreq.completed();
    }));
  }
  // Steady-state: wrapper allocations must be far below the message count.
  EXPECT_LE(p.ga->pw_allocated(), 8u);
}

TEST(NmadStress, ManyMessagesBothDirectionsManyTags) {
  NmadPair p;
  constexpr int kMsgs = 200;
  std::deque<SendRequest> sa(kMsgs), sb(kMsgs);
  std::deque<RecvRequest> ra(kMsgs), rb(kMsgs);
  std::vector<std::array<char, 16>> bufs_a(kMsgs), bufs_b(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    const Tag tag = static_cast<Tag>(i % 17);
    p.gb->irecv(rb[static_cast<std::size_t>(i)], tag,
                bufs_b[static_cast<std::size_t>(i)].data(), 16);
    p.ga->irecv(ra[static_cast<std::size_t>(i)], tag,
                bufs_a[static_cast<std::size_t>(i)].data(), 16);
  }
  for (int i = 0; i < kMsgs; ++i) {
    const Tag tag = static_cast<Tag>(i % 17);
    p.ga->isend(sa[static_cast<std::size_t>(i)], tag, "fromA", 6);
    p.gb->isend(sb[static_cast<std::size_t>(i)], tag, "fromB", 6);
  }
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    for (int i = 0; i < kMsgs; ++i) {
      if (!ra[static_cast<std::size_t>(i)].completed() ||
          !rb[static_cast<std::size_t>(i)].completed()) {
        return false;
      }
    }
    return true;
  }));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_STREQ(bufs_a[static_cast<std::size_t>(i)].data(), "fromB");
    EXPECT_STREQ(bufs_b[static_cast<std::size_t>(i)].data(), "fromA");
  }
}

TEST(NmadConfig, RejectsOversizedThresholds) {
  SessionConfig cfg;
  cfg.eager_threshold = kPoolBufSize;  // + header would overflow the buffer
  EXPECT_THROW(Session("bad", cfg), std::invalid_argument);
  SessionConfig cfg2;
  cfg2.pool_bufs_per_rail = 0;
  EXPECT_THROW(Session("bad2", cfg2), std::invalid_argument);
}

TEST(NmadConfig, GateRequiresConnectedRails) {
  simnet::Fabric fabric(0.05);
  simnet::Nic& lonely = fabric.create_nic("lonely");
  Session s("s");
  EXPECT_THROW(s.create_gate({}), std::invalid_argument);
  EXPECT_THROW(s.create_gate({&lonely}), std::invalid_argument);
}


TEST(NmadWildcard, AnyTagMatchesExpected) {
  NmadPair p;
  char buf[16] = {};
  RecvRequest rreq;
  p.gb->irecv(rreq, kAnyTag, buf, sizeof(buf));
  SendRequest sreq;
  p.ga->isend(sreq, /*tag=*/1234, "wild", 5);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return rreq.completed(); }));
  EXPECT_STREQ(buf, "wild");
  EXPECT_EQ(rreq.matched_tag, 1234u);
}

TEST(NmadWildcard, AnyTagDrainsUnexpectedInSeqOrder) {
  NmadPair p;
  SendRequest s1, s2, s3;
  p.ga->isend(s1, 5, "one", 4);
  p.ga->isend(s2, 99, "two", 4);
  p.ga->isend(s3, 5, "tri", 4);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_eager == 3;
  }));
  char b1[8] = {}, b2[8] = {}, b3[8] = {};
  RecvRequest r1, r2, r3;
  p.gb->irecv(r1, kAnyTag, b1, sizeof(b1));
  p.gb->irecv(r2, kAnyTag, b2, sizeof(b2));
  p.gb->irecv(r3, kAnyTag, b3, sizeof(b3));
  EXPECT_TRUE(r1.completed());
  EXPECT_TRUE(r2.completed());
  EXPECT_TRUE(r3.completed());
  // Wildcards drain in arrival (sequence) order across tags.
  EXPECT_STREQ(b1, "one");
  EXPECT_STREQ(b2, "two");
  EXPECT_STREQ(b3, "tri");
  EXPECT_EQ(r1.matched_tag, 5u);
  EXPECT_EQ(r2.matched_tag, 99u);
  EXPECT_EQ(r3.matched_tag, 5u);
}

TEST(NmadWildcard, AnyTagMatchesRendezvousToo) {
  NmadPair p;
  std::vector<uint8_t> data(64 * 1024, 0x3A);
  std::vector<uint8_t> out(data.size(), 0);
  RecvRequest rreq;
  p.gb->irecv(rreq, kAnyTag, out.data(), out.size());
  SendRequest sreq;
  p.ga->isend(sreq, 77, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
  EXPECT_EQ(rreq.matched_tag, 77u);
}

TEST(NmadWildcard, ExactTagRecvStillMatchesFirstEligible) {
  NmadPair p;
  // Post an exact-tag recv and a wildcard; an arrival with that tag goes to
  // whichever was posted first (FIFO over eligible recvs).
  char exact_buf[8] = {}, any_buf[8] = {};
  RecvRequest exact, any;
  p.gb->irecv(exact, 4, exact_buf, sizeof(exact_buf));
  p.gb->irecv(any, kAnyTag, any_buf, sizeof(any_buf));
  SendRequest s;
  p.ga->isend(s, 4, "hit", 4);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return exact.completed(); }));
  EXPECT_STREQ(exact_buf, "hit");
  EXPECT_FALSE(any.completed());
  // Satisfy the wildcard so teardown sees no pending recv.
  SendRequest s2;
  p.ga->isend(s2, 123, "bye", 4);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return any.completed(); }));
  EXPECT_STREQ(any_buf, "bye");
}

/// Parameterized sweep across the eager/rendezvous boundary: the protocol
/// must be transparent to the payload size.
class NmadSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NmadSizeSweep, RoundTripsIntact) {
  const std::size_t size = GetParam();
  NmadPair p;
  std::vector<uint8_t> data(size);
  std::mt19937 rng(static_cast<unsigned>(size) + 1);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  std::vector<uint8_t> out(size, 0);
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 1, out.data(), out.size());
  p.ga->isend(sreq, 1, data.data(), data.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(rreq.received, size);
  EXPECT_EQ(out, data);
  // Protocol selection: at most the threshold goes eager.
  const GateStats gs = p.ga->stats();
  if (size <= kDefaultEagerThreshold) {
    EXPECT_EQ(gs.eager_sent, 1u);
    EXPECT_EQ(gs.rdv_sent, 0u);
  } else {
    EXPECT_EQ(gs.eager_sent, 0u);
    EXPECT_EQ(gs.rdv_sent, 1u);
  }
}

// ---- rendezvous refusal (revoke_tags / kNack) ------------------------------
//
// The failure-drain protocol behind the collectives: a receiver that will
// never post a matching receive revokes the tag window, which NACKs the
// peer's RTS — staged or still in flight — so the sender error-completes
// instead of parking in rdv_waiting_fin_ forever. Both arrival orders are
// pinned deterministically here (the mpi-level fault tests only reach them
// through racy kill timing).

TEST(NmadRevoke, StagedRtsIsNackedOnRevoke) {
  NmadPair p;
  std::vector<uint8_t> big(64 * 1024, 0xab);  // > eager threshold: rdv path
  SendRequest sreq;
  p.ga->isend(sreq, /*tag=*/21, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return p.gb->stats().unexpected_rts == 1;
  }));
  EXPECT_FALSE(sreq.completed());  // parked, waiting for a FIN
  p.gb->revoke_tags(/*mask=*/0xffffffffu, /*value=*/21);
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return sreq.completed(); }));
  EXPECT_TRUE(sreq.core.has_failed());
  EXPECT_EQ(p.gb->stats().rts_nacked, 1u);
  EXPECT_EQ(p.ga->stats().sends_nacked, 1u);
}

TEST(NmadRevoke, LateRtsIsNackedOnArrival) {
  // Reliable session: the NACK is sequenced, acked and dedup-tracked like
  // any data packet — this covers that plumbing too.
  SessionConfig cfg;
  cfg.reliable = true;
  NmadPair p(cfg);
  p.gb->revoke_tags(/*mask=*/0xffffffffu, /*value=*/22);
  std::vector<uint8_t> big(64 * 1024, 0xcd);
  SendRequest sreq;
  p.ga->isend(sreq, /*tag=*/22, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] { return sreq.completed(); }));
  EXPECT_TRUE(sreq.core.has_failed());
  EXPECT_EQ(p.gb->stats().rts_nacked, 1u);
  EXPECT_EQ(p.ga->stats().sends_nacked, 1u);

  // The revocation is a window, not a blanket: other tags still rendezvous
  // normally on the same gate pair.
  SendRequest ok;
  RecvRequest rok;
  std::vector<uint8_t> out(big.size(), 0);
  p.gb->irecv(rok, /*tag=*/23, out.data(), out.size());
  p.ga->isend(ok, /*tag=*/23, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return ok.completed() && rok.completed();
  }));
  EXPECT_FALSE(ok.core.has_failed());
  EXPECT_EQ(out, big);
}

TEST(NmadRevoke, MaskedWindowCoversManyTags) {
  // The collectives revoke a whole epoch at once: every tag with the same
  // high bits falls, other windows stay live.
  NmadPair p;
  p.gb->revoke_tags(/*mask=*/0xffffff00u, /*value=*/0x4200u);
  std::vector<uint8_t> big(64 * 1024, 0x11);
  SendRequest in_window, outside;
  p.ga->isend(in_window, /*tag=*/0x42aa, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return in_window.completed();
  }));
  EXPECT_TRUE(in_window.core.has_failed());
  RecvRequest rok;
  std::vector<uint8_t> out(big.size(), 0);
  p.gb->irecv(rok, /*tag=*/0x43aa, out.data(), out.size());
  p.ga->isend(outside, /*tag=*/0x43aa, big.data(), big.size());
  ASSERT_TRUE(progress_until(p.sa, p.sb, [&] {
    return outside.completed() && rok.completed();
  }));
  EXPECT_FALSE(outside.core.has_failed());
  EXPECT_EQ(out, big);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NmadSizeSweep,
    ::testing::Values(1u, 7u, 64u, 1024u, 16 * 1024u - 1, 16 * 1024u,
                      16 * 1024u + 1, 64 * 1024u, 1u << 20),
    [](const auto& info) {
      // Piecewise append: the "lit" + std::string temporary chain trips
      // GCC 12's -Wrestrict false positive under inlining.
      std::string name = "b";
      name += std::to_string(info.param);
      return name;
    });

}  // namespace
}  // namespace piom::nmad
