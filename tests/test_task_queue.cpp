// Tests for the queue implementations: FIFO semantics, Algorithm 2's
// lock-avoidance, lock-free correctness under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <deque>
#include <thread>
#include <vector>

#include "core/lf_queue.hpp"
#include "core/task_queue.hpp"

namespace piom {
namespace {

TaskResult nop(void*) { return TaskResult::kDone; }

std::unique_ptr<ITaskQueue> make_queue(int kind) {
  switch (kind) {
    case 0: return std::make_unique<SpinTaskQueue>();
    case 1: return std::make_unique<TicketTaskQueue>();
    case 2: return std::make_unique<MutexTaskQueue>();
    case 3: return std::make_unique<LockFreeTaskQueue>();
    default: return nullptr;
  }
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "spin";
    case 1: return "ticket";
    case 2: return "mutex";
    case 3: return "lockfree";
    default: return "?";
  }
}

class TaskQueueAll : public ::testing::TestWithParam<int> {};

TEST_P(TaskQueueAll, EmptyDequeueReturnsNull) {
  auto q = make_queue(GetParam());
  EXPECT_EQ(q->try_dequeue(), nullptr);
  EXPECT_EQ(q->size_approx(), 0u);
}

TEST_P(TaskQueueAll, SingleElementRoundTrip) {
  auto q = make_queue(GetParam());
  Task t;
  t.init(&nop, nullptr, {}, kTaskNone);
  t.state.store(TaskState::kQueued);
  q->enqueue(&t);
  EXPECT_EQ(q->size_approx(), 1u);
  EXPECT_EQ(q->try_dequeue(), &t);
  EXPECT_EQ(q->try_dequeue(), nullptr);
  EXPECT_EQ(q->size_approx(), 0u);
}

TEST_P(TaskQueueAll, DrainsAllElements) {
  auto q = make_queue(GetParam());
  constexpr int kN = 100;
  std::deque<Task> tasks(kN);
  for (auto& t : tasks) {
    t.init(&nop, nullptr, {}, kTaskNone);
    t.state.store(TaskState::kQueued);
    q->enqueue(&t);
  }
  EXPECT_EQ(q->size_approx(), static_cast<std::size_t>(kN));
  std::set<Task*> seen;
  for (int i = 0; i < kN; ++i) {
    Task* t = q->try_dequeue();
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(seen.insert(t).second) << "duplicate dequeue";
  }
  EXPECT_EQ(q->try_dequeue(), nullptr);
}

TEST_P(TaskQueueAll, ConcurrentEnqueueDequeueLosesNothing) {
  auto q = make_queue(GetParam());
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 10'000;
  std::deque<std::deque<Task>> tasks(kProducers);
  for (auto& v : tasks) v.resize(kPerProducer);
  std::atomic<int> consumed{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (auto& t : tasks[p]) {
        t.init(&nop, nullptr, {}, kTaskNone);
        t.state.store(TaskState::kQueued);
        q->enqueue(&t);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        Task* t = q->try_dequeue();
        if (t != nullptr) {
          consumed.fetch_add(1);
          continue;
        }
        if (consumed.load() == kProducers * kPerProducer) return;
        if (done_producing.load()) std::this_thread::yield();
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  done_producing.store(true);
  for (int c = kProducers; c < kProducers + kConsumers; ++c) {
    threads[static_cast<std::size_t>(c)].join();
  }
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(q->size_approx(), 0u);
}

TEST_P(TaskQueueAll, StatsCountOperations) {
  auto q = make_queue(GetParam());
  Task t;
  t.init(&nop, nullptr, {}, kTaskNone);
  t.state.store(TaskState::kQueued);
  q->enqueue(&t);
  (void)q->try_dequeue();
  (void)q->try_dequeue();  // empty
  const QueueStats s = q->stats();
  EXPECT_EQ(s.enqueues, 1u);
  EXPECT_EQ(s.dequeues, 1u);
  EXPECT_GE(s.empty_checks, 1u) << kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TaskQueueAll, ::testing::Range(0, 4));

TEST(LockedQueue, FifoOrder) {
  SpinTaskQueue q;
  Task a, b, c;
  for (Task* t : {&a, &b, &c}) {
    t->init(&nop, nullptr, {}, kTaskNone);
    t->state.store(TaskState::kQueued);
    q.enqueue(t);
  }
  EXPECT_EQ(q.try_dequeue(), &a);
  EXPECT_EQ(q.try_dequeue(), &b);
  EXPECT_EQ(q.try_dequeue(), &c);
}

TEST(LockedQueue, DoubleCheckAvoidsLockOnEmpty) {
  SpinTaskQueue q(/*double_check=*/true);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.try_dequeue(), nullptr);
  const QueueStats s = q.stats();
  EXPECT_EQ(s.lock_acquisitions, 0u) << "empty queue must not be locked";
  EXPECT_EQ(s.empty_checks, 10u);
}

TEST(LockedQueue, NoDoubleCheckAlwaysLocks) {
  SpinTaskQueue q(/*double_check=*/false);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.try_dequeue(), nullptr);
  EXPECT_EQ(q.stats().lock_acquisitions, 10u);
}

TEST(LockFreeQueue, ReportsLockFreedom) {
  LockFreeTaskQueue q;
  // Informational: on x86-64 with cx16 this should be lock-free; the ablation
  // bench reports it. Either way the queue must behave correctly (covered by
  // the parameterized suite above).
  (void)q.is_lock_free();
  SUCCEED();
}

TEST(LockFreeQueue, ReusedTaskNoAba) {
  // Pop/re-push the same task from several threads; the tag must prevent
  // lost updates (this is the classic ABA shape for a Treiber stack).
  LockFreeTaskQueue q;
  constexpr int kTasks = 8;
  std::deque<Task> tasks(kTasks);
  for (auto& t : tasks) {
    t.init(&nop, nullptr, {}, kTaskNone);
    t.state.store(TaskState::kQueued);
    q.enqueue(&t);
  }
  std::atomic<int64_t> ops{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 6; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50'000; ++i) {
        Task* t = q.try_dequeue();
        if (t != nullptr) {
          q.enqueue(t);  // immediately recycle: stresses ABA
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every task must still be present exactly once.
  EXPECT_EQ(q.size_approx(), static_cast<std::size_t>(kTasks));
  std::set<Task*> seen;
  for (int i = 0; i < kTasks; ++i) {
    Task* t = q.try_dequeue();
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(seen.insert(t).second);
  }
  EXPECT_EQ(q.try_dequeue(), nullptr);
  EXPECT_GT(ops.load(), 0);
}

}  // namespace
}  // namespace piom
