// Tests for the tracing subsystem and its scheduler integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/task_manager.hpp"
#include "topo/machine.hpp"
#include "util/trace.hpp"

namespace piom::util::trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    enable();
    reset();
  }
  void TearDown() override {
    disable();
    reset();
  }
};

TEST_F(TraceTest, RecordAndCollect) {
  record(Kind::kUser, 1, 100);
  record(Kind::kUser, 2, 200);
  const auto events = collect();
  ASSERT_GE(events.size(), 2u);
  // Our two events are present, in timestamp order.
  const auto first = std::find_if(events.begin(), events.end(), [](const Event& e) {
    return e.kind == Kind::kUser && e.arg0 == 1;
  });
  const auto second = std::find_if(events.begin(), events.end(), [](const Event& e) {
    return e.kind == Kind::kUser && e.arg0 == 2;
  });
  ASSERT_NE(first, events.end());
  ASSERT_NE(second, events.end());
  EXPECT_LE(first->t_ns, second->t_ns);
  EXPECT_EQ(first->arg1, 100u);
  EXPECT_EQ(second->arg1, 200u);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  disable();
  reset();
  PIOM_TRACE(Kind::kUser, 9, 9);
  EXPECT_TRUE(collect().empty());
}

TEST_F(TraceTest, ResetDropsEvents) {
  record(Kind::kUser, 1, 1);
  reset();
  EXPECT_TRUE(collect().empty());
}

TEST_F(TraceTest, SchedulerEmitsLifecycleEvents) {
  const topo::Machine m = topo::Machine::flat(2);
  TaskManager tm(m);
  reset();
  Task t;
  t.init([](void*) { return TaskResult::kDone; }, nullptr,
         topo::CpuSet::single(0), kTaskNone);
  tm.submit(&t);
  tm.schedule(0);
  const auto events = collect();
  auto count = [&](Kind k) {
    return std::count_if(events.begin(), events.end(),
                         [&](const Event& e) { return e.kind == k; });
  };
  EXPECT_EQ(count(Kind::kTaskSubmit), 1);
  EXPECT_EQ(count(Kind::kTaskRun), 1);
  EXPECT_EQ(count(Kind::kTaskDone), 1);
}

TEST_F(TraceTest, RepeatTaskEmitsRequeues) {
  const topo::Machine m = topo::Machine::flat(1);
  TaskManager tm(m);
  reset();
  struct Poll {
    int remaining = 4;
  } poll;
  Task t;
  t.init(
      [](void* arg) {
        auto* p = static_cast<Poll*>(arg);
        return (--p->remaining == 0) ? TaskResult::kDone : TaskResult::kAgain;
      },
      &poll, topo::CpuSet::single(0), kTaskRepeat);
  tm.submit(&t);
  while (!t.completed()) tm.schedule(0);
  const auto events = collect();
  const auto requeues =
      std::count_if(events.begin(), events.end(),
                    [](const Event& e) { return e.kind == Kind::kTaskRequeue; });
  EXPECT_EQ(requeues, 3);  // 4 runs, 3 of which re-enqueued
}

TEST_F(TraceTest, MultiThreadedRecordingMerges) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        record(Kind::kUser, static_cast<uint32_t>(t), static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto events = collect();
  int mine = 0;
  for (const Event& e : events) {
    if (e.kind == Kind::kUser) ++mine;
  }
  EXPECT_EQ(mine, kThreads * kPerThread);
  // Sorted by time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns);
  }
}

TEST_F(TraceTest, RingWrapKeepsMostRecent) {
  for (std::size_t i = 0; i < kRingCapacity + 50; ++i) {
    record(Kind::kUser, 0, i);
  }
  const auto events = collect();
  // At most one ring's worth, and it contains the newest event.
  std::size_t mine = 0;
  uint64_t max_arg = 0;
  for (const Event& e : events) {
    if (e.kind == Kind::kUser) {
      ++mine;
      max_arg = std::max(max_arg, e.arg1);
    }
  }
  EXPECT_LE(mine, kRingCapacity);
  EXPECT_EQ(max_arg, kRingCapacity + 49);
}

TEST_F(TraceTest, FormatIsHumanReadable) {
  record(Kind::kTaskRun, 3, 42);
  const std::string text = format(collect());
  EXPECT_NE(text.find("task-run"), std::string::npos);
  EXPECT_NE(text.find("arg0=3"), std::string::npos);
}

TEST(TraceNames, AllKindsNamed) {
  for (const Kind k : {Kind::kTaskSubmit, Kind::kTaskRun, Kind::kTaskDone,
                       Kind::kTaskRequeue, Kind::kUrgentRun,
                       Kind::kSchedulePass, Kind::kPacketTx, Kind::kPacketRx,
                       Kind::kUser}) {
    EXPECT_STRNE(kind_name(k), "?");
  }
}

}  // namespace
}  // namespace piom::util::trace
