// Transport-backend tests: the shmem channel's ring/backpressure/completion
// protocol, the ITransport factory faces, BackendPolicy validation, and
// mixed-backend (hybrid) gates — eager on the fast rail, bulk striped
// across heterogeneous rails.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "nmad/request.hpp"
#include "nmad/session.hpp"
#include "transport/channel.hpp"
#include "transport/cluster.hpp"
#include "transport/endpoint.hpp"
#include "transport/shmem.hpp"
#include "transport/tcp.hpp"
#include "util/timing.hpp"

namespace piom::transport {
namespace {

TEST(BackendNames, AreStable) {
  EXPECT_STREQ(backend_name(Backend::kSimnet), "simnet");
  EXPECT_STREQ(backend_name(Backend::kShmem), "shmem");
  EXPECT_STREQ(pair_wiring_name(PairWiring::kSimnet), "simnet");
  EXPECT_STREQ(pair_wiring_name(PairWiring::kShmem), "shmem");
  EXPECT_STREQ(pair_wiring_name(PairWiring::kHybrid), "hybrid");
}

TEST(ShmemChannel, BasicSendRecvRoundTrip) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("pair");
  EXPECT_EQ(a->backend(), Backend::kShmem);
  EXPECT_EQ(a->peer(), b);
  EXPECT_EQ(b->peer(), a);
  EXPECT_EQ(a->name(), "pair.a");

  char rx[16] = {};
  b->post_recv(rx, sizeof(rx), 7);
  a->post_send("hello", 6, 9);

  Completion c{};
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_EQ(c.kind, Completion::Kind::kRecv);
  EXPECT_EQ(c.wrid, 7u);
  EXPECT_EQ(c.bytes, 6u);
  EXPECT_STREQ(rx, "hello");

  ASSERT_TRUE(a->poll_tx(c));
  EXPECT_EQ(c.kind, Completion::Kind::kSend);
  EXPECT_EQ(c.wrid, 9u);

  EXPECT_EQ(a->stats().packets_tx, 1u);
  EXPECT_EQ(a->stats().bytes_tx, 6u);
  EXPECT_EQ(b->stats().packets_rx, 1u);
  EXPECT_EQ(b->stats().bytes_rx, 6u);
}

TEST(ShmemChannel, ZeroAndOneByteMessages) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("tiny");
  char rx0 = 'x', rx1 = 0;
  b->post_recv(&rx0, 1, 1);
  b->post_recv(&rx1, 1, 2);
  a->post_send(nullptr, 0, 10);  // zero-byte: no payload to read at all
  const char one = 'Z';
  a->post_send(&one, 1, 11);

  Completion c{};
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_EQ(c.bytes, 0u);
  EXPECT_EQ(rx0, 'x');  // untouched
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_EQ(c.bytes, 1u);
  EXPECT_EQ(rx1, 'Z');
  ASSERT_TRUE(a->poll_tx(c));
  ASSERT_TRUE(a->poll_tx(c));
  EXPECT_FALSE(a->poll_tx(c));
}

TEST(ShmemChannel, StagedArrivalDeliveredToLatePostedBuffer) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("late");
  const char payload[] = "buffered";
  a->post_send(payload, sizeof(payload), 1);
  // Sender completes without the receiver ever posting: the arrival is
  // staged (driver-style copy), releasing the descriptor.
  Completion c{};
  ASSERT_TRUE(a->poll_tx(c));
  char rx[16] = {};
  b->post_recv(rx, sizeof(rx), 2);
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_STREQ(rx, "buffered");
}

TEST(ShmemChannel, SendCompletesWithoutReceiverHostPolling) {
  // The DMA property caller-driven engines rely on: only the *sender*
  // polls; delivery and completion must still happen.
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("dma");
  char rx[8] = {};
  b->post_recv(rx, sizeof(rx), 5);
  a->post_send("ping", 5, 6);
  Completion c{};
  ASSERT_TRUE(a->poll_tx(c));  // no b->poll_rx() before this
  EXPECT_EQ(c.wrid, 6u);
  EXPECT_STREQ(rx, "ping");  // already landed in the posted buffer
}

TEST(ShmemChannel, RingFullBackpressuresWithoutDeadlock) {
  ShmemConfig config;
  config.ring_slots = 4;
  ShmemTransport transport(config);
  auto [a, b] = transport.create_channel_pair("full");
  constexpr int kMsgs = 64;
  std::vector<uint32_t> payloads(kMsgs);
  std::iota(payloads.begin(), payloads.end(), 100u);
  for (int i = 0; i < kMsgs; ++i) {
    a->post_send(&payloads[static_cast<std::size_t>(i)], sizeof(uint32_t),
                 static_cast<uint64_t>(i));
  }
  // 4-slot ring, 64 posts, receiver idle: the excess must be spilled, not
  // dropped, and the sender must not block.
  EXPECT_GT(a->tx_backlog(), 0u);

  // Drain: every message arrives, in order, and every send completes.
  Completion c{};
  for (int i = 0; i < kMsgs; ++i) {
    uint32_t rx = 0;
    b->post_recv(&rx, sizeof(rx), static_cast<uint64_t>(1000 + i));
    while (!b->poll_rx(c)) {
    }
    EXPECT_EQ(c.wrid, static_cast<uint64_t>(1000 + i));
    EXPECT_EQ(rx, payloads[static_cast<std::size_t>(i)]);
  }
  int completions = 0;
  while (completions < kMsgs) {
    if (a->poll_tx(c)) ++completions;
  }
  EXPECT_EQ(a->tx_backlog(), 0u);
  EXPECT_EQ(a->stats().packets_tx, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(b->stats().packets_rx, static_cast<uint64_t>(kMsgs));
}

TEST(ShmemChannel, RdmaReadIsDirectAndCounted) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("rdma");
  std::vector<uint8_t> remote(4096);
  std::iota(remote.begin(), remote.end(), 0);
  std::vector<uint8_t> local(4096, 0);
  a->post_rdma_read(local.data(), remote.data(), local.size(), 42);
  Completion c{};
  ASSERT_TRUE(a->poll_tx(c));  // synchronous: completion is already there
  EXPECT_EQ(c.kind, Completion::Kind::kRdmaRead);
  EXPECT_EQ(c.wrid, 42u);
  EXPECT_EQ(c.bytes, local.size());
  EXPECT_EQ(local, remote);
  EXPECT_EQ(b->stats().rdma_reads_served, 1u);
}

TEST(ShmemChannel, QuiesceSettlesBothDirections) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("quiet");
  const char ping[] = "ping", pong[] = "pong";
  a->post_send(ping, sizeof(ping), 1);
  b->post_send(pong, sizeof(pong), 2);
  a->quiesce();
  b->quiesce();
  // Nothing in flight afterwards; completions are still pollable.
  EXPECT_EQ(a->tx_backlog(), 0u);
  Completion c{};
  EXPECT_TRUE(a->poll_tx(c));
  EXPECT_TRUE(b->poll_tx(c));
}

TEST(ShmemChannel, ReportsFastRailProperties) {
  ShmemConfig config;
  config.bandwidth_GBps = 12.5;
  config.latency_us = 0.2;
  ShmemTransport transport(config);
  auto [a, b] = transport.create_channel_pair("props");
  EXPECT_DOUBLE_EQ(a->bandwidth_GBps(), 12.5);
  EXPECT_DOUBLE_EQ(b->latency_us(), 0.2);
  // Default config: bandwidth is measured host memcpy throughput, floored
  // above the default NIC link model (the fast-rail invariant holds even
  // under sanitizer-instrumented memcpy).
  EXPECT_GE(measured_memcpy_GBps(), 4.0);
  EXPECT_LE(measured_memcpy_GBps(), 500.0);
}

TEST(Transports, FactoryFacesAgree) {
  ClusterConfig cc;
  cc.time_scale = 0.05;
  Cluster cluster(cc);
  ITransport& nic_side = cluster.transport(Backend::kSimnet);
  ITransport& shm_side = cluster.transport(Backend::kShmem);
  EXPECT_EQ(nic_side.backend(), Backend::kSimnet);
  EXPECT_EQ(shm_side.backend(), Backend::kShmem);
  auto [na, nb] = nic_side.create_channel_pair("n");
  auto [sa, sb] = shm_side.create_channel_pair("s");
  EXPECT_EQ(na->backend(), Backend::kSimnet);
  EXPECT_EQ(sa->backend(), Backend::kShmem);
  EXPECT_EQ(na->peer(), nb);
  EXPECT_EQ(sa->peer(), sb);
  EXPECT_EQ(nic_side.channel_count(), 2u);
  EXPECT_EQ(shm_side.channel_count(), 2u);
}

// ---------------------------------------------------------- BackendPolicy

TEST(BackendPolicy, SelectsIntraVsInterByNode) {
  BackendPolicy policy;
  policy.node_of = {0, 0, 1, 1};
  policy.validate(4);
  EXPECT_EQ(policy.wiring(0, 1), PairWiring::kShmem);
  EXPECT_EQ(policy.wiring(2, 3), PairWiring::kShmem);
  EXPECT_EQ(policy.wiring(0, 2), PairWiring::kSimnet);
  EXPECT_EQ(policy.wiring(1, 3), PairWiring::kSimnet);
  // Empty placement: everything inter-node.
  BackendPolicy empty;
  empty.validate(4);
  EXPECT_EQ(empty.wiring(0, 1), PairWiring::kSimnet);
}

TEST(BackendPolicy, RejectsMalformedPolicies) {
  BackendPolicy wrong_size;
  wrong_size.node_of = {0, 0, 1};
  EXPECT_THROW(wrong_size.validate(4), std::invalid_argument);

  BackendPolicy negative;
  negative.node_of = {0, -1};
  EXPECT_THROW(negative.validate(2), std::invalid_argument);

  BackendPolicy cross_node_shmem;
  cross_node_shmem.node_of = {0, 1};
  cross_node_shmem.inter = PairWiring::kShmem;
  EXPECT_THROW(cross_node_shmem.validate(2), std::invalid_argument);
  cross_node_shmem.inter = PairWiring::kHybrid;
  EXPECT_THROW(cross_node_shmem.validate(2), std::invalid_argument);
}

class TransportEnvGuard {
 public:
  TransportEnvGuard() {
    const char* v = std::getenv("PIOM_TRANSPORT");
    if (v != nullptr) saved_ = v;
  }
  ~TransportEnvGuard() {
    if (saved_.empty()) {
      unsetenv("PIOM_TRANSPORT");
    } else {
      setenv("PIOM_TRANSPORT", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(BackendPolicy, FromEnvResolvesBackends) {
  TransportEnvGuard guard;
  unsetenv("PIOM_TRANSPORT");
  EXPECT_TRUE(BackendPolicy::from_env(4).node_of.empty());

  setenv("PIOM_TRANSPORT", "simnet", 1);
  EXPECT_TRUE(BackendPolicy::from_env(4).node_of.empty());

  setenv("PIOM_TRANSPORT", "shmem", 1);
  BackendPolicy shm = BackendPolicy::from_env(4);
  ASSERT_EQ(shm.node_of.size(), 4u);
  EXPECT_EQ(shm.wiring(0, 3), PairWiring::kShmem);

  setenv("PIOM_TRANSPORT", "hybrid", 1);
  BackendPolicy hyb = BackendPolicy::from_env(3);
  EXPECT_EQ(hyb.wiring(1, 2), PairWiring::kHybrid);

  setenv("PIOM_TRANSPORT", "carrier-pigeon", 1);
  EXPECT_THROW((void)BackendPolicy::from_env(2), std::invalid_argument);
}

// ------------------------------------------------------------- mixed mesh

TEST(ClusterMesh, PolicyWiresShmemIntraNodeAndNicsAcross) {
  ClusterConfig cc;
  cc.time_scale = 0.05;
  Cluster cluster(cc);
  BackendPolicy policy;
  policy.node_of = {0, 0, 1, 1};
  const Cluster::MeshWiring mesh =
      cluster.create_full_mesh(4, 1, {}, "mix", policy);
  // Same-node pairs: one shmem rail. Cross-node pairs: one NIC rail.
  ASSERT_EQ(mesh[0][1].size(), 1u);
  EXPECT_EQ(mesh[0][1][0]->backend(), Backend::kShmem);
  ASSERT_EQ(mesh[2][3].size(), 1u);
  EXPECT_EQ(mesh[2][3][0]->backend(), Backend::kShmem);
  for (const auto& [i, j] :
       {std::pair{0, 2}, std::pair{0, 3}, std::pair{1, 2}, std::pair{1, 3}}) {
    ASSERT_EQ(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                  .size(),
              1u);
    EXPECT_EQ(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                  [0]->backend(),
              Backend::kSimnet);
  }
  // Peering holds across backends.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_EQ(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                    [0]->peer(),
                mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]
                    [0]);
    }
  }
  // 4 cross-node pairs x 1 rail x 2 NICs; 2 same-node pairs x 2 endpoints.
  EXPECT_EQ(cluster.fabric().nic_count(), 8u);
  EXPECT_EQ(cluster.shmem().channel_count(), 4u);
}

TEST(ClusterMesh, HybridPairsPutTheFastRailFirst) {
  ClusterConfig cc;
  cc.time_scale = 0.05;
  Cluster cluster(cc);
  BackendPolicy policy;
  policy.node_of = {0, 0};
  policy.intra = PairWiring::kHybrid;
  const Cluster::MeshWiring mesh =
      cluster.create_full_mesh(2, 2, {}, "hyb", policy);
  ASSERT_EQ(mesh[0][1].size(), 3u);  // shmem + 2 NIC rails
  EXPECT_EQ(mesh[0][1][0]->backend(), Backend::kShmem);
  EXPECT_EQ(mesh[0][1][1]->backend(), Backend::kSimnet);
  EXPECT_EQ(mesh[0][1][2]->backend(), Backend::kSimnet);
  // The fast rail is actually faster on both axes the strategy reads.
  EXPECT_LT(mesh[0][1][0]->latency_us(), mesh[0][1][1]->latency_us());
  EXPECT_GT(mesh[0][1][0]->bandwidth_GBps(), mesh[0][1][1]->bandwidth_GBps());
}

TEST(ClusterMesh, RejectsMalformedPolicyBeforeWiringAnything) {
  ClusterConfig cc;
  cc.time_scale = 0.05;
  Cluster cluster(cc);
  BackendPolicy bad;
  bad.node_of = {0};  // wrong size for a 3-node mesh
  EXPECT_THROW(static_cast<void>(cluster.create_full_mesh(3, 1, {}, "m", bad)),
               std::invalid_argument);
  EXPECT_EQ(cluster.fabric().nic_count(), 0u);
  EXPECT_EQ(cluster.shmem().channel_count(), 0u);
}

// ----------------------------------------------- heterogeneous-rail gates

/// Pump both gates until `done` (progress is caller-driven here).
template <typename DoneFn>
void pump(nmad::Gate& ga, nmad::Gate& gb, DoneFn done) {
  const int64_t deadline = util::now_ns() + 20'000'000'000;  // 20 s safety
  while (!done()) {
    ga.progress();
    gb.progress();
    ASSERT_LT(util::now_ns(), deadline) << "gate progress stalled";
  }
}

TEST(HybridGate, EagerRidesShmemBulkStripesAcrossBothRails) {
  // Pin the shmem bandwidth so the stripe split (and thus the NIC rail's
  // share clearing stripe_min_chunk) is deterministic across hosts.
  ClusterConfig cc;
  cc.time_scale = 0.05;
  cc.shmem.bandwidth_GBps = 10.0;
  Cluster cluster(cc);
  auto [sa, sb] = cluster.shmem().create_channel_pair("fast");
  auto [na, nb] = cluster.create_sim_link("slow", {});

  nmad::SessionConfig config;
  config.strategy.stripe_min_chunk = 16 * 1024;
  nmad::Session session_a("a", config), session_b("b", config);
  nmad::Gate& ga = session_a.create_gate({sa, na});
  nmad::Gate& gb = session_b.create_gate({sb, nb});

  // Small message: the strategy must pick the low-latency shmem rail.
  const uint64_t nic_tx_before = na->stats().packets_tx;
  nmad::SendRequest sreq;
  nmad::RecvRequest rreq;
  int32_t small = 4242, got = 0;
  gb.irecv(rreq, 1, &got, sizeof(got));
  ga.isend(sreq, 1, &small, sizeof(small));
  pump(ga, gb, [&] { return sreq.completed() && rreq.completed(); });
  EXPECT_EQ(got, 4242);
  EXPECT_GE(sa->stats().packets_tx, 1u);
  EXPECT_EQ(na->stats().packets_tx, nic_tx_before);  // NIC rail untouched

  // Large message: rendezvous pull striped across BOTH rails by bandwidth
  // (shmem takes the lion's share, the NIC rail a >= min_chunk slice).
  std::vector<uint8_t> big(1u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 13);
  }
  std::vector<uint8_t> rx(big.size(), 0);
  nmad::SendRequest big_s;
  nmad::RecvRequest big_r;
  gb.irecv(big_r, 2, rx.data(), rx.size());
  ga.isend(big_s, 2, big.data(), big.size());
  pump(ga, gb, [&] { return big_s.completed() && big_r.completed(); });
  EXPECT_EQ(rx, big);
  // The receiver pulls from the sender's memory: the *sender-side*
  // endpoints serve the reads, one chunk per rail.
  EXPECT_GE(sa->stats().rdma_reads_served, 1u);  // fast-rail chunk
  EXPECT_GE(na->stats().rdma_reads_served, 1u);  // NIC-rail chunk
}

// ------------------------------------------------------------ tcp channel
//
// The socket backend mirrors the shmem contract over real nonblocking
// sockets: everything below is the shmem suite's shape with asynchronous
// completion (a pump must run; poll_tx/poll_rx drive it).

/// Spin until a completion shows up (bounded: sockets are asynchronous).
template <typename PollFn>
bool poll_until(PollFn&& poll, Completion& out,
                int64_t timeout_ns = 10'000'000'000) {
  const int64_t deadline = util::now_ns() + timeout_ns;
  while (util::now_ns() < deadline) {
    if (poll(out)) return true;
  }
  return false;
}

/// A connected loopback pair on two independent transports (two pumps —
/// the honest two-rank shape), over the requested socket scheme.
struct TcpPair {
  Cluster cluster;
  IChannel* a = nullptr;
  IChannel* b = nullptr;

  explicit TcpPair(Endpoint::Scheme scheme = Endpoint::Scheme::kUds,
                   const std::string& name = "tpair") {
    auto [x, y] = TcpTransport::create_loopback_pair(
        cluster.tcp_node(0), cluster.tcp_node(1), name, scheme);
    a = x;
    b = y;
  }
};

TEST(TcpChannel, BasicSendRecvRoundTrip) {
  TcpPair p;
  EXPECT_EQ(p.a->backend(), Backend::kTcp);
  EXPECT_EQ(p.a->peer(), p.b);
  EXPECT_EQ(p.b->peer(), p.a);
  EXPECT_TRUE(p.a->connected());

  char rx[16] = {};
  p.b->post_recv(rx, sizeof(rx), 7);
  p.a->post_send("hello", 6, 9);

  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
  EXPECT_EQ(c.kind, Completion::Kind::kRecv);
  EXPECT_EQ(c.wrid, 7u);
  EXPECT_EQ(c.bytes, 6u);
  EXPECT_STREQ(rx, "hello");

  ASSERT_TRUE(poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c));
  EXPECT_EQ(c.kind, Completion::Kind::kSend);
  EXPECT_EQ(c.wrid, 9u);
  EXPECT_EQ(p.a->stats().packets_tx, 1u);
  EXPECT_EQ(p.a->stats().bytes_tx, 6u);
  EXPECT_EQ(p.b->stats().packets_rx, 1u);
  EXPECT_EQ(p.b->stats().bytes_rx, 6u);
}

TEST(TcpChannel, RealTcpSocketsCarryTrafficToo) {
  // Same contract over an actual 127.0.0.1 listen/connect/accept.
  TcpPair p(Endpoint::Scheme::kTcp, "inet");
  char rx[8] = {};
  p.b->post_recv(rx, sizeof(rx), 1);
  p.a->post_send("inet", 5, 2);
  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
  EXPECT_STREQ(rx, "inet");
}

TEST(TcpChannel, ZeroAndOneByteMessages) {
  TcpPair p;
  char rx0 = 'x', rx1 = 0;
  p.b->post_recv(&rx0, 1, 1);
  p.b->post_recv(&rx1, 1, 2);
  p.a->post_send(nullptr, 0, 10);  // zero-byte: header-only frame
  const char one = 'Z';
  p.a->post_send(&one, 1, 11);

  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
  EXPECT_EQ(c.bytes, 0u);
  EXPECT_EQ(rx0, 'x');  // untouched
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
  EXPECT_EQ(c.bytes, 1u);
  EXPECT_EQ(rx1, 'Z');
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c));
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c));
  EXPECT_FALSE(p.a->poll_tx(c));
}

TEST(TcpChannel, StagedArrivalDeliveredToLatePostedBuffer) {
  TcpPair p;
  const char payload[] = "buffered";
  p.a->post_send(payload, sizeof(payload), 1);
  // The send completes once the frame hits the kernel; the receiver has
  // not posted, so its pump stages the arrival driver-side.
  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c));
  char rx[16] = {};
  p.b->post_recv(rx, sizeof(rx), 2);
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
  EXPECT_STREQ(rx, "buffered");
}

TEST(TcpChannel, UndersizedPostedBufferPreservesFifo) {
  // Per-channel FIFO regression: an arrival that cannot go direct (here:
  // the posted buffer is too small) must not let the NEXT frame claim the
  // descriptor and overtake it. Expected shmem-matching semantics: the
  // first message is delivered truncated to the first descriptor, the
  // second message to the second, in send order.
  TcpPair p;
  char small[4] = {};
  char roomy[16] = {};
  p.b->post_recv(small, sizeof(small), 1);
  p.b->post_recv(roomy, sizeof(roomy), 2);
  const char m1[] = "first-message!";  // 15 bytes: overflows `small`
  const char m2[] = "2nd";             // 4 bytes: would fit `small`
  p.a->post_send(m1, sizeof(m1), 11);
  p.a->post_send(m2, sizeof(m2), 12);

  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
  EXPECT_EQ(c.wrid, 1u);
  EXPECT_EQ(c.bytes, sizeof(small));
  EXPECT_EQ(std::memcmp(small, m1, sizeof(small)), 0);
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
  EXPECT_EQ(c.wrid, 2u);
  EXPECT_EQ(c.bytes, sizeof(m2));
  EXPECT_STREQ(roomy, "2nd");
  p.a->quiesce();
}

TEST(TcpChannel, SocketFullBackpressuresWithoutDeadlock) {
  // Far more bytes than any default socket buffer, receiver idle: the
  // excess queues in the channel (tx_backlog), nothing blocks or drops.
  TcpPair p;
  constexpr int kMsgs = 32;
  constexpr std::size_t kMsgBytes = 64 * 1024;
  std::vector<std::vector<uint8_t>> payloads(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    payloads[static_cast<std::size_t>(i)].assign(kMsgBytes,
                                                 static_cast<uint8_t>(i));
    p.a->post_send(payloads[static_cast<std::size_t>(i)].data(), kMsgBytes,
                   static_cast<uint64_t>(i));
  }
  EXPECT_GT(p.a->tx_backlog(), 0u);

  // Drain: every message arrives, in order, and every send completes.
  Completion c{};
  std::vector<uint8_t> rx(kMsgBytes);
  for (int i = 0; i < kMsgs; ++i) {
    p.b->post_recv(rx.data(), rx.size(), static_cast<uint64_t>(1000 + i));
    ASSERT_TRUE(
        poll_until([&](Completion& o) { return p.b->poll_rx(o); }, c));
    EXPECT_EQ(c.wrid, static_cast<uint64_t>(1000 + i));
    EXPECT_EQ(c.bytes, kMsgBytes);
    EXPECT_EQ(rx, payloads[static_cast<std::size_t>(i)]);
  }
  int completions = 0;
  while (completions < kMsgs) {
    if (poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c)) {
      ++completions;
    } else {
      break;
    }
  }
  EXPECT_EQ(completions, kMsgs);
  EXPECT_EQ(p.a->tx_backlog(), 0u);
  EXPECT_EQ(p.a->stats().packets_tx, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(p.b->stats().packets_rx, static_cast<uint64_t>(kMsgs));
}

TEST(TcpChannel, RdmaReadRoundTripsOverTheWire) {
  TcpPair p;
  std::vector<uint8_t> remote(4096);
  std::iota(remote.begin(), remote.end(), 0);
  std::vector<uint8_t> local(4096, 0);
  p.a->post_rdma_read(local.data(), remote.data(), local.size(), 42);
  Completion c{};
  // Asynchronous (request/response frames), unlike shmem's direct copy.
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c));
  EXPECT_EQ(c.kind, Completion::Kind::kRdmaRead);
  EXPECT_EQ(c.wrid, 42u);
  EXPECT_EQ(c.bytes, local.size());
  EXPECT_FALSE(c.failed);
  EXPECT_EQ(local, remote);
  EXPECT_EQ(p.b->stats().rdma_reads_served, 1u);
}

TEST(TcpChannel, QuiesceSettlesBothDirections) {
  TcpPair p;
  const char ping[] = "ping", pong[] = "pong";
  p.a->post_send(ping, sizeof(ping), 1);
  p.b->post_send(pong, sizeof(pong), 2);
  p.a->quiesce();
  p.b->quiesce();
  EXPECT_EQ(p.a->tx_backlog(), 0u);
  Completion c{};
  EXPECT_TRUE(p.a->poll_tx(c));
  EXPECT_TRUE(p.b->poll_tx(c));
}

TEST(TcpChannel, SeveredEndpointDropsDataButFailsRdma) {
  TcpPair p;
  p.a->sever();
  EXPECT_TRUE(p.a->severed());
  // Drop model (NIC port gone dark): sends complete unfailed, counted as
  // dropped — exactly the shmem/simnet severed contract.
  p.a->post_send("lost", 5, 1);
  Completion c{};
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c));
  EXPECT_EQ(c.kind, Completion::Kind::kSend);
  EXPECT_FALSE(c.failed);
  EXPECT_EQ(p.a->stats().packets_dropped, 1u);
  // RDMA reads are the failure-visible path: no data can come back.
  uint8_t byte = 0;
  p.a->post_rdma_read(&byte, &byte, 1, 2);
  ASSERT_TRUE(poll_until([&](Completion& o) { return p.a->poll_tx(o); }, c));
  EXPECT_EQ(c.kind, Completion::Kind::kRdmaRead);
  EXPECT_TRUE(c.failed);
  p.a->quiesce();  // must not hang on a dead endpoint
}

TEST(TcpChannel, ReportsModeledRailProperties) {
  TcpConfig config;
  config.uds_latency_us = 9.0;
  config.bandwidth_GBps = 3.0;
  ClusterConfig cc;
  cc.tcp = config;
  Cluster cluster(cc);
  auto [a, b] = TcpTransport::create_loopback_pair(
      cluster.tcp_node(0), cluster.tcp_node(1), "props",
      Endpoint::Scheme::kUds);
  EXPECT_DOUBLE_EQ(a->latency_us(), 9.0);
  EXPECT_DOUBLE_EQ(b->bandwidth_GBps(), 3.0);
  // The socket rail must advertise worse latency than shmem so hybrid
  // rail selection keeps eager traffic on the fast path.
  EXPECT_GT(a->latency_us(), ShmemConfig{}.latency_us);
}

TEST(TcpTransportFace, FactoryFacesAgree) {
  Cluster cluster;
  ITransport& tcp_side = cluster.transport(Backend::kTcp);
  EXPECT_EQ(tcp_side.backend(), Backend::kTcp);
  auto [ta, tb] = cluster.create_pair(Backend::kTcp, "t");
  EXPECT_EQ(ta->backend(), Backend::kTcp);
  EXPECT_EQ(ta->peer(), tb);
  // One endpoint per node transport, not two on one.
  EXPECT_EQ(cluster.tcp_node(0).channel_count(), 1u);
  EXPECT_EQ(cluster.tcp_node(1).channel_count(), 1u);
}

// --------------------------------------------------- tcp policy + mesh

TEST(BackendPolicy, FromEnvResolvesSocketBackends) {
  TransportEnvGuard guard;
  setenv("PIOM_TRANSPORT", "tcp", 1);
  BackendPolicy tcp = BackendPolicy::from_env(4);
  EXPECT_EQ(tcp.wiring(0, 3), PairWiring::kTcp);
  setenv("PIOM_TRANSPORT", "uds", 1);
  BackendPolicy uds = BackendPolicy::from_env(4);
  EXPECT_EQ(uds.wiring(1, 2), PairWiring::kUds);
}

TEST(BackendPolicy, ShmemStillRefusesToCrossNodes) {
  // kTcp joining the wiring vocabulary must not relax the check the
  // backend table promises: shared memory cannot leave the node.
  BackendPolicy cross;
  cross.node_of = {0, 1};
  cross.inter = PairWiring::kShmem;
  EXPECT_THROW(cross.validate(2), std::invalid_argument);
  cross.inter = PairWiring::kTcp;
  cross.validate(2);  // sockets do cross nodes
}

TEST(ClusterMesh, HybridPlacementMixesShmemIntraWithTcpInter) {
  Cluster cluster;
  BackendPolicy policy;
  policy.node_of = {0, 0, 1, 1};
  policy.inter = PairWiring::kTcp;
  const Cluster::MeshWiring mesh =
      cluster.create_full_mesh(4, 1, {}, "mixtcp", policy);
  ASSERT_EQ(mesh[0][1].size(), 1u);
  EXPECT_EQ(mesh[0][1][0]->backend(), Backend::kShmem);
  ASSERT_EQ(mesh[1][2].size(), 1u);
  EXPECT_EQ(mesh[1][2][0]->backend(), Backend::kTcp);
  EXPECT_EQ(mesh[1][2][0]->peer(), mesh[2][1][0]);
  // The socket pair really carries traffic inside the mesh.
  uint32_t msg = 0xabcd1234, rx = 0;
  mesh[2][1][0]->post_recv(&rx, sizeof(rx), 1);
  mesh[1][2][0]->post_send(&msg, sizeof(msg), 2);
  Completion c{};
  ASSERT_TRUE(poll_until(
      [&](Completion& o) { return mesh[2][1][0]->poll_rx(o); }, c));
  EXPECT_EQ(rx, msg);
}

// ------------------------------------------------------------- endpoints

TEST(Endpoint, ParsesAndRoundTripsSocketUris) {
  const Endpoint t = Endpoint::parse("tcp://127.0.0.1:7777");
  EXPECT_EQ(t.scheme, Endpoint::Scheme::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 7777);
  EXPECT_EQ(t.uri(), "tcp://127.0.0.1:7777");
  const Endpoint u = Endpoint::parse("uds:///tmp/x.sock");
  EXPECT_EQ(u.scheme, Endpoint::Scheme::kUds);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.uri(), "uds:///tmp/x.sock");
  EXPECT_EQ(Endpoint::parse("shmem://").scheme, Endpoint::Scheme::kShmem);
  EXPECT_EQ(Endpoint::parse("sim://").scheme, Endpoint::Scheme::kSim);
}

TEST(Endpoint, RejectsJunkUris) {
  EXPECT_THROW((void)Endpoint::parse(""), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("carrier-pigeon://x"),
               std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("tcp://"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("tcp://host"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("tcp://host:notaport"),
               std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("tcp://host:99999"),
               std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("uds://"), std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("uds://relative/path"),
               std::invalid_argument);
  EXPECT_THROW((void)Endpoint::parse("shmem://an-address"),
               std::invalid_argument);
}

}  // namespace
}  // namespace piom::transport
