// Transport-backend tests: the shmem channel's ring/backpressure/completion
// protocol, the ITransport factory faces, BackendPolicy validation, and
// mixed-backend (hybrid) gates — eager on the fast rail, bulk striped
// across heterogeneous rails.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "nmad/request.hpp"
#include "nmad/session.hpp"
#include "simnet/fabric.hpp"
#include "transport/channel.hpp"
#include "transport/shmem.hpp"
#include "util/timing.hpp"

namespace piom::transport {
namespace {

TEST(BackendNames, AreStable) {
  EXPECT_STREQ(backend_name(Backend::kSimnet), "simnet");
  EXPECT_STREQ(backend_name(Backend::kShmem), "shmem");
  EXPECT_STREQ(pair_wiring_name(PairWiring::kSimnet), "simnet");
  EXPECT_STREQ(pair_wiring_name(PairWiring::kShmem), "shmem");
  EXPECT_STREQ(pair_wiring_name(PairWiring::kHybrid), "hybrid");
}

TEST(ShmemChannel, BasicSendRecvRoundTrip) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("pair");
  EXPECT_EQ(a->backend(), Backend::kShmem);
  EXPECT_EQ(a->peer(), b);
  EXPECT_EQ(b->peer(), a);
  EXPECT_EQ(a->name(), "pair.a");

  char rx[16] = {};
  b->post_recv(rx, sizeof(rx), 7);
  a->post_send("hello", 6, 9);

  Completion c{};
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_EQ(c.kind, Completion::Kind::kRecv);
  EXPECT_EQ(c.wrid, 7u);
  EXPECT_EQ(c.bytes, 6u);
  EXPECT_STREQ(rx, "hello");

  ASSERT_TRUE(a->poll_tx(c));
  EXPECT_EQ(c.kind, Completion::Kind::kSend);
  EXPECT_EQ(c.wrid, 9u);

  EXPECT_EQ(a->stats().packets_tx, 1u);
  EXPECT_EQ(a->stats().bytes_tx, 6u);
  EXPECT_EQ(b->stats().packets_rx, 1u);
  EXPECT_EQ(b->stats().bytes_rx, 6u);
}

TEST(ShmemChannel, ZeroAndOneByteMessages) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("tiny");
  char rx0 = 'x', rx1 = 0;
  b->post_recv(&rx0, 1, 1);
  b->post_recv(&rx1, 1, 2);
  a->post_send(nullptr, 0, 10);  // zero-byte: no payload to read at all
  const char one = 'Z';
  a->post_send(&one, 1, 11);

  Completion c{};
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_EQ(c.bytes, 0u);
  EXPECT_EQ(rx0, 'x');  // untouched
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_EQ(c.bytes, 1u);
  EXPECT_EQ(rx1, 'Z');
  ASSERT_TRUE(a->poll_tx(c));
  ASSERT_TRUE(a->poll_tx(c));
  EXPECT_FALSE(a->poll_tx(c));
}

TEST(ShmemChannel, StagedArrivalDeliveredToLatePostedBuffer) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("late");
  const char payload[] = "buffered";
  a->post_send(payload, sizeof(payload), 1);
  // Sender completes without the receiver ever posting: the arrival is
  // staged (driver-style copy), releasing the descriptor.
  Completion c{};
  ASSERT_TRUE(a->poll_tx(c));
  char rx[16] = {};
  b->post_recv(rx, sizeof(rx), 2);
  ASSERT_TRUE(b->poll_rx(c));
  EXPECT_STREQ(rx, "buffered");
}

TEST(ShmemChannel, SendCompletesWithoutReceiverHostPolling) {
  // The DMA property caller-driven engines rely on: only the *sender*
  // polls; delivery and completion must still happen.
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("dma");
  char rx[8] = {};
  b->post_recv(rx, sizeof(rx), 5);
  a->post_send("ping", 5, 6);
  Completion c{};
  ASSERT_TRUE(a->poll_tx(c));  // no b->poll_rx() before this
  EXPECT_EQ(c.wrid, 6u);
  EXPECT_STREQ(rx, "ping");  // already landed in the posted buffer
}

TEST(ShmemChannel, RingFullBackpressuresWithoutDeadlock) {
  ShmemConfig config;
  config.ring_slots = 4;
  ShmemTransport transport(config);
  auto [a, b] = transport.create_channel_pair("full");
  constexpr int kMsgs = 64;
  std::vector<uint32_t> payloads(kMsgs);
  std::iota(payloads.begin(), payloads.end(), 100u);
  for (int i = 0; i < kMsgs; ++i) {
    a->post_send(&payloads[static_cast<std::size_t>(i)], sizeof(uint32_t),
                 static_cast<uint64_t>(i));
  }
  // 4-slot ring, 64 posts, receiver idle: the excess must be spilled, not
  // dropped, and the sender must not block.
  EXPECT_GT(a->tx_backlog(), 0u);

  // Drain: every message arrives, in order, and every send completes.
  Completion c{};
  for (int i = 0; i < kMsgs; ++i) {
    uint32_t rx = 0;
    b->post_recv(&rx, sizeof(rx), static_cast<uint64_t>(1000 + i));
    while (!b->poll_rx(c)) {
    }
    EXPECT_EQ(c.wrid, static_cast<uint64_t>(1000 + i));
    EXPECT_EQ(rx, payloads[static_cast<std::size_t>(i)]);
  }
  int completions = 0;
  while (completions < kMsgs) {
    if (a->poll_tx(c)) ++completions;
  }
  EXPECT_EQ(a->tx_backlog(), 0u);
  EXPECT_EQ(a->stats().packets_tx, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(b->stats().packets_rx, static_cast<uint64_t>(kMsgs));
}

TEST(ShmemChannel, RdmaReadIsDirectAndCounted) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("rdma");
  std::vector<uint8_t> remote(4096);
  std::iota(remote.begin(), remote.end(), 0);
  std::vector<uint8_t> local(4096, 0);
  a->post_rdma_read(local.data(), remote.data(), local.size(), 42);
  Completion c{};
  ASSERT_TRUE(a->poll_tx(c));  // synchronous: completion is already there
  EXPECT_EQ(c.kind, Completion::Kind::kRdmaRead);
  EXPECT_EQ(c.wrid, 42u);
  EXPECT_EQ(c.bytes, local.size());
  EXPECT_EQ(local, remote);
  EXPECT_EQ(b->stats().rdma_reads_served, 1u);
}

TEST(ShmemChannel, QuiesceSettlesBothDirections) {
  ShmemTransport transport;
  auto [a, b] = transport.create_channel_pair("quiet");
  const char ping[] = "ping", pong[] = "pong";
  a->post_send(ping, sizeof(ping), 1);
  b->post_send(pong, sizeof(pong), 2);
  a->quiesce();
  b->quiesce();
  // Nothing in flight afterwards; completions are still pollable.
  EXPECT_EQ(a->tx_backlog(), 0u);
  Completion c{};
  EXPECT_TRUE(a->poll_tx(c));
  EXPECT_TRUE(b->poll_tx(c));
}

TEST(ShmemChannel, ReportsFastRailProperties) {
  ShmemConfig config;
  config.bandwidth_GBps = 12.5;
  config.latency_us = 0.2;
  ShmemTransport transport(config);
  auto [a, b] = transport.create_channel_pair("props");
  EXPECT_DOUBLE_EQ(a->bandwidth_GBps(), 12.5);
  EXPECT_DOUBLE_EQ(b->latency_us(), 0.2);
  // Default config: bandwidth is measured host memcpy throughput, floored
  // above the default NIC link model (the fast-rail invariant holds even
  // under sanitizer-instrumented memcpy).
  EXPECT_GE(measured_memcpy_GBps(), 4.0);
  EXPECT_LE(measured_memcpy_GBps(), 500.0);
}

TEST(Transports, FactoryFacesAgree) {
  simnet::Fabric fabric(0.05);
  ITransport& nic_side = fabric;
  ITransport& shm_side = fabric.shmem();
  EXPECT_EQ(nic_side.backend(), Backend::kSimnet);
  EXPECT_EQ(shm_side.backend(), Backend::kShmem);
  auto [na, nb] = nic_side.create_channel_pair("n");
  auto [sa, sb] = shm_side.create_channel_pair("s");
  EXPECT_EQ(na->backend(), Backend::kSimnet);
  EXPECT_EQ(sa->backend(), Backend::kShmem);
  EXPECT_EQ(na->peer(), nb);
  EXPECT_EQ(sa->peer(), sb);
  EXPECT_EQ(nic_side.channel_count(), 2u);
  EXPECT_EQ(shm_side.channel_count(), 2u);
}

// ---------------------------------------------------------- BackendPolicy

TEST(BackendPolicy, SelectsIntraVsInterByNode) {
  BackendPolicy policy;
  policy.node_of = {0, 0, 1, 1};
  policy.validate(4);
  EXPECT_EQ(policy.wiring(0, 1), PairWiring::kShmem);
  EXPECT_EQ(policy.wiring(2, 3), PairWiring::kShmem);
  EXPECT_EQ(policy.wiring(0, 2), PairWiring::kSimnet);
  EXPECT_EQ(policy.wiring(1, 3), PairWiring::kSimnet);
  // Empty placement: everything inter-node.
  BackendPolicy empty;
  empty.validate(4);
  EXPECT_EQ(empty.wiring(0, 1), PairWiring::kSimnet);
}

TEST(BackendPolicy, RejectsMalformedPolicies) {
  BackendPolicy wrong_size;
  wrong_size.node_of = {0, 0, 1};
  EXPECT_THROW(wrong_size.validate(4), std::invalid_argument);

  BackendPolicy negative;
  negative.node_of = {0, -1};
  EXPECT_THROW(negative.validate(2), std::invalid_argument);

  BackendPolicy cross_node_shmem;
  cross_node_shmem.node_of = {0, 1};
  cross_node_shmem.inter = PairWiring::kShmem;
  EXPECT_THROW(cross_node_shmem.validate(2), std::invalid_argument);
  cross_node_shmem.inter = PairWiring::kHybrid;
  EXPECT_THROW(cross_node_shmem.validate(2), std::invalid_argument);
}

class TransportEnvGuard {
 public:
  TransportEnvGuard() {
    const char* v = std::getenv("PIOM_TRANSPORT");
    if (v != nullptr) saved_ = v;
  }
  ~TransportEnvGuard() {
    if (saved_.empty()) {
      unsetenv("PIOM_TRANSPORT");
    } else {
      setenv("PIOM_TRANSPORT", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(BackendPolicy, FromEnvResolvesBackends) {
  TransportEnvGuard guard;
  unsetenv("PIOM_TRANSPORT");
  EXPECT_TRUE(BackendPolicy::from_env(4).node_of.empty());

  setenv("PIOM_TRANSPORT", "simnet", 1);
  EXPECT_TRUE(BackendPolicy::from_env(4).node_of.empty());

  setenv("PIOM_TRANSPORT", "shmem", 1);
  BackendPolicy shm = BackendPolicy::from_env(4);
  ASSERT_EQ(shm.node_of.size(), 4u);
  EXPECT_EQ(shm.wiring(0, 3), PairWiring::kShmem);

  setenv("PIOM_TRANSPORT", "hybrid", 1);
  BackendPolicy hyb = BackendPolicy::from_env(3);
  EXPECT_EQ(hyb.wiring(1, 2), PairWiring::kHybrid);

  setenv("PIOM_TRANSPORT", "carrier-pigeon", 1);
  EXPECT_THROW((void)BackendPolicy::from_env(2), std::invalid_argument);
}

// ------------------------------------------------------------- mixed mesh

TEST(FabricMesh, PolicyWiresShmemIntraNodeAndNicsAcross) {
  simnet::Fabric fabric(0.05);
  BackendPolicy policy;
  policy.node_of = {0, 0, 1, 1};
  const simnet::Fabric::MeshWiring mesh =
      fabric.create_full_mesh(4, 1, {}, "mix", policy);
  // Same-node pairs: one shmem rail. Cross-node pairs: one NIC rail.
  ASSERT_EQ(mesh[0][1].size(), 1u);
  EXPECT_EQ(mesh[0][1][0]->backend(), Backend::kShmem);
  ASSERT_EQ(mesh[2][3].size(), 1u);
  EXPECT_EQ(mesh[2][3][0]->backend(), Backend::kShmem);
  for (const auto& [i, j] :
       {std::pair{0, 2}, std::pair{0, 3}, std::pair{1, 2}, std::pair{1, 3}}) {
    ASSERT_EQ(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                  .size(),
              1u);
    EXPECT_EQ(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                  [0]->backend(),
              Backend::kSimnet);
  }
  // Peering holds across backends.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_EQ(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                    [0]->peer(),
                mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]
                    [0]);
    }
  }
  // 4 cross-node pairs x 1 rail x 2 NICs; 2 same-node pairs x 2 endpoints.
  EXPECT_EQ(fabric.nic_count(), 8u);
  EXPECT_EQ(fabric.shmem().channel_count(), 4u);
}

TEST(FabricMesh, HybridPairsPutTheFastRailFirst) {
  simnet::Fabric fabric(0.05);
  BackendPolicy policy;
  policy.node_of = {0, 0};
  policy.intra = PairWiring::kHybrid;
  const simnet::Fabric::MeshWiring mesh =
      fabric.create_full_mesh(2, 2, {}, "hyb", policy);
  ASSERT_EQ(mesh[0][1].size(), 3u);  // shmem + 2 NIC rails
  EXPECT_EQ(mesh[0][1][0]->backend(), Backend::kShmem);
  EXPECT_EQ(mesh[0][1][1]->backend(), Backend::kSimnet);
  EXPECT_EQ(mesh[0][1][2]->backend(), Backend::kSimnet);
  // The fast rail is actually faster on both axes the strategy reads.
  EXPECT_LT(mesh[0][1][0]->latency_us(), mesh[0][1][1]->latency_us());
  EXPECT_GT(mesh[0][1][0]->bandwidth_GBps(), mesh[0][1][1]->bandwidth_GBps());
}

TEST(FabricMesh, RejectsMalformedPolicyBeforeWiringAnything) {
  simnet::Fabric fabric(0.05);
  BackendPolicy bad;
  bad.node_of = {0};  // wrong size for a 3-node mesh
  EXPECT_THROW(static_cast<void>(fabric.create_full_mesh(3, 1, {}, "m", bad)),
               std::invalid_argument);
  EXPECT_EQ(fabric.nic_count(), 0u);
  EXPECT_EQ(fabric.shmem().channel_count(), 0u);
}

// ----------------------------------------------- heterogeneous-rail gates

/// Pump both gates until `done` (progress is caller-driven here).
template <typename DoneFn>
void pump(nmad::Gate& ga, nmad::Gate& gb, DoneFn done) {
  const int64_t deadline = util::now_ns() + 20'000'000'000;  // 20 s safety
  while (!done()) {
    ga.progress();
    gb.progress();
    ASSERT_LT(util::now_ns(), deadline) << "gate progress stalled";
  }
}

TEST(HybridGate, EagerRidesShmemBulkStripesAcrossBothRails) {
  // Pin the shmem bandwidth so the stripe split (and thus the NIC rail's
  // share clearing stripe_min_chunk) is deterministic across hosts.
  ShmemConfig shmem;
  shmem.bandwidth_GBps = 10.0;
  simnet::Fabric fabric(0.05, shmem);
  auto [sa, sb] = fabric.shmem().create_channel_pair("fast");
  auto [na, nb] = fabric.create_link("slow");

  nmad::SessionConfig config;
  config.strategy.stripe_min_chunk = 16 * 1024;
  nmad::Session session_a("a", config), session_b("b", config);
  nmad::Gate& ga = session_a.create_gate({sa, na});
  nmad::Gate& gb = session_b.create_gate({sb, nb});

  // Small message: the strategy must pick the low-latency shmem rail.
  const uint64_t nic_tx_before = na->stats().packets_tx;
  nmad::SendRequest sreq;
  nmad::RecvRequest rreq;
  int32_t small = 4242, got = 0;
  gb.irecv(rreq, 1, &got, sizeof(got));
  ga.isend(sreq, 1, &small, sizeof(small));
  pump(ga, gb, [&] { return sreq.completed() && rreq.completed(); });
  EXPECT_EQ(got, 4242);
  EXPECT_GE(sa->stats().packets_tx, 1u);
  EXPECT_EQ(na->stats().packets_tx, nic_tx_before);  // NIC rail untouched

  // Large message: rendezvous pull striped across BOTH rails by bandwidth
  // (shmem takes the lion's share, the NIC rail a >= min_chunk slice).
  std::vector<uint8_t> big(1u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 13);
  }
  std::vector<uint8_t> rx(big.size(), 0);
  nmad::SendRequest big_s;
  nmad::RecvRequest big_r;
  gb.irecv(big_r, 2, rx.data(), rx.size());
  ga.isend(big_s, 2, big.data(), big.size());
  pump(ga, gb, [&] { return big_s.completed() && big_r.completed(); });
  EXPECT_EQ(rx, big);
  // The receiver pulls from the sender's memory: the *sender-side*
  // endpoints serve the reads, one chunk per rail.
  EXPECT_GE(sa->stats().rdma_reads_served, 1u);  // fast-rail chunk
  EXPECT_GE(na->stats().rdma_reads_served, 1u);  // NIC-rail chunk
}

}  // namespace
}  // namespace piom::transport
