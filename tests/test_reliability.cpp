// Fault injection + reliability layer tests: lossy links drop packets;
// reliable sessions detect the loss, retransmit, and deduplicate until
// every message lands intact.
#include <gtest/gtest.h>

#include <deque>
#include <numeric>
#include <vector>

#include "nmad/session.hpp"
#include "transport/cluster.hpp"
#include "mpi/world.hpp"
#include "util/timing.hpp"

#include <atomic>
#include <thread>

namespace piom::nmad {
namespace {

struct LossyPair {
  transport::Cluster cluster;
  Session sa;
  Session sb;
  Gate* ga = nullptr;
  Gate* gb = nullptr;
  transport::IChannel* na = nullptr;
  transport::IChannel* nb = nullptr;

  explicit LossyPair(double drop_rate, SessionConfig cfg)
      : cluster(transport::ClusterConfig{0.05}), sa("A", cfg), sb("B", cfg) {
    simnet::LinkModel link;
    link.drop_rate = drop_rate;
    auto [a, b] = cluster.create_sim_link("lossy", link);
    na = a;
    nb = b;
    ga = &sa.create_gate({a});
    gb = &sb.create_gate({b});
  }
};

SessionConfig reliable_cfg() {
  SessionConfig cfg;
  cfg.reliable = true;
  cfg.rto_us = 50;  // aggressive timer: tests run at 20x time compression
  return cfg;
}

/// Progress both sides until pred() or timeout.
template <typename Pred>
bool progress_until(LossyPair& p, Pred&& pred,
                    int64_t timeout_ns = 10'000'000'000) {
  const int64_t deadline = util::now_ns() + timeout_ns;
  while (util::now_ns() < deadline) {
    p.sa.progress();
    p.sb.progress();
    if (pred()) return true;
  }
  return pred();
}

TEST(FaultInjection, DropsAreObservableAtNicLevel) {
  transport::Cluster cluster(transport::ClusterConfig{0.02});
  simnet::LinkModel link;
  link.drop_rate = 0.5;
  auto [a, b] = cluster.create_sim_link("half", link);
  char rx[16];
  simnet::Completion c;
  constexpr int kSends = 200;
  for (int i = 0; i < kSends; ++i) b->post_recv(rx, sizeof(rx), 1);
  for (int i = 0; i < kSends; ++i) a->post_send("x", 2, 2);
  a->quiesce();
  const auto sa = a->stats();
  const auto sb = b->stats();
  // The sender sees every packet as transmitted (TX completions fire
  // regardless of loss); roughly half actually arrive.
  EXPECT_EQ(sa.packets_tx, kSends);
  EXPECT_GT(sa.packets_dropped, kSends / 5);
  EXPECT_LT(sa.packets_dropped, kSends * 4 / 5);
  EXPECT_EQ(sb.packets_rx + sa.packets_dropped, kSends);
}

TEST(FaultInjection, DropPatternIsDeterministic) {
  auto run = [] {
    transport::Cluster cluster(transport::ClusterConfig{0.02});
    simnet::LinkModel link;
    link.drop_rate = 0.3;
    auto [a, b] = cluster.create_sim_link("det", link);
    char rx[8];
    for (int i = 0; i < 100; ++i) b->post_recv(rx, sizeof(rx), 1);
    for (int i = 0; i < 100; ++i) a->post_send("y", 2, 2);
    a->quiesce();
    return a->stats().packets_dropped;
  };
  EXPECT_EQ(run(), run());
}

TEST(Reliability, EagerMessagesSurviveLoss) {
  LossyPair p(0.3, reliable_cfg());
  constexpr int kMsgs = 100;
  std::deque<SendRequest> sreqs(kMsgs);
  std::deque<RecvRequest> rreqs(kMsgs);
  std::vector<std::array<char, 32>> bufs(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    p.gb->irecv(rreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                bufs[static_cast<std::size_t>(i)].data(), 32);
  }
  std::vector<std::string> payloads;
  for (int i = 0; i < kMsgs; ++i) payloads.push_back("msg-" + std::to_string(i));
  for (int i = 0; i < kMsgs; ++i) {
    p.ga->isend(sreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                payloads[static_cast<std::size_t>(i)].data(),
                payloads[static_cast<std::size_t>(i)].size() + 1);
  }
  ASSERT_TRUE(progress_until(p, [&] {
    for (int i = 0; i < kMsgs; ++i) {
      if (!rreqs[static_cast<std::size_t>(i)].completed() ||
          !sreqs[static_cast<std::size_t>(i)].completed()) {
        return false;
      }
    }
    return true;
  }));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_STREQ(bufs[static_cast<std::size_t>(i)].data(),
                 payloads[static_cast<std::size_t>(i)].c_str());
  }
  // The fault injector really fired and the layer really repaired it.
  EXPECT_GT(p.na->stats().packets_dropped + p.nb->stats().packets_dropped, 0u);
  EXPECT_GT(p.ga->stats().retransmits + p.gb->stats().retransmits, 0u);
}

TEST(Reliability, RendezvousSurvivesLoss) {
  // RTS and FIN control packets are droppable; the RDMA data path is not.
  LossyPair p(0.4, reliable_cfg());
  std::vector<uint8_t> data(256 * 1024);
  std::iota(data.begin(), data.end(), 7);
  std::vector<uint8_t> out(data.size(), 0);
  SendRequest sreq;
  RecvRequest rreq;
  p.gb->irecv(rreq, 3, out.data(), out.size());
  p.ga->isend(sreq, 3, data.data(), data.size());
  ASSERT_TRUE(progress_until(p, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_EQ(out, data);
}

TEST(Reliability, DuplicatesAreFiltered) {
  // Heavy loss forces retransmissions whose originals sometimes did arrive
  // (the ack was lost instead): the receiver must drop those duplicates.
  LossyPair p(0.4, reliable_cfg());
  constexpr int kMsgs = 60;
  std::deque<SendRequest> sreqs(kMsgs);
  std::deque<RecvRequest> rreqs(kMsgs);
  std::vector<int32_t> out(kMsgs, -1);
  for (int i = 0; i < kMsgs; ++i) {
    p.gb->irecv(rreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                &out[static_cast<std::size_t>(i)], sizeof(int32_t));
  }
  for (int i = 0; i < kMsgs; ++i) {
    const int32_t v = i * 3;
    p.ga->isend(sreqs[static_cast<std::size_t>(i)], static_cast<Tag>(i), &v,
                sizeof(v));
    // Drive progress inside the loop so the value (stack copy) stays valid:
    // wait for this send's ack before reusing the stack slot.
    ASSERT_TRUE(progress_until(p, [&] {
      return sreqs[static_cast<std::size_t>(i)].completed();
    }));
  }
  ASSERT_TRUE(progress_until(p, [&] {
    for (const auto& r : rreqs) {
      if (!r.completed()) return false;
    }
    return true;
  }));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 3);
  }
  // With 40% loss there must have been duplicate deliveries to filter.
  EXPECT_GT(p.ga->stats().retransmits, 0u);
}

TEST(Reliability, CleanLinkHasNoRetransmits) {
  // Generous RTO: with the aggressive test RTO a scheduler hiccup longer
  // than 50us can legally fire a (harmless) spurious retransmission, which
  // is exactly what this test asserts the absence of.
  SessionConfig cfg = reliable_cfg();
  cfg.rto_us = 200'000;
  LossyPair p(0.0, cfg);
  SendRequest sreq;
  RecvRequest rreq;
  char buf[16] = {};
  p.gb->irecv(rreq, 1, buf, sizeof(buf));
  p.ga->isend(sreq, 1, "clean", 6);
  ASSERT_TRUE(progress_until(p, [&] {
    return sreq.completed() && rreq.completed();
  }));
  EXPECT_STREQ(buf, "clean");
  EXPECT_EQ(p.ga->stats().retransmits, 0u);
  EXPECT_EQ(p.gb->stats().duplicates_dropped, 0u);
  // Acks still flow (reliable mode always acknowledges).
  EXPECT_GT(p.gb->stats().acks_sent, 0u);
}

TEST(Reliability, SendCompletionMeansAcknowledged) {
  // In reliable mode a completed send implies the peer saw the packet:
  // gate stats on the receiving side must already count it.
  LossyPair p(0.2, reliable_cfg());
  SendRequest sreq;
  RecvRequest rreq;
  char buf[8] = {};
  p.gb->irecv(rreq, 9, buf, sizeof(buf));
  p.ga->isend(sreq, 9, "ackd", 5);
  ASSERT_TRUE(progress_until(p, [&] { return sreq.completed(); }));
  EXPECT_GE(p.gb->stats().eager_recv, 1u);
}

TEST(Reliability, StressBidirectionalUnderLoss) {
  LossyPair p(0.25, reliable_cfg());
  constexpr int kMsgs = 50;
  std::deque<SendRequest> sa(kMsgs), sb(kMsgs);
  std::deque<RecvRequest> ra(kMsgs), rb(kMsgs);
  std::vector<std::array<char, 16>> bufs_a(kMsgs), bufs_b(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    p.gb->irecv(rb[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                bufs_b[static_cast<std::size_t>(i)].data(), 16);
    p.ga->irecv(ra[static_cast<std::size_t>(i)], static_cast<Tag>(i),
                bufs_a[static_cast<std::size_t>(i)].data(), 16);
  }
  for (int i = 0; i < kMsgs; ++i) {
    p.ga->isend(sa[static_cast<std::size_t>(i)], static_cast<Tag>(i), "ping", 5);
    p.gb->isend(sb[static_cast<std::size_t>(i)], static_cast<Tag>(i), "pong", 5);
  }
  ASSERT_TRUE(progress_until(p, [&] {
    for (int i = 0; i < kMsgs; ++i) {
      if (!ra[static_cast<std::size_t>(i)].completed() ||
          !rb[static_cast<std::size_t>(i)].completed() ||
          !sa[static_cast<std::size_t>(i)].completed() ||
          !sb[static_cast<std::size_t>(i)].completed()) {
        return false;
      }
    }
    return true;
  }));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_STREQ(bufs_a[static_cast<std::size_t>(i)].data(), "pong");
    EXPECT_STREQ(bufs_b[static_cast<std::size_t>(i)].data(), "ping");
  }
}


TEST(ReliabilityWorld, FullStackOverLossyLinkAllEngines) {
  // End to end: mini-MPI worlds on a lossy fabric with the reliability
  // layer on — every engine (background or caller-driven progress) must
  // deliver everything intact.
  for (const auto kind :
       {mpi::EngineKind::kPioman, mpi::EngineKind::kMvapichLike,
        mpi::EngineKind::kOpenMpiLike}) {
    mpi::WorldConfig cfg;
    cfg.engine = kind;
    cfg.time_scale = 0.05;
    cfg.pioman.workers = 2;
    cfg.link.drop_rate = 0.25;
    cfg.session.reliable = true;
    cfg.session.rto_us = 100;
    mpi::World world(cfg);
    constexpr int kMsgs = 30;
    std::atomic<bool> sender_done{false};
    std::thread receiver([&] {
      int64_t v = -1;
      for (int i = 0; i < kMsgs; ++i) {
        world.comm(1).recv(0, static_cast<Tag>(i), &v, sizeof(v));
        EXPECT_EQ(v, i * 7) << mpi::engine_kind_name(kind);
      }
      // Keep rank 1's protocol engine turning until the sender has drained:
      // if the last data packet's ack is dropped, the retransmitted
      // duplicate is only re-acknowledged when this rank polls, and with
      // caller-driven progress nobody else polls once recv() has returned
      // (the paper's very argument for dedicated progression engines).
      while (!sender_done.load(std::memory_order_acquire)) {
        world.engine(1).progress();
        std::this_thread::yield();
      }
    });
    for (int i = 0; i < kMsgs; ++i) {
      const int64_t v = i * 7;
      world.comm(0).send(1, static_cast<Tag>(i), &v, sizeof(v));
    }
    sender_done.store(true, std::memory_order_release);
    receiver.join();
  }
}

TEST(ReliabilityWorld, RendezvousOverLossyWorld) {
  mpi::WorldConfig cfg;
  cfg.engine = mpi::EngineKind::kPioman;
  cfg.time_scale = 0.05;
  cfg.pioman.workers = 2;
  cfg.link.drop_rate = 0.3;
  cfg.session.reliable = true;
  cfg.session.rto_us = 100;
  mpi::World world(cfg);
  std::vector<uint8_t> data(256 * 1024);
  std::iota(data.begin(), data.end(), 9);
  std::vector<uint8_t> out(data.size(), 0);
  std::thread receiver(
      [&] { world.comm(1).recv(0, 1, out.data(), out.size()); });
  world.comm(0).send(1, 1, data.data(), data.size());
  receiver.join();
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace piom::nmad
