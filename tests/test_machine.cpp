// Tests for the topology model, including the paper's two testbeds.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "topo/machine.hpp"

namespace piom::topo {
namespace {

TEST(Machine, BorderlineShape) {
  // Table I testbed: 4-socket dual-core, no shared L3.
  const Machine m = Machine::borderline();
  EXPECT_EQ(m.ncpus(), 8);
  EXPECT_EQ(m.root().level, Level::kMachine);
  // Levels: 1 machine + 4 chips + 8 cores = 13 nodes (no numa/cache).
  EXPECT_EQ(m.nnodes(), 13u);
  int chips = 0, cores = 0;
  for (const auto& n : m.nodes()) {
    if (n->level == Level::kChip) ++chips;
    if (n->level == Level::kCore) ++cores;
    EXPECT_NE(n->level, Level::kNuma);
    EXPECT_NE(n->level, Level::kCache);
  }
  EXPECT_EQ(chips, 4);
  EXPECT_EQ(cores, 8);
}

TEST(Machine, KwakShape) {
  // Table II / Fig 3 testbed: 4 NUMA nodes x quad-core chip with shared L3.
  const Machine m = Machine::kwak();
  EXPECT_EQ(m.ncpus(), 16);
  int numas = 0, chips = 0, caches = 0, cores = 0;
  for (const auto& n : m.nodes()) {
    switch (n->level) {
      case Level::kNuma: ++numas; break;
      case Level::kChip: ++chips; break;
      case Level::kCache: ++caches; break;
      case Level::kCore: ++cores; break;
      default: break;
    }
  }
  EXPECT_EQ(numas, 4);
  EXPECT_EQ(chips, 4);
  EXPECT_EQ(caches, 4);
  EXPECT_EQ(cores, 16);
  // Fig 3: NUMA node #1 covers cores 0-3, etc.
  const TopoNode& numa0 = *m.root().children[0];
  EXPECT_EQ(numa0.level, Level::kNuma);
  EXPECT_EQ(numa0.cpus, CpuSet::range(0, 4));
}

TEST(Machine, FlatShape) {
  const Machine m = Machine::flat(6);
  EXPECT_EQ(m.ncpus(), 6);
  EXPECT_EQ(m.nnodes(), 7u);
  EXPECT_EQ(m.root().children.size(), 6u);
}

TEST(Machine, RejectsBadShapes) {
  EXPECT_THROW(Machine::flat(0), std::invalid_argument);
  EXPECT_THROW(Machine::symmetric(0, 1, 1, false), std::invalid_argument);
  EXPECT_THROW(Machine::symmetric(1, 1, 0, true), std::invalid_argument);
  EXPECT_THROW(Machine::symmetric(64, 4, 4, false), std::invalid_argument);
}

TEST(Machine, CoreNodeLookup) {
  const Machine m = Machine::kwak();
  for (int c = 0; c < m.ncpus(); ++c) {
    const TopoNode& n = m.core_node(c);
    EXPECT_EQ(n.level, Level::kCore);
    EXPECT_EQ(n.cpus, CpuSet::single(c));
  }
  EXPECT_THROW(static_cast<void>(m.core_node(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(m.core_node(16)), std::out_of_range);
}

TEST(Machine, NodeCoveringPicksSmallest) {
  const Machine m = Machine::kwak();
  // Single core -> per-core node.
  EXPECT_EQ(m.node_covering(CpuSet::single(5)).level, Level::kCore);
  // Cores 0-3 share the L3 -> cache node (deepest level containing them).
  const TopoNode& cache = m.node_covering(CpuSet::range(0, 4));
  EXPECT_EQ(cache.level, Level::kCache);
  // Cores 0-7 span two NUMA nodes -> machine.
  EXPECT_EQ(m.node_covering(CpuSet::range(0, 8)).level, Level::kMachine);
  // Two cores of the same chip -> cache level on kwak.
  EXPECT_EQ(m.node_covering(CpuSet::parse("4-5")).level, Level::kCache);
  // Two cores of different NUMA nodes -> machine.
  EXPECT_EQ(m.node_covering(CpuSet::parse("3,4")).level, Level::kMachine);
  // Empty set -> global queue (root).
  EXPECT_EQ(&m.node_covering(CpuSet{}), &m.root());
}

TEST(Machine, BorderlineNodeCovering) {
  const Machine m = Machine::borderline();
  EXPECT_EQ(m.node_covering(CpuSet::parse("0-1")).level, Level::kChip);
  EXPECT_EQ(m.node_covering(CpuSet::parse("1,2")).level, Level::kMachine);
}

TEST(Machine, PathToRootOrder) {
  const Machine m = Machine::kwak();
  const auto path = m.path_to_root(9);
  // core -> cache -> chip -> numa -> machine.
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path[0]->level, Level::kCore);
  EXPECT_EQ(path[1]->level, Level::kCache);
  EXPECT_EQ(path[2]->level, Level::kChip);
  EXPECT_EQ(path[3]->level, Level::kNuma);
  EXPECT_EQ(path[4]->level, Level::kMachine);
  for (const TopoNode* n : path) EXPECT_TRUE(n->cpus.test(9));
}

TEST(Machine, SiblingsSharingCache) {
  const Machine kwak = Machine::kwak();
  // On kwak, core 5's cache group is cores 4-7.
  EXPECT_EQ(kwak.siblings_sharing_cache(5), CpuSet::range(4, 8));
  const Machine bl = Machine::borderline();
  // On borderline there is no cache level: the chip group (pairs).
  EXPECT_EQ(bl.siblings_sharing_cache(3), CpuSet::range(2, 4));
}

TEST(Machine, DetectDoesNotCrash) {
  const Machine m = Machine::detect();
  EXPECT_GE(m.ncpus(), 1);
  for (int c = 0; c < m.ncpus(); ++c) {
    EXPECT_EQ(m.core_node(c).cpus, CpuSet::single(c));
  }
}

TEST(Machine, ToStringMentionsEveryLevel) {
  const std::string s = Machine::kwak().to_string();
  EXPECT_NE(s.find("machine #0"), std::string::npos);
  EXPECT_NE(s.find("numa #2"), std::string::npos);
  EXPECT_NE(s.find("cache #3"), std::string::npos);
  EXPECT_NE(s.find("core #15"), std::string::npos);
}


TEST(MachineSpec, Presets) {
  EXPECT_EQ(Machine::from_spec("borderline").ncpus(), 8);
  EXPECT_EQ(Machine::from_spec("kwak").ncpus(), 16);
  EXPECT_GE(Machine::from_spec("host").ncpus(), 1);
}

TEST(MachineSpec, FlatForm) {
  const Machine m = Machine::from_spec("flat:6");
  EXPECT_EQ(m.ncpus(), 6);
  EXPECT_EQ(m.nnodes(), 7u);
}

TEST(MachineSpec, SymmetricForm) {
  const Machine m = Machine::from_spec("numa=2,chips=2,cores=3,l3");
  EXPECT_EQ(m.ncpus(), 12);
  int caches = 0;
  for (const auto& n : m.nodes()) {
    if (n->level == Level::kCache) ++caches;
  }
  EXPECT_EQ(caches, 4);
  // Without l3 there is no cache level.
  const Machine m2 = Machine::from_spec("numa=2,chips=2,cores=3");
  for (const auto& n : m2.nodes()) {
    EXPECT_NE(n->level, Level::kCache);
  }
}

TEST(MachineSpec, RejectsJunk) {
  EXPECT_THROW(static_cast<void>(Machine::from_spec("")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("flat:0")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("bogus=2")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("cores")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("cores=-1")), std::invalid_argument);
  // Malformed flat: counts — empty, non-numeric, negative.
  EXPECT_THROW(static_cast<void>(Machine::from_spec("flat:")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("flat:abc")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("flat:-4")), std::invalid_argument);
  // Malformed key=value lists — zero values, missing key, missing value,
  // empty items from stray commas, unparsable numbers.
  EXPECT_THROW(static_cast<void>(Machine::from_spec("numa=0")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("=3")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("numa=")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("numa=x")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec(",")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("numa=2,,cores=3")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Machine::from_spec("qwerty")), std::invalid_argument);
}

TEST(MachineSpec, DegenerateButValidForms) {
  // "l3" alone is a legal symmetric() spelling: 1 NUMA x 1 chip x 1 core
  // with a cache level.
  EXPECT_EQ(Machine::from_spec("l3").ncpus(), 1);
  EXPECT_EQ(Machine::from_spec("cores=2").ncpus(), 2);
}

// Structural invariants that must hold for every machine shape.
class MachineInvariants : public ::testing::TestWithParam<int> {};

Machine make_param_machine(int idx) {
  switch (idx) {
    case 0: return Machine::borderline();
    case 1: return Machine::kwak();
    case 2: return Machine::flat(5);
    case 3: return Machine::symmetric(2, 2, 2, true);
    case 4: return Machine::symmetric(1, 1, 8, true);
    case 5: return Machine::symmetric(8, 2, 4, false);
    default: return Machine::flat(1);
  }
}

TEST_P(MachineInvariants, TreeIsConsistent) {
  const Machine m = make_param_machine(GetParam());
  // Root covers exactly [0, ncpus).
  EXPECT_EQ(m.root().cpus, CpuSet::first_n(m.ncpus()));
  std::set<int> core_ids;
  for (const auto& n : m.nodes()) {
    // Children partition the parent.
    if (!n->children.empty()) {
      CpuSet union_set;
      for (const TopoNode* c : n->children) {
        EXPECT_TRUE(n->cpus.contains(c->cpus));
        EXPECT_FALSE(union_set.intersects(c->cpus)) << "overlapping children";
        union_set |= c->cpus;
        EXPECT_EQ(c->parent, n.get());
        EXPECT_EQ(c->depth, n->depth + 1);
      }
      EXPECT_EQ(union_set, n->cpus) << "children must cover the parent";
    } else {
      EXPECT_EQ(n->level, Level::kCore);
      EXPECT_EQ(n->cpus.count(), 1);
      core_ids.insert(n->cpus.first());
    }
    // Levels strictly deepen along the tree.
    if (n->parent != nullptr) {
      EXPECT_GT(static_cast<int>(n->level), static_cast<int>(n->parent->level));
    }
  }
  EXPECT_EQ(core_ids.size(), static_cast<std::size_t>(m.ncpus()));
  // node_covering(single(c)) is the core node; path_to_root is monotone.
  for (int c = 0; c < m.ncpus(); ++c) {
    EXPECT_EQ(&m.node_covering(CpuSet::single(c)), &m.core_node(c));
    const auto path = m.path_to_root(c);
    EXPECT_EQ(path.front()->level, Level::kCore);
    EXPECT_EQ(path.back(), &m.root());
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_TRUE(path[i]->cpus.contains(path[i - 1]->cpus));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, MachineInvariants, ::testing::Range(0, 6));

}  // namespace
}  // namespace piom::topo
