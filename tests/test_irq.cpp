// Tests for preemptive (urgent) tasks and the IrqService — the paper's §VI
// future-work feature: tasks that run immediately even when every core is
// busy computing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/task_manager.hpp"
#include "sched/irq.hpp"
#include "sched/runtime.hpp"
#include "topo/machine.hpp"
#include "util/timing.hpp"

namespace piom::sched {
namespace {

TaskResult mark_time(void* arg) {
  static_cast<std::atomic<int64_t>*>(arg)->store(util::now_ns());
  return TaskResult::kDone;
}

TEST(UrgentTask, GoesToUrgentQueueNotHierarchy) {
  const topo::Machine m = topo::Machine::flat(2);
  TaskManager tm(m);
  std::atomic<int64_t> when{0};
  Task t;
  t.init(&mark_time, &when, topo::CpuSet::single(1), kTaskUrgent);
  tm.submit(&t);
  EXPECT_EQ(tm.urgent_pending_approx(), 1u);
  EXPECT_EQ(tm.global_queue().size_approx(), 0u);
  EXPECT_EQ(tm.queue_of(m.core_node(1)).size_approx(), 0u);
}

TEST(UrgentTask, RunUrgentIgnoresCpuSet) {
  const topo::Machine m = topo::Machine::flat(4);
  TaskManager tm(m);
  std::atomic<int64_t> when{0};
  Task t;
  t.init(&mark_time, &when, topo::CpuSet::single(3), kTaskUrgent);
  tm.submit(&t);
  // Core 0 is not in the cpuset, but preemptive semantics run it anyway.
  EXPECT_EQ(tm.run_urgent(0), 1);
  EXPECT_TRUE(t.completed());
  EXPECT_EQ(t.last_cpu.load(), 0);
}

TEST(UrgentTask, ScheduleServicesUrgentFirst) {
  const topo::Machine m = topo::Machine::flat(2);
  TaskManager tm(m);
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
    int id;
  };
  Ctx c1{&order, 1}, c2{&order, 2};
  auto fn = [](void* arg) {
    auto* c = static_cast<Ctx*>(arg);
    c->order->push_back(c->id);
    return TaskResult::kDone;
  };
  Task normal, urgent;
  normal.init(fn, &c1, topo::CpuSet::single(0), kTaskNone);
  urgent.init(fn, &c2, {}, kTaskUrgent);
  tm.submit(&normal);
  tm.submit(&urgent);
  tm.schedule(0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2) << "urgent task must run before hierarchy queues";
  EXPECT_EQ(order[1], 1);
}

TEST(UrgentTask, NotifierFires) {
  const topo::Machine m = topo::Machine::flat(1);
  TaskManager tm(m);
  std::atomic<int> notified{0};
  tm.set_urgent_notifier([&] { notified.fetch_add(1); });
  std::atomic<int64_t> when{0};
  Task t;
  t.init(&mark_time, &when, {}, kTaskUrgent);
  tm.submit(&t);
  EXPECT_EQ(notified.load(), 1);
  // Normal tasks do not fire the notifier.
  Task n;
  n.init(&mark_time, &when, {}, kTaskNone);
  tm.submit(&n);
  EXPECT_EQ(notified.load(), 1);
  tm.schedule(0);
}

TEST(IrqService, ExecutesUrgentTaskWhileAllCoresBusy) {
  // The discriminating scenario: every worker runs a CPU-hungry job, no
  // timer hook. A normal task would wait for a scheduling hole; the urgent
  // task must run within microseconds via the IRQ thread.
  const topo::Machine m = topo::Machine::flat(2);
  TaskManager tm(m);
  Runtime rt(m, tm);
  IrqService irq(tm);

  std::atomic<bool> stop{false};
  std::atomic<int> busy{0};
  for (int c = 0; c < 2; ++c) {
    rt.submit_job(c, [&] {
      busy.fetch_add(1);
      while (!stop.load(std::memory_order_acquire)) {
      }
    });
  }
  while (busy.load() < 2) std::this_thread::yield();

  std::atomic<int64_t> executed_at{0};
  Task t;
  t.init(&mark_time, &executed_at, {}, kTaskUrgent | kTaskNotify);
  const int64_t submitted_at = util::now_ns();
  tm.submit(&t);
  t.wait_done();
  stop.store(true);
  rt.quiesce();
  const double delay_us =
      static_cast<double>(executed_at.load() - submitted_at) * 1e-3;
  EXPECT_GT(irq.tasks_run(), 0u);
  EXPECT_LT(delay_us, 20'000.0) << "urgent task took " << delay_us << "us";
}

TEST(IrqService, StopIsIdempotentAndDrains) {
  const topo::Machine m = topo::Machine::flat(1);
  TaskManager tm(m);
  auto irq = std::make_unique<IrqService>(tm);
  std::atomic<int64_t> when{0};
  Task t;
  t.init(&mark_time, &when, {}, kTaskUrgent | kTaskNotify);
  tm.submit(&t);
  t.wait_done();
  irq->stop();
  irq->stop();
  irq.reset();
  SUCCEED();
}

TEST(IrqService, ManyUrgentTasksAllRun) {
  const topo::Machine m = topo::Machine::flat(2);
  TaskManager tm(m);
  IrqService irq(tm);
  std::atomic<int> hits{0};
  constexpr int kTasks = 500;
  std::deque<Task> tasks(kTasks);
  for (auto& t : tasks) {
    t.init(
        [](void* arg) {
          static_cast<std::atomic<int>*>(arg)->fetch_add(1);
          return TaskResult::kDone;
        },
        &hits, {}, kTaskUrgent);
    tm.submit(&t);
  }
  const int64_t deadline = util::now_ns() + 5'000'000'000;
  while (hits.load() < kTasks && util::now_ns() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(hits.load(), kTasks);
  // Task lifetime contract: storage must stay alive until completed() —
  // the counter bump happens *inside* the task fn, before the scheduler's
  // final state store, so wait for each task before the deque dies.
  for (auto& t : tasks) {
    while (!t.completed() && util::now_ns() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(t.completed());
  }
  EXPECT_EQ(tm.urgent_pending_approx(), 0u);
}

}  // namespace
}  // namespace piom::sched
