// Socket-backend comparison: tcp (real 127.0.0.1 stream sockets) vs uds
// (Unix-domain) vs the in-process shmem reference, on the two axes the
// strategy layer selects rails by — small-message latency (ping-pong/2)
// and large-message bandwidth (rendezvous pull). Expected shape: uds beats
// tcp on latency (no inet stack), both socket backends sit far above shmem
// latency (two syscalls per hop), and socket bandwidth lands within the
// kernel's copy throughput — the honest cost of leaving the address space.
//
// Both endpoints live in this process on two independent TcpTransports
// (two epoll pumps), the same shape two piom_launch ranks have; only the
// address space is shared. Single-threaded caller-driven pumping keeps the
// numbers scheduler-noise-free (see bench/README.md caveats).
//
// --quick shrinks the iteration counts; --json <path> records the
// BENCH_*.json layout.
#include <cstdint>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "nmad/request.hpp"
#include "nmad/session.hpp"
#include "transport/channel.hpp"
#include "transport/cluster.hpp"
#include "transport/endpoint.hpp"
#include "transport/tcp.hpp"

namespace {

struct Endpoints {
  piom::nmad::Gate* a = nullptr;
  piom::nmad::Gate* b = nullptr;
};

constexpr const char* kBackends[] = {"tcp", "uds", "shmem"};

/// One connected single-rail gate pair per backend name.
Endpoints make_endpoints(piom::transport::Cluster& cluster,
                         piom::nmad::Session& sa, piom::nmad::Session& sb,
                         const std::string& backend) {
  piom::transport::IChannel* x = nullptr;
  piom::transport::IChannel* y = nullptr;
  if (backend == "shmem") {
    std::tie(x, y) = cluster.shmem().create_channel_pair("bench.shm");
  } else {
    std::tie(x, y) = piom::transport::TcpTransport::create_loopback_pair(
        cluster.tcp_node(0), cluster.tcp_node(1), "bench.sock",
        backend == "tcp" ? piom::transport::Endpoint::Scheme::kTcp
                         : piom::transport::Endpoint::Scheme::kUds);
  }
  return {&sa.create_gate({x}), &sb.create_gate({y})};
}

void pump_until(piom::nmad::Gate& ga, piom::nmad::Gate& gb,
                const piom::nmad::RequestCore& done) {
  while (!done.completed()) {
    ga.progress();
    gb.progress();
  }
}

/// Mean one-way small-message latency (us): ping-pong / 2.
double measure_latency_us(Endpoints ep, std::size_t bytes, int iterations) {
  std::vector<uint8_t> ping(bytes, 0x11), pong(bytes, 0x22);
  std::vector<uint8_t> rx(bytes + 1);
  const int64_t t0 = piom::util::now_ns();
  for (int i = 0; i < iterations; ++i) {
    piom::nmad::SendRequest s;
    piom::nmad::RecvRequest r;
    ep.b->irecv(r, 1, rx.data(), rx.size());
    ep.a->isend(s, 1, ping.data(), ping.size());
    pump_until(*ep.a, *ep.b, r.core);
    piom::nmad::SendRequest s2;
    piom::nmad::RecvRequest r2;
    ep.a->irecv(r2, 2, rx.data(), rx.size());
    ep.b->isend(s2, 2, pong.data(), pong.size());
    pump_until(*ep.a, *ep.b, r2.core);
    pump_until(*ep.a, *ep.b, s.core);
    pump_until(*ep.a, *ep.b, s2.core);
  }
  const int64_t dt = piom::util::now_ns() - t0;
  return static_cast<double>(dt) * 1e-3 / (2.0 * iterations);
}

/// Sustained large-message bandwidth (MB/s) over the rendezvous path.
double measure_bandwidth_MBps(Endpoints ep, std::size_t bytes,
                              int iterations) {
  std::vector<uint8_t> data(bytes, 0x5a);
  std::vector<uint8_t> rx(bytes);
  const int64_t t0 = piom::util::now_ns();
  for (int i = 0; i < iterations; ++i) {
    piom::nmad::SendRequest s;
    piom::nmad::RecvRequest r;
    ep.b->irecv(r, 3, rx.data(), rx.size());
    ep.a->isend(s, 3, data.data(), data.size());
    pump_until(*ep.a, *ep.b, r.core);
    pump_until(*ep.a, *ep.b, s.core);
  }
  const int64_t dt = piom::util::now_ns() - t0;
  return static_cast<double>(bytes) * iterations / 1e6 /
         (static_cast<double>(dt) * 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int lat_iters = quick ? 50 : 400;
  const int bw_iters = quick ? 4 : 16;
  const std::vector<std::size_t> lat_sizes = {8, 256, 4096};
  const std::vector<std::size_t> bw_sizes = {256u << 10, 4u << 20};
  piom::bench::JsonReport report("bench_table_tcp", argc, argv);

  std::printf(
      "=== socket backends — latency / bandwidth per channel type ===\n"
      "expected shape: uds beats tcp on latency (no inet stack), both sit\n"
      "far above shmem (syscalls per hop); socket bandwidth tracks kernel\n"
      "copy throughput — the cost of leaving the address space\n\n");

  const int label_w = 16, cell_w = 14;
  {
    std::vector<std::string> header = {"tcp", "uds", "shmem"};
    piom::bench::print_row("latency (us)", header, label_w, cell_w);
  }
  for (const std::size_t bytes : lat_sizes) {
    std::vector<std::string> cells;
    report.row().str("test", "latency").num("bytes",
                                            static_cast<double>(bytes));
    for (const char* backend : kBackends) {
      piom::transport::Cluster cluster;
      piom::nmad::SessionConfig config;
      piom::nmad::Session sa("a", config), sb("b", config);
      const double us = measure_latency_us(
          make_endpoints(cluster, sa, sb, backend), bytes, lat_iters);
      cells.push_back(piom::bench::fmt_us(us));
      report.num(std::string(backend) + "_us", us);
    }
    piom::bench::print_row(std::to_string(bytes) + " B", cells, label_w,
                           cell_w);
  }

  std::printf("\n");
  {
    std::vector<std::string> header = {"tcp", "uds", "shmem"};
    piom::bench::print_row("bandwidth (MB/s)", header, label_w, cell_w);
  }
  for (const std::size_t bytes : bw_sizes) {
    std::vector<std::string> cells;
    report.row().str("test", "bandwidth").num("bytes",
                                              static_cast<double>(bytes));
    for (const char* backend : kBackends) {
      piom::transport::Cluster cluster;
      piom::nmad::SessionConfig config;
      piom::nmad::Session sa("a", config), sb("b", config);
      const double mbps = measure_bandwidth_MBps(
          make_endpoints(cluster, sa, sb, backend), bytes, bw_iters);
      cells.push_back(piom::bench::fmt_us(mbps, 0));
      report.num(std::string(backend) + "_MBps", mbps);
    }
    piom::bench::print_row(std::to_string(bytes >> 10) + " KiB", cells,
                           label_w, cell_w);
  }
  return 0;
}
