// Ablation: hierarchical queues vs a single global list.
//
// Paper §III: "A naive solution consists in maintaining a global list of
// tasks ... this big-lock technique is likely not to scale up." Here the
// same per-core-affine polling workload runs against (a) the topology-
// mapped hierarchy and (b) the single-global-queue strawman; throughput of
// task executions is reported as the number of participating cores grows.
#include <atomic>
#include <deque>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/task_manager.hpp"
#include "topo/machine.hpp"

namespace {

using namespace piom;

TaskResult counting_poll(void* arg) {
  static_cast<std::atomic<uint64_t>*>(arg)->fetch_add(
      1, std::memory_order_relaxed);
  return TaskResult::kAgain;  // repeatable: a polling task that never ends
}

/// Tasks/second processed by `ncores` cores each servicing one
/// core-affine repeatable polling task.
double run_point(bool hierarchy, int ncores, double duration_ms) {
  const topo::Machine machine = topo::Machine::kwak();
  TaskManagerConfig cfg;
  cfg.single_global_queue = !hierarchy;
  cfg.steal = false;  // the ablation compares the paper's two layouts as-is
  TaskManager tm(machine, cfg);
  std::atomic<uint64_t> executions{0};
  std::deque<Task> tasks(static_cast<std::size_t>(ncores));
  for (int c = 0; c < ncores; ++c) {
    tasks[static_cast<std::size_t>(c)].init(&counting_poll, &executions,
                                            topo::CpuSet::single(c),
                                            kTaskRepeat);
    tm.submit(&tasks[static_cast<std::size_t>(c)]);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  for (int c = 0; c < ncores; ++c) {
    pollers.emplace_back([&, c] {
      bench::pin_self(c);
      while (!stop.load(std::memory_order_acquire)) tm.schedule(c);
    });
  }
  util::precise_wait_ns(static_cast<int64_t>(duration_ms * 1e6));
  const uint64_t count = executions.exchange(0);
  stop.store(true, std::memory_order_release);
  for (auto& t : pollers) t.join();
  return static_cast<double>(count) / (duration_ms * 1e-3);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const double duration_ms = quick ? 50 : 250;
  std::printf(
      "=== Ablation — hierarchical queues vs single global list (kwak "
      "topology) ===\n");
  std::printf("metric: polling-task executions per second (higher is "
              "better); expected shape: hierarchy scales with cores, the "
              "big-lock global list does not\n\n");
  std::printf("%8s %18s %18s %10s\n", "cores", "hierarchical", "global-list",
              "speedup");
  for (const int ncores : {1, 2, 4, 8, 16}) {
    const double hier = run_point(true, ncores, duration_ms);
    const double flat = run_point(false, ncores, duration_ms);
    std::printf("%8d %18.0f %18.0f %9.1fx\n", ncores, hier, flat,
                flat > 0 ? hier / flat : 0.0);
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
