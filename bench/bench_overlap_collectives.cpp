// Collective/computation overlap — the Fig 5–7 story lifted to the new
// nonblocking collectives: every rank starts an iallreduce, computes for
// Tcomp, then waits. An engine that progresses the collective's rounds in
// the background (pioman) hides the communication behind the computation;
// caller-driven engines only advance the state machine when the caller
// re-enters the library, so the rounds serialize after the compute.
//
// Per (engine, payload): three timed modes on the same world —
//   coll    — iallreduce + wait, no compute (the collective's own cost);
//   overlap — iallreduce, compute Tcomp, wait (NBC + overlap);
//   seq     — blocking allreduce, then compute (no overlap possible).
// overlap ratio = Tcomp / mean(overlap-mode total), capped at 1; seq is
// the sanity ceiling (≈ coll + Tcomp).
//
// NOTE: on hosts with fewer free cores than ranks (the 1-CPU CI container)
// the compute loop starves the progression machinery, so ratios are noise
// — treat the numbers as structural output there (see bench/README.md).
//
// --quick shrinks the cluster and iteration counts; --json <path> records
// the BENCH_*.json layout.
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"

namespace {

using piom::mpi::CollRequest;
using piom::mpi::Comm;
using piom::mpi::EngineKind;
using piom::mpi::ReduceOp;
using piom::mpi::World;
using piom::mpi::WorldConfig;

constexpr EngineKind kEngines[] = {EngineKind::kMvapichLike,
                                   EngineKind::kOpenMpiLike,
                                   EngineKind::kPioman};

struct Shape {
  int nranks = 4;
  int warmup = 4;
  int iters = 24;
  double compute_us = 400.0;
};

struct Modes {
  double coll_us = 0;     ///< iallreduce + wait
  double overlap_us = 0;  ///< iallreduce + compute + wait
  double seq_us = 0;      ///< blocking allreduce, then compute
};

/// One world, three timed modes; wall time measured on rank 0 across a
/// barrier-fenced block and attributed per iteration.
Modes measure(EngineKind kind, std::size_t count, const Shape& shape) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.nranks = shape.nranks;
  cfg.session.pool_bufs_per_rail = 8;
  cfg.pioman.workers = 2;
  World world(cfg);
  Modes out;
  std::vector<std::thread> ranks;
  for (int r = 0; r < shape.nranks; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      std::vector<double> v(count, 1.0);
      CollRequest req;
      for (int i = 0; i < shape.warmup; ++i) {
        comm.iallreduce(req, v.data(), v.size(), ReduceOp::kSum);
        comm.wait(req);
      }
      const auto timed = [&](double* cell, auto&& body) {
        comm.barrier();
        const int64_t t0 = piom::util::now_ns();
        for (int i = 0; i < shape.iters; ++i) body();
        comm.barrier();
        if (r == 0) {
          *cell = static_cast<double>(piom::util::now_ns() - t0) * 1e-3 /
                  shape.iters;
        }
      };
      timed(&out.coll_us, [&] {
        comm.iallreduce(req, v.data(), v.size(), ReduceOp::kSum);
        comm.wait(req);
      });
      timed(&out.overlap_us, [&] {
        comm.iallreduce(req, v.data(), v.size(), ReduceOp::kSum);
        piom::util::burn_cpu_us(shape.compute_us);
        comm.wait(req);
      });
      timed(&out.seq_us, [&] {
        comm.allreduce(v.data(), v.size(), ReduceOp::kSum);
        piom::util::burn_cpu_us(shape.compute_us);
      });
    });
  }
  for (auto& t : ranks) t.join();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Shape shape;
  std::vector<std::size_t> counts{256, 4096};  // 2 KB eager, 32 KB rendezvous
  if (piom::bench::quick_mode(argc, argv)) {
    shape.nranks = 2;
    shape.warmup = 2;
    shape.iters = 8;
    shape.compute_us = 200.0;
    counts = {256};
  }
  piom::bench::JsonReport report("bench_overlap_collectives", argc, argv);

  std::printf(
      "=== compute hidden behind iallreduce (N=%d, Tcomp=%.0f us) ===\n"
      "expected shape (on a host with >= N free cores): pioman's overlap\n"
      "total stays near max(coll, Tcomp) while the caller-driven engines'\n"
      "approaches coll + Tcomp (= the seq column)\n\n",
      shape.nranks, shape.compute_us);

  const int label_w = 22, cell_w = 13;
  piom::bench::print_row(
      "engine/payload",
      {"coll(us)", "overlap(us)", "seq(us)", "ratio"}, label_w, cell_w);
  for (const EngineKind kind : kEngines) {
    for (const std::size_t count : counts) {
      const Modes m = measure(kind, count, shape);
      const double ratio =
          m.overlap_us > 0
              ? std::min(1.0, shape.compute_us / m.overlap_us)
              : 0.0;
      const std::string label = std::string(piom::mpi::engine_kind_name(kind)) +
                                "/" + std::to_string(count * sizeof(double)) +
                                "B";
      piom::bench::print_row(
          label,
          {piom::bench::fmt_us(m.coll_us), piom::bench::fmt_us(m.overlap_us),
           piom::bench::fmt_us(m.seq_us), piom::bench::fmt_us(ratio, 3)},
          label_w, cell_w);
      report.row()
          .str("engine", piom::mpi::engine_kind_name(kind))
          .num("nranks", shape.nranks)
          .num("bytes", static_cast<double>(count * sizeof(double)))
          .num("compute_us", shape.compute_us)
          .num("coll_us", m.coll_us)
          .num("overlap_us", m.overlap_us)
          .num("seq_us", m.seq_us)
          .num("overlap_ratio", ratio);
    }
  }
  return 0;
}
