// Message-rate hot path: millions of small messages per second through one
// gate on the shmem fast transport, with the two PR-7 ablations exposed as
// run dimensions —
//
//   matcher     = scan | bucket   (linear reference vs hashed tag buckets)
//   aggregation = off  | on       (one wire packet per msg vs kPack packing)
//
// Workload: windows of W pre-posted receives, then W deferred sends flushed
// as one burst. The receiver posts its window *grouped by tag* while the
// sender interleaves tags round-robin, so every arrival under the scan
// matcher walks ~W/2 posted entries before finding its per-tag FIFO head —
// the exact O(n) cost the bucket matcher collapses to a per-chain walk.
// This is the natural shape of per-communicator receive pre-posting in MPI
// apps, not an artificial worst case.
//
// Reported per (matcher, aggregation, size): sustained msgs/s, and p50/p99
// of the per-message window cost (window elapsed / W). Expected shape:
// bucket >= 2x scan on 8-64 B messages; aggregation multiplies on top by
// cutting wire packets per message.
//
// --quick shrinks windows; --json <path> records the BENCH_*.json layout.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "nmad/request.hpp"
#include "nmad/session.hpp"
#include "transport/cluster.hpp"
#include "transport/channel.hpp"

namespace {

using namespace piom;

struct RateResult {
  double msgs_per_s = 0;
  double p50_ns = 0;  ///< per-message cost, window median
  double p99_ns = 0;
  uint64_t wire_packets = 0;
  uint64_t bucket_hits = 0;
};

constexpr int kWindow = 256;
constexpr int kTags = 64;

RateResult run_rate(nmad::MatcherKind matcher, bool aggregation,
                    std::size_t msg_size, int windows) {
  nmad::SessionConfig cfg;
  cfg.matcher = matcher;
  cfg.strategy.aggregation = aggregation;
  transport::Cluster cluster;
  auto [ca, cb] = cluster.shmem().create_channel_pair("msgrate.shm");
  nmad::Session sa("a", cfg), sb("b", cfg);
  nmad::Gate& ga = sa.create_gate({ca});
  nmad::Gate& gb = sb.create_gate({cb});

  std::vector<uint8_t> payload(msg_size, 0x77);
  std::vector<std::vector<uint8_t>> rx(
      kWindow, std::vector<uint8_t>(msg_size));
  std::vector<double> window_ns;
  window_ns.reserve(static_cast<std::size_t>(windows));

  const int64_t t0 = util::now_ns();
  for (int w = 0; w < windows; ++w) {
    std::deque<nmad::SendRequest> sreqs(kWindow);
    std::deque<nmad::RecvRequest> rreqs(kWindow);
    const int64_t w0 = util::now_ns();
    // Receiver: window grouped by tag (tag 0's receives, then tag 1's, ...).
    for (int i = 0; i < kWindow; ++i) {
      const auto tag = static_cast<nmad::Tag>(i / (kWindow / kTags));
      gb.irecv(rreqs[static_cast<std::size_t>(i)], tag,
               rx[static_cast<std::size_t>(i)].data(), msg_size);
    }
    // Sender: tags interleaved round-robin; deferred + flush so the
    // aggregation strategy sees the whole burst as one flow.
    for (int i = 0; i < kWindow; ++i) {
      const auto tag = static_cast<nmad::Tag>(i % kTags);
      ga.isend(sreqs[static_cast<std::size_t>(i)], tag, payload.data(),
               msg_size, /*defer=*/true);
    }
    ga.flush();
    for (;;) {
      sa.progress();
      sb.progress();
      bool all = true;
      for (const auto& r : rreqs) all = all && r.completed();
      for (const auto& s : sreqs) all = all && s.completed();
      if (all) break;
    }
    window_ns.push_back(static_cast<double>(util::now_ns() - w0) / kWindow);
  }
  const int64_t dt = util::now_ns() - t0;

  std::sort(window_ns.begin(), window_ns.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(window_ns.size() - 1));
    return window_ns[idx];
  };
  RateResult res;
  res.msgs_per_s = static_cast<double>(kWindow) * windows /
                   (static_cast<double>(dt) * 1e-9);
  res.p50_ns = pct(0.50);
  res.p99_ns = pct(0.99);
  res.wire_packets = ca->stats().packets_tx;
  res.bucket_hits = gb.stats().match_bucket_hits;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int windows = quick ? 8 : 200;
  piom::bench::JsonReport report("bench_msgrate", argc, argv);

  std::printf(
      "=== message rate — small messages through one shmem gate ===\n"
      "window=%d msgs, %d tags; receiver posts grouped by tag, sender\n"
      "interleaves: the scan matcher walks ~window/2 entries per arrival,\n"
      "the bucket matcher walks one short chain. expected shape: bucket\n"
      ">= 2x scan on 8-64 B; aggregation cuts wire packets on top\n\n",
      kWindow, kTags);
  std::printf("%8s %10s %8s %12s %12s %12s %10s\n", "size(B)", "matcher",
              "aggreg", "Mmsgs/s", "p50(ns)", "p99(ns)", "packets");
  for (const std::size_t size : {std::size_t{8}, std::size_t{64}}) {
    for (const auto matcher :
         {piom::nmad::MatcherKind::kScan, piom::nmad::MatcherKind::kBucket}) {
      for (const bool aggregation : {false, true}) {
        const RateResult r = run_rate(matcher, aggregation, size, windows);
        const char* mname =
            matcher == piom::nmad::MatcherKind::kScan ? "scan" : "bucket";
        std::printf("%8zu %10s %8s %12.3f %12.0f %12.0f %10llu\n", size,
                    mname, aggregation ? "on" : "off", r.msgs_per_s * 1e-6,
                    r.p50_ns, r.p99_ns,
                    static_cast<unsigned long long>(r.wire_packets));
        report.row()
            .str("test", "msgrate")
            .str("matcher", mname)
            .num("aggregation", aggregation ? 1 : 0)
            .num("bytes", static_cast<double>(size))
            .num("window", kWindow)
            .num("msgs_per_s", r.msgs_per_s)
            .num("p50_ns", r.p50_ns)
            .num("p99_ns", r.p99_ns)
            .num("wire_packets", static_cast<double>(r.wire_packets));
      }
    }
    std::printf("\n");
  }
  return 0;
}
