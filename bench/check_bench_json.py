#!/usr/bin/env python3
"""Schema gate for BENCH_*.json result files.

Every committed baseline at the repo root and every freshly produced
--json file must follow the layout documented in bench/README.md:

    {
      "bench":  "<binary name>",
      "commit": "<short sha | 'unrecorded'>",
      "date":   "YYYY-MM-DD",
      "host":   {"cpus": <int >= 1>, "os": "<str>", ["model": "<str>"]},
      "args":   ["--quick", ...],
      "results": [ {<row>}, ... ]        # non-empty; one object per table row
    }

Row values may be numbers, strings, or one level of {"series": number}
nesting (e.g. per-engine latencies keyed by engine name). CI runs this
over the repo baselines *and* the quick-run outputs, so format drift
fails the build instead of rotting silently.

Usage: check_bench_json.py [file.json ...]
       (no arguments: validate every BENCH_*.json in the repo root)
"""

import glob
import json
import os
import sys

TOP_LEVEL_KEYS = {"bench", "commit", "date", "host", "args", "results"}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def check_scalar(path, where, value):
    """Leaf row values: numbers or strings (no null, no bool)."""
    if isinstance(value, bool) or value is None:
        return fail(path, f"{where}: bools/nulls are not valid cell values")
    if not isinstance(value, (int, float, str)):
        return fail(path, f"{where}: unexpected cell type {type(value).__name__}")
    return True


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level must be an object")
    missing = TOP_LEVEL_KEYS - doc.keys()
    if missing:
        return fail(path, f"missing top-level keys: {sorted(missing)}")
    unknown = doc.keys() - TOP_LEVEL_KEYS
    if unknown:
        return fail(path, f"unknown top-level keys (schema drift): {sorted(unknown)}")

    ok = True
    for key in ("bench", "commit", "date"):
        if not isinstance(doc[key], str) or not doc[key]:
            ok = fail(path, f"'{key}' must be a non-empty string")

    host = doc["host"]
    if not isinstance(host, dict):
        ok = fail(path, "'host' must be an object")
    else:
        if not isinstance(host.get("cpus"), int) or host.get("cpus", 0) < 1:
            ok = fail(path, "'host.cpus' must be an integer >= 1")
        if not isinstance(host.get("os"), str):
            ok = fail(path, "'host.os' must be a string")
        extra = host.keys() - {"cpus", "os", "model"}
        if extra:
            ok = fail(path, f"unknown 'host' keys: {sorted(extra)}")

    args = doc["args"]
    if not isinstance(args, list) or not all(isinstance(a, str) for a in args):
        ok = fail(path, "'args' must be a list of strings")

    results = doc["results"]
    if not isinstance(results, list) or not results:
        ok = fail(path, "'results' must be a non-empty list (a bench that "
                        "produced no rows is a broken bench)")
    else:
        for i, row in enumerate(results):
            where = f"results[{i}]"
            if not isinstance(row, dict) or not row:
                ok = fail(path, f"{where}: each row must be a non-empty object")
                continue
            for k, v in row.items():
                if not isinstance(k, str):
                    ok = fail(path, f"{where}: non-string key")
                elif isinstance(v, dict):
                    # One nesting level: named series of numbers.
                    if not v:
                        ok = fail(path, f"{where}.{k}: empty series object")
                    for sk, sv in v.items():
                        if isinstance(sv, bool) or not isinstance(sv, (int, float)):
                            ok = fail(path, f"{where}.{k}.{sk}: series values "
                                            "must be numbers")
                elif not check_scalar(path, f"{where}.{k}", v):
                    ok = False
    return ok


def main(argv):
    files = argv[1:]
    if not files:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        files = sorted(glob.glob(os.path.join(repo_root, "BENCH_*.json")))
    if not files:
        print("check_bench_json: no files to check", file=sys.stderr)
        return 1
    bad = [f for f in files if not check_file(f)]
    if bad:
        print(f"check_bench_json: {len(bad)}/{len(files)} file(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"check_bench_json: {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
