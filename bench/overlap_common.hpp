// Shared harness for the Fig 5/6/7 overlap benchmarks (paper §V-C).
//
// Micro-benchmark from [Shet et al.]: perform a nonblocking communication,
// compute for Tcomp, wait for completion. Overlap = Tcomp / Ttotal, where
// Ttotal is the time from Isend/Irecv to the end of Wait. A ratio near 1
// means communication was fully hidden behind the computation.
#pragma once

#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"
#include "sync/semaphore.hpp"

namespace piom::bench {

enum class ComputeSide { kSender, kReceiver, kBoth };

struct OverlapPoint {
  double compute_us = 0;
  double ratio = 0;
};

/// Measure the overlap ratio for one (engine, size, compute duration).
/// `iters` round trips are averaged.
inline double measure_overlap(mpi::World& world, std::size_t msg_size,
                              double compute_us, ComputeSide side, int iters) {
  std::vector<uint8_t> data(msg_size, 0x3C);
  std::vector<uint8_t> out(msg_size);
  double total_us_sum = 0;
  // Rank 1 (receiver) thread; rendezvous in lockstep with the sender using
  // tiny sync messages so each iteration starts with the irecv posted
  // (the paper's benchmark also posts the receive before the send).
  for (int it = 0; it < iters; ++it) {
    sync::Semaphore recv_posted;
    double recv_total_us = 0;
    std::thread receiver([&] {
      mpi::Request r;
      const int64_t r0 = util::now_ns();
      world.comm(1).irecv(r, 0, 1, out.data(), out.size());
      recv_posted.post();
      if (side == ComputeSide::kReceiver || side == ComputeSide::kBoth) {
        util::burn_cpu_us(compute_us);
      }
      world.comm(1).wait(r);
      recv_total_us = static_cast<double>(util::now_ns() - r0) * 1e-3;
    });
    recv_posted.wait();
    mpi::Request s;
    const int64_t s0 = util::now_ns();
    world.comm(0).isend(s, 1, 1, data.data(), data.size());
    if (side == ComputeSide::kSender || side == ComputeSide::kBoth) {
      util::burn_cpu_us(compute_us);
    }
    world.comm(0).wait(s);
    const double send_total_us = static_cast<double>(util::now_ns() - s0) * 1e-3;
    receiver.join();
    // Ttotal is measured on the side(s) that compute (per the benchmark
    // definition); for kBoth take the slower side.
    switch (side) {
      case ComputeSide::kSender: total_us_sum += send_total_us; break;
      case ComputeSide::kReceiver: total_us_sum += recv_total_us; break;
      case ComputeSide::kBoth:
        total_us_sum += std::max(send_total_us, recv_total_us);
        break;
    }
  }
  const double mean_total = total_us_sum / iters;
  if (mean_total <= 0) return 0;
  const double ratio = compute_us / mean_total;
  return ratio > 1.0 ? 1.0 : ratio;
}

/// Run one full figure: the compute-time sweep for one message size and all
/// three engines, printed as aligned columns.
inline void run_overlap_figure(const char* figure_name, ComputeSide side,
                               std::size_t msg_size, double max_compute_us,
                               int points, int iters) {
  std::printf("--- %s, message size %zu KB ---\n", figure_name,
              msg_size / 1024);
  std::printf("%14s %14s %14s %14s\n", "compute(us)", "mvapich-like",
              "openmpi-like", "pioman");
  struct EngineRun {
    mpi::EngineKind kind;
    std::unique_ptr<mpi::World> world;
  };
  std::vector<EngineRun> engines;
  for (const auto kind :
       {mpi::EngineKind::kMvapichLike, mpi::EngineKind::kOpenMpiLike,
        mpi::EngineKind::kPioman}) {
    mpi::WorldConfig cfg;
    cfg.engine = kind;
    cfg.pioman.workers = 4;
    engines.push_back({kind, std::make_unique<mpi::World>(cfg)});
  }
  for (int p = 0; p <= points; ++p) {
    const double compute_us = max_compute_us * p / points;
    std::printf("%14.0f", compute_us);
    for (auto& e : engines) {
      const double ratio =
          measure_overlap(*e.world, msg_size, compute_us, side, iters);
      std::printf(" %14.3f", ratio);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace piom::bench
