#include "bench/table_scheduling.hpp"

#include <cstdio>

namespace piom::bench {

namespace {
/// Chip-level grouping nodes of the machine (the "per-chip queues" row):
/// the parent of each core when it is not the root.
std::vector<const topo::TopoNode*> grouping_nodes(const topo::Machine& m) {
  std::vector<const topo::TopoNode*> nodes;
  for (const auto& n : m.nodes()) {
    if (n->level == topo::Level::kCore || n.get() == &m.root()) continue;
    // Keep only the deepest grouping level (direct parents of cores).
    bool parent_of_core = false;
    for (const topo::TopoNode* child : n->children) {
      if (child->level == topo::Level::kCore) parent_of_core = true;
    }
    if (parent_of_core) nodes.push_back(n.get());
  }
  return nodes;
}
}  // namespace

void run_scheduling_table(const topo::Machine& machine,
                          const char* bench_name, const char* title,
                          const char* paper_note, int argc, char** argv) {
  SchedulingBenchConfig cfg;
  if (quick_mode(argc, argv)) {
    cfg.warmup = 50;
    cfg.batches = 3;
    cfg.iterations = 300;
  }
  JsonReport report(bench_name, argc, argv);
  const int ncpus = machine.ncpus();

  std::printf("%s\n", title);
  std::printf("%s\n", paper_note);
  std::printf("topology:\n%s", machine.to_string().c_str());
  std::printf("(times in nanoseconds; task submitted by core #0)\n\n");

  SchedulingBench bench(machine, TaskManagerConfig{}, cfg);

  const int label_w = 28;
  const int cell_w = 8;
  {
    std::vector<std::string> header;
    for (int c = 0; c < ncpus; ++c) {
      // Appended piecewise: the "#" + to_string(c) temporary chain trips
      // GCC 12's -Wrestrict false positive under full inlining.
      std::string cell = "#";
      cell += std::to_string(c);
      header.push_back(std::move(cell));
    }
    print_row("core", header, label_w, cell_w);
  }

  // Row 1: per-core queues, one measurement per target core.
  {
    std::vector<std::string> cells;
    for (int c = 0; c < ncpus; ++c) {
      const double ns = bench.measure(topo::CpuSet::single(c));
      cells.push_back(fmt_ns(ns));
      report.row().str("queue", "per-core").num("core", c).num("ns", ns);
    }
    print_row("per-core queues", cells, label_w, cell_w);
  }

  // Row 2: per-chip (grouping-level) queues, one measurement per group.
  const auto groups = grouping_nodes(machine);
  {
    std::vector<std::string> cells;
    for (const topo::TopoNode* g : groups) {
      const double ns = bench.measure(g->cpus);
      const std::string v = fmt_ns(ns);
      report.row()
          .str("queue", "per-chip")
          .num("group", g->index_in_level)
          .num("cores", g->cpus.count())
          .num("ns", ns);
      // Spread each group's value across its cores' columns: value then
      // blanks (paper prints one number per chip).
      bool first = true;
      for (int c = g->cpus.first(); c >= 0; c = g->cpus.next(c)) {
        cells.push_back(first ? v : "");
        first = false;
      }
    }
    const int per_group = groups.empty() ? 0 : groups.front()->cpus.count();
    print_row("per-chip queues, " + std::to_string(per_group) + " cores",
              cells, label_w, cell_w);
  }

  // Row 3: global queue, all cores.
  {
    const double ns = bench.measure(topo::CpuSet::first_n(ncpus));
    report.row().str("queue", "global").num("cores", ncpus).num("ns", ns);
    print_row("global queue (" + std::to_string(ncpus) + " cores)",
              {fmt_ns(ns)}, label_w, cell_w);
  }

  // Distribution check (paper: per-chip queues are shared evenly; the
  // global queue on NUMA machines is not).
  std::printf("\ntask-execution distribution (%% of tasks per core):\n");
  {
    const auto shares =
        bench.distribution(groups.empty() ? topo::CpuSet::first_n(ncpus)
                                          : groups.front()->cpus,
                           cfg.iterations);
    std::vector<std::string> cells;
    for (std::size_t c = 0; c < shares.size(); ++c) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.0f%%", shares[c] * 100);
      cells.push_back(buf);
      report.row()
          .str("distribution", "first-group")
          .num("core", static_cast<double>(c))
          .num("share", shares[c]);
    }
    print_row("first group queue", cells, label_w, cell_w);
  }
  {
    const auto shares =
        bench.distribution(topo::CpuSet::first_n(ncpus), cfg.iterations);
    std::vector<std::string> cells;
    for (std::size_t c = 0; c < shares.size(); ++c) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.0f%%", shares[c] * 100);
      cells.push_back(buf);
      report.row()
          .str("distribution", "global")
          .num("core", static_cast<double>(c))
          .num("share", shares[c]);
    }
    print_row("global queue", cells, label_w, cell_w);
  }
  std::printf("\n");
}

}  // namespace piom::bench
