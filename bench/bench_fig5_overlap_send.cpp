// Reproduces Fig 5: overlap of communication and computation with the
// computation on the SENDER side, for 32 KB and 1 MB messages.
//
// Expected shape (paper): all three implementations overlap on the sender
// side — the rendezvous data moves by RDMA without sender CPU — so every
// curve rises towards 1 as the computation grows past the transfer time.
#include "bench/overlap_common.hpp"

int main(int argc, char** argv) {
  using piom::bench::ComputeSide;
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int points = quick ? 5 : 10;
  const int iters = quick ? 3 : 8;
  std::printf(
      "=== Fig 5 — overlap ratio, computation on the sender side ===\n");
  std::printf("paper reference: ALL engines overlap at the sender "
              "(RDMA data path needs no sender CPU)\n\n");
  piom::bench::run_overlap_figure("Fig 5(a) send 32 KB", ComputeSide::kSender,
                                  32 * 1024, 200.0, points, iters);
  piom::bench::run_overlap_figure("Fig 5(b) send 1 MB", ComputeSide::kSender,
                                  1 << 20, 2000.0, points, iters);
  return 0;
}
