// Shared implementation of the Table I / Table II scheduling
// micro-benchmarks (paper §V-A):
//
//   "we measure the time spent to create an empty task (with no
//    computation), to schedule it, and to notice its completion. We have
//    measured the performance of every queue in the hierarchy. In all
//    cases, the task is submitted by core #0."
//
// Harness: one pinned poller thread per simulated core runs the Algorithm-1
// walk (tm.schedule(cpu)) in a tight loop — every core polls all its queues
// all the time, exactly like PIOMan workers, so Algorithm 2's lock-free
// empty checks are on the measured path. The measuring thread acts as
// core #0: it submits a task with the probed CPU set and spins (scheduling
// core #0's own hierarchy, so it can execute its own tasks) until the task
// completes.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/task_manager.hpp"
#include "sync/backoff.hpp"
#include "topo/machine.hpp"

namespace piom::bench {

struct SchedulingBenchConfig {
  int warmup = 500;
  int iterations = 1000;  ///< per sub-batch
  int batches = 9;        ///< median of the sub-batch means is reported
};

class SchedulingBench {
 public:
  SchedulingBench(const topo::Machine& machine, TaskManagerConfig tm_cfg,
                  SchedulingBenchConfig cfg)
      : machine_(machine), tm_(machine, disable_steal(tm_cfg)), cfg_(cfg) {
    // Pollers for every core except #0 (the measuring thread *is* core #0).
    for (int c = 1; c < machine_.ncpus(); ++c) {
      pollers_.emplace_back([this, c] {
        pin_self(c);
        while (!stop_.load(std::memory_order_acquire)) {
          tm_.schedule(c);
        }
      });
    }
    pin_self(0);
  }

  ~SchedulingBench() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : pollers_) t.join();
  }

  /// ns for create+schedule+completion of an empty task whose CPU set is
  /// `cpus`, submitted by core #0: median over `batches` sub-batch means
  /// (the median suppresses scheduler-noise outliers).
  double measure(const topo::CpuSet& cpus) {
    run_batch(cpus, cfg_.warmup);
    std::vector<double> means;
    means.reserve(static_cast<std::size_t>(cfg_.batches));
    for (int b = 0; b < cfg_.batches; ++b) {
      const int64_t t0 = util::now_ns();
      run_batch(cpus, cfg_.iterations);
      const int64_t t1 = util::now_ns();
      means.push_back(static_cast<double>(t1 - t0) / cfg_.iterations);
    }
    std::sort(means.begin(), means.end());
    return means[means.size() / 2];
  }

  /// Per-core execution shares (fraction of tasks run by each core) for a
  /// batch of tasks on `cpus` — reproduces the paper's distribution
  /// observations ("each of them executes roughly 25% of the tasks").
  std::vector<double> distribution(const topo::CpuSet& cpus, int tasks) {
    tm_.reset_stats();
    run_batch(cpus, tasks);
    std::vector<double> shares(static_cast<std::size_t>(machine_.ncpus()), 0.0);
    uint64_t total = 0;
    for (int c = 0; c < machine_.ncpus(); ++c) {
      total += tm_.core_stats(c).tasks_run;
    }
    if (total == 0) return shares;
    for (int c = 0; c < machine_.ncpus(); ++c) {
      shares[static_cast<std::size_t>(c)] =
          static_cast<double>(tm_.core_stats(c).tasks_run) /
          static_cast<double>(total);
    }
    return shares;
  }

  TaskManager& task_manager() { return tm_; }

 private:
  /// This harness measures the paper's plain Algorithm 1 (Tables I/II and
  /// the double-check/lock ablations): work stealing must stay out of the
  /// poller loops so rows remain comparable with pre-stealing baselines.
  /// bench_steal_imbalance measures the stealing side.
  static TaskManagerConfig disable_steal(TaskManagerConfig cfg) {
    cfg.steal = false;
    return cfg;
  }

  static TaskResult empty_fn(void*) { return TaskResult::kDone; }

  void run_batch(const topo::CpuSet& cpus, int n) {
    Task task;
    for (int i = 0; i < n; ++i) {
      task.init(&empty_fn, nullptr, cpus, kTaskNone);
      tm_.submit(&task);
      // Core #0 both creates tasks and executes them (the paper notes the
      // resulting slight overhead on core #0).
      sync::Backoff backoff;
      while (!task.completed()) {
        if (cpus.empty() || cpus.test(0)) {
          tm_.schedule(0);
        } else {
          backoff.spin();
        }
      }
    }
  }

  const topo::Machine& machine_;
  TaskManager tm_;
  SchedulingBenchConfig cfg_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> pollers_;
};

/// Run the full table for `machine` and print it in the paper's layout.
/// `bench_name` labels the `--json <path>` report (BENCH_*.json layout).
void run_scheduling_table(const topo::Machine& machine,
                          const char* bench_name, const char* title,
                          const char* paper_note, int argc, char** argv);

}  // namespace piom::bench
