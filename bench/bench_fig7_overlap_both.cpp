// Reproduces Fig 7: overlap of communication and computation with
// computation on BOTH sides, for 32 KB and 1 MB messages.
//
// Expected shape (paper): like Fig 6 — the baselines cannot hide the
// rendezvous because neither side progresses it while computing; PIOMan
// overlaps on both sides and approaches ratio 1.
#include "bench/overlap_common.hpp"

int main(int argc, char** argv) {
  using piom::bench::ComputeSide;
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int points = quick ? 5 : 10;
  const int iters = quick ? 3 : 8;
  std::printf(
      "=== Fig 7 — overlap ratio, computation on both sides ===\n");
  std::printf("paper reference: only PIOMan overlaps; baselines serialized "
              "by the unhandled rendezvous handshake\n\n");
  piom::bench::run_overlap_figure("Fig 7(a) send/recv 32 KB",
                                  ComputeSide::kBoth, 32 * 1024, 200.0,
                                  points, iters);
  piom::bench::run_overlap_figure("Fig 7(b) send/recv 1 MB",
                                  ComputeSide::kBoth, 1 << 20, 2000.0, points,
                                  iters);
  return 0;
}
