// Collective latency vs cluster size N, per progress engine — Fig 4's
// story extended to the N-rank collectives: every rank of the cluster is
// simultaneously inside the collective, so caller-driven global-lock
// engines pay N hard-spinning ranks fighting for the host's cores, while
// pioman's background progression parks the waiters and keeps the curve
// flat(ter) as N grows.
//
// One table per collective (barrier / bcast / allreduce / alltoall): rows
// are cluster sizes, columns the three engines, cells the mean per-call
// latency in microseconds measured across the whole cluster.
//
// --quick shrinks N and the iteration counts; --json <path> records the
// BENCH_*.json layout (see bench/README.md).
#include <algorithm>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"
#include "sync/backoff.hpp"

namespace {

using piom::mpi::Comm;
using piom::mpi::EngineKind;
using piom::mpi::ReduceOp;
using piom::mpi::World;
using piom::mpi::WorldConfig;

struct BenchShape {
  std::vector<int> cluster_sizes;
  int warmup = 5;
  int iterations = 40;
};

constexpr EngineKind kEngines[] = {EngineKind::kMvapichLike,
                                   EngineKind::kOpenMpiLike,
                                   EngineKind::kPioman};

// One collective under test: name + per-rank call.
struct Collective {
  const char* name;
  void (*run)(Comm& comm, int nranks);
};

void run_barrier(Comm& comm, int) { comm.barrier(); }

void run_bcast(Comm& comm, int) {
  static thread_local std::vector<uint8_t> buf(1024, 0x5a);
  comm.bcast(buf.data(), buf.size(), 0);
}

void run_allreduce(Comm& comm, int) {
  static thread_local std::vector<double> v(256, 1.0);
  comm.allreduce(v.data(), v.size(), ReduceOp::kSum);
}

void run_alltoall(Comm& comm, int nranks) {
  static thread_local std::vector<uint8_t> src, dst;
  src.assign(static_cast<std::size_t>(nranks) * 256, 0x21);
  dst.assign(src.size(), 0);
  comm.alltoall(src.data(), 256, dst.data());
}

constexpr Collective kCollectives[] = {
    {"barrier", &run_barrier},
    {"bcast_1k", &run_bcast},
    {"allreduce_256d", &run_allreduce},
    {"alltoall_256b", &run_alltoall},
};

/// Mean per-call latency (us) of `coll` on a fresh N-rank world: every
/// rank loops the collective on its own thread; the wall time of the
/// whole synchronized block is attributed per iteration.
double measure(EngineKind kind, int nranks, const Collective& coll,
               const BenchShape& shape) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.nranks = nranks;
  cfg.session.pool_bufs_per_rail = 8;
  cfg.pioman.workers = 2;
  World world(cfg);
  int64_t t0 = 0, t1 = 0;
  std::vector<std::thread> ranks;
  for (int r = 0; r < nranks; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      for (int i = 0; i < shape.warmup; ++i) coll.run(comm, nranks);
      comm.barrier();
      if (r == 0) t0 = piom::util::now_ns();
      for (int i = 0; i < shape.iterations; ++i) coll.run(comm, nranks);
      comm.barrier();
      if (r == 0) t1 = piom::util::now_ns();
    });
  }
  for (auto& t : ranks) t.join();
  return static_cast<double>(t1 - t0) * 1e-3 / shape.iterations;
}

}  // namespace

int main(int argc, char** argv) {
  BenchShape shape;
  shape.cluster_sizes = {2, 3, 4, 8};
  if (piom::bench::quick_mode(argc, argv)) {
    shape.cluster_sizes = {2, 4};
    shape.warmup = 2;
    shape.iterations = 8;
  }
  piom::bench::JsonReport report("bench_nrank_collectives", argc, argv);

  std::printf(
      "=== N-rank collectives — per-call latency (us) vs cluster size ===\n"
      "expected shape: global-lock engines degrade as N grows (N spinning\n"
      "ranks), pioman stays flat(ter) — Fig 4's story for collectives\n\n");

  // engine -> (collective, N) -> us
  std::map<std::string, std::map<std::pair<std::string, int>, double>> all;
  for (const EngineKind kind : kEngines) {
    for (const Collective& coll : kCollectives) {
      for (const int n : shape.cluster_sizes) {
        all[piom::mpi::engine_kind_name(kind)][{coll.name, n}] =
            measure(kind, n, coll, shape);
      }
    }
  }

  const int label_w = 18, cell_w = 14;
  for (const Collective& coll : kCollectives) {
    std::printf("--- %s ---\n", coll.name);
    {
      std::vector<std::string> header;
      for (const EngineKind kind : kEngines) {
        header.emplace_back(piom::mpi::engine_kind_name(kind));
      }
      piom::bench::print_row("N", header, label_w, cell_w);
    }
    for (const int n : shape.cluster_sizes) {
      std::vector<std::string> cells;
      report.row().str("collective", coll.name).num("nranks", n);
      for (const EngineKind kind : kEngines) {
        const double us = all[piom::mpi::engine_kind_name(kind)][{coll.name, n}];
        cells.push_back(piom::bench::fmt_us(us));
        report.num(std::string(piom::mpi::engine_kind_name(kind)) + "_us", us);
      }
      piom::bench::print_row(std::to_string(n), cells, label_w, cell_w);
    }
    std::printf("\n");
  }
  return 0;
}
