// Transport-backend comparison: shmem vs simnet vs hybrid on the two axes
// the strategy layer selects rails by — small-message latency (ping-pong/2)
// and large-message bandwidth (rendezvous pull). The shmem fast path has no
// NIC instruction round-trip and no modelled wire, so it should beat the
// NIC model by orders of magnitude on latency and track host memcpy speed
// on bandwidth; the hybrid gate must land at (or above) the better rail on
// both axes, proving the heterogeneous rail selection + striping works.
//
// Single-threaded caller-driven pumping: both gates live in this process,
// so driving progress from one loop keeps the numbers scheduler-noise-free
// on small hosts (see bench/README.md caveats).
//
// --quick shrinks the iteration counts; --json <path> records the
// BENCH_*.json layout.
#include <cstdint>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "nmad/request.hpp"
#include "nmad/session.hpp"
#include "simnet/fabric.hpp"
#include "transport/channel.hpp"
#include "transport/shmem.hpp"

namespace {

using piom::transport::PairWiring;

struct Endpoints {
  piom::nmad::Gate* a = nullptr;
  piom::nmad::Gate* b = nullptr;
};

/// One connected gate pair wired per `wiring` on a fresh fabric.
Endpoints make_endpoints(piom::simnet::Fabric& fabric,
                         piom::nmad::Session& sa, piom::nmad::Session& sb,
                         PairWiring wiring) {
  std::vector<piom::transport::IChannel*> rails_a, rails_b;
  if (wiring != PairWiring::kSimnet) {
    auto [x, y] = fabric.shmem().create_channel_pair("bench.shm");
    rails_a.push_back(x);
    rails_b.push_back(y);
  }
  if (wiring != PairWiring::kShmem) {
    auto [x, y] = fabric.create_link("bench.nic");
    rails_a.push_back(x);
    rails_b.push_back(y);
  }
  return {&sa.create_gate(rails_a), &sb.create_gate(rails_b)};
}

void pump_until(piom::nmad::Gate& ga, piom::nmad::Gate& gb,
                const piom::nmad::RequestCore& done) {
  while (!done.completed()) {
    ga.progress();
    gb.progress();
  }
}

/// Mean one-way small-message latency (us): ping-pong / 2.
double measure_latency_us(Endpoints ep, std::size_t bytes, int iterations) {
  std::vector<uint8_t> ping(bytes, 0x11), pong(bytes, 0x22);
  std::vector<uint8_t> rx(bytes + 1);
  const int64_t t0 = piom::util::now_ns();
  for (int i = 0; i < iterations; ++i) {
    piom::nmad::SendRequest s;
    piom::nmad::RecvRequest r;
    ep.b->irecv(r, 1, rx.data(), rx.size());
    ep.a->isend(s, 1, ping.data(), ping.size());
    pump_until(*ep.a, *ep.b, r.core);
    piom::nmad::SendRequest s2;
    piom::nmad::RecvRequest r2;
    ep.a->irecv(r2, 2, rx.data(), rx.size());
    ep.b->isend(s2, 2, pong.data(), pong.size());
    pump_until(*ep.a, *ep.b, r2.core);
    pump_until(*ep.a, *ep.b, s.core);
    pump_until(*ep.a, *ep.b, s2.core);
  }
  const int64_t dt = piom::util::now_ns() - t0;
  return static_cast<double>(dt) * 1e-3 / (2.0 * iterations);
}

/// Sustained large-message bandwidth (MB/s) over the rendezvous path.
double measure_bandwidth_MBps(Endpoints ep, std::size_t bytes,
                              int iterations) {
  std::vector<uint8_t> data(bytes, 0x5a);
  std::vector<uint8_t> rx(bytes);
  const int64_t t0 = piom::util::now_ns();
  for (int i = 0; i < iterations; ++i) {
    piom::nmad::SendRequest s;
    piom::nmad::RecvRequest r;
    ep.b->irecv(r, 3, rx.data(), rx.size());
    ep.a->isend(s, 3, data.data(), data.size());
    pump_until(*ep.a, *ep.b, r.core);
    pump_until(*ep.a, *ep.b, s.core);
  }
  const int64_t dt = piom::util::now_ns() - t0;
  return static_cast<double>(bytes) * iterations / 1e6 /
         (static_cast<double>(dt) * 1e-9);
}

constexpr PairWiring kWirings[] = {PairWiring::kSimnet, PairWiring::kShmem,
                                   PairWiring::kHybrid};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int lat_iters = quick ? 50 : 400;
  const int bw_iters = quick ? 4 : 16;
  const std::vector<std::size_t> lat_sizes = {8, 256, 4096};
  const std::vector<std::size_t> bw_sizes = {256u << 10, 4u << 20};
  piom::bench::JsonReport report("bench_table_shmem", argc, argv);

  std::printf(
      "=== transport backends — latency / bandwidth per rail wiring ===\n"
      "expected shape: shmem crushes the NIC model on latency (no wire,\n"
      "no engine round-trip) and tracks host memcpy on bandwidth; hybrid\n"
      "matches the better rail on each axis (rail selection + striping)\n\n");

  const int label_w = 16, cell_w = 14;
  {
    std::vector<std::string> header = {"simnet", "shmem", "hybrid"};
    piom::bench::print_row("latency (us)", header, label_w, cell_w);
  }
  for (const std::size_t bytes : lat_sizes) {
    std::vector<std::string> cells;
    report.row().str("test", "latency").num("bytes",
                                            static_cast<double>(bytes));
    for (const PairWiring wiring : kWirings) {
      piom::simnet::Fabric fabric(1.0);
      piom::nmad::SessionConfig config;
      config.strategy.stripe_min_chunk = 64 * 1024;
      piom::nmad::Session sa("a", config), sb("b", config);
      const double us = measure_latency_us(
          make_endpoints(fabric, sa, sb, wiring), bytes, lat_iters);
      cells.push_back(piom::bench::fmt_us(us));
      report.num(std::string(piom::transport::pair_wiring_name(wiring)) +
                     "_us",
                 us);
    }
    piom::bench::print_row(std::to_string(bytes) + " B", cells, label_w,
                           cell_w);
  }

  std::printf("\n");
  {
    std::vector<std::string> header = {"simnet", "shmem", "hybrid"};
    piom::bench::print_row("bandwidth (MB/s)", header, label_w, cell_w);
  }
  for (const std::size_t bytes : bw_sizes) {
    std::vector<std::string> cells;
    report.row().str("test", "bandwidth").num("bytes",
                                              static_cast<double>(bytes));
    for (const PairWiring wiring : kWirings) {
      piom::simnet::Fabric fabric(1.0);
      piom::nmad::SessionConfig config;
      config.strategy.stripe_min_chunk = 64 * 1024;
      piom::nmad::Session sa("a", config), sb("b", config);
      const double mbps = measure_bandwidth_MBps(
          make_endpoints(fabric, sa, sb, wiring), bytes, bw_iters);
      cells.push_back(piom::bench::fmt_us(mbps, 0));
      report.num(std::string(piom::transport::pair_wiring_name(wiring)) +
                     "_MBps",
                 mbps);
    }
    piom::bench::print_row(std::to_string(bytes >> 10) + " KiB", cells,
                           label_w, cell_w);
  }
  return 0;
}
