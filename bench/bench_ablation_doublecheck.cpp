// Ablation: Algorithm 2's double-checked emptiness test.
//
// Paper §III: "The content of the queue is first evaluated without holding
// the mutex in order to avoid unnecessary contention ... empty lists do not
// require to be locked, reducing contention." Every schedule() pass walks
// the whole hierarchy, so most queues visited are EMPTY; this bench
// measures (a) the cost of a schedule() pass over an all-empty hierarchy
// and (b) the paper's submit-to-completion latency, with the pre-check on
// and off.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/table_scheduling.hpp"
#include "topo/machine.hpp"
#include "util/timing.hpp"

namespace {

using namespace piom;

/// ns per schedule() pass over an entirely empty hierarchy, with `ncores`
/// cores scanning concurrently (lock traffic is what differs).
double empty_scan_cost(bool double_check, int ncores, int iters) {
  const topo::Machine machine = topo::Machine::kwak();
  TaskManagerConfig cfg;
  cfg.double_check = double_check;
  cfg.queue_stats = false;  // keep the stats RMW off the measured fast path
  cfg.steal = false;        // measure Algorithm 2 alone, not the steal scan
  TaskManager tm(machine, cfg);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  for (int c = 1; c < ncores; ++c) {
    scanners.emplace_back([&, c] {
      bench::pin_self(c);
      while (!stop.load(std::memory_order_acquire)) tm.schedule(c);
    });
  }
  bench::pin_self(0);
  const int64_t t0 = util::now_ns();
  for (int i = 0; i < iters; ++i) tm.schedule(0);
  const int64_t t1 = util::now_ns();
  stop.store(true, std::memory_order_release);
  for (auto& t : scanners) t.join();
  return static_cast<double>(t1 - t0) / iters;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace piom;
  const bool quick = bench::quick_mode(argc, argv);
  const int iters = quick ? 20'000 : 200'000;
  std::printf(
      "=== Ablation — Algorithm 2 double-checked emptiness test (kwak) "
      "===\n");
  std::printf("expected shape: with the pre-check, empty-hierarchy scans are "
              "cheap and contention-free; without it every scan locks every "
              "queue\n\n");
  std::printf("%12s %22s %22s\n", "cores", "double-check (ns/scan)",
              "always-lock (ns/scan)");
  for (const int ncores : {1, 4, 16}) {
    const double with_check = empty_scan_cost(true, ncores, iters);
    const double without = empty_scan_cost(false, ncores, iters);
    std::printf("%12d %22.1f %22.1f\n", ncores, with_check, without);
    std::fflush(stdout);
  }

  // Latency impact on the Table-II micro-benchmark (global queue).
  bench::SchedulingBenchConfig cfg;
  cfg.warmup = quick ? 50 : 200;
  cfg.iterations = quick ? 300 : 2000;
  std::printf("\n%22s %22s\n", "task latency (ns)", "");
  std::printf("%12s %22s %22s\n", "queue", "double-check", "always-lock");
  for (const bool per_core : {true, false}) {
    double vals[2];
    for (int dc = 0; dc < 2; ++dc) {
      const topo::Machine machine = topo::Machine::kwak();
      TaskManagerConfig tm_cfg;
      tm_cfg.double_check = (dc == 0);
      tm_cfg.queue_stats = false;
      bench::SchedulingBench bench_run(machine, tm_cfg, cfg);
      vals[dc] = bench_run.measure(per_core
                                       ? topo::CpuSet::single(0)
                                       : topo::CpuSet::first_n(machine.ncpus()));
    }
    std::printf("%12s %22.0f %22.0f\n", per_core ? "per-core" : "global",
                vals[0], vals[1]);
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
