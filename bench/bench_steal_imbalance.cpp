// Work-stealing bench: the single-chip-hot imbalance the paper's Algorithm 1
// cannot recover from.
//
// All tasks are runnable anywhere (empty CpuSet) but submitted — locality
// hint — into the queues of chip #0 only, the pattern of a producer thread
// pinned to one chip flooding its local branch (e.g. §IV-B submission
// offload landing everything near the submitter). Without stealing only
// chip #0's cores can reach that branch and every other core busy-polls an
// empty hierarchy; with stealing the idle branches drain the hot chip in
// locality order. Reported: makespan of draining N such tasks with one
// scheduling thread per simulated core, swept over steal on/off and every
// QueueKind, on both paper topologies.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/task_manager.hpp"
#include "topo/machine.hpp"
#include "util/stats.hpp"

namespace {

using namespace piom;

/// Per-task CPU work. Trivial tasks drain inside one OS timeslice and the
/// makespan would only measure scheduler noise; a real compute grain makes
/// the cost of cores that *cannot* participate visible.
double g_task_burn_us = 25;

TaskResult burn_and_count(void* arg) {
  util::burn_cpu_us(g_task_burn_us);
  static_cast<std::atomic<int>*>(arg)->fetch_add(1, std::memory_order_relaxed);
  return TaskResult::kDone;
}

struct PointResult {
  double makespan_ms = 0;
  uint64_t stolen = 0;       ///< tasks that changed branches
  int participating = 0;     ///< cores that executed >= 1 task
};

/// Drain `ntasks` anywhere-runnable tasks hinted into chip 0's core queues,
/// one scheduling thread per core. Returns the median makespan over `reps`.
PointResult run_point(const topo::Machine& machine, QueueKind kind,
                      bool steal, int steal_batch, int ntasks, int reps) {
  TaskManagerConfig cfg;
  cfg.queue_kind = kind;
  cfg.steal = steal;
  cfg.steal_batch = steal_batch;
  // The measured path is the drain, not the counters.
  cfg.queue_stats = false;
  TaskManager tm(machine, cfg);
  // Chip 0's core queues: the cores covered by the first chip-level node.
  const topo::TopoNode* chip0 = nullptr;
  for (const auto& n : machine.nodes()) {
    if (n->level == topo::Level::kChip) {
      chip0 = n.get();
      break;
    }
  }
  std::vector<int> hot_cores;
  for (int c = chip0->cpus.first(); c >= 0; c = chip0->cpus.next(c)) {
    hot_cores.push_back(c);
  }

  std::vector<double> makespans;
  uint64_t stolen_total = 0;
  int participating = 0;
  std::deque<Task> tasks(static_cast<std::size_t>(ntasks));
  for (int rep = 0; rep < reps; ++rep) {
    std::atomic<int> done{0};
    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    tm.reset_stats();
    for (int i = 0; i < ntasks; ++i) {
      Task& t = tasks[static_cast<std::size_t>(i)];
      t.init(&burn_and_count, &done, {}, kTaskNone);
      tm.submit_to(&t, machine.core_node(
                           hot_cores[static_cast<std::size_t>(i) %
                                     hot_cores.size()]));
    }
    std::vector<std::thread> schedulers;
    for (int c = 0; c < machine.ncpus(); ++c) {
      schedulers.emplace_back([&, c] {
        bench::pin_self(c);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        while (!stop.load(std::memory_order_acquire)) tm.schedule(c);
      });
    }
    const int64_t t0 = util::now_ns();
    go.store(true, std::memory_order_release);
    while (done.load(std::memory_order_acquire) < ntasks) {
      std::this_thread::yield();
    }
    const int64_t t1 = util::now_ns();
    stop.store(true, std::memory_order_release);
    for (auto& th : schedulers) th.join();
    makespans.push_back(static_cast<double>(t1 - t0) / 1e6);
    for (int c = 0; c < machine.ncpus(); ++c) {
      const CoreStats cs = tm.core_stats(c);
      stolen_total += cs.tasks_stolen;
      if (cs.tasks_run > 0) ++participating;
    }
  }
  PointResult r;
  std::sort(makespans.begin(), makespans.end());
  r.makespan_ms = makespans[makespans.size() / 2];
  r.stolen = stolen_total / static_cast<uint64_t>(reps);
  r.participating = participating / reps;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int ntasks = quick ? 1200 : 4000;
  const int reps = quick ? 3 : 5;
  const int steal_batch = 4;
  piom::bench::JsonReport report("bench_steal_imbalance", argc, argv);

  std::printf("=== Work stealing — single-chip-hot imbalance ===\n");
  std::printf(
      "%d anywhere-runnable tasks (%.0f us of compute each) hinted into\n"
      "chip #0's queues; one scheduling thread per simulated core; makespan\n"
      "to drain (median of %d). Expected shape: steal-on beats steal-off\n"
      "wherever more cores than chip #0's can participate; on oversubscribed\n"
      "hosts steal-off additionally wastes timeslices on cores that can\n"
      "never reach the hot branch.\n\n",
      ntasks, g_task_burn_us, reps);
  std::printf("%-12s %-11s %-7s %12s %10s %8s\n", "machine", "queue", "steal",
              "makespan_ms", "stolen", "cores");

  for (const char* spec : {"borderline", "kwak"}) {
    const piom::topo::Machine machine = piom::topo::Machine::from_spec(spec);
    for (const QueueKind kind :
         {QueueKind::kSpin, QueueKind::kTicket, QueueKind::kMutex,
          QueueKind::kLockFree}) {
      for (const bool steal : {false, true}) {
        const PointResult r =
            run_point(machine, kind, steal, steal_batch, ntasks, reps);
        std::printf("%-12s %-11s %-7s %12.2f %10llu %8d\n", spec,
                    queue_kind_name(kind), steal ? "on" : "off",
                    r.makespan_ms,
                    static_cast<unsigned long long>(r.stolen),
                    r.participating);
        std::fflush(stdout);
        report.row()
            .str("machine", spec)
            .str("queue", queue_kind_name(kind))
            .str("steal", steal ? "on" : "off")
            .num("tasks", ntasks)
            .num("task_burn_us", g_task_burn_us)
            .num("steal_batch", steal_batch)
            .num("makespan_ms", r.makespan_ms)
            .num("stolen_tasks", static_cast<double>(r.stolen))
            .num("participating_cores", r.participating);
      }
    }
  }
  std::printf("\n");
  return 0;
}
