// Fig 1 quantified: multiplexing several communication flows through one
// gate lets the optimization layer aggregate small messages into fewer,
// larger wire packets ("buffering packets and applying optimizations
// improve throughput and avoid NIC saturation", §II-A).
//
// Workload: a burst of small messages to the same gate, sent with and
// without the aggregation strategy, on both fast transports (the modelled
// NIC and the shmem rings). Reported: wire packets, elapsed time, effective
// throughput. Expected shape: aggregation sends far fewer packets and wins
// on per-packet-overhead-dominated bursts on either backend.
#include <cstdio>
#include <deque>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/common.hpp"
#include "nmad/session.hpp"
#include "transport/cluster.hpp"
#include "transport/channel.hpp"

namespace {

using namespace piom;

struct BurstResult {
  double elapsed_us = 0;
  uint64_t wire_packets = 0;
  double throughput_msgs_per_ms = 0;
};

BurstResult run_burst(const char* backend, bool aggregation, int nmsgs,
                      std::size_t msg_size, int iterations) {
  nmad::SessionConfig cfg;
  cfg.strategy.aggregation = aggregation;
  transport::Cluster cluster;
  transport::IChannel* na = nullptr;
  transport::IChannel* nb = nullptr;
  if (std::string_view(backend) == "shmem") {
    std::tie(na, nb) = cluster.shmem().create_channel_pair("fig1.shm");
  } else {
    std::tie(na, nb) = cluster.create_sim_link("rail0", {});
  }
  nmad::Session sa("A", cfg), sb("B", cfg);
  nmad::Gate& ga = sa.create_gate({na});
  nmad::Gate& gb = sb.create_gate({nb});

  std::vector<uint8_t> payload(msg_size, 0x77);
  std::vector<std::vector<uint8_t>> out(
      static_cast<std::size_t>(nmsgs), std::vector<uint8_t>(msg_size));
  const int64_t t0 = util::now_ns();
  for (int iter = 0; iter < iterations; ++iter) {
    std::deque<nmad::SendRequest> sreqs(static_cast<std::size_t>(nmsgs));
    std::deque<nmad::RecvRequest> rreqs(static_cast<std::size_t>(nmsgs));
    for (int i = 0; i < nmsgs; ++i) {
      gb.irecv(rreqs[static_cast<std::size_t>(i)], static_cast<nmad::Tag>(i),
               out[static_cast<std::size_t>(i)].data(), msg_size);
    }
    // The burst: defer all sends (they multiplex in the pending queue),
    // then one flush lets the strategy see the whole flow (Fig 1's collect
    // layer feeding the optimization layer).
    for (int i = 0; i < nmsgs; ++i) {
      ga.isend(sreqs[static_cast<std::size_t>(i)], static_cast<nmad::Tag>(i),
               payload.data(), msg_size, /*defer=*/true);
    }
    ga.flush();
    // Requests must stay alive until completed — wait for the sends too
    // (their TX completions), not only the receives.
    for (;;) {
      sa.progress();
      sb.progress();
      bool all = true;
      for (const auto& r : rreqs) {
        if (!r.completed()) {
          all = false;
          break;
        }
      }
      for (const auto& s : sreqs) {
        if (!s.completed()) {
          all = false;
          break;
        }
      }
      if (all) break;
    }
  }
  const int64_t t1 = util::now_ns();
  BurstResult res;
  res.elapsed_us = static_cast<double>(t1 - t0) * 1e-3;
  res.wire_packets = na->stats().packets_tx;
  res.throughput_msgs_per_ms =
      static_cast<double>(nmsgs) * iterations / (res.elapsed_us * 1e-3);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int iterations = quick ? 5 : 20;
  piom::bench::JsonReport report("bench_fig1_aggregation", argc, argv);
  std::printf(
      "=== Fig 1 — cross-flow aggregation (burst of small messages to one "
      "gate) ===\n");
  std::printf("expected shape: aggregation sends far fewer wire packets and "
              "achieves higher burst throughput, on both transports\n\n");
  for (const char* backend : {"simnet", "shmem"}) {
    std::printf("--- backend: %s ---\n", backend);
    std::printf("%8s %10s %12s %14s %14s %12s\n", "msgs", "size(B)",
                "strategy", "packets", "time(us)", "msgs/ms");
    for (const int nmsgs : {4, 16, 64}) {
      for (const std::size_t size : {64u, 512u, 2048u}) {
        for (const bool aggregation : {false, true}) {
          const BurstResult r =
              run_burst(backend, aggregation, nmsgs, size, iterations);
          std::printf("%8d %10zu %12s %14llu %14.1f %12.1f\n", nmsgs, size,
                      aggregation ? "aggreg" : "no-aggreg",
                      static_cast<unsigned long long>(r.wire_packets),
                      r.elapsed_us, r.throughput_msgs_per_ms);
          report.row()
              .str("backend", backend)
              .num("aggregation", aggregation ? 1 : 0)
              .num("msgs", nmsgs)
              .num("bytes", static_cast<double>(size))
              .num("wire_packets", static_cast<double>(r.wire_packets))
              .num("elapsed_us", r.elapsed_us)
              .num("msgs_per_ms", r.throughput_msgs_per_ms);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
