// Reproduces Table II: micro-benchmark of task scheduling on a 4-way
// quad-core NUMA machine ('kwak', 16 cores, shared L3 per chip — Fig 3).
//
// Expected shape (paper, ns): per-core ~700 local / ~1800 remote-NUMA,
// per-chip ~1900-2050, global(16) ~13585 — the global queue degrades much
// faster than on the 8-core machine.
#include "bench/table_scheduling.hpp"
#include "topo/machine.hpp"

int main(int argc, char** argv) {
  const piom::topo::Machine machine = piom::topo::Machine::kwak();
  piom::bench::run_scheduling_table(
      machine, "bench_table2_kwak",
      "=== Table II — task scheduling micro-benchmark on 'kwak' "
      "(4-way quad-core NUMA, synthetic) ===",
      "paper reference (ns): per-core 697-1867, per-chip 1905-5216, "
      "global(16) 13585",
      argc, argv);
  return 0;
}
