// Collective latency and per-rank gate cost vs cluster size, dense vs
// sparse overlay — the scaling story of docs/scaling.md in one table.
//
// Rows are (overlay, N); columns the per-call latency of barrier / 1 KiB
// bcast / 256-double allreduce plus the *maximum per-rank gate count* the
// run left behind. The gate column is the point: dense collectives wire
// the algorithm's whole peer pattern (O(log N) for the dissemination
// barrier, up to O(N) for rooted fan-ins), while the sparse overlay is
// bounded by the view — fanout + 3 gates per rank no matter how large N
// grows.
//
// Everything runs on the caller-driven openmpi-like engine over a pure
// shmem mesh: no background progress threads and no per-channel NIC
// threads, so an N=256 world is N ranks' worth of *state*, not threads —
// the only configuration that measures anything meaningful on the 1-CPU
// containers this repo's CI uses (see bench/README.md). Latencies at big
// N are still N threads time-slicing one core: treat the columns as
// relative (dense vs sparse at equal N), not absolute.
//
// --quick shrinks N and the iteration counts; --json <path> records the
// BENCH_*.json layout (baseline: BENCH_table_scale.json).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"

namespace {

using piom::mpi::Comm;
using piom::mpi::EngineKind;
using piom::mpi::OverlayMode;
using piom::mpi::ReduceOp;
using piom::mpi::World;
using piom::mpi::WorldConfig;

struct BenchShape {
  std::vector<int> cluster_sizes;
  int warmup = 3;
  int iterations = 20;
};

struct Sample {
  double barrier_us = 0;
  double bcast_us = 0;
  double allreduce_us = 0;
  int max_gates = 0;
};

WorldConfig scale_config(int nranks, OverlayMode overlay) {
  WorldConfig cfg;
  cfg.engine = EngineKind::kOpenMpiLike;
  cfg.nranks = nranks;
  cfg.session.pool_bufs_per_rail = 8;
  cfg.session.pool_bufs_initial = 1;
  cfg.overlay.mode = overlay;
  cfg.overlay.fanout = 4;
  cfg.policy.node_of.assign(static_cast<std::size_t>(nranks), 0);
  cfg.policy.intra = piom::transport::PairWiring::kShmem;
  return cfg;
}

/// One timed loop of `body` across the whole cluster; returns mean us.
template <typename Body>
double timed(World& world, int nranks, const BenchShape& shape, Body body) {
  int64_t t0 = 0, t1 = 0;
  std::vector<std::thread> ranks;
  for (int r = 0; r < nranks; ++r) {
    ranks.emplace_back([&, r] {
      Comm& comm = world.comm(r);
      for (int i = 0; i < shape.warmup; ++i) body(comm);
      comm.barrier();
      if (r == 0) t0 = piom::util::now_ns();
      for (int i = 0; i < shape.iterations; ++i) body(comm);
      comm.barrier();
      if (r == 0) t1 = piom::util::now_ns();
    });
  }
  for (auto& t : ranks) t.join();
  return static_cast<double>(t1 - t0) * 1e-3 / shape.iterations;
}

Sample measure(int nranks, OverlayMode overlay, const BenchShape& shape) {
  World world(scale_config(nranks, overlay));
  Sample s;
  s.barrier_us =
      timed(world, nranks, shape, [](Comm& c) { c.barrier(); });
  s.bcast_us = timed(world, nranks, shape, [](Comm& c) {
    static thread_local std::vector<uint8_t> buf(1024, 0x5a);
    c.bcast(buf.data(), buf.size(), 0);
  });
  s.allreduce_us = timed(world, nranks, shape, [](Comm& c) {
    static thread_local std::vector<double> v(256, 1.0);
    c.allreduce(v.data(), v.size(), ReduceOp::kSum);
  });
  for (int r = 0; r < nranks; ++r) {
    s.max_gates = std::max(s.max_gates,
                           world.comm(r).membership().installed_gates());
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  BenchShape shape;
  shape.cluster_sizes = {16, 64, 128, 256};
  if (piom::bench::quick_mode(argc, argv)) {
    shape.cluster_sizes = {16, 64};
    shape.warmup = 1;
    shape.iterations = 5;
  }
  piom::bench::JsonReport report("bench_coll_scale", argc, argv);

  std::printf(
      "=== collective scaling — dense vs sparse overlay (openmpi-like "
      "engine, shmem mesh) ===\n"
      "expected shape: latencies comparable at small N; the max_gates\n"
      "column stays flat (fanout+3) under sparse while dense grows with\n"
      "the algorithm's peer pattern\n\n");

  const int label_w = 16, cell_w = 14;
  piom::bench::print_row(
      "overlay/N",
      {"barrier_us", "bcast1k_us", "allred256d_us", "max_gates"}, label_w,
      cell_w);
  for (const OverlayMode overlay :
       {OverlayMode::kDense, OverlayMode::kSparse}) {
    for (const int n : shape.cluster_sizes) {
      const Sample s = measure(n, overlay, shape);
      report.row()
          .str("overlay", piom::mpi::overlay_mode_name(overlay))
          .num("nranks", n)
          .num("barrier_us", s.barrier_us)
          .num("bcast1k_us", s.bcast_us)
          .num("allreduce256d_us", s.allreduce_us)
          .num("max_gates", s.max_gates);
      const std::string label =
          std::string(piom::mpi::overlay_mode_name(overlay)) + "/" +
          std::to_string(n);
      piom::bench::print_row(
          label,
          {piom::bench::fmt_us(s.barrier_us), piom::bench::fmt_us(s.bcast_us),
           piom::bench::fmt_us(s.allreduce_us), std::to_string(s.max_gates)},
          label_w, cell_w);
    }
  }
  return 0;
}
