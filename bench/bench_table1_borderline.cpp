// Reproduces Table I: micro-benchmark of task scheduling on a 4-way
// dual-core machine ('borderline', 8 cores, no shared L3).
//
// Expected shape (paper, ns): per-core queues 770-860 (core #0 slightly
// above its siblings; remote cores pay inter-CPU traffic), per-chip queues
// ~1060-1200, global queue ~4720 — the global queue is the clear loser and
// its overhead grows with core count (compare Table II).
#include "bench/table_scheduling.hpp"
#include "topo/machine.hpp"

int main(int argc, char** argv) {
  const piom::topo::Machine machine = piom::topo::Machine::borderline();
  piom::bench::run_scheduling_table(
      machine, "bench_table1_borderline",
      "=== Table I — task scheduling micro-benchmark on 'borderline' "
      "(4-way dual-core, synthetic) ===",
      "paper reference (ns): per-core 770-1819, per-chip 1059-1199, "
      "global(8) 4720",
      argc, argv);
  return 0;
}
