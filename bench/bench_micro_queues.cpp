// google-benchmark micro-benchmarks of the queue primitives themselves:
// raw enqueue/dequeue cost per backend, uncontended and contended, plus the
// Algorithm-2 empty-check fast path. These are the building-block numbers
// behind Tables I/II.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/lf_queue.hpp"
#include "core/task_queue.hpp"

namespace {

using namespace piom;

TaskResult nop(void*) { return TaskResult::kDone; }

std::unique_ptr<ITaskQueue> make_queue(int kind, bool count_stats = true) {
  switch (kind) {
    case 0:
      return std::make_unique<SpinTaskQueue>(/*double_check=*/true,
                                             count_stats);
    case 1:
      return std::make_unique<TicketTaskQueue>(/*double_check=*/true,
                                               count_stats);
    case 2:
      return std::make_unique<MutexTaskQueue>(/*double_check=*/true,
                                              count_stats);
    default: return std::make_unique<LockFreeTaskQueue>(count_stats);
  }
}

void BM_EnqueueDequeue(benchmark::State& state) {
  auto q = make_queue(static_cast<int>(state.range(0)), state.range(1) != 0);
  Task task;
  task.init(&nop, nullptr, {}, kTaskNone);
  task.state.store(TaskState::kQueued);
  for (auto _ : state) {
    q->enqueue(&task);
    benchmark::DoNotOptimize(q->try_dequeue());
  }
}
BENCHMARK(BM_EnqueueDequeue)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 0}})
    ->ArgNames({"kind", "stats"});

void BM_EnqueueDequeueContended(benchmark::State& state) {
  // One queue shared by all benchmark threads; each thread cycles its own
  // task through it.
  static std::unique_ptr<ITaskQueue> q;
  if (state.thread_index() == 0) q = make_queue(static_cast<int>(state.range(0)));
  Task task;
  task.init(&nop, nullptr, {}, kTaskNone);
  task.state.store(TaskState::kQueued);
  for (auto _ : state) {
    q->enqueue(&task);
    Task* t = q->try_dequeue();
    benchmark::DoNotOptimize(t);
    // Under contention we may pop another thread's task or nothing; both
    // are fine for a cost measurement, but never lose a popped task:
    if (t != nullptr && t != &task) q->enqueue(t);
  }
  // Drain on exit so no thread's stack-allocated task stays referenced.
  if (state.thread_index() == 0) {
  }
}
BENCHMARK(BM_EnqueueDequeueContended)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Threads(8)
    ->ArgName("kind")
    ->UseRealTime();

void BM_EmptyCheck(benchmark::State& state) {
  // Algorithm 2's fast path: try_dequeue on an empty queue. The stats
  // dimension isolates the empty-check counter RMW — with stats off the
  // path must cost a single acquire load (the zero-cost-off guarantee the
  // TaskManagerConfig::queue_stats switch documents).
  SpinTaskQueue q(/*double_check=*/state.range(0) != 0,
                  /*count_stats=*/state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_dequeue());
  }
}
BENCHMARK(BM_EmptyCheck)
    ->ArgsProduct({{1, 0}, {1, 0}})
    ->ArgNames({"double_check", "stats"});

void BM_EmptyStealScan(benchmark::State& state) {
  // A thief scanning an empty victim: must match the empty-check fast path
  // (no lock, no counter) so idle cores can afford wide victim scans.
  auto q = make_queue(static_cast<int>(state.range(0)),
                      /*count_stats=*/false);
  Task* out[4];
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->try_steal(0, 4, out));
  }
}
BENCHMARK(BM_EmptyStealScan)
    ->Arg(0)->Arg(3)
    ->ArgName("kind");

}  // namespace

BENCHMARK_MAIN();
