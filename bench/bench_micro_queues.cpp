// google-benchmark micro-benchmarks of the queue primitives themselves:
// raw enqueue/dequeue cost per backend, uncontended and contended, plus the
// Algorithm-2 empty-check fast path. These are the building-block numbers
// behind Tables I/II.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/lf_queue.hpp"
#include "core/task_queue.hpp"

namespace {

using namespace piom;

TaskResult nop(void*) { return TaskResult::kDone; }

std::unique_ptr<ITaskQueue> make_queue(int kind) {
  switch (kind) {
    case 0: return std::make_unique<SpinTaskQueue>();
    case 1: return std::make_unique<TicketTaskQueue>();
    case 2: return std::make_unique<MutexTaskQueue>();
    default: return std::make_unique<LockFreeTaskQueue>();
  }
}

void BM_EnqueueDequeue(benchmark::State& state) {
  auto q = make_queue(static_cast<int>(state.range(0)));
  Task task;
  task.init(&nop, nullptr, {}, kTaskNone);
  task.state.store(TaskState::kQueued);
  for (auto _ : state) {
    q->enqueue(&task);
    benchmark::DoNotOptimize(q->try_dequeue());
  }
}
BENCHMARK(BM_EnqueueDequeue)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->ArgName("kind");

void BM_EnqueueDequeueContended(benchmark::State& state) {
  // One queue shared by all benchmark threads; each thread cycles its own
  // task through it.
  static std::unique_ptr<ITaskQueue> q;
  if (state.thread_index() == 0) q = make_queue(static_cast<int>(state.range(0)));
  Task task;
  task.init(&nop, nullptr, {}, kTaskNone);
  task.state.store(TaskState::kQueued);
  for (auto _ : state) {
    q->enqueue(&task);
    Task* t = q->try_dequeue();
    benchmark::DoNotOptimize(t);
    // Under contention we may pop another thread's task or nothing; both
    // are fine for a cost measurement, but never lose a popped task:
    if (t != nullptr && t != &task) q->enqueue(t);
  }
  // Drain on exit so no thread's stack-allocated task stays referenced.
  if (state.thread_index() == 0) {
  }
}
BENCHMARK(BM_EnqueueDequeueContended)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Threads(8)
    ->ArgName("kind")
    ->UseRealTime();

void BM_EmptyCheck(benchmark::State& state) {
  // Algorithm 2's fast path: try_dequeue on an empty queue.
  SpinTaskQueue with_check(/*double_check=*/true);
  SpinTaskQueue without(/*double_check=*/false);
  SpinTaskQueue& q = state.range(0) != 0 ? with_check : without;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_dequeue());
  }
}
BENCHMARK(BM_EmptyCheck)->Arg(1)->Arg(0)->ArgName("double_check");

}  // namespace

BENCHMARK_MAIN();
