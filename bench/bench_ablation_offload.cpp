// Ablation: submission offload (paper §IV-B and [2] "A multithreaded
// communication engine for multicore architectures").
//
// The PIOMan engine normally offloads packet submission to the nearest idle
// core, so even *small* (eager) messages can overlap the sender's
// computation: the sender's CPU returns from isend immediately, and an idle
// core does the packing/posting. With offload disabled, submission is
// inline and the send path steals sender cycles.
//
// Workload: isend(small) + compute + wait, like Fig 5 but below the
// rendezvous threshold; report the overlap ratio with and without offload.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"
#include "util/timing.hpp"

namespace {

using namespace piom;

double measure(bool offload, std::size_t size, double compute_us, int iters) {
  mpi::WorldConfig cfg;
  cfg.engine = mpi::EngineKind::kPioman;
  cfg.pioman.workers = 4;
  cfg.pioman.offload_submission = offload;
  mpi::World world(cfg);
  std::vector<uint8_t> data(size, 0x5E), out(size);
  double total = 0;
  for (int i = 0; i < iters; ++i) {
    std::thread rx([&] { world.comm(1).recv(0, 1, out.data(), out.size()); });
    mpi::Request s;
    const int64_t t0 = util::now_ns();
    world.comm(0).isend(s, 1, 1, data.data(), data.size());
    util::burn_cpu_us(compute_us);
    world.comm(0).wait(s);
    total += static_cast<double>(util::now_ns() - t0) * 1e-3;
    rx.join();
  }
  const double mean_total = total / iters;
  const double ratio = compute_us / mean_total;
  return ratio > 1.0 ? 1.0 : ratio;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int iters = quick ? 5 : 15;
  std::printf(
      "=== Ablation — submission offload to idle cores (pioman engine, "
      "eager messages) ===\n");
  std::printf("expected shape: with offload the sender overlaps even small "
              "sends; inline submission costs sender cycles\n\n");
  std::printf("%10s %12s %14s %14s\n", "size(B)", "compute(us)",
              "offload", "inline");
  for (const std::size_t size : {512u, 4096u, 16384u}) {
    for (const double compute_us : {20.0, 50.0, 100.0}) {
      const double with_offload = measure(true, size, compute_us, iters);
      const double inline_sub = measure(false, size, compute_us, iters);
      std::printf("%10zu %12.0f %14.3f %14.3f\n", size, compute_us,
                  with_offload, inline_sub);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  return 0;
}
