// Shared helpers for the paper-reproduction benchmarks.
#pragma once

#include <pthread.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "util/env.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace piom::bench {

/// Pin the calling thread to host CPU `cpu` (best effort).
inline void pin_self(int cpu) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || static_cast<unsigned>(cpu) >= hw) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

/// --quick on the command line (or PIOM_BENCH_QUICK=1) shrinks iteration
/// counts so `for b in build/bench/*; do $b; done` stays fast.
inline bool quick_mode(int argc, char** argv) {
  return util::arg_flag(argc, argv, "quick") ||
         util::env::boolean("PIOM_BENCH_QUICK", false);
}

/// Print one table row: label column then fixed-width numeric cells.
inline void print_row(const std::string& label,
                      const std::vector<std::string>& cells, int label_width,
                      int cell_width) {
  std::printf("%-*s", label_width, label.c_str());
  for (const std::string& c : cells) std::printf("%*s", cell_width, c.c_str());
  std::printf("\n");
}

inline std::string fmt_ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", ns);
  return buf;
}

inline std::string fmt_us(double us, int decimals = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, us);
  return buf;
}

/// Machine-readable results: pass `--json <path>` (or --json=<path>) and
/// the benchmark writes the BENCH_*.json layout of bench/README.md — one
/// `results` object per printed table row — alongside its stdout table.
/// Without the flag every call is a no-op, so instrumentation costs
/// nothing. The commit field comes from $PIOM_BENCH_COMMIT when set
/// (record scripts export it), "unrecorded" otherwise.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)),
        path_(util::arg_value(argc, argv, "json")) {
    for (int i = 1; i < argc; ++i) {
      // The output path itself is not an interesting argument to record.
      const std::string a = argv[i];
      if (a == "--json") {
        ++i;
        continue;
      }
      if (a.rfind("--json=", 0) == 0) continue;
      args_.push_back(a);
    }
  }
  ~JsonReport() { write(); }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Start a new result row; chain num()/str() to fill its fields:
  ///   report.row().str("queue", "per-core").num("core", 3).num("ns", 812);
  JsonReport& row() {
    if (enabled()) rows_.emplace_back();
    return *this;
  }
  JsonReport& num(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return field(key, buf);
  }
  JsonReport& str(const std::string& key, const std::string& value) {
    std::string rendered = "\"";
    rendered += escape(value);
    rendered += '"';
    return field(key, rendered);
  }

  /// Write the file now (also runs at destruction; idempotent).
  void write() {
    if (!enabled() || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path_.c_str());
      return;
    }
    const char* commit = std::getenv("PIOM_BENCH_COMMIT");
    char date[16] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
    if (localtime_r(&now, &tm_buf) != nullptr) {
      std::strftime(date, sizeof(date), "%Y-%m-%d", &tm_buf);
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", escape(bench_).c_str());
    std::fprintf(f, "  \"commit\": \"%s\",\n",
                 escape(commit != nullptr ? commit : "unrecorded").c_str());
    std::fprintf(f, "  \"date\": \"%s\",\n", date);
    std::fprintf(f, "  \"host\": {\"cpus\": %u, \"os\": \"%s\"},\n",
                 std::thread::hardware_concurrency(),
#ifdef __linux__
                 "linux"
#else
                 "other"
#endif
    );
    std::fprintf(f, "  \"args\": [");
    for (std::size_t i = 0; i < args_.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i ? ", " : "", escape(args_[i]).c_str());
    }
    std::fprintf(f, "],\n  \"results\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {%s}%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json results written to %s\n", path_.c_str());
  }

 private:
  // Appends piecewise: a `"x" + str + "y"` temporary chain here trips
  // GCC 12's -Wrestrict false positive once everything inlines.
  JsonReport& field(const std::string& key, const std::string& rendered) {
    if (!enabled() || rows_.empty()) return *this;
    std::string& row = rows_.back();
    if (!row.empty()) row += ", ";
    row += '"';
    row += escape(key);
    row += "\": ";
    row += rendered;
    return *this;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<std::string> args_;
  std::vector<std::string> rows_;  // pre-rendered "key": value lists
  bool written_ = false;
};

}  // namespace piom::bench
