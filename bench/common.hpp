// Shared helpers for the paper-reproduction benchmarks.
#pragma once

#include <pthread.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace piom::bench {

/// Pin the calling thread to host CPU `cpu` (best effort).
inline void pin_self(int cpu) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || static_cast<unsigned>(cpu) >= hw) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

/// --quick on the command line (or PIOM_BENCH_QUICK=1) shrinks iteration
/// counts so `for b in build/bench/*; do $b; done` stays fast.
inline bool quick_mode(int argc, char** argv) {
  return util::arg_flag(argc, argv, "quick") ||
         util::env_bool("PIOM_BENCH_QUICK", false);
}

/// Print one table row: label column then fixed-width numeric cells.
inline void print_row(const std::string& label,
                      const std::vector<std::string>& cells, int label_width,
                      int cell_width) {
  std::printf("%-*s", label_width, label.c_str());
  for (const std::string& c : cells) std::printf("%*s", cell_width, c.c_str());
  std::printf("\n");
}

inline std::string fmt_ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", ns);
  return buf;
}

inline std::string fmt_us(double us, int decimals = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, us);
  return buf;
}

}  // namespace piom::bench
