// Reproduces Fig 6: overlap of communication and computation with the
// computation on the RECEIVER side, for 32 KB and 1 MB messages.
//
// Expected shape (paper): this is the discriminating experiment — MVAPICH
// and OpenMPI do NOT overlap (the rendezvous RTS sits unhandled while the
// receiver computes; the handshake only resumes inside MPI_Wait), while
// PIOMan's background tasks answer the RTS during the computation and the
// curve rises towards 1.
#include "bench/overlap_common.hpp"

int main(int argc, char** argv) {
  using piom::bench::ComputeSide;
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int points = quick ? 5 : 10;
  const int iters = quick ? 3 : 8;
  std::printf(
      "=== Fig 6 — overlap ratio, computation on the receiver side ===\n");
  std::printf("paper reference: ONLY PIOMan overlaps at the receiver; the "
              "global-lock engines stay near Tcomp/(Tcomp+Tcomm)\n\n");
  piom::bench::run_overlap_figure("Fig 6(a) recv 32 KB",
                                  ComputeSide::kReceiver, 32 * 1024, 200.0,
                                  points, iters);
  piom::bench::run_overlap_figure("Fig 6(b) recv 1 MB",
                                  ComputeSide::kReceiver, 1 << 20, 2000.0,
                                  points, iters);
  return 0;
}
