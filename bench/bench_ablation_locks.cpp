// Ablation: the lock protecting the task queues.
//
// Paper §IV-A argues for spinlocks ("a thread that modifies a list enters
// the critical section for a very short period, less than the time required
// to perform a context switch"); §VI lists lock-free lists as future work.
// This bench compares all four queue backends on the paper's
// micro-benchmark, at the two contention extremes: the private per-core
// queue and the fully shared global queue.
#include <cstdio>

#include "bench/table_scheduling.hpp"
#include "topo/machine.hpp"

int main(int argc, char** argv) {
  using namespace piom;
  bench::SchedulingBenchConfig cfg;
  if (bench::quick_mode(argc, argv)) {
    cfg.warmup = 50;
    cfg.iterations = 300;
  }
  const topo::Machine machine = topo::Machine::borderline();
  std::printf(
      "=== Ablation — queue lock implementation (borderline topology, ns "
      "per task) ===\n");
  std::printf("expected shape: spinlock ~ lock-free < ticket < mutex under "
              "contention; all equal on the uncontended per-core queue\n\n");
  std::printf("%-12s %16s %16s\n", "queue", "per-core #0", "global (8 cores)");
  for (const QueueKind kind : {QueueKind::kSpin, QueueKind::kTicket,
                               QueueKind::kMutex, QueueKind::kLockFree}) {
    TaskManagerConfig tm_cfg;
    tm_cfg.queue_kind = kind;
    bench::SchedulingBench bench_run(machine, tm_cfg, cfg);
    const double local = bench_run.measure(topo::CpuSet::single(0));
    const double global =
        bench_run.measure(topo::CpuSet::first_n(machine.ncpus()));
    std::printf("%-12s %16.0f %16.0f\n", queue_kind_name(kind), local, global);
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
