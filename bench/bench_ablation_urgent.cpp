// Ablation: preemptive (urgent) tasks — the paper's §VI future work,
// implemented here via a dedicated IRQ service thread.
//
// Scenario: every worker core runs a CPU-hungry job that never blocks. A
// task is submitted and its submission-to-execution latency is measured:
//   * normal task + timer hook  — waits for the next timer tick (paper's
//     baseline guarantee, ~timer period);
//   * urgent task + IRQ service — runs within a semaphore wake (~µs),
//     "even on a distant CPU where a thread is computing".
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench/common.hpp"
#include "core/task_manager.hpp"
#include "sched/irq.hpp"
#include "sched/runtime.hpp"
#include "sched/timer.hpp"
#include "topo/machine.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace {

using namespace piom;

TaskResult stamp(void* arg) {
  static_cast<std::atomic<int64_t>*>(arg)->store(util::now_ns(),
                                                 std::memory_order_release);
  return TaskResult::kDone;
}

/// Median submission-to-execution latency (µs) with all cores busy.
double run_case(bool urgent, int iters) {
  const topo::Machine machine = topo::Machine::flat(4);
  TaskManager tm(machine);
  sched::Runtime rt(machine, tm);
  sched::TimerHook timer(tm, std::chrono::microseconds(100));
  sched::IrqService irq(tm);

  std::atomic<bool> stop{false};
  std::atomic<int> busy{0};
  for (int c = 0; c < machine.ncpus(); ++c) {
    rt.submit_job(c, [&] {
      busy.fetch_add(1);
      while (!stop.load(std::memory_order_acquire)) {
      }
    });
  }
  while (busy.load() < machine.ncpus()) std::this_thread::yield();

  util::SampleSet samples;
  for (int i = 0; i < iters; ++i) {
    std::atomic<int64_t> executed_at{0};
    Task t;
    t.init(&stamp, &executed_at, {},
           (urgent ? kTaskUrgent : kTaskNone) | kTaskNotify);
    const int64_t t0 = util::now_ns();
    tm.submit(&t);
    t.wait_done();
    samples.add(static_cast<double>(executed_at.load() - t0) * 1e-3);
  }
  stop.store(true);
  rt.quiesce();
  return samples.summary().median;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int iters = quick ? 100 : 500;
  std::printf(
      "=== Ablation — preemptive (urgent) tasks vs timer-rescued tasks ===\n");
  std::printf("scenario: 4 workers all running CPU-hungry jobs; median "
              "submission-to-execution latency\n");
  std::printf("expected shape: urgent << normal (normal waits for the 100us "
              "timer tick; urgent takes one out-of-band wakeup)\n\n");
  const double normal_us = run_case(false, iters);
  const double urgent_us = run_case(true, iters);
  std::printf("%-28s %10.1f us\n", "normal task (timer rescue)", normal_us);
  std::printf("%-28s %10.1f us\n", "urgent task (IRQ service)", urgent_us);
  std::printf("%-28s %10.1fx\n", "speedup",
              urgent_us > 0 ? normal_us / urgent_us : 0.0);
  std::printf("\n");
  return 0;
}
