// OSU-style point-to-point latency and bandwidth sweeps over the message
// size, for all three engines. Not a specific paper figure, but the
// standard sanity panel for any communication library — and it shows the
// eager→rendezvous switch (16 KB) and each engine's small-message costs.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"
#include "util/timing.hpp"

namespace {

using namespace piom;

/// One-way ping-pong latency (µs) for `size`-byte messages.
double latency_us(mpi::World& world, std::size_t size, int iters) {
  std::vector<uint8_t> buf(std::max<std::size_t>(size, 1));
  std::thread echo([&] {
    std::vector<uint8_t> b(std::max<std::size_t>(size, 1));
    for (int i = 0; i < iters; ++i) {
      world.comm(1).recv(0, 1, b.data(), size);
      world.comm(1).send(0, 2, b.data(), size);
    }
  });
  // Warm-up round is included in the thread count on purpose; skip timing
  // the first quarter.
  int64_t t0 = util::now_ns();
  for (int i = 0; i < iters; ++i) {
    if (i == iters / 4) t0 = util::now_ns();
    world.comm(0).send(1, 1, buf.data(), size);
    world.comm(0).recv(1, 2, buf.data(), size);
  }
  const int64_t t1 = util::now_ns();
  echo.join();
  const int timed = iters - iters / 4;
  return static_cast<double>(t1 - t0) / timed / 2.0 * 1e-3;
}

/// Streaming bandwidth (MB/s): a window of nonblocking sends, one ack.
double bandwidth_MBps(mpi::World& world, std::size_t size, int window,
                      int iters) {
  std::vector<uint8_t> buf(size, 0x11);
  std::thread sink([&] {
    std::vector<uint8_t> b(size);
    std::vector<std::unique_ptr<mpi::Request>> reqs;
    for (int it = 0; it < iters; ++it) {
      reqs.clear();
      for (int w = 0; w < window; ++w) {
        reqs.push_back(std::make_unique<mpi::Request>());
        world.comm(1).irecv(*reqs.back(), 0, 1, b.data(), size);
        world.comm(1).wait(*reqs.back());
      }
      const char ack = 1;
      world.comm(1).send(0, 2, &ack, 1);
    }
  });
  const int64_t t0 = util::now_ns();
  for (int it = 0; it < iters; ++it) {
    std::vector<std::unique_ptr<mpi::Request>> reqs;
    for (int w = 0; w < window; ++w) {
      reqs.push_back(std::make_unique<mpi::Request>());
      world.comm(0).isend(*reqs.back(), 1, 1, buf.data(), size);
    }
    for (auto& r : reqs) world.comm(0).wait(*r);
    char ack = 0;
    world.comm(0).recv(1, 2, &ack, 1);
  }
  const int64_t t1 = util::now_ns();
  sink.join();
  const double secs = static_cast<double>(t1 - t0) * 1e-9;
  return static_cast<double>(size) * window * iters / secs / 1e6;
}

mpi::World make_world(mpi::EngineKind kind) {
  mpi::WorldConfig cfg;
  cfg.engine = kind;
  cfg.pioman.workers = 4;
  return mpi::World(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int lat_iters = quick ? 30 : 100;
  const int bw_iters = quick ? 3 : 8;
  std::vector<std::size_t> sizes{4, 256, 4096, 16384, 65536, 1u << 20};
  if (quick) sizes = {4, 4096, 65536};

  std::printf("=== Point-to-point latency (one-way, us) ===\n");
  std::printf("(eager<=16KB, rendezvous above; link model: 1.5us + "
              "1.25GB/s)\n\n");
  std::printf("%10s %14s %14s %14s\n", "size(B)", "mvapich-like",
              "openmpi-like", "pioman");
  {
    auto wm = make_world(mpi::EngineKind::kMvapichLike);
    auto wo = make_world(mpi::EngineKind::kOpenMpiLike);
    auto wp = make_world(mpi::EngineKind::kPioman);
    for (const std::size_t size : sizes) {
      std::printf("%10zu %14.2f %14.2f %14.2f\n", size,
                  latency_us(wm, size, lat_iters),
                  latency_us(wo, size, lat_iters),
                  latency_us(wp, size, lat_iters));
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Streaming bandwidth (window=8, MB/s) ===\n\n");
  std::printf("%10s %14s %14s %14s\n", "size(B)", "mvapich-like",
              "openmpi-like", "pioman");
  {
    auto wm = make_world(mpi::EngineKind::kMvapichLike);
    auto wo = make_world(mpi::EngineKind::kOpenMpiLike);
    auto wp = make_world(mpi::EngineKind::kPioman);
    for (const std::size_t size : {4096u, 65536u, 1u << 20}) {
      std::printf("%10zu %14.1f %14.1f %14.1f\n", size,
                  bandwidth_MBps(wm, size, 8, bw_iters),
                  bandwidth_MBps(wo, size, 8, bw_iters),
                  bandwidth_MBps(wp, size, 8, bw_iters));
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  return 0;
}
