// Reproduces Fig 4: OSU-style multi-threaded latency test.
//
// A single sender (rank 0) ping-pongs 4-byte messages with a receiver
// process (rank 1) that runs N receiving threads; the average one-way
// latency is reported as N grows from 1 to 128.
//
// Expected shape (paper): MVAPICH's latency climbs steeply with the number
// of receiving threads (all of them poll the library under one lock);
// PIOMan stays near-constant even past the core count, because receiving
// threads block on a condition while idle cores do the polling. OpenMPI
// could not run this test in the paper (segfault); our openmpi-like engine
// runs and behaves like the other global-lock engine.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"

namespace {

using piom::mpi::EngineKind;
using piom::mpi::Request;
using piom::mpi::Tag;
using piom::mpi::World;
using piom::mpi::WorldConfig;

/// One data point: mean one-way latency (µs) with `nthreads` receivers.
double run_point(EngineKind kind, int nthreads, int iters_per_thread) {
  WorldConfig cfg;
  cfg.engine = kind;
  cfg.pioman.workers = 4;
  World world(cfg);

  constexpr int kWarmupRounds = 4;  // untimed: world spin-up, pool warm-up
  std::vector<std::thread> receivers;
  receivers.reserve(static_cast<std::size_t>(nthreads));
  // Each receiver thread: recv 4 bytes on its tag, send a 4-byte reply.
  for (int t = 0; t < nthreads; ++t) {
    receivers.emplace_back([&world, t, iters_per_thread] {
      int32_t value = 0;
      for (int i = 0; i < iters_per_thread + kWarmupRounds; ++i) {
        world.comm(1).recv(0, static_cast<Tag>(t), &value, sizeof(value));
        world.comm(1).send(0, static_cast<Tag>(10000 + t), &value,
                           sizeof(value));
      }
    });
  }

  // Sender: round-robin over the receiver threads' tags, like the OSU
  // multi-threaded latency test's single sender.
  const int total_iters = nthreads * (iters_per_thread + kWarmupRounds);
  int64_t t0 = piom::util::now_ns();
  int32_t payload = 0;
  for (int i = 0; i < total_iters; ++i) {
    if (i == nthreads * kWarmupRounds) t0 = piom::util::now_ns();
    const int t = i % nthreads;
    world.comm(0).send(1, static_cast<Tag>(t), &payload, sizeof(payload));
    world.comm(0).recv(1, static_cast<Tag>(10000 + t), &payload,
                       sizeof(payload));
  }
  const int64_t t1 = piom::util::now_ns();
  for (auto& th : receivers) th.join();
  // One-way latency = RTT / 2 over the timed iterations.
  return static_cast<double>(t1 - t0) /
         (nthreads * iters_per_thread) / 2.0 * 1e-3;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int iters = quick ? 40 : 150;
  std::vector<int> thread_counts{1, 2, 4, 8, 16, 32, 64, 128};
  if (quick) thread_counts = {1, 4, 16, 64};

  std::printf(
      "=== Fig 4 — multi-threaded latency test (4-byte ping-pong, one-way "
      "latency in us) ===\n");
  std::printf(
      "paper reference: MVAPICH ~6us at 1 thread growing to ~1000us at 128 "
      "threads; PIOMan near-constant ~10us\n");
  std::printf("(openmpi-like: the paper's OpenMPI 1.3.1 segfaulted on this "
              "test; our re-implementation runs)\n\n");
  std::printf("%10s %14s %14s %14s\n", "threads", "mvapich-like",
              "openmpi-like", "pioman");
  for (const int n : thread_counts) {
    const double mvapich = run_point(EngineKind::kMvapichLike, n, iters);
    const double openmpi = run_point(EngineKind::kOpenMpiLike, n, iters);
    const double pioman = run_point(EngineKind::kPioman, n, iters);
    std::printf("%10d %14.2f %14.2f %14.2f\n", n, mvapich, openmpi, pioman);
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
