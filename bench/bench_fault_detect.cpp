// Failure-detection latency: how long after a rank dies do its survivors
// (a) get the detector's verdict and (b) get their parked operations
// error-completed — as a function of the heartbeat period, per engine.
//
// The detector's nominal bound is (timeout_periods + 1) × heartbeat_period:
// a peer is declared dead after timeout_periods of silence, observed by a
// tick that itself runs at most one period late. Measured detection should
// track that line (plus scheduler noise); error completion should land a
// hair later — fail_peer() runs inline in the detecting tick, so the gap
// is one progress pass, not another heartbeat. The interesting engine
// split: PIOMan's background tasks tick the detector whether or not the
// application is inside an MPI call, while the caller-driven baselines
// only detect while polled — here every rank polls, so the three should
// agree; the *architectural* difference (idle ranks detect nothing) is a
// docs/architecture.md point, not a benchmark row.
//
// --quick shrinks the period sweep and repetitions; --json <path> records
// the BENCH_*.json layout (gated by bench/check_bench_json.py in CI —
// note the 1-CPU-container caveat in bench/README.md: baseline numbers
// carry heavy scheduler noise on top of the nominal bound).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "mpi/world.hpp"
#include "util/timing.hpp"

namespace {

using piom::mpi::EngineKind;

struct Sample {
  double detect_ms = 0;    ///< kill → detector verdict on the survivor
  double complete_ms = 0;  ///< kill → survivor's parked recv error-completed
};

Sample measure_once(EngineKind kind, double period_us, int timeout_periods) {
  piom::mpi::WorldConfig cfg;
  cfg.engine = kind;
  cfg.nranks = 2;
  cfg.time_scale = 0.05;
  cfg.pioman.workers = 1;
  cfg.failure.enabled = true;
  cfg.failure.heartbeat_period_us = period_us;
  cfg.failure.timeout_periods = timeout_periods;
  piom::mpi::World world(cfg);

  // The victim stays live (pinging) until the kill: park it in a test()
  // loop on a receive nobody serves — after the cut its own detector
  // error-completes the request, which is the thread's exit signal.
  std::atomic<bool> victim_up{false};
  std::thread victim([&] {
    piom::mpi::Comm& comm = world.comm(1);
    int64_t v = 0;
    piom::mpi::Request req;
    comm.irecv(req, 0, /*tag=*/5, &v, sizeof(v));
    victim_up.store(true, std::memory_order_release);
    while (!comm.test(req)) std::this_thread::yield();
  });

  piom::mpi::Comm& comm = world.comm(0);
  int64_t v = 0;
  piom::mpi::Request req;
  comm.irecv(req, 1, /*tag=*/5, &v, sizeof(v));
  while (!victim_up.load(std::memory_order_acquire)) {
    (void)comm.test(req);
  }
  // A few periods of live heartbeat traffic before the cut, so the
  // measurement starts from a freshly-heard peer (worst case for the
  // detector, the honest case for the bound).
  const auto warmup = std::chrono::microseconds(
      static_cast<int64_t>(3 * period_us));
  const int64_t t_warm = piom::util::now_ns();
  while (piom::util::now_ns() - t_warm <
         std::chrono::nanoseconds(warmup).count()) {
    (void)comm.test(req);
  }

  const int64_t t_kill = piom::util::now_ns();
  world.kill_rank(1);
  Sample s;
  while (!comm.rank_failed(1)) {
    (void)comm.test(req);
  }
  s.detect_ms = static_cast<double>(piom::util::now_ns() - t_kill) * 1e-6;
  while (!comm.test(req)) {
  }
  s.complete_ms = static_cast<double>(piom::util::now_ns() - t_kill) * 1e-6;
  victim.join();
  return s;
}

const char* engine_tag(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich";
    case EngineKind::kOpenMpiLike: return "openmpi";
  }
  return "?";
}

constexpr EngineKind kEngines[] = {EngineKind::kPioman,
                                   EngineKind::kMvapichLike,
                                   EngineKind::kOpenMpiLike};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = piom::bench::quick_mode(argc, argv);
  const int timeout_periods = 10;
  const int reps = quick ? 1 : 3;
  // Floor of the sweep: a heartbeat needs ~3 thread timeslices to traverse
  // sender tick → NIC engine thread → receiver poll, which on a saturated
  // single-CPU container is tens of ms — detection bounds below that are
  // pure scheduler noise and read as instant false positives. Keep every
  // bound (period × (timeout_periods+1)) above ~50 ms.
  const std::vector<double> periods_us =
      quick ? std::vector<double>{5000, 20000}
            : std::vector<double>{5000, 10000, 20000};
  piom::bench::JsonReport report("bench_fault_detect", argc, argv);

  std::printf(
      "=== failure detection — latency vs heartbeat period ===\n"
      "nominal bound = (timeout_periods + 1) x period; detection should\n"
      "track it and error completion should land one progress pass later\n"
      "(timeout_periods = %d)\n\n",
      timeout_periods);

  const int label_w = 18, cell_w = 13;
  {
    std::vector<std::string> header = {"bound (ms)", "detect (ms)",
                                       "complete (ms)"};
    piom::bench::print_row("engine / period", header, label_w, cell_w);
  }
  for (const EngineKind kind : kEngines) {
    for (const double period_us : periods_us) {
      const double bound_ms = period_us * (timeout_periods + 1) * 1e-3;
      // Median of reps: one world per rep, so a single noisy scheduler
      // window cannot smear the whole row.
      std::vector<Sample> samples;
      for (int i = 0; i < reps; ++i) {
        samples.push_back(measure_once(kind, period_us, timeout_periods));
      }
      std::sort(samples.begin(), samples.end(),
                [](const Sample& a, const Sample& b) {
                  return a.detect_ms < b.detect_ms;
                });
      const Sample& med = samples[samples.size() / 2];
      report.row()
          .str("engine", engine_tag(kind))
          .num("period_us", period_us)
          .num("timeout_periods", timeout_periods)
          .num("bound_ms", bound_ms)
          .num("detect_ms", med.detect_ms)
          .num("complete_ms", med.complete_ms);
      std::vector<std::string> cells = {piom::bench::fmt_us(bound_ms),
                                        piom::bench::fmt_us(med.detect_ms),
                                        piom::bench::fmt_us(med.complete_ms)};
      piom::bench::print_row(std::string(engine_tag(kind)) + " " +
                                 std::to_string(static_cast<int>(period_us)) +
                                 "us",
                             cells, label_w, cell_w);
    }
  }
  return 0;
}
