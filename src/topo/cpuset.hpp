// CpuSet: fixed-size CPU bitmask attached to every task. The set expresses
// which cores are allowed to execute the task (paper §III: "A CPU set is
// attached to the task so as to avoid unwanted cores to execute it").
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace piom::topo {

class CpuSet {
 public:
  static constexpr int kMaxCpus = 256;

  constexpr CpuSet() = default;

  /// Set containing only `cpu`.
  [[nodiscard]] static CpuSet single(int cpu);
  /// Set containing cpus in [lo, hi).
  [[nodiscard]] static CpuSet range(int lo, int hi);
  /// Set containing cpus [0, n).
  [[nodiscard]] static CpuSet first_n(int n);
  /// Parse a "0-3,7,12-15" style list; throws std::invalid_argument on junk.
  [[nodiscard]] static CpuSet parse(const std::string& list);

  void set(int cpu);
  void clear(int cpu);
  [[nodiscard]] bool test(int cpu) const;

  [[nodiscard]] bool empty() const;
  [[nodiscard]] int count() const;
  /// Lowest set cpu, or -1 when empty.
  [[nodiscard]] int first() const;
  /// Lowest set cpu strictly greater than `prev`, or -1.
  [[nodiscard]] int next(int prev) const;

  /// True when every cpu of `other` is also in *this.
  [[nodiscard]] bool contains(const CpuSet& other) const;
  [[nodiscard]] bool intersects(const CpuSet& other) const;

  [[nodiscard]] CpuSet operator|(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator&(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator~() const;
  CpuSet& operator|=(const CpuSet& o);
  CpuSet& operator&=(const CpuSet& o);
  bool operator==(const CpuSet& o) const = default;

  /// "0-3,7" style rendering (inverse of parse()).
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr int kWords = kMaxCpus / 64;
  std::array<uint64_t, kWords> words_{};
};

}  // namespace piom::topo
