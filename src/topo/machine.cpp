#include "topo/machine.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"

namespace piom::topo {

const char* level_name(Level level) {
  switch (level) {
    case Level::kMachine: return "machine";
    case Level::kNuma: return "numa";
    case Level::kChip: return "chip";
    case Level::kCache: return "cache";
    case Level::kCore: return "core";
  }
  return "?";
}

std::string TopoNode::name() const {
  std::string s = level_name(level);
  s += " #" + std::to_string(index_in_level);
  return s;
}

TopoNode* Machine::add_node(Level level, int index_in_level,
                            const CpuSet& cpus, TopoNode* parent) {
  auto node = std::make_unique<TopoNode>();
  node->id = static_cast<int>(nodes_.size());
  node->level = level;
  node->index_in_level = index_in_level;
  node->cpus = cpus;
  node->parent = parent;
  node->depth = (parent != nullptr) ? parent->depth + 1 : 0;
  TopoNode* raw = node.get();
  if (parent != nullptr) parent->children.push_back(raw);
  nodes_.push_back(std::move(node));
  if (parent == nullptr) root_ = raw;
  return raw;
}

void Machine::finalize() {
  ncpus_ = root_->cpus.count();
  core_by_cpu_.assign(static_cast<std::size_t>(ncpus_), nullptr);
  for (const auto& n : nodes_) {
    if (n->level == Level::kCore) {
      const int cpu = n->cpus.first();
      if (cpu >= 0 && cpu < ncpus_) {
        core_by_cpu_[static_cast<std::size_t>(cpu)] = n.get();
      }
    }
  }
  for (int c = 0; c < ncpus_; ++c) {
    if (core_by_cpu_[static_cast<std::size_t>(c)] == nullptr) {
      throw std::logic_error("Machine: cpu " + std::to_string(c) +
                             " has no core node");
    }
  }
  path_by_cpu_.resize(static_cast<std::size_t>(ncpus_));
  for (int c = 0; c < ncpus_; ++c) {
    auto& path = path_by_cpu_[static_cast<std::size_t>(c)];
    for (const TopoNode* n = core_by_cpu_[static_cast<std::size_t>(c)];
         n != nullptr; n = n->parent) {
      path.push_back(n);
    }
  }
  // Steal order: walk up the path; at each ancestor, append every sibling
  // subtree (preorder) that the previous path node is not part of. The
  // result is every off-path node, grouped by topological distance.
  steal_order_by_cpu_.resize(static_cast<std::size_t>(ncpus_));
  for (int c = 0; c < ncpus_; ++c) {
    auto& order = steal_order_by_cpu_[static_cast<std::size_t>(c)];
    const TopoNode* on_path = core_by_cpu_[static_cast<std::size_t>(c)];
    for (const TopoNode* anc = on_path->parent; anc != nullptr;
         on_path = anc, anc = anc->parent) {
      for (const TopoNode* sibling : anc->children) {
        if (sibling == on_path) continue;
        std::vector<const TopoNode*> stack{sibling};
        while (!stack.empty()) {
          const TopoNode* n = stack.back();
          stack.pop_back();
          order.push_back(n);
          for (auto it = n->children.rbegin(); it != n->children.rend(); ++it) {
            stack.push_back(*it);
          }
        }
      }
    }
  }
}

Machine Machine::symmetric(int numa_nodes, int chips_per_numa,
                           int cores_per_chip, bool shared_cache) {
  if (numa_nodes < 1 || chips_per_numa < 1 || cores_per_chip < 1) {
    throw std::invalid_argument("Machine::symmetric: all counts must be >= 1");
  }
  const int total = numa_nodes * chips_per_numa * cores_per_chip;
  if (total > CpuSet::kMaxCpus) {
    throw std::invalid_argument("Machine::symmetric: too many cores");
  }
  Machine m;
  TopoNode* root = m.add_node(Level::kMachine, 0, CpuSet::first_n(total), nullptr);
  int cpu = 0;
  int chip_index = 0;
  int cache_index = 0;
  int core_index = 0;
  for (int n = 0; n < numa_nodes; ++n) {
    const int numa_lo = cpu;
    TopoNode* numa = nullptr;
    if (numa_nodes > 1) {
      numa = m.add_node(Level::kNuma, n,
                        CpuSet::range(numa_lo, numa_lo + chips_per_numa * cores_per_chip),
                        root);
    }
    TopoNode* numa_parent = (numa != nullptr) ? numa : root;
    for (int c = 0; c < chips_per_numa; ++c) {
      const int chip_lo = cpu;
      TopoNode* chip = m.add_node(
          Level::kChip, chip_index++,
          CpuSet::range(chip_lo, chip_lo + cores_per_chip), numa_parent);
      TopoNode* core_parent = chip;
      if (shared_cache) {
        core_parent = m.add_node(Level::kCache, cache_index++,
                                 CpuSet::range(chip_lo, chip_lo + cores_per_chip),
                                 chip);
      }
      for (int k = 0; k < cores_per_chip; ++k) {
        m.add_node(Level::kCore, core_index++, CpuSet::single(cpu), core_parent);
        ++cpu;
      }
    }
  }
  m.finalize();
  return m;
}

Machine Machine::borderline() {
  // 4 sockets x 2 cores, single NUMA domain, no shared L3: the queue levels
  // the paper reports for Table I are per-core, per-chip and global.
  return symmetric(/*numa_nodes=*/1, /*chips_per_numa=*/4,
                   /*cores_per_chip=*/2, /*shared_cache=*/false);
}

Machine Machine::kwak() {
  // 4 NUMA nodes, one quad-core chip each, shared L3 per chip (Fig 3).
  return symmetric(/*numa_nodes=*/4, /*chips_per_numa=*/1,
                   /*cores_per_chip=*/4, /*shared_cache=*/true);
}

Machine Machine::flat(int ncores) {
  if (ncores < 1 || ncores > CpuSet::kMaxCpus) {
    throw std::invalid_argument("Machine::flat: bad core count");
  }
  Machine m;
  TopoNode* root =
      m.add_node(Level::kMachine, 0, CpuSet::first_n(ncores), nullptr);
  for (int c = 0; c < ncores; ++c) {
    m.add_node(Level::kCore, c, CpuSet::single(c), root);
  }
  m.finalize();
  return m;
}

namespace {
/// Read an integer sysfs file, -1 on failure.
int read_sysfs_int(const std::string& path) {
  std::ifstream f(path);
  int v = -1;
  if (f && (f >> v)) return v;
  return -1;
}
}  // namespace

Machine Machine::detect() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int ncores = hw > 0 ? static_cast<int>(hw) : 1;
  // Group cpus by physical package id when sysfs exposes it; otherwise flat.
  std::map<int, CpuSet> packages;
  bool sysfs_ok = true;
  for (int c = 0; c < ncores && c < CpuSet::kMaxCpus; ++c) {
    const int pkg = read_sysfs_int(
        "/sys/devices/system/cpu/cpu" + std::to_string(c) +
        "/topology/physical_package_id");
    if (pkg < 0) {
      sysfs_ok = false;
      break;
    }
    packages[pkg].set(c);
  }
  if (!sysfs_ok || packages.size() <= 1) {
    PIOM_LOG_INFO("topology detect: flat machine with %d cores", ncores);
    return flat(std::min(ncores, CpuSet::kMaxCpus));
  }
  Machine m;
  const int total = std::min(ncores, CpuSet::kMaxCpus);
  TopoNode* root =
      m.add_node(Level::kMachine, 0, CpuSet::first_n(total), nullptr);
  int chip_index = 0;
  int core_index = 0;
  for (const auto& [pkg, cpus] : packages) {
    TopoNode* chip = m.add_node(Level::kChip, chip_index++, cpus, root);
    for (int c = cpus.first(); c >= 0; c = cpus.next(c)) {
      m.add_node(Level::kCore, core_index++, CpuSet::single(c), chip);
    }
  }
  m.finalize();
  PIOM_LOG_INFO("topology detect: %zu packages, %d cores", packages.size(),
                m.ncpus());
  return m;
}

Machine Machine::from_spec(const std::string& spec) {
  if (spec == "borderline") return borderline();
  if (spec == "kwak") return kwak();
  if (spec == "host") return detect();
  if (spec.rfind("flat:", 0) == 0) {
    const int n = std::atoi(spec.c_str() + 5);
    if (n < 1) throw std::invalid_argument("Machine::from_spec: bad flat:N");
    return flat(n);
  }
  // key=value[,key=value...] form for symmetric().
  int numa = 1, chips = 1, cores = 1;
  bool l3 = false;
  bool any = false;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item == "l3") {
      l3 = true;
      any = true;
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("Machine::from_spec: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const int value = std::atoi(item.c_str() + eq + 1);
    if (value < 1) {
      throw std::invalid_argument("Machine::from_spec: bad value in '" + item +
                                  "'");
    }
    if (key == "numa") {
      numa = value;
    } else if (key == "chips") {
      chips = value;
    } else if (key == "cores") {
      cores = value;
    } else {
      throw std::invalid_argument("Machine::from_spec: unknown key '" + key +
                                  "'");
    }
    any = true;
  }
  if (!any) throw std::invalid_argument("Machine::from_spec: empty spec");
  return symmetric(numa, chips, cores, l3);
}

const TopoNode& Machine::core_node(int cpu) const {
  if (cpu < 0 || cpu >= ncpus_) {
    throw std::out_of_range("Machine::core_node: bad cpu " +
                            std::to_string(cpu));
  }
  return *core_by_cpu_[static_cast<std::size_t>(cpu)];
}

const TopoNode& Machine::node_covering(const CpuSet& set) const {
  if (set.empty()) return *root_;
  // Walk down from the root while exactly one child covers the set.
  const TopoNode* node = root_;
  if (!node->cpus.contains(set)) return *root_;
  for (;;) {
    const TopoNode* next = nullptr;
    for (const TopoNode* child : node->children) {
      if (child->cpus.contains(set)) {
        next = child;
        break;
      }
    }
    if (next == nullptr) return *node;
    node = next;
  }
}

const std::vector<const TopoNode*>& Machine::path_to_root(int cpu) const {
  if (cpu < 0 || cpu >= ncpus_) {
    throw std::out_of_range("Machine::path_to_root: bad cpu " +
                            std::to_string(cpu));
  }
  return path_by_cpu_[static_cast<std::size_t>(cpu)];
}

const std::vector<const TopoNode*>& Machine::steal_order(int cpu) const {
  if (cpu < 0 || cpu >= ncpus_) {
    throw std::out_of_range("Machine::steal_order: bad cpu " +
                            std::to_string(cpu));
  }
  return steal_order_by_cpu_[static_cast<std::size_t>(cpu)];
}

CpuSet Machine::siblings_sharing_cache(int cpu) const {
  const TopoNode* n = &core_node(cpu);
  // The parent of a core is the deepest grouping level (cache if present,
  // else chip, else numa/machine).
  return (n->parent != nullptr) ? n->parent->cpus : n->cpus;
}

std::string Machine::to_string() const {
  std::ostringstream os;
  // Depth-first walk with indentation.
  struct Frame {
    const TopoNode* node;
  };
  std::vector<const TopoNode*> stack{root_};
  while (!stack.empty()) {
    const TopoNode* n = stack.back();
    stack.pop_back();
    for (int i = 0; i < n->depth; ++i) os << "  ";
    os << n->name() << "  cpus={" << n->cpus.to_string() << "}\n";
    for (auto it = n->children.rbegin(); it != n->children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return os.str();
}

}  // namespace piom::topo
