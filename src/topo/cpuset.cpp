#include "topo/cpuset.hpp"

#include <bit>
#include <cstdlib>
#include <stdexcept>

namespace piom::topo {

namespace {
void check_cpu(int cpu) {
  if (cpu < 0 || cpu >= CpuSet::kMaxCpus) {
    throw std::out_of_range("CpuSet: cpu index out of range");
  }
}
}  // namespace

CpuSet CpuSet::single(int cpu) {
  CpuSet s;
  s.set(cpu);
  return s;
}

CpuSet CpuSet::range(int lo, int hi) {
  CpuSet s;
  for (int c = lo; c < hi; ++c) s.set(c);
  return s;
}

CpuSet CpuSet::first_n(int n) { return range(0, n); }

CpuSet CpuSet::parse(const std::string& list) {
  CpuSet s;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p) throw std::invalid_argument("CpuSet::parse: expected number");
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtol(p, &end, 10);
      if (end == p) {
        throw std::invalid_argument("CpuSet::parse: expected range end");
      }
      p = end;
    }
    if (hi < lo) throw std::invalid_argument("CpuSet::parse: inverted range");
    for (long c = lo; c <= hi; ++c) s.set(static_cast<int>(c));
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      throw std::invalid_argument("CpuSet::parse: unexpected character");
    }
  }
  return s;
}

void CpuSet::set(int cpu) {
  check_cpu(cpu);
  words_[static_cast<std::size_t>(cpu) / 64] |= (uint64_t{1} << (cpu % 64));
}

void CpuSet::clear(int cpu) {
  check_cpu(cpu);
  words_[static_cast<std::size_t>(cpu) / 64] &= ~(uint64_t{1} << (cpu % 64));
}

bool CpuSet::test(int cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) return false;
  return (words_[static_cast<std::size_t>(cpu) / 64] >> (cpu % 64)) & 1U;
}

bool CpuSet::empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

int CpuSet::count() const {
  int n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

int CpuSet::first() const { return next(-1); }

int CpuSet::next(int prev) const {
  int start = prev + 1;
  if (start < 0) start = 0;
  for (int wi = start / 64; wi < kWords; ++wi) {
    uint64_t w = words_[static_cast<std::size_t>(wi)];
    if (wi == start / 64) {
      const int shift = start % 64;
      w &= (shift == 0) ? ~uint64_t{0} : (~uint64_t{0} << shift);
    }
    if (w != 0) return wi * 64 + std::countr_zero(w);
  }
  return -1;
}

bool CpuSet::contains(const CpuSet& other) const {
  for (int i = 0; i < kWords; ++i) {
    const auto wi = static_cast<std::size_t>(i);
    if ((other.words_[wi] & ~words_[wi]) != 0) return false;
  }
  return true;
}

bool CpuSet::intersects(const CpuSet& other) const {
  for (int i = 0; i < kWords; ++i) {
    const auto wi = static_cast<std::size_t>(i);
    if ((other.words_[wi] & words_[wi]) != 0) return true;
  }
  return false;
}

CpuSet CpuSet::operator|(const CpuSet& o) const {
  CpuSet r = *this;
  r |= o;
  return r;
}

CpuSet CpuSet::operator&(const CpuSet& o) const {
  CpuSet r = *this;
  r &= o;
  return r;
}

CpuSet CpuSet::operator~() const {
  CpuSet r;
  for (int i = 0; i < kWords; ++i) {
    const auto wi = static_cast<std::size_t>(i);
    r.words_[wi] = ~words_[wi];
  }
  return r;
}

CpuSet& CpuSet::operator|=(const CpuSet& o) {
  for (int i = 0; i < kWords; ++i) {
    words_[static_cast<std::size_t>(i)] |= o.words_[static_cast<std::size_t>(i)];
  }
  return *this;
}

CpuSet& CpuSet::operator&=(const CpuSet& o) {
  for (int i = 0; i < kWords; ++i) {
    words_[static_cast<std::size_t>(i)] &= o.words_[static_cast<std::size_t>(i)];
  }
  return *this;
}

std::string CpuSet::to_string() const {
  std::string out;
  int c = first();
  while (c >= 0) {
    int run_end = c;
    while (test(run_end + 1)) ++run_end;
    if (!out.empty()) out += ',';
    out += std::to_string(c);
    if (run_end > c) {
      out += '-';
      out += std::to_string(run_end);
    }
    c = next(run_end);
  }
  return out;
}

}  // namespace piom::topo
