// Machine topology model (the MARCEL topology the paper maps its queue
// hierarchy onto — Fig 2). A Machine is a tree of TopoNodes: the root covers
// every core; leaves are single cores; intermediate levels are NUMA nodes,
// chips (sockets) and shared caches, depending on the machine.
//
// Two synthetic machines reproduce the paper's testbeds:
//   * borderline(): 4-socket dual-core Opteron 8218 — no shared L3, so the
//     levels are Core / Chip / Machine (8 cores). Table I.
//   * kwak(): 4-socket quad-core Opteron 8347HE — shared L3 per chip and
//     4 NUMA nodes, so Core / Cache / Numa / Machine (16 cores). Table II,
//     Fig 3.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topo/cpuset.hpp"

namespace piom::topo {

enum class Level : int {
  kMachine = 0,
  kNuma = 1,
  kChip = 2,
  kCache = 3,
  kCore = 4,
};

[[nodiscard]] const char* level_name(Level level);

struct TopoNode {
  int id = -1;            ///< index into Machine::nodes()
  Level level = Level::kMachine;
  int index_in_level = 0; ///< e.g. "chip #2"
  CpuSet cpus;            ///< cores covered by this node
  TopoNode* parent = nullptr;
  std::vector<TopoNode*> children;
  int depth = 0;          ///< 0 at the root

  [[nodiscard]] std::string name() const;
};

class Machine {
 public:
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  Machine(Machine&&) = default;
  Machine& operator=(Machine&&) = default;

  /// The paper's Table I testbed: 4 chips x 2 cores, no shared cache level.
  [[nodiscard]] static Machine borderline();

  /// The paper's Table II / Fig 3 testbed: 4 NUMA nodes, each one quad-core
  /// chip with a shared L3.
  [[nodiscard]] static Machine kwak();

  /// Generic symmetric machine: `numa_nodes` NUMA nodes, `chips_per_numa`
  /// chips each, `cores_per_chip` cores each. When `shared_cache` is true a
  /// Cache level is inserted under each chip (covering all its cores).
  /// Degenerate level counts collapse (a level with a single child spanning
  /// the same cpus as its parent is still kept distinct only when it groups
  /// a different cpu span — we keep all requested levels for predictability).
  [[nodiscard]] static Machine symmetric(int numa_nodes, int chips_per_numa,
                                         int cores_per_chip, bool shared_cache);

  /// Flat machine: root + n cores, no intermediate level.
  [[nodiscard]] static Machine flat(int ncores);

  /// Best-effort detection of the host (Linux sysfs); falls back to
  /// flat(hardware_concurrency()).
  [[nodiscard]] static Machine detect();

  /// Build from a textual description (env/CLI friendly):
  ///   "borderline" | "kwak" | "host"       — presets / detection
  ///   "flat:8"                             — flat machine, 8 cores
  ///   "numa=4,chips=1,cores=4,l3"          — symmetric() spelled out
  /// Throws std::invalid_argument on junk.
  [[nodiscard]] static Machine from_spec(const std::string& spec);

  [[nodiscard]] int ncpus() const { return ncpus_; }
  [[nodiscard]] const TopoNode& root() const { return *root_; }
  [[nodiscard]] const std::vector<std::unique_ptr<TopoNode>>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] std::size_t nnodes() const { return nodes_.size(); }

  /// Leaf node for a given cpu. Throws std::out_of_range for bad ids.
  [[nodiscard]] const TopoNode& core_node(int cpu) const;

  /// Smallest node whose cpuset contains `set` (the queue a task with this
  /// cpuset belongs to). An empty or uncovered set maps to the root.
  [[nodiscard]] const TopoNode& node_covering(const CpuSet& set) const;

  /// Chain of nodes from core `cpu` up to the root (the queues Algorithm 1
  /// scans, in order). Precomputed — no allocation: this sits on the
  /// scheduler's hottest path (every schedule() call walks it).
  [[nodiscard]] const std::vector<const TopoNode*>& path_to_root(int cpu) const;

  /// Victim queues for work stealing on behalf of `cpu`, in locality order:
  /// the subtrees hanging off `cpu`'s nearest ancestor first (cache
  /// siblings), then the next ancestor's (chip), then NUMA, then machine —
  /// each sibling subtree in preorder, so wider (more aggregating) queues
  /// are probed before leaves. Nodes on `cpu`'s own path are excluded:
  /// Algorithm 1 already walks them. Precomputed — no allocation.
  [[nodiscard]] const std::vector<const TopoNode*>& steal_order(int cpu) const;

  /// Cores sharing the deepest non-core level with `cpu` (used by nmad to
  /// express "cores that share a cache with the current CPU").
  [[nodiscard]] CpuSet siblings_sharing_cache(int cpu) const;

  /// Multi-line ASCII rendering of the tree (quickstart / bench banner).
  [[nodiscard]] std::string to_string() const;

 private:
  Machine() = default;

  TopoNode* add_node(Level level, int index_in_level, const CpuSet& cpus,
                     TopoNode* parent);
  void finalize();

  std::vector<std::unique_ptr<TopoNode>> nodes_;
  TopoNode* root_ = nullptr;
  std::vector<TopoNode*> core_by_cpu_;
  std::vector<std::vector<const TopoNode*>> path_by_cpu_;
  std::vector<std::vector<const TopoNode*>> steal_order_by_cpu_;
  int ncpus_ = 0;
};

}  // namespace piom::topo
