#include "core/task.hpp"

#include <cassert>

namespace piom {

const char* task_state_name(TaskState s) {
  switch (s) {
    case TaskState::kCreated: return "created";
    case TaskState::kQueued: return "queued";
    case TaskState::kRunning: return "running";
    case TaskState::kDone: return "done";
  }
  return "?";
}

void Task::init(Fn f, void* a, const topo::CpuSet& cpus, uint32_t opts) {
  const TaskState s = state.load(std::memory_order_acquire);
  assert(s == TaskState::kCreated || s == TaskState::kDone);
  (void)s;
  fn = f;
  arg = a;
  on_done = nullptr;
  cpuset = cpus;
  options = opts;
  next.store(nullptr, std::memory_order_relaxed);
  run_count.store(0, std::memory_order_relaxed);
  last_cpu.store(-1, std::memory_order_relaxed);
  state.store(TaskState::kCreated, std::memory_order_release);
}

FunctionTask::FunctionTask(std::function<TaskResult()> body,
                           const topo::CpuSet& cpus, uint32_t opts)
    : body_(std::move(body)) {
  task_.init(&FunctionTask::trampoline, this, cpus, opts);
}

TaskResult FunctionTask::trampoline(void* self) {
  return static_cast<FunctionTask*>(self)->body_();
}

}  // namespace piom
