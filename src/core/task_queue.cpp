#include "core/task_queue.hpp"

// Explicit instantiations keep one copy of each queue variant's code and act
// as a compile check that every lock satisfies the Lockable surface.
namespace piom {

template class LockedTaskQueue<sync::SpinLock>;
template class LockedTaskQueue<sync::TicketLock>;
template class LockedTaskQueue<sync::MutexLock>;

}  // namespace piom
