#include "core/lf_queue.hpp"

// Everything is defined inline in the header; this TU exists so the library
// has a stable object file for the class (and a place for future out-of-line
// helpers).
namespace piom {
static_assert(sizeof(LockFreeTaskQueue) >= 16);
}  // namespace piom
