#include "core/task_manager.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "core/lf_queue.hpp"
#include "sync/backoff.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace piom {

const char* queue_kind_name(QueueKind k) {
  switch (k) {
    case QueueKind::kSpin: return "spinlock";
    case QueueKind::kTicket: return "ticketlock";
    case QueueKind::kMutex: return "mutex";
    case QueueKind::kLockFree: return "lockfree";
  }
  return "?";
}

namespace {
std::unique_ptr<ITaskQueue> make_queue(const TaskManagerConfig& cfg) {
  switch (cfg.queue_kind) {
    case QueueKind::kSpin:
      return std::make_unique<SpinTaskQueue>(cfg.double_check, cfg.queue_stats);
    case QueueKind::kTicket:
      return std::make_unique<TicketTaskQueue>(cfg.double_check,
                                               cfg.queue_stats);
    case QueueKind::kMutex:
      return std::make_unique<MutexTaskQueue>(cfg.double_check,
                                              cfg.queue_stats);
    case QueueKind::kLockFree:
      return std::make_unique<LockFreeTaskQueue>(cfg.queue_stats);
  }
  throw std::invalid_argument("unknown QueueKind");
}
}  // namespace

TaskManager::TaskManager(const topo::Machine& machine, TaskManagerConfig config)
    : machine_(machine), config_(config) {
  queues_.reserve(machine_.nnodes());
  for (std::size_t i = 0; i < machine_.nnodes(); ++i) {
    queues_.push_back(make_queue(config_));
  }
  core_stats_ = std::make_unique<sync::CacheAligned<CoreStatsCell>[]>(
      static_cast<std::size_t>(machine_.ncpus()));
}

bool TaskManager::cpu_allowed(const Task& task, int cpu) {
  return task_allowed_on(task, cpu);
}

void TaskManager::submit(Task* task) {
  assert(task != nullptr);
  // Urgent tasks bypass the hierarchy entirely — skip the covering-node
  // tree walk on that latency-critical path (submit_to ignores the node
  // for them anyway).
  const topo::TopoNode& node = (task->options & kTaskUrgent) != 0
                                   ? machine_.root()
                                   : machine_.node_covering(task->cpuset);
  submit_to(task, node);
}

void TaskManager::submit_to(Task* task, const topo::TopoNode& node) {
  assert(task != nullptr && task->fn != nullptr);
  const TaskState prev = task->state.exchange(TaskState::kQueued,
                                              std::memory_order_acq_rel);
  assert(prev == TaskState::kCreated || prev == TaskState::kDone);
  (void)prev;
  submissions_.fetch_add(1, std::memory_order_relaxed);
  PIOM_TRACE(util::trace::Kind::kTaskSubmit, task->options,
             reinterpret_cast<uint64_t>(task));
  if ((task->options & kTaskUrgent) != 0) {
    // Preemptive path: dedicated queue, out-of-band wakeup.
    urgent_queue_.enqueue(task);
    if (urgent_notifier_) urgent_notifier_();
    return;
  }
  const topo::TopoNode& home =
      config_.single_global_queue ? machine_.root() : node;
  queues_[static_cast<std::size_t>(home.id)]->enqueue(task);
}

int TaskManager::run_urgent(int cpu) {
  int executed = 0;
  std::size_t budget = urgent_queue_.size_approx();
  for (std::size_t i = 0; i < budget; ++i) {
    Task* task = urgent_queue_.try_dequeue();
    if (task == nullptr) break;
    // Preemptive semantics: the CPU set is advisory, run it right here.
    PIOM_TRACE(util::trace::Kind::kUrgentRun, cpu,
               reinterpret_cast<uint64_t>(task));
    run_task(task, urgent_queue_, cpu);
    ++executed;
  }
  return executed;
}

void TaskManager::set_urgent_notifier(std::function<void()> notifier) {
  urgent_notifier_ = std::move(notifier);
}

std::size_t TaskManager::urgent_pending_approx() const {
  return urgent_queue_.size_approx();
}

ITaskQueue& TaskManager::queue_of(const topo::TopoNode& node) {
  return *queues_[static_cast<std::size_t>(node.id)];
}

ITaskQueue& TaskManager::global_queue() {
  return *queues_[static_cast<std::size_t>(machine_.root().id)];
}

void TaskManager::run_task(Task* task, ITaskQueue& queue, int cpu) {
  task->state.store(TaskState::kRunning, std::memory_order_relaxed);
  task->last_cpu.store(cpu, std::memory_order_relaxed);
  task->run_count.fetch_add(1, std::memory_order_relaxed);
  PIOM_TRACE(util::trace::Kind::kTaskRun, cpu,
             reinterpret_cast<uint64_t>(task));
  const TaskResult result = task->fn(task->arg);
  if ((task->options & kTaskRepeat) != 0 && result == TaskResult::kAgain) {
    // Paper: "When the processing of a repetitive task ends, the task is
    // re-enqueued into the same list."
    PIOM_TRACE(util::trace::Kind::kTaskRequeue, cpu,
               reinterpret_cast<uint64_t>(task));
    task->state.store(TaskState::kQueued, std::memory_order_release);
    queue.enqueue(task);
    return;
  }
  PIOM_TRACE(util::trace::Kind::kTaskDone, cpu,
             reinterpret_cast<uint64_t>(task));
  // Read every field needed after completion *before* publishing kDone: an
  // owner polling completed() may destroy the task storage the moment the
  // store below is visible, so the store must be the scheduler's last
  // access for plain tasks. (kTaskNotify owners are required to block in
  // wait_done(), which makes the semaphore post the safe last touch.)
  const Task::DoneFn on_done = task->on_done;
  const uint32_t options = task->options;
  assert(on_done == nullptr || (options & kTaskNotify) == 0);
  task->state.store(TaskState::kDone, std::memory_order_release);
  if ((options & kTaskNotify) != 0) {
    // After this post the owner may reuse/destroy the task storage; do not
    // touch *task afterwards.
    task->done_sem.post();
    return;
  }
  if (on_done != nullptr) on_done(task);  // final touch: may recycle storage
}

int TaskManager::drain_queue(ITaskQueue& queue, int cpu) {
  // Bound the pass by a snapshot of the current size so repeatable tasks we
  // re-enqueue (and tasks enqueued concurrently) do not trap us here.
  std::size_t budget = queue.size_approx();
  if (config_.max_tasks_per_pass > 0) {
    budget = std::min<std::size_t>(
        budget, static_cast<std::size_t>(config_.max_tasks_per_pass));
  }
  int executed = 0;
  for (std::size_t i = 0; i < budget; ++i) {
    Task* task = queue.try_dequeue();
    if (task == nullptr) break;
    if (!cpu_allowed(*task, cpu)) {
      // This queue's node covers more cores than the task's cpuset allows
      // (e.g. cpuset {0,2} lands in a machine-wide queue); put it back for
      // an allowed core and keep scanning.
      queue.enqueue(task);
      continue;
    }
    run_task(task, queue, cpu);
    ++executed;
  }
  return executed;
}

int TaskManager::schedule(int cpu) {
  int executed = schedule_from_level(cpu, topo::Level::kCore);
  // The whole branch is dry: go stealing (locality-ordered victim scan)
  // instead of idling while another branch overflows.
  if (executed == 0 && config_.steal) executed += steal(cpu);
  return executed;
}

int TaskManager::schedule_from_level(int cpu, topo::Level shallowest) {
  CoreStatsCell& cs = *core_stats_[static_cast<std::size_t>(cpu)];
  cs.schedule_calls.fetch_add(1, std::memory_order_relaxed);
  // Urgent tasks first, regardless of the requested depth window.
  int executed = run_urgent(cpu);
  // Algorithm 1: "for Queue = Per_Core_Queue to Global_Queue do ..."
  for (const topo::TopoNode* node : machine_.path_to_root(cpu)) {
    if (static_cast<int>(node->level) > static_cast<int>(shallowest)) {
      continue;  // deeper than requested (e.g. timer services global only)
    }
    executed += drain_queue(*queues_[static_cast<std::size_t>(node->id)], cpu);
  }
  cs.tasks_run.fetch_add(static_cast<uint64_t>(executed),
                         std::memory_order_relaxed);
  return executed;
}

int TaskManager::steal(int cpu) {
  return steal_bounded(cpu, config_.steal_batch);
}

int TaskManager::steal_bounded(int cpu, int max_batch) {
  // The single-global-queue strawman has no off-path queues to steal from.
  if (config_.single_global_queue) return 0;
  CoreStatsCell& cs = *core_stats_[static_cast<std::size_t>(cpu)];
  cs.steal_attempts.fetch_add(1, std::memory_order_relaxed);
  constexpr int kMaxBatch = 32;
  Task* stolen[kMaxBatch];
  const std::size_t batch =
      static_cast<std::size_t>(std::clamp(max_batch, 1, kMaxBatch));
  std::size_t taken = 0;
  if (config_.steal_locality) {
    for (const topo::TopoNode* victim : machine_.steal_order(cpu)) {
      taken = queues_[static_cast<std::size_t>(victim->id)]->try_steal(
          cpu, batch, stolen);
      if (taken > 0) break;
    }
  } else {
    // Locality ablation: flat id-order scan over off-path nodes (a node is
    // on `cpu`'s path exactly when its span covers `cpu`).
    for (const auto& nptr : machine_.nodes()) {
      if (nptr->cpus.test(cpu)) continue;
      taken = queues_[static_cast<std::size_t>(nptr->id)]->try_steal(
          cpu, batch, stolen);
      if (taken > 0) break;
    }
  }
  if (taken == 0) return 0;
  cs.steal_hits.fetch_add(1, std::memory_order_relaxed);
  cs.tasks_stolen.fetch_add(taken, std::memory_order_relaxed);
  // Stolen tasks migrate: repeatable ones re-enqueue into the thief's own
  // per-core queue (eligibility was checked by try_steal), keeping the
  // follow-up runs on the now-idle branch.
  ITaskQueue& home =
      *queues_[static_cast<std::size_t>(machine_.core_node(cpu).id)];
  int executed = 0;
  for (std::size_t i = 0; i < taken; ++i) {
    PIOM_TRACE(util::trace::Kind::kTaskSteal, cpu,
               reinterpret_cast<uint64_t>(stolen[i]));
    run_task(stolen[i], home, cpu);
    ++executed;
  }
  cs.tasks_run.fetch_add(static_cast<uint64_t>(executed),
                         std::memory_order_relaxed);
  return executed;
}

bool TaskManager::schedule_one(int cpu) {
  for (const topo::TopoNode* node : machine_.path_to_root(cpu)) {
    ITaskQueue& queue = *queues_[static_cast<std::size_t>(node->id)];
    Task* task = queue.try_dequeue();
    if (task == nullptr) continue;
    if (!cpu_allowed(*task, cpu)) {
      queue.enqueue(task);
      continue;
    }
    run_task(task, queue, cpu);
    CoreStatsCell& cs = *core_stats_[static_cast<std::size_t>(cpu)];
    cs.tasks_run.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return config_.steal && steal_bounded(cpu, 1) > 0;
}

void TaskManager::wait(Task& task, int cpu) {
  sync::Backoff backoff;
  while (!task.completed()) {
    if (schedule(cpu) == 0) {
      backoff.spin();
    } else {
      backoff.reset();
    }
  }
}

std::size_t TaskManager::pending_approx() const {
  std::size_t total = urgent_queue_.size_approx();
  for (const auto& q : queues_) total += q->size_approx();
  return total;
}

CoreStats TaskManager::core_stats(int cpu) const {
  const CoreStatsCell& cell = *core_stats_[static_cast<std::size_t>(cpu)];
  CoreStats s;
  s.tasks_run = cell.tasks_run.load(std::memory_order_relaxed);
  s.schedule_calls = cell.schedule_calls.load(std::memory_order_relaxed);
  s.steal_attempts = cell.steal_attempts.load(std::memory_order_relaxed);
  s.steal_hits = cell.steal_hits.load(std::memory_order_relaxed);
  s.tasks_stolen = cell.tasks_stolen.load(std::memory_order_relaxed);
  return s;
}

void TaskManager::reset_stats() {
  for (int c = 0; c < machine_.ncpus(); ++c) {
    CoreStatsCell& cs = *core_stats_[static_cast<std::size_t>(c)];
    cs.tasks_run.store(0, std::memory_order_relaxed);
    cs.schedule_calls.store(0, std::memory_order_relaxed);
    cs.steal_attempts.store(0, std::memory_order_relaxed);
    cs.steal_hits.store(0, std::memory_order_relaxed);
    cs.tasks_stolen.store(0, std::memory_order_relaxed);
  }
  submissions_.store(0, std::memory_order_relaxed);
}

std::string TaskManager::dump() const {
  std::ostringstream os;
  os << "TaskManager(" << queue_kind_name(config_.queue_kind)
     << ", double_check=" << (config_.double_check ? "on" : "off")
     << ", hierarchy=" << (config_.single_global_queue ? "off" : "on")
     << ", steal=" << (config_.steal ? "on" : "off") << ")\n";
  for (const auto& nptr : machine_.nodes()) {
    const ITaskQueue& q = *queues_[static_cast<std::size_t>(nptr->id)];
    const QueueStats s = q.stats();
    if (s.enqueues == 0 && q.size_approx() == 0) continue;
    for (int i = 0; i < nptr->depth; ++i) os << "  ";
    os << nptr->name() << ": pending=" << q.size_approx()
       << " enq=" << s.enqueues << " deq=" << s.dequeues
       << " empty_checks=" << s.empty_checks
       << " locks=" << s.lock_acquisitions << " stolen=" << s.stolen_tasks
       << "\n";
  }
  return os.str();
}

}  // namespace piom
