// Task queues attached to topology nodes.
//
// LockedTaskQueue<Lock> implements the paper's Algorithm 2 ("Get Task"):
// the queue's emptiness is checked *without* the lock first, so scanning an
// empty queue — the common case when a core walks its whole hierarchy — never
// touches the lock and causes no cache-line contention.
//
// The queue is an intrusive FIFO (head/tail of Task::next); enqueue and
// dequeue are O(1) under the lock. try_steal() is the work-stealing entry:
// it detaches tasks from the *tail* end — the end the owner never dequeues
// from — so thieves and the owner's fast path collide as little as a single
// lock allows, and an (apparently) empty victim is skipped without locking,
// exactly like Algorithm 2.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/task.hpp"
#include "sync/cache.hpp"
#include "sync/spinlock.hpp"

namespace piom {

/// Queue statistics the benchmarks report (per-core task distribution,
/// lock acquisitions avoided by the double-check, steal traffic).
struct QueueStats {
  uint64_t enqueues = 0;
  uint64_t dequeues = 0;
  uint64_t empty_checks = 0;   ///< try_dequeue calls that skipped the lock
  uint64_t lock_acquisitions = 0;
  uint64_t steal_hits = 0;     ///< try_steal scans that took >= 1 task
  uint64_t steal_misses = 0;   ///< try_steal scans that found nothing eligible
  uint64_t stolen_tasks = 0;   ///< tasks removed from this queue by thieves
};

/// Interface shared by the locked and lock-free implementations so the
/// TaskManager (and the ablation benches) can switch between them.
class ITaskQueue {
 public:
  virtual ~ITaskQueue() = default;

  /// Append `task` (task->state must be kQueued; linkage is scheduler-owned).
  virtual void enqueue(Task* task) = 0;

  /// Algorithm 2: nullptr when (apparently) empty, without locking.
  virtual Task* try_dequeue() = 0;

  /// Work stealing: detach up to `max_n` queued tasks that `thief_cpu` may
  /// run (Task::cpuset check) into `out` and return how many were taken.
  /// Tasks come from the cold (non-owner) end where the backend has one;
  /// an (apparently) empty queue is skipped without locking. Stolen tasks
  /// stay in state kQueued — the thief must run them.
  [[nodiscard]] virtual std::size_t try_steal(int thief_cpu, std::size_t max_n,
                                              Task** out) = 0;

  /// Approximate size (exact between quiescent points).
  [[nodiscard]] virtual std::size_t size_approx() const = 0;

  /// Snapshot of counters (approximate under concurrency).
  [[nodiscard]] virtual QueueStats stats() const = 0;
};

/// Intrusive FIFO protected by `Lock`, with optional double-checked
/// emptiness (`double_check=false` turns Algorithm 2 into a plain
/// lock-then-check, for the ablation bench).
template <typename Lock>
class LockedTaskQueue final : public ITaskQueue {
 public:
  /// `count_stats=false` removes every statistics update from the hot
  /// paths — in particular the atomic RMW on the shared empty-check
  /// counter, which bounces its cache line between scanning cores and can
  /// dominate exactly the contention-free path Algorithm 2 exists to
  /// provide (the ablation bench and stats-off TaskManagerConfig use it).
  explicit LockedTaskQueue(bool double_check = true, bool count_stats = true)
      : double_check_(double_check), count_stats_(count_stats) {}

  void enqueue(Task* task) override {
    task->next.store(nullptr, std::memory_order_relaxed);
    lock_.lock();
    if (tail_ == nullptr) {
      head_ = tail_ = task;
    } else {
      tail_->next.store(task, std::memory_order_relaxed);
      tail_ = task;
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    if (count_stats_) {
      stats_.enqueues++;
      stats_.lock_acquisitions++;
    }
    lock_.unlock();
  }

  Task* try_dequeue() override {
    // Algorithm 2: evaluate the queue content without holding the mutex "in
    // order to avoid unnecessary contention".
    if (double_check_ && size_.load(std::memory_order_acquire) == 0) {
      if (count_stats_) {
        empty_checks_.fetch_add(1, std::memory_order_relaxed);
      }
      return nullptr;
    }
    Task* task = nullptr;
    lock_.lock();
    if (count_stats_) stats_.lock_acquisitions++;
    if (head_ != nullptr) {  // "the list state is checked once again"
      task = head_;
      head_ = task->next.load(std::memory_order_relaxed);
      if (head_ == nullptr) tail_ = nullptr;
      size_.fetch_sub(1, std::memory_order_relaxed);
      if (count_stats_) stats_.dequeues++;
    }
    lock_.unlock();
    if (task != nullptr) task->next.store(nullptr, std::memory_order_relaxed);
    return task;
  }

  std::size_t try_steal(int thief_cpu, std::size_t max_n,
                        Task** out) override {
    if (max_n == 0) return 0;
    // Thieves scan many victims; the Algorithm-2 pre-check keeps a scan
    // over empty queues lock-free, like the owner's own hierarchy walk.
    if (double_check_ && size_.load(std::memory_order_acquire) == 0) {
      return 0;
    }
    std::size_t taken = 0;
    lock_.lock();
    if (count_stats_) stats_.lock_acquisitions++;
    // Pass 1: how many queued tasks may the thief run at all?
    std::size_t eligible = 0;
    for (Task* t = head_; t != nullptr;
         t = t->next.load(std::memory_order_relaxed)) {
      if (task_allowed_on(*t, thief_cpu)) ++eligible;
    }
    if (eligible > 0) {
      const std::size_t want = eligible < max_n ? eligible : max_n;
      // Steal from the tail end: skip the first eligible tasks so the
      // owner keeps the head — its dequeue end — to itself.
      std::size_t skip = eligible - want;
      Task* prev = nullptr;
      Task* t = head_;
      while (t != nullptr && taken < want) {
        Task* const after = t->next.load(std::memory_order_relaxed);
        if (task_allowed_on(*t, thief_cpu)) {
          if (skip > 0) {
            --skip;
            prev = t;
          } else {
            if (prev != nullptr) {
              prev->next.store(after, std::memory_order_relaxed);
            } else {
              head_ = after;
            }
            if (t == tail_) tail_ = prev;
            t->next.store(nullptr, std::memory_order_relaxed);
            out[taken++] = t;
          }
        } else {
          prev = t;
        }
        t = after;
      }
      size_.fetch_sub(taken, std::memory_order_relaxed);
    }
    if (count_stats_) {
      if (taken > 0) {
        stats_.steal_hits++;
        stats_.stolen_tasks += taken;
      } else {
        stats_.steal_misses++;
      }
    }
    lock_.unlock();
    return taken;
  }

  [[nodiscard]] std::size_t size_approx() const override {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] QueueStats stats() const override {
    // stats_ is written under the lock; read it under the lock too so a
    // live dump()/stats() never races with enqueuers (TSan-clean).
    lock_.lock();
    QueueStats s = stats_;
    lock_.unlock();
    s.empty_checks = empty_checks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  mutable Lock lock_;
  Task* head_ PIOM_GUARDED_BY(lock_) = nullptr;
  Task* tail_ PIOM_GUARDED_BY(lock_) = nullptr;
  alignas(sync::kCacheLine) std::atomic<std::size_t> size_{0};
  alignas(sync::kCacheLine) std::atomic<uint64_t> empty_checks_{0};
  QueueStats stats_ PIOM_GUARDED_BY(lock_);
  const bool double_check_;
  const bool count_stats_;
};

using SpinTaskQueue = LockedTaskQueue<sync::SpinLock>;
using TicketTaskQueue = LockedTaskQueue<sync::TicketLock>;
using MutexTaskQueue = LockedTaskQueue<sync::MutexLock>;

}  // namespace piom
