// Task queues attached to topology nodes.
//
// LockedTaskQueue<Lock> implements the paper's Algorithm 2 ("Get Task"):
// the queue's emptiness is checked *without* the lock first, so scanning an
// empty queue — the common case when a core walks its whole hierarchy — never
// touches the lock and causes no cache-line contention.
//
// The queue is an intrusive FIFO (head/tail of Task::next); enqueue and
// dequeue are O(1) under the lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/task.hpp"
#include "sync/cache.hpp"
#include "sync/spinlock.hpp"

namespace piom {

/// Queue statistics the benchmarks report (per-core task distribution,
/// lock acquisitions avoided by the double-check).
struct QueueStats {
  uint64_t enqueues = 0;
  uint64_t dequeues = 0;
  uint64_t empty_checks = 0;   ///< try_dequeue calls that skipped the lock
  uint64_t lock_acquisitions = 0;
};

/// Interface shared by the locked and lock-free implementations so the
/// TaskManager (and the ablation benches) can switch between them.
class ITaskQueue {
 public:
  virtual ~ITaskQueue() = default;

  /// Append `task` (task->state must be kQueued; linkage is scheduler-owned).
  virtual void enqueue(Task* task) = 0;

  /// Algorithm 2: nullptr when (apparently) empty, without locking.
  virtual Task* try_dequeue() = 0;

  /// Approximate size (exact between quiescent points).
  [[nodiscard]] virtual std::size_t size_approx() const = 0;

  /// Snapshot of counters (approximate under concurrency).
  [[nodiscard]] virtual QueueStats stats() const = 0;
};

/// Intrusive FIFO protected by `Lock`, with optional double-checked
/// emptiness (`double_check=false` turns Algorithm 2 into a plain
/// lock-then-check, for the ablation bench).
template <typename Lock>
class LockedTaskQueue final : public ITaskQueue {
 public:
  /// `count_empty_checks=false` removes the stats RMW from the empty fast
  /// path — an atomic increment on a shared counter bounces the cache line
  /// between scanning cores and can dominate exactly the contention-free
  /// path Algorithm 2 exists to provide (the ablation bench disables it).
  explicit LockedTaskQueue(bool double_check = true,
                           bool count_empty_checks = true)
      : double_check_(double_check),
        count_empty_checks_(count_empty_checks) {}

  void enqueue(Task* task) override {
    task->next = nullptr;
    lock_.lock();
    if (tail_ == nullptr) {
      head_ = tail_ = task;
    } else {
      tail_->next = task;
      tail_ = task;
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    stats_.enqueues++;
    stats_.lock_acquisitions++;
    lock_.unlock();
  }

  Task* try_dequeue() override {
    // Algorithm 2: evaluate the queue content without holding the mutex "in
    // order to avoid unnecessary contention".
    if (double_check_ && size_.load(std::memory_order_acquire) == 0) {
      if (count_empty_checks_) {
        empty_checks_.fetch_add(1, std::memory_order_relaxed);
      }
      return nullptr;
    }
    Task* task = nullptr;
    lock_.lock();
    stats_.lock_acquisitions++;
    if (head_ != nullptr) {  // "the list state is checked once again"
      task = head_;
      head_ = task->next;
      if (head_ == nullptr) tail_ = nullptr;
      size_.fetch_sub(1, std::memory_order_relaxed);
      stats_.dequeues++;
    }
    lock_.unlock();
    if (task != nullptr) task->next = nullptr;
    return task;
  }

  [[nodiscard]] std::size_t size_approx() const override {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] QueueStats stats() const override {
    QueueStats s = stats_;
    s.empty_checks = empty_checks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  Lock lock_;
  Task* head_ = nullptr;
  Task* tail_ = nullptr;
  alignas(sync::kCacheLine) std::atomic<std::size_t> size_{0};
  alignas(sync::kCacheLine) std::atomic<uint64_t> empty_checks_{0};
  QueueStats stats_;  // updated under lock_
  const bool double_check_;
  const bool count_empty_checks_;
};

using SpinTaskQueue = LockedTaskQueue<sync::SpinLock>;
using TicketTaskQueue = LockedTaskQueue<sync::TicketLock>;
using MutexTaskQueue = LockedTaskQueue<sync::MutexLock>;

}  // namespace piom
