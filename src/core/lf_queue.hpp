// Lock-free task queue — the paper's stated future work ("we plan to study
// the opportunity to use lock-free algorithms to reduce contention on task
// queues"). Implemented here as an extension and compared against the locked
// queues in bench_ablation_locks.
//
// Design: intrusive Treiber stack (LIFO) with an ABA generation tag packed
// next to the head pointer in a 16-byte atomic (cmpxchg16b on x86-64). LIFO
// order is acceptable for communication tasks: repeatable polling tasks are
// continuously re-enqueued, and the task manager drains a snapshot of the
// queue per pass, so no task starves (see TaskManager::schedule).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/task_queue.hpp"

namespace piom {

class LockFreeTaskQueue final : public ITaskQueue {
 public:
  /// `count_stats=false` removes every statistics RMW from the hot paths
  /// (the structural size_ counter stays — the double-checked emptiness
  /// scan needs it).
  explicit LockFreeTaskQueue(bool count_stats = true)
      : count_stats_(count_stats) {}

  void enqueue(Task* task) override {
    push(task);
    size_.fetch_add(1, std::memory_order_relaxed);
    if (count_stats_) enqueues_.fetch_add(1, std::memory_order_relaxed);
  }

  Task* try_dequeue() override {
    Task* task = pop();
    if (task == nullptr) {
      if (count_stats_) empty_checks_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    if (count_stats_) dequeues_.fetch_add(1, std::memory_order_relaxed);
    task->next.store(nullptr, std::memory_order_relaxed);
    return task;
  }

  std::size_t try_steal(int thief_cpu, std::size_t max_n,
                        Task** out) override {
    // A Treiber stack has a single access end, so "the cold end" does not
    // exist: thieves pop from the same head CAS as everyone else — which is
    // already the contention model of this backend. A bounded pop-scan
    // keeps the thief wait-bounded: ineligible tasks (cpuset forbids the
    // thief) are pushed straight back and the scan gives up after
    // kStealScanBound pops so a wall of pinned tasks cannot trap it.
    if (max_n == 0 || size_.load(std::memory_order_acquire) == 0) return 0;
    Task* put_back[kStealScanBound];
    std::size_t taken = 0;
    std::size_t nback = 0;
    while (taken < max_n && nback < kStealScanBound) {
      Task* t = pop();
      if (t == nullptr) break;
      if (task_allowed_on(*t, thief_cpu)) {
        t->next.store(nullptr, std::memory_order_relaxed);
        out[taken++] = t;
      } else {
        put_back[nback++] = t;
      }
    }
    // Restore ineligible tasks in reverse so their LIFO order survives.
    for (std::size_t i = nback; i-- > 0;) push(put_back[i]);
    if (taken > 0) size_.fetch_sub(taken, std::memory_order_relaxed);
    if (count_stats_) {
      if (taken > 0) {
        steal_hits_.fetch_add(1, std::memory_order_relaxed);
        stolen_tasks_.fetch_add(taken, std::memory_order_relaxed);
      } else {
        steal_misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return taken;
  }

  [[nodiscard]] std::size_t size_approx() const override {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] QueueStats stats() const override {
    QueueStats s;
    s.enqueues = enqueues_.load(std::memory_order_relaxed);
    s.dequeues = dequeues_.load(std::memory_order_relaxed);
    s.empty_checks = empty_checks_.load(std::memory_order_relaxed);
    s.lock_acquisitions = 0;  // lock-free: no lock
    s.steal_hits = steal_hits_.load(std::memory_order_relaxed);
    s.steal_misses = steal_misses_.load(std::memory_order_relaxed);
    s.stolen_tasks = stolen_tasks_.load(std::memory_order_relaxed);
    return s;
  }

  /// Whether the 16-byte CAS is actually lock-free on this target (when it
  /// is not, libatomic transparently falls back to a lock — correct, but the
  /// ablation bench reports it).
  [[nodiscard]] bool is_lock_free() const { return head_.is_lock_free(); }

 private:
  struct alignas(16) Head {
    Task* top = nullptr;
    uintptr_t tag = 0;
    bool operator==(const Head&) const = default;
  };

  static constexpr std::size_t kStealScanBound = 8;

  void push(Task* task) {
    Head old_head = head_.load(std::memory_order_relaxed);
    Head new_head{};
    do {
      task->next.store(old_head.top, std::memory_order_relaxed);
      new_head.top = task;
      new_head.tag = old_head.tag + 1;
    } while (!head_.compare_exchange_weak(old_head, new_head,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  Task* pop() {
    Head old_head = head_.load(std::memory_order_acquire);
    Head new_head{};
    Task* task = nullptr;
    do {
      task = old_head.top;
      if (task == nullptr) return nullptr;
      // Reading task->next is safe: tasks are never freed while queued
      // (they are embedded in live request objects), and the tag defeats
      // ABA if the same task is popped and re-pushed concurrently.
      new_head.top = task->next.load(std::memory_order_relaxed);
      new_head.tag = old_head.tag + 1;
    } while (!head_.compare_exchange_weak(old_head, new_head,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed));
    return task;
  }

  std::atomic<Head> head_{};
  alignas(sync::kCacheLine) std::atomic<std::size_t> size_{0};
  alignas(sync::kCacheLine) std::atomic<uint64_t> enqueues_{0};
  std::atomic<uint64_t> dequeues_{0};
  std::atomic<uint64_t> empty_checks_{0};
  std::atomic<uint64_t> steal_hits_{0};
  std::atomic<uint64_t> steal_misses_{0};
  std::atomic<uint64_t> stolen_tasks_{0};
  const bool count_stats_;
};

}  // namespace piom
