// Lock-free task queue — the paper's stated future work ("we plan to study
// the opportunity to use lock-free algorithms to reduce contention on task
// queues"). Implemented here as an extension and compared against the locked
// queues in bench_ablation_locks.
//
// Design: intrusive Treiber stack (LIFO) with an ABA generation tag packed
// next to the head pointer in a 16-byte atomic (cmpxchg16b on x86-64). LIFO
// order is acceptable for communication tasks: repeatable polling tasks are
// continuously re-enqueued, and the task manager drains a snapshot of the
// queue per pass, so no task starves (see TaskManager::schedule).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/task_queue.hpp"

namespace piom {

class LockFreeTaskQueue final : public ITaskQueue {
 public:
  LockFreeTaskQueue() = default;

  void enqueue(Task* task) override {
    Head old_head = head_.load(std::memory_order_relaxed);
    Head new_head{};
    do {
      task->next = old_head.top;
      new_head.top = task;
      new_head.tag = old_head.tag + 1;
    } while (!head_.compare_exchange_weak(old_head, new_head,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    size_.fetch_add(1, std::memory_order_relaxed);
    enqueues_.fetch_add(1, std::memory_order_relaxed);
  }

  Task* try_dequeue() override {
    Head old_head = head_.load(std::memory_order_acquire);
    Head new_head{};
    Task* task = nullptr;
    do {
      task = old_head.top;
      if (task == nullptr) {
        empty_checks_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      // Reading task->next is safe: tasks are never freed while queued
      // (they are embedded in live request objects), and the tag defeats
      // ABA if the same task is popped and re-pushed concurrently.
      new_head.top = task->next;
      new_head.tag = old_head.tag + 1;
    } while (!head_.compare_exchange_weak(old_head, new_head,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed));
    size_.fetch_sub(1, std::memory_order_relaxed);
    dequeues_.fetch_add(1, std::memory_order_relaxed);
    task->next = nullptr;
    return task;
  }

  [[nodiscard]] std::size_t size_approx() const override {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] QueueStats stats() const override {
    QueueStats s;
    s.enqueues = enqueues_.load(std::memory_order_relaxed);
    s.dequeues = dequeues_.load(std::memory_order_relaxed);
    s.empty_checks = empty_checks_.load(std::memory_order_relaxed);
    s.lock_acquisitions = 0;  // lock-free: no lock
    return s;
  }

  /// Whether the 16-byte CAS is actually lock-free on this target (when it
  /// is not, libatomic transparently falls back to a lock — correct, but the
  /// ablation bench reports it).
  [[nodiscard]] bool is_lock_free() const { return head_.is_lock_free(); }

 private:
  struct alignas(16) Head {
    Task* top = nullptr;
    uintptr_t tag = 0;
    bool operator==(const Head&) const = default;
  };

  std::atomic<Head> head_{};
  alignas(sync::kCacheLine) std::atomic<std::size_t> size_{0};
  alignas(sync::kCacheLine) std::atomic<uint64_t> enqueues_{0};
  std::atomic<uint64_t> dequeues_{0};
  std::atomic<uint64_t> empty_checks_{0};
};

}  // namespace piom
