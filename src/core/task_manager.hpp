// TaskManager — the heart of the paper (§III): one task queue per topology
// node, submit() maps a task's CPU set to the smallest covering node, and
// schedule() is Algorithm 1 — run the local Per-Core queue, then walk up
// (per-cache / per-chip / per-NUMA) to the Global queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "core/task_queue.hpp"
#include "sync/cache.hpp"
#include "topo/machine.hpp"

namespace piom {

/// Which ITaskQueue implementation backs every queue of the hierarchy.
enum class QueueKind {
  kSpin,      ///< spinlock-protected FIFO (the paper's choice)
  kTicket,    ///< ticket-lock FIFO (fair; ablation)
  kMutex,     ///< std::mutex FIFO (ablation: context-switch risk)
  kLockFree,  ///< Treiber LIFO (paper's future work; ablation)
};

[[nodiscard]] const char* queue_kind_name(QueueKind k);

struct TaskManagerConfig {
  QueueKind queue_kind = QueueKind::kSpin;
  /// Algorithm 2's lock-avoiding emptiness pre-check (ablation switch).
  bool double_check = true;
  /// Count skipped-lock events in QueueStats::empty_checks. The counter is
  /// an atomic RMW on the otherwise contention-free fast path; benchmarks
  /// measuring that path should turn it off.
  bool queue_stats = true;
  /// Ablation: ignore the hierarchy and put every task in the Global queue
  /// (the "naive solution" / big-lock strawman of §III).
  bool single_global_queue = false;
  /// Upper bound on tasks run per queue per schedule() pass; 0 = drain a
  /// size snapshot (default). Prevents one core from being stuck forever in
  /// a queue where repeatable tasks keep re-enqueueing themselves.
  int max_tasks_per_pass = 0;
  /// Topology-aware work stealing (extension — the paper names stealing as
  /// future work): when a core's own branch of the hierarchy is empty,
  /// schedule() scans victim queues in locality order and takes tasks whose
  /// CpuSet allows this core. With `steal=false` the scheduler reproduces
  /// the paper's Algorithm 1 exactly.
  bool steal = true;
  /// Scan victims in Machine::steal_order() locality order (cache siblings
  /// first, then chip, NUMA, machine). false = flat node-id order, the
  /// locality ablation.
  bool steal_locality = true;
  /// Max tasks taken from the first victim with eligible work per steal
  /// attempt (clamped to [1, 32]).
  int steal_batch = 1;
};

/// Per-core execution counters (the paper reports the distribution of task
/// executions across cores for the per-chip and global queues).
struct CoreStats {
  uint64_t tasks_run = 0;
  uint64_t schedule_calls = 0;
  uint64_t steal_attempts = 0;  ///< victim scans started by this core
  uint64_t steal_hits = 0;      ///< scans that stole at least one task
  uint64_t tasks_stolen = 0;    ///< tasks this core took from other branches
};

class TaskManager {
 public:
  /// The machine must outlive the manager.
  explicit TaskManager(const topo::Machine& machine,
                       TaskManagerConfig config = {});

  TaskManager(const TaskManager&) = delete;
  TaskManager& operator=(const TaskManager&) = delete;

  /// Submit a task for execution. The task's cpuset selects the queue: the
  /// smallest topology node covering it (empty set -> Global queue). The
  /// caller keeps ownership of the Task storage; it must stay alive until
  /// completed().
  void submit(Task* task);

  /// Submit with an explicit home queue — a locality hint: the task goes to
  /// `node`'s queue even when that node does not cover the task's cpuset
  /// (e.g. an anywhere-runnable task dropped into the submitter's per-core
  /// queue for its ~6x cheaper fast path, Table I). Cores outside `node`'s
  /// branch reach such a task only by stealing; with stealing disabled it
  /// waits for an allowed core under `node`. Urgent tasks ignore the hint.
  void submit_to(Task* task, const topo::TopoNode& node);

  /// Algorithm 1, executed on behalf of core `cpu`: drain the Per-Core
  /// queue, then each ancestor queue up to the Global queue. Repeatable
  /// tasks that return kAgain are re-enqueued into the same queue. When the
  /// whole branch is dry and config().steal is set, falls through to one
  /// steal() attempt. Returns the number of task executions performed.
  int schedule(int cpu);

  /// One work-stealing attempt on behalf of `cpu`: scan victim queues in
  /// locality order (config().steal_locality) and run up to
  /// config().steal_batch eligible tasks from the first victim that yields
  /// any. Stolen repeatable tasks migrate: a kAgain re-enqueue goes to
  /// `cpu`'s per-core queue, not back to the victim. Returns tasks run.
  int steal(int cpu);

  /// schedule() bounded to queues at or above `max_depth_level` — the timer
  /// hook uses this to service only the Global queue.
  int schedule_from_level(int cpu, topo::Level shallowest);

  /// Drain the urgent queue (kTaskUrgent tasks), ignoring CPU sets — the
  /// whole point of a preemptive task is to run NOW, wherever. Returns the
  /// number of tasks executed. Called by schedule() and by the IrqService.
  int run_urgent(int cpu);

  /// Install a callback fired (outside any lock) whenever an urgent task is
  /// submitted; sched::IrqService uses it to wake its service thread.
  void set_urgent_notifier(std::function<void()> notifier);

  /// Urgent tasks currently queued (approximate).
  [[nodiscard]] std::size_t urgent_pending_approx() const;

  /// Run at most one task on behalf of `cpu`. Returns true if one ran.
  bool schedule_one(int cpu);

  /// Progressive wait (how blocking calls contribute): schedule on `cpu`
  /// until `task` completes. Requires the task to be reachable from `cpu`
  /// (its cpuset contains `cpu`, or contains cores serviced by others).
  void wait(Task& task, int cpu);

  /// Total tasks currently queued across the hierarchy (approximate).
  [[nodiscard]] std::size_t pending_approx() const;

  /// True when `cpu` may legally run `task` (cpuset check).
  [[nodiscard]] static bool cpu_allowed(const Task& task, int cpu);

  [[nodiscard]] const topo::Machine& machine() const { return machine_; }
  [[nodiscard]] const TaskManagerConfig& config() const { return config_; }

  /// Queue of a topology node (bench/tests introspection).
  [[nodiscard]] ITaskQueue& queue_of(const topo::TopoNode& node);
  [[nodiscard]] ITaskQueue& global_queue();

  [[nodiscard]] CoreStats core_stats(int cpu) const;
  void reset_stats();

  /// Total submissions since construction/reset.
  [[nodiscard]] uint64_t submissions() const {
    return submissions_.load(std::memory_order_relaxed);
  }

  /// Human-readable dump of queue occupancy and stats.
  [[nodiscard]] std::string dump() const;

 private:
  /// CoreStats with atomic counters: a core's stats are mostly touched by
  /// one thread, but foreign threads may schedule on a hashed core id
  /// (Runtime::schedule_here), so the increments must be data-race-free.
  struct CoreStatsCell {
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> schedule_calls{0};
    std::atomic<uint64_t> steal_attempts{0};
    std::atomic<uint64_t> steal_hits{0};
    std::atomic<uint64_t> tasks_stolen{0};
  };

  int drain_queue(ITaskQueue& queue, int cpu);
  /// Execute one task; re-enqueue on kAgain+kRepeat; returns kDone-or-not.
  void run_task(Task* task, ITaskQueue& queue, int cpu);
  /// steal() bounded to `max_batch` tasks (schedule_one steals single).
  int steal_bounded(int cpu, int max_batch);

  const topo::Machine& machine_;
  TaskManagerConfig config_;
  std::vector<std::unique_ptr<ITaskQueue>> queues_;  // index = TopoNode::id
  SpinTaskQueue urgent_queue_;
  std::function<void()> urgent_notifier_;
  // Fixed array (atomics are not movable, so no vector).
  std::unique_ptr<sync::CacheAligned<CoreStatsCell>[]> core_stats_;
  std::atomic<uint64_t> submissions_{0};
};

}  // namespace piom
