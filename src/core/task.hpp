// piom::Task — the unit of work the communication library delegates to the
// task manager (paper §III: "A task consists in running a function with a
// given parameter. A CPU set is attached to the task...").
//
// Tasks are *intrusive*: they carry their own queue linkage so the fast path
// performs no allocation (paper §IV-B: "the task structure does not require
// an allocation since it is included in the packet wrapper structure").
// Embed a Task in your request/packet object, init() it, and submit it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "sync/semaphore.hpp"
#include "topo/cpuset.hpp"

namespace piom {

/// What a task function reports back to the scheduler.
enum class TaskResult : uint8_t {
  kDone,   ///< task completed; do not re-enqueue even if kRepeat is set
  kAgain,  ///< not complete yet (e.g. poll found nothing); re-enqueue if kRepeat
};

/// Task option flags (paper: "an option is also added to a task").
enum TaskOptions : uint32_t {
  kTaskNone = 0,
  /// Repeatable task (network polling): re-enqueued after each run that
  /// returns kAgain, until a run returns kDone.
  kTaskRepeat = 1u << 0,
  /// post() the task's semaphore on completion so waiters can block.
  kTaskNotify = 1u << 1,
  /// Preemptive task (paper §VI future work): "tasks that can be executed
  /// immediately, even on a distant CPU where a thread is computing". It
  /// goes to a dedicated urgent queue serviced out-of-band (sched::
  /// IrqService) and ahead of every hierarchy queue by schedule(); the CPU
  /// set becomes advisory.
  kTaskUrgent = 1u << 2,
};

/// Task lifecycle. Transitions:
///   kCreated -> kQueued -> kRunning -> (kQueued | kDone)
///                                       ^ kRepeat+kAgain only
enum class TaskState : uint8_t {
  kCreated = 0,
  kQueued,
  kRunning,
  kDone,
};

[[nodiscard]] const char* task_state_name(TaskState s);

struct Task {
  using Fn = TaskResult (*)(void* arg);
  /// Post-completion hook, invoked by the scheduler as its very LAST touch
  /// of the task (strictly after the kDone state store). Used by owners
  /// that recycle task-carrying objects through a pool: the hook is the
  /// earliest safe point to release the storage. Must not be combined with
  /// kTaskNotify (the semaphore post would race with the release).
  using DoneFn = void (*)(Task* task);

  // ---- configuration (set before submit, stable while queued) ----
  Fn fn = nullptr;
  void* arg = nullptr;
  DoneFn on_done = nullptr;
  topo::CpuSet cpuset;       ///< cores allowed to execute the task
  uint32_t options = kTaskNone;

  // ---- scheduler-owned state ----
  std::atomic<TaskState> state{TaskState::kCreated};
  /// Intrusive queue linkage. Atomic because the lock-free queue publishes
  /// it through a CAS on the queue head (plain relaxed accesses under the
  /// locked queues' locks; the CAS provides the ordering in the lock-free
  /// one).
  std::atomic<Task*> next{nullptr};
  std::atomic<uint64_t> run_count{0};
  std::atomic<int> last_cpu{-1};   ///< core that last executed the task
  sync::Semaphore done_sem{0};     ///< posted on completion when kTaskNotify

  Task() = default;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// (Re-)arm the task. Must not be called while the task is queued/running.
  void init(Fn f, void* a, const topo::CpuSet& cpus, uint32_t opts);

  [[nodiscard]] bool completed() const {
    return state.load(std::memory_order_acquire) == TaskState::kDone;
  }

  /// Block until completion. Requires kTaskNotify. Cheap spin first.
  void wait_done() { done_sem.wait(); }
};

/// True when `cpu` may legally execute `task` (an empty cpuset means any
/// core). Shared by the scheduling walk and the queues' steal scans.
[[nodiscard]] inline bool task_allowed_on(const Task& task, int cpu) {
  return task.cpuset.empty() || task.cpuset.test(cpu);
}

/// Convenience adaptor owning a std::function; for examples/tests where the
/// raw fn/arg interface is inconvenient. Completion semantics are identical.
class FunctionTask {
 public:
  /// The callable returns a TaskResult like a raw task function.
  FunctionTask(std::function<TaskResult()> body, const topo::CpuSet& cpus,
               uint32_t opts);

  [[nodiscard]] Task& task() { return task_; }
  [[nodiscard]] bool completed() const { return task_.completed(); }
  void wait_done() { task_.wait_done(); }

 private:
  static TaskResult trampoline(void* self);

  std::function<TaskResult()> body_;
  Task task_;
};

}  // namespace piom
