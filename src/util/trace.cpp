#include "util/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/env.hpp"
#include "util/timing.hpp"

namespace piom::util::trace {

namespace {

struct Ring {
  std::vector<Event> events = std::vector<Event>(kRingCapacity);
  std::atomic<uint64_t> head{0};  ///< total events ever written
  uint32_t ordinal = 0;
};

std::mutex g_registry_mutex;
/// Ring registry. Immortal (allocated once, never destroyed): rings must
/// stay readable by collect() after their threads exit, and the registry
/// itself must survive static destruction so LeakSanitizer still sees the
/// ring pointers at its exit-time scan (a plain global vector would be
/// destructed first, orphaning them into reported leaks).
std::vector<Ring*>& rings() {
  static std::vector<Ring*>* v = new std::vector<Ring*>();
  return *v;
}
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_env_checked{false};

Ring& thread_ring() {
  thread_local Ring* ring = [] {
    auto* r = new Ring();  // immortal by design: see rings() comment
    std::lock_guard<std::mutex> lk(g_registry_mutex);
    r->ordinal = static_cast<uint32_t>(rings().size());
    rings().push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kTaskSubmit: return "task-submit";
    case Kind::kTaskRun: return "task-run";
    case Kind::kTaskDone: return "task-done";
    case Kind::kTaskRequeue: return "task-requeue";
    case Kind::kUrgentRun: return "urgent-run";
    case Kind::kTaskSteal: return "task-steal";
    case Kind::kSchedulePass: return "schedule";
    case Kind::kPacketTx: return "packet-tx";
    case Kind::kPacketRx: return "packet-rx";
    case Kind::kUser: return "user";
  }
  return "?";
}

bool enabled() {
  if (!g_env_checked.load(std::memory_order_acquire)) {
    if (util::env::boolean("PIOM_TRACE", false)) {
      g_enabled.store(true, std::memory_order_release);
    }
    g_env_checked.store(true, std::memory_order_release);
  }
  return g_enabled.load(std::memory_order_relaxed);
}

void enable() {
  g_env_checked.store(true, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
}

void disable() {
  g_env_checked.store(true, std::memory_order_release);
  g_enabled.store(false, std::memory_order_release);
}

void record(Kind kind, uint32_t arg0, uint64_t arg1) {
  Ring& ring = thread_ring();
  const uint64_t slot = ring.head.fetch_add(1, std::memory_order_relaxed);
  Event& e = ring.events[slot % kRingCapacity];
  e.t_ns = now_ns();
  e.thread = ring.ordinal;
  e.kind = kind;
  e.arg0 = arg0;
  e.arg1 = arg1;
}

std::vector<Event> collect() {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lk(g_registry_mutex);
    for (Ring* ring : rings()) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t n = std::min<uint64_t>(head, kRingCapacity);
      for (uint64_t i = head - n; i < head; ++i) {
        out.push_back(ring->events[i % kRingCapacity]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.t_ns < b.t_ns; });
  return out;
}

void reset() {
  std::lock_guard<std::mutex> lk(g_registry_mutex);
  for (Ring* ring : rings()) {
    ring->head.store(0, std::memory_order_release);
  }
}

std::string format(const std::vector<Event>& events) {
  std::string out;
  if (events.empty()) return out;
  const int64_t t0 = events.front().t_ns;
  char line[160];
  for (const Event& e : events) {
    std::snprintf(line, sizeof(line), "%10.3fus  thr%-3u %-13s arg0=%u arg1=%llu\n",
                  static_cast<double>(e.t_ns - t0) * 1e-3, e.thread,
                  kind_name(e.kind), e.arg0,
                  static_cast<unsigned long long>(e.arg1));
    out += line;
  }
  return out;
}

}  // namespace piom::util::trace
