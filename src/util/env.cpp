#include "util/env.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace piom::util::env {

std::optional<std::string> raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::string str(const char* name, const std::string& fallback) {
  return raw(name).value_or(fallback);
}

int64_t integer(const char* name, int64_t fallback) {
  const std::optional<std::string> v = raw(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 0);
  if (end == nullptr || *end != '\0' || end == v->c_str()) {
    PIOM_LOG_WARN("ignoring $%s='%s': expected an integer", name, v->c_str());
    return fallback;
  }
  return parsed;
}

double number(const char* name, double fallback) {
  const std::optional<std::string> v = raw(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == nullptr || *end != '\0' || end == v->c_str()) {
    PIOM_LOG_WARN("ignoring $%s='%s': expected a number", name, v->c_str());
    return fallback;
  }
  return parsed;
}

bool boolean(const char* name, bool fallback) {
  const std::optional<std::string> v = raw(name);
  if (!v) return fallback;
  const std::string& s = *v;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  PIOM_LOG_WARN("ignoring $%s='%s': expected a boolean (1/0, true/false, "
                "yes/no, on/off)",
                name, s.c_str());
  return fallback;
}

std::string choice(const char* name,
                   std::initializer_list<const char*> allowed,
                   const std::string& fallback) {
  const std::optional<std::string> v = raw(name);
  if (!v) return fallback;
  for (const char* a : allowed) {
    if (*v == a) return *v;
  }
  std::string list;
  for (const char* a : allowed) {
    if (!list.empty()) list += ", ";
    list += a;
  }
  PIOM_LOG_WARN("ignoring $%s='%s': expected one of {%s}", name, v->c_str(),
                list.c_str());
  return fallback;
}

}  // namespace piom::util::env
