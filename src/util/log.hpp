// Minimal leveled logger. Disabled by default so the fast paths stay quiet;
// enable with PIOM_LOG=debug|info|warn|error in the environment.
#pragma once

#include <cstdio>
#include <string>

namespace piom::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current level, parsed once from $PIOM_LOG (default: warn).
[[nodiscard]] LogLevel log_level();

/// True if a message at `lvl` would be emitted.
[[nodiscard]] inline bool log_enabled(LogLevel lvl) {
  return static_cast<int>(lvl) >= static_cast<int>(log_level());
}

/// printf-style logging; thread-safe (single write() per message).
void log_emit(LogLevel lvl, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace piom::util

#define PIOM_LOG_DEBUG(...)                                           \
  do {                                                                \
    if (piom::util::log_enabled(piom::util::LogLevel::kDebug))        \
      piom::util::log_emit(piom::util::LogLevel::kDebug, __VA_ARGS__); \
  } while (0)
#define PIOM_LOG_INFO(...)                                            \
  do {                                                                \
    if (piom::util::log_enabled(piom::util::LogLevel::kInfo))         \
      piom::util::log_emit(piom::util::LogLevel::kInfo, __VA_ARGS__);  \
  } while (0)
#define PIOM_LOG_WARN(...)                                            \
  do {                                                                \
    if (piom::util::log_enabled(piom::util::LogLevel::kWarn))         \
      piom::util::log_emit(piom::util::LogLevel::kWarn, __VA_ARGS__);  \
  } while (0)
#define PIOM_LOG_ERROR(...)                                           \
  do {                                                                \
    if (piom::util::log_enabled(piom::util::LogLevel::kError))        \
      piom::util::log_emit(piom::util::LogLevel::kError, __VA_ARGS__); \
  } while (0)
