// Small descriptive-statistics helpers for benchmarks and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace piom::util {

/// Summary of a sample of measurements.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double p10 = 0;
  double p90 = 0;
  double p99 = 0;
  double stddev = 0;
};

/// Compute a Summary over `samples` (not required to be sorted; the input is
/// copied so callers keep their data).
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// q-th quantile (q in [0,1]) by linear interpolation over a *sorted* vector.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double q);

/// Accumulates samples incrementally; cheap to reset between benchmark
/// repetitions.
class SampleSet {
 public:
  void add(double v) { samples_.push_back(v); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() { samples_.clear(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] Summary summary() const { return summarize(samples_); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Render "  123" / " 1.2k"-style human numbers for table output.
[[nodiscard]] std::string format_si(double value, int width = 0);

/// Render a ratio as "87.5%" ("-" when the denominator is zero); used for
/// steal hit rates and similar counter quotients in bench tables.
[[nodiscard]] std::string format_pct(uint64_t numerator, uint64_t denominator);

}  // namespace piom::util
