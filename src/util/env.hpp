// The one front door for $PIOM_* environment knobs: typed parsing with
// log-on-junk semantics. Every knob the library reads goes through here
// (see the table in docs/architecture.md), so a typo'd value is reported
// once instead of being silently swallowed the way raw getenv/strtol
// call sites used to.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>

namespace piom::util::env {

/// Raw value of $name; nullopt when unset or empty.
[[nodiscard]] std::optional<std::string> raw(const char* name);

/// String from $name, or `fallback` when unset/empty.
[[nodiscard]] std::string str(const char* name, const std::string& fallback);

/// Integer from $name (strtoll base 0: decimal, 0x-hex and 0-octal all
/// parse, so seed knobs may be given in hex). Unset -> `fallback`; junk ->
/// `fallback` plus one warning through the logger.
[[nodiscard]] int64_t integer(const char* name, int64_t fallback);

/// Double from $name; unset -> `fallback`, junk -> `fallback` + warning.
[[nodiscard]] double number(const char* name, double fallback);

/// Boolean from $name: "1"/"true"/"yes"/"on" -> true, "0"/"false"/"no"/
/// "off" -> false. Unset -> `fallback`, junk -> `fallback` + warning.
[[nodiscard]] bool boolean(const char* name, bool fallback);

/// Value of $name constrained to `allowed`. Unset -> `fallback`; a value
/// outside the list -> `fallback` + warning listing the choices. Callers
/// that must hard-reject junk instead (e.g. $PIOM_TRANSPORT, where running
/// a whole suite on the wrong backend is worse than not running) validate
/// the result of str() themselves and throw.
[[nodiscard]] std::string choice(const char* name,
                                 std::initializer_list<const char*> allowed,
                                 const std::string& fallback);

}  // namespace piom::util::env
