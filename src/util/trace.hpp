// Lightweight event tracing (the rôle FxT plays in the real PM2/PIOMan
// stack): per-thread lock-free ring buffers record scheduler and
// communication events with nanosecond timestamps; collect() merges them
// into one time-ordered stream for offline analysis or test assertions.
//
// Disabled by default: recording costs one branch on a relaxed atomic.
// Enable programmatically (trace::enable()) or with PIOM_TRACE=1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace piom::util::trace {

enum class Kind : uint8_t {
  kTaskSubmit = 1,
  kTaskRun = 2,
  kTaskDone = 3,
  kTaskRequeue = 4,
  kUrgentRun = 5,
  kTaskSteal = 9,
  kSchedulePass = 6,
  kPacketTx = 7,
  kPacketRx = 8,
  kUser = 100,
};

[[nodiscard]] const char* kind_name(Kind k);

struct Event {
  int64_t t_ns = 0;    ///< monotonic timestamp
  uint32_t thread = 0; ///< recording thread's registration ordinal
  Kind kind = Kind::kUser;
  uint32_t arg0 = 0;   ///< e.g. cpu id
  uint64_t arg1 = 0;   ///< e.g. task pointer / packet size
};

/// Global switch. Initialized from $PIOM_TRACE at first query.
[[nodiscard]] bool enabled();
void enable();
void disable();

/// Record one event into the calling thread's ring (no-op when disabled).
void record(Kind kind, uint32_t arg0, uint64_t arg1);

/// Merge every thread's ring into one vector sorted by timestamp. Events
/// overwritten by ring wrap-around are gone (each ring keeps the most
/// recent `kRingCapacity` events).
[[nodiscard]] std::vector<Event> collect();

/// Drop all recorded events (keeps registration).
void reset();

/// Human-readable rendering of a collected stream.
[[nodiscard]] std::string format(const std::vector<Event>& events);

/// Events each thread's ring retains.
inline constexpr std::size_t kRingCapacity = 4096;

}  // namespace piom::util::trace

/// Convenience macro: compiles to a single branch when tracing is off.
#define PIOM_TRACE(kind, arg0, arg1)                                       \
  do {                                                                     \
    if (piom::util::trace::enabled()) {                                    \
      piom::util::trace::record((kind), static_cast<uint32_t>(arg0),       \
                                static_cast<uint64_t>(arg1));              \
    }                                                                      \
  } while (0)
