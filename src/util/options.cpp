#include "util/options.hpp"

namespace piom::util {

std::string arg_value(int argc, char** argv, const std::string& key) {
  const std::string dashed = "--" + key;
  const std::string dashed_eq = dashed + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(dashed_eq, 0) == 0) return a.substr(dashed_eq.size());
    if (a == dashed && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

bool arg_flag(int argc, char** argv, const std::string& flag) {
  const std::string dashed = "--" + flag;
  for (int i = 1; i < argc; ++i) {
    if (dashed == argv[i]) return true;
  }
  return false;
}

}  // namespace piom::util
