#include "util/options.hpp"

#include <cstdlib>
#include <cstring>

namespace piom::util {

int64_t env_int(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

bool env_bool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

std::string arg_value(int argc, char** argv, const std::string& key) {
  const std::string dashed = "--" + key;
  const std::string dashed_eq = dashed + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(dashed_eq, 0) == 0) return a.substr(dashed_eq.size());
    if (a == dashed && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

bool arg_flag(int argc, char** argv, const std::string& flag) {
  const std::string dashed = "--" + flag;
  for (int i = 1; i < argc; ++i) {
    if (dashed == argv[i]) return true;
  }
  return false;
}

}  // namespace piom::util
