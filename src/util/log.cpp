#include "util/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "util/env.hpp"

namespace piom::util {

namespace {
LogLevel parse_level() {
  // Validated here rather than via env::choice: the logger cannot warn
  // through itself while its own level is still being initialized.
  const std::optional<std::string> env = env::raw("PIOM_LOG");
  if (!env) return LogLevel::kWarn;
  if (*env == "debug") return LogLevel::kDebug;
  if (*env == "info") return LogLevel::kInfo;
  if (*env == "warn") return LogLevel::kWarn;
  if (*env == "error") return LogLevel::kError;
  if (*env == "off") return LogLevel::kOff;
  std::fprintf(stderr,
               "piom: ignoring $PIOM_LOG='%s': expected "
               "debug|info|warn|error|off\n",
               env->c_str());
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLevel log_level() {
  static const LogLevel lvl = parse_level();
  return lvl;
}

void log_emit(LogLevel lvl, const char* fmt, ...) {
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  char line[1100];
  const int n =
      std::snprintf(line, sizeof(line), "[piom %s] %s\n", level_tag(lvl), msg);
  if (n > 0) {
    std::fwrite(line, 1, static_cast<std::size_t>(n), stderr);
  }
}

}  // namespace piom::util
