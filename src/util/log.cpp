#include "util/log.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace piom::util {

namespace {
LogLevel parse_level() {
  const char* env = std::getenv("PIOM_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLevel log_level() {
  static const LogLevel lvl = parse_level();
  return lvl;
}

void log_emit(LogLevel lvl, const char* fmt, ...) {
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  char line[1100];
  const int n =
      std::snprintf(line, sizeof(line), "[piom %s] %s\n", level_tag(lvl), msg);
  if (n > 0) {
    std::fwrite(line, 1, static_cast<std::size_t>(n), stderr);
  }
}

}  // namespace piom::util
