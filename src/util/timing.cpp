#include "util/timing.hpp"

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace piom::util {

namespace {
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}
}  // namespace

void spin_until_ns(int64_t deadline_ns) {
  while (now_ns() < deadline_ns) {
    cpu_relax();
  }
}

void precise_wait_ns(int64_t duration_ns) {
  const int64_t deadline = now_ns() + duration_ns;
  // Sleeping can overshoot by a full scheduling quantum (>1 ms in
  // containers); only sleep when the wait is long enough to amortise that,
  // then spin the rest.
  constexpr int64_t kSleepSlackNs = 2'500'000;
  int64_t remaining = deadline - now_ns();
  while (remaining > kSleepSlackNs) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(remaining - kSleepSlackNs));
    remaining = deadline - now_ns();
  }
  spin_until_ns(deadline);
}

void burn_cpu_us(double duration_us) {
  const int64_t deadline = now_ns() + static_cast<int64_t>(duration_us * 1e3);
  // Volatile accumulator defeats dead-code elimination without needing
  // per-iteration clock reads (check the clock every 64 rounds).
  volatile uint64_t sink = 1;
  while (true) {
    for (int i = 0; i < 64; ++i) {
      sink = sink * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    if (now_ns() >= deadline) break;
  }
}

}  // namespace piom::util
