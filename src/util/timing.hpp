// High-resolution timing helpers used by the scheduler, the simulated
// fabric's cost model and every benchmark.
//
// All durations in the public API are expressed in nanoseconds (int64_t) or
// microseconds (double) to match the units the paper reports (ns for the
// scheduling micro-benchmarks, µs for latency/overlap figures).
#pragma once

#include <chrono>
#include <cstdint>

namespace piom::util {

/// Monotonic clock reading in nanoseconds. Safe across threads.
[[nodiscard]] inline int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic clock reading in microseconds (fractional).
[[nodiscard]] inline double now_us() {
  return static_cast<double>(now_ns()) * 1e-3;
}

/// Busy-wait until the monotonic clock reaches `deadline_ns`.
/// Used for sub-50µs waits where sleeping would destroy precision
/// (the simulated NIC engine paces link transfers with this).
void spin_until_ns(int64_t deadline_ns);

/// Wait for `duration_ns`: sleeps for the bulk when the wait is long,
/// then spins the remainder for precision.
void precise_wait_ns(int64_t duration_ns);

/// Burn CPU for approximately `duration_us` microseconds. This is the
/// "computation" phase of the overlap benchmarks (paper §V-C): it must be
/// real CPU work that occupies a core, not a sleep, because the whole point
/// is whether communication can progress while the core is busy.
void burn_cpu_us(double duration_us);

/// Simple stopwatch for benchmark loops.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(now_ns()) {}
  void reset() { start_ns_ = now_ns(); }
  [[nodiscard]] int64_t elapsed_ns() const { return now_ns() - start_ns_; }
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) * 1e-3;
  }

 private:
  int64_t start_ns_;
};

}  // namespace piom::util
