// Environment/CLI option helpers shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace piom::util {

/// Integer from $name, or `fallback` when unset/unparsable.
[[nodiscard]] int64_t env_int(const char* name, int64_t fallback);

/// Double from $name, or `fallback`.
[[nodiscard]] double env_double(const char* name, double fallback);

/// String from $name, or `fallback`.
[[nodiscard]] std::string env_str(const char* name, const std::string& fallback);

/// Boolean from $name ("1", "true", "yes", "on" → true), or `fallback`.
[[nodiscard]] bool env_bool(const char* name, bool fallback);

/// Tiny argv scanner: returns the value following "--key" or the part after
/// "--key=" if present, else empty. Benches use it for e.g. --quick.
[[nodiscard]] std::string arg_value(int argc, char** argv, const std::string& key);

/// True when "--flag" appears in argv.
[[nodiscard]] bool arg_flag(int argc, char** argv, const std::string& flag);

}  // namespace piom::util
