// CLI option helpers shared by benches and examples. Environment knobs
// moved to util/env.hpp (typed parse + log-on-junk).
#pragma once

#include <string>

namespace piom::util {

/// Tiny argv scanner: returns the value following "--key" or the part after
/// "--key=" if present, else empty. Benches use it for e.g. --quick.
[[nodiscard]] std::string arg_value(int argc, char** argv, const std::string& key);

/// True when "--flag" appears in argv.
[[nodiscard]] bool arg_flag(int argc, char** argv, const std::string& flag);

}  // namespace piom::util
