#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace piom::util {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.median = quantile_sorted(sorted, 0.5);
  s.p10 = quantile_sorted(sorted, 0.10);
  s.p90 = quantile_sorted(sorted, 0.90);
  s.p99 = quantile_sorted(sorted, 0.99);
  double var = 0;
  for (double v : sorted) {
    const double d = v - s.mean;
    var += d * d;
  }
  s.stddev = sorted.size() > 1
                 ? std::sqrt(var / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  return s;
}

std::string format_si(double value, int width) {
  char buf[64];
  const double a = std::fabs(value);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  std::string out(buf);
  while (static_cast<int>(out.size()) < width) out.insert(out.begin(), ' ');
  return out;
}

std::string format_pct(uint64_t numerator, uint64_t denominator) {
  if (denominator == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(numerator) /
                    static_cast<double>(denominator));
  return buf;
}

}  // namespace piom::util
