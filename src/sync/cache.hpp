// Cache-line management helpers. Hierarchical queues live on separate cache
// lines so that contention on one queue never false-shares with another —
// the paper's whole point is that per-core queues are contention-free.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace piom::sync {

// Fixed at 64 bytes (x86-64 / most ARM): using
// std::hardware_destructive_interference_size would make the struct layouts
// (an ABI concern) vary with compiler tuning flags.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps T so that it occupies (at least) its own cache line.
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value;

  CacheAligned() = default;
  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace piom::sync
