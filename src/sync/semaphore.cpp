#include "sync/semaphore.hpp"

#include "sync/backoff.hpp"

namespace piom::sync {

void Semaphore::post() {
  const int prev = count_.fetch_add(1, std::memory_order_release);
  if (prev < 0) {
    // At least one waiter is parked (or about to park): hand it a wakeup.
    std::lock_guard<std::mutex> lk(mutex_);
    ++wakeups_;
    cv_.notify_one();
  }
}

void Semaphore::wait(int spin_iterations) {
  // Fast path / bounded spin: completions from the progression engine are
  // typically a few µs away, cheaper to spin than to park. Plain relax —
  // NOT exponential backoff — so the spin phase stays a few µs total and a
  // machine full of waiting threads (Fig 4 at 128 threads) does not burn
  // whole cores before parking.
  for (int i = 0; i < spin_iterations; ++i) {
    if (try_wait()) return;
    cpu_relax();
  }
  const int prev = count_.fetch_sub(1, std::memory_order_acquire);
  if (prev > 0) return;  // grabbed an available unit after all
  std::unique_lock<std::mutex> lk(mutex_);
  cv_.wait(lk, [this] { return wakeups_ > 0; });
  --wakeups_;
}

bool Semaphore::try_wait() {
  int cur = count_.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (count_.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace piom::sync
