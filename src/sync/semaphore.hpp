// Counting semaphore used for task/request completion notification
// (PIOMan's piom_sem_t). The fast path is a lock-free counter; a waiter
// first spins briefly (completions are often microseconds away), then
// parks on a condition variable so blocked MPI_Recv threads do not burn
// cores — this is exactly what keeps the Fig 4 multithreaded latency flat.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace piom::sync {

class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// V(): release one unit and wake a waiter if any.
  void post();

  /// P(): acquire one unit; spins up to `spin_iterations` (~20 ns each, so
  /// the default covers roughly the fabric's small-message latency) before
  /// parking on the condvar.
  void wait(int spin_iterations = 4096);

  /// Non-blocking P(). True on success.
  bool try_wait();

  /// Current value (may be stale under concurrency; for tests/stats).
  [[nodiscard]] int value() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  // count_ >= 0: available units. count_ < 0: -count_ parked waiters.
  std::atomic<int> count_;
  std::mutex mutex_;
  std::condition_variable cv_;
  // Wakeups already produced by post() but not yet consumed by a parked
  // waiter (protected by mutex_).
  int wakeups_ = 0;
};

}  // namespace piom::sync
