// Clang Thread Safety Analysis macros (portable no-op shim).
//
// Under clang with -Wthread-safety these expand to the capability
// attributes, turning the repo's lock-discipline comments ("guards X",
// "requires lock_ held", "call WITHOUT lock_") into compile-time checked
// contracts. Under GCC (the development container) every macro expands to
// nothing, so annotated code builds identically everywhere.
//
// Conventions (see docs/static-analysis.md):
//   * Lock classes are PIOM_CAPABILITY; the scoped guard is
//     PIOM_SCOPED_CAPABILITY (sync::LockGuard in sync/spinlock.hpp).
//   * Data a lock protects is PIOM_GUARDED_BY(lock_).
//   * Helpers named `*_locked` (or documented "requires lock held") are
//     PIOM_REQUIRES(lock_).
//   * Functions documented "call WITHOUT the lock" that take it themselves
//     are PIOM_EXCLUDES(lock_).
//   * PIOM_NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort;
//     every use must carry a comment saying why the analysis is wrong.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PIOM_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef PIOM_THREAD_ANNOTATION_
#define PIOM_THREAD_ANNOTATION_(x)  // not clang (or too old): no-op
#endif

/// On a class: instances are capabilities (lockable things).
#define PIOM_CAPABILITY(x) PIOM_THREAD_ANNOTATION_(capability(x))

/// On a class: RAII object that acquires in its ctor, releases in its dtor.
#define PIOM_SCOPED_CAPABILITY PIOM_THREAD_ANNOTATION_(scoped_lockable)

/// On a data member: reads and writes require holding `x`.
#define PIOM_GUARDED_BY(x) PIOM_THREAD_ANNOTATION_(guarded_by(x))

/// On a pointer member: the pointed-to data requires holding `x`.
#define PIOM_PT_GUARDED_BY(x) PIOM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// On a function: caller must already hold the listed capabilities.
#define PIOM_REQUIRES(...) \
  PIOM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// On a function: acquires the listed capabilities (held on return).
#define PIOM_ACQUIRE(...) \
  PIOM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// On a function: releases the listed capabilities (caller held them).
#define PIOM_RELEASE(...) \
  PIOM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// On a function returning bool: acquires iff the return value == `b`.
#define PIOM_TRY_ACQUIRE(b, ...) \
  PIOM_THREAD_ANNOTATION_(try_acquire_capability(b, ##__VA_ARGS__))

/// On a function: caller must NOT hold the listed capabilities (the
/// function takes them itself; holding them would self-deadlock).
#define PIOM_EXCLUDES(...) \
  PIOM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// On a function: returns a reference to the capability guarding `x`.
#define PIOM_RETURN_CAPABILITY(x) PIOM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Comment every use.
#define PIOM_NO_THREAD_SAFETY_ANALYSIS \
  PIOM_THREAD_ANNOTATION_(no_thread_safety_analysis)
