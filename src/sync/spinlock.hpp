// Spinlocks protecting the hierarchical task queues.
//
// The paper (§IV-A) argues for spinlocks over mutexes: a thread holds the
// queue lock for less than the cost of a context switch, so blocking
// synchronization would only add latency. We provide:
//   * SpinLock   — test-and-test-and-set with exponential backoff (default)
//   * TicketLock — FIFO-fair spinlock (shows NUMA-unfairness effects the
//                  paper observed on the global queue of `kwak`)
//   * MutexLock  — std::mutex adapter, for the lock ablation bench
// All three satisfy the Lockable concept used by LockedTaskQueue<Lock>.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace piom::sync {

/// TTAS spinlock with exponential backoff.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    Backoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load to avoid hammering the cache line with RMWs.
      while (flag_.load(std::memory_order_relaxed)) backoff.spin();
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// FIFO ticket lock. Fair, but every waiter spins on the same counter, so
/// on NUMA machines release-to-acquire latency depends on distance — the
/// effect behind the paper's unbalanced global-queue distribution on kwak.
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() {
    const uint32_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      backoff.spin();
    }
  }

  bool try_lock() {
    uint32_t cur = serving_.load(std::memory_order_acquire);
    uint32_t expected = cur;
    // Only succeeds when no one is queued behind `cur`.
    return next_.compare_exchange_strong(expected, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() { serving_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<uint32_t> next_{0};
  alignas(kCacheLine) std::atomic<uint32_t> serving_{0};
};

/// std::mutex with the same surface, for the ablation benchmark: the paper
/// predicts this loses to spinlocks because of context-switch risk.
class MutexLock {
 public:
  void lock() { m_.lock(); }
  bool try_lock() { return m_.try_lock(); }
  void unlock() { m_.unlock(); }

 private:
  std::mutex m_;
};

}  // namespace piom::sync
