// Spinlocks protecting the hierarchical task queues.
//
// The paper (§IV-A) argues for spinlocks over mutexes: a thread holds the
// queue lock for less than the cost of a context switch, so blocking
// synchronization would only add latency. We provide:
//   * SpinLock   — test-and-test-and-set with exponential backoff (default)
//   * TicketLock — FIFO-fair spinlock (shows NUMA-unfairness effects the
//                  paper observed on the global queue of `kwak`)
//   * MutexLock  — std::mutex adapter, for the lock ablation bench
// All three satisfy the Lockable concept used by LockedTaskQueue<Lock>,
// and all three are thread-safety capabilities: under clang's
// -Wthread-safety (the PIOM_ANALYZE build) the compiler proves that
// PIOM_GUARDED_BY data is only touched with the right lock held. Prefer
// sync::LockGuard below over std::lock_guard — libstdc++'s guard carries
// no annotations, so the analysis cannot see the acquire through it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "sync/annotations.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace piom::sync {

/// TTAS spinlock with exponential backoff.
class PIOM_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() PIOM_ACQUIRE() {
    Backoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load to avoid hammering the cache line with RMWs.
      while (flag_.load(std::memory_order_relaxed)) backoff.spin();
    }
  }

  bool try_lock() PIOM_TRY_ACQUIRE(true) {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() PIOM_RELEASE() {
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// FIFO ticket lock. Fair, but every waiter spins on the same counter, so
/// on NUMA machines release-to-acquire latency depends on distance — the
/// effect behind the paper's unbalanced global-queue distribution on kwak.
class PIOM_CAPABILITY("ticketlock") TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() PIOM_ACQUIRE() {
    const uint32_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      backoff.spin();
    }
  }

  bool try_lock() PIOM_TRY_ACQUIRE(true) {
    uint32_t cur = serving_.load(std::memory_order_acquire);
    uint32_t expected = cur;
    // Only succeeds when no one is queued behind `cur`.
    return next_.compare_exchange_strong(expected, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() PIOM_RELEASE() {
    serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<uint32_t> next_{0};
  alignas(kCacheLine) std::atomic<uint32_t> serving_{0};
};

/// std::mutex with the same surface, for the ablation benchmark: the paper
/// predicts this loses to spinlocks because of context-switch risk. Also
/// the lock of choice where a capability-annotated blocking mutex is
/// needed (std::mutex itself carries no annotations in libstdc++).
class PIOM_CAPABILITY("mutex") MutexLock {
 public:
  void lock() PIOM_ACQUIRE() { m_.lock(); }
  bool try_lock() PIOM_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void unlock() PIOM_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// Tag type for LockGuard's adopting constructor (std::adopt_lock_t
/// equivalent, kept local so the guard stays self-contained).
struct AdoptLock {
  explicit AdoptLock() = default;
};
inline constexpr AdoptLock kAdoptLock{};

/// Annotated scoped guard: RAII like std::lock_guard, but visible to the
/// thread-safety analysis (acquires in the ctor, releases in the dtor).
/// Works with any of the capability classes above.
template <typename Lock>
class PIOM_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Lock& lock) PIOM_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  /// Adopt a lock the caller already holds (pairs with try_lock).
  LockGuard(Lock& lock, AdoptLock) PIOM_REQUIRES(lock) : lock_(lock) {}
  ~LockGuard() PIOM_RELEASE() { lock_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace piom::sync
