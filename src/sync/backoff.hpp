// Exponential backoff for spin loops (TTAS locks, lock-free retry loops).
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace piom::sync {

/// One architectural pause; hints the core that we are spinning.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Exponential backoff: starts at one pause, doubles up to `kMaxSpins`
/// pauses, then degrades to yield() so a preempted lock holder can run.
class Backoff {
 public:
  void spin() {
    if (spins_ <= kMaxSpins) {
      for (uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 1; }

 private:
  static constexpr uint32_t kMaxSpins = 1024;
  uint32_t spins_ = 1;
};

}  // namespace piom::sync
