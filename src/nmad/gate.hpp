// Gate: the per-peer connection object (NewMadeleine terminology). It owns
// the rails (NICs) towards one peer, the tag-matching state, the pending
// send queue the strategies operate on, and the rendezvous bookkeeping.
//
// Thread-safety is fine-grained (paper §IV-B: "The combination of PIOMan
// tasks and NewMadeleine fine-grain locking permits to process communication
// operations in parallel"): one spinlock per gate protects matching/pending
// state for *short* critical sections; NIC post/poll calls are outside the
// lock, so several rails can be polled concurrently and a poll can run
// concurrently with a submission.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "nmad/matcher.hpp"
#include "nmad/packet.hpp"
#include "nmad/request.hpp"
#include "nmad/strategy.hpp"
#include "nmad/types.hpp"
#include "sync/spinlock.hpp"
#include "transport/channel.hpp"

namespace piom::nmad {

class Session;

/// Gate-level counters (tests + Fig-1 bench).
struct GateStats {
  uint64_t eager_sent = 0;
  uint64_t eager_recv = 0;
  uint64_t packs_sent = 0;        ///< aggregated wire packets
  uint64_t msgs_packed = 0;       ///< messages shipped inside packs
  uint64_t rdv_sent = 0;
  uint64_t rdv_recv = 0;
  uint64_t unexpected_eager = 0;  ///< arrivals with no matching irecv
  uint64_t unexpected_rts = 0;
  // Reliability layer (SessionConfig::reliable):
  uint64_t acks_sent = 0;
  uint64_t retransmits = 0;
  uint64_t duplicates_dropped = 0;
  // Failure detector (mpi::FailureDetector drives these):
  uint64_t pings_sent = 0;
  uint64_t pings_recv = 0;
  // Failure drain (revoke_tags): RTS arrivals refused with a kNack, and
  // local rendezvous sends error-completed by a peer's kNack.
  uint64_t rts_nacked = 0;
  uint64_t sends_nacked = 0;
  // Matcher observability (TagMatcher snapshot):
  uint64_t match_bucket_hits = 0;     ///< lookups resolved via a tag bucket
  uint64_t match_wildcard_scans = 0;  ///< full scans on behalf of kAnyTag
  uint64_t posted_depth_hw = 0;       ///< posted-receive high-water
  uint64_t unexpected_depth_hw = 0;   ///< staged-arrival high-water
  uint64_t match_pool_hits = 0;       ///< matcher node/entry freelist reuses
  uint64_t match_pool_misses = 0;     ///< matcher allocations
  // Packet-wrapper pool (send path) and lazy receive-buffer pool:
  uint64_t pw_pool_hits = 0;
  uint64_t pw_pool_misses = 0;
  uint64_t recv_bufs_posted_hw = 0;  ///< max buffers posted on any one rail
  uint64_t recv_pool_growths = 0;    ///< lazy-growth events across rails
};

class Gate {
 public:
  /// `rails` are this side's connected transport channels towards the peer
  /// (any backend, freely mixed); they must outlive the gate. A small
  /// initial set of receive pool buffers is posted immediately; the pool
  /// grows lazily towards pool_bufs_per_rail under RX pressure (see
  /// SessionConfig::pool_bufs_initial). `peer_rank` identifies the peer in
  /// the owning cluster (reported as RecvRequest::source on every match;
  /// -1 when the caller doesn't care).
  Gate(Session& session, std::vector<transport::IChannel*> rails,
       int peer_rank = -1);
  ~Gate();

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  // ---- application-facing API (thread-safe) ----

  /// Start a send. The request object is caller-owned and must outlive
  /// completion. When `defer` is false the message is packed and posted
  /// inline; when true it only joins the pending queue — the caller (the
  /// PIOMan engine) later triggers flush(), typically from an offloaded
  /// task on an idle core.
  void isend(SendRequest& req, Tag tag, const void* buf, std::size_t len,
             bool defer = false);

  /// Start a receive into `buf` (capacity `cap`).
  void irecv(RecvRequest& req, Tag tag, void* buf, std::size_t cap);

  /// Register an any-source receive (initialised by WildSet::post) with
  /// this gate: match immediately against staged unexpected arrivals, else
  /// join the expected queue. Returns true when the request needs no
  /// further registrations (matched here, or already claimed elsewhere).
  bool post_wild(RecvRequest& req);

  /// Drop a wildcard registration that was claimed by a sibling gate.
  /// No-op when the request is not queued here.
  void remove_expected(RecvRequest& req);

  /// Pack and post every pending send (strategy layer: aggregation, rail
  /// selection). Safe to call from any thread, including concurrently.
  void flush();

  // ---- multi-hop forwarding (sparse overlays; see src/mpi/membership) ----

  /// Origin side: ship `buf` towards remote rank `dst` by handing it to
  /// this gate's peer for relaying. The message is cut into kForwardChunk
  /// fragments, each a kForward packet riding the reliability layer on
  /// every hop; `req` is attached to the LAST fragment and completes when
  /// it is acked/on the wire ("sent", eager semantics — delivery matching
  /// happens in the destination's forward inbox). `fseq` is the origin's
  /// per-(src,dst) message number, used for reassembly and match order.
  void isend_forward(SendRequest& req, int src, int dst, Tag tag,
                     uint64_t fseq, const void* buf, std::size_t len);

  /// Relay side: re-emit one already-decoded forward fragment towards this
  /// gate's peer, fire-and-forget (no request; the per-hop reliability
  /// layer still acks/retransmits the packet itself).
  void forward_raw(const ForwardFrame& frame);

  /// Poll one rail: drain RX (dispatch arrivals) and TX (complete sends,
  /// advance rendezvous pulls) completion queues. Returns events handled.
  int poll_rail(int rail_index);

  /// flush() + poll every rail + retransmission check. Returns events
  /// handled.
  int progress();

  /// Reliability layer: repost unacknowledged packets older than the RTO.
  /// No-op unless SessionConfig::reliable. Called by progress(); background
  /// progression engines whose polling bypasses progress() (per-rail tasks)
  /// must call it periodically themselves. Stops reposting once the peer
  /// is declared dead — fail_peer() error-completes the stuck senders
  /// instead, which is what breaks the lossy-link retransmit livelock.
  void check_retransmits();

  // ---- failure detection / error completion ----

  /// Send one heartbeat packet on rail 0 (no-op once the peer is dead).
  /// Pings live outside the reliability layer: never acked, retransmitted
  /// or dedup-tracked.
  void send_ping();

  /// Monotonic timestamp (util::now_ns) of the last wire arrival from the
  /// peer — any packet counts, including acks and pings. Initialised to
  /// the gate's creation time, so a lazily-created gate gets one full
  /// silence window before the failure detector may act on it.
  [[nodiscard]] int64_t last_heard_ns() const {
    return last_heard_ns_.load(std::memory_order_acquire);
  }

  /// Declare the peer failed and error-complete everything stuck on it:
  /// pending and unacknowledged sends, rendezvous sends parked for FIN,
  /// and every queued receive (wildcards are claimed, so an any-source
  /// request fails on the first dead gate — ULFM-style semantics). All are
  /// completed with RequestCore::failed set. Also quiesces both endpoints
  /// of every rail first, so owners of error-completed requests may free
  /// their buffers immediately, and drops the staged unexpected arrivals
  /// (eager + RTS): nothing may ever match a dead peer's data, so keeping
  /// it would only pin memory until gate destruction. Subsequent
  /// isend/irecv on this gate fail at once. Idempotent, thread-safe;
  /// called by the failure detector and usable directly by tests.
  void fail_peer();
  [[nodiscard]] bool peer_dead() const {
    return peer_dead_.load(std::memory_order_acquire);
  }

  /// Withdraw a queued receive and error-complete it (MPI_Cancel-style,
  /// used to release collective round receives whose sender died). False
  /// when the request is not queued here — it matched already (completion
  /// may still be in flight) or lives on another gate.
  bool cancel_recv(RecvRequest& req);

  /// Revoke a tag window: declare that no receive will ever be posted for
  /// tags with (tag & mask) == value. Staged unexpected RTS entries in the
  /// window are NACKed immediately and later-arriving ones are NACKed on
  /// arrival, so a peer's rendezvous send parked for FIN error-completes
  /// instead of hanging (the receiver must drive this — the sender cannot
  /// withdraw unilaterally, because a matched RTS may have an RDMA pull in
  /// flight against its buffer). Unexpected *eager* data in the window is
  /// dropped: its sends completed on ack/TX and nothing may match it
  /// later. Used by the collectives' failure drain, which revokes a dying
  /// collective's whole tag epoch on every live gate. Revocations are
  /// permanent for the gate's lifetime (epochs are not reused). No-op on a
  /// dead gate. Thread-safe.
  void revoke_tags(Tag mask, Tag value);

  [[nodiscard]] int peer_rank() const { return peer_rank_; }
  [[nodiscard]] int nrails() const { return static_cast<int>(rails_.size()); }
  [[nodiscard]] transport::IChannel& rail_channel(int rail_index) {
    return *rails_[static_cast<std::size_t>(rail_index)].ch;
  }
  [[nodiscard]] Session& session() { return session_; }
  [[nodiscard]] GateStats stats() const;
  [[nodiscard]] std::size_t pending_sends() const;

  /// Total pw allocations (tests assert wrapper recycling works).
  [[nodiscard]] uint64_t pw_allocated() const { return pw_pool_.allocated(); }

 private:
  struct PoolBuf {
    Gate* gate = nullptr;
    int rail = 0;
    std::vector<uint8_t> data;
  };

  struct RailState {
    transport::IChannel* ch = nullptr;
    int index = 0;
    std::deque<PoolBuf> pool;
    /// Buffers currently posted (== pool.size()); guarded by poll_lock
    /// after construction — growth happens on the poll path only.
    int posted_bufs = 0;
    // Serializes pollers of this rail so completions are handled once.
    sync::SpinLock poll_lock;
  };

  // Wire handling (called from poll_rail).
  void handle_wire(const uint8_t* data, std::size_t len, int rail_index);
  void handle_forward(const PktHeader& hdr, const uint8_t* payload);
  void handle_eager(const PktHeader& hdr, const uint8_t* payload);
  void handle_pack(const PktHeader& hdr, const uint8_t* body, std::size_t len);
  void handle_rts(const PktHeader& hdr);
  void handle_fin(const PktHeader& hdr);
  void handle_nack(const PktHeader& hdr);
  void handle_ack(const PktHeader& hdr);
  void handle_tx_completion(const transport::Completion& c);

  // Reliability layer.
  /// Record `pkt_seq` as received. False when it is a duplicate.
  bool dedup_mark(uint64_t pkt_seq) PIOM_REQUIRES(lock_);
  /// Send a kAck for `pkt_seq` on rail 0.
  void send_ack(uint64_t pkt_seq);
  /// Send a kNack refusing the rendezvous (tag, seq) on rail 0.
  void send_nack(Tag tag, uint64_t seq);
  /// Complete + release an acknowledged, landed packet. Call WITHOUT lock_
  /// (completion wakes waiters that may re-enter the gate).
  void finalize_reliable_pw(PacketWrapper* pw) PIOM_EXCLUDES(lock_);

  // Rendezvous pull: post the RDMA-Read chunks for a matched RTS.
  void start_pull(RecvRequest& req, const RdvStub& rts);
  void finish_pull(RdvPull& pull);

  /// Shared tail of irecv/post_wild: try the staged unexpected arrivals
  /// under the matcher lock, else enqueue as posted. Returns true when the
  /// request needs no further registrations (matched, or claimed
  /// elsewhere). Call with matcher_ UNlocked.
  bool match_or_post(RecvRequest& req);

  /// Deliver a claimed unexpected entry (eager copy or rendezvous pull)
  /// and recycle it. Call WITHOUT any lock.
  void deliver_unexpected(RecvRequest& req, UnexEntry* entry);

  /// Serialize + post one forward fragment (shared by isend_forward and
  /// forward_raw). `req` is attached to the packet when non-null.
  void post_forward_frag(int src, int dst, Tag tag, uint64_t fseq,
                         uint32_t frag, uint16_t nfrags, const void* data,
                         std::size_t len, SendRequest* req);

  // Pending-send packing (strategy layer). Must be called WITHOUT lock_.
  void submit_pending() PIOM_EXCLUDES(lock_);
  void post_pw(PacketWrapper* pw, int rail_index);

  /// Deliver `payload` into a matched receive and complete it.
  void deliver_eager(RecvRequest& req, const uint8_t* payload,
                     std::size_t len, uint64_t seq, Tag tag);

  Session& session_;
  int peer_rank_ = -1;
  std::deque<RailState> rails_;  // deque: RailState holds a lock (immovable)
  /// Rail properties, cached for the strategy layer's hot paths (eager
  /// rail selection per packet, stripe weighting per rendezvous).
  std::vector<double> rail_latency_us_;
  std::vector<double> rail_bandwidths_;
  PwPool pw_pool_;

  /// Tag matching (posted receives, unexpected arrivals, revoked windows)
  /// lives behind its own lock inside the matcher, so the posted-receive
  /// fast path no longer contends with senders on lock_.
  TagMatcher matcher_;

  mutable sync::SpinLock lock_;  // pending sends + reliability + rdv state
  /// Intrusive FIFO of deferred sends.
  SendRequest* pending_head_ PIOM_GUARDED_BY(lock_) = nullptr;
  SendRequest* pending_tail_ PIOM_GUARDED_BY(lock_) = nullptr;
  std::size_t pending_count_ PIOM_GUARDED_BY(lock_) = 0;
  std::deque<SendRequest*> rdv_waiting_fin_ PIOM_GUARDED_BY(lock_);
  std::atomic<uint64_t> next_seq_{1};

  // Reliability layer state (guarded by lock_).
  uint64_t next_pkt_seq_ PIOM_GUARDED_BY(lock_) = 1;
  std::deque<PacketWrapper*> unacked_ PIOM_GUARDED_BY(lock_);
  /// All pkt_seq <= floor seen.
  uint64_t dedup_floor_ PIOM_GUARDED_BY(lock_) = 0;
  /// Seen above the floor.
  std::unordered_set<uint64_t> dedup_sparse_ PIOM_GUARDED_BY(lock_);

  // Failure detection state. Lock-free: last_heard_ns_ is stamped on the
  // poll path (must not contend with lock_), peer_dead_ gates the fast
  // paths with a single acquire load.
  std::atomic<int64_t> last_heard_ns_{0};
  std::atomic<bool> peer_dead_{false};

  /// Send-side + reliability counters.
  GateStats stats_ PIOM_GUARDED_BY(lock_);

  /// Receive-path counters. The matcher refactor moved these paths off
  /// lock_, so they are atomics (relaxed: monotonic counters, snapshot
  /// consistency is not promised by stats()).
  struct RecvStats {
    std::atomic<uint64_t> eager_recv{0};
    std::atomic<uint64_t> rdv_recv{0};
    std::atomic<uint64_t> unexpected_eager{0};
    std::atomic<uint64_t> unexpected_rts{0};
    std::atomic<uint64_t> rts_nacked{0};
  };
  RecvStats recv_stats_;

  /// Lazy receive-pool telemetry (updated on the poll path).
  std::atomic<uint64_t> recv_bufs_hw_{0};
  std::atomic<uint64_t> recv_pool_growths_{0};
};

}  // namespace piom::nmad
