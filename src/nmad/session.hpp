// Session: one communication-library instance ("one node's NewMadeleine").
// Owns the gates towards peers, the strategy layer and the configuration.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nmad/gate.hpp"
#include "nmad/matcher.hpp"
#include "nmad/strategy.hpp"
#include "nmad/types.hpp"
#include "sync/spinlock.hpp"

namespace piom::nmad {

struct SessionConfig {
  /// Messages above this size use the rendezvous protocol.
  std::size_t eager_threshold = kDefaultEagerThreshold;
  /// Ceiling of posted receive buffers per rail (eager/control traffic).
  int pool_bufs_per_rail = 32;
  /// Receive buffers posted per rail at gate creation (clamped to
  /// pool_bufs_per_rail). The pool grows lazily towards the ceiling when a
  /// poll drains every posted buffer in one sweep — so an N-rank world pays
  /// O(N) idle-gate memory instead of O(N) x pool_bufs_per_rail x 64KiB,
  /// and only the hot pairs warm up. Safe because both transports stage
  /// arrivals (driver-side copy) when no buffer is posted.
  int pool_bufs_initial = 4;
  /// Tag-matching layout. Unset defers to $PIOM_MATCHER={bucket,scan} at
  /// session construction, default bucket; an explicit value always wins
  /// (bench ablations pin one regardless of environment).
  std::optional<MatcherKind> matcher{};
  /// Bucket count for MatcherKind::kBucket (rounded up to a power of two).
  int matcher_buckets = 64;
  /// Reliability layer for lossy fabrics (LinkModel::drop_rate > 0): every
  /// data/control packet is acknowledged and retransmitted after `rto_us`;
  /// duplicates are filtered by packet sequence number. Send completions
  /// then mean "acknowledged" rather than "on the wire".
  bool reliable = false;
  double rto_us = 200.0;
  StrategyConfig strategy;
};

class Session {
 public:
  explicit Session(std::string name, SessionConfig config = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Create a gate towards a peer over `rails` (this side's transport
  /// channels, already connected to the peer's; backends may be mixed).
  /// `peer_rank` names the peer in the cluster (reported by any-source
  /// receives; -1 when unused). Returned reference is stable. Thread-safe:
  /// with lazy wiring, gates are created from whichever thread first talks
  /// to a peer — including poll paths relaying forwarded traffic.
  Gate& create_gate(std::vector<transport::IChannel*> rails,
                    int peer_rank = -1);

  /// Flush pending sends and poll every rail of every gate.
  /// Returns events handled. Iterates a snapshot of the gate table, so
  /// gates created concurrently (or by handlers run from this very call)
  /// join the next iteration.
  int progress();

  /// Handler for kForward arrivals on any of this session's gates (the
  /// membership layer's relay/deliver entry point). Install once, before
  /// any forwarded traffic can arrive; frames on sessions without a
  /// handler are dropped with a warning.
  using ForwardHandler = std::function<void(const ForwardFrame&)>;
  void set_forward_handler(ForwardHandler h) { forward_ = std::move(h); }
  [[nodiscard]] const ForwardHandler& forward_handler() const {
    return forward_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }
  [[nodiscard]] Strategy& strategy() { return strategy_; }
  [[nodiscard]] std::size_t gate_count() const {
    gates_lock_.lock();
    const std::size_t n = gates_.size();
    gates_lock_.unlock();
    return n;
  }
  [[nodiscard]] Gate& gate(std::size_t i) {
    gates_lock_.lock();
    Gate& g = *gates_[i];  // the Gate object itself is stable, not guarded
    gates_lock_.unlock();
    return g;
  }

 private:
  std::string name_;
  SessionConfig config_;
  Strategy strategy_;
  /// Guards the table only — Gate objects are stable once created (their
  /// pointers may be used without the lock).
  mutable sync::SpinLock gates_lock_;
  std::vector<std::unique_ptr<Gate>> gates_ PIOM_GUARDED_BY(gates_lock_);
  /// Installed once before any forwarded traffic can arrive (see
  /// set_forward_handler); read-only afterwards, so intentionally unguarded.
  ForwardHandler forward_;
};

}  // namespace piom::nmad
