// Session: one communication-library instance ("one node's NewMadeleine").
// Owns the gates towards peers, the strategy layer and the configuration.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nmad/gate.hpp"
#include "nmad/matcher.hpp"
#include "nmad/strategy.hpp"
#include "nmad/types.hpp"

namespace piom::nmad {

struct SessionConfig {
  /// Messages above this size use the rendezvous protocol.
  std::size_t eager_threshold = kDefaultEagerThreshold;
  /// Ceiling of posted receive buffers per rail (eager/control traffic).
  int pool_bufs_per_rail = 32;
  /// Receive buffers posted per rail at gate creation (clamped to
  /// pool_bufs_per_rail). The pool grows lazily towards the ceiling when a
  /// poll drains every posted buffer in one sweep — so an N-rank world pays
  /// O(N) idle-gate memory instead of O(N) x pool_bufs_per_rail x 64KiB,
  /// and only the hot pairs warm up. Safe because both transports stage
  /// arrivals (driver-side copy) when no buffer is posted.
  int pool_bufs_initial = 4;
  /// Tag-matching layout. Unset defers to $PIOM_MATCHER={bucket,scan} at
  /// session construction, default bucket; an explicit value always wins
  /// (bench ablations pin one regardless of environment).
  std::optional<MatcherKind> matcher{};
  /// Bucket count for MatcherKind::kBucket (rounded up to a power of two).
  int matcher_buckets = 64;
  /// Reliability layer for lossy fabrics (LinkModel::drop_rate > 0): every
  /// data/control packet is acknowledged and retransmitted after `rto_us`;
  /// duplicates are filtered by packet sequence number. Send completions
  /// then mean "acknowledged" rather than "on the wire".
  bool reliable = false;
  double rto_us = 200.0;
  StrategyConfig strategy;
};

class Session {
 public:
  explicit Session(std::string name, SessionConfig config = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Create a gate towards a peer over `rails` (this side's transport
  /// channels, already connected to the peer's; backends may be mixed).
  /// `peer_rank` names the peer in the cluster (reported by any-source
  /// receives; -1 when unused). Returned reference is stable.
  Gate& create_gate(std::vector<transport::IChannel*> rails,
                    int peer_rank = -1);

  /// Flush pending sends and poll every rail of every gate.
  /// Returns events handled.
  int progress();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }
  [[nodiscard]] Strategy& strategy() { return strategy_; }
  [[nodiscard]] std::size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] Gate& gate(std::size_t i) { return *gates_[i]; }

 private:
  std::string name_;
  SessionConfig config_;
  Strategy strategy_;
  std::vector<std::unique_ptr<Gate>> gates_;
};

}  // namespace piom::nmad
