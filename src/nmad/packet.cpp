#include "nmad/packet.hpp"

#include <cassert>
#include <cstring>

namespace piom::nmad {

void PacketWrapper::append(const void* data, std::size_t len) {
  // resize+memcpy rather than insert(first, last): GCC 12's -Warray-bounds/
  // -Wstringop-overflow false-fire on the insert path once surrounding code
  // inlines differently. Zero-length appends may carry data == nullptr
  // (header-only packets), which memcpy must never see.
  if (len == 0) return;
  const std::size_t old_size = wire.size();
  wire.resize(old_size + len);
  std::memcpy(wire.data() + old_size, data, len);
}

void PacketWrapper::begin(const PktHeader& hdr) {
  wire.clear();
  append(&hdr, sizeof(hdr));
}

PktHeader& PacketWrapper::header() {
  assert(wire.size() >= sizeof(PktHeader));
  return *reinterpret_cast<PktHeader*>(wire.data());
}

PwPool::~PwPool() {
  while (head_ != nullptr) {
    PacketWrapper* next = head_->free_next;
    delete head_;
    head_ = next;
  }
}

PacketWrapper* PwPool::acquire() {
  {
    lock_.lock();
    PacketWrapper* pw = head_;
    if (pw != nullptr) {
      head_ = pw->free_next;
      lock_.unlock();
      hits_.fetch_add(1, std::memory_order_relaxed);
      pw->reset();
      return pw;
    }
    lock_.unlock();
  }
  allocated_.fetch_add(1, std::memory_order_relaxed);
  return new PacketWrapper();
}

void PwPool::release(PacketWrapper* pw) {
  pw->reset();
  lock_.lock();
  pw->free_next = head_;
  head_ = pw;
  lock_.unlock();
}

}  // namespace piom::nmad
