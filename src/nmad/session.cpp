#include "nmad/session.hpp"

#include <stdexcept>

#include "util/env.hpp"

namespace piom::nmad {

const char* pkt_kind_name(PktKind k) {
  switch (k) {
    case PktKind::kEager: return "eager";
    case PktKind::kPack: return "pack";
    case PktKind::kRts: return "rts";
    case PktKind::kFin: return "fin";
    case PktKind::kAck: return "ack";
    case PktKind::kPing: return "ping";
    case PktKind::kNack: return "nack";
    case PktKind::kForward: return "forward";
  }
  return "?";
}

Session::Session(std::string name, SessionConfig config)
    : name_(std::move(name)), config_(config), strategy_(config.strategy) {
  if (config_.eager_threshold + sizeof(PktHeader) > kPoolBufSize) {
    throw std::invalid_argument(
        "Session: eager_threshold must fit a pool buffer");
  }
  if (config_.strategy.max_pack_bytes + sizeof(PktHeader) > kPoolBufSize) {
    throw std::invalid_argument(
        "Session: max_pack_bytes must fit a pool buffer");
  }
  if (config_.pool_bufs_per_rail < 1) {
    throw std::invalid_argument("Session: need at least one pool buffer");
  }
  if (config_.pool_bufs_initial < 1) {
    throw std::invalid_argument("Session: need at least one initial buffer");
  }
  if (config_.matcher_buckets < 1) {
    throw std::invalid_argument("Session: need at least one matcher bucket");
  }
  // $PIOM_MATCHER selects the matching layout for sessions that did not
  // pin one (benches/tests pass an explicit SessionConfig to ablate).
  if (!config_.matcher.has_value()) {
    const std::string m = util::env::str("PIOM_MATCHER", "bucket");
    if (m == "scan") {
      config_.matcher = MatcherKind::kScan;
    } else if (m == "bucket") {
      config_.matcher = MatcherKind::kBucket;
    } else {
      throw std::invalid_argument("Session: $PIOM_MATCHER must be scan|bucket");
    }
  }
}

Session::~Session() = default;

Gate& Session::create_gate(std::vector<transport::IChannel*> rails,
                           int peer_rank) {
  if (rails.empty()) {
    throw std::invalid_argument("Session::create_gate: no rails");
  }
  for (transport::IChannel* ch : rails) {
    if (ch == nullptr || !ch->connected()) {
      throw std::invalid_argument(
          "Session::create_gate: rail channel missing or unconnected");
    }
  }
  auto gate = std::make_unique<Gate>(*this, std::move(rails), peer_rank);
  Gate& ref = *gate;
  gates_lock_.lock();
  gates_.push_back(std::move(gate));
  gates_lock_.unlock();
  return ref;
}

int Session::progress() {
  // Snapshot the table into thread-local scratch (allocation-free in
  // steady state) and iterate outside the lock: a gate's progress can
  // create new gates — forwarded traffic for an unwired peer triggers the
  // lazy connector — which must not deadlock against this very loop.
  thread_local std::vector<Gate*> scratch;
  scratch.clear();
  gates_lock_.lock();
  scratch.reserve(gates_.size());
  for (auto& g : gates_) scratch.push_back(g.get());
  gates_lock_.unlock();
  int events = 0;
  for (Gate* g : scratch) events += g->progress();
  return events;
}

}  // namespace piom::nmad
