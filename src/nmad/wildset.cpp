#include "nmad/wildset.hpp"

#include <algorithm>

#include "nmad/gate.hpp"

namespace piom::nmad {

void WildSet::add_gate(Gate* g) {
  std::vector<RecvRequest*> parked;
  lock_.lock();
  gates_.push_back(g);
  parked.assign(pending_.begin(), pending_.end());
  lock_.unlock();
  // Register outside the lock: a registration can match staged data and
  // complete the request, which re-enters purge(). A request claimed in
  // the meantime is rejected by the claim re-check under g's matcher lock
  // (the same serialization that protects sibling-gate registrations).
  for (RecvRequest* r : parked) (void)g->post_wild(*r);
}

void WildSet::set_port(WildPort* port) {
  lock_.lock();
  port_ = port;
  lock_.unlock();
}

void WildSet::post(RecvRequest& req, Tag tag, void* buf, std::size_t cap) {
  req.gate = nullptr;
  req.tag = tag;
  req.buf = buf;
  req.cap = cap;
  req.received = 0;
  req.matched_seq = 0;
  req.source = -1;
  req.wild_claim.store(0, std::memory_order_relaxed);
  req.wild_set = this;
  req.port = nullptr;
  req.core.reset();
  std::vector<Gate*> members;
  lock_.lock();
  pending_.push_back(&req);
  members.assign(gates_.begin(), gates_.end());
  WildPort* port = port_;
  lock_.unlock();
  for (Gate* g : members) {
    if (g != nullptr && g->post_wild(req)) return;
  }
  if (port != nullptr) (void)port->post_wild(req);
}

void WildSet::purge(RecvRequest& req, const void* claimer) {
  std::vector<Gate*> members;
  lock_.lock();
  pending_.erase(std::remove(pending_.begin(), pending_.end(), &req),
                 pending_.end());
  members.assign(gates_.begin(), gates_.end());
  WildPort* port = port_;
  lock_.unlock();
  // A gate added after this snapshot cannot re-register the request: its
  // add_gate snapshot no longer contains it (erased above, serialized by
  // lock_), and a registration racing the erase is rejected by the claim
  // re-check under that gate's matcher lock.
  for (Gate* g : members) {
    if (g != nullptr && static_cast<const void*>(g) != claimer) {
      g->remove_expected(req);
    }
  }
  if (port != nullptr && static_cast<const void*>(port) != claimer) {
    port->remove_expected(req);
  }
}

bool WildSet::cancel(RecvRequest& req) {
  std::vector<Gate*> members;
  lock_.lock();
  members.assign(gates_.begin(), gates_.end());
  WildPort* port = port_;
  lock_.unlock();
  for (Gate* g : members) {
    if (g != nullptr && g->cancel_recv(req)) return true;
  }
  if (port != nullptr && port->cancel_recv(req)) return true;
  return false;
}

std::size_t WildSet::gate_count() const {
  lock_.lock();
  const std::size_t n = gates_.size();
  lock_.unlock();
  return n;
}

}  // namespace piom::nmad
