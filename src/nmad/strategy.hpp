// Scheduling strategies applied to outgoing communication flows
// (NewMadeleine's optimisation layer, paper Fig 1 and §IV-B):
//   * aggregation   — pack several pending small messages to the same gate
//                     into one wire packet;
//   * multirail     — distribute bulk (rendezvous) data across every rail,
//                     proportionally to each rail's bandwidth;
//   * rail selection for eager traffic (round-robin when multirail).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace piom::nmad {

struct StrategyConfig {
  /// Pack pending eager messages into kPack wire packets. Unset (the
  /// default) defers to $PIOM_AGGREGATION at Strategy construction (off
  /// when the variable is absent); an explicit value always wins, so tests
  /// pinning either behaviour survive a forced-aggregation environment.
  std::optional<bool> aggregation{};
  /// Aggregate at most this much payload+headers per wire packet.
  std::size_t max_pack_bytes = 48 * 1024;
  /// Aggregate at most this many messages per wire packet.
  int max_pack_msgs = 32;
  /// Stripe rendezvous data across all rails (else rail 0 only).
  bool multirail_stripe = true;
  /// Do not split chunks below this size (per-packet overhead dominates).
  std::size_t stripe_min_chunk = 64 * 1024;
  /// Spread eager packets round-robin across rails (else rail 0).
  bool eager_round_robin = false;
  /// Heterogeneous rails: send eager/control packets on the strictly
  /// lowest-latency rail (the shmem fast path of a hybrid gate) instead of
  /// round-robin / rail 0. Homogeneous rails fall back to the two knobs
  /// above.
  bool latency_aware_eager = true;
};

/// One striped slice of a rendezvous transfer.
struct StripeChunk {
  int rail = 0;
  std::size_t offset = 0;
  std::size_t len = 0;
};

class Strategy {
 public:
  explicit Strategy(StrategyConfig config);

  [[nodiscard]] const StrategyConfig& config() const { return config_; }

  /// Aggregation, resolved: the config's explicit value, else
  /// $PIOM_AGGREGATION, else off.
  [[nodiscard]] bool aggregation() const { return aggregation_; }

  /// Rail for the next eager/control packet (homogeneous rails: round
  /// robin when configured, rail 0 otherwise).
  [[nodiscard]] int select_eager_rail(int nrails);

  /// Latency-aware overload for heterogeneous rails: the rail with the
  /// strictly lowest one-way latency wins; ties fall back to the
  /// homogeneous policy above.
  [[nodiscard]] int select_eager_rail(const std::vector<double>& latencies_us);

  /// Split `len` bytes across rails weighted by `bandwidths` (GB/s per
  /// rail). Always returns at least one chunk; chunks are contiguous,
  /// cover [0, len) exactly, and respect stripe_min_chunk.
  [[nodiscard]] std::vector<StripeChunk> stripe(
      std::size_t len, const std::vector<double>& bandwidths) const;

  /// True when `pending_count` messages of combined size `bytes` may be
  /// packed into a single wire packet.
  [[nodiscard]] bool should_pack(int pending_count, std::size_t bytes) const;

 private:
  StrategyConfig config_;
  bool aggregation_ = false;
  std::atomic<uint32_t> rr_{0};
};

}  // namespace piom::nmad
