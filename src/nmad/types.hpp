// Wire-level types of the nmad communication library (NewMadeleine-like).
//
// All traffic between two gates travels as discrete packets over the
// simulated NICs:
//   kEager — small message: header + payload in one packet (track #0);
//   kPack  — several eager messages to the same gate aggregated into one
//            wire packet (the Fig-1 cross-flow optimisation);
//   kRts   — rendezvous request for a large message: carries the sender's
//            buffer address; the receiver pulls the data with RDMA-Read
//            (zero sender-CPU data path) and answers with
//   kFin   — rendezvous completion notification.
#pragma once

#include <cstddef>
#include <cstdint>

namespace piom::nmad {

using Tag = uint32_t;

/// Wildcard receive tag (MPI_ANY_TAG equivalent): matches any arriving
/// *application* message; ties are broken by sequence number (arrival
/// order). Not valid on the send side. Reserved-tag (internal) traffic is
/// never matched by the wildcard — see tag_is_reserved below.
inline constexpr Tag kAnyTag = 0xffffffffu;

/// First tag of the reserved (internal/collective) space. The upper layers
/// lay out collective epoch/kind/round tags above this base; application
/// traffic must stay below it. The matcher guards the boundary: a kAnyTag
/// receive (directed or any-source) only ever claims application-tag
/// arrivals, so a wildcard posted while a collective is in flight cannot
/// steal the collective's packets.
inline constexpr Tag kReservedTagBase = 0xf0000000u;

/// Sentinel tag of a membership death-notice flood frame (see
/// mpi/membership.hpp for the protocol). Sits at the very top of the
/// reserved space, just below kAnyTag; defined here because reserved-space
/// tag literals live in this file only (enforced by tools/lint).
inline constexpr Tag kDeathNoticeTag = 0xfffffffeu;

/// True when `t` is an internal (reserved-space) wire tag. Arrivals never
/// carry kAnyTag, so the sentinel needs no special-casing here.
[[nodiscard]] inline constexpr bool tag_is_reserved(Tag t) {
  return t >= kReservedTagBase;
}

enum class PktKind : uint8_t {
  kEager = 1,
  kPack = 2,
  kRts = 3,
  kFin = 4,
  /// Reliability layer: acknowledges one wire packet by pkt_seq. Acks are
  /// themselves unacknowledged (a lost ack is repaired by the sender's
  /// retransmission and the receiver's dedup).
  kAck = 5,
  /// Failure-detector heartbeat. Pings carry no payload and, like acks,
  /// live outside the reliability layer: they are neither acknowledged,
  /// retransmitted, nor dedup-tracked (pkt_seq stays 0) — a lost ping is
  /// repaired by the next period's ping. Their only effect on the receiver
  /// is refreshing the gate's liveness timestamp.
  kPing = 6,
  /// Rendezvous refusal: the receiver will never match this RTS (its tag
  /// falls in a revoked window — see Gate::revoke_tags). Carries the RTS's
  /// tag+seq; the sender error-completes the request parked for FIN instead
  /// of waiting forever. Unlike acks/pings, NACKs ride the reliability
  /// layer (sequenced, acknowledged, retransmitted): a lost NACK must not
  /// re-open the hang it exists to close.
  kNack = 7,
  /// Multi-hop forwarded message fragment (sparse overlays): a message for
  /// a rank this rank has no direct gate to, relayed hop by hop along the
  /// membership tree. Rides the reliability layer on every hop like kNack
  /// (sequenced, acknowledged, retransmitted) — the reliability guarantee
  /// composes per hop. Header packing: `raddr` carries src<<48 | dst<<32 |
  /// fragment index, `nmsgs` the fragment count, `seq` the origin's
  /// per-(src,dst) message number, `len` the fragment payload size.
  kForward = 8,
};

[[nodiscard]] const char* pkt_kind_name(PktKind k);

/// Fixed wire header, leading every packet.
struct PktHeader {
  uint8_t kind = 0;      ///< PktKind
  uint8_t pad = 0;
  uint16_t nmsgs = 0;    ///< kPack: number of aggregated messages
  Tag tag = 0;           ///< kEager/kRts/kFin: message tag
  uint64_t seq = 0;      ///< per-gate sequence number (matching order)
  uint64_t len = 0;      ///< payload length (kEager: body; kRts: data size)
  uint64_t raddr = 0;    ///< kRts: sender buffer address for RDMA-Read
  uint64_t pkt_seq = 0;  ///< per-gate wire-packet number (reliability layer)
};
static_assert(sizeof(PktHeader) == 40, "wire header layout");

/// Sub-header of one message inside a kPack packet, followed by `len`
/// payload bytes.
struct PackEntry {
  Tag tag = 0;
  uint32_t reserved = 0;
  uint64_t seq = 0;
  uint64_t len = 0;
};
static_assert(sizeof(PackEntry) == 24, "pack entry layout");

/// One decoded kForward fragment, handed from the delivering gate to the
/// session's forward handler (the membership layer). `data` points into the
/// gate's pool buffer and is only valid for the duration of the call — the
/// handler copies what it keeps (relays re-serialize, destinations stage
/// into the reassembly buffer).
struct ForwardFrame {
  int src = -1;              ///< originating rank
  int dst = -1;              ///< final destination (0xFFFF = flood)
  Tag tag = 0;               ///< end-to-end message tag
  uint64_t fseq = 0;         ///< origin's per-(src,dst) message number
  uint32_t frag = 0;         ///< fragment index, 0-based
  uint16_t nfrags = 1;       ///< total fragments of the message
  const uint8_t* data = nullptr;
  std::size_t len = 0;
  int via = -1;              ///< peer rank of the gate this hop arrived on
};

/// Flood-destination sentinel in kForward headers (membership control
/// traffic, e.g. death notices): deliver locally AND re-flood.
inline constexpr int kForwardFloodDst = 0xFFFF;

/// Forwarded messages are cut into fragments of at most this size so every
/// hop fits a pool buffer (kForwardChunk + header <= kPoolBufSize).
inline constexpr std::size_t kForwardChunk = 32 * 1024;

/// Receive pool buffer size per rail. Every control/eager/pack packet must
/// fit (enforced against the eager threshold and pack limits).
inline constexpr std::size_t kPoolBufSize = 64 * 1024;

/// Default protocol switch point: messages above go rendezvous.
inline constexpr std::size_t kDefaultEagerThreshold = 16 * 1024;

}  // namespace piom::nmad
