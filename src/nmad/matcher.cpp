#include "nmad/matcher.hpp"

#include <algorithm>

namespace piom::nmad {

namespace {
[[nodiscard]] std::size_t ceil_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TagMatcher::TagMatcher(MatcherKind kind, int nbuckets) : kind_(kind) {
  if (kind_ == MatcherKind::kBucket) {
    const std::size_t nb = ceil_pow2(static_cast<std::size_t>(
        std::max(1, nbuckets)));
    bucket_mask_ = nb - 1;
    posted_buckets_.resize(nb);
    unex_buckets_.resize(nb);
  }
}

TagMatcher::~TagMatcher() {
  auto free_posted_list = [](PostedList& l) {
    for (PostedNode* n = l.head; n != nullptr;) {
      PostedNode* next = n->next;
      delete n;
      n = next;
    }
    l.head = l.tail = nullptr;
  };
  free_posted_list(posted_all_);
  free_posted_list(posted_wild_);
  for (PostedList& l : posted_buckets_) free_posted_list(l);
  for (UnexEntry* e = unex_ord_.head; e != nullptr;) {
    UnexEntry* next = e->ord_next;
    delete e;
    e = next;
  }
  for (PostedNode* n = node_free_; n != nullptr;) {
    PostedNode* next = n->next;
    delete n;
    n = next;
  }
  for (UnexEntry* e = entry_free_; e != nullptr;) {
    UnexEntry* next = e->ord_next;
    delete e;
    e = next;
  }
}

// ------------------------------------------------------------ list plumbing

void TagMatcher::posted_push_back(PostedList& l, PostedNode* n) {
  n->prev = l.tail;
  n->next = nullptr;
  if (l.tail != nullptr) {
    l.tail->next = n;
  } else {
    l.head = n;
  }
  l.tail = n;
}

void TagMatcher::posted_unlink(PostedList& l, PostedNode* n) {
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    l.head = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    l.tail = n->prev;
  }
  n->prev = n->next = nullptr;
}

void TagMatcher::ord_push_back(UnexList& l, UnexEntry* e) {
  e->ord_prev = l.tail;
  e->ord_next = nullptr;
  if (l.tail != nullptr) {
    l.tail->ord_next = e;
  } else {
    l.head = e;
  }
  l.tail = e;
}

void TagMatcher::ord_unlink(UnexList& l, UnexEntry* e) {
  if (e->ord_prev != nullptr) {
    e->ord_prev->ord_next = e->ord_next;
  } else {
    l.head = e->ord_next;
  }
  if (e->ord_next != nullptr) {
    e->ord_next->ord_prev = e->ord_prev;
  } else {
    l.tail = e->ord_prev;
  }
  e->ord_prev = e->ord_next = nullptr;
}

void TagMatcher::bkt_push_back(UnexList& l, UnexEntry* e) {
  e->bkt_prev = l.tail;
  e->bkt_next = nullptr;
  if (l.tail != nullptr) {
    l.tail->bkt_next = e;
  } else {
    l.head = e;
  }
  l.tail = e;
}

void TagMatcher::bkt_unlink(UnexList& l, UnexEntry* e) {
  if (e->bkt_prev != nullptr) {
    e->bkt_prev->bkt_next = e->bkt_next;
  } else {
    l.head = e->bkt_next;
  }
  if (e->bkt_next != nullptr) {
    e->bkt_next->bkt_prev = e->bkt_prev;
  } else {
    l.tail = e->bkt_prev;
  }
  e->bkt_prev = e->bkt_next = nullptr;
}

TagMatcher::PostedNode* TagMatcher::alloc_node() {
  PostedNode* n = node_free_;
  if (n != nullptr) {
    node_free_ = n->next;
    n->next = nullptr;
    ++pool_hits_;
    return n;
  }
  ++pool_misses_;
  return new PostedNode();
}

void TagMatcher::free_node(PostedNode* n) {
  n->req = nullptr;
  n->prev = nullptr;
  n->next = node_free_;
  node_free_ = n;
}

UnexEntry* TagMatcher::alloc_entry() {
  UnexEntry* e = entry_free_;
  if (e != nullptr) {
    entry_free_ = e->ord_next;
    e->ord_next = nullptr;
    ++pool_hits_;
    return e;
  }
  ++pool_misses_;
  return new UnexEntry();
}

void TagMatcher::free_entry(UnexEntry* e) {
  e->data.clear();  // capacity kept: the payload buffer is the recycled part
  e->ord_prev = e->bkt_prev = e->bkt_next = nullptr;
  e->ord_next = entry_free_;
  entry_free_ = e;
}

void TagMatcher::unlink_unexpected(UnexEntry* e) {
  ord_unlink(unex_ord_, e);
  if (kind_ == MatcherKind::kBucket) {
    bkt_unlink(unex_buckets_[bucket_of(e->tag)], e);
  }
  --unex_depth_;
}

// --------------------------------------------------------- posted receives

TagMatcher::PostedList& TagMatcher::posted_home(const RecvRequest& req) {
  if (kind_ == MatcherKind::kScan) return posted_all_;
  if (req.tag == kAnyTag) return posted_wild_;
  return posted_buckets_[bucket_of(req.tag)];
}

void TagMatcher::insert_posted(RecvRequest& req) {
  PostedNode* n = alloc_node();
  n->req = &req;
  n->order = next_order_++;
  posted_push_back(posted_home(req), n);
  ++posted_depth_;
  posted_hw_ = std::max(posted_hw_, static_cast<uint64_t>(posted_depth_));
}

bool TagMatcher::remove_posted(RecvRequest& req) {
  PostedList& l = posted_home(req);
  for (PostedNode* n = l.head; n != nullptr; n = n->next) {
    if (n->req == &req) {
      posted_unlink(l, n);
      free_node(n);
      --posted_depth_;
      return true;
    }
  }
  return false;
}

TagMatcher::Cancel TagMatcher::cancel_posted(RecvRequest& req) {
  PostedList& l = posted_home(req);
  for (PostedNode* n = l.head; n != nullptr; n = n->next) {
    if (n->req != &req) continue;
    posted_unlink(l, n);
    free_node(n);
    --posted_depth_;
    return try_claim(req) ? Cancel::kClaimed : Cancel::kStale;
  }
  return Cancel::kAbsent;
}

RecvRequest* TagMatcher::scan_posted(PostedList& l, Tag arrival) {
  for (PostedNode* n = l.head; n != nullptr;) {
    PostedNode* next = n->next;
    if (recv_tag_matches(n->req->tag, arrival)) {
      RecvRequest* req = n->req;
      posted_unlink(l, n);
      free_node(n);
      --posted_depth_;
      if (try_claim(*req)) return req;
      // Sibling-claimed any-source entry: stale, keep scanning.
    }
    n = next;
  }
  return nullptr;
}

RecvRequest* TagMatcher::claim_for_arrival(Tag arrival) {
  if (kind_ == MatcherKind::kScan) return scan_posted(posted_all_, arrival);

  PostedList& bkt = posted_buckets_[bucket_of(arrival)];
  const bool wild_eligible = !tag_is_reserved(arrival);
  for (;;) {
    // Exact candidate: first chain node with this tag — chains are FIFO, so
    // the first hit is the earliest-posted receive for the tag.
    PostedNode* exact = bkt.head;
    while (exact != nullptr && exact->req->tag != arrival) {
      exact = exact->next;
    }
    PostedNode* wild = wild_eligible ? posted_wild_.head : nullptr;
    // Exact vs wildcard compete by post order (MPI: the receive posted
    // first matches first among eligible ones).
    PostedNode* pick = exact;
    PostedList* pick_list = &bkt;
    if (wild != nullptr && (pick == nullptr || wild->order < pick->order)) {
      pick = wild;
      pick_list = &posted_wild_;
    }
    if (pick == nullptr) return nullptr;
    RecvRequest* req = pick->req;
    const bool from_bucket = pick_list == &bkt;
    posted_unlink(*pick_list, pick);
    free_node(pick);
    --posted_depth_;
    if (try_claim(*req)) {
      if (from_bucket) ++bucket_hits_;
      return req;
    }
    // Stale entry dropped; rerun the candidate selection.
  }
}

void TagMatcher::drain_posted(std::vector<RecvRequest*>& claimed) {
  auto drain_list = [&](PostedList& l) {
    for (PostedNode* n = l.head; n != nullptr;) {
      PostedNode* next = n->next;
      if (try_claim(*n->req)) claimed.push_back(n->req);
      n->prev = nullptr;
      free_node(n);
      n = next;
    }
    l.head = l.tail = nullptr;
  };
  drain_list(posted_all_);
  drain_list(posted_wild_);
  for (PostedList& l : posted_buckets_) drain_list(l);
  posted_depth_ = 0;
}

// ------------------------------------------------------ unexpected arrivals

void TagMatcher::stage_eager(Tag tag, uint64_t seq, const uint8_t* payload,
                             std::size_t len) {
  UnexEntry* e = alloc_entry();
  e->tag = tag;
  e->seq = seq;
  e->rdv = false;
  e->len = len;
  e->raddr = 0;
  e->data.assign(payload, payload + len);
  ord_push_back(unex_ord_, e);
  if (kind_ == MatcherKind::kBucket) {
    bkt_push_back(unex_buckets_[bucket_of(tag)], e);
  }
  ++unex_depth_;
  unex_hw_ = std::max(unex_hw_, static_cast<uint64_t>(unex_depth_));
}

void TagMatcher::stage_rts(Tag tag, uint64_t seq, uint64_t len,
                           uint64_t raddr) {
  UnexEntry* e = alloc_entry();
  e->tag = tag;
  e->seq = seq;
  e->rdv = true;
  e->len = len;
  e->raddr = raddr;
  ord_push_back(unex_ord_, e);
  if (kind_ == MatcherKind::kBucket) {
    bkt_push_back(unex_buckets_[bucket_of(tag)], e);
  }
  ++unex_depth_;
  unex_hw_ = std::max(unex_hw_, static_cast<uint64_t>(unex_depth_));
}

UnexEntry* TagMatcher::claim_unexpected(RecvRequest& req, bool& lost) {
  lost = false;
  UnexEntry* best = nullptr;
  if (kind_ == MatcherKind::kBucket && req.tag != kAnyTag) {
    // Bucket chains hold every staged arrival whose tag hashes here; filter
    // the exact tag and take the minimum sequence number (multirail
    // delivery may stage out of send order, so the head is not enough).
    const UnexList& l = unex_buckets_[bucket_of(req.tag)];
    for (UnexEntry* e = l.head; e != nullptr; e = e->bkt_next) {
      if (e->tag == req.tag && (best == nullptr || e->seq < best->seq)) {
        best = e;
      }
    }
    if (best != nullptr) ++bucket_hits_;
  } else {
    // Wildcard (or scan layout): every non-reserved tag competes, lowest
    // sequence number first — global arrival order across tags.
    if (req.tag == kAnyTag) ++wildcard_scans_;
    for (UnexEntry* e = unex_ord_.head; e != nullptr; e = e->ord_next) {
      if (recv_tag_matches(req.tag, e->tag) &&
          (best == nullptr || e->seq < best->seq)) {
        best = e;
      }
    }
  }
  if (best == nullptr) return nullptr;
  if (!try_claim(req)) {
    lost = true;  // sibling gate owns the request; entry stays staged
    return nullptr;
  }
  unlink_unexpected(best);
  return best;
}

void TagMatcher::recycle(UnexEntry* entry) {
  lock_.lock();
  free_entry(entry);
  lock_.unlock();
}

void TagMatcher::clear_unexpected() {
  for (UnexEntry* e = unex_ord_.head; e != nullptr;) {
    UnexEntry* next = e->ord_next;
    free_entry(e);
    e = next;
  }
  unex_ord_.head = unex_ord_.tail = nullptr;
  for (UnexList& l : unex_buckets_) l.head = l.tail = nullptr;
  unex_depth_ = 0;
}

// ---------------------------------------------------- revoked tag windows

bool TagMatcher::tag_revoked(Tag tag) const {
  for (const auto& [mask, value] : revoked_) {
    if ((tag & mask) == value) return true;
  }
  return false;
}

void TagMatcher::revoke(Tag mask, Tag value,
                        std::vector<RdvStub>& nack_rts) {
  const auto window = std::make_pair(mask, value);
  if (std::find(revoked_.begin(), revoked_.end(), window) == revoked_.end()) {
    revoked_.push_back(window);
  }
  for (UnexEntry* e = unex_ord_.head; e != nullptr;) {
    UnexEntry* next = e->ord_next;
    if ((e->tag & mask) == value) {
      if (e->rdv) {
        nack_rts.push_back(RdvStub{e->tag, e->seq, e->len, e->raddr});
      }
      // Eager data in the window is dropped: its sends completed on ack/TX
      // and nothing may match it later.
      unlink_unexpected(e);
      free_entry(e);
    }
    e = next;
  }
}

// ------------------------------------------------------------------- stats

MatcherStats TagMatcher::stats_snapshot() const {
  MatcherStats s;
  lock_.lock();
  s.bucket_hits = bucket_hits_;
  s.wildcard_scans = wildcard_scans_;
  s.posted_depth_hw = posted_hw_;
  s.unexpected_depth_hw = unex_hw_;
  s.pool_hits = pool_hits_;
  s.pool_misses = pool_misses_;
  lock_.unlock();
  return s;
}

}  // namespace piom::nmad
