// TagMatcher: the gate's tag-matching engine, factored out of Gate so the
// matching data structures (and their lock) live apart from the send-side
// pending/reliability state. Two interchangeable layouts behind one API:
//
//   kScan   — the reference matcher: one posted FIFO and one arrival-order
//             unexpected list, linearly scanned. O(depth) per operation,
//             trivially correct; kept as the equivalence-test oracle and
//             the `matcher=scan` ablation of bench_msgrate.
//   kBucket — MPICH-style hashed tag buckets (chained on tag & mask) for
//             exact-tag traffic, plus a wildcard *sidecar* FIFO holding the
//             kAnyTag receives. Exact-tag post/match touches only one
//             bucket chain; a wildcard receive falls back to scanning the
//             arrival-order list (it must see every tag anyway).
//
// Ordering semantics preserved from the linear matcher:
//   * per (tag, gate) the lowest-sequence staged arrival matches first —
//     bucket chains are searched for the minimum seq, not the head, since
//     multirail delivery may stage out of send order;
//   * a posted exact-tag receive and a posted wildcard compete by post
//     order (every posted node carries a monotonic order stamp; the bucket
//     candidate and the sidecar head are compared before claiming);
//   * kAnyTag never matches reserved-space (collective/internal) tags.
//
// Locking: the matcher owns one spinlock. Callers hold it across compound
// sequences (peer-dead check + match + insert) via lock()/unlock(); the
// few self-contained entry points (recycle, stats_snapshot) lock
// internally and say so. Counters are plain fields owned by the lock.
#pragma once

#include <cstdint>
#include <vector>

#include "nmad/request.hpp"
#include "nmad/types.hpp"
#include "sync/spinlock.hpp"

namespace piom::nmad {

enum class MatcherKind : uint8_t {
  kScan = 0,    ///< linear reference matcher
  kBucket = 1,  ///< hashed tag buckets + wildcard sidecar
};

/// Tag-matching predicate shared by every lookup. kAnyTag is an
/// application-level wildcard: it never matches reserved-space
/// (collective/internal) traffic, so a wildcard receive posted while a
/// collective runs cannot claim its packets.
[[nodiscard]] inline bool recv_tag_matches(Tag req_tag, Tag arrival) {
  if (req_tag == arrival) return true;
  return req_tag == kAnyTag && !tag_is_reserved(arrival);
}

/// Take ownership of a matched receive. Any-source requests are registered
/// with several WildSet members and carry a claim flag; the first member to
/// CAS it wins and the losers drop their stale registrations. Single-gate
/// requests always succeed.
[[nodiscard]] inline bool try_claim(RecvRequest& req) {
  if (req.wild_set == nullptr) return true;
  uint32_t unclaimed = 0;
  return req.wild_claim.compare_exchange_strong(unclaimed, 1,
                                                std::memory_order_acq_rel);
}

/// One staged unexpected arrival: an eager payload (copied out of the
/// recycled pool buffer) or a rendezvous RTS. Entries are pooled; `data`
/// keeps its capacity across recycling, so steady-state unexpected traffic
/// allocates nothing.
struct UnexEntry {
  Tag tag = 0;
  uint64_t seq = 0;
  bool rdv = false;
  uint64_t len = 0;           ///< rdv: remote data size
  uint64_t raddr = 0;         ///< rdv: sender buffer address for RDMA-Read
  std::vector<uint8_t> data;  ///< eager payload
  // Arrival-order list (always maintained) + bucket chain (kBucket only).
  UnexEntry* ord_prev = nullptr;
  UnexEntry* ord_next = nullptr;
  UnexEntry* bkt_prev = nullptr;
  UnexEntry* bkt_next = nullptr;
};

/// The rendezvous coordinates of a staged RTS, detached from its entry
/// (start_pull input, revoke-sweep NACK list).
struct RdvStub {
  Tag tag = 0;
  uint64_t seq = 0;
  uint64_t len = 0;
  uint64_t raddr = 0;
};

/// Counter snapshot (Gate::stats() merges this into GateStats).
struct MatcherStats {
  uint64_t bucket_hits = 0;      ///< lookups resolved through a tag bucket
  uint64_t wildcard_scans = 0;   ///< full-list scans on behalf of kAnyTag
  uint64_t posted_depth_hw = 0;  ///< posted-receive high-water mark
  uint64_t unexpected_depth_hw = 0;
  uint64_t pool_hits = 0;        ///< node/entry reuses from the freelists
  uint64_t pool_misses = 0;      ///< allocations (freelist empty)
};

class TagMatcher {
 public:
  /// `nbuckets` is rounded up to a power of two (kBucket layout only).
  TagMatcher(MatcherKind kind, int nbuckets);
  ~TagMatcher();
  TagMatcher(const TagMatcher&) = delete;
  TagMatcher& operator=(const TagMatcher&) = delete;

  void lock() const PIOM_ACQUIRE(lock_) { lock_.lock(); }
  void unlock() const PIOM_RELEASE(lock_) { lock_.unlock(); }

  // ---- posted (expected) receives — all require the lock ----

  /// Append `req` to the posted structure (bucket / sidecar / scan list).
  void insert_posted(RecvRequest& req) PIOM_REQUIRES(lock_);

  /// Drop a registration (wildcard purge). False when not queued here.
  bool remove_posted(RecvRequest& req) PIOM_REQUIRES(lock_);

  /// Cancel outcome for cancel_posted().
  enum class Cancel { kAbsent, kStale, kClaimed };
  /// Withdraw `req`: kClaimed when this caller now owns it (entry removed),
  /// kStale when a sibling gate claimed it first (stale entry removed),
  /// kAbsent when it was not queued here.
  Cancel cancel_posted(RecvRequest& req) PIOM_REQUIRES(lock_);

  /// Match one arrival against the posted receives: the eligible request
  /// with the lowest post-order stamp wins (exact-tag bucket candidate vs
  /// wildcard-sidecar head). Claims the winner; stale (sibling-claimed)
  /// entries encountered on the way are dropped. Null when nothing matches.
  RecvRequest* claim_for_arrival(Tag arrival) PIOM_REQUIRES(lock_);

  /// Claim every still-unclaimed posted receive into `claimed` and empty
  /// the structure (fail_peer: all of them error-complete).
  void drain_posted(std::vector<RecvRequest*>& claimed) PIOM_REQUIRES(lock_);

  // ---- unexpected arrivals — all require the lock unless noted ----

  /// Stage an eager payload / an RTS that found no posted receive.
  void stage_eager(Tag tag, uint64_t seq, const uint8_t* payload,
                   std::size_t len) PIOM_REQUIRES(lock_);
  void stage_rts(Tag tag, uint64_t seq, uint64_t len, uint64_t raddr)
      PIOM_REQUIRES(lock_);

  /// Match `req` against the staged arrivals: lowest sequence number among
  /// eligible entries (eager and RTS compete by seq). On a match the entry
  /// is unlinked and returned — the caller delivers outside the lock, then
  /// recycle()s it. `lost` is set when the match existed but a sibling gate
  /// already claimed the (any-source) request; nothing is unlinked then.
  UnexEntry* claim_unexpected(RecvRequest& req, bool& lost)
      PIOM_REQUIRES(lock_);

  /// Return a claimed entry to the pool. Takes the lock itself.
  void recycle(UnexEntry* entry) PIOM_EXCLUDES(lock_);

  /// Drop every staged arrival (fail_peer: nothing may match a dead peer).
  void clear_unexpected() PIOM_REQUIRES(lock_);

  // ---- revoked tag windows — require the lock ----

  /// True when `tag` falls in a revoked window.
  [[nodiscard]] bool tag_revoked(Tag tag) const PIOM_REQUIRES(lock_);

  /// Add the window (idempotent) and sweep the staged arrivals: RTS
  /// entries in the window are collected into `nack_rts` (the caller NACKs
  /// them outside the lock), eager entries are dropped.
  void revoke(Tag mask, Tag value, std::vector<RdvStub>& nack_rts)
      PIOM_REQUIRES(lock_);

  // ---- introspection ----

  [[nodiscard]] MatcherKind kind() const { return kind_; }
  /// Counter snapshot. Takes the lock itself.
  [[nodiscard]] MatcherStats stats_snapshot() const PIOM_EXCLUDES(lock_);

 private:
  struct PostedNode {
    RecvRequest* req = nullptr;
    uint64_t order = 0;  ///< monotonic post stamp (exact vs wildcard FIFO)
    PostedNode* prev = nullptr;
    PostedNode* next = nullptr;
  };
  struct PostedList {
    PostedNode* head = nullptr;
    PostedNode* tail = nullptr;
  };
  struct UnexList {
    UnexEntry* head = nullptr;
    UnexEntry* tail = nullptr;
  };

  [[nodiscard]] std::size_t bucket_of(Tag tag) const {
    return static_cast<std::size_t>(tag) & bucket_mask_;
  }
  /// The posted list `req` lives in under the current layout.
  [[nodiscard]] PostedList& posted_home(const RecvRequest& req)
      PIOM_REQUIRES(lock_);

  static void posted_push_back(PostedList& l, PostedNode* n);
  static void posted_unlink(PostedList& l, PostedNode* n);
  static void ord_push_back(UnexList& l, UnexEntry* e);
  static void ord_unlink(UnexList& l, UnexEntry* e);
  static void bkt_push_back(UnexList& l, UnexEntry* e);
  static void bkt_unlink(UnexList& l, UnexEntry* e);

  PostedNode* alloc_node() PIOM_REQUIRES(lock_);
  void free_node(PostedNode* n) PIOM_REQUIRES(lock_);
  UnexEntry* alloc_entry() PIOM_REQUIRES(lock_);
  void free_entry(UnexEntry* e) PIOM_REQUIRES(lock_);  ///< capacity kept

  /// Unlink a matched/swept entry from every list it is on.
  void unlink_unexpected(UnexEntry* e) PIOM_REQUIRES(lock_);

  /// Claim-or-drop loop over one posted list in scan order (kScan layout
  /// and drain); returns the first claimed eligible request.
  RecvRequest* scan_posted(PostedList& l, Tag arrival) PIOM_REQUIRES(lock_);

  const MatcherKind kind_;
  std::size_t bucket_mask_ = 0;

  mutable sync::SpinLock lock_;
  // Posted receives. kScan: posted_all_ only. kBucket: buckets + sidecar.
  PostedList posted_all_ PIOM_GUARDED_BY(lock_);
  std::vector<PostedList> posted_buckets_ PIOM_GUARDED_BY(lock_);
  PostedList posted_wild_ PIOM_GUARDED_BY(lock_);  ///< the kAnyTag sidecar
  uint64_t next_order_ PIOM_GUARDED_BY(lock_) = 1;
  std::size_t posted_depth_ PIOM_GUARDED_BY(lock_) = 0;

  // Unexpected arrivals: arrival-order list (always) + buckets (kBucket).
  UnexList unex_ord_ PIOM_GUARDED_BY(lock_);
  std::vector<UnexList> unex_buckets_ PIOM_GUARDED_BY(lock_);
  std::size_t unex_depth_ PIOM_GUARDED_BY(lock_) = 0;

  /// Revoked tag windows, (mask, value) pairs. Grows by one entry per
  /// dying collective epoch; never shrinks (tiny, and a failed
  /// communicator is terminal under ULFM semantics anyway).
  std::vector<std::pair<Tag, Tag>> revoked_ PIOM_GUARDED_BY(lock_);

  // Freelists (nodes and entries are recycled, never returned to malloc
  // before destruction).
  PostedNode* node_free_ PIOM_GUARDED_BY(lock_) = nullptr;
  UnexEntry* entry_free_ PIOM_GUARDED_BY(lock_) = nullptr;

  // Counters (owned by lock_).
  uint64_t bucket_hits_ PIOM_GUARDED_BY(lock_) = 0;
  uint64_t wildcard_scans_ PIOM_GUARDED_BY(lock_) = 0;
  uint64_t posted_hw_ PIOM_GUARDED_BY(lock_) = 0;
  uint64_t unex_hw_ PIOM_GUARDED_BY(lock_) = 0;
  uint64_t pool_hits_ PIOM_GUARDED_BY(lock_) = 0;
  uint64_t pool_misses_ PIOM_GUARDED_BY(lock_) = 0;
};

}  // namespace piom::nmad
