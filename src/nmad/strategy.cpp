#include "nmad/strategy.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/env.hpp"

namespace piom::nmad {

Strategy::Strategy(StrategyConfig config)
    : config_(config),
      aggregation_(config.aggregation.value_or(
          util::env::boolean("PIOM_AGGREGATION", false))) {}

int Strategy::select_eager_rail(int nrails) {
  if (nrails <= 1 || !config_.eager_round_robin) return 0;
  return static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                          static_cast<uint32_t>(nrails));
}

int Strategy::select_eager_rail(const std::vector<double>& latencies_us) {
  const int nrails = static_cast<int>(latencies_us.size());
  if (nrails <= 1) return 0;
  if (config_.latency_aware_eager) {
    int best = 0;
    bool unique = true;
    for (int r = 1; r < nrails; ++r) {
      const double lat = latencies_us[static_cast<std::size_t>(r)];
      const double best_lat = latencies_us[static_cast<std::size_t>(best)];
      if (lat < best_lat) {
        best = r;
        unique = true;
      } else if (lat == best_lat) {
        unique = false;
      }
    }
    // A strictly fastest rail (the shmem fast path of a hybrid gate) takes
    // all small traffic; tied rails are interchangeable -> spread instead.
    if (unique) return best;
  }
  return select_eager_rail(nrails);
}

std::vector<StripeChunk> Strategy::stripe(
    std::size_t len, const std::vector<double>& bandwidths) const {
  assert(!bandwidths.empty());
  std::vector<StripeChunk> chunks;
  const int nrails = static_cast<int>(bandwidths.size());
  if (!config_.multirail_stripe || nrails == 1 ||
      len < 2 * config_.stripe_min_chunk) {
    chunks.push_back(StripeChunk{0, 0, len});
    return chunks;
  }
  const double total_bw =
      std::accumulate(bandwidths.begin(), bandwidths.end(), 0.0);
  std::size_t offset = 0;
  for (int r = 0; r < nrails; ++r) {
    std::size_t share =
        (r == nrails - 1)
            ? len - offset  // last rail absorbs rounding
            : static_cast<std::size_t>(static_cast<double>(len) *
                                       bandwidths[static_cast<std::size_t>(r)] /
                                       total_bw);
    if (r < nrails - 1 && share < config_.stripe_min_chunk) {
      // Too small to be worth a packet on its own rail: skip this rail and
      // let later rails (or the tail) absorb it.
      continue;
    }
    if (share == 0) continue;
    chunks.push_back(StripeChunk{r, offset, share});
    offset += share;
  }
  if (offset < len) {
    // Rounding shortfall (possible when rails were skipped): extend the
    // last chunk.
    if (chunks.empty()) {
      chunks.push_back(StripeChunk{0, 0, len});
    } else {
      chunks.back().len += len - offset;
    }
  }
  return chunks;
}

bool Strategy::should_pack(int pending_count, std::size_t bytes) const {
  return aggregation_ && pending_count >= 2 &&
         pending_count <= config_.max_pack_msgs &&
         bytes <= config_.max_pack_bytes;
}

}  // namespace piom::nmad
