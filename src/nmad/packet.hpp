// PacketWrapper (pw): one wire packet under construction / in flight, plus
// a recycling pool. A pw may carry several application messages (kPack);
// the requests it covers are completed when the NIC reports the TX
// completion. Wrappers are recycled through a freelist, so steady-state
// traffic performs no memory allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/task.hpp"
#include "nmad/request.hpp"
#include "nmad/types.hpp"
#include "sync/spinlock.hpp"

namespace piom::nmad {

class Gate;

struct PacketWrapper {
  std::vector<uint8_t> wire;       ///< serialized header + body
  std::vector<SendRequest*> reqs;  ///< requests completed at TX completion
  Gate* gate = nullptr;
  int rail = 0;
  PacketWrapper* free_next = nullptr;

  // Reliability-layer state (guarded by the owning gate's lock):
  uint64_t pkt_seq = 0;      ///< wire-packet number carried in the header
  bool awaiting_ack = false; ///< completion deferred until the peer's kAck
  bool in_flight = false;    ///< posted to the NIC, TX completion pending
  bool acked = false;        ///< kAck received (finalize once !in_flight)
  int64_t last_post_ns = 0;  ///< retransmission timer

  /// Reset for reuse, keeping the buffers' capacity.
  void reset() {
    wire.clear();
    reqs.clear();
    gate = nullptr;
    rail = 0;
    free_next = nullptr;
    pkt_seq = 0;
    awaiting_ack = false;
    in_flight = false;
    acked = false;
    last_post_ns = 0;
  }

  /// Append raw bytes to the wire image.
  void append(const void* data, std::size_t len);

  /// Start a packet: serialize the header.
  void begin(const PktHeader& hdr);

  /// Patch the already-serialized header in place (pack finalisation).
  [[nodiscard]] PktHeader& header();
};

/// Freelist of PacketWrappers (spinlock-protected; creation falls back to
/// `new` only when the pool is empty, i.e. at warm-up or peak depth).
class PwPool {
 public:
  PwPool() = default;
  ~PwPool();
  PwPool(const PwPool&) = delete;
  PwPool& operator=(const PwPool&) = delete;

  [[nodiscard]] PacketWrapper* acquire();
  void release(PacketWrapper* pw);

  /// Wrappers ever constructed (allocation count; tests assert recycling).
  [[nodiscard]] uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  /// Freelist hits (acquire() calls served without allocating).
  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  sync::SpinLock lock_;
  PacketWrapper* head_ PIOM_GUARDED_BY(lock_) = nullptr;
  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace piom::nmad
