#include "nmad/gate.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "nmad/session.hpp"
#include "nmad/wildset.hpp"
#include "util/log.hpp"
#include "util/timing.hpp"

namespace piom::nmad {

Gate::Gate(Session& session, std::vector<transport::IChannel*> rails,
           int peer_rank)
    : session_(session),
      peer_rank_(peer_rank),
      matcher_(session.config().matcher.value_or(MatcherKind::kBucket),
               session.config().matcher_buckets) {
  // Warm-up is lazy: post a small initial buffer set per rail and let
  // poll_rail() grow it towards pool_bufs_per_rail under RX pressure, so
  // an N-rank world doesn't pay O(N^2) x 64KiB for mostly-idle pairs.
  // Safe because both transports stage arrivals (driver-side copy) when no
  // receive buffer is posted — exhaustion degrades, never drops.
  const int bufs = std::min(session_.config().pool_bufs_initial,
                            session_.config().pool_bufs_per_rail);
  for (std::size_t i = 0; i < rails.size(); ++i) {
    RailState& r = rails_.emplace_back();
    r.ch = rails[i];
    r.index = static_cast<int>(i);
    rail_latency_us_.push_back(r.ch->latency_us());
    rail_bandwidths_.push_back(r.ch->bandwidth_GBps());
    for (int b = 0; b < bufs; ++b) {
      r.pool.push_back(PoolBuf{this, r.index, std::vector<uint8_t>(kPoolBufSize)});
    }
    // deque references are stable under push_back (lazy growth included):
    // post every pool buffer now and recycle them forever after.
    for (PoolBuf& pb : r.pool) {
      r.ch->post_recv(pb.data.data(), pb.data.size(),
                      reinterpret_cast<uint64_t>(&pb));
    }
    r.posted_bufs = bufs;
  }
  recv_bufs_hw_.store(static_cast<uint64_t>(bufs), std::memory_order_relaxed);
  // Liveness anchor: a lazily-created gate has heard nothing yet, but the
  // peer is not thereby suspect — grant it one full silence window from
  // creation (the detector also anchors against its own start time).
  last_heard_ns_.store(util::now_ns(), std::memory_order_release);
}

Gate::~Gate() {
  // Teardown protocol: wait until the hardware is quiet on both ends of
  // every rail, then drain the completion queues so in-flight packet
  // wrappers are reclaimed. Requests still incomplete at this point are
  // abandoned (their owner is responsible for waiting before teardown) —
  // we deliberately do NOT touch them, they may already be destroyed.
  for (RailState& rail : rails_) {
    rail.ch->quiesce();
    if (rail.ch->peer() != nullptr) rail.ch->peer()->quiesce();
  }
  transport::Completion c;
  for (RailState& rail : rails_) {
    while (rail.ch->poll_tx(c)) {
      if (c.kind == transport::Completion::Kind::kSend) {
        auto* pw = reinterpret_cast<PacketWrapper*>(c.wrid);
        // Unacknowledged reliable packets are reclaimed from unacked_
        // below — don't double-release them here.
        if (!pw->awaiting_ack) pw_pool_.release(pw);
      }
    }
    while (rail.ch->poll_rx(c)) {
      // Discard: the arrival sits in our (still-alive) pool buffer.
    }
  }
  for (PacketWrapper* pw : unacked_) pw_pool_.release(pw);
  unacked_.clear();
}

// ---------------------------------------------------------------- send path

void Gate::isend(SendRequest& req, Tag tag, const void* buf, std::size_t len,
                 bool defer) {
  req.gate = this;
  req.tag = tag;
  req.buf = buf;
  req.len = len;
  req.next = nullptr;
  req.rdv = len > session_.config().eager_threshold;
  req.core.reset();
  req.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  lock_.lock();
  if (peer_dead_.load(std::memory_order_acquire)) {
    // Checked under lock_: fail_peer() flips the flag before sweeping the
    // pending FIFO, so a request enqueued after its sweep would hang.
    lock_.unlock();
    req.core.mark_failed();
    req.core.complete();
    return;
  }
  if (pending_tail_ != nullptr) {
    pending_tail_->next = &req;
    pending_tail_ = &req;
  } else {
    pending_head_ = pending_tail_ = &req;
  }
  ++pending_count_;
  lock_.unlock();
  if (!defer) submit_pending();
}

void Gate::flush() { submit_pending(); }

void Gate::submit_pending() {
  // The strategy layer: drain the pending FIFO, turning requests into wire
  // packets — one per eager message, one RTS per rendezvous, or one kPack
  // covering a run of small messages when aggregation is enabled.
  Strategy& strategy = session_.strategy();
  for (;;) {
    lock_.lock();
    SendRequest* first = pending_head_;
    if (first == nullptr) {
      lock_.unlock();
      return;
    }
    // Pop the head.
    pending_head_ = first->next;
    if (pending_head_ == nullptr) pending_tail_ = nullptr;
    --pending_count_;

    if (first->rdv) {
      rdv_waiting_fin_.push_back(first);
      stats_.rdv_sent++;
      lock_.unlock();
      PacketWrapper* pw = pw_pool_.acquire();
      PktHeader hdr;
      hdr.kind = static_cast<uint8_t>(PktKind::kRts);
      hdr.tag = first->tag;
      hdr.seq = first->seq;
      hdr.len = first->len;
      hdr.raddr = reinterpret_cast<uint64_t>(first->buf);
      pw->begin(hdr);
      // RTS is control traffic: rail 0 keeps the handshake ordered.
      post_pw(pw, 0);
      continue;
    }

    // Gather a batch of eager messages for aggregation by detaching an
    // intrusive sub-chain [first..last] of the pending FIFO — the requests
    // are already linked, so batching allocates nothing. Stop at the first
    // rendezvous request to keep the FIFO order of RTS vs eager simple.
    SendRequest* last = first;
    int nmsgs = 1;
    std::size_t body_bytes = sizeof(PackEntry) + first->len;
    if (strategy.aggregation()) {
      while (pending_head_ != nullptr && !pending_head_->rdv &&
             nmsgs < strategy.config().max_pack_msgs &&
             body_bytes + sizeof(PackEntry) + pending_head_->len <=
                 strategy.config().max_pack_bytes) {
        last = pending_head_;
        pending_head_ = last->next;
        if (pending_head_ == nullptr) pending_tail_ = nullptr;
        --pending_count_;
        body_bytes += sizeof(PackEntry) + last->len;
        ++nmsgs;
      }
    }
    // Terminate the chain: `last` may still point into the remaining FIFO.
    last->next = nullptr;
    if (nmsgs >= 2) {
      stats_.packs_sent++;
      stats_.msgs_packed += static_cast<uint64_t>(nmsgs);
      stats_.eager_sent += static_cast<uint64_t>(nmsgs);
    } else {
      stats_.eager_sent++;
    }
    lock_.unlock();

    // Serialize outside the lock, straight into a recycled wrapper (wire
    // image and request list keep their capacity across reuse): payload
    // buffers are caller-owned and stable until completion.
    PacketWrapper* pw = pw_pool_.acquire();
    if (nmsgs == 1) {
      PktHeader hdr;
      hdr.kind = static_cast<uint8_t>(PktKind::kEager);
      hdr.tag = first->tag;
      hdr.seq = first->seq;
      hdr.len = first->len;
      pw->begin(hdr);
      pw->append(first->buf, first->len);
      pw->reqs.push_back(first);
    } else {
      PktHeader hdr;
      hdr.kind = static_cast<uint8_t>(PktKind::kPack);
      hdr.nmsgs = static_cast<uint16_t>(nmsgs);
      hdr.seq = first->seq;
      pw->begin(hdr);
      for (SendRequest* req = first; req != nullptr; req = req->next) {
        PackEntry entry;
        entry.tag = req->tag;
        entry.seq = req->seq;
        entry.len = req->len;
        pw->append(&entry, sizeof(entry));
        pw->append(req->buf, req->len);
        pw->reqs.push_back(req);
      }
      pw->header().len = pw->wire.size() - sizeof(PktHeader);
    }
    post_pw(pw, strategy.select_eager_rail(rail_latency_us_));
  }
}

void Gate::post_pw(PacketWrapper* pw, int rail_index) {
  pw->gate = this;
  pw->rail = rail_index;
  const bool reliable = session_.config().reliable;
  const auto kind = static_cast<PktKind>(pw->header().kind);
  // Acks and pings live outside the reliability layer. They must not
  // consume a sequence number either: a consumed-but-never-tracked seq is
  // a permanent hole the receiver's dedup floor can never slide past,
  // which would pin every later seq in the sparse set.
  const bool sequenced = kind != PktKind::kAck && kind != PktKind::kPing;
  lock_.lock();
  if (sequenced) {
    pw->pkt_seq = next_pkt_seq_++;
  } else {
    pw->pkt_seq = 0;
  }
  pw->header().pkt_seq = pw->pkt_seq;
  // Once the peer is declared dead nothing acks anymore: leave the packet
  // untracked so its TX completion finishes the requests on the spot
  // ("sent", never "delivered" — same meaning as the lossy-drop model).
  const bool track = reliable && sequenced &&
                     !peer_dead_.load(std::memory_order_acquire);
  if (track) {
    // Register BEFORE posting: the ack may arrive arbitrarily fast.
    pw->awaiting_ack = true;
    pw->in_flight = true;
    pw->acked = false;
    pw->last_post_ns = util::now_ns();
    unacked_.push_back(pw);
  }
  lock_.unlock();
  rails_[static_cast<std::size_t>(rail_index)].ch->post_send(
      pw->wire.data(), pw->wire.size(), reinterpret_cast<uint64_t>(pw));
}

bool Gate::dedup_mark(uint64_t pkt_seq) {
  if (pkt_seq <= dedup_floor_) return false;
  if (!dedup_sparse_.insert(pkt_seq).second) return false;
  // Compact: slide the floor over contiguously-seen sequence numbers.
  while (dedup_sparse_.erase(dedup_floor_ + 1) != 0) ++dedup_floor_;
  return true;
}

void Gate::send_ack(uint64_t pkt_seq) {
  PacketWrapper* pw = pw_pool_.acquire();
  PktHeader hdr;
  hdr.kind = static_cast<uint8_t>(PktKind::kAck);
  hdr.seq = pkt_seq;  // the acknowledged wire packet
  pw->begin(hdr);
  post_pw(pw, 0);
  lock_.lock();
  stats_.acks_sent++;
  lock_.unlock();
}

void Gate::finalize_reliable_pw(PacketWrapper* pw) {
  for (SendRequest* req : pw->reqs) req->core.complete();
  pw_pool_.release(pw);
}

void Gate::handle_ack(const PktHeader& hdr) {
  PacketWrapper* to_finalize = nullptr;
  lock_.lock();
  for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
    if ((*it)->pkt_seq == hdr.seq) {
      PacketWrapper* pw = *it;
      pw->acked = true;
      if (!pw->in_flight) {
        unacked_.erase(it);
        to_finalize = pw;
      }
      break;
    }
  }
  lock_.unlock();
  if (to_finalize != nullptr) finalize_reliable_pw(to_finalize);
}

void Gate::check_retransmits() {
  if (!session_.config().reliable) return;
  // A dead peer never acks: without this cut-off the RTO loop would repost
  // the same packets forever (the lossy-link livelock). fail_peer()
  // error-completes the senders parked behind them instead.
  if (peer_dead_.load(std::memory_order_acquire)) return;
  const int64_t now = util::now_ns();
  const auto rto_ns = static_cast<int64_t>(session_.config().rto_us * 1e3);
  std::vector<PacketWrapper*> to_repost;
  lock_.lock();
  for (PacketWrapper* pw : unacked_) {
    if (!pw->in_flight && !pw->acked && now - pw->last_post_ns > rto_ns) {
      pw->in_flight = true;
      pw->last_post_ns = now;
      stats_.retransmits++;
      to_repost.push_back(pw);
    }
  }
  lock_.unlock();
  for (PacketWrapper* pw : to_repost) {
    rails_[static_cast<std::size_t>(pw->rail)].ch->post_send(
        pw->wire.data(), pw->wire.size(), reinterpret_cast<uint64_t>(pw));
  }
}

// ---------------------------------------------- failure detection / eviction

void Gate::send_ping() {
  if (peer_dead_.load(std::memory_order_acquire)) return;
  PacketWrapper* pw = pw_pool_.acquire();
  PktHeader hdr;
  hdr.kind = static_cast<uint8_t>(PktKind::kPing);
  pw->begin(hdr);
  post_pw(pw, 0);
  lock_.lock();
  stats_.pings_sent++;
  lock_.unlock();
}

void Gate::fail_peer() {
  if (peer_dead_.exchange(true, std::memory_order_acq_rel)) return;
  // 1) Quiesce the hardware on both ends of every rail. After this no
  //    engine touches a caller buffer again, so the owners of the requests
  //    error-completed below may free their buffers immediately — the same
  //    guarantee normal completion gives. (Shmem quiesce self-drives the
  //    consumer role, so it terminates even when the peer host is gone.)
  for (RailState& rail : rails_) {
    rail.ch->quiesce();
    if (rail.ch->peer() != nullptr) rail.ch->peer()->quiesce();
  }
  // 2) Collect everything parked on the peer under the lock; complete
  //    outside it (completion wakes waiters that may re-enter the gate).
  std::vector<SendRequest*> dead_sends;
  std::vector<RecvRequest*> dead_recvs;
  std::vector<PacketWrapper*> to_release;
  lock_.lock();
  for (SendRequest* s = pending_head_; s != nullptr;) {
    SendRequest* next = s->next;
    dead_sends.push_back(s);
    s = next;
  }
  pending_head_ = pending_tail_ = nullptr;
  pending_count_ = 0;
  for (SendRequest* s : rdv_waiting_fin_) dead_sends.push_back(s);
  rdv_waiting_fin_.clear();
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    PacketWrapper* pw = *it;
    for (SendRequest* s : pw->reqs) dead_sends.push_back(s);
    pw->reqs.clear();
    if (pw->in_flight) {
      // The rail still owes a TX completion (it is sitting in the CQ after
      // the quiesce above): flag the wrapper acked so the normal completion
      // path finalizes and recycles it — its requests are already ours.
      pw->acked = true;
      ++it;
    } else {
      it = unacked_.erase(it);
      to_release.push_back(pw);
    }
  }
  lock_.unlock();
  // Matching state drains under the matcher's own lock. The peer_dead_
  // flag flipped above, so an irecv that enters the matcher after this
  // drain fails fast, and one that entered before is swept here — the same
  // flag-then-sweep handshake the pending FIFO uses with lock_.
  matcher_.lock();
  matcher_.drain_posted(dead_recvs);  // claim-checked: stale entries drop
  // Staged unexpected arrivals are unreachable once the peer is evicted
  // (every later irecv on this gate fails fast, so nothing can ever match
  // them) — drop them now instead of pinning memory until destruction.
  matcher_.clear_unexpected();
  matcher_.unlock();
  for (PacketWrapper* pw : to_release) pw_pool_.release(pw);
  for (SendRequest* req : dead_sends) {
    req->core.mark_failed();
    req->core.complete();
  }
  for (RecvRequest* req : dead_recvs) {
    if (req->wild_set != nullptr) req->wild_set->purge(*req, this);
    req->source = peer_rank_;
    req->core.mark_failed();
    req->core.complete();
  }
}

bool Gate::cancel_recv(RecvRequest& req) {
  matcher_.lock();
  const TagMatcher::Cancel outcome = matcher_.cancel_posted(req);
  matcher_.unlock();
  // kAbsent: matched already (delivery may still be in flight — the caller
  // keeps polling completion) or registered on another gate. kStale: a
  // sibling gate won the wildcard.
  if (outcome != TagMatcher::Cancel::kClaimed) return false;
  if (req.wild_set != nullptr) req.wild_set->purge(req, this);
  req.source = peer_rank_;
  req.core.mark_failed();
  req.core.complete();
  return true;
}

void Gate::revoke_tags(Tag mask, Tag value) {
  // Dead gate: fail_peer already error-completed the peer's senders and
  // dropped the staged arrivals, and a NACK towards a quiesced rail would
  // go nowhere anyway.
  if (peer_dead_.load(std::memory_order_acquire)) return;
  std::vector<RdvStub> to_nack;
  matcher_.lock();
  matcher_.revoke(mask, value, to_nack);
  matcher_.unlock();
  recv_stats_.rts_nacked.fetch_add(to_nack.size(), std::memory_order_relaxed);
  for (const RdvStub& rts : to_nack) send_nack(rts.tag, rts.seq);
}

void Gate::send_nack(Tag tag, uint64_t seq) {
  PacketWrapper* pw = pw_pool_.acquire();
  PktHeader hdr;
  hdr.kind = static_cast<uint8_t>(PktKind::kNack);
  hdr.tag = tag;
  hdr.seq = seq;
  pw->begin(hdr);
  // Control traffic on rail 0, like RTS/FIN. post_pw runs it through the
  // reliability layer (sequenced + retransmitted), so on a lossy link the
  // refusal cannot itself be lost.
  post_pw(pw, 0);
}

// ------------------------------------------------- multi-hop forwarding

void Gate::post_forward_frag(int src, int dst, Tag tag, uint64_t fseq,
                             uint32_t frag, uint16_t nfrags, const void* data,
                             std::size_t len, SendRequest* req) {
  assert(len + sizeof(PktHeader) <= kPoolBufSize);
  PacketWrapper* pw = pw_pool_.acquire();
  PktHeader hdr;
  hdr.kind = static_cast<uint8_t>(PktKind::kForward);
  hdr.nmsgs = nfrags;
  hdr.tag = tag;
  hdr.seq = fseq;
  hdr.len = len;
  hdr.raddr = (static_cast<uint64_t>(static_cast<uint16_t>(src)) << 48) |
              (static_cast<uint64_t>(static_cast<uint16_t>(dst)) << 32) |
              frag;
  pw->begin(hdr);
  if (len > 0) pw->append(data, len);
  if (req != nullptr) pw->reqs.push_back(req);
  // Control-framed like RTS/NACK: rail 0 keeps per-hop FIFO order (the
  // deterministic route plus per-hop FIFO gives end-to-end fragment order),
  // and post_pw runs the packet through the reliability layer, so the
  // guarantee composes hop by hop.
  post_pw(pw, 0);
}

void Gate::isend_forward(SendRequest& req, int src, int dst, Tag tag,
                         uint64_t fseq, const void* buf, std::size_t len) {
  req.gate = this;
  req.tag = tag;
  req.buf = buf;
  req.len = len;
  req.next = nullptr;
  req.rdv = false;
  req.seq = fseq;
  req.core.reset();
  if (peer_dead_.load(std::memory_order_acquire)) {
    // The first hop is already gone; nothing can relay this message.
    req.core.mark_failed();
    req.core.complete();
    return;
  }
  const auto* bytes = static_cast<const uint8_t*>(buf);
  const auto nfrags = static_cast<uint16_t>(
      len == 0 ? 1 : (len + kForwardChunk - 1) / kForwardChunk);
  for (uint32_t f = 0; f < nfrags; ++f) {
    const std::size_t off = static_cast<std::size_t>(f) * kForwardChunk;
    const std::size_t flen = len == 0 ? 0 : std::min(kForwardChunk, len - off);
    // The request rides the LAST fragment: per-hop FIFO means its ack
    // implies every earlier fragment was acked too.
    const bool last = f + 1 == nfrags;
    post_forward_frag(src, dst, tag, fseq, f, nfrags,
                      flen > 0 ? bytes + off : nullptr, flen,
                      last ? &req : nullptr);
  }
}

void Gate::forward_raw(const ForwardFrame& frame) {
  // Relays are fire-and-forget: a dead next hop drops the fragment, and
  // the failure detector's verdict (not this relay) error-completes
  // whatever end-to-end operation was waiting on it.
  if (peer_dead_.load(std::memory_order_acquire)) return;
  post_forward_frag(frame.src, frame.dst, frame.tag, frame.fseq, frame.frag,
                    frame.nfrags, frame.data, frame.len, nullptr);
}

// ---------------------------------------------------------------- recv path

void Gate::irecv(RecvRequest& req, Tag tag, void* buf, std::size_t cap) {
  req.gate = this;
  req.tag = tag;
  req.buf = buf;
  req.cap = cap;
  req.received = 0;
  req.matched_seq = 0;
  req.source = -1;
  req.wild_set = nullptr;
  req.port = nullptr;
  req.wild_claim.store(0, std::memory_order_relaxed);
  req.core.reset();
  match_or_post(req);
}

bool Gate::post_wild(RecvRequest& req) {
  if (req.wild_claim.load(std::memory_order_acquire) != 0) {
    // An arrival at a gate registered earlier already claimed the request
    // (delivery may still be in flight) — stop registering. This unlocked
    // read is only a fast path; the authoritative re-check happens in
    // match_or_post under the matcher lock.
    return true;
  }
  return match_or_post(req);
}

bool Gate::match_or_post(RecvRequest& req) {
  matcher_.lock();
  if (req.wild_set != nullptr &&
      req.wild_claim.load(std::memory_order_acquire) != 0) {
    // Re-checked under the matcher lock: a sibling member may have claimed
    // the request and already run WildSet::purge past this gate (its
    // remove_posted found nothing because we had not inserted yet). The
    // purge's remove_posted and this check are serialized by this lock, so
    // either our insert lands before the purge (and is removed by it) or
    // the claim is visible here and we never insert. Without this check a
    // stale registration would outlive the request — the owner completes
    // and frees it — and a later scan would dereference the dangling
    // pointer. This also covers late registrations from WildSet::add_gate
    // (a gate created while the wildcard is parked).
    matcher_.unlock();
    return true;
  }
  if (peer_dead_.load(std::memory_order_acquire)) {
    // Checked under the matcher lock: fail_peer() flips the flag before
    // draining the posted structure, so a receive enqueued after its drain
    // would hang. ULFM-style: a receive from a failed rank fails even if
    // matching unexpected data is still staged — the failure is permanent.
    // For any-source requests one dead candidate fails the whole wildcard,
    // because "no matching sender exists anymore" cannot be distinguished
    // from "the dead one was the sender".
    matcher_.unlock();
    if (!try_claim(req)) return true;  // sibling delivered concurrently
    if (req.wild_set != nullptr) req.wild_set->purge(req, this);
    req.source = peer_rank_;
    req.core.mark_failed();
    req.core.complete();
    return true;
  }
  bool lost = false;
  UnexEntry* entry = matcher_.claim_unexpected(req, lost);
  if (entry == nullptr && !lost) {
    matcher_.insert_posted(req);
    matcher_.unlock();
    return false;
  }
  matcher_.unlock();
  if (lost) return true;  // any-source request claimed by a sibling gate
  if (req.wild_set != nullptr) req.wild_set->purge(req, this);
  deliver_unexpected(req, entry);
  return true;
}

void Gate::deliver_unexpected(RecvRequest& req, UnexEntry* entry) {
  if (entry->rdv) {
    recv_stats_.rdv_recv.fetch_add(1, std::memory_order_relaxed);
    start_pull(req, RdvStub{entry->tag, entry->seq, entry->len, entry->raddr});
  } else {
    deliver_eager(req, entry->data.data(), entry->data.size(), entry->seq,
                  entry->tag);
  }
  matcher_.recycle(entry);
}

void Gate::remove_expected(RecvRequest& req) {
  matcher_.lock();
  matcher_.remove_posted(req);
  matcher_.unlock();
}

void Gate::deliver_eager(RecvRequest& req, const uint8_t* payload,
                         std::size_t len, uint64_t seq, Tag tag) {
  const std::size_t n = std::min(req.cap, len);
  if (n > 0) std::memcpy(req.buf, payload, n);
  req.received = n;
  req.matched_seq = seq;
  req.matched_tag = tag;
  req.gate = this;
  req.source = peer_rank_;
  req.core.complete();
}

// -------------------------------------------------------------- progression

int Gate::progress() {
  submit_pending();
  int events = 0;
  for (int r = 0; r < nrails(); ++r) events += poll_rail(r);
  check_retransmits();
  return events;
}

int Gate::poll_rail(int rail_index) {
  RailState& rail = rails_[static_cast<std::size_t>(rail_index)];
  // Two pollers on the same rail would only duplicate work; skip instead of
  // queueing (other rails / other gates remain pollable concurrently).
  if (!rail.poll_lock.try_lock()) return 0;
  int events = 0;
  int rx = 0;
  transport::Completion c;
  while (rail.ch->poll_rx(c)) {
    auto* pb = reinterpret_cast<PoolBuf*>(c.wrid);
    handle_wire(pb->data.data(), c.bytes, rail_index);
    // Recycle the pool buffer immediately (the wire data was consumed).
    rail.ch->post_recv(pb->data.data(), pb->data.size(),
                       reinterpret_cast<uint64_t>(pb));
    ++events;
    ++rx;
  }
  // Lazy pool growth: a sweep that drained as many arrivals as there are
  // posted buffers means the ring saturated — later arrivals were staged
  // (driver-side copy) instead of landing in our buffers. Double the pool
  // towards the configured ceiling. Guarded by poll_lock; deque push_back
  // keeps references to already-posted buffers stable.
  const int ceiling = session_.config().pool_bufs_per_rail;
  if (rx >= rail.posted_bufs && rail.posted_bufs < ceiling) {
    const int target = std::min(2 * rail.posted_bufs, ceiling);
    for (int b = rail.posted_bufs; b < target; ++b) {
      rail.pool.push_back(
          PoolBuf{this, rail.index, std::vector<uint8_t>(kPoolBufSize)});
      PoolBuf& pb = rail.pool.back();
      rail.ch->post_recv(pb.data.data(), pb.data.size(),
                         reinterpret_cast<uint64_t>(&pb));
    }
    rail.posted_bufs = target;
    recv_pool_growths_.fetch_add(1, std::memory_order_relaxed);
    uint64_t hw = recv_bufs_hw_.load(std::memory_order_relaxed);
    while (hw < static_cast<uint64_t>(target) &&
           !recv_bufs_hw_.compare_exchange_weak(
               hw, static_cast<uint64_t>(target), std::memory_order_relaxed)) {
    }
  }
  while (rail.ch->poll_tx(c)) {
    handle_tx_completion(c);
    ++events;
  }
  rail.poll_lock.unlock();
  return events;
}

void Gate::handle_wire(const uint8_t* data, std::size_t len, int rail_index) {
  (void)rail_index;
  assert(len >= sizeof(PktHeader));
  // Liveness: every arrival proves the peer's host was alive to send it —
  // acks and pings included. The failure detector compares this stamp
  // against its timeout.
  last_heard_ns_.store(util::now_ns(), std::memory_order_release);
  PktHeader hdr;
  std::memcpy(&hdr, data, sizeof(hdr));
  const uint8_t* body = data + sizeof(PktHeader);
  const auto kind = static_cast<PktKind>(hdr.kind);
  if (session_.config().reliable && kind != PktKind::kAck &&
      kind != PktKind::kPing) {
    lock_.lock();
    const bool fresh = dedup_mark(hdr.pkt_seq);
    if (!fresh) stats_.duplicates_dropped++;
    lock_.unlock();
    // Always (re-)acknowledge: the sender may have missed the first ack.
    send_ack(hdr.pkt_seq);
    if (!fresh) return;
  }
  switch (kind) {
    case PktKind::kEager:
      handle_eager(hdr, body);
      break;
    case PktKind::kPack:
      handle_pack(hdr, body, static_cast<std::size_t>(hdr.len));
      break;
    case PktKind::kRts:
      handle_rts(hdr);
      break;
    case PktKind::kFin:
      handle_fin(hdr);
      break;
    case PktKind::kNack:
      handle_nack(hdr);
      break;
    case PktKind::kForward:
      handle_forward(hdr, body);
      break;
    case PktKind::kAck:
      handle_ack(hdr);
      break;
    case PktKind::kPing:
      // Heartbeat: its entire payload is the last_heard_ns_ stamp above.
      lock_.lock();
      stats_.pings_recv++;
      lock_.unlock();
      break;
    default: {
      PIOM_LOG_ERROR(
          "gate: dropping packet with corrupt header (kind=%u len=%zu "
          "tag=%u seq=%llu)",
          hdr.kind, len, hdr.tag, static_cast<unsigned long long>(hdr.seq));
      if (util::log_enabled(util::LogLevel::kError)) {
        char dump[200];
        int off = 0;
        for (std::size_t i = 0; i < 48 && i < len; ++i) {
          off += std::snprintf(dump + off, sizeof(dump) - off, "%02x ", data[i]);
        }
        PIOM_LOG_ERROR("gate: corrupt packet head: %s", dump);
      }
      break;
    }
  }
}

void Gate::handle_forward(const PktHeader& hdr, const uint8_t* payload) {
  ForwardFrame f;
  f.src = static_cast<int>((hdr.raddr >> 48) & 0xFFFFu);
  f.dst = static_cast<int>((hdr.raddr >> 32) & 0xFFFFu);
  f.frag = static_cast<uint32_t>(hdr.raddr & 0xFFFFFFFFu);
  f.tag = hdr.tag;
  f.fseq = hdr.seq;
  f.nfrags = hdr.nmsgs;
  f.data = payload;
  f.len = static_cast<std::size_t>(hdr.len);
  f.via = peer_rank_;
  const Session::ForwardHandler& handler = session_.forward_handler();
  if (!handler) {
    PIOM_LOG_WARN(
        "gate: dropping kForward with no handler installed (src=%d dst=%d "
        "tag=%u)",
        f.src, f.dst, f.tag);
    return;
  }
  handler(f);
}

void Gate::handle_eager(const PktHeader& hdr, const uint8_t* payload) {
  recv_stats_.eager_recv.fetch_add(1, std::memory_order_relaxed);
  matcher_.lock();
  RecvRequest* req = matcher_.claim_for_arrival(hdr.tag);
  if (req != nullptr) {
    matcher_.unlock();
    if (req->wild_set != nullptr) req->wild_set->purge(*req, this);
    deliver_eager(*req, payload, static_cast<std::size_t>(hdr.len), hdr.seq,
                  hdr.tag);
    return;
  }
  // Unexpected: stage a copy into a recycled entry (the pool buffer is
  // reposted right after us).
  matcher_.stage_eager(hdr.tag, hdr.seq, payload,
                       static_cast<std::size_t>(hdr.len));
  matcher_.unlock();
  recv_stats_.unexpected_eager.fetch_add(1, std::memory_order_relaxed);
}

void Gate::handle_pack(const PktHeader& hdr, const uint8_t* body,
                       std::size_t len) {
  const uint8_t* p = body;
  const uint8_t* end = body + len;
  for (uint16_t i = 0; i < hdr.nmsgs; ++i) {
    // Framing is validated at runtime, like the corrupt-header drop in
    // handle_wire: a truncated pack must not read past the packet body.
    // Messages already unpacked stay delivered; the rest of the pack is
    // dropped (the reliability layer acked the packet as a whole, so a
    // corrupt pack is a bug or corruption, not a retransmit candidate).
    if (static_cast<std::size_t>(end - p) < sizeof(PackEntry)) {
      PIOM_LOG_ERROR(
          "gate: dropping truncated pack (msg %u/%u, %zu bytes left, "
          "need %zu entry header)",
          static_cast<unsigned>(i), static_cast<unsigned>(hdr.nmsgs),
          static_cast<std::size_t>(end - p), sizeof(PackEntry));
      return;
    }
    PackEntry entry;
    std::memcpy(&entry, p, sizeof(entry));
    p += sizeof(entry);
    if (static_cast<uint64_t>(end - p) < entry.len) {
      PIOM_LOG_ERROR(
          "gate: dropping truncated pack payload (msg %u/%u tag=%u "
          "len=%llu, %zu bytes left)",
          static_cast<unsigned>(i), static_cast<unsigned>(hdr.nmsgs),
          entry.tag, static_cast<unsigned long long>(entry.len),
          static_cast<std::size_t>(end - p));
      return;
    }
    PktHeader sub;
    sub.kind = static_cast<uint8_t>(PktKind::kEager);
    sub.tag = entry.tag;
    sub.seq = entry.seq;
    sub.len = entry.len;
    handle_eager(sub, p);
    p += entry.len;
  }
}

void Gate::handle_rts(const PktHeader& hdr) {
  matcher_.lock();
  if (matcher_.tag_revoked(hdr.tag)) {
    // No receive will ever be posted for this window (the collective it
    // belongs to is draining towards error completion): refuse the
    // rendezvous so the sender error-completes instead of parking for a
    // FIN that cannot come. Checked before the posted lookup on purpose —
    // a still-queued receive in a revoked window is itself about to be
    // cancelled, and matching it would race the cancel with a pull.
    matcher_.unlock();
    recv_stats_.rts_nacked.fetch_add(1, std::memory_order_relaxed);
    send_nack(hdr.tag, hdr.seq);
    return;
  }
  RecvRequest* req = matcher_.claim_for_arrival(hdr.tag);
  if (req != nullptr) {
    matcher_.unlock();
    recv_stats_.rdv_recv.fetch_add(1, std::memory_order_relaxed);
    if (req->wild_set != nullptr) req->wild_set->purge(*req, this);
    start_pull(*req, RdvStub{hdr.tag, hdr.seq, hdr.len, hdr.raddr});
    return;
  }
  matcher_.stage_rts(hdr.tag, hdr.seq, hdr.len, hdr.raddr);
  matcher_.unlock();
  recv_stats_.unexpected_rts.fetch_add(1, std::memory_order_relaxed);
}

void Gate::handle_fin(const PktHeader& hdr) {
  lock_.lock();
  for (auto it = rdv_waiting_fin_.begin(); it != rdv_waiting_fin_.end(); ++it) {
    if ((*it)->tag == hdr.tag && (*it)->seq == hdr.seq) {
      SendRequest* req = *it;
      rdv_waiting_fin_.erase(it);
      lock_.unlock();
      req->core.complete();
      return;
    }
  }
  lock_.unlock();
  PIOM_LOG_WARN("gate: FIN for unknown rendezvous (tag=%u seq=%llu)", hdr.tag,
                static_cast<unsigned long long>(hdr.seq));
}

void Gate::handle_nack(const PktHeader& hdr) {
  // The peer refused the rendezvous: it will never post a matching receive
  // (revoked window), so the parked send can only error-complete. Mirrors
  // handle_fin with the failure flag set.
  lock_.lock();
  for (auto it = rdv_waiting_fin_.begin(); it != rdv_waiting_fin_.end(); ++it) {
    if ((*it)->tag == hdr.tag && (*it)->seq == hdr.seq) {
      SendRequest* req = *it;
      rdv_waiting_fin_.erase(it);
      stats_.sends_nacked++;
      lock_.unlock();
      req->core.mark_failed();
      req->core.complete();
      return;
    }
  }
  lock_.unlock();
  // Benign race: fail_peer() may have error-completed the send already
  // (both verdicts agree on the outcome), so unlike FIN this is not worth
  // a warning.
}

void Gate::start_pull(RecvRequest& req, const RdvStub& rts) {
  req.matched_seq = rts.seq;
  req.matched_tag = rts.tag;
  req.gate = this;
  req.source = peer_rank_;
  const std::size_t n = std::min(req.cap, static_cast<std::size_t>(rts.len));
  req.received = n;
  const std::vector<StripeChunk> chunks =
      session_.strategy().stripe(n, rail_bandwidths_);
  req.pull.req = &req;
  req.pull.tag = rts.tag;
  req.pull.seq = rts.seq;
  req.pull.chunks_failed.store(0, std::memory_order_relaxed);
  req.pull.chunks_remaining.store(static_cast<int>(chunks.size()),
                                  std::memory_order_release);
  auto* base = reinterpret_cast<const uint8_t*>(rts.raddr);
  for (const StripeChunk& chunk : chunks) {
    rails_[static_cast<std::size_t>(chunk.rail)].ch->post_rdma_read(
        static_cast<uint8_t*>(req.buf) + chunk.offset, base + chunk.offset,
        chunk.len, reinterpret_cast<uint64_t>(&req.pull));
  }
}

void Gate::finish_pull(RdvPull& pull) {
  // All chunks have landed: notify the sender, then complete the receive.
  PacketWrapper* pw = pw_pool_.acquire();
  PktHeader hdr;
  hdr.kind = static_cast<uint8_t>(PktKind::kFin);
  hdr.tag = pull.tag;
  hdr.seq = pull.seq;
  pw->begin(hdr);
  post_pw(pw, 0);
  pull.req->core.complete();
}

void Gate::handle_tx_completion(const transport::Completion& c) {
  switch (c.kind) {
    case transport::Completion::Kind::kSend: {
      auto* pw = reinterpret_cast<PacketWrapper*>(c.wrid);
      if (pw->awaiting_ack) {
        // Reliable path: completion means "on the wire", not "delivered".
        PacketWrapper* to_finalize = nullptr;
        lock_.lock();
        pw->in_flight = false;
        if (pw->acked) {
          for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
            if (*it == pw) {
              unacked_.erase(it);
              break;
            }
          }
          to_finalize = pw;
        }
        lock_.unlock();
        if (to_finalize != nullptr) finalize_reliable_pw(to_finalize);
        break;
      }
      for (SendRequest* req : pw->reqs) req->core.complete();
      pw_pool_.release(pw);
      break;
    }
    case transport::Completion::Kind::kRdmaRead: {
      auto* pull = reinterpret_cast<RdvPull*>(c.wrid);
      if (c.failed) {
        pull->chunks_failed.fetch_add(1, std::memory_order_acq_rel);
      }
      if (pull->chunks_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (pull->chunks_failed.load(std::memory_order_acquire) > 0) {
          // The pull crossed a severed link: the data never landed and the
          // sender cannot use a FIN anyway — error-complete the receive.
          pull->req->core.mark_failed();
          pull->req->core.complete();
        } else {
          finish_pull(*pull);
        }
      }
      break;
    }
    case transport::Completion::Kind::kRecv:
      assert(false && "recv completions are handled in poll_rx loop");
      break;
  }
}

// -------------------------------------------------------------------- stats

GateStats Gate::stats() const {
  lock_.lock();
  GateStats s = stats_;
  lock_.unlock();
  // Receive-path counters moved off lock_ with the matcher split.
  s.eager_recv = recv_stats_.eager_recv.load(std::memory_order_relaxed);
  s.rdv_recv = recv_stats_.rdv_recv.load(std::memory_order_relaxed);
  s.unexpected_eager =
      recv_stats_.unexpected_eager.load(std::memory_order_relaxed);
  s.unexpected_rts =
      recv_stats_.unexpected_rts.load(std::memory_order_relaxed);
  s.rts_nacked = recv_stats_.rts_nacked.load(std::memory_order_relaxed);
  const MatcherStats m = matcher_.stats_snapshot();
  s.match_bucket_hits = m.bucket_hits;
  s.match_wildcard_scans = m.wildcard_scans;
  s.posted_depth_hw = m.posted_depth_hw;
  s.unexpected_depth_hw = m.unexpected_depth_hw;
  s.match_pool_hits = m.pool_hits;
  s.match_pool_misses = m.pool_misses;
  s.pw_pool_hits = pw_pool_.hits();
  s.pw_pool_misses = pw_pool_.allocated();
  s.recv_bufs_posted_hw = recv_bufs_hw_.load(std::memory_order_relaxed);
  s.recv_pool_growths = recv_pool_growths_.load(std::memory_order_relaxed);
  return s;
}

std::size_t Gate::pending_sends() const {
  lock_.lock();
  const std::size_t n = pending_count_;
  lock_.unlock();
  return n;
}

}  // namespace piom::nmad
