// WildSet: the registry any-source receives are posted against. With eager
// full-mesh wiring the gate list was a fixed by-peer vector; with lazy gates
// the set of match candidates *grows while requests are parked*, so the
// registry is a first-class object: gates join it when they are created,
// and every pending wildcard is (exactly once) registered with each member.
//
// A WildPort is a non-gate match candidate — the membership layer's forward
// inbox, where messages from ranks this rank has no direct gate to arrive.
// It obeys the same post_wild/remove_expected contract as Gate, including
// the claim re-check under its own lock (see Gate::match_or_post).
//
// Coverage invariant: for every (pending request, member) pair exactly one
// side performs the registration. post() appends the request and snapshots
// the membership under one lock; add_gate() appends the gate and snapshots
// the pending requests under the same lock. Whichever append lands second
// sees the other in its snapshot — and only that one registers the pair.
// The actual post_wild calls run OUTSIDE the lock: a registration can match
// staged data and complete the request inline, which re-enters the set via
// purge().
#pragma once

#include <cstddef>
#include <vector>

#include "nmad/types.hpp"
#include "sync/spinlock.hpp"

namespace piom::nmad {

class Gate;
struct RecvRequest;

/// A non-gate wildcard match candidate (the membership forward inbox).
/// Same contract as the corresponding Gate methods.
class WildPort {
 public:
  virtual ~WildPort() = default;
  /// Register an any-source receive: match immediately against staged
  /// arrivals, else park. True when the request needs no further
  /// registrations (matched here, or already claimed elsewhere).
  virtual bool post_wild(RecvRequest& req) = 0;
  /// Drop a registration claimed elsewhere. No-op when not parked here.
  virtual void remove_expected(RecvRequest& req) = 0;
  /// Withdraw + error-complete a parked receive (MPI_Cancel-style). False
  /// when the request is not parked here.
  virtual bool cancel_recv(RecvRequest& req) = 0;
};

class WildSet {
 public:
  WildSet() = default;
  WildSet(const WildSet&) = delete;
  WildSet& operator=(const WildSet&) = delete;

  /// Add a gate to the set and register every pending wildcard with it.
  /// Called once per gate, at creation.
  void add_gate(Gate* g);

  /// Install the (single) non-gate member. Must happen before any post().
  void set_port(WildPort* port);

  /// Post `req` as an any-source receive across the current membership
  /// (and, transparently, any gate added later). Initialises the request
  /// like Gate::irecv does. `req` must outlive its completion.
  void post(RecvRequest& req, Tag tag, void* buf, std::size_t cap);

  /// Remove a claimed request from every member except `claimer` (compared
  /// by address — a Gate* or WildPort* cast to void*). Must be called
  /// WITHOUT locks and BEFORE completing the request, by whoever won the
  /// claim CAS.
  void purge(RecvRequest& req, const void* claimer);

  /// Cancel a parked wildcard: first member that still holds it withdraws
  /// and error-completes it. False when no member holds it (matched
  /// already, completion may be in flight).
  bool cancel(RecvRequest& req);

  [[nodiscard]] std::size_t gate_count() const;

 private:
  mutable sync::SpinLock lock_;
  std::vector<Gate*> gates_ PIOM_GUARDED_BY(lock_);
  std::vector<RecvRequest*> pending_ PIOM_GUARDED_BY(lock_);
  WildPort* port_ PIOM_GUARDED_BY(lock_) = nullptr;
};

}  // namespace piom::nmad
