// Send/receive request objects. The piom::Task used for submission
// offloading is *embedded* in the request (paper §IV-B: "the task structure
// does not require an allocation since it is included in the packet wrapper
// structure") — submitting a request to the scheduler allocates nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/task.hpp"
#include "sync/semaphore.hpp"
#include "nmad/types.hpp"

namespace piom::nmad {

class Gate;
class WildSet;
class WildPort;
struct RecvRequest;

/// Completion flag + wakeup shared by both request kinds.
struct RequestCore {
  std::atomic<bool> done{false};
  /// Error-completion outcome: set (before complete()) when the operation
  /// terminated because the peer was declared failed instead of finishing
  /// normally. The done-acquire in completed() synchronizes it, so owners
  /// read it lock-free after observing done.
  std::atomic<bool> failed{false};
  sync::Semaphore sem{0};

  void complete() {
    // Post the wakeup *first*, publish `done` *last*: an owner polling
    // completed() (the engines' wait/test fast paths) may reclaim the
    // request's storage the instant it observes done == true, so the
    // `done` store must be the completer's final touch of this object.
    // Parked waiters wake on the post and spin the few remaining
    // instructions until the flag lands (wait_done below).
    sem.post();
    done.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool completed() const {
    return done.load(std::memory_order_acquire);
  }
  /// Mark the operation as error-terminated. Must be called BEFORE
  /// complete() (failure completers do mark_failed(); complete();) so the
  /// flag is published by the time the owner observes done.
  void mark_failed() { failed.store(true, std::memory_order_release); }
  /// Meaningful once completed() is true.
  [[nodiscard]] bool has_failed() const {
    return failed.load(std::memory_order_acquire);
  }
  /// Block until complete() has *fully finished* — consuming the post
  /// alone is not enough to reclaim storage, since the trailing `done`
  /// store is the completer's last write.
  void wait_done() {
    if (completed()) return;
    sem.wait();
    while (!completed()) {
      // complete() is between its post and its done store; normally a few
      // instructions away, but yield in case the completer was preempted
      // right there (otherwise this spin burns its whole timeslice on
      // single-CPU hosts).
      std::this_thread::yield();
    }
  }
  void reset() {
    done.store(false, std::memory_order_relaxed);
    failed.store(false, std::memory_order_relaxed);
    while (sem.try_wait()) {
    }
  }
};

struct SendRequest {
  Gate* gate = nullptr;
  Tag tag = 0;
  uint64_t seq = 0;
  const void* buf = nullptr;
  std::size_t len = 0;
  bool rdv = false;  ///< true: rendezvous (RTS/RDMA-Read/FIN) path
  RequestCore core;
  SendRequest* next = nullptr;  ///< intrusive pending-queue linkage

  SendRequest() = default;
  SendRequest(const SendRequest&) = delete;
  SendRequest& operator=(const SendRequest&) = delete;

  [[nodiscard]] bool completed() const { return core.completed(); }
  void wait() { core.wait_done(); }
};

/// Rendezvous pull bookkeeping: one RDMA-Read per rail chunk; the request
/// completes (and FIN is sent) when every chunk has landed.
struct RdvPull {
  std::atomic<int> chunks_remaining{0};
  /// Chunks whose RDMA read came back failed (severed rail). The single
  /// last-chunk completer reads this to decide between FIN and error
  /// completion — no extra arbitration needed.
  std::atomic<int> chunks_failed{0};
  RecvRequest* req = nullptr;
  Tag tag = 0;
  uint64_t seq = 0;
};

struct RecvRequest {
  Gate* gate = nullptr;
  Tag tag = 0;
  void* buf = nullptr;
  std::size_t cap = 0;
  std::size_t received = 0;
  uint64_t matched_seq = 0;
  Tag matched_tag = 0;  ///< actual tag when posted with kAnyTag
  int source = -1;      ///< peer rank of the matched gate (kAnySource recvs)
  /// Any-source receives are registered with several gates at once; the
  /// first gate to match claims the request through this flag (CAS 0 -> 1).
  /// Losing gates drop their now-stale registration instead of delivering.
  std::atomic<uint32_t> wild_claim{0};
  /// Non-null for any-source receives: the registry the request was posted
  /// through (WildSet::post). Must stay valid until the request completes;
  /// the claiming member purges every sibling registration — including
  /// gates that joined the set after the post — *before* signalling
  /// completion (WildSet::purge).
  WildSet* wild_set = nullptr;
  /// Non-null for directed receives parked on a non-gate port (the
  /// membership forward inbox); mutually exclusive with gate/wild_set.
  WildPort* port = nullptr;
  RequestCore core;
  RdvPull pull;  ///< embedded: no allocation on the rendezvous path either

  RecvRequest() = default;
  RecvRequest(const RecvRequest&) = delete;
  RecvRequest& operator=(const RecvRequest&) = delete;

  [[nodiscard]] bool completed() const { return core.completed(); }
  void wait() { core.wait_done(); }
};

}  // namespace piom::nmad
