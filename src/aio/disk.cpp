#include "aio/disk.hpp"

#include <algorithm>
#include <cstring>

#include "sync/backoff.hpp"
#include "util/timing.hpp"

namespace piom::aio {

SimDisk::SimDisk(std::string name, std::size_t capacity, DiskModel model)
    : name_(std::move(name)),
      model_(model),
      store_(capacity, 0),
      engine_([this] { engine_loop(); }) {}

SimDisk::~SimDisk() { stop(); }

void SimDisk::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lk(mutex_);
  }
  cv_.notify_all();
  if (engine_.joinable()) engine_.join();
}

void SimDisk::submit_read(std::size_t offset, void* buf, std::size_t len,
                          uint64_t wrid) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(Op{DiskCompletion::Kind::kRead, offset, buf, nullptr,
                        len, wrid});
    queue_size_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
}

void SimDisk::submit_write(std::size_t offset, const void* buf,
                           std::size_t len, uint64_t wrid) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(Op{DiskCompletion::Kind::kWrite, offset, nullptr, buf,
                        len, wrid});
    queue_size_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
}

bool SimDisk::poll(DiskCompletion& out) {
  // Same Algorithm-2-style pre-check as the NIC: hot pollers must not take
  // the mutex when the CQ is empty.
  if (cq_size_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lk(mutex_);
  if (cq_.empty()) return false;
  out = cq_.front();
  cq_.pop_front();
  cq_size_.fetch_sub(1, std::memory_order_release);
  return true;
}

void SimDisk::quiesce() const {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (queue_.empty() && !engine_busy_) return;
    }
    std::this_thread::yield();
  }
}

DiskStats SimDisk::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

void SimDisk::poke(std::size_t offset, const void* data, std::size_t len) {
  std::lock_guard<std::mutex> lk(mutex_);
  const std::size_t n =
      offset < store_.size() ? std::min(len, store_.size() - offset) : 0;
  if (n > 0) std::memcpy(store_.data() + offset, data, n);
}

void SimDisk::peek(std::size_t offset, void* data, std::size_t len) const {
  std::lock_guard<std::mutex> lk(mutex_);
  const std::size_t n =
      offset < store_.size() ? std::min(len, store_.size() - offset) : 0;
  if (n > 0) std::memcpy(data, store_.data() + offset, n);
}

void SimDisk::engine_loop() {
  while (true) {
    Op op;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [this] {
        return !queue_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping and drained
      op = queue_.front();
      queue_.pop_front();
      queue_size_.fetch_sub(1, std::memory_order_release);
      engine_busy_ = true;
    }
    // Cost model: access latency + serialisation at streaming throughput.
    const std::size_t n =
        op.offset < store_.size()
            ? std::min(op.len, store_.size() - op.offset)
            : 0;
    const double ns = (model_.access_us * 1e3 +
                       static_cast<double>(n) / model_.throughput_GBps) *
                      model_.time_scale;
    util::precise_wait_ns(static_cast<int64_t>(ns));

    DiskCompletion c;
    c.kind = op.kind;
    c.wrid = op.wrid;
    c.bytes = n;
    c.ok = n > 0 || op.len == 0;
    if (op.kind == DiskCompletion::Kind::kRead) {
      if (n > 0) std::memcpy(op.rbuf, store_.data() + op.offset, n);
    } else {
      if (n > 0) std::memcpy(store_.data() + op.offset, op.wbuf, n);
    }
    std::lock_guard<std::mutex> lk(mutex_);
    if (op.kind == DiskCompletion::Kind::kRead) {
      stats_.reads++;
      stats_.bytes_read += n;
    } else {
      stats_.writes++;
      stats_.bytes_written += n;
    }
    if (!c.ok) stats_.errors++;
    cq_.push_back(c);
    cq_size_.fetch_add(1, std::memory_order_release);
    engine_busy_ = false;
  }
}

}  // namespace piom::aio
