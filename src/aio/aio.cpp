#include "aio/aio.hpp"

namespace piom::aio {

AioManager::AioManager(TaskManager& tm, std::vector<SimDisk*> disks,
                       AioManagerConfig config)
    : tm_(tm) {
  for (std::size_t i = 0; i < disks.size(); ++i) {
    polls_.emplace_back();
    DiskPoll& dp = polls_.back();
    dp.disk = disks[i];
    dp.mgr = this;
    const topo::CpuSet cpus = i < config.poll_cpusets.size()
                                  ? config.poll_cpusets[i]
                                  : topo::CpuSet{};
    dp.task.init(&poll_trampoline, &dp, cpus,
                 piom::kTaskRepeat | piom::kTaskNotify);
    tm_.submit(&dp.task);
  }
}

AioManager::~AioManager() { shutdown(); }

TaskResult AioManager::poll_trampoline(void* arg) {
  auto* dp = static_cast<DiskPoll*>(arg);
  dp->mgr->poll_disk(*dp->disk);
  if (dp->mgr->stopping_.load(std::memory_order_acquire) &&
      dp->mgr->inflight_.load(std::memory_order_acquire) == 0) {
    return TaskResult::kDone;
  }
  return TaskResult::kAgain;
}

int AioManager::poll_disk(SimDisk& disk) {
  int events = 0;
  DiskCompletion c;
  while (disk.poll(c)) {
    auto* req = reinterpret_cast<IoRequest*>(c.wrid);
    req->bytes = c.bytes;
    req->ok = c.ok;
    // Post first, publish `done` last: an owner observing done == true
    // (wait()'s fast path or a completed() poll) may immediately destroy
    // the request, so the `done` store must be our final touch.
    req->sem.post();
    req->done.store(true, std::memory_order_release);
    completions_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_release);
    ++events;
  }
  return events;
}

void AioManager::read(SimDisk& disk, std::size_t offset, void* buf,
                      std::size_t len, IoRequest& req) {
  req.reset();
  inflight_.fetch_add(1, std::memory_order_acquire);
  disk.submit_read(offset, buf, len, reinterpret_cast<uint64_t>(&req));
}

void AioManager::write(SimDisk& disk, std::size_t offset, const void* buf,
                       std::size_t len, IoRequest& req) {
  req.reset();
  inflight_.fetch_add(1, std::memory_order_acquire);
  disk.submit_write(offset, buf, len, reinterpret_cast<uint64_t>(&req));
}

void AioManager::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // The polling tasks observe stopping_ + drained in-flight count and
  // finish; wait for each so no task references us after destruction.
  // If no runtime worker is draining the queues, drive progress ourselves.
  for (DiskPoll& dp : polls_) {
    // Schedule on a core the task's CPU set allows, or core 0 for the
    // any-core (empty) set.
    const int cpu = dp.task.cpuset.empty() ? 0 : dp.task.cpuset.first();
    while (!dp.task.completed()) {
      tm_.schedule(cpu);
    }
    // kTaskNotify contract: the completion post is the scheduler's *last*
    // touch of the task — consume it before this DiskPoll (which embeds
    // the task and its semaphore) may be destroyed.
    dp.task.wait_done();
  }
}

}  // namespace piom::aio
