#include "aio/fd_poll.hpp"

#include <cerrno>
#include <stdexcept>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif
#include <unistd.h>

namespace piom::aio {

#ifdef __linux__

FdPoller::FdPoller() : epfd_(::epoll_create1(0)) {
  if (epfd_ < 0) throw std::runtime_error("FdPoller: epoll_create1 failed");
}

FdPoller::~FdPoller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void FdPoller::add(int fd, void* tag) {
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered; EPOLLHUP/EPOLLERR are implicit
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error("FdPoller: epoll_ctl(ADD) failed");
  }
  tags_[fd] = tag;
}

void FdPoller::remove(int fd) {
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  tags_.erase(fd);
}

int FdPoller::wait(Event* out, int max_events, int timeout_ms) {
  if (max_events <= 0 || tags_.empty()) return 0;
  std::vector<epoll_event> evs(static_cast<std::size_t>(max_events));
  int n = ::epoll_wait(epfd_, evs.data(), max_events, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw std::runtime_error("FdPoller: epoll_wait failed");
  }
  for (int i = 0; i < n; ++i) {
    const auto it = tags_.find(evs[static_cast<std::size_t>(i)].data.fd);
    out[i].tag = it != tags_.end() ? it->second : nullptr;
    const uint32_t flags = evs[static_cast<std::size_t>(i)].events;
    out[i].readable = (flags & EPOLLIN) != 0;
    out[i].hangup = (flags & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
  }
  return n;
}

#else  // poll(2) fallback: rebuild the pollfd set per call (fd counts are
       // one per peer, so this stays cheap at the scales the repo runs).

FdPoller::FdPoller() = default;
FdPoller::~FdPoller() = default;

void FdPoller::add(int fd, void* tag) { tags_[fd] = tag; }
void FdPoller::remove(int fd) { tags_.erase(fd); }

int FdPoller::wait(Event* out, int max_events, int timeout_ms) {
  if (max_events <= 0 || tags_.empty()) return 0;
  std::vector<pollfd> pfds;
  pfds.reserve(tags_.size());
  for (const auto& [fd, tag] : tags_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw std::runtime_error("FdPoller: poll failed");
  }
  int filled = 0;
  for (const pollfd& p : pfds) {
    if (p.revents == 0 || filled >= max_events) continue;
    out[filled].tag = tags_[p.fd];
    out[filled].readable = (p.revents & POLLIN) != 0;
    out[filled].hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    ++filled;
  }
  return filled;
}

#endif

}  // namespace piom::aio
