// SimDisk — simulated block storage device, the I/O counterpart of
// simnet::Nic. The paper's conclusion (§VI) sets the long-term goal of "a
// generic framework able to optimize both communication and I/O in a
// scalable way"; this module provides the I/O substrate that the AioManager
// (aio/aio.hpp) drives through PIOMan tasks.
//
// Like a NIC, the disk has its own engine thread that executes requests
// asynchronously under a cost model (fixed access latency + streaming
// throughput), so host code only pays for *submitting* and *polling* —
// exactly the property that makes background progression worthwhile.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace piom::aio {

struct DiskModel {
  double access_us = 80.0;        ///< per-request access latency (NVMe-ish)
  double throughput_GBps = 2.0;   ///< streaming bandwidth
  /// Multiplies every modelled delay (tests use <1).
  double time_scale = 1.0;
};

/// Completion queue entry.
struct DiskCompletion {
  enum class Kind : uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  uint64_t wrid = 0;
  std::size_t bytes = 0;  ///< bytes actually transferred (clamped at EOF)
  bool ok = false;        ///< false: out-of-range request
};

/// Device statistics.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t errors = 0;
};

class SimDisk {
 public:
  /// A device of `capacity` bytes, zero-initialised.
  SimDisk(std::string name, std::size_t capacity, DiskModel model = {});
  ~SimDisk();

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t capacity() const { return store_.size(); }
  [[nodiscard]] const DiskModel& model() const { return model_; }

  /// Queue an asynchronous read of `len` bytes at `offset` into `buf`
  /// (caller-owned until the completion is polled). Reads past EOF are
  /// clamped; reads entirely out of range complete with ok=false.
  void submit_read(std::size_t offset, void* buf, std::size_t len,
                   uint64_t wrid);

  /// Queue an asynchronous write (same ownership/clamping rules).
  void submit_write(std::size_t offset, const void* buf, std::size_t len,
                    uint64_t wrid);

  /// Poll the completion queue; true when `out` was filled.
  bool poll(DiskCompletion& out);

  /// Block until every queued request has been executed.
  void quiesce() const;

  [[nodiscard]] DiskStats stats() const;

  /// Direct synchronous access for test setup/verification (no cost model).
  void poke(std::size_t offset, const void* data, std::size_t len);
  void peek(std::size_t offset, void* data, std::size_t len) const;

 private:
  struct Op {
    DiskCompletion::Kind kind = DiskCompletion::Kind::kRead;
    std::size_t offset = 0;
    void* rbuf = nullptr;
    const void* wbuf = nullptr;
    std::size_t len = 0;
    uint64_t wrid = 0;
  };

  void engine_loop();
  void stop();

  const std::string name_;
  const DiskModel model_;
  std::vector<uint8_t> store_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Op> queue_;
  std::deque<DiskCompletion> cq_;
  std::atomic<std::size_t> queue_size_{0};
  std::atomic<std::size_t> cq_size_{0};
  bool engine_busy_ = false;  // guarded by mutex_
  DiskStats stats_;           // guarded by mutex_

  std::atomic<bool> running_{true};
  std::thread engine_;
};

}  // namespace piom::aio
