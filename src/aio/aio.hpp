// AioManager — asynchronous I/O driven by the PIOMan task mechanism (the
// paper's §VI long-term goal: "provide a generic framework able to optimize
// both communication and I/O in a scalable way").
//
// The manager owns one repeatable *polling task* per disk, submitted to the
// TaskManager with a configurable CPU set: idle cores drain the disks'
// completion queues exactly the way they poll NICs for nmad. Applications
// get MPI-like nonblocking semantics:
//
//   aio::AioManager mgr(tm, {&disk});
//   aio::IoRequest req;
//   mgr.read(disk, offset, buf, len, req);
//   ...compute...                       // I/O progresses in the background
//   req.wait();                         // blocks on a semaphore, no polling
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "aio/disk.hpp"
#include "core/task_manager.hpp"
#include "sync/semaphore.hpp"

namespace piom::aio {

/// Caller-owned handle for one asynchronous read/write. Must stay alive
/// until completed() (storage is embedded: no allocation per operation).
struct IoRequest {
  std::atomic<bool> done{false};
  sync::Semaphore sem{0};
  std::size_t bytes = 0;  ///< transferred byte count (set at completion)
  bool ok = false;        ///< false: request was out of device range

  [[nodiscard]] bool completed() const {
    return done.load(std::memory_order_acquire);
  }
  /// Blocks until the completer has *fully finished* with the request:
  /// the poller posts the wakeup first and publishes `done` last (its
  /// final touch), so storage may be reclaimed once wait() returns.
  void wait() {
    if (completed()) return;
    sem.wait();
    // The trailing done store is normally a few instructions behind the
    // post; yield in case the poller was preempted right between them.
    while (!completed()) std::this_thread::yield();
  }

  void reset() {
    done.store(false, std::memory_order_relaxed);
    while (sem.try_wait()) {
    }
    bytes = 0;
    ok = false;
  }
};

struct AioManagerConfig {
  /// CPU set for each disk's polling task (empty = any core / global
  /// queue). One entry per disk; missing entries fall back to empty.
  std::vector<topo::CpuSet> poll_cpusets;
};

class AioManager {
 public:
  /// `tm` and the disks must outlive the manager. One repeatable polling
  /// task per disk is submitted immediately.
  AioManager(TaskManager& tm, std::vector<SimDisk*> disks,
             AioManagerConfig config = {});
  ~AioManager();

  AioManager(const AioManager&) = delete;
  AioManager& operator=(const AioManager&) = delete;

  /// Nonblocking read: `req` completes when the data is in `buf`.
  void read(SimDisk& disk, std::size_t offset, void* buf, std::size_t len,
            IoRequest& req);

  /// Nonblocking write: `req` completes when the device absorbed the data
  /// (`buf` is caller-owned until then).
  void write(SimDisk& disk, std::size_t offset, const void* buf,
             std::size_t len, IoRequest& req);

  /// Operations completed so far (tests).
  [[nodiscard]] uint64_t completions() const {
    return completions_.load(std::memory_order_relaxed);
  }

  /// Stop the polling tasks (idempotent; destructor calls it). All pending
  /// requests are drained first.
  void shutdown();

 private:
  struct DiskPoll {
    piom::Task task;
    SimDisk* disk = nullptr;
    AioManager* mgr = nullptr;
  };
  static TaskResult poll_trampoline(void* arg);
  int poll_disk(SimDisk& disk);

  TaskManager& tm_;
  std::deque<DiskPoll> polls_;
  std::atomic<uint64_t> completions_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace piom::aio
