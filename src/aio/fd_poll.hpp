// FdPoller: the readiness half of the AIO layer — a thin epoll wrapper
// (poll(2) fallback off Linux) that the socket transport registers its fds
// with. There is deliberately no thread in here: whoever calls wait() owns
// the events, which is how the event loop coexists with all three progress
// engines (PIOMan ticks it from background poll tasks, the caller-driven
// engines pump it from wait/test — see transport/tcp.hpp).
#pragma once

#include <cstddef>
#include <unordered_map>

namespace piom::aio {

class FdPoller {
 public:
  struct Event {
    void* tag = nullptr;   ///< value supplied at add()
    bool readable = false;
    bool hangup = false;   ///< peer closed or error-ed the connection
  };

  FdPoller();
  ~FdPoller();

  FdPoller(const FdPoller&) = delete;
  FdPoller& operator=(const FdPoller&) = delete;

  /// Watch `fd` for readability (level-triggered). `tag` comes back in
  /// every Event for it.
  void add(int fd, void* tag);
  void remove(int fd);

  /// Collect ready fds into `out` (up to `max_events`), waiting at most
  /// `timeout_ms` (0 = non-blocking probe). Returns the event count.
  int wait(Event* out, int max_events, int timeout_ms);

  [[nodiscard]] std::size_t watched() const { return tags_.size(); }

 private:
  int epfd_ = -1;  ///< -1 on the poll(2) fallback
  std::unordered_map<int, void*> tags_;
};

}  // namespace piom::aio
