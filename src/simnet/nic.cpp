#include "simnet/nic.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "simnet/fabric.hpp"
#include "sync/backoff.hpp"
#include "util/timing.hpp"
#include "util/trace.hpp"

namespace piom::simnet {

Nic::Nic(Fabric& fabric, std::string name, LinkModel link)
    : fabric_(fabric), name_(std::move(name)), link_(link) {
  // Deterministic seed: same fabric + same creation order => same drops.
  rng_state_ = 0x9e3779b97f4a7c15ULL ^ std::hash<std::string>{}(name_);
  if (rng_state_ == 0) rng_state_ = 1;
}

double Nic::drop_draw() {
  // xorshift64*: cheap, deterministic, engine-thread-local.
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1DULL) >> 11) /
         static_cast<double>(1ULL << 53);
}

Nic::~Nic() { stop(); }

void Nic::start() {
  running_.store(true, std::memory_order_release);
  engine_ = std::thread([this] { engine_loop(); });
}

void Nic::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lk(tx_mutex_);
  }
  tx_cv_.notify_all();
  if (engine_.joinable()) engine_.join();
}

void Nic::wait_scaled_ns(int64_t ns) const {
  util::precise_wait_ns(static_cast<int64_t>(
      static_cast<double>(ns) * fabric_.time_scale()));
}

void Nic::post_send(const void* buf, std::size_t len, uint64_t wrid) {
  if (peer_ == nullptr) throw std::logic_error("Nic::post_send: unconnected");
  {
    std::lock_guard<std::mutex> lk(tx_mutex_);
    tx_queue_.push_back(TxOp{TxOp::Kind::kSend, buf, nullptr, len, wrid});
    tx_queue_size_.fetch_add(1, std::memory_order_release);
  }
  tx_cv_.notify_one();
}

void Nic::post_rdma_read(void* local, const void* remote, std::size_t len,
                         uint64_t wrid) {
  if (peer_ == nullptr) {
    throw std::logic_error("Nic::post_rdma_read: unconnected");
  }
  {
    std::lock_guard<std::mutex> lk(tx_mutex_);
    tx_queue_.push_back(TxOp{TxOp::Kind::kRdmaRead, remote, local, len, wrid});
    tx_queue_size_.fetch_add(1, std::memory_order_release);
  }
  tx_cv_.notify_one();
}

void Nic::post_recv(void* buf, std::size_t cap, uint64_t wrid) {
  std::lock_guard<std::mutex> lk(rx_mutex_);
  if (!staged_.empty()) {
    // A message already arrived unmatched: consume it right away.
    StagedArrival arrival = std::move(staged_.front());
    staged_.pop_front();
    const std::size_t n = std::min(cap, arrival.data.size());
    if (n > 0) std::memcpy(buf, arrival.data.data(), n);
    rx_cq_.push_back(Completion{Completion::Kind::kRecv, wrid, n});
    rx_cq_size_.fetch_add(1, std::memory_order_release);
    return;
  }
  rx_descs_.push_back(RecvDesc{buf, cap, wrid});
}

bool Nic::poll_tx(Completion& out) {
  // Lock-free emptiness pre-check: hot pollers must not take the mutex on
  // the (overwhelmingly common) empty path — they would starve the engine.
  if (tx_cq_size_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lk(tx_mutex_);
  if (tx_cq_.empty()) return false;
  out = tx_cq_.front();
  tx_cq_.pop_front();
  tx_cq_size_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool Nic::poll_rx(Completion& out) {
  if (rx_cq_size_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lk(rx_mutex_);
  if (rx_cq_.empty()) return false;
  out = rx_cq_.front();
  rx_cq_.pop_front();
  rx_cq_size_.fetch_sub(1, std::memory_order_release);
  return true;
}

NicStats Nic::stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return stats_;
}

std::size_t Nic::tx_backlog() const {
  std::lock_guard<std::mutex> lk(tx_mutex_);
  return tx_queue_.size();
}

void Nic::quiesce() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(tx_mutex_);
      if (tx_queue_.empty() && !engine_busy_) return;
    }
    std::this_thread::yield();
  }
}

void Nic::deliver(const void* data, std::size_t len) {
  if (severed()) {
    // A dead endpoint hears nothing: the arrival evaporates on our side of
    // the wire (the sender already paid the transfer and got its TX
    // completion — exactly the drop model's asymmetry).
    std::lock_guard<std::mutex> slk(stats_mutex_);
    stats_.packets_dropped++;
    return;
  }
  PIOM_TRACE(util::trace::Kind::kPacketRx, 0, len);
  std::lock_guard<std::mutex> lk(rx_mutex_);
  {
    std::lock_guard<std::mutex> slk(stats_mutex_);
    stats_.packets_rx++;
    stats_.bytes_rx += len;
  }
  if (!rx_descs_.empty()) {
    RecvDesc desc = rx_descs_.front();
    rx_descs_.pop_front();
    const std::size_t n = std::min(desc.cap, len);
    if (n > 0) std::memcpy(desc.buf, data, n);
    rx_cq_.push_back(Completion{Completion::Kind::kRecv, desc.wrid, n});
    rx_cq_size_.fetch_add(1, std::memory_order_release);
    return;
  }
  // No buffer posted: stage a copy (driver-level buffering of unexpected
  // packets, as MX does for short messages).
  StagedArrival arrival;
  arrival.data.assign(static_cast<const uint8_t*>(data),
                      static_cast<const uint8_t*>(data) + len);
  staged_.push_back(std::move(arrival));
}

void Nic::engine_loop() {
  // Hybrid wait: after serving an op the engine stays hot (spin-polls) for
  // a short window before parking on the condvar — a parked engine adds
  // tens of µs of wake-up latency to every message, which would swamp the
  // µs-scale link model during latency benchmarks.
  constexpr int64_t kHotSpinNs = 5'000'000;
  int64_t hot_deadline = util::now_ns() + kHotSpinNs;
  while (true) {
    TxOp op;
    bool have_op = false;
    while (!have_op) {
      // Hot path: peek the atomic size; only touch the mutex when there is
      // work or when it is time to park.
      if (tx_queue_size_.load(std::memory_order_acquire) == 0 &&
          running_.load(std::memory_order_acquire) &&
          util::now_ns() < hot_deadline) {
        sync::cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lk(tx_mutex_);
      if (!tx_queue_.empty()) {
        op = tx_queue_.front();
        tx_queue_.pop_front();
        tx_queue_size_.fetch_sub(1, std::memory_order_release);
        engine_busy_ = true;  // quiesce() sees queue+busy atomically
        have_op = true;
        break;
      }
      if (!running_.load(std::memory_order_acquire)) return;
      if (util::now_ns() >= hot_deadline) {
        tx_cv_.wait(lk, [this] {
          return !tx_queue_.empty() ||
                 !running_.load(std::memory_order_acquire);
        });
        if (tx_queue_.empty()) return;  // stopping and drained
        op = tx_queue_.front();
        tx_queue_.pop_front();
        tx_queue_size_.fetch_sub(1, std::memory_order_release);
        engine_busy_ = true;
        have_op = true;
        break;
      }
    }
    hot_deadline = util::now_ns() + kHotSpinNs;
    switch (op.kind) {
      case TxOp::Kind::kSend: {
        // The link is busy for overhead + latency + serialisation; the
        // payload materialises at the peer afterwards — unless the fault
        // injector eats it (the sender still gets its TX completion).
        wait_scaled_ns(link_.transfer_ns(op.len));
        assert(peer_ != nullptr);
        const bool dropped =
            severed() ||
            (link_.drop_rate > 0.0 && drop_draw() < link_.drop_rate);
        if (dropped) {
          std::lock_guard<std::mutex> slk(stats_mutex_);
          stats_.packets_dropped++;
        } else {
          peer_->deliver(op.src, op.len);
        }
        if (link_.sever_after_packets > 0 &&
            ++sends_executed_ >= link_.sever_after_packets) {
          sever();  // deterministic mid-run link death (fault injection)
        }
        {
          std::lock_guard<std::mutex> slk(stats_mutex_);
          stats_.packets_tx++;
          stats_.bytes_tx += op.len;
        }
        PIOM_TRACE(util::trace::Kind::kPacketTx, 0, op.len);
        std::lock_guard<std::mutex> lk(tx_mutex_);
        tx_cq_.push_back(Completion{Completion::Kind::kSend, op.wrid, op.len});
        tx_cq_size_.fetch_add(1, std::memory_order_release);
        engine_busy_ = false;
        break;
      }
      case TxOp::Kind::kRdmaRead: {
        // Request goes over (latency), peer NIC serves from memory with no
        // host involvement, data streams back (latency + occupancy).
        wait_scaled_ns(2 * static_cast<int64_t>(
                               (link_.latency_us + link_.packet_overhead_us) *
                               1e3) +
                       link_.occupancy_ns(op.len));
        // A read over a severed link (either end) fails without touching
        // either host's memory — the failed completion is the caller's
        // only signal, since no peer host code runs on this path.
        const bool read_failed = severed() || peer_->severed();
        if (!read_failed) {
          std::memcpy(op.dst, op.src, op.len);
          std::lock_guard<std::mutex> slk(peer_->stats_mutex_);
          peer_->stats_.rdma_reads_served++;
        }
        {
          std::lock_guard<std::mutex> slk(stats_mutex_);
          stats_.packets_tx++;  // the read request
          if (!read_failed) stats_.bytes_rx += op.len;
        }
        std::lock_guard<std::mutex> lk(tx_mutex_);
        tx_cq_.push_back(Completion{Completion::Kind::kRdmaRead, op.wrid,
                                    op.len, read_failed});
        tx_cq_size_.fetch_add(1, std::memory_order_release);
        engine_busy_ = false;
        break;
      }
    }
  }
}

}  // namespace piom::simnet
