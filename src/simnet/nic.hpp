// Simulated NIC with a verbs/MX-like host interface.
//
// Each Nic owns an *engine thread* that models the hardware: it serialises
// posted operations, applies the LinkModel cost, and moves the bytes. This
// gives the two properties the paper's evaluation depends on:
//   1. data transfer is asynchronous DMA — it progresses with ZERO host CPU
//      once posted (so sender-side overlap is possible for everyone);
//   2. protocol decisions (matching a rendezvous, posting the data send)
//      need host code to run — and *when* that host code runs is exactly
//      what distinguishes PIOMan from the caller-driven baselines.
//
// RDMA-Read is served entirely by the engine threads: the target host never
// executes a single instruction, which is what lets the baseline engines
// overlap on the sender side only (paper §II-B, [10]).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "simnet/link_model.hpp"
#include "transport/channel.hpp"

namespace piom::simnet {

class Fabric;

/// Completion queue entry (the transport-wide layout; historical alias).
using Completion = transport::Completion;

/// Counters for the Fig-1 aggregation bench and NIC-saturation analysis
/// (the transport-wide layout; historical alias).
using NicStats = transport::ChannelStats;

/// The "simnet" transport backend: a modelled cluster NIC.
class Nic final : public transport::IChannel {
 public:
  ~Nic() override;
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] transport::Backend backend() const override {
    return transport::Backend::kSimnet;
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const LinkModel& link() const { return link_; }
  [[nodiscard]] Nic* peer() const override { return peer_; }

  // ---- host-side API (thread-safe) ----

  /// Post a message send. `buf` must stay valid until the kSend completion
  /// for `wrid` is polled (the engine reads it at transfer time: zero-copy).
  void post_send(const void* buf, std::size_t len, uint64_t wrid) override;

  /// Post a receive buffer of capacity `cap`. Buffers match arrivals in
  /// FIFO order (connected queue pair; message matching is nmad's job).
  void post_recv(void* buf, std::size_t cap, uint64_t wrid) override;

  /// RDMA-Read `len` bytes from the peer's memory at `remote` into `local`.
  /// Served by the engines alone: no peer host CPU involved.
  void post_rdma_read(void* local, const void* remote, std::size_t len,
                      uint64_t wrid) override;

  /// Poll the send/rdma completion queue. True when `out` was filled.
  bool poll_tx(Completion& out) override;

  /// Poll the receive completion queue.
  bool poll_rx(Completion& out) override;

  [[nodiscard]] NicStats stats() const override;

  /// Pending TX descriptors not yet executed by the engine (tests).
  [[nodiscard]] std::size_t tx_backlog() const override;

  /// Block until the engine has executed every posted operation (TX queue
  /// empty and no operation in flight). Used at teardown: after quiescing
  /// this NIC *and its peer*, no engine will touch host buffers again.
  void quiesce() override;

  /// Cut this endpoint off the wire (see IChannel::sever): queued and
  /// future sends are counted as dropped after the modelled wire delay
  /// (still TX-completing, like the drop model), inbound deliveries are
  /// discarded, RDMA reads complete failed without touching memory.
  void sever() override { severed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool severed() const override {
    return severed_.load(std::memory_order_acquire);
  }

  /// Link bandwidth, the strategy layer's stripe weight.
  [[nodiscard]] double bandwidth_GBps() const override {
    return link_.bandwidth_GBps;
  }
  /// Effective small-message one-way latency (wire + per-packet cost).
  [[nodiscard]] double latency_us() const override {
    return link_.latency_us + link_.packet_overhead_us;
  }

 private:
  friend class Fabric;
  Nic(Fabric& fabric, std::string name, LinkModel link);

  struct TxOp {
    enum class Kind : uint8_t { kSend, kRdmaRead } kind = Kind::kSend;
    const void* src = nullptr;   // send: source buffer; rdma: remote address
    void* dst = nullptr;         // rdma: local destination
    std::size_t len = 0;
    uint64_t wrid = 0;
  };

  struct RecvDesc {
    void* buf = nullptr;
    std::size_t cap = 0;
    uint64_t wrid = 0;
  };

  /// An arrival that found no posted receive buffer: staged copy (models
  /// NIC/driver buffering of unexpected eager packets).
  struct StagedArrival {
    std::vector<uint8_t> data;
  };

  void engine_loop();
  /// Deterministic per-NIC PRNG draw in [0,1) for drop decisions.
  double drop_draw();
  void start();
  void stop();
  /// Called by the *peer's* engine to deliver `len` bytes into our RX side.
  void deliver(const void* data, std::size_t len);
  void wait_scaled_ns(int64_t ns) const;

  Fabric& fabric_;
  const std::string name_;
  const LinkModel link_;
  Nic* peer_ = nullptr;

  // TX side (engine input + completions). The atomic size mirrors let
  // hot-polling host threads skip the mutex entirely when a queue is empty
  // (same double-check idea as the task queues' Algorithm 2) — without
  // them, a tight poll loop starves the engine's lock acquisitions.
  mutable std::mutex tx_mutex_;
  std::condition_variable tx_cv_;
  std::deque<TxOp> tx_queue_;
  std::deque<Completion> tx_cq_;
  std::atomic<std::size_t> tx_queue_size_{0};
  std::atomic<std::size_t> tx_cq_size_{0};
  bool engine_busy_ = false;  // op in flight (guarded by tx_mutex_)

  // RX side.
  mutable std::mutex rx_mutex_;
  std::deque<RecvDesc> rx_descs_;
  std::deque<StagedArrival> staged_;
  std::deque<Completion> rx_cq_;
  std::atomic<std::size_t> rx_cq_size_{0};

  mutable std::mutex stats_mutex_;
  NicStats stats_;
  uint64_t rng_state_ = 0;  // engine-thread only
  uint64_t sends_executed_ = 0;  // engine-thread only (sever_after_packets)

  std::atomic<bool> severed_{false};
  std::atomic<bool> running_{false};
  std::thread engine_;
};

}  // namespace piom::simnet
