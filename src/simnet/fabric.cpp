#include "simnet/fabric.hpp"

#include <stdexcept>

namespace piom::simnet {

Fabric::Fabric(double time_scale) : time_scale_(time_scale) {
  if (time_scale <= 0) {
    throw std::invalid_argument("Fabric: time_scale must be positive");
  }
}

std::pair<transport::IChannel*, transport::IChannel*>
Fabric::create_channel_pair(const std::string& name) {
  return create_link(name, default_link_);
}

Fabric::~Fabric() {
  // Stop engines before the NICs are destroyed (unique_ptr order would do
  // it too, but be explicit: no engine may touch a dead peer).
  for (auto& nic : nics_) nic->stop();
}

Nic& Fabric::create_nic(const std::string& name, const LinkModel& link) {
  nics_.push_back(std::unique_ptr<Nic>(new Nic(*this, name, link)));
  Nic& nic = *nics_.back();
  nic.start();
  return nic;
}

void Fabric::connect(Nic& a, Nic& b) {
  if (&a == &b) throw std::invalid_argument("Fabric::connect: self-link");
  if (a.peer_ != nullptr || b.peer_ != nullptr) {
    throw std::logic_error("Fabric::connect: NIC already connected");
  }
  a.peer_ = &b;
  b.peer_ = &a;
}

std::pair<Nic*, Nic*> Fabric::create_link(const std::string& name,
                                          const LinkModel& link) {
  Nic& a = create_nic(name + ".a", link);
  Nic& b = create_nic(name + ".b", link);
  connect(a, b);
  return {&a, &b};
}

}  // namespace piom::simnet
