#include "simnet/fabric.hpp"

#include <stdexcept>

namespace piom::simnet {

Fabric::Fabric(double time_scale, transport::ShmemConfig shmem)
    : time_scale_(time_scale), shmem_(shmem) {
  if (time_scale <= 0) {
    throw std::invalid_argument("Fabric: time_scale must be positive");
  }
}

std::pair<transport::IChannel*, transport::IChannel*>
Fabric::create_channel_pair(const std::string& name) {
  return create_link(name, default_link_);
}

Fabric::~Fabric() {
  // Stop engines before the NICs are destroyed (unique_ptr order would do
  // it too, but be explicit: no engine may touch a dead peer).
  for (auto& nic : nics_) nic->stop();
}

Nic& Fabric::create_nic(const std::string& name, const LinkModel& link) {
  nics_.push_back(std::unique_ptr<Nic>(new Nic(*this, name, link)));
  Nic& nic = *nics_.back();
  nic.start();
  return nic;
}

void Fabric::connect(Nic& a, Nic& b) {
  if (&a == &b) throw std::invalid_argument("Fabric::connect: self-link");
  if (a.peer_ != nullptr || b.peer_ != nullptr) {
    throw std::logic_error("Fabric::connect: NIC already connected");
  }
  a.peer_ = &b;
  b.peer_ = &a;
}

std::pair<Nic*, Nic*> Fabric::create_link(const std::string& name,
                                          const LinkModel& link) {
  Nic& a = create_nic(name + ".a", link);
  Nic& b = create_nic(name + ".b", link);
  connect(a, b);
  return {&a, &b};
}

Fabric::MeshWiring Fabric::create_full_mesh(
    int nodes, int rails_per_pair, const LinkModel& link,
    const std::string& prefix, const transport::BackendPolicy& policy) {
  if (nodes < 2) {
    throw std::invalid_argument("Fabric::create_full_mesh: nodes >= 2");
  }
  if (rails_per_pair < 1) {
    throw std::invalid_argument("Fabric::create_full_mesh: rails >= 1");
  }
  policy.validate(nodes);  // reject malformed policies before wiring anything
  MeshWiring mesh(static_cast<std::size_t>(nodes));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    for (int j = i + 1; j < nodes; ++j) {
      const std::string pair_name =
          prefix + "." + std::to_string(i) + "-" + std::to_string(j);
      auto& fwd =
          mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      auto& rev =
          mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      const transport::PairWiring wiring = policy.wiring(i, j);
      if (wiring != transport::PairWiring::kSimnet) {
        // The shmem fast path is rail 0: the strategy layer sends eager
        // and control traffic on the lowest-latency rail.
        auto [a, b] = shmem_.create_channel_pair(pair_name + ".shm");
        fwd.push_back(a);
        rev.push_back(b);
      }
      if (wiring != transport::PairWiring::kShmem) {
        for (int r = 0; r < rails_per_pair; ++r) {
          auto [a, b] =
              create_link(pair_name + ".r" + std::to_string(r), link);
          fwd.push_back(a);
          rev.push_back(b);
        }
      }
    }
  }
  return mesh;
}

}  // namespace piom::simnet
