// Link cost model for the simulated fabric. Default numbers approximate the
// paper's BORDERLINE cluster interconnect (ConnectX InfiniBand DDR /
// Myri-10G): ~1.5 µs one-way latency, ~1.25 GB/s effective bandwidth.
//
// The absolute values only set the time scale of the latency/overlap
// benchmarks; the paper-shape conclusions (who overlaps, where latency
// degrades) are insensitive to them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace piom::simnet {

struct LinkModel {
  double latency_us = 1.5;        ///< one-way wire+switch latency
  double bandwidth_GBps = 1.25;   ///< serialisation bandwidth
  double packet_overhead_us = 0.3;///< per-packet host/NIC processing cost
  /// Fault injection: probability that a message send is silently lost on
  /// the wire (the sender still sees a TX completion, like a real lossy
  /// fabric). RDMA reads are never dropped (they are NIC-engine served).
  /// Use nmad's reliable mode (SessionConfig::reliable) on lossy links.
  double drop_rate = 0.0;
  /// Fault injection: sever this NIC's TX direction after it has executed
  /// exactly this many sends (0 = never). Deterministic by construction —
  /// same traffic, same death point — modelling a link that dies mid-run
  /// without any external controller (see IChannel::sever for semantics).
  uint64_t sever_after_packets = 0;

  /// Time the link is busy serialising `bytes` (ns), excluding latency.
  [[nodiscard]] int64_t occupancy_ns(std::size_t bytes) const;

  /// Full one-way transfer duration for a message of `bytes` (ns):
  /// overhead + latency + serialisation.
  [[nodiscard]] int64_t transfer_ns(std::size_t bytes) const;

  /// Round-trip control message cost (ns): two small-packet transfers.
  [[nodiscard]] int64_t rtt_ns() const;
};

}  // namespace piom::simnet
