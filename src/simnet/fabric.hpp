// Fabric: owner of the simulated interconnect in one process — the NIC
// model ("simnet" backend, one engine thread per NIC) plus an intra-node
// shared-memory transport ("shmem" backend) for rank pairs that a
// BackendPolicy places on the same node.
//
// A Fabric stands for "the interconnect between the cluster nodes". Create
// NICs, connect them pairwise (one link = one NIC pair), and hand each side
// to a communication library instance. Multirail = one node holding several
// connected channels towards the same peer (possibly of different
// backends); a cluster = one full mesh of links (see create_full_mesh).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simnet/link_model.hpp"
#include "simnet/nic.hpp"
#include "transport/channel.hpp"
#include "transport/shmem.hpp"

namespace piom::simnet {

class Fabric final : public transport::ITransport {
 public:
  /// `time_scale` multiplies every modelled delay (1.0 = realistic ns;
  /// tests may use <1 for speed, >1 to magnify protocol effects). `shmem`
  /// configures the intra-node channels a mesh policy may request.
  explicit Fabric(double time_scale = 1.0, transport::ShmemConfig shmem = {});
  ~Fabric() override;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // ---- ITransport (the "simnet" backend's factory face) ----

  [[nodiscard]] transport::Backend backend() const override {
    return transport::Backend::kSimnet;
  }
  /// Create a connected NIC pair over `default_link()`.
  std::pair<transport::IChannel*, transport::IChannel*> create_channel_pair(
      const std::string& name) override;
  [[nodiscard]] std::size_t channel_count() const override {
    return nics_.size();
  }

  /// Link model used by create_channel_pair (the ITransport entry point,
  /// which has no per-call link parameter).
  void set_default_link(const LinkModel& link) { default_link_ = link; }
  [[nodiscard]] const LinkModel& default_link() const { return default_link_; }

  // ---- simnet-specific construction ----

  /// Create a NIC attached to this fabric. Engine starts immediately.
  Nic& create_nic(const std::string& name, const LinkModel& link = {});

  /// Wire two NICs back-to-back (both directions). Each NIC may be
  /// connected exactly once.
  static void connect(Nic& a, Nic& b);

  /// Convenience: create a connected pair over one link model.
  std::pair<Nic*, Nic*> create_link(const std::string& name,
                                    const LinkModel& link = {});

  // ---- mesh construction (multi-backend) ----

  /// mesh[i][j] = node i's rail channels towards node j (empty when i == j).
  using MeshWiring =
      std::vector<std::vector<std::vector<transport::IChannel*>>>;

  /// Wire `nodes` cluster nodes into a full mesh. `policy` decides each
  /// unordered pair's wiring:
  ///   * kSimnet — `rails_per_pair` dedicated NIC links over `link`, named
  ///     "<prefix>.<i>-<j>.r<k>.{a,b}" (a = lower rank's side);
  ///   * kShmem  — one shared-memory channel, "<prefix>.<i>-<j>.shm.{a,b}";
  ///   * kHybrid — the shmem channel as rail 0, then the NIC rails.
  /// The result satisfies mesh[i][j][k]->peer() == mesh[j][i][k]. Requires
  /// nodes >= 2, rails_per_pair >= 1 and a well-formed policy (validated
  /// before anything is created; throws std::invalid_argument otherwise).
  MeshWiring create_full_mesh(int nodes, int rails_per_pair,
                              const LinkModel& link = {},
                              const std::string& prefix = "mesh",
                              const transport::BackendPolicy& policy = {});

  [[nodiscard]] double time_scale() const { return time_scale_; }
  [[nodiscard]] std::size_t nic_count() const { return nics_.size(); }
  /// The intra-node backend owned by this fabric (meshes draw from it).
  [[nodiscard]] transport::ShmemTransport& shmem() { return shmem_; }

 private:
  double time_scale_;
  LinkModel default_link_{};
  std::vector<std::unique_ptr<Nic>> nics_;
  transport::ShmemTransport shmem_;
};

}  // namespace piom::simnet
