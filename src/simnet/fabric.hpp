// Fabric: owner of the simulated interconnect in one process — the NIC
// model ("simnet" backend, one engine thread per NIC).
//
// A Fabric stands for "the interconnect between the cluster nodes". Create
// NICs, connect them pairwise (one link = one NIC pair), and hand each side
// to a communication library instance. Multirail = one node holding several
// connected channels towards the same peer. Multi-backend construction
// (shmem fast paths, socket channels, full meshes) lives one layer up in
// transport::Cluster — a Fabric is purely the NIC model.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simnet/link_model.hpp"
#include "simnet/nic.hpp"
#include "transport/channel.hpp"

namespace piom::simnet {

class Fabric final : public transport::ITransport {
 public:
  /// `time_scale` multiplies every modelled delay (1.0 = realistic ns;
  /// tests may use <1 for speed, >1 to magnify protocol effects).
  explicit Fabric(double time_scale = 1.0);
  ~Fabric() override;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // ---- ITransport (the "simnet" backend's factory face) ----

  [[nodiscard]] transport::Backend backend() const override {
    return transport::Backend::kSimnet;
  }
  /// Create a connected NIC pair over `default_link()`.
  std::pair<transport::IChannel*, transport::IChannel*> create_channel_pair(
      const std::string& name) override;
  [[nodiscard]] std::size_t channel_count() const override {
    return nics_.size();
  }

  /// Link model used by create_channel_pair (the ITransport entry point,
  /// which has no per-call link parameter).
  void set_default_link(const LinkModel& link) { default_link_ = link; }
  [[nodiscard]] const LinkModel& default_link() const { return default_link_; }

  // ---- simnet-specific construction ----

  /// Create a NIC attached to this fabric. Engine starts immediately.
  Nic& create_nic(const std::string& name, const LinkModel& link = {});

  /// Wire two NICs back-to-back (both directions). Each NIC may be
  /// connected exactly once.
  static void connect(Nic& a, Nic& b);

  /// Convenience: create a connected pair over one link model.
  std::pair<Nic*, Nic*> create_link(const std::string& name,
                                    const LinkModel& link = {});

  [[nodiscard]] double time_scale() const { return time_scale_; }
  [[nodiscard]] std::size_t nic_count() const { return nics_.size(); }

 private:
  double time_scale_;
  LinkModel default_link_{};
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace piom::simnet
