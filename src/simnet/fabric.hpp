// Fabric: owner of the simulated NICs and the global time scale.
//
// A Fabric stands for "the interconnect between the cluster nodes" in one
// process. Create NICs, connect them pairwise (one link = one NIC pair),
// and hand each side to a communication library instance. Multirail = one
// node holding several connected NICs towards the same peer; a cluster =
// one full mesh of links (see create_full_mesh).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simnet/link_model.hpp"
#include "simnet/nic.hpp"

namespace piom::simnet {

class Fabric {
 public:
  /// `time_scale` multiplies every modelled delay (1.0 = realistic ns;
  /// tests may use <1 for speed, >1 to magnify protocol effects).
  explicit Fabric(double time_scale = 1.0);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Create a NIC attached to this fabric. Engine starts immediately.
  Nic& create_nic(const std::string& name, const LinkModel& link = {});

  /// Wire two NICs back-to-back (both directions). Each NIC may be
  /// connected exactly once.
  static void connect(Nic& a, Nic& b);

  /// Convenience: create a connected pair over one link model.
  std::pair<Nic*, Nic*> create_link(const std::string& name,
                                    const LinkModel& link = {});

  /// mesh[i][j] = node i's rail NICs towards node j (empty when i == j).
  using MeshWiring = std::vector<std::vector<std::vector<Nic*>>>;

  /// Wire `nodes` cluster nodes into a full mesh: every unordered pair
  /// gets `rails_per_pair` dedicated links over `link`. NICs are named
  /// "<prefix>.<i>-<j>.r<k>.{a,b}" (a = lower rank's side). The result
  /// satisfies mesh[i][j][k]->peer() == mesh[j][i][k]. Requires
  /// nodes >= 2 and rails_per_pair >= 1.
  MeshWiring create_full_mesh(int nodes, int rails_per_pair,
                              const LinkModel& link = {},
                              const std::string& prefix = "mesh");

  [[nodiscard]] double time_scale() const { return time_scale_; }
  [[nodiscard]] std::size_t nic_count() const { return nics_.size(); }

 private:
  double time_scale_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace piom::simnet
