#include "simnet/link_model.hpp"

namespace piom::simnet {

int64_t LinkModel::occupancy_ns(std::size_t bytes) const {
  // bandwidth_GBps == bytes per ns * 1e0: 1 GB/s == 1 byte/ns.
  const double ns = static_cast<double>(bytes) / bandwidth_GBps;
  return static_cast<int64_t>(ns);
}

int64_t LinkModel::transfer_ns(std::size_t bytes) const {
  return static_cast<int64_t>((packet_overhead_us + latency_us) * 1e3) +
         occupancy_ns(bytes);
}

int64_t LinkModel::rtt_ns() const { return 2 * transfer_ns(0); }

}  // namespace piom::simnet
