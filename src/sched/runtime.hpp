// sched::Runtime — stand-in for the MARCEL thread scheduler the paper hooks
// into. It owns one worker thread per simulated core (pinned to a host CPU
// when permitted) and invokes the TaskManager at the same keypoints MARCEL
// triggers PIOMan:
//   * CPU idleness      — a worker with no application job schedules tasks;
//   * blocking sections — BlockingSection RAII schedules before parking
//                         (paper: "a thread enters a blocking section ...
//                         the task is processed");
//   * timer interrupt   — see sched/timer.hpp: a periodic thread guarantees
//                         progress even when every core runs CPU-hungry jobs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/task_manager.hpp"
#include "topo/machine.hpp"

namespace piom::sched {

struct RuntimeConfig {
  /// Pin worker i to host CPU i (best effort; ignored when the host has
  /// fewer CPUs or pinning is not permitted).
  bool pin_threads = true;
  /// Idle iterations of the pure Algorithm-1 walk before a worker escalates
  /// to work stealing (spin → steal → nap): a core that just ran work polls
  /// its own branch cheaply first; only a persistently dry core starts
  /// scanning victim queues. 0 = steal on the first dry pass.
  int idle_spins_before_steal = 4;
  /// How long an idle worker keeps spinning on schedule() before it naps
  /// (it never naps while reachable queues hold tasks, so polling tasks are
  /// serviced continuously — PIOMan busy-polls on idle cores).
  int idle_spins_before_nap = 256;
  /// Nap length for a fully idle worker (woken early by submit_job).
  std::chrono::microseconds idle_nap{200};
};

/// Worker occupancy, visible to nmad's "find an idle core" offload logic.
enum class WorkerState : uint8_t {
  kIdle = 0,     ///< no application job; polling / napping
  kBusy = 1,     ///< running an application job
  kBlocked = 2,  ///< inside a BlockingSection
};

class Runtime {
 public:
  /// `machine` and `tm` must outlive the runtime. Spawns ncpus() workers.
  Runtime(const topo::Machine& machine, TaskManager& tm,
          RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Enqueue an application ("computation") job on core `cpu`'s worker.
  void submit_job(int cpu, std::function<void()> job);

  /// Simulated-core id of the calling thread: worker index for workers,
  /// -1 for foreign threads.
  [[nodiscard]] static int current_cpu();

  /// Occupancy of core `cpu`.
  [[nodiscard]] WorkerState worker_state(int cpu) const;
  [[nodiscard]] bool is_idle(int cpu) const {
    return worker_state(cpu) == WorkerState::kIdle;
  }

  /// Nearest idle core to `cpu` by topology distance (same cache, then same
  /// chip/NUMA node, then anywhere), excluding `cpu` itself; -1 when every
  /// core is busy. This is §IV-B's submission-offload site search: "the
  /// state of each core is evaluated in order to find an idle core ...
  /// the nearest idle core is specified in the CPU set."
  [[nodiscard]] int find_idle_near(int cpu) const;

  /// One progression step on behalf of the calling thread: uses its own
  /// core when it is a worker, else a thread-hashed core. Returns tasks run.
  int schedule_here();

  /// Number of jobs executed so far (tests).
  [[nodiscard]] uint64_t jobs_run() const {
    return jobs_run_.load(std::memory_order_relaxed);
  }

  /// Wait until every submitted job has finished and all workers are idle.
  void quiesce();

  void stop();  ///< join all workers (idempotent; called by dtor)

  [[nodiscard]] TaskManager& task_manager() { return tm_; }
  [[nodiscard]] const topo::Machine& machine() const { return machine_; }
  [[nodiscard]] int ncpus() const { return machine_.ncpus(); }

 private:
  friend class BlockingSection;

  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> jobs;
    std::atomic<WorkerState> state{WorkerState::kIdle};
    std::atomic<uint64_t> pending_jobs{0};
  };

  void worker_loop(int cpu);
  static void pin_to_host_cpu(int cpu);

  const topo::Machine& machine_;
  TaskManager& tm_;
  RuntimeConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{true};
  std::atomic<uint64_t> jobs_run_{0};
  std::atomic<uint64_t> jobs_submitted_{0};
};

/// RAII blocking-section hook. A thread about to block (e.g. on a request
/// semaphore) wraps the wait in a BlockingSection: the scheduler gets one
/// progression pass, and the thread's core is advertised as available so
/// nmad offloads work to it.
class BlockingSection {
 public:
  explicit BlockingSection(Runtime& rt);
  ~BlockingSection();

  BlockingSection(const BlockingSection&) = delete;
  BlockingSection& operator=(const BlockingSection&) = delete;

 private:
  Runtime& rt_;
  int cpu_;
  WorkerState saved_ = WorkerState::kIdle;
};

}  // namespace piom::sched
