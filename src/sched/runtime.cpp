#include "sched/runtime.hpp"

#include <pthread.h>

#include <functional>

#include "sync/backoff.hpp"
#include "util/log.hpp"

namespace piom::sched {

namespace {
thread_local int tls_current_cpu = -1;
}  // namespace

Runtime::Runtime(const topo::Machine& machine, TaskManager& tm,
                 RuntimeConfig config)
    : machine_(machine), tm_(tm), config_(config) {
  const int n = machine_.ncpus();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int c = 0; c < n; ++c) {
    workers_[static_cast<std::size_t>(c)]->thread =
        std::thread([this, c] { worker_loop(c); });
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::pin_to_host_cpu(int cpu) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || static_cast<unsigned>(cpu) >= hw) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  // Best effort: containers may deny affinity changes.
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    PIOM_LOG_DEBUG("pinning worker %d failed (ignored)", cpu);
  }
}

int Runtime::current_cpu() { return tls_current_cpu; }

void Runtime::worker_loop(int cpu) {
  tls_current_cpu = cpu;
  if (config_.pin_threads) pin_to_host_cpu(cpu);
  Worker& w = *workers_[static_cast<std::size_t>(cpu)];
  int idle_spins = 0;
  while (running_.load(std::memory_order_acquire)) {
    // 1. Application jobs have priority (PIOMan only consumes *holes* in the
    //    schedule; it never steals time from computation).
    std::function<void()> job;
    if (w.pending_jobs.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lk(w.mutex);
      if (!w.jobs.empty()) {
        job = std::move(w.jobs.front());
        w.jobs.pop_front();
        w.pending_jobs.fetch_sub(1, std::memory_order_release);
      }
    }
    if (job) {
      w.state.store(WorkerState::kBusy, std::memory_order_release);
      job();
      w.state.store(WorkerState::kIdle, std::memory_order_release);
      jobs_run_.fetch_add(1, std::memory_order_release);
      idle_spins = 0;
      continue;
    }
    // 2. Idle hook: run communication tasks. Escalation ladder: a freshly
    //    idle core walks only its own branch (Algorithm 1); one that stayed
    //    dry escalates to the stealing walk; a fully idle one naps below.
    const int executed = (idle_spins < config_.idle_spins_before_steal)
                             ? tm_.schedule_from_level(cpu, topo::Level::kCore)
                             : tm_.schedule(cpu);
    if (executed > 0) {
      idle_spins = 0;
      continue;
    }
    // 3. Fully idle. Keep spinning while any queue holds tasks somewhere
    //    (they may become reachable / repeatable polls need servicing),
    //    otherwise nap until a job arrives.
    ++idle_spins;
    if (idle_spins < config_.idle_spins_before_nap ||
        tm_.pending_approx() > 0) {
      sync::cpu_relax();
      continue;
    }
    std::unique_lock<std::mutex> lk(w.mutex);
    w.cv.wait_for(lk, config_.idle_nap, [&] {
      return !w.jobs.empty() || !running_.load(std::memory_order_acquire);
    });
    idle_spins = 0;
  }
  tls_current_cpu = -1;
}

void Runtime::submit_job(int cpu, std::function<void()> job) {
  if (cpu < 0 || cpu >= ncpus()) {
    throw std::out_of_range("Runtime::submit_job: bad cpu");
  }
  Worker& w = *workers_[static_cast<std::size_t>(cpu)];
  {
    std::lock_guard<std::mutex> lk(w.mutex);
    w.jobs.push_back(std::move(job));
    w.pending_jobs.fetch_add(1, std::memory_order_release);
  }
  jobs_submitted_.fetch_add(1, std::memory_order_release);
  w.cv.notify_one();
}

WorkerState Runtime::worker_state(int cpu) const {
  return workers_[static_cast<std::size_t>(cpu)]->state.load(
      std::memory_order_acquire);
}

int Runtime::find_idle_near(int cpu) const {
  // Walk up the topology: try cores sharing the deepest level first.
  topo::CpuSet visited;
  for (const topo::TopoNode* node : machine_.path_to_root(cpu)) {
    for (int c = node->cpus.first(); c >= 0; c = node->cpus.next(c)) {
      if (c == cpu || visited.test(c)) continue;
      visited.set(c);
      const Worker& w = *workers_[static_cast<std::size_t>(c)];
      if (w.state.load(std::memory_order_acquire) == WorkerState::kIdle &&
          w.pending_jobs.load(std::memory_order_acquire) == 0) {
        return c;
      }
    }
  }
  return -1;
}

int Runtime::schedule_here() {
  int cpu = current_cpu();
  if (cpu < 0) {
    // Foreign thread: progress on behalf of a stable thread-hashed core.
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    cpu = static_cast<int>(h % static_cast<std::size_t>(ncpus()));
  }
  return tm_.schedule(cpu);
}

void Runtime::quiesce() {
  sync::Backoff backoff;
  for (;;) {
    if (jobs_run_.load(std::memory_order_acquire) ==
        jobs_submitted_.load(std::memory_order_acquire)) {
      bool all_idle = true;
      for (int c = 0; c < ncpus(); ++c) {
        if (worker_state(c) == WorkerState::kBusy) {
          all_idle = false;
          break;
        }
      }
      if (all_idle) return;
    }
    backoff.spin();
  }
}

void Runtime::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lk(w->mutex);
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

BlockingSection::BlockingSection(Runtime& rt) : rt_(rt), cpu_(Runtime::current_cpu()) {
  // Blocking-call hook: one progression pass before the thread parks, and
  // the core is marked available for offloaded work while we block.
  if (cpu_ >= 0) {
    Runtime::Worker& w = *rt_.workers_[static_cast<std::size_t>(cpu_)];
    saved_ = w.state.exchange(WorkerState::kBlocked, std::memory_order_acq_rel);
  }
  rt_.schedule_here();
}

BlockingSection::~BlockingSection() {
  if (cpu_ >= 0) {
    Runtime::Worker& w = *rt_.workers_[static_cast<std::size_t>(cpu_)];
    w.state.store(saved_, std::memory_order_release);
  }
}

}  // namespace piom::sched
