// Timer-interrupt emulation (paper §III: "Adding hooks at other keypoints of
// the thread scheduling such as timer interrupt or context switches permits
// to ensure a progression of communication").
//
// A real kernel/MARCEL delivers a timer interrupt on every core; on top of
// plain POSIX threads we emulate it with one periodic thread that performs a
// progression pass *on behalf of* one core per tick (round-robin). Without
// this, a machine whose every core runs CPU-hungry jobs that never block
// would deadlock: nobody polls, requests never complete (the paper's exact
// motivation for the timer hook).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "core/task_manager.hpp"

namespace piom::sched {

class TimerHook {
 public:
  /// Starts a ticker calling tm.schedule(round_robin_cpu) every `period`.
  TimerHook(TaskManager& tm, std::chrono::microseconds period);
  ~TimerHook();

  TimerHook(const TimerHook&) = delete;
  TimerHook& operator=(const TimerHook&) = delete;

  void stop();

  /// Number of ticks fired so far.
  [[nodiscard]] uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// Tasks executed from timer context (tests: proves the deadlock-avoidance
  /// path actually runs tasks when all cores are busy).
  [[nodiscard]] uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  TaskManager& tm_;
  std::chrono::microseconds period_;
  std::atomic<bool> running_{true};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::thread thread_;
};

}  // namespace piom::sched
