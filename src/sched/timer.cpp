#include "sched/timer.hpp"

namespace piom::sched {

TimerHook::TimerHook(TaskManager& tm, std::chrono::microseconds period)
    : tm_(tm), period_(period), thread_([this] { loop(); }) {}

TimerHook::~TimerHook() { stop(); }

void TimerHook::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  if (thread_.joinable()) thread_.join();
}

void TimerHook::loop() {
  const int ncpus = tm_.machine().ncpus();
  int rr = 0;
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period_);
    if (!running_.load(std::memory_order_acquire)) break;
    // The "interrupted" core for this tick.
    const int cpu = rr;
    rr = (rr + 1) % ncpus;
    const int n = tm_.schedule(cpu);
    tasks_run_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    ticks_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace piom::sched
