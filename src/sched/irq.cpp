#include "sched/irq.hpp"

namespace piom::sched {

IrqService::IrqService(TaskManager& tm, int home_cpu)
    : tm_(tm), home_cpu_(home_cpu), thread_([this] { loop(); }) {
  tm_.set_urgent_notifier([this] { wakeups_.post(); });
}

IrqService::~IrqService() { stop(); }

void IrqService::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  tm_.set_urgent_notifier({});
  wakeups_.post();  // unblock the service thread
  if (thread_.joinable()) thread_.join();
}

void IrqService::loop() {
  while (true) {
    wakeups_.wait();
    if (!running_.load(std::memory_order_acquire)) {
      // Final sweep so no urgent task is stranded after stop().
      tm_.run_urgent(home_cpu_);
      return;
    }
    const int n = tm_.run_urgent(home_cpu_);
    tasks_run_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  }
}

}  // namespace piom::sched
