// IrqService — out-of-band executor for preemptive tasks (paper §VI:
// "The possibility to use preemptive tasks – that is, tasks that can be
// executed immediately, even on a distant CPU where a thread is computing –
// will also be investigated").
//
// A real implementation would use inter-processor interrupts or signals;
// here a dedicated high-priority service thread parks on a semaphore and is
// woken by TaskManager's urgent notifier the instant a kTaskUrgent task is
// submitted. Latency is one semaphore wake (~µs), independent of what every
// worker core is doing — compare bench_ablation_urgent.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/task_manager.hpp"
#include "sync/semaphore.hpp"

namespace piom::sched {

class IrqService {
 public:
  /// Registers itself as `tm`'s urgent notifier. `home_cpu` is the core id
  /// executions are attributed to (stats only; the service thread is not
  /// one of the workers).
  explicit IrqService(TaskManager& tm, int home_cpu = 0);
  ~IrqService();

  IrqService(const IrqService&) = delete;
  IrqService& operator=(const IrqService&) = delete;

  void stop();

  /// Tasks executed by the service thread so far.
  [[nodiscard]] uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  TaskManager& tm_;
  const int home_cpu_;
  sync::Semaphore wakeups_{0};
  std::atomic<bool> running_{true};
  std::atomic<uint64_t> tasks_run_{0};
  std::thread thread_;
};

}  // namespace piom::sched
