#include "mpi/engine_pioman.hpp"

#include "mpi/coll.hpp"
#include "nmad/wildset.hpp"
#include "util/log.hpp"

namespace piom::mpi {

PiomanEngine::PiomanEngine(nmad::Session& session, PiomanEngineConfig config)
    : session_(session),
      config_(config),
      machine_(topo::Machine::flat(config.workers)),
      tm_(machine_),
      runtime_(machine_, tm_) {
  if (config_.timer) {
    timer_.emplace(tm_, config_.timer_period);
  }
}

PiomanEngine::~PiomanEngine() { shutdown(); }

TaskResult PiomanEngine::poll_trampoline(void* arg) {
  auto* pt = static_cast<PollTask*>(arg);
  if (pt->engine->stopping_.load(std::memory_order_acquire)) {
    return TaskResult::kDone;
  }
  pt->gate->poll_rail(pt->rail);
  // Also flush sends that were queued but whose offload task has not run
  // yet (keeps the pipeline moving under bursts).
  if (pt->gate->pending_sends() > 0) pt->gate->flush();
  // Reliability: the rail-0 poller owns the retransmission timer.
  if (pt->rail == 0) pt->gate->check_retransmits();
  // Collectives progress in the background too: whichever poll task runs
  // after a round's requests complete posts the next round — the caller
  // can compute (or park in wait) through the whole collective.
  pt->engine->advance_colls();
  return TaskResult::kAgain;
}

TaskResult PiomanEngine::flush_trampoline(void* arg) {
  static_cast<SubmitJob*>(arg)->gate->flush();
  return TaskResult::kDone;
}

void PiomanEngine::submit_job_done(Task* task) {
  // Scheduler's final touch: recycle the job (task->arg is the SubmitJob).
  auto* job = static_cast<SubmitJob*>(task->arg);
  job->engine->release_submit_job(job);
}

PiomanEngine::SubmitJob* PiomanEngine::acquire_submit_job() {
  submit_pool_lock_.lock();
  SubmitJob* job = submit_pool_;
  if (job != nullptr) {
    submit_pool_ = job->free_next;
    submit_pool_lock_.unlock();
    job->free_next = nullptr;
    return job;
  }
  submit_pool_lock_.unlock();
  auto owned = std::make_unique<SubmitJob>();
  SubmitJob* raw = owned.get();
  raw->engine = this;
  submit_pool_lock_.lock();
  submit_jobs_.push_back(std::move(owned));
  submit_pool_lock_.unlock();
  return raw;
}

void PiomanEngine::release_submit_job(SubmitJob* job) {
  submit_pool_lock_.lock();
  job->free_next = submit_pool_;
  submit_pool_ = job;
  submit_pool_lock_.unlock();
  submit_jobs_in_flight_.fetch_sub(1, std::memory_order_release);
}

void PiomanEngine::start_progress() {
  if (started_) return;
  started_ = true;
  for (std::size_t g = 0; g < session_.gate_count(); ++g) {
    watch_gate(session_.gate(g));
  }
}

void PiomanEngine::watch_gate(nmad::Gate& gate) {
  // One repeatable polling task per (gate, rail). Paper §IV-B: "In order to
  // maintain polling affinity, the CPU set attached to these tasks contains
  // the cores that share a cache with the current CPU." We spread the tasks
  // across the node and give each the cache-sibling set of its home core.
  poll_lock_.lock();
  if (stopping_.load(std::memory_order_acquire) ||
      !watched_.insert(&gate).second) {
    poll_lock_.unlock();
    return;
  }
  for (int r = 0; r < gate.nrails(); ++r) {
    poll_tasks_.emplace_back();
    PollTask& pt = poll_tasks_.back();
    pt.gate = &gate;
    pt.rail = r;
    pt.engine = this;
    const topo::CpuSet cpus = machine_.siblings_sharing_cache(home_);
    home_ = (home_ + 1) % machine_.ncpus();
    pt.task.init(&poll_trampoline, &pt, cpus,
                 piom::kTaskRepeat | piom::kTaskNotify);
    tm_.submit(&pt.task);
  }
  poll_lock_.unlock();
}

void PiomanEngine::isend(Request& req, nmad::Gate& gate, Tag tag,
                         const void* buf, std::size_t len) {
  req.arm(/*is_send=*/true);
  if (!config_.offload_submission) {
    gate.isend(req.send_req(), tag, buf, len, /*defer=*/false);
    return;
  }
  gate.isend(req.send_req(), tag, buf, len, /*defer=*/true);
  // Submission offload: place the flush task on the nearest idle core; if
  // every core is busy, the global queue gets it (run at the next blocking
  // section / idle hole / timer tick). The task lives in an engine-owned
  // recycled SubmitJob, NOT in the caller's request: the caller may tear
  // its request down the instant the communication completes, even if some
  // other progression path flushed the message before this task ran.
  int cpu = sched::Runtime::current_cpu();
  if (cpu < 0) cpu = 0;
  const int idle = runtime_.find_idle_near(cpu);
  const topo::CpuSet cpus =
      (idle >= 0) ? topo::CpuSet::single(idle) : topo::CpuSet{};
  SubmitJob* job = acquire_submit_job();
  job->gate = &gate;
  job->task.init(&flush_trampoline, job, cpus, piom::kTaskNone);
  job->task.on_done = &submit_job_done;
  submit_jobs_in_flight_.fetch_add(1, std::memory_order_acquire);
  tm_.submit(&job->task);
}

void PiomanEngine::irecv(Request& req, nmad::Gate& gate, Tag tag, void* buf,
                         std::size_t cap) {
  req.arm(/*is_send=*/false);
  gate.irecv(req.recv_req(), tag, buf, cap);
}

void PiomanEngine::irecv_any(Request& req, nmad::WildSet& wilds, Tag tag,
                             void* buf, std::size_t cap) {
  req.arm(/*is_send=*/false);
  wilds.post(req.recv_req(), tag, buf, cap);
}

void PiomanEngine::wait(Request& req) {
  nmad::RequestCore& core = req.req_core();
  if (core.completed()) return;
  // Blocking hook: one progression pass, core advertised as available, then
  // park on the semaphore — the background tasks do the polling. Repeated
  // waits on the same request are fine (wait_done's completed() fast path;
  // the completion token is drained by RequestCore::reset on reuse).
  sched::BlockingSection bs(runtime_);
  core.wait_done();
}

bool PiomanEngine::test(Request& req) {
  if (req.done()) return true;
  // MPI_Test drives progress: contribute one scheduling pass.
  runtime_.schedule_here();
  return req.done();
}

bool PiomanEngine::test_coll(CollOp& op) {
  if (op.done()) return true;
  runtime_.schedule_here();  // one scheduling pass (runs poll tasks)
  advance_colls();
  return op.done();
}

void PiomanEngine::wait_coll(CollOp& op) {
  if (op.done()) return;
  // Park like wait(): the background poll tasks advance the collective's
  // rounds and the finishing sweep posts the completion semaphore.
  sched::BlockingSection bs(runtime_);
  op.core().wait_done();
}

void PiomanEngine::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Outstanding offloaded submissions must run before the workers stop
  // (their tasks reference engine state).
  while (submit_jobs_in_flight_.load(std::memory_order_acquire) > 0) {
    runtime_.schedule_here();
  }
  // Poll tasks observe stopping_ on their next execution and finish. Wait
  // on a snapshot taken under the lock: watch_gate refuses new gates once
  // stopping_ is set (checked under the same lock), so the snapshot is
  // complete; waiting itself must not hold the lock (tasks may be mid-run).
  poll_lock_.lock();
  std::vector<PollTask*> draining;
  draining.reserve(poll_tasks_.size());
  for (PollTask& pt : poll_tasks_) draining.push_back(&pt);
  poll_lock_.unlock();
  for (PollTask* pt : draining) {
    pt->task.wait_done();
  }
  if (timer_) timer_->stop();
  runtime_.stop();
}

}  // namespace piom::mpi
