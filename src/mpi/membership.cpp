#include "mpi/membership.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpi/failure.hpp"
#include "nmad/matcher.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace piom::mpi {

const char* overlay_mode_name(OverlayMode m) {
  switch (m) {
    case OverlayMode::kDense: return "dense";
    case OverlayMode::kSparse: return "sparse";
  }
  return "?";
}

OverlayMode resolve_overlay_mode(const OverlayConfig& config, int nranks) {
  if (config.mode.has_value()) return *config.mode;
  const std::string v = util::env::str("PIOM_OVERLAY", "auto");
  if (v == "dense") return OverlayMode::kDense;
  if (v == "sparse") return OverlayMode::kSparse;
  if (v != "auto") {
    // Junk must not silently pick a topology — a suite forced onto the
    // wrong overlay tests nothing (same rule as $PIOM_TRANSPORT).
    throw std::invalid_argument("PIOM_OVERLAY: expected dense|sparse|auto, got '" +
                                v + "'");
  }
  int threshold = config.sparse_threshold;
  if (threshold <= 0) {
    threshold =
        static_cast<int>(util::env::integer("PIOM_SPARSE_THRESHOLD", 32));
    if (threshold <= 0) threshold = 32;
  }
  return nranks >= threshold ? OverlayMode::kSparse : OverlayMode::kDense;
}

int resolve_overlay_fanout(const OverlayConfig& config) {
  int fanout = config.fanout;
  if (fanout <= 0) {
    fanout = static_cast<int>(util::env::integer("PIOM_FANOUT", 4));
  }
  return std::max(1, fanout);
}

// ---------------------------------------------------------------------------
// ForwardInbox
// ---------------------------------------------------------------------------

ForwardInbox::ForwardInbox(int nranks)
    : nranks_(nranks), dead_(static_cast<std::size_t>(nranks), false) {}

void ForwardInbox::complete_into(nmad::RecvRequest& req, Staged&& msg) {
  const std::size_t n = std::min(msg.data.size(), req.cap);
  if (n != 0) std::memcpy(req.buf, msg.data.data(), n);
  req.received = n;
  req.matched_tag = msg.tag;
  req.matched_seq = msg.fseq;
  req.source = msg.src;
  req.core.complete();
}

void ForwardInbox::fail_request(nmad::RecvRequest& req) {
  req.core.mark_failed();
  req.core.complete();
}

bool ForwardInbox::post_wild(nmad::RecvRequest& req) {
  lock_.lock();
  for (auto it = staged_.begin(); it != staged_.end(); ++it) {
    if (!nmad::recv_tag_matches(req.tag, it->tag)) continue;
    // Same claim protocol as Gate::match_or_post: the CAS arbitrates
    // against sibling gates that may be matching this request right now.
    uint32_t expected = 0;
    if (!req.wild_claim.compare_exchange_strong(expected, 1)) {
      lock_.unlock();
      return true;  // claimed elsewhere — registration is moot
    }
    Staged msg = std::move(*it);
    staged_.erase(it);
    lock_.unlock();
    req.wild_set->purge(req, this);
    complete_into(req, std::move(msg));
    return true;
  }
  wilds_.push_back(&req);
  lock_.unlock();
  return false;
}

void ForwardInbox::remove_expected(nmad::RecvRequest& req) {
  lock_.lock();
  auto it = std::find(wilds_.begin(), wilds_.end(), &req);
  if (it != wilds_.end()) wilds_.erase(it);
  lock_.unlock();
}

bool ForwardInbox::cancel_recv(nmad::RecvRequest& req) {
  lock_.lock();
  auto it = std::find(wilds_.begin(), wilds_.end(), &req);
  if (it != wilds_.end()) {
    uint32_t expected = 0;
    if (!req.wild_claim.compare_exchange_strong(expected, 1)) {
      // A member is completing it right now; drop the stale registration
      // and report "not cancelled" so the caller waits for the completion.
      wilds_.erase(it);
      lock_.unlock();
      return false;
    }
    wilds_.erase(it);
    lock_.unlock();
    req.wild_set->purge(req, this);
    fail_request(req);
    return true;
  }
  auto dit = std::find(directed_.begin(), directed_.end(), &req);
  if (dit != directed_.end()) {
    directed_.erase(dit);
    lock_.unlock();
    fail_request(req);
    return true;
  }
  lock_.unlock();
  return false;
}

void ForwardInbox::post_directed(nmad::RecvRequest& req, int src, Tag tag,
                                 void* buf, std::size_t cap) {
  req.gate = nullptr;
  req.wild_set = nullptr;
  req.port = this;
  req.tag = tag;
  req.buf = buf;
  req.cap = cap;
  req.received = 0;
  req.matched_seq = 0;
  req.matched_tag = 0;
  req.source = src;  // the source filter, replaced by the match itself
  req.wild_claim.store(0, std::memory_order_relaxed);
  req.core.reset();
  if (src < 0 || src >= nranks_) {
    fail_request(req);
    return;
  }
  lock_.lock();
  if (dead_[static_cast<std::size_t>(src)]) {
    lock_.unlock();
    fail_request(req);
    return;
  }
  for (auto it = staged_.begin(); it != staged_.end(); ++it) {
    if (it->src != src || !nmad::recv_tag_matches(tag, it->tag)) continue;
    Staged msg = std::move(*it);
    staged_.erase(it);
    lock_.unlock();
    complete_into(req, std::move(msg));
    return;
  }
  directed_.push_back(&req);
  lock_.unlock();
}

void ForwardInbox::deliver(const nmad::ForwardFrame& frame) {
  if (frame.src < 0 || frame.src >= nranks_) return;
  lock_.lock();
  if (dead_[static_cast<std::size_t>(frame.src)]) {
    lock_.unlock();
    return;  // verdict already delivered — nothing may match this data
  }
  Staged msg;
  if (frame.nfrags <= 1) {
    msg.src = frame.src;
    msg.tag = frame.tag;
    msg.fseq = frame.fseq;
    msg.data.assign(frame.data, frame.data + frame.len);
  } else {
    // Reassembly keyed by (src, fseq). Fragments may arrive out of order
    // (per-hop retransmission on lossy links reorders), so each lands in
    // its own slot; offsets are implied by frag * kForwardChunk.
    auto [it, fresh] = assembling_.try_emplace(
        std::make_pair(frame.src, frame.fseq));
    Assembly& a = it->second;
    if (fresh) {
      a.tag = frame.tag;
      a.frags.resize(frame.nfrags);
    }
    if (frame.frag >= a.frags.size() ||
        !a.frags[frame.frag].empty()) {  // malformed or duplicate
      lock_.unlock();
      return;
    }
    a.frags[frame.frag].assign(frame.data, frame.data + frame.len);
    if (++a.landed < a.frags.size()) {
      lock_.unlock();
      return;
    }
    msg.src = frame.src;
    msg.tag = a.tag;
    msg.fseq = frame.fseq;
    std::size_t total = 0;
    for (const auto& f : a.frags) total += f.size();
    msg.data.reserve(total);
    for (const auto& f : a.frags) {
      msg.data.insert(msg.data.end(), f.begin(), f.end());
    }
    assembling_.erase(it);
  }
  // Match directed receives first (they carry the tighter filter), then
  // any-source registrations — same precedence a Gate's single posted
  // queue gives a directed receive posted before a wildcard.
  for (auto it = directed_.begin(); it != directed_.end(); ++it) {
    nmad::RecvRequest& req = **it;
    if (req.source != msg.src || !nmad::recv_tag_matches(req.tag, msg.tag)) {
      continue;
    }
    directed_.erase(it);
    lock_.unlock();
    complete_into(req, std::move(msg));
    return;
  }
  for (auto it = wilds_.begin(); it != wilds_.end();) {
    nmad::RecvRequest& req = **it;
    if (!nmad::recv_tag_matches(req.tag, msg.tag)) {
      ++it;
      continue;
    }
    uint32_t expected = 0;
    if (!req.wild_claim.compare_exchange_strong(expected, 1)) {
      it = wilds_.erase(it);  // claimed by a sibling gate — stale
      continue;
    }
    wilds_.erase(it);
    lock_.unlock();
    req.wild_set->purge(req, this);
    complete_into(req, std::move(msg));
    return;
  }
  staged_.push_back(std::move(msg));
  lock_.unlock();
}

void ForwardInbox::fail_source(int src) {
  if (src < 0 || src >= nranks_) return;
  lock_.lock();
  if (dead_[static_cast<std::size_t>(src)]) {
    lock_.unlock();
    return;
  }
  dead_[static_cast<std::size_t>(src)] = true;
  // Nothing may ever match a dead peer's data (gate eviction rule).
  for (auto it = staged_.begin(); it != staged_.end();) {
    it = (it->src == src) ? staged_.erase(it) : std::next(it);
  }
  for (auto it = assembling_.begin(); it != assembling_.end();) {
    it = (it->first.first == src) ? assembling_.erase(it) : std::next(it);
  }
  std::vector<nmad::RecvRequest*> failed_directed;
  for (auto it = directed_.begin(); it != directed_.end();) {
    if ((*it)->source == src) {
      failed_directed.push_back(*it);
      it = directed_.erase(it);
    } else {
      ++it;
    }
  }
  // ULFM consistency with Gate::fail_peer: an any-source receive fails on
  // the first dead peer it might have matched. Claim each parked wildcard;
  // lost claims are stale registrations either way.
  std::vector<nmad::RecvRequest*> failed_wilds;
  for (nmad::RecvRequest* req : wilds_) {
    uint32_t expected = 0;
    if (req->wild_claim.compare_exchange_strong(expected, 1)) {
      failed_wilds.push_back(req);
    }
  }
  wilds_.clear();
  lock_.unlock();
  for (nmad::RecvRequest* req : failed_directed) fail_request(*req);
  for (nmad::RecvRequest* req : failed_wilds) {
    req->wild_set->purge(*req, this);
    fail_request(*req);
  }
}

std::size_t ForwardInbox::staged_count() const {
  lock_.lock();
  const std::size_t n = staged_.size();
  lock_.unlock();
  return n;
}

std::size_t ForwardInbox::parked_count() const {
  lock_.lock();
  const std::size_t n = directed_.size() + wilds_.size();
  lock_.unlock();
  return n;
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

Membership::Membership(nmad::Session& session, int rank, int nranks,
                       OverlayMode mode, int fanout)
    : session_(session),
      rank_(rank),
      nranks_(nranks),
      mode_(mode),
      fanout_(fanout),
      gate_(new std::atomic<nmad::Gate*>[static_cast<std::size_t>(nranks)]),
      inbox_(nranks),
      fseq_(new std::atomic<uint64_t>[static_cast<std::size_t>(nranks)]),
      flooded_(static_cast<std::size_t>(nranks), false) {
  for (int r = 0; r < nranks_; ++r) {
    gate_[static_cast<std::size_t>(r)].store(nullptr,
                                             std::memory_order_relaxed);
    fseq_[static_cast<std::size_t>(r)].store(0, std::memory_order_relaxed);
  }
  // Tree shape (meaningful in both modes — the tree collectives read it).
  if (rank_ > 0) parent_ = (rank_ - 1) / fanout_;
  for (int c = fanout_ * rank_ + 1;
       c <= fanout_ * rank_ + fanout_ && c < nranks_; ++c) {
    children_.push_back(c);
  }
  if (sparse()) {
    in_view_.assign(static_cast<std::size_t>(nranks_), false);
    auto add = [&](int peer) {
      if (peer < 0 || peer >= nranks_ || peer == rank_) return;
      if (in_view_[static_cast<std::size_t>(peer)]) return;
      in_view_[static_cast<std::size_t>(peer)] = true;
      view_.push_back(peer);
    };
    add(parent_);
    for (int c : children_) add(c);
    // Ring neighbours: a second, tree-independent path for the death
    // flood, and the wrap-around edge that keeps leaf-to-leaf hop counts
    // bounded.
    add((rank_ + 1) % nranks_);
    add((rank_ + nranks_ - 1) % nranks_);
  }
  wilds_.set_port(&inbox_);
  session_.set_forward_handler(
      [this](const nmad::ForwardFrame& f) { handle_forward(f); });
}

Membership::~Membership() = default;

bool Membership::in_view(int peer) const {
  if (peer < 0 || peer >= nranks_ || peer == rank_) return false;
  if (!sparse()) return true;
  return in_view_[static_cast<std::size_t>(peer)];
}

int Membership::next_hop(int dst) const {
  if (!sparse() || in_view(dst)) return dst;
  // Walk dst's ancestor chain: if some ancestor is one of our children,
  // dst sits in that child's subtree; otherwise route up through our
  // parent. Terminates because the chain reaches the root.
  int a = dst;
  while (a > 0) {
    const int p = (a - 1) / fanout_;
    if (p == rank_) return a;
    a = p;
  }
  return parent_;
}

void Membership::set_connector(GateConnector connector) {
  connector_ = std::move(connector);
}

void Membership::set_on_gate_created(std::function<void(nmad::Gate&)> cb) {
  on_gate_created_ = std::move(cb);
}

void Membership::attach_detector(FailureDetector* fd) {
  fd_.store(fd, std::memory_order_release);
  fd->on_rank_failed([this](int dead) { on_local_failure(dead); });
}

void Membership::establish_view() {
  if (!sparse()) return;
  for (int peer : view_) ensure_gate(peer);
}

nmad::Gate& Membership::ensure_gate(int peer) {
  if (peer < 0 || peer >= nranks_ || peer == rank_) {
    throw std::invalid_argument("Membership::ensure_gate: bad peer");
  }
  nmad::Gate* g =
      gate_[static_cast<std::size_t>(peer)].load(std::memory_order_acquire);
  if (g != nullptr) return *g;
  if (!connector_) {
    throw std::logic_error("Membership::ensure_gate: no connector installed");
  }
  // The connector wires the transport pair and installs BOTH sides' gates
  // (peer first). Deliberately called without install_lock_ held: it takes
  // the cluster's wiring lock and the peer's install lock, each acquired
  // and released in sequence — never nested with ours. Concurrent calls
  // for the same peer are safe because every step is idempotent.
  connector_(peer);
  g = gate_[static_cast<std::size_t>(peer)].load(std::memory_order_acquire);
  if (g == nullptr) {
    throw std::logic_error("Membership::ensure_gate: connector failed");
  }
  return *g;
}

nmad::Gate* Membership::existing_gate(int peer) const {
  if (peer < 0 || peer >= nranks_ || peer == rank_) return nullptr;
  return gate_[static_cast<std::size_t>(peer)].load(std::memory_order_acquire);
}

nmad::Gate& Membership::install_gate(
    int peer, const std::vector<transport::IChannel*>& rails) {
  std::lock_guard<std::mutex> lk(install_lock_);
  nmad::Gate* existing =
      gate_[static_cast<std::size_t>(peer)].load(std::memory_order_relaxed);
  if (existing != nullptr) return *existing;
  nmad::Gate& g = session_.create_gate(rails, peer);
  // A late gate must behave as if it had existed all along: replay every
  // recorded revocation window (a dying collective's NACK guarantee must
  // hold on gates created after the revoke), and adopt an already-issued
  // death verdict before the gate is reachable.
  {
    windows_lock_.lock();
    const auto windows = windows_;
    windows_lock_.unlock();
    for (const auto& [mask, value] : windows) g.revoke_tags(mask, value);
  }
  FailureDetector* fd = fd_.load(std::memory_order_acquire);
  if (fd != nullptr && fd->rank_failed(peer)) g.fail_peer();
  wilds_.add_gate(&g);  // pending any-source receives start covering it
  if (on_gate_created_) on_gate_created_(g);  // engine starts polling it
  // Publish last: a reader that sees the pointer sees a fully wired gate.
  gate_[static_cast<std::size_t>(peer)].store(&g, std::memory_order_release);
  installed_.fetch_add(1, std::memory_order_release);
  return g;
}

void Membership::forward_send(nmad::SendRequest& req, int dst, Tag tag,
                              const void* buf, std::size_t len) {
  req.gate = nullptr;
  req.tag = tag;
  req.buf = buf;
  req.len = len;
  req.rdv = false;
  req.core.reset();
  if (dst < 0 || dst >= nranks_ || dst == rank_) {
    throw std::invalid_argument("Membership::forward_send: bad dst");
  }
  FailureDetector* fd = fd_.load(std::memory_order_acquire);
  if (fd != nullptr && fd->rank_failed(dst)) {
    req.core.mark_failed();
    req.core.complete();
    return;
  }
  const uint64_t fseq = fseq_[static_cast<std::size_t>(dst)].fetch_add(
      1, std::memory_order_relaxed);
  stats_.originated.fetch_add(1, std::memory_order_relaxed);
  // isend_forward error-completes the request itself when the first hop's
  // peer is already declared dead.
  ensure_gate(next_hop(dst)).isend_forward(req, rank_, dst, tag, fseq, buf,
                                           len);
}

void Membership::handle_forward(const nmad::ForwardFrame& frame) {
  if (frame.dst == nmad::kForwardFloodDst) {
    if (frame.tag == kDeathNoticeTag && frame.len >= sizeof(uint32_t)) {
      uint32_t dead = 0;
      std::memcpy(&dead, frame.data, sizeof(dead));
      flood_death(static_cast<int>(dead), frame.via);
      FailureDetector* fd = fd_.load(std::memory_order_acquire);
      // mark_dead_external is idempotent, which is what terminates the
      // epidemic: an already-known verdict neither evicts nor re-floods.
      if (fd != nullptr) fd->mark_dead_external(static_cast<int>(dead));
    } else {
      PIOM_LOG_WARN("membership[%d]: unknown flood frame tag=0x%x", rank_,
                    frame.tag);
    }
    return;
  }
  if (frame.dst == rank_) {
    stats_.delivered.fetch_add(1, std::memory_order_relaxed);
    inbox_.deliver(frame);
    return;
  }
  if (frame.dst < 0 || frame.dst >= nranks_) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    PIOM_LOG_WARN("membership[%d]: dropping forward frame for bad dst %d",
                  rank_, frame.dst);
    return;
  }
  const int next = next_hop(frame.dst);
  FailureDetector* fd = fd_.load(std::memory_order_acquire);
  if (next < 0 ||
      (fd != nullptr &&
       (fd->rank_failed(frame.dst) || fd->rank_failed(next)))) {
    // No route (dead hop / dead destination). The per-hop ack already
    // covered this fragment, so the loss is end-to-end: the origin learns
    // of the death through the detector, not through a send error.
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stats_.relayed.fetch_add(1, std::memory_order_relaxed);
  ensure_gate(next).forward_raw(frame);
}

void Membership::flood_death(int dead, int via) {
  if (!sparse()) return;  // dense ranks detect locally on their own gates
  if (dead < 0 || dead >= nranks_) return;
  flood_lock_.lock();
  if (flooded_[static_cast<std::size_t>(dead)]) {
    flood_lock_.unlock();
    return;
  }
  flooded_[static_cast<std::size_t>(dead)] = true;
  flood_lock_.unlock();
  stats_.death_notices.fetch_add(1, std::memory_order_relaxed);
  const uint32_t payload = static_cast<uint32_t>(dead);
  nmad::ForwardFrame notice;
  notice.src = rank_;
  notice.dst = nmad::kForwardFloodDst;
  notice.tag = kDeathNoticeTag;
  notice.fseq = 0;
  notice.frag = 0;
  notice.nfrags = 1;
  notice.data = reinterpret_cast<const uint8_t*>(&payload);
  notice.len = sizeof(payload);
  FailureDetector* fd = fd_.load(std::memory_order_acquire);
  for (int peer : view_) {
    if (peer == via || peer == dead) continue;
    if (fd != nullptr && fd->rank_failed(peer)) continue;
    ensure_gate(peer).forward_raw(notice);  // no-op on a dead gate
  }
}

void Membership::on_local_failure(int dead) {
  // Messages routed *through* the dead rank are lost; messages *from* it
  // must stop matching (gate-eviction semantics for the forwarded path).
  inbox_.fail_source(dead);
  flood_death(dead, /*via=*/-1);
  FailureDetector* fd = fd_.load(std::memory_order_acquire);
  if (fd == nullptr) return;
  // Isolation rule: when every peer this rank has a gate to is dead, the
  // rank is cut off — in sparse mode it can never hear another heartbeat,
  // so adopt the verdict for everyone rather than hang. The exchange guard
  // keeps the sweep out of the nested callbacks it itself triggers.
  if (isolating_.exchange(true, std::memory_order_acq_rel)) return;
  int installed = 0;
  int dead_peers = 0;
  for (int r = 0; r < nranks_; ++r) {
    if (gate_[static_cast<std::size_t>(r)].load(std::memory_order_acquire) ==
        nullptr) {
      continue;
    }
    ++installed;
    if (fd->rank_failed(r)) ++dead_peers;
  }
  if (installed > 0 && installed == dead_peers) {
    for (int r = 0; r < nranks_; ++r) {
      if (r != rank_) fd->mark_dead_external(r);
    }
  }
  isolating_.store(false, std::memory_order_release);
}

void Membership::revoke_all(Tag mask, Tag value) {
  windows_lock_.lock();
  windows_.emplace_back(mask, value);
  windows_lock_.unlock();
  for (int r = 0; r < nranks_; ++r) {
    nmad::Gate* g =
        gate_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
    if (g != nullptr) g->revoke_tags(mask, value);
  }
}

MembershipStats Membership::stats() const {
  MembershipStats out;
  out.forwards_originated = stats_.originated.load(std::memory_order_relaxed);
  out.forwards_relayed = stats_.relayed.load(std::memory_order_relaxed);
  out.forwards_delivered = stats_.delivered.load(std::memory_order_relaxed);
  out.forwards_dropped = stats_.dropped.load(std::memory_order_relaxed);
  out.death_notices = stats_.death_notices.load(std::memory_order_relaxed);
  return out;
}

}  // namespace piom::mpi
