#include "mpi/world.hpp"

#include <stdexcept>

#include "mpi/engine_globallock.hpp"

namespace piom::mpi {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich-like";
    case EngineKind::kOpenMpiLike: return "openmpi-like";
  }
  return "?";
}

std::vector<int> rank_nodes_from_machine(const topo::Machine& machine,
                                         int nranks) {
  std::vector<int> node_of(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r) {
    const int cpu = r % machine.ncpus();
    // Deepest chip (preferred) or NUMA ancestor of the core; flat
    // machines collapse to one shared node.
    int node = 0;
    for (const topo::TopoNode* t : machine.path_to_root(cpu)) {
      if (t->level == topo::Level::kChip) {
        node = t->index_in_level;
        break;
      }
      if (t->level == topo::Level::kNuma) node = t->index_in_level;
    }
    node_of[static_cast<std::size_t>(r)] = node;
  }
  return node_of;
}

World::World(WorldConfig config) : config_(config) {
  if (config_.nranks < 2) throw std::invalid_argument("World: nranks >= 2");
  if (config_.rails < 1) throw std::invalid_argument("World: rails >= 1");
  const int n = config_.nranks;
  // Explicit rank placement wins; otherwise $PIOM_TRANSPORT picks the
  // backend for every pair (defaulting to all-simnet).
  const transport::BackendPolicy policy =
      config_.policy.node_of.empty() ? transport::BackendPolicy::from_env(n)
                                     : config_.policy;
  fabric_ = std::make_unique<simnet::Fabric>(config_.time_scale,
                                             config_.shmem);
  // Full-mesh wiring: every rank pair gets its policy-selected channels
  // (`rails` dedicated NIC links, a shmem fast path, or both).
  const simnet::Fabric::MeshWiring mesh = fabric_->create_full_mesh(
      n, config_.rails, config_.link, "link", policy);

  sessions_.resize(static_cast<std::size_t>(n));
  engines_.resize(static_cast<std::size_t>(n));
  comms_.resize(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    sessions_[static_cast<std::size_t>(rank)] = std::make_unique<nmad::Session>(
        "rank" + std::to_string(rank), config_.session);
  }
  // One gate per peer per session, indexed by peer rank for Comm routing.
  std::vector<std::vector<nmad::Gate*>> gates_by_rank(
      static_cast<std::size_t>(n),
      std::vector<nmad::Gate*>(static_cast<std::size_t>(n), nullptr));
  for (int rank = 0; rank < n; ++rank) {
    for (int peer = 0; peer < n; ++peer) {
      if (peer == rank) continue;
      gates_by_rank[static_cast<std::size_t>(rank)]
                   [static_cast<std::size_t>(peer)] =
          &sessions_[static_cast<std::size_t>(rank)]->create_gate(
              mesh[static_cast<std::size_t>(rank)]
                  [static_cast<std::size_t>(peer)],
              peer);
    }
  }

  for (int rank = 0; rank < n; ++rank) {
    auto& session = *sessions_[static_cast<std::size_t>(rank)];
    switch (config_.engine) {
      case EngineKind::kPioman: {
        auto engine = std::make_unique<PiomanEngine>(session, config_.pioman);
        engine->start_progress();
        engines_[static_cast<std::size_t>(rank)] = std::move(engine);
        break;
      }
      case EngineKind::kMvapichLike: {
        GlobalLockEngineConfig glc;
        glc.label = "mvapich-like";
        glc.yield_in_wait = false;
        engines_[static_cast<std::size_t>(rank)] =
            std::make_unique<GlobalLockEngine>(session, glc);
        break;
      }
      case EngineKind::kOpenMpiLike: {
        GlobalLockEngineConfig glc;
        glc.label = "openmpi-like";
        glc.yield_in_wait = true;
        engines_[static_cast<std::size_t>(rank)] =
            std::make_unique<GlobalLockEngine>(session, glc);
        break;
      }
    }
  }
  if (config_.failure.enabled) {
    detectors_.resize(static_cast<std::size_t>(n));
    for (int rank = 0; rank < n; ++rank) {
      detectors_[static_cast<std::size_t>(rank)] =
          std::make_unique<FailureDetector>(
              *sessions_[static_cast<std::size_t>(rank)], rank, n,
              config_.failure);
      engines_[static_cast<std::size_t>(rank)]->attach_detector(
          detectors_[static_cast<std::size_t>(rank)].get());
    }
  }
  for (int rank = 0; rank < n; ++rank) {
    comms_[static_cast<std::size_t>(rank)].reset(
        new Comm(rank, engines_[static_cast<std::size_t>(rank)].get(),
                 std::move(gates_by_rank[static_cast<std::size_t>(rank)])));
  }
}

World::~World() { shutdown(); }

void World::shutdown() {
  for (auto& engine : engines_) {
    if (engine) engine->shutdown();
  }
}

void World::check_rank(int rank, const char* who) const {
  if (rank < 0 || rank >= config_.nranks) {
    throw std::out_of_range(std::string(who) + ": rank " +
                            std::to_string(rank));
  }
}

Comm& World::comm(int rank) {
  check_rank(rank, "World::comm");
  return *comms_[static_cast<std::size_t>(rank)];
}

Engine& World::engine(int rank) {
  check_rank(rank, "World::engine");
  return *engines_[static_cast<std::size_t>(rank)];
}

nmad::Session& World::session(int rank) {
  check_rank(rank, "World::session");
  return *sessions_[static_cast<std::size_t>(rank)];
}

FailureDetector* World::detector(int rank) {
  check_rank(rank, "World::detector");
  if (detectors_.empty()) return nullptr;
  return detectors_[static_cast<std::size_t>(rank)].get();
}

void World::kill_rank(int victim) {
  check_rank(victim, "World::kill_rank");
  if (detectors_.empty()) {
    throw std::logic_error(
        "World::kill_rank: needs WorldConfig::failure.enabled (without a "
        "detector, peers of the dead rank would hang forever)");
  }
  // Sever both directions of every channel the victim owns: the mesh pairs
  // each of the victim's endpoints with one survivor endpoint, so this
  // covers the full cut. Severing (not deleting) keeps every buffer and
  // queue alive — in-flight operations drain through the channels' severed
  // paths instead of crashing, exactly like NIC ports going dark.
  nmad::Session& session = *sessions_[static_cast<std::size_t>(victim)];
  for (std::size_t g = 0; g < session.gate_count(); ++g) {
    nmad::Gate& gate = session.gate(g);
    for (int r = 0; r < gate.nrails(); ++r) {
      transport::IChannel& ch = gate.rail_channel(r);
      ch.sever();
      if (ch.peer() != nullptr) ch.peer()->sever();
    }
  }
}

void Comm::check_peer(int peer, const char* who) const {
  if (peer < 0 || peer >= size() || peer == rank_) {
    throw std::invalid_argument(std::string(who) + ": bad peer rank " +
                                std::to_string(peer));
  }
}

nmad::Gate& Comm::gate_to(int peer) {
  check_peer(peer, "Comm::gate_to");
  return *gates_[static_cast<std::size_t>(peer)];
}

void Comm::check_app_tag(Tag tag, bool is_recv, const char* who) const {
  if (is_recv && tag == kAnyTag) return;
  if (nmad::tag_is_reserved(tag)) {
    throw std::invalid_argument(std::string(who) +
                                ": tag in reserved (collective) space");
  }
}

void Comm::isend(Request& req, int dst, Tag tag, const void* buf,
                 std::size_t len) {
  check_app_tag(tag, /*is_recv=*/false, "Comm::isend");
  isend_reserved(req, dst, tag, buf, len);
}

void Comm::irecv(Request& req, int src, Tag tag, void* buf, std::size_t cap) {
  check_app_tag(tag, /*is_recv=*/true, "Comm::irecv");
  irecv_reserved(req, src, tag, buf, cap);
}

void Comm::isend_reserved(Request& req, int dst, Tag tag, const void* buf,
                          std::size_t len) {
  check_peer(dst, "Comm::isend");
  engine_->isend(req, *gates_[static_cast<std::size_t>(dst)], tag, buf, len);
}

void Comm::irecv_reserved(Request& req, int src, Tag tag, void* buf,
                          std::size_t cap) {
  if (src == kAnySource) {
    engine_->irecv_any(req, gates_, tag, buf, cap);
    return;
  }
  check_peer(src, "Comm::irecv");
  engine_->irecv(req, *gates_[static_cast<std::size_t>(src)], tag, buf, cap);
}

void Comm::revoke_coll_epoch(uint32_t epoch) {
  for (nmad::Gate* g : gates_) {
    if (g == nullptr) continue;
    g->revoke_tags(kCollEpochWindowMask, coll_epoch_window(epoch));
  }
}

void Comm::send(int dst, Tag tag, const void* buf, std::size_t len) {
  Request req;
  isend(req, dst, tag, buf, len);
  wait(req);
}

void Comm::recv(int src, Tag tag, void* buf, std::size_t cap) {
  Request req;
  irecv(req, src, tag, buf, cap);
  wait(req);
}

bool Comm::rank_failed(int rank) const {
  const FailureDetector* fd = engine_->detector();
  return fd != nullptr && fd->rank_failed(rank);
}

std::vector<int> Comm::failed_ranks() const {
  const FailureDetector* fd = engine_->detector();
  if (fd == nullptr) return {};
  return fd->failed_ranks();
}

void Comm::on_rank_failed(std::function<void(int)> cb) {
  FailureDetector* fd = engine_->detector();
  if (fd != nullptr) fd->on_rank_failed(std::move(cb));
}

bool Comm::cancel(Request& req) {
  if (!req.active() || req.is_send() || req.done()) return false;
  nmad::RecvRequest& rr = req.recv_req();
  if (rr.wild_gates != nullptr) {
    // Any-source: whichever gate still holds the registration cancels it;
    // all-false means an arrival claimed the request concurrently.
    for (nmad::Gate* g : *rr.wild_gates) {
      if (g != nullptr && g->cancel_recv(rr)) return true;
    }
    return false;
  }
  if (rr.gate == nullptr) return false;
  return rr.gate->cancel_recv(rr);
}

}  // namespace piom::mpi
