#include "mpi/world.hpp"

#include <stdexcept>

#include "mpi/local_rank.hpp"
#include "nmad/wildset.hpp"

namespace piom::mpi {

std::vector<int> rank_nodes_from_machine(const topo::Machine& machine,
                                         int nranks) {
  std::vector<int> node_of(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r) {
    const int cpu = r % machine.ncpus();
    // Deepest chip (preferred) or NUMA ancestor of the core; flat
    // machines collapse to one shared node.
    int node = 0;
    for (const topo::TopoNode* t : machine.path_to_root(cpu)) {
      if (t->level == topo::Level::kChip) {
        node = t->index_in_level;
        break;
      }
      if (t->level == topo::Level::kNuma) node = t->index_in_level;
    }
    node_of[static_cast<std::size_t>(r)] = node;
  }
  return node_of;
}

World::World(WorldConfig config) : config_(config) {
  if (config_.nranks < 2) throw std::invalid_argument("World: nranks >= 2");
  if (config_.rails < 1) throw std::invalid_argument("World: rails >= 1");
  const int n = config_.nranks;
  // Explicit rank placement wins; otherwise $PIOM_TRANSPORT picks the
  // backend for every pair (defaulting to all-simnet).
  const transport::BackendPolicy policy =
      config_.policy.node_of.empty() ? transport::BackendPolicy::from_env(n)
                                     : config_.policy;
  transport::ClusterConfig cc;
  cc.time_scale = config_.time_scale;
  cc.shmem = config_.shmem;
  cc.tcp = config_.tcp;
  cluster_ = std::make_unique<transport::Cluster>(cc);
  // Lazy wiring: declare the mesh, create a pair's policy-selected channels
  // (`rails` dedicated NIC links, a shmem fast path, a socket, or a mix)
  // only when some rank first talks to the peer (connect_pair below).
  cluster_->init_lazy_mesh(n, config_.rails, config_.link, "link", policy);

  RankConfig rc;
  rc.engine = config_.engine;
  rc.session = config_.session;
  rc.pioman = config_.pioman;
  rc.failure = config_.failure;
  rc.overlay = config_.overlay;
  const std::vector<std::vector<transport::IChannel*>> no_rails(
      static_cast<std::size_t>(n));
  ranks_.reserve(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    ranks_.push_back(std::make_unique<LocalRank>(rank, n, no_rails, rc));
  }
  // Connectors go in only after EVERY rank's engine and detector exist:
  // the first connect_pair installs gates on both endpoints, and a
  // half-initialised peer must not receive one.
  for (int rank = 0; rank < n; ++rank) {
    ranks_[static_cast<std::size_t>(rank)]->membership().set_connector(
        [this, rank](int peer) { connect_pair(rank, peer); });
  }
  const OverlayMode mode = resolve_overlay_mode(config_.overlay, n);
  if (mode == OverlayMode::kSparse) {
    // The sparse view carries heartbeats and the death flood, so its gates
    // must exist before the application's first silence window.
    for (auto& rank : ranks_) rank->membership().establish_view();
  } else if (config_.failure.enabled) {
    // Dense + failure detection: establish the full mesh eagerly. The
    // detector only times out peers it has gates to, so lazy wiring would
    // silently shrink its coverage to the pairs that happened to talk.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) connect_pair(i, j);
    }
  }
}

World::~World() { shutdown(); }

void World::shutdown() {
  for (auto& rank : ranks_) {
    if (rank) rank->shutdown();
  }
}

std::unique_ptr<LocalRank> World::local(transport::Bootstrap bootstrap,
                                        const RankConfig& config) {
  return std::make_unique<LocalRank>(std::move(bootstrap), config);
}

void World::check_rank(int rank, const char* who) const {
  if (rank < 0 || rank >= config_.nranks) {
    throw std::out_of_range(std::string(who) + ": rank " +
                            std::to_string(rank));
  }
}

Comm& World::comm(int rank) {
  check_rank(rank, "World::comm");
  return ranks_[static_cast<std::size_t>(rank)]->comm();
}

LocalRank& World::local_rank(int rank) {
  check_rank(rank, "World::local_rank");
  return *ranks_[static_cast<std::size_t>(rank)];
}

const std::vector<transport::IChannel*>& World::pair_channels(int rank,
                                                              int peer) {
  check_rank(rank, "World::pair_channels");
  check_rank(peer, "World::pair_channels");
  if (rank == peer) {
    throw std::invalid_argument("World::pair_channels: rank == peer");
  }
  return cluster_->pair_rails(rank, peer);
}

void World::connect_pair(int rank, int peer) {
  // Wire the transport first (both directions land together — pair_rails
  // creates the unordered pair), then install the PEER's gate before the
  // initiator's: the peer's engine must be polling its side before the
  // initiator's first packet can arrive. Every step is idempotent, so
  // concurrent connects for the same pair (both ends first-messaging each
  // other at once) are safe.
  const std::vector<transport::IChannel*>& fwd = cluster_->pair_rails(rank, peer);
  const std::vector<transport::IChannel*>& rev = cluster_->pair_rails(peer, rank);
  ranks_[static_cast<std::size_t>(peer)]->membership().install_gate(rank, rev);
  ranks_[static_cast<std::size_t>(rank)]->membership().install_gate(peer, fwd);
  // kill_rank handshake: it inserts the victim into killed_ BEFORE sweeping
  // existing pairs, and we wire BEFORE checking — whichever order the race
  // resolves in, either its sweep sees our pair or our check sees its
  // victim, so a lazily wired pair can never outlive a kill.
  std::lock_guard<std::mutex> lk(killed_lock_);
  if (killed_.count(rank) == 0 && killed_.count(peer) == 0) return;
  for (const std::vector<transport::IChannel*>* rails : {&fwd, &rev}) {
    for (transport::IChannel* ch : *rails) {
      ch->sever();
      if (ch->peer() != nullptr) ch->peer()->sever();
    }
  }
}

Engine& World::engine(int rank) {
  check_rank(rank, "World::engine");
  return ranks_[static_cast<std::size_t>(rank)]->engine();
}

nmad::Session& World::session(int rank) {
  check_rank(rank, "World::session");
  return ranks_[static_cast<std::size_t>(rank)]->session();
}

FailureDetector* World::detector(int rank) {
  check_rank(rank, "World::detector");
  return ranks_[static_cast<std::size_t>(rank)]->detector();
}

void World::kill_rank(int victim) {
  check_rank(victim, "World::kill_rank");
  if (!config_.failure.enabled) {
    throw std::logic_error(
        "World::kill_rank: needs WorldConfig::failure.enabled (without a "
        "detector, peers of the dead rank would hang forever)");
  }
  // Record the victim FIRST, then sever: a connect_pair racing this call
  // either wires before our sweep (we sever it below) or checks killed_
  // after our insert (it severs its own pair). See connect_pair.
  {
    std::lock_guard<std::mutex> lk(killed_lock_);
    killed_.insert(victim);
  }
  // Sever both directions of every channel the victim owns: each wired
  // pair joins one victim endpoint with one survivor endpoint, so this
  // covers the full cut. Severing (not deleting) keeps every buffer and
  // queue alive — in-flight operations drain through the channels' severed
  // paths instead of crashing, exactly like NIC ports going dark. Pairs
  // that were never wired need nothing: they have no channels to cut, and
  // connect_pair severs any wired later.
  for (int peer = 0; peer < config_.nranks; ++peer) {
    if (peer == victim) continue;
    const std::vector<transport::IChannel*>* rails =
        cluster_->existing_pair_rails(victim, peer);
    if (rails == nullptr) continue;
    for (transport::IChannel* ch : *rails) {
      ch->sever();
      if (ch->peer() != nullptr) ch->peer()->sever();
    }
  }
}

void Comm::check_peer(int peer, const char* who) const {
  if (peer < 0 || peer >= size() || peer == rank_) {
    throw std::invalid_argument(std::string(who) + ": bad peer rank " +
                                std::to_string(peer));
  }
}

nmad::Gate& Comm::gate_to(int peer) {
  check_peer(peer, "Comm::gate_to");
  return membership_->ensure_gate(peer);
}

void Comm::check_app_tag(Tag tag, bool is_recv, const char* who) const {
  if (is_recv && tag == kAnyTag) return;
  if (nmad::tag_is_reserved(tag)) {
    throw std::invalid_argument(std::string(who) +
                                ": tag in reserved (collective) space");
  }
}

void Comm::isend(Request& req, int dst, Tag tag, const void* buf,
                 std::size_t len) {
  check_app_tag(tag, /*is_recv=*/false, "Comm::isend");
  check_peer(dst, "Comm::isend");
  // Sparse overlay: application traffic towards a peer outside the view is
  // forwarded along the tree instead of opening a direct gate. Both
  // endpoints of a non-view pair take this path (in_view is symmetric), so
  // the matching receive is parked in the peer's forward inbox — never on
  // a gate only one side knows about.
  if (membership_->sparse() && !membership_->in_view(dst)) {
    req.arm(/*is_send=*/true);
    membership_->forward_send(req.send_req(), dst, tag, buf, len);
    engine_->progress();  // kick caller-driven engines at the first hop
    return;
  }
  isend_reserved(req, dst, tag, buf, len);
}

void Comm::irecv(Request& req, int src, Tag tag, void* buf, std::size_t cap) {
  check_app_tag(tag, /*is_recv=*/true, "Comm::irecv");
  if (src != kAnySource && membership_->sparse() &&
      !membership_->in_view(src)) {
    check_peer(src, "Comm::irecv");
    req.arm(/*is_send=*/false);
    membership_->inbox().post_directed(req.recv_req(), src, tag, buf, cap);
    engine_->progress();
    return;
  }
  irecv_reserved(req, src, tag, buf, cap);
}

void Comm::isend_reserved(Request& req, int dst, Tag tag, const void* buf,
                          std::size_t len) {
  check_peer(dst, "Comm::isend");
  // Reserved-tag (collective/internal) traffic is always direct, even in
  // sparse mode: the tree collectives only ever address view peers, and
  // the few off-view edges (a non-zero bcast root's hand-off to rank 0)
  // would deadlock the relays if they themselves rode the forward path.
  engine_->isend(req, membership_->ensure_gate(dst), tag, buf, len);
}

void Comm::irecv_reserved(Request& req, int src, Tag tag, void* buf,
                          std::size_t cap) {
  if (src == kAnySource) {
    engine_->irecv_any(req, membership_->wilds(), tag, buf, cap);
    return;
  }
  check_peer(src, "Comm::irecv");
  engine_->irecv(req, membership_->ensure_gate(src), tag, buf, cap);
}

void Comm::revoke_coll_epoch(uint32_t epoch) {
  // Through the membership, so the revocation also reaches gates that are
  // created after this call (a late gate replays recorded windows).
  membership_->revoke_all(kCollEpochWindowMask, coll_epoch_window(epoch));
}

void Comm::send(int dst, Tag tag, const void* buf, std::size_t len) {
  Request req;
  isend(req, dst, tag, buf, len);
  wait(req);
}

void Comm::recv(int src, Tag tag, void* buf, std::size_t cap) {
  Request req;
  irecv(req, src, tag, buf, cap);
  wait(req);
}

bool Comm::rank_failed(int rank) const {
  const FailureDetector* fd = engine_->detector();
  return fd != nullptr && fd->rank_failed(rank);
}

std::vector<int> Comm::failed_ranks() const {
  const FailureDetector* fd = engine_->detector();
  if (fd == nullptr) return {};
  return fd->failed_ranks();
}

void Comm::on_rank_failed(std::function<void(int)> cb) {
  FailureDetector* fd = engine_->detector();
  if (fd != nullptr) fd->on_rank_failed(std::move(cb));
}

bool Comm::cancel(Request& req) {
  if (!req.active() || req.is_send() || req.done()) return false;
  nmad::RecvRequest& rr = req.recv_req();
  if (rr.wild_set != nullptr) {
    // Any-source: whichever registry member still holds the registration
    // cancels it; false means an arrival claimed the request concurrently.
    return rr.wild_set->cancel(rr);
  }
  if (rr.port != nullptr) {
    // Directed receive parked in the forward inbox (sparse non-view src).
    return rr.port->cancel_recv(rr);
  }
  if (rr.gate == nullptr) return false;
  return rr.gate->cancel_recv(rr);
}

}  // namespace piom::mpi
