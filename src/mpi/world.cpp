#include "mpi/world.hpp"

#include <stdexcept>

#include "mpi/engine_globallock.hpp"

namespace piom::mpi {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich-like";
    case EngineKind::kOpenMpiLike: return "openmpi-like";
  }
  return "?";
}

World::World(WorldConfig config) : config_(config) {
  if (config_.rails < 1) throw std::invalid_argument("World: rails >= 1");
  fabric_ = std::make_unique<simnet::Fabric>(config_.time_scale);
  std::vector<simnet::Nic*> rails0;
  std::vector<simnet::Nic*> rails1;
  for (int r = 0; r < config_.rails; ++r) {
    auto [a, b] = fabric_->create_link("rail" + std::to_string(r), config_.link);
    rails0.push_back(a);
    rails1.push_back(b);
  }
  sessions_[0] = std::make_unique<nmad::Session>("rank0", config_.session);
  sessions_[1] = std::make_unique<nmad::Session>("rank1", config_.session);
  nmad::Gate& gate0 = sessions_[0]->create_gate(rails0);
  nmad::Gate& gate1 = sessions_[1]->create_gate(rails1);

  for (int rank = 0; rank < 2; ++rank) {
    switch (config_.engine) {
      case EngineKind::kPioman: {
        auto engine = std::make_unique<PiomanEngine>(*sessions_[rank],
                                                     config_.pioman);
        engine->start_progress();
        engines_[rank] = std::move(engine);
        break;
      }
      case EngineKind::kMvapichLike: {
        GlobalLockEngineConfig glc;
        glc.label = "mvapich-like";
        glc.yield_in_wait = false;
        engines_[rank] =
            std::make_unique<GlobalLockEngine>(*sessions_[rank], glc);
        break;
      }
      case EngineKind::kOpenMpiLike: {
        GlobalLockEngineConfig glc;
        glc.label = "openmpi-like";
        glc.yield_in_wait = true;
        engines_[rank] =
            std::make_unique<GlobalLockEngine>(*sessions_[rank], glc);
        break;
      }
    }
  }
  comms_[0].reset(new Comm(0, engines_[0].get(), &gate0));
  comms_[1].reset(new Comm(1, engines_[1].get(), &gate1));
}

World::~World() { shutdown(); }

void World::shutdown() {
  for (auto& engine : engines_) {
    if (engine) engine->shutdown();
  }
}

Comm& World::comm(int rank) {
  if (rank < 0 || rank > 1) throw std::out_of_range("World::comm: rank");
  return *comms_[rank];
}

Engine& World::engine(int rank) {
  if (rank < 0 || rank > 1) throw std::out_of_range("World::engine: rank");
  return *engines_[rank];
}

nmad::Session& World::session(int rank) {
  if (rank < 0 || rank > 1) throw std::out_of_range("World::session: rank");
  return *sessions_[rank];
}

void Comm::isend(Request& req, int dst, Tag tag, const void* buf,
                 std::size_t len) {
  if (dst != 1 - rank_) throw std::invalid_argument("Comm::isend: bad dst");
  engine_->isend(req, *gate_, tag, buf, len);
}

void Comm::irecv(Request& req, int src, Tag tag, void* buf, std::size_t cap) {
  if (src != 1 - rank_) throw std::invalid_argument("Comm::irecv: bad src");
  engine_->irecv(req, *gate_, tag, buf, cap);
}

void Comm::send(int dst, Tag tag, const void* buf, std::size_t len) {
  Request req;
  isend(req, dst, tag, buf, len);
  wait(req);
}

void Comm::recv(int src, Tag tag, void* buf, std::size_t cap) {
  Request req;
  irecv(req, src, tag, buf, cap);
  wait(req);
}

}  // namespace piom::mpi
