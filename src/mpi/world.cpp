#include "mpi/world.hpp"

#include <stdexcept>

#include "mpi/local_rank.hpp"

namespace piom::mpi {

std::vector<int> rank_nodes_from_machine(const topo::Machine& machine,
                                         int nranks) {
  std::vector<int> node_of(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r) {
    const int cpu = r % machine.ncpus();
    // Deepest chip (preferred) or NUMA ancestor of the core; flat
    // machines collapse to one shared node.
    int node = 0;
    for (const topo::TopoNode* t : machine.path_to_root(cpu)) {
      if (t->level == topo::Level::kChip) {
        node = t->index_in_level;
        break;
      }
      if (t->level == topo::Level::kNuma) node = t->index_in_level;
    }
    node_of[static_cast<std::size_t>(r)] = node;
  }
  return node_of;
}

World::World(WorldConfig config) : config_(config) {
  if (config_.nranks < 2) throw std::invalid_argument("World: nranks >= 2");
  if (config_.rails < 1) throw std::invalid_argument("World: rails >= 1");
  const int n = config_.nranks;
  // Explicit rank placement wins; otherwise $PIOM_TRANSPORT picks the
  // backend for every pair (defaulting to all-simnet).
  const transport::BackendPolicy policy =
      config_.policy.node_of.empty() ? transport::BackendPolicy::from_env(n)
                                     : config_.policy;
  transport::ClusterConfig cc;
  cc.time_scale = config_.time_scale;
  cc.shmem = config_.shmem;
  cc.tcp = config_.tcp;
  cluster_ = std::make_unique<transport::Cluster>(cc);
  // Full-mesh wiring: every rank pair gets its policy-selected channels
  // (`rails` dedicated NIC links, a shmem fast path, a socket, or a mix).
  mesh_ = cluster_->create_full_mesh(n, config_.rails, config_.link, "link",
                                     policy);

  RankConfig rc;
  rc.engine = config_.engine;
  rc.session = config_.session;
  rc.pioman = config_.pioman;
  rc.failure = config_.failure;
  ranks_.reserve(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    ranks_.push_back(std::make_unique<LocalRank>(
        rank, n, mesh_[static_cast<std::size_t>(rank)], rc));
  }
}

World::~World() { shutdown(); }

void World::shutdown() {
  for (auto& rank : ranks_) {
    if (rank) rank->shutdown();
  }
}

std::unique_ptr<LocalRank> World::local(transport::Bootstrap bootstrap,
                                        const RankConfig& config) {
  return std::make_unique<LocalRank>(std::move(bootstrap), config);
}

void World::check_rank(int rank, const char* who) const {
  if (rank < 0 || rank >= config_.nranks) {
    throw std::out_of_range(std::string(who) + ": rank " +
                            std::to_string(rank));
  }
}

Comm& World::comm(int rank) {
  check_rank(rank, "World::comm");
  return ranks_[static_cast<std::size_t>(rank)]->comm();
}

LocalRank& World::local_rank(int rank) {
  check_rank(rank, "World::local_rank");
  return *ranks_[static_cast<std::size_t>(rank)];
}

const std::vector<transport::IChannel*>& World::pair_channels(
    int rank, int peer) const {
  check_rank(rank, "World::pair_channels");
  check_rank(peer, "World::pair_channels");
  return mesh_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(peer)];
}

Engine& World::engine(int rank) {
  check_rank(rank, "World::engine");
  return ranks_[static_cast<std::size_t>(rank)]->engine();
}

nmad::Session& World::session(int rank) {
  check_rank(rank, "World::session");
  return ranks_[static_cast<std::size_t>(rank)]->session();
}

FailureDetector* World::detector(int rank) {
  check_rank(rank, "World::detector");
  return ranks_[static_cast<std::size_t>(rank)]->detector();
}

void World::kill_rank(int victim) {
  check_rank(victim, "World::kill_rank");
  if (!config_.failure.enabled) {
    throw std::logic_error(
        "World::kill_rank: needs WorldConfig::failure.enabled (without a "
        "detector, peers of the dead rank would hang forever)");
  }
  // Sever both directions of every channel the victim owns: the mesh pairs
  // each of the victim's endpoints with one survivor endpoint, so this
  // covers the full cut. Severing (not deleting) keeps every buffer and
  // queue alive — in-flight operations drain through the channels' severed
  // paths instead of crashing, exactly like NIC ports going dark.
  nmad::Session& session = ranks_[static_cast<std::size_t>(victim)]->session();
  for (std::size_t g = 0; g < session.gate_count(); ++g) {
    nmad::Gate& gate = session.gate(g);
    for (int r = 0; r < gate.nrails(); ++r) {
      transport::IChannel& ch = gate.rail_channel(r);
      ch.sever();
      if (ch.peer() != nullptr) ch.peer()->sever();
    }
  }
}

void Comm::check_peer(int peer, const char* who) const {
  if (peer < 0 || peer >= size() || peer == rank_) {
    throw std::invalid_argument(std::string(who) + ": bad peer rank " +
                                std::to_string(peer));
  }
}

nmad::Gate& Comm::gate_to(int peer) {
  check_peer(peer, "Comm::gate_to");
  return *gates_[static_cast<std::size_t>(peer)];
}

void Comm::check_app_tag(Tag tag, bool is_recv, const char* who) const {
  if (is_recv && tag == kAnyTag) return;
  if (nmad::tag_is_reserved(tag)) {
    throw std::invalid_argument(std::string(who) +
                                ": tag in reserved (collective) space");
  }
}

void Comm::isend(Request& req, int dst, Tag tag, const void* buf,
                 std::size_t len) {
  check_app_tag(tag, /*is_recv=*/false, "Comm::isend");
  isend_reserved(req, dst, tag, buf, len);
}

void Comm::irecv(Request& req, int src, Tag tag, void* buf, std::size_t cap) {
  check_app_tag(tag, /*is_recv=*/true, "Comm::irecv");
  irecv_reserved(req, src, tag, buf, cap);
}

void Comm::isend_reserved(Request& req, int dst, Tag tag, const void* buf,
                          std::size_t len) {
  check_peer(dst, "Comm::isend");
  engine_->isend(req, *gates_[static_cast<std::size_t>(dst)], tag, buf, len);
}

void Comm::irecv_reserved(Request& req, int src, Tag tag, void* buf,
                          std::size_t cap) {
  if (src == kAnySource) {
    engine_->irecv_any(req, gates_, tag, buf, cap);
    return;
  }
  check_peer(src, "Comm::irecv");
  engine_->irecv(req, *gates_[static_cast<std::size_t>(src)], tag, buf, cap);
}

void Comm::revoke_coll_epoch(uint32_t epoch) {
  for (nmad::Gate* g : gates_) {
    if (g == nullptr) continue;
    g->revoke_tags(kCollEpochWindowMask, coll_epoch_window(epoch));
  }
}

void Comm::send(int dst, Tag tag, const void* buf, std::size_t len) {
  Request req;
  isend(req, dst, tag, buf, len);
  wait(req);
}

void Comm::recv(int src, Tag tag, void* buf, std::size_t cap) {
  Request req;
  irecv(req, src, tag, buf, cap);
  wait(req);
}

bool Comm::rank_failed(int rank) const {
  const FailureDetector* fd = engine_->detector();
  return fd != nullptr && fd->rank_failed(rank);
}

std::vector<int> Comm::failed_ranks() const {
  const FailureDetector* fd = engine_->detector();
  if (fd == nullptr) return {};
  return fd->failed_ranks();
}

void Comm::on_rank_failed(std::function<void(int)> cb) {
  FailureDetector* fd = engine_->detector();
  if (fd != nullptr) fd->on_rank_failed(std::move(cb));
}

bool Comm::cancel(Request& req) {
  if (!req.active() || req.is_send() || req.done()) return false;
  nmad::RecvRequest& rr = req.recv_req();
  if (rr.wild_gates != nullptr) {
    // Any-source: whichever gate still holds the registration cancels it;
    // all-false means an arrival claimed the request concurrently.
    for (nmad::Gate* g : *rr.wild_gates) {
      if (g != nullptr && g->cancel_recv(rr)) return true;
    }
    return false;
  }
  if (rr.gate == nullptr) return false;
  return rr.gate->cancel_recv(rr);
}

}  // namespace piom::mpi
