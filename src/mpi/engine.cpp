// Engine base: the per-rank registry of in-flight collective state
// machines (CollOps) and the default caller-driven completion paths. The
// engines differ only in *where* advance_colls() runs from — pioman's
// background poll tasks vs. the global-lock engines' MPI-call-driven
// progress — which is the paper's progression argument extended to
// collectives.
#include "mpi/engine.hpp"

#include "mpi/coll.hpp"
#include "mpi/failure.hpp"

namespace piom::mpi {

bool Engine::has_failures() const {
  const FailureDetector* fd = fd_.load(std::memory_order_acquire);
  return fd != nullptr && fd->any_failed();
}

void Engine::start_coll(CollOp& op) {
  // Take the lock blocking (unlike the opportunistic sweeps): round 0's
  // point-to-point requests must be on the wire when this returns, even if
  // a background sweep holds the registry right now.
  coll_lock_.lock();
  colls_.push_back(&op);
  ncolls_.fetch_add(1, std::memory_order_release);
  sweep_colls();
  coll_lock_.unlock();
}

void Engine::advance_colls() {
  // The detector ticks BEFORE the empty fast path: liveness must keep
  // flowing (and dead peers must keep being detected) when no collective
  // is in flight — a rank blocked in a p2p wait still calls this.
  FailureDetector* fd = fd_.load(std::memory_order_acquire);
  if (fd != nullptr) fd->tick();
  if (ncolls_.load(std::memory_order_acquire) == 0) return;
  if (!coll_lock_.try_lock()) return;  // a sweep is already running
  sweep_colls();
  coll_lock_.unlock();
}

void Engine::sweep_colls() {
  for (std::size_t i = 0; i < colls_.size();) {
    CollOp* op = colls_[i];
    if (op->advance()) {
      colls_.erase(colls_.begin() + static_cast<std::ptrdiff_t>(i));
      ncolls_.fetch_sub(1, std::memory_order_release);
      // Delist BEFORE completing: complete() is the engine's last touch of
      // the op — the owner may reuse or destroy the handle the instant it
      // observes done(), and no sweep may still hold a pointer to it.
      op->core().complete();
    } else {
      ++i;
    }
  }
}

bool Engine::test_coll(CollOp& op) {
  if (op.done()) return true;
  progress();
  advance_colls();
  return op.done();
}

void Engine::wait_coll(CollOp& op) {
  // Caller-driven default: the blocked caller is the progress source.
  while (!test_coll(op)) {
  }
}

}  // namespace piom::mpi
