// Progress-engine interface behind the mini-MPI API. The three
// implementations reproduce the paper's §V contenders:
//   * PiomanEngine      — MAD-MPI: nmad + PIOMan background progression;
//   * GlobalLockEngine  — MVAPICH-like / OpenMPI-like: one big lock,
//                         progress happens only inside MPI calls.
// All engines speak the same nmad protocol over the same simulated fabric;
// the only difference is *when and where* the protocol code runs — which is
// precisely the paper's point.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mpi/request.hpp"
#include "nmad/gate.hpp"

namespace piom::mpi {

class Engine {
 public:
  virtual ~Engine() = default;

  virtual void isend(Request& req, nmad::Gate& gate, Tag tag, const void* buf,
                     std::size_t len) = 0;
  virtual void irecv(Request& req, nmad::Gate& gate, Tag tag, void* buf,
                     std::size_t cap) = 0;
  /// Any-source receive (MPI_ANY_SOURCE): match the first arrival with
  /// `tag` across `gates` (null entries skipped — the by-peer table has a
  /// hole at the rank's own slot). `gates` must outlive completion.
  virtual void irecv_any(Request& req, const std::vector<nmad::Gate*>& gates,
                         Tag tag, void* buf, std::size_t cap) = 0;
  /// Block until `req` completes.
  virtual void wait(Request& req) = 0;
  /// Nonblocking completion check (may drive progress, like MPI_Test).
  virtual bool test(Request& req) = 0;

  /// Drive one round of protocol progress without a request to wait on
  /// (like poking MPI_Iprobe). Caller-driven engines poll the session here;
  /// engines with background progression have nothing to do. Needed e.g. to
  /// keep re-acknowledging retransmissions on a lossy link after this
  /// rank's last blocking call has returned.
  virtual void progress() {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// Stop background machinery (idempotent; called before teardown).
  virtual void shutdown() {}
};

}  // namespace piom::mpi
