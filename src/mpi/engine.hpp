// Progress-engine interface behind the mini-MPI API. The three
// implementations reproduce the paper's §V contenders:
//   * PiomanEngine      — MAD-MPI: nmad + PIOMan background progression;
//   * GlobalLockEngine  — MVAPICH-like / OpenMPI-like: one big lock,
//                         progress happens only inside MPI calls.
// All engines speak the same nmad protocol over the same simulated fabric;
// the only difference is *when and where* the protocol code runs — which is
// precisely the paper's point.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "mpi/request.hpp"
#include "nmad/gate.hpp"
#include "sync/spinlock.hpp"

namespace piom::mpi {

class CollOp;
class FailureDetector;

class Engine {
 public:
  virtual ~Engine() = default;

  virtual void isend(Request& req, nmad::Gate& gate, Tag tag, const void* buf,
                     std::size_t len) = 0;
  virtual void irecv(Request& req, nmad::Gate& gate, Tag tag, void* buf,
                     std::size_t cap) = 0;
  /// Any-source receive (MPI_ANY_SOURCE): register with the membership's
  /// wildcard registry, which covers every existing gate, every gate
  /// created later (lazy wiring), and the forward inbox. `wilds` must
  /// outlive completion.
  virtual void irecv_any(Request& req, nmad::WildSet& wilds, Tag tag,
                         void* buf, std::size_t cap) = 0;
  /// Block until `req` completes.
  virtual void wait(Request& req) = 0;
  /// Nonblocking completion check (may drive progress, like MPI_Test).
  virtual bool test(Request& req) = 0;

  /// Drive one round of protocol progress without a request to wait on
  /// (like poking MPI_Iprobe). Caller-driven engines poll the session here;
  /// engines with background progression have nothing to do. Needed e.g. to
  /// keep re-acknowledging retransmissions on a lossy link after this
  /// rank's last blocking call has returned.
  virtual void progress() {}

  // ---- engine-progressed collectives (CollOp state machines) ----

  /// Enlist a freshly started collective and kick its first advance, so
  /// round 0's point-to-point requests hit the wire before this returns.
  /// The op's storage is caller-owned and must stay valid until done().
  void start_coll(CollOp& op);
  /// Nonblocking completion check: drives one round of engine progress and
  /// advances every in-flight collective (like MPI_Test on an NBC request).
  virtual bool test_coll(CollOp& op);
  /// Block until the collective completes. The default spins on
  /// test_coll() — right for caller-driven engines, where the blocked
  /// caller IS the progress source; engines with background progression
  /// override it to park the caller instead.
  virtual void wait_coll(CollOp& op);

  [[nodiscard]] virtual std::string name() const = 0;

  // ---- failure detection (engine-progressed; see mpi/failure.hpp) ----

  /// Attach this rank's failure detector: advance_colls() — i.e. every
  /// progress path of every engine — ticks it from then on. The detector
  /// must outlive the engine's last progress call (World owns both).
  /// Atomic because PIOMan's background poll tasks are already calling
  /// advance_colls() by the time World attaches; they read null (no
  /// detector yet) or the pointer, never a torn value.
  void attach_detector(FailureDetector* fd) {
    fd_.store(fd, std::memory_order_release);
  }
  [[nodiscard]] FailureDetector* detector() const {
    return fd_.load(std::memory_order_acquire);
  }
  /// True once the detector declared any peer failed (false when no
  /// detector is attached). Collectives poison themselves on this.
  [[nodiscard]] bool has_failures() const;

  /// Stop background machinery (idempotent; called before teardown).
  virtual void shutdown() {}

 protected:
  /// Advance every enlisted collective as far as its in-flight requests
  /// allow; finished ops are delisted, then completed — the completion
  /// store is this registry's final touch, so the owner may reuse the
  /// handle the instant done() reads true. Serialized per engine by a
  /// try-lock: a caller that finds a sweep already running skips (the
  /// running sweep does the work). Every engine calls this from each of
  /// its progress paths, which is what makes the collectives progress
  /// while the application computes.
  void advance_colls();

 private:
  /// One pass over the registry: advance, delist + complete finished ops.
  void sweep_colls() PIOM_REQUIRES(coll_lock_);

  sync::SpinLock coll_lock_;        ///< guards colls_; serializes sweeps
  /// In-flight collectives of this rank.
  std::vector<CollOp*> colls_ PIOM_GUARDED_BY(coll_lock_);
  std::atomic<int> ncolls_{0};      ///< lock-free empty fast path
  /// Optional; ticked by advance_colls(). See attach_detector on atomicity.
  std::atomic<FailureDetector*> fd_{nullptr};
};

}  // namespace piom::mpi
