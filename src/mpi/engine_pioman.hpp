// PiomanEngine — the paper's system (MAD-MPI over NewMadeleine + PIOMan).
//
//   * One repeatable polling task per (gate, rail), submitted to the task
//     manager with a cpuset of cores sharing a cache (paper §IV-B), executed
//     by idle runtime workers and by the timer hook when everyone is busy.
//   * isend defers packet submission and offloads it as a task placed on the
//     nearest idle core ("the state of each core is evaluated in order to
//     find an idle core that could process the task"); if every core is
//     busy, the task goes to the global queue.
//   * wait blocks on the request's semaphore inside a BlockingSection —
//     receiving threads do NOT poll, which keeps the Fig-4 latency flat.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/task_manager.hpp"
#include "mpi/engine.hpp"
#include "nmad/session.hpp"
#include "sched/runtime.hpp"
#include "sched/timer.hpp"

namespace piom::mpi {

struct PiomanEngineConfig {
  /// Simulated cores of this "node" (runtime workers doing the polling).
  int workers = 4;
  /// Timer-interrupt hook (progress guarantee under full CPU load).
  bool timer = true;
  std::chrono::microseconds timer_period{100};
  /// Offload packet submission to an idle core (paper §IV-B). When false
  /// the send path is inline (ablation).
  bool offload_submission = true;
};

class PiomanEngine final : public Engine {
 public:
  /// `session` must outlive the engine. Call start_progress() after the
  /// session's gates are created.
  PiomanEngine(nmad::Session& session, PiomanEngineConfig config = {});
  ~PiomanEngine() override;

  /// Install one repeatable polling task per (gate, rail) for the gates
  /// that exist now. Gates created later (lazy wiring) must be handed to
  /// watch_gate() — the membership layer's on_gate_created hook does.
  void start_progress();

  /// Start background polling of a (possibly late) gate: one repeatable
  /// poll task per rail. Idempotent per gate, thread-safe (lazy gates are
  /// installed from whichever thread first talks to the peer, including
  /// poll tasks relaying forwarded traffic); a no-op once shutdown began.
  void watch_gate(nmad::Gate& gate);

  void isend(Request& req, nmad::Gate& gate, Tag tag, const void* buf,
             std::size_t len) override;
  void irecv(Request& req, nmad::Gate& gate, Tag tag, void* buf,
             std::size_t cap) override;
  void irecv_any(Request& req, nmad::WildSet& wilds, Tag tag, void* buf,
                 std::size_t cap) override;
  void wait(Request& req) override;
  bool test(Request& req) override;
  bool test_coll(CollOp& op) override;
  void wait_coll(CollOp& op) override;
  [[nodiscard]] std::string name() const override { return "pioman"; }
  void shutdown() override;

  [[nodiscard]] TaskManager& task_manager() { return tm_; }
  [[nodiscard]] sched::Runtime& runtime() { return runtime_; }

 private:
  struct PollTask {
    piom::Task task;
    nmad::Gate* gate = nullptr;
    int rail = 0;
    PiomanEngine* engine = nullptr;
  };
  /// One offloaded packet submission. Engine-owned and recycled through a
  /// freelist (the paper embeds the task in the library's packet wrapper —
  /// same idea: the task never lives in caller-owned storage, so a caller
  /// may free its Request as soon as the communication completes even if
  /// the flush task has not run yet).
  struct SubmitJob {
    piom::Task task;
    nmad::Gate* gate = nullptr;
    PiomanEngine* engine = nullptr;
    SubmitJob* free_next = nullptr;
  };
  static TaskResult poll_trampoline(void* arg);
  static TaskResult flush_trampoline(void* arg);
  static void submit_job_done(Task* task);

  SubmitJob* acquire_submit_job();
  void release_submit_job(SubmitJob* job);

  nmad::Session& session_;
  PiomanEngineConfig config_;
  topo::Machine machine_;
  TaskManager tm_;
  sched::Runtime runtime_;
  std::optional<sched::TimerHook> timer_;
  /// Poll-task table. The deque grows while tasks run (late gates), so the
  /// lock guards every structural access; PollTask storage is stable once
  /// emplaced. watched_ dedups watch_gate; home_ round-robins task
  /// placement across the node's cores.
  sync::SpinLock poll_lock_;
  std::deque<PollTask> poll_tasks_ PIOM_GUARDED_BY(poll_lock_);
  std::unordered_set<nmad::Gate*> watched_ PIOM_GUARDED_BY(poll_lock_);
  int home_ PIOM_GUARDED_BY(poll_lock_) = 0;
  sync::SpinLock submit_pool_lock_;
  SubmitJob* submit_pool_ PIOM_GUARDED_BY(submit_pool_lock_) = nullptr;
  /// Storage owner.
  std::vector<std::unique_ptr<SubmitJob>> submit_jobs_
      PIOM_GUARDED_BY(submit_pool_lock_);
  std::atomic<int> submit_jobs_in_flight_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace piom::mpi
