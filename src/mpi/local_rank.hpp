// LocalRank: everything one MPI rank owns locally — its nmad session, the
// per-peer gates, a progress engine, an optional failure detector and the
// Comm handed to application code. Split out of World so a rank can exist
// in two shapes:
//
//   * in-process: World creates N of these over a loopback mesh (every
//     rank in one address space — the shape tests and benches use);
//   * multi-process: one LocalRank per OS process, wired to its peers by a
//     transport::Bootstrap (socket channels; see tools/piom_launch).
#pragma once

#include <memory>
#include <vector>

#include "mpi/engine.hpp"
#include "mpi/engine_pioman.hpp"
#include "mpi/failure.hpp"
#include "mpi/membership.hpp"
#include "nmad/session.hpp"
#include "transport/bootstrap.hpp"
#include "transport/channel.hpp"

namespace piom::mpi {

enum class EngineKind {
  kPioman,       ///< MAD-MPI: nmad + PIOMan background progression
  kMvapichLike,  ///< global lock, caller-driven progress, hard spin
  kOpenMpiLike,  ///< global lock, caller-driven progress, yielding spin
};

[[nodiscard]] const char* engine_kind_name(EngineKind k);

/// Per-rank configuration (the rank-local slice of WorldConfig).
struct RankConfig {
  EngineKind engine = EngineKind::kPioman;
  nmad::SessionConfig session{};
  /// PIOMan node configuration (ignored by the baseline engines).
  PiomanEngineConfig pioman{};
  /// Heartbeat failure detection (off by default — see mpi/failure.hpp).
  FailureConfig failure{};
  /// Overlay topology (dense/sparse view + routing; see mpi/membership.hpp).
  OverlayConfig overlay{};
};

class Comm;

class LocalRank {
 public:
  /// In-process rank: the caller provides the rail channels towards each
  /// peer (rails_by_peer[peer]; the self entry must be empty). An empty
  /// peer entry means "no eager gate" — the pair is wired lazily through
  /// the membership's connector on first contact (World's default shape).
  /// Channels must outlive this rank — World keeps them alive via its
  /// Cluster.
  LocalRank(int rank, int nranks,
            const std::vector<std::vector<transport::IChannel*>>&
                rails_by_peer,
            const RankConfig& config = {});

  /// Multi-process rank: takes ownership of a completed Bootstrap (the
  /// socket transport it owns must outlive the session, so it moves in
  /// here) and wires one single-rail gate per peer data channel.
  explicit LocalRank(transport::Bootstrap bootstrap,
                     const RankConfig& config = {});

  ~LocalRank();

  LocalRank(const LocalRank&) = delete;
  LocalRank& operator=(const LocalRank&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] Comm& comm() { return *comm_; }
  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] nmad::Session& session() { return *session_; }
  /// Overlay/routing layer (gate table, view, forwarding, wildcards).
  [[nodiscard]] Membership& membership() { return *membership_; }
  /// Null unless RankConfig::failure.enabled.
  [[nodiscard]] FailureDetector* detector() { return detector_.get(); }
  /// Null for in-process ranks.
  [[nodiscard]] transport::Bootstrap* bootstrap() { return bootstrap_.get(); }

  /// Stop background machinery (idempotent; dtor calls it).
  void shutdown();

 private:
  void init(const std::vector<std::vector<transport::IChannel*>>&
                rails_by_peer,
            const RankConfig& config);

  int rank_;
  int nranks_;
  // Destruction order matters: comm_ and detector_ go first, then the
  // engine (stops progress threads), then the membership and the session
  // it references, and the bootstrap's transport — which the session's
  // channels live on — very last.
  std::unique_ptr<transport::Bootstrap> bootstrap_;
  std::unique_ptr<nmad::Session> session_;
  std::unique_ptr<Membership> membership_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<FailureDetector> detector_;
  std::unique_ptr<Comm> comm_;
};

}  // namespace piom::mpi
