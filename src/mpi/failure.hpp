// Heartbeat failure detector (ULFM-flavoured fault tolerance for the
// mini-MPI layer). One detector per rank, driven as engine-progressed work:
// every progress path of every engine calls tick() (via
// Engine::advance_colls()), which rate-limits itself to one pass per
// heartbeat period. A pass sends one kPing per live gate and declares a
// peer failed when nothing — ping, ack, or payload — has arrived from it
// for `timeout_periods` heartbeat periods; Gate::fail_peer() then
// error-completes everything parked on the dead rank (see gate.hpp).
//
// Detection is local and independent: there is no failure-propagation
// protocol, because every survivor stops hearing from the dead rank and
// reaches the same verdict within one detection bound. The flip side of
// engine-progressed detection is the paper's progression argument in
// miniature: caller-driven engines only tick while the application sits in
// an MPI call, so an idle rank neither pings nor detects — which is also
// why the detector must be opt-in (an idle-but-healthy rank would
// otherwise be declared dead by its busy peers).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sync/spinlock.hpp"

namespace piom::nmad {
class Session;
}

namespace piom::mpi {

struct FailureConfig {
  /// Off by default: heartbeats only flow while engines progress, so a
  /// world whose ranks idle between MPI calls (the caller-driven engines)
  /// would produce false positives. Enable for fault-tolerant runs.
  bool enabled = false;
  /// Heartbeat period (µs): at most one detector pass — one kPing per live
  /// gate — per period, whichever thread's progress path gets there first.
  double heartbeat_period_us = 2000.0;
  /// Silence threshold, in heartbeat periods. The detection bound is
  /// roughly (timeout_periods + 1) periods of the *slowest* ticking
  /// survivor. Keep it large enough to absorb scheduling noise: a ping is
  /// only as regular as the progress path that sends it.
  int timeout_periods = 25;
};

/// Per-rank detector. Thread-safe: tick() may be called concurrently from
/// any progress path (pioman's background poll tasks, the global-lock
/// engines' callers); passes are serialized by a try-lock and skipped
/// while one is running.
class FailureDetector {
 public:
  FailureDetector(nmad::Session& session, int rank, int nranks,
                  FailureConfig config);

  /// Rate-limited detector pass (no-op until a heartbeat period elapsed).
  void tick();

  [[nodiscard]] bool any_failed() const {
    return any_failed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool rank_failed(int rank) const;
  /// Ranks declared failed so far, ascending.
  [[nodiscard]] std::vector<int> failed_ranks() const;

  /// Install a callback invoked (from whichever thread's tick detected it)
  /// once per failed rank, after the rank's gate has been evicted. It runs
  /// inside a progress path but *outside* the detector's lock, so calling
  /// back into the detector (rank_failed, even on_rank_failed) is safe.
  /// Keep it cheap and non-blocking all the same. Callbacks for ranks
  /// detected in different passes may run concurrently (each rank is still
  /// reported exactly once). May be called repeatedly: callbacks accumulate
  /// (the membership layer and tests each install their own).
  void on_rank_failed(std::function<void(int)> cb);

  /// Adopt a remote verdict (a membership death notice): declare `peer`
  /// failed exactly as a local timeout would — evict its gate if one
  /// exists, revoke the reserved tag space on first verdict, and run the
  /// callbacks. Idempotent per rank; no-op for self/out-of-range. This is
  /// what closes the sparse-overlay detection gap: a rank with no gate to
  /// the victim cannot time it out locally, so survivors flood the verdict
  /// along the overlay instead.
  void mark_dead_external(int peer);

  [[nodiscard]] const FailureConfig& config() const { return config_; }
  [[nodiscard]] int rank() const { return rank_; }

 private:
  nmad::Session& session_;
  const int rank_;
  const int nranks_;
  const FailureConfig config_;
  const int64_t period_ns_;
  const int64_t timeout_ns_;
  const int64_t start_ns_;  ///< grace anchor for never-heard-from peers
  std::atomic<int64_t> last_pass_ns_{0};
  std::atomic<bool> any_failed_{false};
  /// Indexed by rank; lock-free reads from rank_failed()/failed_ranks().
  std::unique_ptr<std::atomic<bool>[]> dead_;
  sync::SpinLock lock_;  ///< serializes passes + callback installation
  std::vector<std::function<void(int)>> callbacks_ PIOM_GUARDED_BY(lock_);
  /// First-verdict latch: the whole reserved (collective) tag space has
  /// been revoked on the live gates.
  bool revoked_all_ PIOM_GUARDED_BY(lock_) = false;
};

}  // namespace piom::mpi
