#include "mpi/failure.hpp"

#include <algorithm>

#include "nmad/session.hpp"
#include "util/timing.hpp"

namespace piom::mpi {

FailureDetector::FailureDetector(nmad::Session& session, int rank, int nranks,
                                 FailureConfig config)
    : session_(session),
      rank_(rank),
      nranks_(nranks),
      config_(config),
      period_ns_(static_cast<int64_t>(config.heartbeat_period_us * 1e3)),
      timeout_ns_(static_cast<int64_t>(config.heartbeat_period_us * 1e3) *
                  config.timeout_periods),
      start_ns_(util::now_ns()),
      dead_(new std::atomic<bool>[static_cast<std::size_t>(nranks)]) {
  for (int r = 0; r < nranks_; ++r) {
    dead_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
  }
}

void FailureDetector::tick() {
  // Hot path: one relaxed-ish load pair per progress iteration. A pass runs
  // at most once per heartbeat period, from whichever thread gets here
  // first; concurrent callers skip via the try-lock.
  const int64_t now = util::now_ns();
  if (now - last_pass_ns_.load(std::memory_order_acquire) < period_ns_) {
    return;
  }
  if (!lock_.try_lock()) return;
  if (now - last_pass_ns_.load(std::memory_order_relaxed) < period_ns_) {
    lock_.unlock();  // lost the race to another pass
    return;
  }
  last_pass_ns_.store(now, std::memory_order_release);
  for (std::size_t g = 0; g < session_.gate_count(); ++g) {
    nmad::Gate& gate = session_.gate(g);
    const int peer = gate.peer_rank();
    if (peer < 0 || peer >= nranks_) continue;
    if (dead_[static_cast<std::size_t>(peer)].load(
            std::memory_order_relaxed)) {
      continue;
    }
    // A peer that never sent anything is measured from detector start, not
    // from the epoch — otherwise every world boots "failed".
    const int64_t heard = std::max(gate.last_heard_ns(), start_ns_);
    if (now - heard > timeout_ns_) {
      dead_[static_cast<std::size_t>(peer)].store(true,
                                                  std::memory_order_release);
      any_failed_.store(true, std::memory_order_release);
      gate.fail_peer();  // evict: error-complete everything parked on it
      if (callback_) callback_(peer);
    } else {
      gate.send_ping();
    }
  }
  lock_.unlock();
}

bool FailureDetector::rank_failed(int rank) const {
  if (rank < 0 || rank >= nranks_) return false;
  return dead_[static_cast<std::size_t>(rank)].load(
      std::memory_order_acquire);
}

std::vector<int> FailureDetector::failed_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < nranks_; ++r) {
    if (dead_[static_cast<std::size_t>(r)].load(std::memory_order_acquire)) {
      out.push_back(r);
    }
  }
  return out;
}

void FailureDetector::on_rank_failed(std::function<void(int)> cb) {
  lock_.lock();
  callback_ = std::move(cb);
  lock_.unlock();
}

}  // namespace piom::mpi
