#include "mpi/failure.hpp"

#include <algorithm>

#include "nmad/session.hpp"
#include "util/timing.hpp"

namespace piom::mpi {

FailureDetector::FailureDetector(nmad::Session& session, int rank, int nranks,
                                 FailureConfig config)
    : session_(session),
      rank_(rank),
      nranks_(nranks),
      config_(config),
      period_ns_(static_cast<int64_t>(config.heartbeat_period_us * 1e3)),
      timeout_ns_(static_cast<int64_t>(config.heartbeat_period_us * 1e3) *
                  config.timeout_periods),
      start_ns_(util::now_ns()),
      dead_(new std::atomic<bool>[static_cast<std::size_t>(nranks)]) {
  for (int r = 0; r < nranks_; ++r) {
    dead_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
  }
}

void FailureDetector::tick() {
  // Hot path: one relaxed-ish load pair per progress iteration. A pass runs
  // at most once per heartbeat period, from whichever thread gets here
  // first; concurrent callers skip via the try-lock.
  const int64_t now = util::now_ns();
  if (now - last_pass_ns_.load(std::memory_order_acquire) < period_ns_) {
    return;
  }
  if (!lock_.try_lock()) return;
  if (now - last_pass_ns_.load(std::memory_order_relaxed) < period_ns_) {
    lock_.unlock();  // lost the race to another pass
    return;
  }
  last_pass_ns_.store(now, std::memory_order_release);
  std::vector<int> newly_dead;
  for (std::size_t g = 0; g < session_.gate_count(); ++g) {
    nmad::Gate& gate = session_.gate(g);
    const int peer = gate.peer_rank();
    if (peer < 0 || peer >= nranks_) continue;
    if (dead_[static_cast<std::size_t>(peer)].load(
            std::memory_order_relaxed)) {
      continue;
    }
    // A peer that never sent anything is measured from detector start, not
    // from the epoch — otherwise every world boots "failed".
    const int64_t heard = std::max(gate.last_heard_ns(), start_ns_);
    if (now - heard > timeout_ns_) {
      dead_[static_cast<std::size_t>(peer)].store(true,
                                                  std::memory_order_release);
      any_failed_.store(true, std::memory_order_release);
      gate.fail_peer();  // evict: error-complete everything parked on it
      newly_dead.push_back(peer);
    } else {
      gate.send_ping();
    }
  }
  const bool first_verdict = !newly_dead.empty() && !revoked_all_;
  if (first_verdict) revoked_all_ = true;
  // Snapshot the callbacks, invoke them after unlock: the detector's
  // SpinLock is not reentrant, and callbacks are user code that may well
  // call back into the detector (rank_failed, mark_dead_external, ...).
  std::vector<std::function<void(int)>> cbs;
  if (!newly_dead.empty()) cbs = callbacks_;
  lock_.unlock();
  if (first_verdict) {
    // Every in-flight and future collective on this rank is poisoned now
    // (ULFM semantics: CollOp::advance fails fast on has_failures, so no
    // reserved-space receive will ever be posted again). Revoke the whole
    // reserved tag space towards the *live* peers, so their collective
    // rendezvous sends aimed at this rank are NACKed instead of parking
    // forever for a FIN — even for epochs whose CollOp this rank never
    // creates because the application stopped calling collectives.
    for (std::size_t g = 0; g < session_.gate_count(); ++g) {
      session_.gate(g).revoke_tags(/*mask=*/nmad::kReservedTagBase,
                                   /*value=*/nmad::kReservedTagBase);
    }
  }
  for (const auto& cb : cbs) {
    for (int peer : newly_dead) cb(peer);
  }
}

void FailureDetector::mark_dead_external(int peer) {
  if (peer < 0 || peer >= nranks_ || peer == rank_) return;
  lock_.lock();
  if (dead_[static_cast<std::size_t>(peer)].load(std::memory_order_relaxed)) {
    lock_.unlock();
    return;
  }
  dead_[static_cast<std::size_t>(peer)].store(true, std::memory_order_release);
  any_failed_.store(true, std::memory_order_release);
  const bool first_verdict = !revoked_all_;
  if (first_verdict) revoked_all_ = true;
  std::vector<std::function<void(int)>> cbs = callbacks_;
  lock_.unlock();
  // Evict outside the lock (fail_peer is idempotent + thread-safe, and may
  // wake waiters that re-enter progress paths that tick this detector).
  for (std::size_t g = 0; g < session_.gate_count(); ++g) {
    nmad::Gate& gate = session_.gate(g);
    if (gate.peer_rank() == peer) gate.fail_peer();
  }
  if (first_verdict) {
    for (std::size_t g = 0; g < session_.gate_count(); ++g) {
      session_.gate(g).revoke_tags(/*mask=*/nmad::kReservedTagBase,
                                   /*value=*/nmad::kReservedTagBase);
    }
  }
  for (const auto& cb : cbs) cb(peer);
}

bool FailureDetector::rank_failed(int rank) const {
  if (rank < 0 || rank >= nranks_) return false;
  return dead_[static_cast<std::size_t>(rank)].load(
      std::memory_order_acquire);
}

std::vector<int> FailureDetector::failed_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < nranks_; ++r) {
    if (dead_[static_cast<std::size_t>(r)].load(std::memory_order_acquire)) {
      out.push_back(r);
    }
  }
  return out;
}

void FailureDetector::on_rank_failed(std::function<void(int)> cb) {
  lock_.lock();
  callbacks_.push_back(std::move(cb));
  lock_.unlock();
}

}  // namespace piom::mpi
