// World: a two-rank mini-MPI universe in one process — two "cluster nodes"
// (sessions + engines) wired through the simulated fabric. This is the
// entry point benchmarks and examples use:
//
//   mpi::WorldConfig cfg;
//   cfg.engine = mpi::EngineKind::kPioman;
//   mpi::World world(cfg);
//   world.comm(0).send(1, /*tag=*/7, data, len);
//   world.comm(1).recv(0, 7, buf, len);
#pragma once

#include <memory>
#include <string>

#include "mpi/engine.hpp"
#include "mpi/engine_pioman.hpp"
#include "nmad/session.hpp"
#include "simnet/fabric.hpp"

namespace piom::mpi {

enum class EngineKind {
  kPioman,       ///< MAD-MPI: nmad + PIOMan background progression
  kMvapichLike,  ///< global lock, caller-driven progress, hard spin
  kOpenMpiLike,  ///< global lock, caller-driven progress, yielding spin
};

[[nodiscard]] const char* engine_kind_name(EngineKind k);

struct WorldConfig {
  EngineKind engine = EngineKind::kPioman;
  /// Number of rails (NIC pairs) between the two nodes.
  int rails = 1;
  simnet::LinkModel link{};
  /// Multiplies every modelled network delay.
  double time_scale = 1.0;
  nmad::SessionConfig session{};
  /// PIOMan node configuration (ignored by the baseline engines).
  PiomanEngineConfig pioman{};
};

class Comm;

class World {
 public:
  explicit World(WorldConfig config = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Communicator of `rank` (0 or 1).
  [[nodiscard]] Comm& comm(int rank);

  [[nodiscard]] const WorldConfig& config() const { return config_; }
  [[nodiscard]] simnet::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] Engine& engine(int rank);
  [[nodiscard]] nmad::Session& session(int rank);

  /// Stop background machinery of both ranks (idempotent; dtor calls it).
  void shutdown();

 private:
  WorldConfig config_;
  std::unique_ptr<simnet::Fabric> fabric_;
  std::unique_ptr<nmad::Session> sessions_[2];
  std::unique_ptr<Engine> engines_[2];
  std::unique_ptr<Comm> comms_[2];
};

/// Completion information for a receive (MPI_Status equivalent).
struct Status {
  Tag tag = 0;            ///< actual tag (useful with kAnyTag)
  std::size_t bytes = 0;  ///< payload bytes delivered
};

/// Reduction operators for allreduce().
enum class ReduceOp { kSum, kMax, kMin };

/// Per-rank MPI-like interface. Two ranks, reliable, tag-matched.
/// Tags >= kReservedTagBase are reserved for the collectives.
class Comm {
 public:
  /// Wildcard receive tag (MPI_ANY_TAG).
  static constexpr Tag kAnyTag = nmad::kAnyTag;
  /// First tag reserved for internal (collective) traffic.
  static constexpr Tag kReservedTagBase = 0xffff0000u;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return 2; }

  void isend(Request& req, int dst, Tag tag, const void* buf, std::size_t len);
  void irecv(Request& req, int src, Tag tag, void* buf, std::size_t cap);
  void wait(Request& req) { engine_->wait(req); }
  [[nodiscard]] bool test(Request& req) { return engine_->test(req); }

  /// Blocking convenience wrappers (isend/irecv + wait).
  void send(int dst, Tag tag, const void* buf, std::size_t len);
  void recv(int src, Tag tag, void* buf, std::size_t cap);
  /// Blocking receive reporting the matched tag/size (use with kAnyTag).
  Status recv_status(int src, Tag tag, void* buf, std::size_t cap);

  /// Simultaneous send and receive (MPI_Sendrecv): both directions overlap,
  /// deadlock-free even when both ranks call it at once.
  void sendrecv(int peer, Tag send_tag, const void* send_buf,
                std::size_t send_len, Tag recv_tag, void* recv_buf,
                std::size_t recv_cap);

  // ---- collectives (both ranks must call; internally use reserved tags) --

  /// Synchronize both ranks.
  void barrier();

  /// Broadcast `len` bytes from `root` to the other rank.
  void bcast(void* buf, std::size_t len, int root);

  /// Element-wise reduction across both ranks; every rank ends up with the
  /// combined result. T must be an arithmetic type.
  template <typename T>
  void allreduce(T* data, std::size_t count, ReduceOp op);

  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] nmad::Gate& gate() { return *gate_; }

 private:
  friend class World;
  Comm(int rank, Engine* engine, nmad::Gate* gate)
      : rank_(rank), engine_(engine), gate_(gate) {}

  int rank_;
  Engine* engine_;
  nmad::Gate* gate_;
};

}  // namespace piom::mpi
