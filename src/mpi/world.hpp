// World: an N-rank mini-MPI cluster in one process — `nranks` "cluster
// nodes" (one nmad session + one progress engine each) over a lazily wired
// fabric: a rank pair's channels (one dedicated link — or several rails —
// per unordered pair) and the gates over them are created on first
// contact, not upfront, so idle pairs cost nothing. The overlay layer
// (mpi/membership.hpp) decides who talks directly: dense mode lets every
// pair connect, sparse mode keeps a tree+ring view per rank and forwards
// the rest. This is the entry point benchmarks and examples use:
//
//   mpi::WorldConfig cfg;
//   cfg.engine = mpi::EngineKind::kPioman;
//   cfg.nranks = 4;                       // default 2
//   mpi::World world(cfg);
//   world.comm(0).send(3, /*tag=*/7, data, len);
//   world.comm(3).recv(0, 7, buf, len);
//   world.comm(rank).bcast(buf, len, /*root=*/0);   // on every rank
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "mpi/coll.hpp"
#include "mpi/engine.hpp"
#include "mpi/local_rank.hpp"
#include "mpi/membership.hpp"
#include "mpi/request.hpp"
#include "topo/machine.hpp"
#include "transport/channel.hpp"
#include "transport/cluster.hpp"

namespace piom::mpi {

struct WorldConfig {
  EngineKind engine = EngineKind::kPioman;
  /// Cluster size (>= 2). Every rank is wired to every other rank.
  int nranks = 2;
  /// Number of simnet rails (NIC pairs) between each pair of ranks.
  int rails = 1;
  simnet::LinkModel link{};
  /// Multiplies every modelled network delay.
  double time_scale = 1.0;
  nmad::SessionConfig session{};
  /// PIOMan node configuration (ignored by the baseline engines).
  PiomanEngineConfig pioman{};
  /// Transport backend selection per rank pair. With an empty `node_of`
  /// the policy is resolved from $PIOM_TRANSPORT instead (the CI backend
  /// matrix forces whole suites onto shmem/hybrid that way); a non-empty
  /// `node_of` pins the placement and ignores the environment.
  transport::BackendPolicy policy{};
  /// Intra-node channel tuning (ring depth, modelled latency).
  transport::ShmemConfig shmem{};
  /// Socket channel tuning (advertised rail properties, timeouts).
  transport::TcpConfig tcp{};
  /// Heartbeat failure detection (off by default — see mpi/failure.hpp for
  /// why caller-driven engines make it opt-in). When enabled, every rank
  /// gets a FailureDetector ticked from its engine's progress paths.
  FailureConfig failure{};
  /// Overlay topology: dense (every pair may talk directly; gates still
  /// created lazily) or sparse (tree+ring view, multi-hop forwarding, tree
  /// collectives). Defaults defer to $PIOM_OVERLAY / $PIOM_FANOUT /
  /// $PIOM_SPARSE_THRESHOLD — see mpi/membership.hpp and docs/scaling.md.
  OverlayConfig overlay{};
};

/// Rank placement derived from a machine topology: rank r lives on the
/// chip (NUMA node when chip-less, whole machine when flat) hosting core
/// r % ncpus. Feed the result to WorldConfig::policy.node_of to make a
/// "2-chip machine" where half the rank pairs share memory.
[[nodiscard]] std::vector<int> rank_nodes_from_machine(
    const topo::Machine& machine, int nranks);

class Comm;

class World {
 public:
  explicit World(WorldConfig config = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Communicator of `rank` (0 .. nranks-1).
  [[nodiscard]] Comm& comm(int rank);

  [[nodiscard]] int nranks() const { return config_.nranks; }
  [[nodiscard]] const WorldConfig& config() const { return config_; }
  /// The multi-backend transport owner (simnet + shmem + sockets).
  [[nodiscard]] transport::Cluster& cluster() { return *cluster_; }
  /// Factory face of one backend (neutral ITransport view — nothing
  /// outside the simnet tests needs to name simnet::Fabric).
  [[nodiscard]] transport::ITransport& transport(transport::Backend b) {
    return cluster_->transport(b);
  }
  /// Rail channels `rank` owns towards `peer` (rail 0 first), wiring the
  /// pair on first request (lazy mesh). The per-pair IChannel view fault
  /// tests and benches use instead of digging through the fabric.
  [[nodiscard]] const std::vector<transport::IChannel*>& pair_channels(
      int rank, int peer);
  /// Rank-local pieces (each rank is a LocalRank; see mpi/local_rank.hpp).
  [[nodiscard]] LocalRank& local_rank(int rank);
  [[nodiscard]] Engine& engine(int rank);
  [[nodiscard]] nmad::Session& session(int rank);
  /// `rank`'s failure detector; null unless WorldConfig::failure.enabled.
  [[nodiscard]] FailureDetector* detector(int rank);

  /// Multi-process entry point: build THIS process's single rank from a
  /// completed Bootstrap (rank/nranks come from it). The World class
  /// itself stays in-process — a cluster of OS processes is N processes
  /// each holding one LocalRank, launched by tools/piom_launch.
  [[nodiscard]] static std::unique_ptr<LocalRank> local(
      transport::Bootstrap bootstrap, const RankConfig& config = {});

  /// Fault injection: sever both directions of every channel `victim`
  /// owns, exactly as if its node lost power mid-run. Survivors' detectors
  /// declare it failed within the detection bound; the victim's own
  /// detector (cut off from everyone) symmetrically declares all of its
  /// peers failed, which error-completes any call it is blocked in — that
  /// is what lets a test thread playing the victim return and join.
  /// Requires failure detection to be enabled (throws otherwise: without a
  /// detector every survivor touching the victim would simply hang).
  void kill_rank(int victim);

  /// Stop background machinery of every rank (idempotent; dtor calls it).
  void shutdown();

 private:
  void check_rank(int rank, const char* who) const;

  /// GateConnector body (installed on every rank's membership): wire the
  /// transport pair on demand and install BOTH sides' gates — the peer's
  /// first, so its side is being polled before our first packet can land.
  /// Idempotent and safe to race (pair_rails and install_gate both
  /// double-check); coordinates with kill_rank through killed_ so a pair
  /// lazily wired concurrently with a kill still ends up severed.
  void connect_pair(int rank, int peer);

  WorldConfig config_;
  // The cluster (all channels) must outlive every rank's session: ranks_
  // is declared after cluster_ so it is destroyed first.
  std::unique_ptr<transport::Cluster> cluster_;
  std::vector<std::unique_ptr<LocalRank>> ranks_;
  /// Ranks kill_rank has struck; connect_pair consults it so lazy wiring
  /// racing a kill cannot resurrect a dead rank's connectivity.
  std::mutex killed_lock_;
  std::set<int> killed_;
};

/// Per-rank MPI-like interface: N ranks, reliable, tag- and source-matched.
/// Tags >= kReservedTagBase are reserved for the collectives (ReduceOp and
/// the CollRequest handle live in mpi/coll.hpp).
class Comm {
 public:
  /// Wildcard receive tag (MPI_ANY_TAG). Matches application traffic only:
  /// reserved-tag (collective/internal) packets are never claimed by a
  /// wildcard, so wildcard receives compose with in-flight collectives.
  static constexpr Tag kAnyTag = nmad::kAnyTag;
  /// Wildcard receive source (MPI_ANY_SOURCE): matches the first arrival
  /// from any peer; Status.source reports who sent it.
  static constexpr int kAnySource = -1;
  /// First tag reserved for internal (collective) traffic. The reserved
  /// space is laid out as epoch/kind/round — see mpi/coll.hpp.
  static constexpr Tag kReservedTagBase = nmad::kReservedTagBase;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return nranks_; }

  /// `tag` must be an application tag (below kReservedTagBase — enforced,
  /// since a send into the reserved space would collide with the
  /// epoch-stamped collective tags).
  void isend(Request& req, int dst, Tag tag, const void* buf, std::size_t len);
  /// `src` may be kAnySource; `tag` may be kAnyTag, otherwise it must be
  /// an application tag (below kReservedTagBase — enforced).
  void irecv(Request& req, int src, Tag tag, void* buf, std::size_t cap);
  void wait(Request& req) { engine_->wait(req); }
  [[nodiscard]] bool test(Request& req) { return engine_->test(req); }

  /// Blocking convenience wrappers (isend/irecv + wait).
  void send(int dst, Tag tag, const void* buf, std::size_t len);
  void recv(int src, Tag tag, void* buf, std::size_t cap);
  /// Blocking receive reporting the matched tag/source/size (use with
  /// kAnyTag / kAnySource).
  Status recv_status(int src, Tag tag, void* buf, std::size_t cap);

  /// Simultaneous send and receive (MPI_Sendrecv): both directions overlap,
  /// deadlock-free even when both ranks call it at once. `send_dst` and
  /// `recv_src` may name different peers (ring shifts).
  void sendrecv(int send_dst, Tag send_tag, const void* send_buf,
                std::size_t send_len, int recv_src, Tag recv_tag,
                void* recv_buf, std::size_t recv_cap);
  /// Single-peer overload (exchange with one neighbour).
  void sendrecv(int peer, Tag send_tag, const void* send_buf,
                std::size_t send_len, Tag recv_tag, void* recv_buf,
                std::size_t recv_cap) {
    sendrecv(peer, send_tag, send_buf, send_len, peer, recv_tag, recv_buf,
             recv_cap);
  }

  // ---- collectives (every rank must call, in the same order; internally
  // ---- use reserved tags so they compose with application traffic) ------
  //
  // Each collective exists in two forms: the nonblocking i…() starts an
  // engine-progressed CollOp state machine into the caller-owned `req`
  // (complete it with test()/wait(); several may be in flight at once —
  // the per-Comm epoch in the reserved tags keeps them from
  // cross-matching), and the blocking form, which is exactly i…() +
  // wait(). All buffers passed to an i…() call must stay valid until the
  // request completes.

  /// Synchronize all ranks (dissemination algorithm, ceil(log2 N) rounds).
  void ibarrier(CollRequest& req);
  void barrier();

  /// Broadcast `len` bytes from `root` to every rank (binomial tree).
  void ibcast(CollRequest& req, void* buf, std::size_t len, int root);
  void bcast(void* buf, std::size_t len, int root);

  /// Element-wise reduction across all ranks; every rank ends up with the
  /// combined result. Recursive doubling when N is a power of two, ring
  /// reduce-scatter + allgather otherwise. T must be an arithmetic type.
  template <typename T>
  void iallreduce(CollRequest& req, T* data, std::size_t count, ReduceOp op) {
    static_assert(std::is_arithmetic_v<T>, "iallreduce needs arithmetic T");
    iallreduce_raw(req, data, count, sizeof(T), &coll_detail::combine<T>, op);
  }
  template <typename T>
  void allreduce(T* data, std::size_t count, ReduceOp op) {
    CollRequest req;
    iallreduce(req, data, count, op);
    wait(req);
  }

  /// Root collects `len` bytes from every rank: rank i's block lands at
  /// recvbuf + i*len. `recvbuf` is only used on the root (pass nullptr
  /// elsewhere).
  void igather(CollRequest& req, const void* sendbuf, std::size_t len,
               void* recvbuf, int root);
  void gather(const void* sendbuf, std::size_t len, void* recvbuf, int root);

  /// Root distributes `len`-byte blocks: rank i receives sendbuf + i*len
  /// into recvbuf. `sendbuf` is only used on the root (pass nullptr
  /// elsewhere).
  void iscatter(CollRequest& req, const void* sendbuf, std::size_t len,
                void* recvbuf, int root);
  void scatter(const void* sendbuf, std::size_t len, void* recvbuf, int root);

  /// Every rank sends block d (sendbuf + d*len) to rank d and receives
  /// rank s's block at recvbuf + s*len (pairwise exchange, N-1 rounds).
  /// Buffers must not alias.
  void ialltoall(CollRequest& req, const void* sendbuf, std::size_t len,
                 void* recvbuf);
  void alltoall(const void* sendbuf, std::size_t len, void* recvbuf);

  /// Complete a collective (MPI_Wait / MPI_Test on an NBC request).
  void wait(CollRequest& req) { engine_->wait_coll(req); }
  [[nodiscard]] bool test(CollRequest& req) { return engine_->test_coll(req); }

  // ---- failure API (ULFM-flavoured; needs WorldConfig::failure.enabled,
  // ---- otherwise every query reads "nothing failed") -------------------

  /// True once this rank's detector has declared any peer failed.
  [[nodiscard]] bool any_rank_failed() const {
    return engine_->has_failures();
  }
  /// True once this rank's detector has declared `rank` failed.
  [[nodiscard]] bool rank_failed(int rank) const;
  /// Ranks this rank's detector has declared failed so far, ascending.
  [[nodiscard]] std::vector<int> failed_ranks() const;
  /// Install a per-failed-rank callback (see FailureDetector::on_rank_failed;
  /// it runs inside a progress path — keep it cheap). No-op when failure
  /// detection is disabled.
  void on_rank_failed(std::function<void(int)> cb);

  /// MPI_Cancel analog for receives: withdraw a posted, unmatched irecv
  /// and error-complete it (done() turns true with failed() set). Returns
  /// false — and leaves the request alone — when it already matched, is a
  /// send (cancelling sends has never been meaningfully supported), or is
  /// inactive. Survivors use this to abandon receives whose live partner
  /// moved on after observing a failure this rank has also observed.
  bool cancel(Request& req);

  [[nodiscard]] Engine& engine() { return *engine_; }
  /// Gate towards `peer`, created lazily on first use (throws on self /
  /// out of range).
  [[nodiscard]] nmad::Gate& gate_to(int peer);
  /// This rank's overlay/routing layer (topology, gate table, forwarding).
  [[nodiscard]] Membership& membership() { return *membership_; }

 private:
  friend class World;
  friend class LocalRank;  // constructs its rank's Comm
  friend class CollOp;  // posts reserved-tag rounds through the _reserved paths
  Comm(int rank, Engine* engine, Membership* membership, int nranks)
      : rank_(rank),
        engine_(engine),
        membership_(membership),
        nranks_(nranks) {}

  /// Throws unless `peer` is a valid rank other than rank_.
  void check_peer(int peer, const char* who) const;
  /// Throws when an application operation names a reserved-space tag
  /// (kAnyTag is permitted on receives and rejected on sends, where it has
  /// never been valid).
  void check_app_tag(Tag tag, bool is_recv, const char* who) const;

  /// Unchecked variants for the collectives' own reserved-tag traffic.
  void isend_reserved(Request& req, int dst, Tag tag, const void* buf,
                      std::size_t len);
  void irecv_reserved(Request& req, int src, Tag tag, void* buf,
                      std::size_t cap);

  /// Failure drain: revoke a dying collective's whole tag epoch on every
  /// live gate (Gate::revoke_tags), so peers' rendezvous rounds targeting
  /// this rank — staged, in flight, or not yet sent — are NACKed and
  /// error-complete instead of parking forever for a FIN. Called once per
  /// failing CollOp, before it cancels its own round receives.
  void revoke_coll_epoch(uint32_t epoch);

  /// Type-erased iallreduce (the template above instantiates the combine).
  void iallreduce_raw(CollRequest& req, void* data, std::size_t count,
                      std::size_t elem_size, coll_detail::CombineFn combine,
                      ReduceOp op);
  /// Claim the next collective sequence number. Every rank issues its
  /// collectives in the same order (MPI semantics), so the counters agree
  /// cluster-wide and the epoch can live in the tags.
  uint32_t next_coll_epoch() {
    return coll_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  int rank_;
  Engine* engine_;
  /// Owned by this rank's LocalRank; routes every operation (direct gate,
  /// lazily created, or multi-hop forward in sparse mode).
  Membership* membership_;
  int nranks_;
  std::atomic<uint32_t> coll_epoch_{0};
};

}  // namespace piom::mpi
