// Membership: the per-rank overlay/routing layer that replaces the eager
// full mesh. Each rank owns a table of lazily created gates plus a *view* —
// the O(log N) set of peers it keeps (or is willing to keep) direct links
// to — and routes everything else hop by hop along the view.
//
// Two modes, selected by WorldConfig::overlay / $PIOM_OVERLAY:
//
//   * kDense  — the classic shape: every peer is "in view", next_hop(d) is
//     always d, nothing is ever forwarded. Gates are still created lazily
//     (on first send/recv towards a peer), so a world whose traffic touches
//     k pairs pays O(k) gates instead of O(N²) channels up front.
//   * kSparse — the view is a fanout-f heap tree (parent (r-1)/f, children
//     f·r+1 … f·r+f) plus the ring neighbours r±1: at most f+3 peers.
//     Application point-to-point traffic towards a peer OUTSIDE the view is
//     forwarded along the tree in kForward fragments (nmad/types.hpp) —
//     each hop rides the reliability layer, so the per-hop guarantee
//     composes end to end. Traffic towards view peers, and ALL
//     reserved-tag (collective/internal) traffic, stays on direct gates.
//
// The symmetry rule matters: in_view is symmetric (tree and ring edges are
// undirected), and both endpoints of a non-view pair forward — never one
// direct and one forwarded, which would deadlock tag matching (the direct
// half would land on a gate the other side never posts receives on).
//
// Failure handling in sparse mode needs one extra mechanism: a rank with no
// gate to the victim cannot time it out locally, so survivors that DO hold
// a verdict flood a death notice (kForward frame, dst = kForwardFloodDst,
// tag = kDeathNoticeTag, payload = the dead rank) along the view;
// receivers adopt it via FailureDetector::mark_dead_external and re-flood
// once (epidemic/gossip dissemination, deduplicated per dead rank).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "nmad/session.hpp"
#include "nmad/wildset.hpp"
#include "sync/spinlock.hpp"
#include "transport/channel.hpp"

namespace piom::mpi {

class FailureDetector;
class Membership;

using Tag = nmad::Tag;

enum class OverlayMode {
  kDense,   ///< full logical mesh, lazy gates, no forwarding
  kSparse,  ///< tree+ring view, multi-hop forwarding, tree collectives
};

[[nodiscard]] const char* overlay_mode_name(OverlayMode m);

/// Overlay/membership knobs (WorldConfig::overlay; RankConfig::overlay).
/// Unset fields defer to the environment at World/LocalRank construction.
struct OverlayConfig {
  /// Unset: $PIOM_OVERLAY = dense | sparse | auto (default auto). auto
  /// picks sparse when nranks >= the sparse threshold, dense below it.
  std::optional<OverlayMode> mode{};
  /// Tree fanout (>= 1). 0: $PIOM_FANOUT (default 4).
  int fanout = 0;
  /// auto cut-over point. 0: $PIOM_SPARSE_THRESHOLD (default 32).
  int sparse_threshold = 0;
};

/// Resolve the mode for an N-rank world (throws std::invalid_argument on a
/// malformed $PIOM_OVERLAY — junk must not silently pick a topology).
[[nodiscard]] OverlayMode resolve_overlay_mode(const OverlayConfig& config,
                                               int nranks);
/// Resolve the tree fanout (>= 1 enforced).
[[nodiscard]] int resolve_overlay_fanout(const OverlayConfig& config);

/// Sentinel tag of a death-notice flood frame. Lives at the very top of the
/// reserved space (above every collective window, below kAnyTag), only ever
/// appears inside kForward frames with dst == kForwardFloodDst, and is
/// never posted to a gate matcher — so it cannot collide with, or be
/// claimed by, any receive. The value lives in nmad/types.hpp with the
/// rest of the reserved-tag constants (the lint keeps reserved-space
/// literals in one file).
inline constexpr Tag kDeathNoticeTag = nmad::kDeathNoticeTag;

/// Creates + installs the gate pair for (this rank, peer) on demand: wires
/// the transport channels (both directions) and calls
/// Membership::install_gate on BOTH ranks' memberships — the peer's side
/// first, so its gate is being polled before our first packet can arrive.
/// Installed by World (in-process) before any traffic; must be idempotent
/// and callable concurrently for the same peer.
using GateConnector = std::function<void(int peer)>;

/// The non-gate wildcard/directed match point of one rank: where forwarded
/// messages (from ranks this rank has no direct gate to) are reassembled,
/// matched and delivered. Implements the WildPort half of the any-source
/// registry; directed receives from non-view sources are parked here too.
///
/// Matching mirrors Gate semantics: arrivals match the oldest compatible
/// posted receive; unmatched complete messages are staged; any-source
/// requests are claimed through RecvRequest::wild_claim with the same
/// locked re-check gates use, and the winner purges the sibling
/// registrations before completing.
class ForwardInbox final : public nmad::WildPort {
 public:
  explicit ForwardInbox(int nranks);

  // -- WildPort (any-source registrations; see nmad/wildset.hpp) --
  bool post_wild(nmad::RecvRequest& req) override;
  void remove_expected(nmad::RecvRequest& req) override;
  bool cancel_recv(nmad::RecvRequest& req) override;

  /// Park a directed receive for (src, tag): match a staged message first,
  /// else wait for one. Initialises `req` (like Gate::irecv); the source
  /// filter travels in req.source. Error-completes immediately when `src`
  /// is already known dead.
  void post_directed(nmad::RecvRequest& req, int src, Tag tag, void* buf,
                     std::size_t cap);

  /// One kForward fragment addressed to this rank: reassemble by
  /// (src, fseq); on the last fragment match/stage the whole message.
  /// Fragments may arrive out of order (retransmission on lossy links).
  void deliver(const nmad::ForwardFrame& frame);

  /// A source rank was declared failed: drop its staged + partial
  /// messages, error-complete directed receives parked on it, and — gate
  /// eviction semantics — claim and error-complete parked any-source
  /// registrations. Idempotent per source.
  void fail_source(int src);

  [[nodiscard]] std::size_t staged_count() const;
  [[nodiscard]] std::size_t parked_count() const;

 private:
  /// One complete, unmatched message.
  struct Staged {
    int src = -1;
    Tag tag = 0;
    uint64_t fseq = 0;
    std::vector<uint8_t> data;
  };
  /// One in-flight reassembly (keyed by (src, fseq)).
  struct Assembly {
    Tag tag = 0;
    std::vector<std::vector<uint8_t>> frags;
    uint16_t landed = 0;
  };

  /// Copy a message into a matched receive and complete it. Call WITHOUT
  /// lock_ (completion wakes waiters that may re-enter the inbox).
  static void complete_into(nmad::RecvRequest& req, Staged&& msg);
  static void fail_request(nmad::RecvRequest& req);

  const int nranks_;
  mutable sync::SpinLock lock_;
  /// Parked directed receives.
  std::vector<nmad::RecvRequest*> directed_ PIOM_GUARDED_BY(lock_);
  /// Parked any-source registrations.
  std::vector<nmad::RecvRequest*> wilds_ PIOM_GUARDED_BY(lock_);
  /// Complete, unmatched messages (FIFO).
  std::deque<Staged> staged_ PIOM_GUARDED_BY(lock_);
  std::map<std::pair<int, uint64_t>, Assembly> assembling_
      PIOM_GUARDED_BY(lock_);
  std::vector<bool> dead_ PIOM_GUARDED_BY(lock_);  ///< by source rank
};

/// Counters for tests/benches (monotonic; snapshot consistency not
/// promised).
struct MembershipStats {
  uint64_t forwards_originated = 0;  ///< forward sends started here
  uint64_t forwards_relayed = 0;     ///< frames re-emitted towards next hop
  uint64_t forwards_delivered = 0;   ///< frames delivered to the local inbox
  uint64_t forwards_dropped = 0;     ///< undeliverable frames (dead hop…)
  uint64_t death_notices = 0;        ///< death floods originated or relayed
};

class Membership {
 public:
  /// `session` must outlive the membership. `mode`/`fanout` must already be
  /// resolved (resolve_overlay_mode / resolve_overlay_fanout).
  Membership(nmad::Session& session, int rank, int nranks, OverlayMode mode,
             int fanout);
  ~Membership();

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  // ---- topology ----

  [[nodiscard]] OverlayMode mode() const { return mode_; }
  [[nodiscard]] bool sparse() const { return mode_ == OverlayMode::kSparse; }
  /// Sparse collectives (tree bcast/allreduce/barrier) selected?
  [[nodiscard]] bool sparse_collectives() const { return sparse(); }
  [[nodiscard]] int fanout() const { return fanout_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  /// Tree parent (-1 at the root) and children — meaningful in both modes
  /// (the tree collectives read them), but only the sparse view keeps the
  /// edges warm.
  [[nodiscard]] int parent() const { return parent_; }
  [[nodiscard]] const std::vector<int>& children() const { return children_; }
  /// The peers this rank keeps direct links to (sparse: tree + ring,
  /// <= fanout+3 entries; dense: everyone, represented implicitly).
  [[nodiscard]] const std::vector<int>& view() const { return view_; }
  /// True when `peer` may be talked to directly (always, in dense mode).
  /// Symmetric: in_view(a to b) == in_view(b to a).
  [[nodiscard]] bool in_view(int peer) const;
  /// First hop towards `dst`: dst itself when in view, else the child
  /// whose subtree contains dst, else the parent.
  [[nodiscard]] int next_hop(int dst) const;

  // ---- wiring (install order: connector, on_gate_created, detector —
  // ---- all before any traffic; see LocalRank::init / World) ----

  void set_connector(GateConnector connector);
  /// Hook run for every gate this membership installs (after the gate is
  /// fully initialised, before it is published): the pioman engine watches
  /// late gates here (PiomanEngine::watch_gate).
  void set_on_gate_created(std::function<void(nmad::Gate&)> cb);
  /// Attach the rank's failure detector: installs the membership's
  /// on_rank_failed callback (inbox eviction + sparse death flood +
  /// isolation rule) and lets gate installation mark gates to already-dead
  /// peers. The detector must outlive the membership's last use.
  void attach_detector(FailureDetector* fd);

  /// Eagerly create the sparse view's gates (no-op in dense mode). Called
  /// once at world construction so heartbeats flow along the overlay from
  /// the start — sparse failure detection depends on view gates existing.
  void establish_view();

  // ---- gate table ----

  /// Gate towards `peer`, creating it (and the peer's twin) through the
  /// connector on first use. Thread-safe; throws std::logic_error when no
  /// connector is installed and the gate does not exist.
  nmad::Gate& ensure_gate(int peer);
  /// Already-installed gate, or null. Never creates.
  [[nodiscard]] nmad::Gate* existing_gate(int peer) const;
  /// Install a gate over `rails` (idempotent — returns the existing gate
  /// when one is already installed). Applies recorded tag revocations and
  /// the dead-peer verdict to late gates, registers the gate with the
  /// any-source registry, and runs the on_gate_created hook.
  nmad::Gate& install_gate(int peer,
                           const std::vector<transport::IChannel*>& rails);
  /// Gates installed so far (the lazy-gate bound tests assert on this).
  [[nodiscard]] int installed_gates() const {
    return installed_.load(std::memory_order_acquire);
  }

  // ---- routing ----

  /// Origin side of a forwarded send: fragment + ship `buf` towards `dst`
  /// via next_hop(dst). Completion means "accepted by the first hop"
  /// (acked under reliability) — eager semantics, like Gate::isend below
  /// the rendezvous threshold. Error-completes immediately when dst (or
  /// synchronously, when the first hop) is already declared failed.
  void forward_send(nmad::SendRequest& req, int dst, Tag tag, const void* buf,
                    std::size_t len);

  /// Session forward handler (installed by the constructor): death notices
  /// are adopted + re-flooded, frames for this rank go to the inbox,
  /// everything else is relayed towards next_hop(frame.dst).
  void handle_forward(const nmad::ForwardFrame& frame);

  // ---- wildcard registry + inbox ----

  [[nodiscard]] nmad::WildSet& wilds() { return wilds_; }
  [[nodiscard]] ForwardInbox& inbox() { return inbox_; }

  // ---- revocation (Comm::revoke_coll_epoch, detector first verdict) ----

  /// Revoke a tag window on every installed gate AND record it for gates
  /// installed later — a late gate must refuse the same rendezvous traffic
  /// the eager ones do, or a dying collective's NACK guarantee would leak.
  void revoke_all(Tag mask, Tag value);

  [[nodiscard]] MembershipStats stats() const;

 private:
  /// Detector callback body: inbox eviction, sparse death flood, and the
  /// isolation rule (all gate peers dead => adopt the verdict for every
  /// rank — the shape of a rank whose node was cut off).
  void on_local_failure(int dead);
  /// Flood one death notice along the view, once per dead rank (deduped);
  /// `via` (the peer the notice arrived from, -1 for local verdicts) is
  /// excluded from the re-flood.
  void flood_death(int dead, int via);

  nmad::Session& session_;
  const int rank_;
  const int nranks_;
  const OverlayMode mode_;
  const int fanout_;
  int parent_ = -1;
  std::vector<int> children_;
  std::vector<int> view_;
  std::vector<bool> in_view_;  ///< by rank (sparse mode only)

  /// Serializes installation; the table itself is lock-free to read (one
  /// release store per entry, ever).
  std::mutex install_lock_;
  std::unique_ptr<std::atomic<nmad::Gate*>[]> gate_;
  std::atomic<int> installed_{0};
  GateConnector connector_;
  std::function<void(nmad::Gate&)> on_gate_created_;
  std::atomic<FailureDetector*> fd_{nullptr};

  nmad::WildSet wilds_;
  ForwardInbox inbox_;
  /// Origin message counters, per destination (reassembly + match order).
  std::unique_ptr<std::atomic<uint64_t>[]> fseq_;

  sync::SpinLock windows_lock_;
  /// Revocation windows, replayed on late gates.
  std::vector<std::pair<Tag, Tag>> windows_ PIOM_GUARDED_BY(windows_lock_);

  sync::SpinLock flood_lock_;
  /// Death notice already flooded, by rank.
  std::vector<bool> flooded_ PIOM_GUARDED_BY(flood_lock_);
  std::atomic<bool> isolating_{false};

  struct AtomicStats {
    std::atomic<uint64_t> originated{0};
    std::atomic<uint64_t> relayed{0};
    std::atomic<uint64_t> delivered{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> death_notices{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace piom::mpi
