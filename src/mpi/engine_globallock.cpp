#include "mpi/engine_globallock.hpp"

#include <thread>

namespace piom::mpi {

GlobalLockEngine::GlobalLockEngine(nmad::Session& session,
                                   GlobalLockEngineConfig config)
    : session_(session), config_(std::move(config)) {}

void GlobalLockEngine::locked_progress() {
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(big_lock_);
  session_.progress();
}

void GlobalLockEngine::isend(Request& req, nmad::Gate& gate, Tag tag,
                             const void* buf, std::size_t len) {
  req.arm(/*is_send=*/true);
  {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(big_lock_);
    // Inline submission: the caller's CPU does the packing and posting.
    gate.isend(req.send_req(), tag, buf, len, /*defer=*/false);
    session_.progress();
  }
}

void GlobalLockEngine::irecv(Request& req, nmad::Gate& gate, Tag tag,
                             void* buf, std::size_t cap) {
  req.arm(/*is_send=*/false);
  {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(big_lock_);
    gate.irecv(req.recv_req(), tag, buf, cap);
    session_.progress();
  }
}

void GlobalLockEngine::irecv_any(Request& req,
                                 const std::vector<nmad::Gate*>& gates,
                                 Tag tag, void* buf, std::size_t cap) {
  req.arm(/*is_send=*/false);
  {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(big_lock_);
    nmad::irecv_any_source(req.recv_req(), gates, tag, buf, cap);
    session_.progress();
  }
}

void GlobalLockEngine::wait(Request& req) {
  nmad::RequestCore& core = req.req_core();
  // Caller-driven progress: every blocked thread hammers the big lock.
  while (!core.completed()) {
    locked_progress();
    if (config_.yield_in_wait) std::this_thread::yield();
  }
}

bool GlobalLockEngine::test(Request& req) {
  if (req.done()) return true;
  locked_progress();
  return req.done();
}

}  // namespace piom::mpi
