#include "mpi/engine_globallock.hpp"

#include <thread>

#include "mpi/coll.hpp"
#include "nmad/wildset.hpp"

namespace piom::mpi {

GlobalLockEngine::GlobalLockEngine(nmad::Session& session,
                                   GlobalLockEngineConfig config)
    : session_(session), config_(std::move(config)) {}

void GlobalLockEngine::locked_progress() {
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(big_lock_);
  session_.progress();
}

void GlobalLockEngine::isend(Request& req, nmad::Gate& gate, Tag tag,
                             const void* buf, std::size_t len) {
  req.arm(/*is_send=*/true);
  {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(big_lock_);
    // Inline submission: the caller's CPU does the packing and posting.
    gate.isend(req.send_req(), tag, buf, len, /*defer=*/false);
    session_.progress();
  }
}

void GlobalLockEngine::irecv(Request& req, nmad::Gate& gate, Tag tag,
                             void* buf, std::size_t cap) {
  req.arm(/*is_send=*/false);
  {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(big_lock_);
    gate.irecv(req.recv_req(), tag, buf, cap);
    session_.progress();
  }
}

void GlobalLockEngine::irecv_any(Request& req, nmad::WildSet& wilds, Tag tag,
                                 void* buf, std::size_t cap) {
  req.arm(/*is_send=*/false);
  {
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(big_lock_);
    wilds.post(req.recv_req(), tag, buf, cap);
    session_.progress();
  }
}

void GlobalLockEngine::wait(Request& req) {
  nmad::RequestCore& core = req.req_core();
  // Caller-driven progress: every blocked thread hammers the big lock.
  // In-flight collectives must advance here too — a rank blocked on a
  // point-to-point wait may owe other ranks its collective rounds.
  while (!core.completed()) {
    locked_progress();
    advance_colls();
    if (config_.yield_in_wait) std::this_thread::yield();
  }
}

bool GlobalLockEngine::test(Request& req) {
  if (req.done()) return true;
  locked_progress();
  advance_colls();
  return req.done();
}

bool GlobalLockEngine::test_coll(CollOp& op) {
  // Not the base default (progress() + advance_colls()): our progress()
  // already sweeps the registry, so that path would sweep twice per call —
  // wasteful on wait_coll's hard spin.
  if (op.done()) return true;
  locked_progress();
  advance_colls();
  return op.done();
}

void GlobalLockEngine::wait_coll(CollOp& op) {
  // Same spin as wait(): test_coll drives progress + collectives; the
  // OpenMPI flavour yields between attempts, MVAPICH hard-spins.
  while (!test_coll(op)) {
    if (config_.yield_in_wait) std::this_thread::yield();
  }
}

}  // namespace piom::mpi
