#include "mpi/request.hpp"

// Request is header-only today; the TU anchors the object file and hosts a
// layout sanity check (a Request must stay trivially embeddable in arrays
// used by the latency benchmarks).
namespace piom::mpi {
static_assert(!std::is_copy_constructible_v<Request>);
}  // namespace piom::mpi
