// Nonblocking collectives: every collective is a CollOp — a resumable
// state machine that owns its round/phase cursor and the in-flight
// point-to-point Requests of the current round. A CollOp never blocks:
// advance() polls the in-flight requests and, once the round has landed,
// runs the round's continuation (reduce-combine, forwarding) and posts the
// next round. The owning rank's progress engine keeps a registry of live
// CollOps and advances them opportunistically from its progress paths
// (pioman's background poll tasks, the global-lock engines' caller-driven
// progress) — so a rank that starts an iallreduce() and goes off to
// compute still drives the collective forward, which is the paper's core
// claim applied to collectives. Blocking collectives are i…() + wait().
//
// Tag-epoch layout. Collective traffic travels in the reserved tag space
// (nmad::kReservedTagBase and up) so it composes with application
// point-to-point traffic. Several collectives can be in flight on one
// communicator at once, so the reserved tag folds in a per-communicator
// collective sequence number (the epoch — every rank calls collectives in
// the same order, MPI semantics, so epochs agree cluster-wide):
//
//   bits 31..28   0xF      reserved-space marker (kReservedTagBase)
//   bits 27..16   epoch    per-Comm collective counter, mod 2^12
//   bits 15..12   kind     CollTagKind sub-window (barrier, bcast, ...)
//   bits 11..0    phase    round / step index within the collective
//
// Without the epoch two in-flight collectives of the same kind reuse
// identical tags and cross-match (e.g. two ibcasts from different roots:
// the second root's fan-out can overtake a slow first root and land in the
// first ibcast's posted receive). The 12-bit phase bounds cluster sizes at
// 2^12 ranks (alltoall runs N-1 rounds); epochs wrap mod 2^12, which
// collides only if 4096 collectives are simultaneously in flight.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "mpi/request.hpp"
#include "nmad/types.hpp"

namespace piom::mpi {

class Comm;
class Engine;

/// Reduction operators for allreduce() / iallreduce().
enum class ReduceOp { kSum, kMax, kMin };

/// Tag sub-window of one collective flavour (bits 15..12 of the reserved
/// tag; allreduce uses three windows, one per algorithm stage).
enum class CollTagKind : uint32_t {
  kBarrier = 0,
  kBcast = 1,
  kAllreduceRd = 2,    ///< recursive-doubling exchange (power-of-two N)
  kAllreduceRs = 3,    ///< ring reduce-scatter step
  kAllreduceAg = 4,    ///< ring allgather step
  kGather = 5,
  kScatter = 6,
  kAlltoall = 7,
  kAllreduceUp = 8,    ///< tree allreduce: child -> parent partials
  kAllreduceDown = 9,  ///< tree allreduce: parent -> child result
};

inline constexpr uint32_t kCollEpochMask = 0xfffu;
inline constexpr uint32_t kCollPhaseMask = 0xfffu;

/// Reserved-space tag of (collective epoch, flavour, round).
[[nodiscard]] constexpr Tag make_coll_tag(CollTagKind kind, uint32_t epoch,
                                          uint32_t phase) {
  return nmad::kReservedTagBase | ((epoch & kCollEpochMask) << 16) |
         (static_cast<uint32_t>(kind) << 12) | (phase & kCollPhaseMask);
}

/// Revocation window of one collective epoch — marker + epoch bits, kind
/// and phase left free, so (tag & mask) == window matches every round tag
/// the epoch can ever produce. A failing CollOp revokes this window on all
/// live gates (Gate::revoke_tags) so peers' rendezvous rounds aimed at a
/// rank that will never post the matching receives are NACKed instead of
/// parking forever.
inline constexpr Tag kCollEpochWindowMask =
    nmad::kReservedTagBase | (Tag{kCollEpochMask} << 16);
[[nodiscard]] constexpr Tag coll_epoch_window(uint32_t epoch) {
  return nmad::kReservedTagBase | ((epoch & kCollEpochMask) << 16);
}

namespace coll_detail {
/// Element-wise reduction, instantiated per arithmetic type and reached
/// through a function pointer so CollOp stays type-erased.
template <typename T>
void combine(void* into, const void* other, std::size_t count, ReduceOp op) {
  auto* a = static_cast<T*>(into);
  const auto* b = static_cast<const T*>(other);
  for (std::size_t i = 0; i < count; ++i) {
    switch (op) {
      case ReduceOp::kSum: a[i] = a[i] + b[i]; break;
      case ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
      case ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
    }
  }
}
using CombineFn = void (*)(void*, const void*, std::size_t, ReduceOp);
}  // namespace coll_detail

/// One in-flight collective: the handle Comm::i…() fills in (caller-owned
/// storage, like Request) and the state machine the engine advances. The
/// storage — and every buffer passed to the i…() call — must stay valid
/// until done() is observed true (via Comm::test()/wait()). A completed
/// CollOp may be reused for a later collective.
class CollOp {
 public:
  CollOp() = default;
  CollOp(const CollOp&) = delete;
  CollOp& operator=(const CollOp&) = delete;

  /// True once the collective has completed (stable until reuse).
  [[nodiscard]] bool done() const { return core_.completed(); }
  /// True when the collective error-completed because a rank failed
  /// mid-flight (ULFM-style: one dead rank poisons every in-flight and
  /// subsequent collective on the communicator — each survivor detects
  /// the failure independently, so no outcome-agreement protocol runs).
  /// Only meaningful once done().
  [[nodiscard]] bool failed() const {
    return done() && core_.has_failed();
  }
  /// True once the handle has carried a collective. Like Request::active()
  /// it stays true after completion (check done() for in-flight-ness).
  [[nodiscard]] bool active() const { return active_; }

  // -- engine-internal access --
  nmad::RequestCore& core() { return core_; }
  /// Advance as far as the in-flight requests allow. Returns true when the
  /// whole collective has finished (the engine then delists the op and
  /// calls core().complete() as its final touch). Must only be called by
  /// the owning engine's serialized progression sweep.
  bool advance();

 private:
  friend class Comm;

  /// Algorithm selected at start (kept distinct from CollTagKind: the two
  /// allreduce algorithms share one API kind but use different windows).
  enum class Algo : uint8_t {
    kBarrier,
    kBcast,
    kAllreduceRd,    ///< recursive doubling (N power of two)
    kAllreduceRing,  ///< ring reduce-scatter + allgather (other N)
    kGather,
    kScatter,
    kAlltoall,
    // Sparse-overlay variants: every edge is a membership-view (tree)
    // edge, so an N-rank collective touches O(fanout) gates per rank
    // instead of O(N) — selected when Membership::sparse_collectives().
    kBarrierTree,    ///< fan-in to the tree root, fan-out back
    kBcastTree,      ///< root hands off to rank 0, then tree flood
    kAllreduceTree,  ///< reduce up the tree, broadcast the result down
  };

  // start_*: reset the handle, record parameters, pick the algorithm.
  // Called by Comm::i…(), which then hands the op to the engine.
  void start(Comm& comm, Algo algo, uint32_t epoch);
  void start_barrier(Comm& comm, uint32_t epoch);
  void start_bcast(Comm& comm, uint32_t epoch, void* buf, std::size_t len,
                   int root);
  void start_allreduce(Comm& comm, uint32_t epoch, void* data,
                       std::size_t count, std::size_t elem_size,
                       coll_detail::CombineFn combine, ReduceOp op);
  void start_gather(Comm& comm, uint32_t epoch, const void* sendbuf,
                    std::size_t len, void* recvbuf, int root);
  void start_scatter(Comm& comm, uint32_t epoch, const void* sendbuf,
                     std::size_t len, void* recvbuf, int root);
  void start_alltoall(Comm& comm, uint32_t epoch, const void* sendbuf,
                      std::size_t len, void* recvbuf);

  /// Failure teardown: cancel the round's parked receives, then finish
  /// with core_ marked failed once every request is terminal. Returns true
  /// when the op may be delisted (mirrors advance()).
  bool advance_failing();

  /// Run the current phase's continuation and post the next round's
  /// point-to-point requests. Returns false when the collective finished.
  bool step();
  bool step_barrier();
  bool step_bcast();
  bool step_allreduce_rd();
  bool step_allreduce_ring();
  bool step_gather();
  bool step_scatter();
  bool step_alltoall();
  bool step_barrier_tree();
  bool step_bcast_tree();
  bool step_allreduce_tree();

  [[nodiscard]] Tag tag(CollTagKind kind, uint32_t phase) const {
    return make_coll_tag(kind, epoch_, phase);
  }
  /// Post a send/receive for the current round (requests live in reqs_
  /// until the round completes; deque keeps them pinned in place).
  void post_send(int dst, Tag t, const void* buf, std::size_t len);
  void post_recv(int src, Tag t, void* buf, std::size_t cap);
  /// Ring allreduce chunking: first element of chunk `c`.
  [[nodiscard]] std::size_t chunk_begin(int c, int n) const {
    return (count_ * static_cast<std::size_t>(c)) / static_cast<std::size_t>(n);
  }

  Comm* comm_ = nullptr;
  Algo algo_ = Algo::kBarrier;
  uint32_t epoch_ = 0;
  int cursor_ = 0;  ///< round / phase / step index (meaning per algorithm)
  int stage_ = 0;   ///< coarse sub-state (bcast recv/send, ring RS/AG)
  int mask_ = 0;    ///< bcast: binomial position after the parent search
  std::deque<Request> reqs_;  ///< current round's in-flight p2p requests

  // Parameters (union-of-needs across the algorithms).
  void* buf_ = nullptr;         ///< in/out payload (bcast, allreduce, recv side)
  const void* sbuf_ = nullptr;  ///< read-only payload (gather/scatter/alltoall)
  std::size_t len_ = 0;         ///< per-block byte count
  int root_ = 0;
  std::size_t count_ = 0;       ///< allreduce: element count
  std::size_t esize_ = 0;       ///< allreduce: element size
  ReduceOp rop_ = ReduceOp::kSum;
  coll_detail::CombineFn combine_ = nullptr;
  std::vector<uint8_t> scratch_;  ///< allreduce: partner data / ring chunk

  bool active_ = false;
  bool failing_ = false;  ///< a rank died: draining towards error completion
  bool revoked_ = false;  ///< failure drain announced (epoch revoked)
  nmad::RequestCore core_;
};

/// The handle name the API speaks (MPI_Request for collectives).
using CollRequest = CollOp;

}  // namespace piom::mpi
