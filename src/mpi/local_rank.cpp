#include "mpi/local_rank.hpp"

#include <stdexcept>
#include <string>

#include "mpi/engine_globallock.hpp"
#include "mpi/world.hpp"

namespace piom::mpi {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kPioman: return "pioman";
    case EngineKind::kMvapichLike: return "mvapich-like";
    case EngineKind::kOpenMpiLike: return "openmpi-like";
  }
  return "?";
}

LocalRank::LocalRank(
    int rank, int nranks,
    const std::vector<std::vector<transport::IChannel*>>& rails_by_peer,
    const RankConfig& config)
    : rank_(rank), nranks_(nranks) {
  if (nranks < 2) throw std::invalid_argument("LocalRank: nranks >= 2");
  if (rank < 0 || rank >= nranks) {
    throw std::invalid_argument("LocalRank: rank out of range");
  }
  if (rails_by_peer.size() != static_cast<std::size_t>(nranks)) {
    throw std::invalid_argument(
        "LocalRank: rails_by_peer must have one entry per rank");
  }
  init(rails_by_peer, config);
}

LocalRank::LocalRank(transport::Bootstrap bootstrap, const RankConfig& config)
    : rank_(bootstrap.rank()),
      nranks_(bootstrap.nranks()),
      bootstrap_(std::make_unique<transport::Bootstrap>(std::move(bootstrap))) {
  std::vector<std::vector<transport::IChannel*>> rails(
      static_cast<std::size_t>(nranks_));
  for (int peer = 0; peer < nranks_; ++peer) {
    if (peer == rank_) continue;
    rails[static_cast<std::size_t>(peer)] = {
        bootstrap_->channels()[static_cast<std::size_t>(peer)]};
  }
  init(rails, config);
}

void LocalRank::init(
    const std::vector<std::vector<transport::IChannel*>>& rails_by_peer,
    const RankConfig& config) {
  session_ = std::make_unique<nmad::Session>(
      "rank" + std::to_string(rank_), config.session);
  // The membership layer owns the by-peer gate table and the routing
  // policy; its constructor installs the session's forward handler and the
  // wildcard registry's inbox port, so it must exist before any gate.
  membership_ = std::make_unique<Membership>(
      *session_, rank_, nranks_,
      resolve_overlay_mode(config.overlay, nranks_),
      resolve_overlay_fanout(config.overlay));
  // Eagerly install the gates whose rails the caller provided (the
  // multi-process bootstrap shape wires every peer upfront; World passes
  // all-empty entries and relies on lazy connection instead).
  for (int peer = 0; peer < nranks_; ++peer) {
    if (peer == rank_) continue;
    const auto& rails = rails_by_peer[static_cast<std::size_t>(peer)];
    if (!rails.empty()) membership_->install_gate(peer, rails);
  }
  switch (config.engine) {
    case EngineKind::kPioman: {
      auto engine = std::make_unique<PiomanEngine>(*session_, config.pioman);
      engine->start_progress();  // covers the eager gates above
      // Gates installed from here on (lazy wiring) join the poll set
      // through the membership's creation hook.
      PiomanEngine* raw = engine.get();
      membership_->set_on_gate_created(
          [raw](nmad::Gate& g) { raw->watch_gate(g); });
      engine_ = std::move(engine);
      break;
    }
    case EngineKind::kMvapichLike: {
      GlobalLockEngineConfig glc;
      glc.label = "mvapich-like";
      glc.yield_in_wait = false;
      engine_ = std::make_unique<GlobalLockEngine>(*session_, glc);
      break;
    }
    case EngineKind::kOpenMpiLike: {
      GlobalLockEngineConfig glc;
      glc.label = "openmpi-like";
      glc.yield_in_wait = true;
      engine_ = std::make_unique<GlobalLockEngine>(*session_, glc);
      break;
    }
  }
  if (config.failure.enabled) {
    detector_ = std::make_unique<FailureDetector>(*session_, rank_, nranks_,
                                                  config.failure);
    engine_->attach_detector(detector_.get());
    membership_->attach_detector(detector_.get());
  }
  comm_.reset(new Comm(rank_, engine_.get(), membership_.get(), nranks_));
}

LocalRank::~LocalRank() { shutdown(); }

void LocalRank::shutdown() {
  if (engine_) engine_->shutdown();
}

}  // namespace piom::mpi
