// CollOp — the resumable state machines behind the nonblocking
// collectives (see coll.hpp for the progression model and the tag-epoch
// layout). Each step() call runs the continuation of the round that just
// completed (combine for allreduce, forwarding for bcast) and posts the
// next round's point-to-point requests; advance() loops step() as long as
// rounds complete instantly (shmem fast path), so a collective needs no
// more progression passes than it has network round trips.
//
// Algorithms (unchanged from the blocking originals; each exercises a
// different traffic pattern of the mesh):
//   * barrier    — dissemination: ceil(log2 N) rounds, round k exchanges a
//                  zero-byte token with ranks ±2^k;
//   * bcast      — binomial tree rooted at `root`, largest subtree first;
//   * allreduce  — recursive doubling (hypercube) when N is a power of
//                  two, ring reduce-scatter + allgather otherwise;
//   * gather /
//     scatter    — linear fan-in/fan-out at the root, all peers at once;
//   * alltoall   — pairwise exchange, N-1 rounds of disjoint sendrecvs.
#include "mpi/coll.hpp"

#include <cstring>

#include "mpi/world.hpp"

namespace piom::mpi {

void CollOp::start(Comm& comm, Algo algo, uint32_t epoch) {
  comm_ = &comm;
  algo_ = algo;
  epoch_ = epoch;
  cursor_ = 0;
  stage_ = 0;
  mask_ = 0;
  reqs_.clear();
  active_ = true;
  failing_ = false;
  revoked_ = false;
  core_.reset();
}

void CollOp::start_barrier(Comm& comm, uint32_t epoch) {
  // Sparse overlays swap the dissemination pattern (ranks ±2^k — mostly
  // off-view peers) for a fan-in/fan-out over the membership tree, whose
  // edges all have live gates. Same for bcast/allreduce below; gather,
  // scatter and alltoall keep their dense algorithms (rooted/pairwise data
  // movement is inherently all-pairs — the reserved-direct rule in
  // Comm::isend_reserved wires their gates on demand).
  start(comm,
        comm.membership().sparse_collectives() ? Algo::kBarrierTree
                                               : Algo::kBarrier,
        epoch);
}

void CollOp::start_bcast(Comm& comm, uint32_t epoch, void* buf,
                         std::size_t len, int root) {
  start(comm,
        comm.membership().sparse_collectives() ? Algo::kBcastTree
                                               : Algo::kBcast,
        epoch);
  buf_ = buf;
  len_ = len;
  root_ = root;
}

void CollOp::start_allreduce(Comm& comm, uint32_t epoch, void* data,
                             std::size_t count, std::size_t elem_size,
                             coll_detail::CombineFn combine, ReduceOp op) {
  const int n = comm.size();
  if (comm.membership().sparse_collectives()) {
    start(comm, Algo::kAllreduceTree, epoch);
    buf_ = data;
    count_ = count;
    esize_ = elem_size;
    combine_ = combine;
    rop_ = op;
    // One slot per child: the up phase receives every child's partial
    // vector concurrently.
    scratch_.resize(comm.membership().children().size() * count * elem_size);
    return;
  }
  const bool pow2 = (n & (n - 1)) == 0;
  start(comm, pow2 ? Algo::kAllreduceRd : Algo::kAllreduceRing, epoch);
  buf_ = data;
  count_ = count;
  esize_ = elem_size;
  combine_ = combine;
  rop_ = op;
  if (pow2) {
    // Recursive doubling swaps the whole vector every phase.
    scratch_.resize(count * elem_size);
  } else {
    // The ring moves one of N near-equal chunks per step.
    scratch_.resize((count / static_cast<std::size_t>(n) + 1) * elem_size);
  }
}

void CollOp::start_gather(Comm& comm, uint32_t epoch, const void* sendbuf,
                          std::size_t len, void* recvbuf, int root) {
  start(comm, Algo::kGather, epoch);
  sbuf_ = sendbuf;
  buf_ = recvbuf;
  len_ = len;
  root_ = root;
}

void CollOp::start_scatter(Comm& comm, uint32_t epoch, const void* sendbuf,
                           std::size_t len, void* recvbuf, int root) {
  start(comm, Algo::kScatter, epoch);
  sbuf_ = sendbuf;
  buf_ = recvbuf;
  len_ = len;
  root_ = root;
}

void CollOp::start_alltoall(Comm& comm, uint32_t epoch, const void* sendbuf,
                            std::size_t len, void* recvbuf) {
  start(comm, Algo::kAlltoall, epoch);
  sbuf_ = sendbuf;
  buf_ = recvbuf;
  len_ = len;
}

void CollOp::post_send(int dst, Tag t, const void* buf, std::size_t len) {
  reqs_.emplace_back();
  comm_->isend_reserved(reqs_.back(), dst, t, buf, len);
}

void CollOp::post_recv(int src, Tag t, void* buf, std::size_t cap) {
  reqs_.emplace_back();
  comm_->irecv_reserved(reqs_.back(), src, t, buf, cap);
}

bool CollOp::advance() {
  for (;;) {
    if (!failing_ &&
        (comm_->engine().has_failures() ||
         std::any_of(reqs_.begin(), reqs_.end(),
                     [](const Request& r) { return r.failed(); }))) {
      // A rank died — either our detector said so, or a round request
      // error-completed against an evicted gate. Stop running rounds: a
      // poisoned peer will never send its share, so the algorithm cannot
      // finish. Every survivor reaches this branch on its own detection.
      failing_ = true;
    }
    if (failing_) return advance_failing();
    for (const Request& r : reqs_) {
      if (!r.done()) return false;  // the round is still on the wire
      // Re-check failed() under the done() acquire: the detector's
      // fail_peer may error-complete a round request between the scan
      // above and this one, and a failed round that slips through here
      // would be cleared below and its rank's failure silently dropped.
      // (done() is read first on purpose — mark_failed happens-before the
      // completion store, so observing done==true makes failed() visible.)
      if (r.failed()) {
        failing_ = true;
        break;
      }
    }
    if (failing_) continue;
    reqs_.clear();
    if (!step()) return true;
  }
}

bool CollOp::advance_failing() {
  // Error-completion drain, two halves:
  //
  // Outbound (once): revoke this epoch's whole tag window on every live
  // gate. A peer that also entered its drain cancels its round receives —
  // or never posts them at all if it was a round behind — so our
  // *rendezvous* sends to it would park for a FIN that cannot come. The
  // revocation makes that peer NACK our RTS (staged or still in flight)
  // and the send error-completes. The sender cannot withdraw such a send
  // unilaterally: a matched RTS may have an RDMA pull in flight against
  // its buffer. Eager sends need none of this — they complete on ack/TX,
  // severed channels included.
  //
  // Inbound (every sweep): receives parked on *live* peers must be
  // cancelled — the sender is a survivor that also observed the failure
  // and will never run this round; waiting on it would trade a hang on
  // the dead rank for a hang on a live one. (Receives on the dead gate
  // were already error-completed by its eviction.)
  if (!revoked_) {
    revoked_ = true;
    comm_->revoke_coll_epoch(epoch_);
  }
  bool all_done = true;
  for (Request& r : reqs_) {
    if (r.done()) continue;
    if (!r.is_send()) {
      nmad::RecvRequest& rr = r.recv_req();
      if (rr.wild_set != nullptr) {
        rr.wild_set->cancel(rr);
      } else if (rr.port != nullptr) {
        rr.port->cancel_recv(rr);
      } else if (rr.gate != nullptr) {
        rr.gate->cancel_recv(rr);
      }
    }
    if (!r.done()) all_done = false;  // matched mid-cancel: next sweep
  }
  if (!all_done) return false;
  reqs_.clear();
  // Failed BEFORE the registry's complete(): the done-acquire in the
  // owner's test()/wait() synchronizes the flag.
  core_.mark_failed();
  return true;
}

bool CollOp::step() {
  switch (algo_) {
    case Algo::kBarrier: return step_barrier();
    case Algo::kBcast: return step_bcast();
    case Algo::kAllreduceRd: return step_allreduce_rd();
    case Algo::kAllreduceRing: return step_allreduce_ring();
    case Algo::kGather: return step_gather();
    case Algo::kScatter: return step_scatter();
    case Algo::kAlltoall: return step_alltoall();
    case Algo::kBarrierTree: return step_barrier_tree();
    case Algo::kBcastTree: return step_bcast_tree();
    case Algo::kAllreduceTree: return step_allreduce_tree();
  }
  return false;
}

bool CollOp::step_barrier() {
  // Dissemination: after round k every rank has (transitively) heard from
  // 2^(k+1) predecessors; ceil(log2 N) rounds synchronize everyone.
  const int n = comm_->size();
  const int rank = comm_->rank();
  const int k = 1 << cursor_;
  if (k >= n) return false;
  const Tag t = tag(CollTagKind::kBarrier, static_cast<uint32_t>(cursor_));
  post_recv((rank - k + n) % n, t, nullptr, 0);
  post_send((rank + k) % n, t, nullptr, 0);
  ++cursor_;
  return true;
}

bool CollOp::step_bcast() {
  const int n = comm_->size();
  const int rank = comm_->rank();
  const int vrank = (rank - root_ + n) % n;
  const Tag t = tag(CollTagKind::kBcast, 0);
  if (stage_ == 0) {
    // The parent differs at vrank's lowest set bit; the root (vrank 0) has
    // none and the search runs off the top.
    int mask = 1;
    while (mask < n && (vrank & mask) == 0) mask <<= 1;
    mask_ = mask;
    stage_ = 1;
    if (mask < n) {
      post_recv((rank - mask + n) % n, t, buf_, len_);
      return true;  // forward only once the payload has landed
    }
    // Root: nothing to receive, fan out immediately.
  }
  if (stage_ == 1) {
    stage_ = 2;
    // Children, largest subtree first (they have the most forwarding of
    // their own left to do).
    for (int m = mask_ >> 1; m > 0; m >>= 1) {
      if (vrank + m < n) post_send((rank + m) % n, t, buf_, len_);
    }
    return true;  // leaves post nothing; the advance loop re-enters step()
  }
  return false;
}

bool CollOp::step_allreduce_rd() {
  // Power of two: phase k swaps the running result with the partner across
  // hypercube dimension k, then folds the partner's vector in.
  const int n = comm_->size();
  if (cursor_ > 0) combine_(buf_, scratch_.data(), count_, rop_);
  const int mask = 1 << cursor_;
  if (mask >= n) return false;
  const int partner = comm_->rank() ^ mask;
  const Tag t =
      tag(CollTagKind::kAllreduceRd, static_cast<uint32_t>(cursor_));
  post_recv(partner, t, scratch_.data(), count_ * esize_);
  post_send(partner, t, buf_, count_ * esize_);
  ++cursor_;
  return true;
}

bool CollOp::step_allreduce_ring() {
  // Non-power-of-two: ring reduce-scatter then ring allgather over N
  // near-equal element chunks (chunk c = elements [begin(c), begin(c+1))).
  const int n = comm_->size();
  const int rank = comm_->rank();
  const int next = (rank + 1) % n;
  const int prev = (rank - 1 + n) % n;
  auto* data = static_cast<uint8_t*>(buf_);
  if (stage_ == 0) {
    // Reduce-scatter: after step s, rank r holds the partial reduction of
    // s+2 ranks' chunk (r-s-1); after N-1 steps chunk (r+1) is complete.
    if (cursor_ > 0) {
      const int s = cursor_ - 1;
      const int recv_c = ((rank - s - 1) % n + n) % n;
      const std::size_t rlen = chunk_begin(recv_c + 1, n) - chunk_begin(recv_c, n);
      combine_(data + chunk_begin(recv_c, n) * esize_, scratch_.data(), rlen,
               rop_);
    }
    if (cursor_ < n - 1) {
      const int s = cursor_;
      const int send_c = ((rank - s) % n + n) % n;
      const int recv_c = ((rank - s - 1) % n + n) % n;
      const std::size_t rlen = chunk_begin(recv_c + 1, n) - chunk_begin(recv_c, n);
      const std::size_t slen = chunk_begin(send_c + 1, n) - chunk_begin(send_c, n);
      const Tag t = tag(CollTagKind::kAllreduceRs, static_cast<uint32_t>(s));
      post_recv(prev, t, scratch_.data(), rlen * esize_);
      post_send(next, t, data + chunk_begin(send_c, n) * esize_,
                slen * esize_);
      ++cursor_;
      return true;
    }
    stage_ = 1;
    cursor_ = 0;
  }
  // Allgather: circulate the completed chunks the rest of the way round.
  if (cursor_ >= n - 1) return false;
  const int s = cursor_;
  const int send_c = ((rank + 1 - s) % n + n) % n;
  const int recv_c = ((rank - s) % n + n) % n;
  const std::size_t rlen = chunk_begin(recv_c + 1, n) - chunk_begin(recv_c, n);
  const std::size_t slen = chunk_begin(send_c + 1, n) - chunk_begin(send_c, n);
  const Tag t = tag(CollTagKind::kAllreduceAg, static_cast<uint32_t>(s));
  post_recv(prev, t, data + chunk_begin(recv_c, n) * esize_, rlen * esize_);
  post_send(next, t, data + chunk_begin(send_c, n) * esize_, slen * esize_);
  ++cursor_;
  return true;
}

bool CollOp::step_gather() {
  // Linear fan-in: one round — the root posts all N-1 receives at once
  // (the N-way gate contention case), everyone else one send.
  if (cursor_ > 0) return false;
  cursor_ = 1;
  const int n = comm_->size();
  const int rank = comm_->rank();
  const Tag t = tag(CollTagKind::kGather, 0);
  if (rank != root_) {
    post_send(root_, t, sbuf_, len_);
    return true;
  }
  auto* out = static_cast<uint8_t*>(buf_);
  if (len_ > 0) {
    std::memcpy(out + static_cast<std::size_t>(rank) * len_, sbuf_, len_);
  }
  for (int p = 0; p < n; ++p) {
    if (p == rank) continue;
    post_recv(p, t, out + static_cast<std::size_t>(p) * len_, len_);
  }
  return true;
}

bool CollOp::step_scatter() {
  // Linear fan-out: mirror of gather.
  if (cursor_ > 0) return false;
  cursor_ = 1;
  const int n = comm_->size();
  const int rank = comm_->rank();
  const Tag t = tag(CollTagKind::kScatter, 0);
  if (rank != root_) {
    post_recv(root_, t, buf_, len_);
    return true;
  }
  const auto* in = static_cast<const uint8_t*>(sbuf_);
  if (len_ > 0) {
    std::memcpy(buf_, in + static_cast<std::size_t>(rank) * len_, len_);
  }
  for (int p = 0; p < n; ++p) {
    if (p == rank) continue;
    post_send(p, t, in + static_cast<std::size_t>(p) * len_, len_);
  }
  return true;
}

bool CollOp::step_alltoall() {
  // Pairwise exchange: in round s every rank talks to ranks ±s — all N
  // ranks busy every round, no hot spot.
  const int n = comm_->size();
  const int rank = comm_->rank();
  const auto* in = static_cast<const uint8_t*>(sbuf_);
  auto* out = static_cast<uint8_t*>(buf_);
  if (cursor_ == 0) {
    if (len_ > 0) {
      std::memcpy(out + static_cast<std::size_t>(rank) * len_,
                  in + static_cast<std::size_t>(rank) * len_, len_);
    }
    cursor_ = 1;
  }
  if (cursor_ >= n) return false;
  const int s = cursor_;
  const int dst = (rank + s) % n;
  const int src = (rank - s + n) % n;
  const Tag t = tag(CollTagKind::kAlltoall, static_cast<uint32_t>(s));
  post_recv(src, t, out + static_cast<std::size_t>(src) * len_, len_);
  post_send(dst, t, in + static_cast<std::size_t>(dst) * len_, len_);
  ++cursor_;
  return true;
}

// -- sparse-overlay tree variants ------------------------------------------
//
// All three walk the membership's heap tree (root rank 0, fanout f): every
// edge is parent<->child and therefore has — or lazily gets — a live gate
// inside the view, so an N-rank collective costs each rank O(f) gates and
// O(log_f N) latency instead of the dense algorithms' O(N)/O(log2 N)-over-
// arbitrary-pairs pattern. The tree is rooted at rank 0 regardless of the
// API-level root; a rooted bcast first hands the payload to rank 0.

bool CollOp::step_barrier_tree() {
  // Fan-in to rank 0 (a rank reports once its subtree has), then fan-out
  // back down: when the release token reaches a rank every rank has
  // entered the barrier.
  const Membership& m = comm_->membership();
  const int rank = comm_->rank();
  if (stage_ == 0) {
    stage_ = 1;
    for (int c : m.children()) {
      post_recv(c, tag(CollTagKind::kBarrier, 0), nullptr, 0);
    }
    if (!m.children().empty()) return true;
  }
  if (stage_ == 1) {
    stage_ = 2;
    if (rank != 0) {
      post_send(m.parent(), tag(CollTagKind::kBarrier, 0), nullptr, 0);
      post_recv(m.parent(), tag(CollTagKind::kBarrier, 1), nullptr, 0);
      return true;
    }
  }
  if (stage_ == 2) {
    stage_ = 3;
    for (int c : m.children()) {
      post_send(c, tag(CollTagKind::kBarrier, 1), nullptr, 0);
    }
    if (!m.children().empty()) return true;
  }
  return false;
}

bool CollOp::step_bcast_tree() {
  // The tree is rooted at rank 0; a bcast from another root starts with a
  // direct handoff root -> rank 0 (phase 1 tag), then floods down the tree
  // (phase 0 tag). The root also gets its payload back through the tree —
  // a redundant copy into its own buffer, kept for uniformity.
  const Membership& m = comm_->membership();
  const int rank = comm_->rank();
  if (stage_ == 0) {
    stage_ = 1;
    if (root_ != 0) {
      const Tag t = tag(CollTagKind::kBcast, 1);
      if (rank == root_) {
        post_send(0, t, buf_, len_);
        return true;
      }
      if (rank == 0) {
        post_recv(root_, t, buf_, len_);
        return true;
      }
    }
  }
  if (stage_ == 1) {
    stage_ = 2;
    if (rank != 0) {
      post_recv(m.parent(), tag(CollTagKind::kBcast, 0), buf_, len_);
      return true;  // forward only once the payload has landed
    }
  }
  if (stage_ == 2) {
    stage_ = 3;
    for (int c : m.children()) {
      post_send(c, tag(CollTagKind::kBcast, 0), buf_, len_);
    }
    if (!m.children().empty()) return true;
  }
  return false;
}

bool CollOp::step_allreduce_tree() {
  // Reduce up (every rank combines its children's partials into buf_, then
  // reports to its parent), broadcast the final vector back down. The
  // up-send and the down-receive are separate rounds on purpose: both name
  // buf_, and a rendezvous up-send pulls from the buffer at FIN time — the
  // down-receive must not be writing into it concurrently.
  const Membership& m = comm_->membership();
  const int rank = comm_->rank();
  const std::size_t bytes = count_ * esize_;
  if (stage_ == 0) {
    stage_ = 1;
    const Tag t = tag(CollTagKind::kAllreduceUp, 0);
    for (std::size_t i = 0; i < m.children().size(); ++i) {
      post_recv(m.children()[i], t, scratch_.data() + i * bytes, bytes);
    }
    if (!m.children().empty()) return true;
  }
  if (stage_ == 1) {
    stage_ = 2;
    for (std::size_t i = 0; i < m.children().size(); ++i) {
      combine_(buf_, scratch_.data() + i * bytes, count_, rop_);
    }
    if (rank != 0) {
      post_send(m.parent(), tag(CollTagKind::kAllreduceUp, 0), buf_, bytes);
      return true;
    }
  }
  if (stage_ == 2) {
    stage_ = 3;
    if (rank != 0) {
      post_recv(m.parent(), tag(CollTagKind::kAllreduceDown, 0), buf_, bytes);
      return true;
    }
  }
  if (stage_ == 3) {
    stage_ = 4;
    for (int c : m.children()) {
      post_send(c, tag(CollTagKind::kAllreduceDown, 0), buf_, bytes);
    }
    if (!m.children().empty()) return true;
  }
  return false;
}

}  // namespace piom::mpi
