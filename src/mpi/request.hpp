// mini_mpi::Request — the handle returned by nonblocking operations
// (MPI_Request equivalent). It embeds both nmad request flavours so that a
// Request is plain storage: no allocation on isend/irecv, mirroring the
// paper's no-allocation task path.
#pragma once

#include "nmad/request.hpp"

namespace piom::mpi {

using Tag = nmad::Tag;

class Request {
 public:
  Request() = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True once the operation has completed (stable afterwards).
  [[nodiscard]] bool done() const {
    return active_ && (is_send_ ? send_.completed() : recv_.completed());
  }

  /// True when the request currently carries an operation.
  [[nodiscard]] bool active() const { return active_; }

  /// Bytes delivered by a completed receive.
  [[nodiscard]] std::size_t received() const { return recv_.received; }

  // -- engine-internal access --
  nmad::SendRequest& send_req() { return send_; }
  nmad::RecvRequest& recv_req() { return recv_; }
  nmad::RequestCore& req_core() { return is_send_ ? send_.core : recv_.core; }
  void arm(bool is_send) {
    is_send_ = is_send;
    active_ = true;
  }
  [[nodiscard]] bool is_send() const { return is_send_; }

 private:
  nmad::SendRequest send_;
  nmad::RecvRequest recv_;
  bool is_send_ = false;
  bool active_ = false;
};

}  // namespace piom::mpi
