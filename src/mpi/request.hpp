// mini_mpi::Request — the handle returned by nonblocking operations
// (MPI_Request equivalent). It embeds both nmad request flavours so that a
// Request is plain storage: no allocation on isend/irecv, mirroring the
// paper's no-allocation task path.
#pragma once

#include "nmad/request.hpp"

namespace piom::mpi {

using Tag = nmad::Tag;

/// Completion information (MPI_Status equivalent), valid once the request
/// that produced it is done(). Obtain via Request::status() or the
/// blocking Comm::recv_status().
struct Status {
  Tag tag = 0;            ///< actual tag (useful with kAnyTag)
  int source = -1;        ///< actual source rank (useful with kAnySource)
  std::size_t bytes = 0;  ///< payload bytes delivered
  /// The operation error-completed because its peer was declared failed
  /// (MPI_ERR_PROC_FAILED equivalent): no payload; on receives `source`
  /// names the failed rank the request was parked on.
  bool peer_failed = false;
};

class Request {
 public:
  Request() = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True once the operation has completed (stable afterwards).
  [[nodiscard]] bool done() const {
    return active_ && (is_send_ ? send_.completed() : recv_.completed());
  }

  /// True when the request currently carries an operation.
  [[nodiscard]] bool active() const { return active_; }

  /// True when the operation error-completed because its peer was declared
  /// failed (only meaningful once done() — reads false before completion).
  [[nodiscard]] bool failed() const {
    return done() && (is_send_ ? send_.core.has_failed()
                               : recv_.core.has_failed());
  }

  /// Bytes delivered by a completed receive.
  [[nodiscard]] std::size_t received() const { return recv_.received; }

  /// Completion information, valid once done() (identical on all three
  /// engines: everything is read from the embedded nmad request, which
  /// every engine populates on its match/complete paths). Receives report
  /// the matched tag/source and delivered bytes; sends report the posted
  /// tag and length. An error completion zeroes `bytes`.
  [[nodiscard]] Status status() const {
    Status st;
    st.peer_failed = failed();
    if (is_send_) {
      st.tag = send_.tag;
      st.bytes = st.peer_failed ? 0 : send_.len;
    } else {
      st.tag = recv_.matched_tag;
      st.source = recv_.source;
      st.bytes = st.peer_failed ? 0 : recv_.received;
    }
    return st;
  }

  // -- engine-internal access --
  nmad::SendRequest& send_req() { return send_; }
  nmad::RecvRequest& recv_req() { return recv_; }
  nmad::RequestCore& req_core() { return is_send_ ? send_.core : recv_.core; }
  void arm(bool is_send) {
    is_send_ = is_send;
    active_ = true;
  }
  [[nodiscard]] bool is_send() const { return is_send_; }

 private:
  nmad::SendRequest send_;
  nmad::RecvRequest recv_;
  bool is_send_ = false;
  bool active_ = false;
};

}  // namespace piom::mpi
