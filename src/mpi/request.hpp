// mini_mpi::Request — the handle returned by nonblocking operations
// (MPI_Request equivalent). It embeds both nmad request flavours so that a
// Request is plain storage: no allocation on isend/irecv, mirroring the
// paper's no-allocation task path.
#pragma once

#include "nmad/request.hpp"

namespace piom::mpi {

using Tag = nmad::Tag;

class Request {
 public:
  Request() = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True once the operation has completed (stable afterwards).
  [[nodiscard]] bool done() const {
    return active_ && (is_send_ ? send_.completed() : recv_.completed());
  }

  /// True when the request currently carries an operation.
  [[nodiscard]] bool active() const { return active_; }

  /// True when the operation error-completed because its peer was declared
  /// failed (only meaningful once done() — reads false before completion).
  [[nodiscard]] bool failed() const {
    return done() && (is_send_ ? send_.core.has_failed()
                               : recv_.core.has_failed());
  }

  /// Bytes delivered by a completed receive.
  [[nodiscard]] std::size_t received() const { return recv_.received; }

  // -- engine-internal access --
  nmad::SendRequest& send_req() { return send_; }
  nmad::RecvRequest& recv_req() { return recv_; }
  nmad::RequestCore& req_core() { return is_send_ ? send_.core : recv_.core; }
  void arm(bool is_send) {
    is_send_ = is_send;
    active_ = true;
  }
  [[nodiscard]] bool is_send() const { return is_send_; }

 private:
  nmad::SendRequest send_;
  nmad::RecvRequest recv_;
  bool is_send_ = false;
  bool active_ = false;
};

}  // namespace piom::mpi
