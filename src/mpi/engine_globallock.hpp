// GlobalLockEngine — the state-of-the-art comparators of the paper's §V
// (MVAPICH2 1.2p1 and OPENMPI 1.3.1), re-implemented over the same nmad
// protocol and simulated fabric:
//   * thread-safety via ONE lock around the whole library (the
//     MPI_THREAD_MULTIPLE big-lock approach of §II-A);
//   * progress happens ONLY inside MPI calls — no background progression.
//     A blocked MPI_Wait/MPI_Recv spins on {lock; progress; unlock}.
//
// Consequences (exactly what the paper measures):
//   * N receiving threads all polling ⇒ contention on the lock ⇒ the
//     multithreaded latency grows with N (Fig 4);
//   * rendezvous: the RDMA-Read data path needs no sender CPU, so overlap
//     works on the sender side, but an RTS arriving while the receiver
//     computes sits unhandled until the receiver re-enters MPI ⇒ no
//     receiver-side overlap (Figs 5–7).
#pragma once

#include <mutex>
#include <string>

#include "mpi/engine.hpp"
#include "nmad/session.hpp"

namespace piom::mpi {

struct GlobalLockEngineConfig {
  /// Displayed name ("mvapich-like" / "openmpi-like").
  std::string label = "mvapich-like";
  /// Yield the CPU between progress attempts in wait() (OpenMPI-flavoured
  /// politeness) instead of hard spinning (MVAPICH-flavoured).
  bool yield_in_wait = false;
};

class GlobalLockEngine final : public Engine {
 public:
  explicit GlobalLockEngine(nmad::Session& session,
                            GlobalLockEngineConfig config = {});

  void isend(Request& req, nmad::Gate& gate, Tag tag, const void* buf,
             std::size_t len) override;
  void irecv(Request& req, nmad::Gate& gate, Tag tag, void* buf,
             std::size_t cap) override;
  void irecv_any(Request& req, nmad::WildSet& wilds, Tag tag, void* buf,
                 std::size_t cap) override;
  void wait(Request& req) override;
  bool test(Request& req) override;
  bool test_coll(CollOp& op) override;
  void wait_coll(CollOp& op) override;
  void progress() override {
    locked_progress();
    advance_colls();
  }
  [[nodiscard]] std::string name() const override { return config_.label; }

  /// Lock acquisitions so far (the Fig-4 bench reports contention).
  [[nodiscard]] uint64_t lock_acquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  void locked_progress();

  nmad::Session& session_;
  GlobalLockEngineConfig config_;
  std::mutex big_lock_;
  std::atomic<uint64_t> lock_acquisitions_{0};
};

}  // namespace piom::mpi
