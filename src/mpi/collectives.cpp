// Collective operations for the two-rank world. All of them are built on
// the point-to-point layer with tags in the reserved space, so they compose
// with (and never collide with) application traffic.
#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "mpi/world.hpp"

namespace piom::mpi {

namespace {
// Reserved tag layout (per collective, per direction).
constexpr Tag kBarrierTag0 = Comm::kReservedTagBase + 1;  // rank0 -> rank1
constexpr Tag kBarrierTag1 = Comm::kReservedTagBase + 2;  // rank1 -> rank0
constexpr Tag kBcastTag = Comm::kReservedTagBase + 3;
constexpr Tag kAllreduceTag0 = Comm::kReservedTagBase + 4;
constexpr Tag kAllreduceTag1 = Comm::kReservedTagBase + 5;
}  // namespace

Status Comm::recv_status(int src, Tag tag, void* buf, std::size_t cap) {
  Request req;
  irecv(req, src, tag, buf, cap);
  wait(req);
  Status st;
  st.bytes = req.recv_req().received;
  st.tag = req.recv_req().matched_tag;
  return st;
}

void Comm::sendrecv(int peer, Tag send_tag, const void* send_buf,
                    std::size_t send_len, Tag recv_tag, void* recv_buf,
                    std::size_t recv_cap) {
  Request sreq, rreq;
  irecv(rreq, peer, recv_tag, recv_buf, recv_cap);
  isend(sreq, peer, send_tag, send_buf, send_len);
  wait(sreq);
  wait(rreq);
}

void Comm::barrier() {
  // Two-rank synchronisation: exchange zero-byte tokens in both directions.
  const int peer = 1 - rank_;
  const Tag out = (rank_ == 0) ? kBarrierTag0 : kBarrierTag1;
  const Tag in = (rank_ == 0) ? kBarrierTag1 : kBarrierTag0;
  sendrecv(peer, out, nullptr, 0, in, nullptr, 0);
}

void Comm::bcast(void* buf, std::size_t len, int root) {
  if (root != 0 && root != 1) {
    throw std::invalid_argument("Comm::bcast: bad root");
  }
  const int peer = 1 - rank_;
  if (rank_ == root) {
    send(peer, kBcastTag, buf, len);
  } else {
    recv(peer, kBcastTag, buf, len);
  }
}

template <typename T>
void Comm::allreduce(T* data, std::size_t count, ReduceOp op) {
  static_assert(std::is_arithmetic_v<T>, "allreduce needs arithmetic T");
  const int peer = 1 - rank_;
  std::vector<T> remote(count);
  const Tag out = (rank_ == 0) ? kAllreduceTag0 : kAllreduceTag1;
  const Tag in = (rank_ == 0) ? kAllreduceTag1 : kAllreduceTag0;
  sendrecv(peer, out, data, count * sizeof(T), in, remote.data(),
           count * sizeof(T));
  for (std::size_t i = 0; i < count; ++i) {
    switch (op) {
      case ReduceOp::kSum: data[i] = data[i] + remote[i]; break;
      case ReduceOp::kMax: data[i] = std::max(data[i], remote[i]); break;
      case ReduceOp::kMin: data[i] = std::min(data[i], remote[i]); break;
    }
  }
}

// The instantiations the library ships (add more as needed).
template void Comm::allreduce<int32_t>(int32_t*, std::size_t, ReduceOp);
template void Comm::allreduce<int64_t>(int64_t*, std::size_t, ReduceOp);
template void Comm::allreduce<uint64_t>(uint64_t*, std::size_t, ReduceOp);
template void Comm::allreduce<float>(float*, std::size_t, ReduceOp);
template void Comm::allreduce<double>(double*, std::size_t, ReduceOp);

}  // namespace piom::mpi
