// Collective operations for the N-rank world, all built on the
// point-to-point layer with tags in the reserved space, so they compose
// with (and never collide with) application traffic.
//
// Algorithms (each exercises a different traffic pattern of the mesh):
//   * barrier    — dissemination: ceil(log2 N) rounds, round k exchanges a
//                  zero-byte token with ranks ±2^k (ring-distance pattern);
//   * bcast      — binomial tree rooted at `root`: log2 N levels, the
//                  subtree fan-out pattern;
//   * allreduce  — recursive doubling (hypercube pattern) when N is a
//                  power of two, ring reduce-scatter + allgather otherwise;
//   * gather /
//     scatter    — linear fan-in/fan-out at the root (the root's gates all
//                  busy at once — the N-way contention case);
//   * alltoall   — pairwise exchange, N-1 rounds of disjoint sendrecvs.
//
// Every collective must be called by all ranks in the same order (MPI
// semantics). Per-phase tags keep rounds distinct; per-pair gates keep the
// matching local to each (src, dst) pair.
#include <algorithm>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <vector>

#include "mpi/world.hpp"

namespace piom::mpi {

namespace {
// Reserved tag layout: one 0x100-wide window per collective; the low byte
// carries the round/phase index (bounds cluster sizes at 2^255 — plenty).
constexpr Tag kBarrierTag = Comm::kReservedTagBase + 0x100;      // + round
constexpr Tag kBcastTag = Comm::kReservedTagBase + 0x200;
constexpr Tag kAllreduceRdTag = Comm::kReservedTagBase + 0x300;  // + phase
constexpr Tag kAllreduceRsTag = Comm::kReservedTagBase + 0x400;  // + step
constexpr Tag kAllreduceAgTag = Comm::kReservedTagBase + 0x500;  // + step
constexpr Tag kGatherTag = Comm::kReservedTagBase + 0x600;
constexpr Tag kScatterTag = Comm::kReservedTagBase + 0x700;
constexpr Tag kAlltoallTag = Comm::kReservedTagBase + 0x800;     // + round

template <typename T>
void combine(T* into, const T* other, std::size_t count, ReduceOp op) {
  for (std::size_t i = 0; i < count; ++i) {
    switch (op) {
      case ReduceOp::kSum: into[i] = into[i] + other[i]; break;
      case ReduceOp::kMax: into[i] = std::max(into[i], other[i]); break;
      case ReduceOp::kMin: into[i] = std::min(into[i], other[i]); break;
    }
  }
}
}  // namespace

Status Comm::recv_status(int src, Tag tag, void* buf, std::size_t cap) {
  Request req;
  irecv(req, src, tag, buf, cap);
  wait(req);
  Status st;
  st.bytes = req.recv_req().received;
  st.tag = req.recv_req().matched_tag;
  st.source = req.recv_req().source;
  return st;
}

void Comm::sendrecv(int send_dst, Tag send_tag, const void* send_buf,
                    std::size_t send_len, int recv_src, Tag recv_tag,
                    void* recv_buf, std::size_t recv_cap) {
  Request sreq, rreq;
  irecv(rreq, recv_src, recv_tag, recv_buf, recv_cap);
  isend(sreq, send_dst, send_tag, send_buf, send_len);
  wait(sreq);
  wait(rreq);
}

void Comm::barrier() {
  // Dissemination: after round k every rank has (transitively) heard from
  // 2^(k+1) predecessors; ceil(log2 N) rounds synchronize everyone.
  const int n = size();
  int round = 0;
  for (int k = 1; k < n; k <<= 1, ++round) {
    const int dst = (rank_ + k) % n;
    const int src = (rank_ - k + n) % n;
    sendrecv(dst, kBarrierTag + static_cast<Tag>(round), nullptr, 0, src,
             kBarrierTag + static_cast<Tag>(round), nullptr, 0);
  }
}

void Comm::bcast(void* buf, std::size_t len, int root) {
  const int n = size();
  if (root < 0 || root >= n) {
    throw std::invalid_argument("Comm::bcast: bad root");
  }
  const int vrank = (rank_ - root + n) % n;
  // Receive from the parent: the parent differs at vrank's lowest set bit.
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      recv((rank_ - mask + n) % n, kBcastTag, buf, len);
      break;
    }
    mask <<= 1;
  }
  // Forward to the children, largest subtree first (they have the most
  // forwarding of their own left to do).
  std::deque<Request> sends;
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (vrank + mask < n) {
      sends.emplace_back();
      isend(sends.back(), (rank_ + mask) % n, kBcastTag, buf, len);
    }
  }
  for (Request& r : sends) wait(r);
}

template <typename T>
void Comm::allreduce(T* data, std::size_t count, ReduceOp op) {
  static_assert(std::is_arithmetic_v<T>, "allreduce needs arithmetic T");
  const int n = size();
  if ((n & (n - 1)) == 0) {
    // Power of two: recursive doubling — phase k exchanges the running
    // result with the partner across hypercube dimension k.
    std::vector<T> remote(count);
    int phase = 0;
    for (int mask = 1; mask < n; mask <<= 1, ++phase) {
      const int partner = rank_ ^ mask;
      const Tag tag = kAllreduceRdTag + static_cast<Tag>(phase);
      sendrecv(partner, tag, data, count * sizeof(T), partner, tag,
               remote.data(), count * sizeof(T));
      combine(data, remote.data(), count, op);
    }
    return;
  }
  // Non-power-of-two: ring reduce-scatter then ring allgather over N
  // near-equal element chunks (chunk c = elements [begin(c), begin(c+1))).
  const int next = (rank_ + 1) % n;
  const int prev = (rank_ - 1 + n) % n;
  const auto begin = [&](int c) {
    return (count * static_cast<std::size_t>(c)) / static_cast<std::size_t>(n);
  };
  std::vector<T> tmp(count / static_cast<std::size_t>(n) + 1);  // max chunk
  // Reduce-scatter: after step s, rank r holds the partial reduction of
  // s+2 ranks' chunk (r-s-1); after N-1 steps chunk (r+1) is complete.
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = ((rank_ - s) % n + n) % n;
    const int recv_c = ((rank_ - s - 1) % n + n) % n;
    const std::size_t rlen = begin(recv_c + 1) - begin(recv_c);
    Request sreq, rreq;
    irecv(rreq, prev, kAllreduceRsTag + static_cast<Tag>(s), tmp.data(),
          rlen * sizeof(T));
    isend(sreq, next, kAllreduceRsTag + static_cast<Tag>(s), data + begin(send_c),
          (begin(send_c + 1) - begin(send_c)) * sizeof(T));
    wait(rreq);
    combine(data + begin(recv_c), tmp.data(), rlen, op);
    wait(sreq);
  }
  // Allgather: circulate the completed chunks the rest of the way round.
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = ((rank_ + 1 - s) % n + n) % n;
    const int recv_c = ((rank_ - s) % n + n) % n;
    Request sreq, rreq;
    irecv(rreq, prev, kAllreduceAgTag + static_cast<Tag>(s),
          data + begin(recv_c),
          (begin(recv_c + 1) - begin(recv_c)) * sizeof(T));
    isend(sreq, next, kAllreduceAgTag + static_cast<Tag>(s),
          data + begin(send_c),
          (begin(send_c + 1) - begin(send_c)) * sizeof(T));
    wait(rreq);
    wait(sreq);
  }
}

void Comm::gather(const void* sendbuf, std::size_t len, void* recvbuf,
                  int root) {
  const int n = size();
  if (root < 0 || root >= n) {
    throw std::invalid_argument("Comm::gather: bad root");
  }
  if (rank_ != root) {
    send(root, kGatherTag, sendbuf, len);
    return;
  }
  auto* out = static_cast<uint8_t*>(recvbuf);
  if (len > 0) {
    std::memcpy(out + static_cast<std::size_t>(rank_) * len, sendbuf, len);
  }
  std::deque<Request> reqs;
  for (int p = 0; p < n; ++p) {
    if (p == rank_) continue;
    reqs.emplace_back();
    irecv(reqs.back(), p, kGatherTag, out + static_cast<std::size_t>(p) * len,
          len);
  }
  for (Request& r : reqs) wait(r);
}

void Comm::scatter(const void* sendbuf, std::size_t len, void* recvbuf,
                   int root) {
  const int n = size();
  if (root < 0 || root >= n) {
    throw std::invalid_argument("Comm::scatter: bad root");
  }
  if (rank_ != root) {
    recv(root, kScatterTag, recvbuf, len);
    return;
  }
  const auto* in = static_cast<const uint8_t*>(sendbuf);
  if (len > 0) {
    std::memcpy(recvbuf, in + static_cast<std::size_t>(rank_) * len, len);
  }
  std::deque<Request> reqs;
  for (int p = 0; p < n; ++p) {
    if (p == rank_) continue;
    reqs.emplace_back();
    isend(reqs.back(), p, kScatterTag, in + static_cast<std::size_t>(p) * len,
          len);
  }
  for (Request& r : reqs) wait(r);
}

void Comm::alltoall(const void* sendbuf, std::size_t len, void* recvbuf) {
  const int n = size();
  const auto* in = static_cast<const uint8_t*>(sendbuf);
  auto* out = static_cast<uint8_t*>(recvbuf);
  if (len > 0) {
    std::memcpy(out + static_cast<std::size_t>(rank_) * len,
                in + static_cast<std::size_t>(rank_) * len, len);
  }
  // Pairwise exchange: in round s every rank talks to ranks ±s — all N
  // ranks busy every round, no hot spot.
  for (int s = 1; s < n; ++s) {
    const int dst = (rank_ + s) % n;
    const int src = (rank_ - s + n) % n;
    const Tag tag = kAlltoallTag + static_cast<Tag>(s);
    sendrecv(dst, tag, in + static_cast<std::size_t>(dst) * len, len, src, tag,
             out + static_cast<std::size_t>(src) * len, len);
  }
}

// The instantiations the library ships (add more as needed).
template void Comm::allreduce<int32_t>(int32_t*, std::size_t, ReduceOp);
template void Comm::allreduce<int64_t>(int64_t*, std::size_t, ReduceOp);
template void Comm::allreduce<uint64_t>(uint64_t*, std::size_t, ReduceOp);
template void Comm::allreduce<float>(float*, std::size_t, ReduceOp);
template void Comm::allreduce<double>(double*, std::size_t, ReduceOp);

}  // namespace piom::mpi
