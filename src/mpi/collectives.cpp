// Collective entry points for the N-rank world. Every blocking collective
// is its nonblocking form plus wait(); the algorithms themselves are the
// CollOp state machines in mpi/coll.cpp, advanced by the rank's progress
// engine. The i…() entry points validate arguments, claim the per-Comm
// collective epoch (folded into the reserved tags so any number of
// collectives can be in flight without cross-matching), arm the caller's
// CollRequest, and hand it to the engine — which immediately posts round
// 0's point-to-point traffic.
#include <stdexcept>

#include "mpi/world.hpp"

namespace piom::mpi {

Status Comm::recv_status(int src, Tag tag, void* buf, std::size_t cap) {
  Request req;
  irecv(req, src, tag, buf, cap);
  wait(req);
  return req.status();
}

void Comm::sendrecv(int send_dst, Tag send_tag, const void* send_buf,
                    std::size_t send_len, int recv_src, Tag recv_tag,
                    void* recv_buf, std::size_t recv_cap) {
  Request sreq, rreq;
  irecv(rreq, recv_src, recv_tag, recv_buf, recv_cap);
  isend(sreq, send_dst, send_tag, send_buf, send_len);
  wait(sreq);
  wait(rreq);
}

void Comm::ibarrier(CollRequest& req) {
  req.start_barrier(*this, next_coll_epoch());
  engine_->start_coll(req);
}

void Comm::barrier() {
  CollRequest req;
  ibarrier(req);
  wait(req);
}

void Comm::ibcast(CollRequest& req, void* buf, std::size_t len, int root) {
  // Validate before claiming an epoch: a throwing rank must not desync the
  // cluster-wide collective sequence.
  if (root < 0 || root >= size()) {
    throw std::invalid_argument("Comm::ibcast: bad root");
  }
  req.start_bcast(*this, next_coll_epoch(), buf, len, root);
  engine_->start_coll(req);
}

void Comm::bcast(void* buf, std::size_t len, int root) {
  CollRequest req;
  ibcast(req, buf, len, root);
  wait(req);
}

void Comm::iallreduce_raw(CollRequest& req, void* data, std::size_t count,
                          std::size_t elem_size,
                          coll_detail::CombineFn combine, ReduceOp op) {
  req.start_allreduce(*this, next_coll_epoch(), data, count, elem_size,
                      combine, op);
  engine_->start_coll(req);
}

void Comm::igather(CollRequest& req, const void* sendbuf, std::size_t len,
                   void* recvbuf, int root) {
  if (root < 0 || root >= size()) {
    throw std::invalid_argument("Comm::igather: bad root");
  }
  req.start_gather(*this, next_coll_epoch(), sendbuf, len, recvbuf, root);
  engine_->start_coll(req);
}

void Comm::gather(const void* sendbuf, std::size_t len, void* recvbuf,
                  int root) {
  CollRequest req;
  igather(req, sendbuf, len, recvbuf, root);
  wait(req);
}

void Comm::iscatter(CollRequest& req, const void* sendbuf, std::size_t len,
                    void* recvbuf, int root) {
  if (root < 0 || root >= size()) {
    throw std::invalid_argument("Comm::iscatter: bad root");
  }
  req.start_scatter(*this, next_coll_epoch(), sendbuf, len, recvbuf, root);
  engine_->start_coll(req);
}

void Comm::scatter(const void* sendbuf, std::size_t len, void* recvbuf,
                   int root) {
  CollRequest req;
  iscatter(req, sendbuf, len, recvbuf, root);
  wait(req);
}

void Comm::ialltoall(CollRequest& req, const void* sendbuf, std::size_t len,
                     void* recvbuf) {
  req.start_alltoall(*this, next_coll_epoch(), sendbuf, len, recvbuf);
  engine_->start_coll(req);
}

void Comm::alltoall(const void* sendbuf, std::size_t len, void* recvbuf) {
  CollRequest req;
  ialltoall(req, sendbuf, len, recvbuf);
  wait(req);
}

}  // namespace piom::mpi
