// Umbrella header: pulls in the whole piom stack.
//
//   topo    — CPU sets, machine topology (paper Fig 2/3)
//   sync    — spinlocks, semaphore, cache alignment
//   core    — Task, hierarchical TaskManager (paper §III, Algorithms 1 & 2)
//   sched   — worker runtime + idle/blocking/timer/IRQ hooks (MARCEL role)
//   simnet  — simulated NICs/fabric with RDMA and fault injection
//   nmad    — communication library: eager/rendezvous, strategies,
//             reliability (NewMadeleine role)
//   mpi     — two-rank mini-MPI with three progress engines (MAD-MPI vs
//             the global-lock baselines) + collectives
//   util    — timing, stats, logging, options, tracing
//
// Prefer including the specific headers in production code; this header is
// for examples and quick starts.
#pragma once

#include "core/task.hpp"            // IWYU pragma: export
#include "core/task_manager.hpp"    // IWYU pragma: export
#include "core/task_queue.hpp"      // IWYU pragma: export
#include "core/lf_queue.hpp"        // IWYU pragma: export
#include "mpi/world.hpp"            // IWYU pragma: export
#include "nmad/session.hpp"         // IWYU pragma: export
#include "sched/irq.hpp"            // IWYU pragma: export
#include "sched/runtime.hpp"        // IWYU pragma: export
#include "sched/timer.hpp"          // IWYU pragma: export
#include "simnet/fabric.hpp"        // IWYU pragma: export
#include "sync/semaphore.hpp"       // IWYU pragma: export
#include "sync/spinlock.hpp"        // IWYU pragma: export
#include "topo/cpuset.hpp"          // IWYU pragma: export
#include "topo/machine.hpp"         // IWYU pragma: export
#include "util/stats.hpp"           // IWYU pragma: export
#include "util/timing.hpp"          // IWYU pragma: export
#include "util/trace.hpp"           // IWYU pragma: export
