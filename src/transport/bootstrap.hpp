// Bootstrap: rendezvous wiring for ranks that live in separate OS
// processes. Every rank creates a socket data listener, then exchanges the
// resulting endpoint table out-of-band through rank 0:
//
//     rank 0                           rank r (r > 0)
//     Bootstrap::root(n, listen)       Bootstrap::join(r, root_addr)
//       listen on root_addr              connect to root_addr (retrying —
//       accept n-1 joiners               processes start in any order)
//       collect {rank, data URI}         send {r, data URI}
//       broadcast the full table         receive the full table
//       connect_mesh(0, table)           connect_mesh(r, table)
//
// The control plane is plain blocking sockets, used once and closed; the
// data plane is the TcpTransport event loop (transport/tcp.hpp). The
// Bootstrap owns that transport — keep it alive as long as the channels
// are in use (mpi::LocalRank holds it for exactly that reason).
//
// Data listener addresses are derived from the root address: a uds root
// "uds:///tmp/x.sock" puts rank r's data listener at /tmp/x.sock.r<r>; a
// tcp root uses an ephemeral port on the same host.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "transport/endpoint.hpp"
#include "transport/tcp.hpp"

namespace piom::transport {

class Bootstrap {
 public:
  /// Rank 0: listen on `listen_addr` (tcp:// or uds://), gather the other
  /// nranks-1 ranks, broadcast the endpoint table, wire the data mesh.
  /// Blocking; throws std::runtime_error on timeout or protocol garbage.
  static Bootstrap root(int nranks, const Endpoint& listen_addr,
                        TcpConfig config = {});
  /// Rank r > 0: join the cluster rooted at `root_addr`.
  static Bootstrap join(int rank, const Endpoint& root_addr,
                        TcpConfig config = {});
  /// From $PIOM_RANK / $PIOM_NRANKS / $PIOM_ROOT_ADDR — the environment
  /// piom_launch exports into every spawned rank.
  static Bootstrap from_env(TcpConfig config = {});

  Bootstrap(Bootstrap&&) = default;
  Bootstrap& operator=(Bootstrap&&) = default;
  Bootstrap(const Bootstrap&) = delete;
  Bootstrap& operator=(const Bootstrap&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  /// The data-plane transport (pump it, or let channel polls do it).
  [[nodiscard]] TcpTransport& transport() { return *transport_; }
  /// Per-peer data channels indexed by peer rank; the self slot is null.
  [[nodiscard]] const std::vector<IChannel*>& channels() const {
    return channels_;
  }
  /// Everyone's advertised data endpoints (index = rank).
  [[nodiscard]] const std::vector<Endpoint>& table() const { return table_; }

 private:
  Bootstrap(int rank, int nranks, std::unique_ptr<TcpTransport> transport,
            std::vector<Endpoint> table, std::vector<IChannel*> channels)
      : rank_(rank),
        nranks_(nranks),
        transport_(std::move(transport)),
        table_(std::move(table)),
        channels_(std::move(channels)) {}

  int rank_;
  int nranks_;
  std::unique_ptr<TcpTransport> transport_;
  std::vector<Endpoint> table_;
  std::vector<IChannel*> channels_;
};

}  // namespace piom::transport
