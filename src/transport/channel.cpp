#include "transport/channel.hpp"

#include <stdexcept>

#include "util/env.hpp"

namespace piom::transport {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSimnet: return "simnet";
    case Backend::kShmem: return "shmem";
    case Backend::kTcp: return "tcp";
  }
  return "?";
}

const char* pair_wiring_name(PairWiring w) {
  switch (w) {
    case PairWiring::kSimnet: return "simnet";
    case PairWiring::kShmem: return "shmem";
    case PairWiring::kHybrid: return "hybrid";
    case PairWiring::kTcp: return "tcp";
    case PairWiring::kUds: return "uds";
  }
  return "?";
}

PairWiring BackendPolicy::wiring(int i, int j) const {
  if (node_of.empty()) return inter;
  const bool same_node = node_of[static_cast<std::size_t>(i)] ==
                         node_of[static_cast<std::size_t>(j)];
  return same_node ? intra : inter;
}

void BackendPolicy::validate(int nranks) const {
  if (!node_of.empty() &&
      node_of.size() != static_cast<std::size_t>(nranks)) {
    // Built piecewise: a literal+to_string temporary chain trips GCC 12's
    // -Wrestrict false positive once everything inlines.
    std::string msg = "BackendPolicy: node_of must name every rank (size ";
    msg += std::to_string(node_of.size());
    msg += " != nranks ";
    msg += std::to_string(nranks);
    msg += ")";
    throw std::invalid_argument(msg);
  }
  for (const int node : node_of) {
    if (node < 0) {
      throw std::invalid_argument("BackendPolicy: negative node id");
    }
  }
  if (inter == PairWiring::kShmem || inter == PairWiring::kHybrid) {
    throw std::invalid_argument(
        "BackendPolicy: shared memory does not cross nodes (inter-node "
        "pairs must be wired kSimnet, kTcp or kUds)");
  }
}

BackendPolicy BackendPolicy::from_env(int nranks) {
  BackendPolicy policy;
  const std::string value = util::env::str("PIOM_TRANSPORT", "simnet");
  if (value == "simnet") {
    return policy;  // empty node_of: every pair inter-node -> NIC
  }
  if (value == "shmem" || value == "hybrid") {
    policy.node_of.assign(static_cast<std::size_t>(nranks), 0);
    policy.intra =
        value == "shmem" ? PairWiring::kShmem : PairWiring::kHybrid;
    return policy;
  }
  if (value == "tcp" || value == "uds") {
    // Sockets work across nodes: leave node_of empty and wire every pair
    // through `inter`.
    policy.inter = value == "tcp" ? PairWiring::kTcp : PairWiring::kUds;
    return policy;
  }
  std::string msg =
      "PIOM_TRANSPORT must be 'simnet', 'shmem', 'hybrid', 'tcp' or 'uds', ";
  msg += "got '";
  msg += value;
  msg += "'";
  throw std::invalid_argument(msg);
}

}  // namespace piom::transport
